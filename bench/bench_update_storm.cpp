// Update storm: a master republishes every document at once and an
// 8-replica fleet converges by pulling.  The consistency auditor
// (obs/consistency.hpp) watches the whole time, so the numbers this bench
// reports — propagation-lag p50/p99 and time-to-convergence — are derived
// from the observatory itself, not from bench-side bookkeeping alone:
// convergence is "the first audit round where every replica is fresh".
//
// Emits update_storm.* gauges to a JSON artifact (argv[1]) for the
// perf-regression gate; everything here runs on the deterministic
// simulator, so the series are exact.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/paper_world.hpp"
#include "crypto/drbg.hpp"
#include "crypto/rsa.hpp"
#include "globedoc/owner.hpp"
#include "globedoc/server.hpp"
#include "net/simnet.hpp"
#include "obs/consistency.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "replication/refresher.hpp"

using namespace globe;

namespace {

constexpr int kReplicas = 8;
constexpr int kDocs = 24;
constexpr util::SimTime kStorm = util::seconds(100);
constexpr util::SimDuration kPollPeriod = util::seconds(2);
constexpr util::SimDuration kAuditPeriod = util::seconds(2);
constexpr int kMaxRounds = 60;
// Per-tick pull budget: a real maintainer refreshes incrementally, so the
// fleet converges over several rounds and the auditor actually witnesses
// the stale window (stale_peak > 0), not just the end state.
constexpr int kPullsPerTick = 4;

crypto::RsaKeyPair bench_key(std::uint64_t seed) {
  auto rng = crypto::HmacDrbg::from_seed(seed);
  return crypto::rsa_generate(512, rng);
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "";

  net::SimNet net;
  net::HostId master_host = net.add_host({"master", net::CpuModel{}});
  net::HostId auditor_host = net.add_host({"auditor", net::CpuModel{}});
  net.set_default_link({util::millis(5), 1e6});

  // --- Master object server, reporting consistency on its dispatcher.
  obs::MetricsRegistry master_registry;
  globedoc::ObjectServer master("master", 7, &master_registry);
  rpc::ServiceDispatcher master_dispatcher;
  master.register_with(master_dispatcher);
  obs::TelemetryNode master_node(master_registry, "master", "object-server");
  master_node.set_consistency_source([&] { return master.consistency_report(); });
  master_node.register_with(master_dispatcher);
  net::Endpoint master_ep{master_host, 8000};
  net.bind(master_ep, master_dispatcher.handler());

  // --- The fleet: 8 replicas at staggered link latencies (10..150 ms).
  struct Replica {
    net::HostId host;
    std::unique_ptr<obs::MetricsRegistry> registry;
    std::unique_ptr<globedoc::ObjectServer> server;
    std::unique_ptr<rpc::ServiceDispatcher> dispatcher;
    std::unique_ptr<obs::TelemetryNode> node;
    net::Endpoint ep;
    std::unique_ptr<net::SimFlow> flow;
  };
  std::vector<Replica> fleet(kReplicas);
  for (int r = 0; r < kReplicas; ++r) {
    Replica& rep = fleet[r];
    std::string name = "replica-" + std::to_string(r + 1);
    rep.host = net.add_host({name, net::CpuModel{}});
    net.set_link(master_host, rep.host,
                 {util::millis(10 + 20 * static_cast<std::uint64_t>(r)), 1e6});
    rep.registry = std::make_unique<obs::MetricsRegistry>();
    rep.server = std::make_unique<globedoc::ObjectServer>(
        name, 100 + static_cast<std::uint64_t>(r), rep.registry.get());
    rep.dispatcher = std::make_unique<rpc::ServiceDispatcher>();
    rep.server->register_with(*rep.dispatcher);
    rep.node = std::make_unique<obs::TelemetryNode>(*rep.registry, name,
                                                    "object-server");
    globedoc::ObjectServer* server = rep.server.get();
    rep.node->set_consistency_source(
        [server] { return server->consistency_report(); });
    rep.node->register_with(*rep.dispatcher);
    rep.ep = net::Endpoint{rep.host, 8000};
    net.bind(rep.ep, rep.dispatcher->handler());
    rep.flow = net.open_flow(rep.host);
  }

  // --- 24 documents, each with its own 512-bit owner key, on the master.
  std::printf("update storm: %d docs, %d replicas\n", kDocs, kReplicas);
  std::vector<std::unique_ptr<globedoc::ObjectOwner>> owners;
  std::vector<globedoc::Oid> oids;
  for (int d = 0; d < kDocs; ++d) {
    globedoc::GlobeDocObject object(
        bench_key(5000 + static_cast<std::uint64_t>(d)));
    object.put_element({"index.html", "text/html",
                        bench::synthetic_content(
                            2048, static_cast<std::uint64_t>(d))});
    auto owner = std::make_unique<globedoc::ObjectOwner>(
        std::move(object), bench_key(6000 + static_cast<std::uint64_t>(d)));
    oids.push_back(owner->object().oid());
    master.install_replica_unchecked(
        owner->sign_and_snapshot(0, util::seconds(100000)), 0);
    owners.push_back(std::move(owner));
  }

  // --- Seed every replica with a verified pull of every doc (epoch 1).
  std::uint64_t pulls = 0;
  std::vector<std::vector<std::uint64_t>> versions(
      kReplicas, std::vector<std::uint64_t>(kDocs, 0));
  for (int r = 0; r < kReplicas; ++r) {
    for (int d = 0; d < kDocs; ++d) {
      auto result = replication::pull_replica(*fleet[r].flow, master_ep,
                                              oids[d], *fleet[r].server, 0);
      if (!result.is_ok()) {
        std::fprintf(stderr, "seed pull failed: %s\n",
                     result.status().to_string().c_str());
        return 1;
      }
      versions[r][d] = result->version;
      ++pulls;
    }
  }

  // --- The auditor watches master + fleet.
  obs::ConsistencyAuditor auditor;
  auditor.set_master({"master", master_ep});
  for (int r = 0; r < kReplicas; ++r) {
    auditor.add_replica({"replica-" + std::to_string(r + 1), fleet[r].ep});
  }
  auto audit_flow = net.open_flow(auditor_host);
  audit_flow->set_time(util::seconds(10));
  auditor.audit_round(*audit_flow);
  if (!auditor.converged()) {
    std::fprintf(stderr, "fleet not converged after seeding\n");
    return 1;
  }

  // --- The storm: every owner re-signs at t=100s; the master absorbs all
  //     24 new states at once (epoch 2 fleet-wide).
  std::vector<std::uint64_t> storm_versions(kDocs, 0);
  for (int d = 0; d < kDocs; ++d) {
    auto state = owners[d]->sign_and_snapshot(kStorm, util::seconds(100000));
    storm_versions[d] = state.certificate.version();
    master.install_replica_unchecked(state, kStorm);
  }

  // --- Replicas poll on staggered 2s ticks; the auditor rounds every 2s.
  //     Propagation lag per (replica, doc) = install time - storm time.
  std::vector<double> lag_ms;
  double convergence_ms = 0;
  double stale_peak = 0;
  std::uint64_t audit_rounds = 0;
  for (int round = 0; round < kMaxRounds && convergence_ms == 0; ++round) {
    for (int r = 0; r < kReplicas; ++r) {
      util::SimTime tick = kStorm + util::millis(250 * static_cast<std::uint64_t>(r)) +
                           kPollPeriod * static_cast<std::uint64_t>(round + 1);
      fleet[r].flow->set_time(tick);
      int budget = kPullsPerTick;
      for (int d = 0; d < kDocs && budget > 0; ++d) {
        if (versions[r][d] >= storm_versions[d]) continue;
        --budget;
        auto result = replication::pull_replica(*fleet[r].flow, master_ep,
                                                oids[d], *fleet[r].server,
                                                versions[r][d]);
        ++pulls;
        if (result.is_ok() && result->installed) {
          versions[r][d] = result->version;
          lag_ms.push_back(util::to_millis(fleet[r].flow->now() - kStorm));
        }
      }
    }
    util::SimTime audit_at = kStorm + util::seconds(1) +
                             kAuditPeriod * static_cast<std::uint64_t>(round + 1);
    audit_flow->set_time(audit_at);
    auditor.audit_round(*audit_flow);
    ++audit_rounds;
    stale_peak = std::max(
        stale_peak,
        auditor.self_registry().gauge("replication.stale_replicas").value());
    if (auditor.converged()) {
      convergence_ms = util::to_millis(audit_at - kStorm);
    }
  }
  if (convergence_ms == 0) {
    std::fprintf(stderr, "fleet never converged\n");
    return 1;
  }

  double p50 = percentile(lag_ms, 0.50);
  double p99 = percentile(lag_ms, 0.99);
  std::printf("  propagation lag: p50 %.1f ms, p99 %.1f ms (%zu installs)\n",
              p50, p99, lag_ms.size());
  std::printf("  convergence (auditor-observed): %.1f ms after the storm\n",
              convergence_ms);
  std::printf("  pulls %llu, audit rounds %llu, stale peak %.0f replicas\n",
              static_cast<unsigned long long>(pulls),
              static_cast<unsigned long long>(audit_rounds), stale_peak);

  obs::MetricsRegistry out;
  out.gauge("update_storm.docs").set(kDocs);
  out.gauge("update_storm.replicas").set(kReplicas);
  out.gauge("update_storm.propagation_p50_ms").set(p50);
  out.gauge("update_storm.propagation_p99_ms").set(p99);
  out.gauge("update_storm.convergence_ms").set(convergence_ms);
  out.gauge("update_storm.audit_rounds").set(static_cast<double>(audit_rounds));
  out.gauge("update_storm.pulls").set(static_cast<double>(pulls));
  out.gauge("update_storm.stale_peak").set(stale_peak);
  if (!out_path.empty()) {
    auto status = obs::write_bench_json(out_path, "update_storm", out.snapshot());
    if (!status.is_ok()) {
      std::fprintf(stderr, "write_bench_json: %s\n", status.to_string().c_str());
      return 1;
    }
  }
  return 0;
}
