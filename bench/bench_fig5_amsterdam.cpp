// Figure 5 — Performance comparison, Amsterdam client (LAN).
#include "bench/perf_compare.hpp"

int main(int argc, char** argv) {
  globe::bench::PaperWorld world;
  globe::bench::add_perf_objects(world);
  return globe::bench::run_perf_comparison(
      world, world.topo.amsterdam_secondary,
      "Figure 5: Performance comparison - Amsterdam client",
      argc > 1 ? argv[1] : "");
}
