// Ablation A7 — propagating a replica: owner push vs peer pull.
//
// Owner push uses the authenticated admin interface: one challenge, one
// signed bulk transfer (plus the location-service registration).  Peer pull
// (replication/refresher) needs no owner involvement and no trust in the
// source — but pays per-element fetches and full verification.  This
// quantifies the trade-off behind GlobeDoc's peer-to-peer CDN deployment
// (paper §2): pull costs more per hop, growing with element count, but it
// takes the owner off the fan-out path entirely.
#include <cstdio>
#include <vector>

#include "bench/paper_world.hpp"
#include "replication/refresher.hpp"

using namespace globe;
using namespace globe::bench;

int main() {
  std::printf("Ablation A7: owner push vs peer pull (Amsterdam -> Paris, 64KB total)\n\n");
  print_row({"elements", "push_ms", "pull_ms", "pull/push"});

  for (int count : {1, 4, 16, 64}) {
    PaperWorld world;
    std::string name = "obj" + std::to_string(count) + ".vu.nl";
    std::vector<globedoc::PageElement> elements;
    std::size_t per_element = 64 * 1024 / static_cast<std::size_t>(count);
    for (int i = 0; i < count; ++i) {
      elements.push_back(globedoc::PageElement{
          "el" + std::to_string(i), "text/plain",
          synthetic_content(per_element, static_cast<std::uint64_t>(i))});
    }
    world.add_object(name, std::move(elements));
    globedoc::ObjectOwner& owner = world.owner(name);
    globedoc::Oid oid = owner.object().oid();

    // --- Owner push from Amsterdam to a Paris server (admin interface).
    globedoc::ObjectServer push_target("paris-push", 1);
    push_target.authorize(owner.credential_key());
    rpc::ServiceDispatcher push_dispatcher;
    push_target.register_with(push_dispatcher);
    net::Endpoint push_ep{world.topo.paris, 8100};
    world.topo.net.bind(push_ep, push_dispatcher.handler());

    double push_ms;
    {
      auto flow = world.topo.net.open_quiescent_flow(world.topo.amsterdam_primary);
      util::SimTime start = flow->now();
      auto state = owner.sign_and_snapshot(start, util::seconds(1u << 30));
      auto status = owner.publish_replica(*flow, push_ep,
                                          world.tree->endpoint("site-paris"), state);
      if (!status.is_ok()) {
        std::fprintf(stderr, "push failed: %s\n", status.to_string().c_str());
        return 1;
      }
      push_ms = util::to_millis(flow->now() - start);
    }

    // --- Peer pull: a Paris server syncs itself from the Amsterdam origin
    //     and registers its own contact address.
    globedoc::ObjectServer pull_target("paris-pull", 2);
    rpc::ServiceDispatcher pull_dispatcher;
    pull_target.register_with(pull_dispatcher);
    net::Endpoint pull_ep{world.topo.paris, 8200};
    world.topo.net.bind(pull_ep, pull_dispatcher.handler());

    double pull_ms;
    {
      auto flow = world.topo.net.open_quiescent_flow(world.topo.paris);
      util::SimTime start = flow->now();
      auto result = replication::pull_replica(*flow, world.object_server_ep, oid,
                                              pull_target, 0);
      if (!result.is_ok()) {
        std::fprintf(stderr, "pull failed: %s\n", result.status().to_string().c_str());
        return 1;
      }
      location::LocationClient locator(*flow, world.tree->endpoint("site-paris"));
      if (!locator.insert(world.tree->endpoint("site-paris"), oid.view(), pull_ep)
               .is_ok()) {
        return 1;
      }
      pull_ms = util::to_millis(flow->now() - start);
    }

    char a[32], b[32], c[32];
    std::snprintf(a, sizeof a, "%.1f", push_ms);
    std::snprintf(b, sizeof b, "%.1f", pull_ms);
    std::snprintf(c, sizeof c, "%.2fx", pull_ms / push_ms);
    print_row({std::to_string(count), a, b, c});
  }

  std::printf(
      "\nShape check: push is one bulk transfer regardless of element count;\n"
      "pull pays one round trip per element, so the ratio grows with element\n"
      "count — the price of removing both trust and the owner from the path.\n");
  return 0;
}
