// Shared benchmark world: the paper's Table 1 testbed fully deployed —
// secure naming, location tree, a GlobeDoc object server on the Amsterdam
// primary host, plus the Apache (plain HTTP) and Apache+SSL baselines
// serving the same content.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "globedoc/owner.hpp"
#include "globedoc/proxy.hpp"
#include "globedoc/server.hpp"
#include "http/secure_channel.hpp"
#include "http/static_server.hpp"
#include "location/builder.hpp"
#include "naming/service.hpp"
#include "net/topology.hpp"

namespace globe::bench {

class PaperWorld {
 public:
  PaperWorld();

  /// Creates a GlobeDoc object holding `elements`, registers `name`,
  /// publishes one replica on the Amsterdam-primary object server, and
  /// mirrors the same files into the Apache and SSL docroots under
  /// "/<name>/<element>".
  void add_object(const std::string& name,
                  std::vector<globedoc::PageElement> elements);

  /// Proxy configuration for a client on `host` (local location site,
  /// naming root + anchor; identity checks off, as in the paper's
  /// measurements).
  globedoc::ProxyConfig proxy_config_for(net::HostId host) const;

  net::PaperTopology topo;

  net::Endpoint naming_ep;
  crypto::RsaPublicKey naming_anchor;

  std::unique_ptr<location::LocationTree> tree;

  net::Endpoint object_server_ep;  // GlobeDoc replicas (Amsterdam primary)
  net::Endpoint apache_ep;         // plain HTTP baseline
  net::Endpoint ssl_ep;            // SSL baseline
  static constexpr const char* kSslName = "www.cs.vu.nl";

  globedoc::ObjectOwner& owner(const std::string& name);

  /// The Amsterdam-primary object server (e.g. to read its served-element
  /// counters as the "origin load" in flash-crowd runs).
  globedoc::ObjectServer& object_server() { return *object_server_; }

 private:
  std::shared_ptr<naming::ZoneAuthority> root_zone_;
  naming::NamingServer naming_server_;
  rpc::ServiceDispatcher naming_dispatcher_;

  std::unique_ptr<globedoc::ObjectServer> object_server_;
  rpc::ServiceDispatcher object_dispatcher_;
  crypto::RsaKeyPair owner_credentials_;

  http::StaticHttpServer apache_;
  std::unique_ptr<http::SecureServer> ssl_;

  std::map<std::string, std::unique_ptr<globedoc::ObjectOwner>> owners_;
  std::uint64_t next_key_seed_ = 90'000;
};

/// Deterministic pseudo-random content of `bytes` bytes.
util::Bytes synthetic_content(std::size_t bytes, std::uint64_t seed);

/// Prints a row of right-aligned columns.
void print_row(const std::vector<std::string>& cells, int width = 14);

}  // namespace globe::bench
