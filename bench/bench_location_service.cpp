// Ablation A4 — Location Service expanding-ring lookup cost (paper §2.1.2).
//
// A chain of domains (site ⊂ region ⊂ ... ⊂ root) with uniform 10ms links.
// A replica registered at the far end is looked up from the near end: the
// client climbs one ring per level, and the answering node resolves its
// pointer down the other side.  Lookup cost grows with the number of rings
// climbed; objects registered nearby answer at the first ring.
#include <cstdio>
#include <vector>

#include "bench/paper_world.hpp"
#include "location/builder.hpp"

using namespace globe;
using namespace globe::bench;

int main() {
  constexpr int kMaxDepth = 6;

  std::printf("Ablation A4: expanding-ring lookup cost vs tree depth\n\n");
  print_row({"depth", "near_ms", "near_rings", "far_ms", "far_rings"});

  for (int depth = 1; depth <= kMaxDepth; ++depth) {
    net::SimNet net;
    // One host per tree level plus two leaf sites.
    std::vector<net::HostId> hosts;
    for (int i = 0; i < depth + 2; ++i) {
      hosts.push_back(net.add_host({"h" + std::to_string(i), net::CpuModel{}}));
    }
    net.set_default_link({util::millis(10), 1e6});

    // Chain: root -> r1 -> ... -> r(depth-1); two sites under the root path:
    // site-near under the deepest interior node, site-far under the root.
    std::vector<location::DomainSpec> specs;
    specs.push_back({"d0", "", hosts[0], 100, false});
    for (int i = 1; i < depth; ++i) {
      specs.push_back({"d" + std::to_string(i), "d" + std::to_string(i - 1),
                       hosts[static_cast<std::size_t>(i)], 100, false});
    }
    std::string deepest = "d" + std::to_string(depth - 1);
    specs.push_back({"site-near", deepest, hosts[static_cast<std::size_t>(depth)],
                     100, true});
    specs.push_back({"site-far", "d0", hosts[static_cast<std::size_t>(depth + 1)],
                     100, true});
    location::LocationTree tree(net, specs);

    auto flow = net.open_flow(hosts[static_cast<std::size_t>(depth)]);
    location::LocationClient client(*flow, tree.endpoint("site-near"));

    util::Bytes near_oid(20, 0x01), far_oid(20, 0x02);
    net::Endpoint near_replica{hosts[static_cast<std::size_t>(depth)], 9000};
    net::Endpoint far_replica{hosts[static_cast<std::size_t>(depth + 1)], 9000};
    if (!client.insert(tree.endpoint("site-near"), near_oid, near_replica).is_ok() ||
        !client.insert(tree.endpoint("site-far"), far_oid, far_replica).is_ok()) {
      std::fprintf(stderr, "insert failed\n");
      return 1;
    }

    auto measure = [&](const util::Bytes& oid, double& ms, std::size_t& rings) {
      auto f = net.open_quiescent_flow(hosts[static_cast<std::size_t>(depth)]);
      location::LocationClient c(*f, tree.endpoint("site-near"));
      util::SimTime start = f->now();
      auto r = c.lookup(oid);
      if (!r.is_ok()) std::abort();
      ms = util::to_millis(f->now() - start);
      rings = c.last_rings();
    };

    double near_ms, far_ms;
    std::size_t near_rings, far_rings;
    measure(near_oid, near_ms, near_rings);
    measure(far_oid, far_ms, far_rings);

    char n_ms[32], f_ms[32];
    std::snprintf(n_ms, sizeof n_ms, "%.1f", near_ms);
    std::snprintf(f_ms, sizeof f_ms, "%.1f", far_ms);
    print_row({std::to_string(depth), n_ms, std::to_string(near_rings), f_ms,
               std::to_string(far_rings)});
  }

  std::printf(
      "\nShape check: near lookups answer at ring 1 with depth-independent\n"
      "cost; far lookups climb one ring per level, so cost grows linearly\n"
      "with tree depth — the locality property the Globe Location Service\n"
      "is designed around.\n");
  return 0;
}
