// Ablation A2 — per-document replication policy selection vs one global
// policy (paper §2 / ref [13], Pierre et al.).
//
// A heterogeneous site: hot static documents, regional documents, cold but
// frequently-updated documents.  Applying any single policy site-wide is
// dominated by selecting the best policy per document, reproducing [13]'s
// headline result that motivates GlobeDoc's per-object replication
// policies.
#include <cstdio>
#include <vector>

#include "bench/paper_world.hpp"
#include "replication/policy.hpp"
#include "replication/trace.hpp"

using namespace globe;
using namespace globe::replication;

int main() {
  // 30 documents with skewed popularity over 3 regions, 2 hours.
  TraceConfig config;
  config.documents = 30;
  config.regions = 3;
  config.duration = util::seconds(7200);
  config.accesses_per_second = 2.0;
  config.doc_zipf_exponent = 1.4;  // strong skew: a hot head, a cold tail
  config.seed = 20260704;
  auto trace = generate_trace(config);

  RegionModel region;
  EvaluatorConfig evaluator;
  SelectionWeights weights;

  // Document mix: sizes span 2 KB - 1 MB; a third are static, a third get
  // occasional edits, a third are news tickers updated every 30 s.
  const std::size_t kSizes[] = {2'000, 20'000, 100'000, 500'000, 1'000'000};
  std::vector<DocumentProfile> docs(config.documents);
  for (std::uint32_t d = 0; d < config.documents; ++d) {
    docs[d].size_bytes = kSizes[d % 5];
    docs[d].accesses = filter_document(trace, d);
    if (d % 3 == 1) {
      docs[d].updates = update_schedule(config.duration, util::seconds(600));
    } else if (d % 3 == 2) {
      docs[d].updates = update_schedule(config.duration, util::seconds(30));
    }
  }

  struct Aggregate {
    double weighted = 0, latency = 0, wan_mb = 0;
    std::size_t stale = 0, accesses = 0;
  };
  auto evaluate_global = [&](PolicyKind kind) {
    Aggregate agg;
    for (const auto& doc : docs) {
      PolicyCost cost = kind == PolicyKind::kAdaptive
                            ? select_best_policy(doc, region, evaluator, weights)
                            : evaluate_policy(kind, doc, region, evaluator);
      agg.weighted += cost.weighted(weights.latency, weights.bandwidth,
                                    weights.staleness);
      agg.latency += cost.total_latency_ms;
      agg.wan_mb += cost.wan_bytes / 1e6;
      agg.stale += cost.stale_accesses;
      agg.accesses += cost.accesses;
    }
    return agg;
  };

  std::printf("Ablation A2: global replication policy vs per-document selection\n");
  std::printf("(%u documents, %zu accesses, 3 regions, 2h trace)\n\n",
              config.documents, trace.size());
  bench::print_row(
      {"policy", "weighted", "mean_lat_ms", "wan_MB", "stale"});

  double adaptive_score = 0;
  double best_fixed = 1e300;
  for (PolicyKind kind : {PolicyKind::kNoReplication, PolicyKind::kTtlCache,
                          PolicyKind::kFullReplication, PolicyKind::kAdaptive}) {
    Aggregate agg = evaluate_global(kind);
    char w[32], l[32], b[32];
    std::snprintf(w, sizeof w, "%.0f", agg.weighted);
    std::snprintf(l, sizeof l, "%.1f",
                  agg.latency / static_cast<double>(agg.accesses));
    std::snprintf(b, sizeof b, "%.1f", agg.wan_mb);
    bench::print_row({policy_name(kind), w, l, b, std::to_string(agg.stale)});
    if (kind == PolicyKind::kAdaptive) {
      adaptive_score = agg.weighted;
    } else {
      best_fixed = std::min(best_fixed, agg.weighted);
    }
  }

  // Per-document choices made by the adaptive strategy.
  std::size_t counts[3] = {0, 0, 0};
  for (const auto& doc : docs) {
    PolicyCost best = select_best_policy(doc, region, evaluator, weights);
    counts[static_cast<int>(best.kind)]++;
  }
  std::printf("\nAdaptive per-document choices: NoReplication=%zu TtlCache=%zu "
              "FullReplication=%zu\n",
              counts[0], counts[1], counts[2]);
  std::printf("Adaptive improves on the best global policy by %.1f%%\n",
              100.0 * (best_fixed - adaptive_score) / best_fixed);
  std::printf(
      "\nPaper shape check: [13] reports that per-document strategy selection\n"
      "beats every one-size-fits-all policy; the adaptive row must dominate.\n");
  return adaptive_score <= best_fixed ? 0 : 1;
}
