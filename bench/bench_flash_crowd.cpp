// Ablation A3 — flash-crowd behaviour: a single origin replica vs dynamic
// per-region replication (the motivating scenario of paper §1).
//
// A document hosted on the Amsterdam primary suddenly becomes popular in
// Paris.  Without replication every request crosses the WAN and queues at
// the origin; with the DynamicReplicator, a replica appears in Paris when
// the observed rate crosses the threshold and client latency collapses to
// LAN levels.  Every fetch runs the full secure pipeline (real signatures,
// real verification).
//
// The run is also watched the way an operator would watch it: the Paris
// proxies share a scrapable per-node registry, and a TelemetryAggregator
// polls it over the simulated WAN once per window.  The per-replica
// windowed p99 it derives from the proxy.fetch_ms bucket deltas
// (flash_crowd.replica_p99_ms) shows the same A3 story tail-first — the
// origin's p99 explodes under the crowd while the Paris replica's stays
// at LAN level the moment it exists.
#include <algorithm>
#include <barrier>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/paper_world.hpp"
#include "cache/tier.hpp"
#include "obs/collector.hpp"
#include "obs/export.hpp"
#include "obs/profile.hpp"
#include "obs/telemetry.hpp"
#include "replication/coordinator.hpp"
#include "replication/trace.hpp"

using namespace globe;
using namespace globe::bench;

namespace {

struct BucketStats {
  double total_ms = 0;
  // Split of total_ms via the stitched cross-host trace of each fetch:
  // server_ms is time inside spans recorded ON the serving hosts (origin or
  // replica), the rest is network + proxy-side verification.  Under origin
  // overload the growth is in server_ms (CPU queueing), not the network.
  double server_ms = 0;
  std::size_t count = 0;
};

constexpr util::SimDuration kBucket = util::seconds(120);

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(samples.size())));
  return samples[std::min(rank == 0 ? 0 : rank - 1, samples.size() - 1)];
}

// Thundering herd against one hot element (PR 6): N clients behind a handful
// of edge proxies hammer herd.vu.nl/index.html inside a 10 s window, then a
// smaller browse wave walks the sibling assets.  With the shared
// EdgeCacheTier the herd collapses to ONE verified upstream fill per element
// (single-flight + verified-once-serve-many) and the siblings arrive via
// delayed replication before the browse wave asks for them; without it every
// request is an origin round trip.
void run_thundering_herd(obs::MetricsRegistry& registry, bool fast) {
  const std::string kDoc = "herd.vu.nl";
  const std::vector<std::string> kAssets = {"style.css", "app.js", "logo.gif",
                                            "story.txt"};
  const std::size_t kElements = 1 + kAssets.size();
  constexpr std::size_t kEdgeProxies = 8;  // worker threads, one proxy each
  constexpr double kHerdSeconds = 10.0;

  std::printf("\nThundering herd: shared edge-cache tier vs direct fetches\n\n");
  print_row({"clients", "cache", "origin_fetch", "per_element", "p99_ms",
             "mean_ms"});

  std::vector<std::size_t> herd_sizes = {1000, 10000};
  if (fast) herd_sizes = {1000};  // CI perf lane: one herd size is enough

  for (std::size_t clients : herd_sizes) {
    for (bool cache_on : {false, true}) {
      PaperWorld world;
      std::vector<globedoc::PageElement> elements;
      elements.push_back({"index.html", "text/html",
                          synthetic_content(8 * 1024, 600)});
      for (std::size_t i = 0; i < kAssets.size(); ++i) {
        elements.push_back({kAssets[i], "application/octet-stream",
                            synthetic_content(8 * 1024, 601 + i)});
      }
      world.add_object(kDoc, elements);

      std::unique_ptr<cache::EdgeCacheTier> tier;
      if (cache_on) {
        cache::TierConfig tc;
        tc.registry = &registry;
        tier = std::make_unique<cache::EdgeCacheTier>(tc);
      }

      const std::size_t origin_before = world.object_server().elements_served();
      // Per-cell crypto attribution: the herd's worker threads carry no
      // registry scope, so their probes land in the process-global profile
      // registry — reset it after setup (publication signs/hashes are not
      // part of the herd) and read the cell's own serving-path deltas.
      obs::global_profile_registry().reset();
      const util::SimDuration gap = static_cast<util::SimDuration>(
          kHerdSeconds * static_cast<double>(util::kSecond) /
          static_cast<double>(clients));

      std::vector<double> herd_ms;
      std::mutex herd_mutex;
      bool failed = false;
      // All edge proxies bind first, then release together onto the cold
      // cache so their first misses genuinely overlap (the coalescing case).
      std::barrier start_line(kEdgeProxies);
      std::vector<std::thread> workers;
      for (std::size_t t = 0; t < kEdgeProxies; ++t) {
        workers.emplace_back([&, t] {
          auto flow = world.topo.net.open_flow(world.topo.paris);
          auto pc = world.proxy_config_for(world.topo.paris);
          pc.cache_bindings = true;  // one bind per edge proxy, not per client
          pc.edge_cache = tier.get();
          globedoc::GlobeDocProxy proxy(*flow, pc);
          std::vector<double> local;
          start_line.arrive_and_wait();
          for (std::size_t i = t; i < clients; i += kEdgeProxies) {
            flow->set_time(std::max(
                flow->now(), static_cast<util::SimTime>(i) * gap));
            auto result = proxy.fetch(kDoc, "index.html");
            if (!result.is_ok()) {
              std::lock_guard<std::mutex> lock(herd_mutex);
              failed = true;
              return;
            }
            local.push_back(util::to_millis(result->metrics.total_time));
          }
          std::lock_guard<std::mutex> lock(herd_mutex);
          herd_ms.insert(herd_ms.end(), local.begin(), local.end());
        });
      }
      for (auto& worker : workers) worker.join();
      if (failed) {
        std::fprintf(stderr, "herd fetch failed (clients=%zu cache=%d)\n",
                     clients, cache_on ? 1 : 0);
        std::exit(1);
      }

      // Background: delayed replication pulls the sibling assets while the
      // network is quiet, so the browse wave below finds them cached.
      if (tier) {
        auto pump_flow = world.topo.net.open_flow(world.topo.paris);
        while (tier->replicator().pending() > 0) {
          auto stats = tier->run_delayed_pulls(*pump_flow);
          if (stats.elements_pulled == 0 && stats.documents_done == 0 &&
              stats.elements_failed == 0) {
            break;
          }
        }
      }

      // Browse wave: a tenth of the crowd walks the page's assets.
      {
        auto flow = world.topo.net.open_flow(world.topo.paris);
        auto pc = world.proxy_config_for(world.topo.paris);
        pc.cache_bindings = true;
        pc.edge_cache = tier.get();
        globedoc::GlobeDocProxy proxy(*flow, pc);
        for (std::size_t i = 0; i < clients / 10; ++i) {
          auto result = proxy.fetch(kDoc, kAssets[i % kAssets.size()]);
          if (!result.is_ok()) {
            std::fprintf(stderr, "browse fetch failed: %s\n",
                         result.status().to_string().c_str());
            std::exit(1);
          }
        }
      }

      const std::size_t origin_fetches =
          world.object_server().elements_served() - origin_before;
      const double per_element = static_cast<double>(origin_fetches) /
                                 static_cast<double>(kElements);
      const double p99 = percentile(herd_ms, 0.99);
      double mean = 0;
      for (double ms : herd_ms) mean += ms;
      mean /= static_cast<double>(herd_ms.size());

      char fetches[32], per_el[32], p99_s[32], mean_s[32];
      std::snprintf(fetches, sizeof fetches, "%zu", origin_fetches);
      std::snprintf(per_el, sizeof per_el, "%.2f", per_element);
      std::snprintf(p99_s, sizeof p99_s, "%.2f", p99);
      std::snprintf(mean_s, sizeof mean_s, "%.2f", mean);
      print_row({std::to_string(clients), cache_on ? "on" : "off", fetches,
                 per_el, p99_s, mean_s});

      const obs::Labels labels = {
          {"clients", std::to_string(clients)},
          {"mode", cache_on ? "cache_on" : "cache_off"}};
      registry.gauge("flash_crowd.origin_fetches_per_element", labels)
          .set(per_element);
      registry.gauge("flash_crowd.origin_qps_per_element", labels)
          .set(per_element / kHerdSeconds);
      registry.gauge("flash_crowd.herd_p99_ms", labels).set(p99);
      registry.gauge("flash_crowd.herd_mean_ms", labels).set(mean);

      // Serving-path crypto breakdown for the cell.  Call counts are
      // deterministic (the perf gate pins them exactly: with the tier the
      // verifies collapse to ~one per element); cpu_ns is real host CPU
      // and machine-dependent, so the gate skips it.
      obs::ProfileSnapshot psnap = obs::global_profile_registry().snapshot();
      std::map<std::string, obs::ProbeStat> by_leaf;
      for (const auto& sample : psnap.samples) {
        obs::ProbeStat& agg = by_leaf[sample.leaf];
        agg.calls += sample.stat.calls;
        agg.cpu_ns += sample.stat.cpu_ns;
      }
      for (const char* probe :
           {"rsa_verify", "sha1", "cert_verify", "element_verify"}) {
        const obs::ProbeStat& stat = by_leaf[probe];
        obs::Labels probe_labels = labels;
        probe_labels.emplace_back("probe", probe);
        registry.gauge("flash_crowd.crypto_calls", probe_labels)
            .set(static_cast<double>(stat.calls));
        registry.gauge("flash_crowd.crypto_cpu_ns", probe_labels)
            .set(static_cast<double>(stat.cpu_ns));
      }

      if (cache_on && per_element > 2.0) {
        std::fprintf(stderr,
                     "cache-on herd cost the origin %.2f fetches/element "
                     "(bound: 2)\n",
                     per_element);
        std::exit(1);
      }
    }
  }
  std::printf(
      "\nWith the tier the whole herd costs the origin ~1 upstream fetch per\n"
      "element (coalesced fill + delayed sibling pull) and client p99 stays\n"
      "flat from 1k to 10k clients; without it origin load scales with the\n"
      "crowd.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string kDoc = "hot.vu.nl";

  // Usage: bench_flash_crowd [--fast] [out.json].  --fast is the CI perf
  // lane's configuration: a shorter crowd and a single herd size, compared
  // by tools/perf_diff.py against a baseline seeded with the same flag.
  bool fast = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
    } else {
      out_path = argv[i];
    }
  }

  // The flash crowd: Paris clients hammering one document.
  replication::TraceConfig base;
  base.documents = 1;
  base.regions = 1;
  base.duration = fast ? util::seconds(600) : util::seconds(1200);
  base.accesses_per_second = 0.5;
  base.seed = 7;
  replication::FlashCrowdConfig crowd;
  crowd.document = 0;
  crowd.hot_region = 0;
  crowd.start = fast ? util::seconds(120) : util::seconds(240);
  crowd.ramp = fast ? util::seconds(60) : util::seconds(120);
  crowd.hold = fast ? util::seconds(150) : util::seconds(400);
  // Peak ~70 req/s: close to the origin's service capacity, so the static
  // deployment queues visibly while the replicated one stays at LAN latency.
  crowd.peak_multiplier = 140.0;
  auto trace = replication::generate_flash_crowd(base, crowd);

  std::printf("Ablation A3: flash crowd from Paris (%zu requests over %.0fs)\n\n",
              trace.size(), util::to_seconds(base.duration));

  std::map<std::string, std::map<std::uint64_t, BucketStats>> results;
  std::map<std::uint64_t, std::size_t> replica_counts;
  // mode -> window index -> replica endpoint -> windowed p99 (ms), as the
  // aggregator derives it from scraped proxy.fetch_ms bucket deltas.
  std::map<std::string, std::map<std::uint64_t, std::map<std::string, double>>>
      replica_p99;
  std::map<std::string, std::uint64_t> scrape_errors;

  // Keep every trace so each fetch can be decomposed right after it runs.
  auto& collector = obs::global_trace_collector();
  collector.set_policy({/*keep_slower_than=*/0, /*keep_one_in=*/1});
  collector.clear();

  for (bool dynamic : {false, true}) {
    PaperWorld world;
    world.add_object(kDoc, {globedoc::PageElement{
                               "index.html", "text/html",
                               synthetic_content(20 * 1024, 99)}});

    // A Paris object server the replicator may use.
    globedoc::ObjectServer paris_server("paris-server", 1234);
    paris_server.authorize(world.owner(kDoc).credential_key());
    rpc::ServiceDispatcher paris_dispatcher;
    paris_server.register_with(paris_dispatcher);
    net::Endpoint paris_server_ep{world.topo.paris, 8000};
    world.topo.net.bind(paris_server_ep, paris_dispatcher.handler());

    auto owner_flow = world.topo.net.open_flow(world.topo.amsterdam_primary);
    replication::DynamicReplicator::Config rconfig;
    rconfig.replicate_above_rps = 3.0;
    rconfig.retire_below_rps = 0.2;
    rconfig.window = util::seconds(60);
    replication::DynamicReplicator replicator(
        world.owner(kDoc), *owner_flow,
        {{"paris", paris_server_ep, world.tree->endpoint("site-paris")}}, rconfig);

    const char* label = dynamic ? "dynamic" : "static";
    util::SimTime next_rebalance = util::seconds(30);

    // The telemetry plane riding along: every Paris proxy records into one
    // scrapable per-node registry, polled across the WAN from Amsterdam.
    obs::MetricsRegistry proxy_registry;
    obs::TelemetryNode proxy_telemetry(proxy_registry, "paris-proxy", "proxy");
    rpc::ServiceDispatcher telemetry_dispatcher;
    proxy_telemetry.register_with(telemetry_dispatcher);
    net::Endpoint telemetry_ep{world.topo.paris, 9100};
    world.topo.net.bind(telemetry_ep, telemetry_dispatcher.handler());
    obs::TelemetryAggregator aggregator;
    aggregator.add_target({"paris-proxy", "proxy", telemetry_ep});
    auto monitor_flow = world.topo.net.open_flow(world.topo.amsterdam_primary);

    // Scrape rounds land ~kBucket apart; the +30 s slack makes the trailing
    // window reliably span back to the previous round.
    auto scrape_window = [&](util::SimTime at, std::uint64_t window_index) {
      monitor_flow->set_time(std::max(monitor_flow->now(), at));
      aggregator.scrape_round(*monitor_flow);
      for (const obs::Labels& series : aggregator.series_labels("proxy.fetch_ms")) {
        auto delta = aggregator.windowed_histogram(
            "proxy.fetch_ms", series, kBucket + util::seconds(30));
        if (!delta || delta->count == 0) continue;
        for (const auto& [key, value] : series) {
          if (key == "replica") replica_p99[label][window_index][value] = delta->p99;
        }
      }
    };
    aggregator.scrape_round(*monitor_flow);  // baseline round at t~0
    util::SimTime next_scrape = kBucket;

    for (const auto& access : trace) {
      if (access.time >= next_scrape) {
        scrape_window(access.time, next_scrape / kBucket - 1);
        next_scrape += kBucket;
      }
      if (dynamic) {
        replicator.record_access("paris", access.time);
        if (access.time >= next_rebalance) {
          owner_flow->set_time(std::max(owner_flow->now(), access.time));
          if (!replicator.rebalance(access.time).is_ok()) return 1;
          next_rebalance = access.time + util::seconds(30);
        }
      }
      auto flow = world.topo.net.open_flow(world.topo.paris, access.time);
      auto proxy_config = world.proxy_config_for(world.topo.paris);
      proxy_config.registry = &proxy_registry;
      globedoc::GlobeDocProxy proxy(*flow, proxy_config);
      auto result = proxy.fetch(kDoc, "index.html");
      if (!result.is_ok()) {
        std::fprintf(stderr, "fetch failed: %s\n",
                     result.status().to_string().c_str());
        return 1;
      }
      std::uint64_t bucket = access.time / kBucket;
      auto& stats = results[label][bucket];
      stats.total_ms += util::to_millis(result->metrics.total_time);
      auto stitched = collector.find(result->metrics.trace_hi,
                                     result->metrics.trace_lo);
      if (!stitched || !stitched->complete) {
        std::fprintf(stderr, "fetch at t=%.0fs left no stitched trace\n",
                     util::to_seconds(access.time));
        return 1;
      }
      stats.server_ms += util::to_millis(obs::remote_span_total(stitched->root));
      stats.count += 1;
      if (dynamic) {
        replica_counts[bucket] = 1 + replicator.replica_count();
      }
    }
    // Close out the last window, then tally this mode's scrape health.
    if (next_scrape <= base.duration) {
      scrape_window(base.duration, next_scrape / kBucket - 1);
    }
    for (const obs::NodeStatus& node : aggregator.nodes()) {
      scrape_errors[label] += node.scrapes_failed;
    }
  }

  std::printf("Mean secure-fetch latency (ms) per %0.0fs window:\n\n",
              util::to_seconds(kBucket));
  auto& registry = obs::global_registry();
  print_row({"t_start_s", "req/s", "static", "dynamic", "replicas"});
  for (const auto& [bucket, stats] : results["static"]) {
    const auto& dyn = results["dynamic"][bucket];
    char t[32], rate[32], s_ms[32], d_ms[32];
    std::snprintf(t, sizeof t, "%llu",
                  static_cast<unsigned long long>(bucket * kBucket / util::kSecond));
    std::snprintf(rate, sizeof rate, "%.1f",
                  static_cast<double>(stats.count) / util::to_seconds(kBucket));
    std::snprintf(s_ms, sizeof s_ms, "%.1f",
                  stats.total_ms / static_cast<double>(stats.count));
    std::snprintf(d_ms, sizeof d_ms,
                  "%.1f", dyn.count ? dyn.total_ms / static_cast<double>(dyn.count) : 0);
    print_row({t, rate, s_ms, d_ms, std::to_string(replica_counts[bucket])});

    // Zero-padded window label so the JSON artifact sorts chronologically.
    char window[32];
    std::snprintf(window, sizeof window, "%05llu",
                  static_cast<unsigned long long>(bucket * kBucket / util::kSecond));
    registry.gauge("flash_crowd.requests_per_s", {{"window_s", window}})
        .set(static_cast<double>(stats.count) / util::to_seconds(kBucket));
    registry
        .gauge("flash_crowd.mean_ms", {{"mode", "static"}, {"window_s", window}})
        .set(stats.total_ms / static_cast<double>(stats.count));
    registry
        .gauge("flash_crowd.mean_ms", {{"mode", "dynamic"}, {"window_s", window}})
        .set(dyn.count ? dyn.total_ms / static_cast<double>(dyn.count) : 0);
    registry
        .gauge("flash_crowd.server_ms", {{"mode", "static"}, {"window_s", window}})
        .set(stats.server_ms / static_cast<double>(stats.count));
    registry
        .gauge("flash_crowd.server_ms", {{"mode", "dynamic"}, {"window_s", window}})
        .set(dyn.count ? dyn.server_ms / static_cast<double>(dyn.count) : 0);
    registry
        .gauge("flash_crowd.net_ms", {{"mode", "static"}, {"window_s", window}})
        .set((stats.total_ms - stats.server_ms) / static_cast<double>(stats.count));
    registry
        .gauge("flash_crowd.net_ms", {{"mode", "dynamic"}, {"window_s", window}})
        .set(dyn.count
                 ? (dyn.total_ms - dyn.server_ms) / static_cast<double>(dyn.count)
                 : 0);
    registry.gauge("flash_crowd.replicas", {{"window_s", window}})
        .set(static_cast<double>(replica_counts[bucket]));
    for (const char* mode : {"static", "dynamic"}) {
      for (const auto& [replica, p99] : replica_p99[mode][bucket]) {
        registry
            .gauge("flash_crowd.replica_p99_ms",
                   {{"mode", mode}, {"replica", replica}, {"window_s", window}})
            .set(p99);
      }
    }
  }

  std::printf("\nAggregator-observed windowed p99 (ms) per replica, dynamic "
              "deployment:\n\n");
  print_row({"t_start_s", "replica", "p99_ms"});
  for (const auto& [window_index, per_replica] : replica_p99["dynamic"]) {
    for (const auto& [replica, p99] : per_replica) {
      char t[32], p[32];
      std::snprintf(t, sizeof t, "%llu",
                    static_cast<unsigned long long>(window_index * kBucket /
                                                    util::kSecond));
      std::snprintf(p, sizeof p, "%.1f", p99);
      print_row({t, replica.c_str(), p});
    }
  }
  for (const auto& [mode, failed] : scrape_errors) {
    registry.gauge("flash_crowd.scrape_errors", {{"mode", mode}})
        .set(static_cast<double>(failed));
  }

  run_thundering_herd(registry, fast);

  if (out_path != nullptr) {
    auto status =
        obs::write_bench_json(out_path, "flash_crowd", registry.snapshot());
    if (!status.is_ok()) {
      std::fprintf(stderr, "write_bench_json: %s\n", status.to_string().c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", out_path);
  }

  std::printf(
      "\nPaper shape check: during the crowd the static deployment's latency\n"
      "grows (WAN + origin queueing) while the dynamic deployment converges\n"
      "to LAN-level latency once the Paris replica is created — replication\n"
      "on (untrusted) nearby servers is exactly what GlobeDoc enables.\n");
  return 0;
}
