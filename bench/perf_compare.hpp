// Shared implementation of Figures 5-7: GlobeDoc proxy vs Apache (plain
// HTTP) vs Apache+SSL fetching three 11-element objects (15 KB, 105 KB,
// 1005 KB) from one client host.
#pragma once

#include <string>

#include "bench/paper_world.hpp"

namespace globe::bench {

/// Builds the three paper objects (1×5 KB text + 10 images of 1/10/100 KB)
/// in `world`.  Object names: perf-small/medium/large .vu.nl.
void add_perf_objects(PaperWorld& world);

/// Runs the comparison from `client` and prints the Figure 5/6/7 table.
/// Records per-(object, protocol) timings into the global metrics registry
/// and, when `json_path` is non-empty, writes the registry snapshot there
/// as a BENCH_*.json artifact.  Returns non-zero on failure.
int run_perf_comparison(PaperWorld& world, net::HostId client,
                        const std::string& figure_label,
                        const std::string& json_path = "");

}  // namespace globe::bench
