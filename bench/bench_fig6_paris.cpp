// Figure 6 — Performance comparison, Paris client (trans-European path).
#include "bench/perf_compare.hpp"

int main(int argc, char** argv) {
  globe::bench::PaperWorld world;
  globe::bench::add_perf_objects(world);
  return globe::bench::run_perf_comparison(
      world, world.topo.paris, "Figure 6: Performance comparison - Paris client",
      argc > 1 ? argv[1] : "");
}
