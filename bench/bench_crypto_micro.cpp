// Ablation A5 — real wall-clock microbenchmarks of the from-scratch crypto
// substrate (google-benchmark).  These are the 2026 numbers; the simulated
// figures use the era CpuModel instead (see DESIGN.md §2).
#include <benchmark/benchmark.h>

#include "crypto/aes.hpp"
#include "crypto/drbg.hpp"
#include "crypto/hmac.hpp"
#include "crypto/merkle.hpp"
#include "crypto/prime.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "globedoc/integrity.hpp"

namespace {

using namespace globe;

util::Bytes test_data(std::size_t n) {
  auto rng = crypto::HmacDrbg::from_seed(n);
  return rng.bytes(n);
}

const crypto::RsaKeyPair& key1024() {
  static const crypto::RsaKeyPair kp = [] {
    auto rng = crypto::HmacDrbg::from_seed(1);
    return crypto::rsa_generate(1024, rng);
  }();
  return kp;
}

void BM_Sha1(benchmark::State& state) {
  util::Bytes data = test_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha1::digest(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(1024)->Arg(65536)->Arg(1048576);

void BM_Sha256(benchmark::State& state) {
  util::Bytes data = test_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::digest(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(65536);

void BM_HmacSha1(benchmark::State& state) {
  util::Bytes key = test_data(20);
  util::Bytes data = test_data(65536);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac<crypto::Sha1>(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 65536);
}
BENCHMARK(BM_HmacSha1);

void BM_AesCtr(benchmark::State& state) {
  util::Bytes key = test_data(16);
  util::Bytes nonce = test_data(12);
  util::Bytes data = test_data(65536);
  for (auto _ : state) {
    crypto::AesCtr ctr(key, nonce);
    util::Bytes copy = data;
    ctr.process(copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 65536);
}
BENCHMARK(BM_AesCtr);

void BM_RsaSign1024(benchmark::State& state) {
  util::Bytes msg = test_data(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_sign_sha1(key1024().priv, msg));
  }
}
BENCHMARK(BM_RsaSign1024);

void BM_RsaVerify1024(benchmark::State& state) {
  util::Bytes msg = test_data(256);
  util::Bytes sig = crypto::rsa_sign_sha1(key1024().priv, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_verify_sha1(key1024().pub, msg, sig));
  }
}
BENCHMARK(BM_RsaVerify1024);

void BM_ModPow1024(benchmark::State& state) {
  auto rng = crypto::HmacDrbg::from_seed(2);
  crypto::BigInt base = crypto::BigInt::random_bits(1024, rng);
  crypto::BigInt exp = crypto::BigInt::random_bits(1024, rng);
  crypto::BigInt mod = crypto::BigInt::random_bits(1024, rng);
  if (mod.is_even()) mod = mod + crypto::BigInt(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::BigInt::mod_pow(base, exp, mod));
  }
}
BENCHMARK(BM_ModPow1024);

void BM_MillerRabin256(benchmark::State& state) {
  auto rng = crypto::HmacDrbg::from_seed(3);
  crypto::BigInt prime = crypto::generate_prime(256, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::is_probable_prime(prime, rng, 8));
  }
}
BENCHMARK(BM_MillerRabin256);

void BM_MerkleBuild(benchmark::State& state) {
  std::vector<util::Bytes> leaves;
  for (int i = 0; i < state.range(0); ++i) leaves.push_back(test_data(1024));
  for (auto _ : state) {
    crypto::MerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.root());
  }
}
BENCHMARK(BM_MerkleBuild)->Arg(16)->Arg(256);

void BM_IntegrityCertBuild(benchmark::State& state) {
  std::vector<globedoc::PageElement> elements;
  for (int i = 0; i < state.range(0); ++i) {
    elements.push_back({"el" + std::to_string(i), "text/plain", test_data(1024)});
  }
  auto oid = globedoc::Oid::from_public_key(key1024().pub);
  for (auto _ : state) {
    benchmark::DoNotOptimize(globedoc::IntegrityCertificate::build(
        oid, 1, elements, 0, util::seconds(60), key1024().priv));
  }
}
BENCHMARK(BM_IntegrityCertBuild)->Arg(11);

void BM_CheckElement(benchmark::State& state) {
  std::vector<globedoc::PageElement> elements = {
      {"index.html", "text/html", test_data(65536)}};
  auto oid = globedoc::Oid::from_public_key(key1024().pub);
  auto cert = globedoc::IntegrityCertificate::build(oid, 1, elements, 0,
                                                    util::seconds(60),
                                                    key1024().priv);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cert.check_element("index.html", elements[0], 1));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 65536);
}
BENCHMARK(BM_CheckElement);

}  // namespace

BENCHMARK_MAIN();
