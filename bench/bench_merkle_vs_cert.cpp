// Ablation A1 — per-element integrity certificate (GlobeDoc) vs signed
// Merkle root (r-OSFS, paper §5).
//
// r-OSFS hashes data blocks into a tree and signs only the root: cheap to
// sign, but (a) element verification needs an inclusion proof of log(n)
// hashes and (b) only ONE global freshness interval exists per file system.
// GlobeDoc signs a per-element table: the certificate grows linearly, but
// verification per element is a single hash, and every element carries its
// own validity interval (the granularity argument of §5).
#include <chrono>
#include <cstdio>
#include <vector>

#include "crypto/drbg.hpp"
#include "crypto/merkle.hpp"
#include "globedoc/integrity.hpp"
#include "bench/paper_world.hpp"

using namespace globe;
using Clock = std::chrono::steady_clock;

namespace {

double micros_per_op(const std::function<void()>& op, int iterations) {
  auto start = Clock::now();
  for (int i = 0; i < iterations; ++i) op();
  auto end = Clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count() /
         iterations;
}

}  // namespace

int main() {
  auto rng = crypto::HmacDrbg::from_seed(1);
  auto keys = crypto::rsa_generate(1024, rng);
  auto oid = globedoc::Oid::from_public_key(keys.pub);

  std::printf(
      "Ablation A1: per-element certificate (GlobeDoc) vs signed Merkle root "
      "(r-OSFS)\n\n");
  bench::print_row({"elements", "cert_bytes", "root+proof_B", "cert_us",
                    "merkle_us", "proof_hashes"});

  for (std::size_t n : {1u, 10u, 100u, 1000u}) {
    std::vector<globedoc::PageElement> elements;
    std::vector<util::Bytes> leaves;
    for (std::size_t i = 0; i < n; ++i) {
      globedoc::PageElement el{"el" + std::to_string(i), "text/plain",
                               bench::synthetic_content(1024, i)};
      leaves.push_back(el.serialize());
      elements.push_back(std::move(el));
    }

    // GlobeDoc: one signed table.
    auto cert = globedoc::IntegrityCertificate::build(oid, 1, elements, 0,
                                                      util::seconds(60), keys.priv);
    double cert_us = micros_per_op(
        [&] {
          auto status = cert.check_element(elements[n / 2].name, elements[n / 2], 1);
          if (!status.is_ok()) std::abort();
        },
        2000);

    // r-OSFS: Merkle tree, signed root, per-element inclusion proof.
    crypto::MerkleTree tree(leaves);
    util::Bytes root_sig = crypto::rsa_sign_sha1(keys.priv, tree.root());
    auto proof = tree.prove(n / 2);
    double merkle_us = micros_per_op(
        [&] {
          if (!crypto::MerkleTree::verify(leaves[n / 2], proof, tree.root()))
            std::abort();
        },
        2000);
    std::size_t proof_bytes = tree.root().size() + root_sig.size() +
                              proof.serialize().size();

    char cert_b[32], proof_b[32], cu[32], mu[32], ph[32];
    std::snprintf(cert_b, sizeof cert_b, "%zu", cert.wire_size());
    std::snprintf(proof_b, sizeof proof_b, "%zu", proof_bytes);
    std::snprintf(cu, sizeof cu, "%.2f", cert_us);
    std::snprintf(mu, sizeof mu, "%.2f", merkle_us);
    std::snprintf(ph, sizeof ph, "%zu", proof.steps.size() + 1);
    bench::print_row({std::to_string(n), cert_b, proof_b, cu, mu, ph});
  }

  std::printf(
      "\nTrade-off: the certificate grows linearly with the element count but\n"
      "verifies each element with ONE hash and supports per-element expiry;\n"
      "the Merkle design ships log(n) proof hashes per element and has a\n"
      "single global freshness interval (r-OSFS limitation cited in §5).\n");

  // Freshness granularity demonstration: per-element expiry.
  std::vector<globedoc::PageElement> pair = {
      {"volatile.html", "text/html", util::to_bytes("breaking news")},
      {"archive.html", "text/html", util::to_bytes("old story")},
  };
  auto cert2 = globedoc::IntegrityCertificate::build(oid, 2, pair, 0,
                                                     util::seconds(3600), keys.priv);
  std::printf(
      "\nPer-element freshness: GlobeDoc certificates carry one validity\n"
      "interval per entry (here %zu entries), so a news flash can expire in\n"
      "seconds while an archive stays valid for days — impossible with one\n"
      "signed root per file system.\n",
      cert2.entries().size());
  return 0;
}
