// Table 1 — Experimental setting.
//
// Dumps the simulated reproduction of the paper's testbed: the four hosts
// with their era CPU models, and the calibrated link parameters.  This is
// the configuration every other benchmark runs against.
#include <cstdio>

#include "bench/paper_world.hpp"

int main() {
  using namespace globe;
  using namespace globe::bench;

  net::PaperTopology topo;

  std::printf("Table 1: Experimental setting (simulated reproduction)\n\n");
  print_row({"host", "role", "cpu scale", "rsa verify", "sha1 MB/s"}, 26);
  for (const auto& [id, role] :
       {std::pair{topo.amsterdam_primary, "primary (servers)"},
        std::pair{topo.amsterdam_secondary, "secondary (client)"},
        std::pair{topo.paris, "client"},
        std::pair{topo.ithaca, "client"}}) {
    const auto& host = topo.net.host(id);
    char scale[32], verify[32], sha[32];
    std::snprintf(scale, sizeof scale, "%.1fx", host.cpu.scale);
    std::snprintf(verify, sizeof verify, "%.1f ms",
                  util::to_millis(host.cpu.cost(net::CpuOp::kRsaVerify, 1)));
    std::snprintf(sha, sizeof sha, "%.1f",
                  host.cpu.sha1_mb_s / host.cpu.scale);
    print_row({host.name, role, scale, verify, sha}, 26);
  }

  std::printf("\nLink calibration (one-way latency / bandwidth):\n");
  print_row({"path", "latency", "bandwidth"}, 26);
  auto show_link = [&](const char* label, net::HostId a, net::HostId b) {
    const auto& link = topo.net.link(a, b);
    char lat[32], bw[32];
    std::snprintf(lat, sizeof lat, "%.1f ms", util::to_millis(link.latency));
    std::snprintf(bw, sizeof bw, "%.2f MB/s", link.bandwidth_bytes_per_s / 1e6);
    print_row({label, lat, bw}, 26);
  };
  show_link("Amsterdam LAN", topo.amsterdam_primary, topo.amsterdam_secondary);
  show_link("Amsterdam-Paris", topo.amsterdam_primary, topo.paris);
  show_link("Amsterdam-Ithaca", topo.amsterdam_primary, topo.ithaca);
  return 0;
}
