// Ablation A8 — secure name resolution cost vs delegation depth (§3.1).
//
// The paper argues DNSsec-style secure naming works for GlobeDoc because
// OID records are location-independent and cacheable.  This bench measures
// a validating resolution walking 1..5 signed delegations over a 20 ms RTT
// path, splits out the signature-verification share, and shows the effect
// of positive caching: a cached (already verified) answer is free.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/paper_world.hpp"
#include "crypto/drbg.hpp"
#include "naming/resolver.hpp"
#include "naming/service.hpp"

using namespace globe;
using namespace globe::bench;

int main() {
  std::printf("Ablation A8: secure resolution cost vs delegation depth\n\n");
  print_row({"depth", "resolve_ms", "verify_ms", "verify_share", "cached_ms"});

  for (int depth = 1; depth <= 5; ++depth) {
    net::SimNet net;
    auto ns_host = net.add_host({"ns", net::CpuModel{}});
    auto client_host = net.add_host({"client", net::CpuModel{}});
    net.set_link(ns_host, client_host, {util::millis(10), 2e6});

    // Zone chain: "" -> "d1" -> "d2.d1" -> ..., each on its own port.
    auto seed_rng = crypto::HmacDrbg::from_seed(static_cast<std::uint64_t>(depth));
    std::vector<crypto::RsaKeyPair> keys;
    std::vector<std::shared_ptr<naming::ZoneAuthority>> zones;
    std::vector<std::string> zone_names = {""};
    for (int i = 1; i < depth; ++i) {
      zone_names.push_back("d" + std::to_string(i) +
                           (zone_names.back().empty() ? "" : "." + zone_names.back()));
    }
    std::vector<std::unique_ptr<rpc::ServiceDispatcher>> dispatchers;
    std::vector<std::unique_ptr<naming::NamingServer>> servers;
    std::vector<net::Endpoint> endpoints;
    for (int i = 0; i < depth; ++i) {
      keys.push_back(crypto::rsa_generate(1024, seed_rng));
      zones.push_back(
          std::make_shared<naming::ZoneAuthority>(zone_names[static_cast<std::size_t>(i)],
                                                  keys.back()));
      endpoints.push_back(net::Endpoint{ns_host, static_cast<std::uint16_t>(53 + i)});
    }
    for (int i = 0; i < depth; ++i) {
      if (i + 1 < depth) {
        zones[static_cast<std::size_t>(i)]->delegate(
            zone_names[static_cast<std::size_t>(i + 1)],
            keys[static_cast<std::size_t>(i + 1)].pub,
            endpoints[static_cast<std::size_t>(i + 1)], util::seconds(1u << 30));
      }
      dispatchers.push_back(std::make_unique<rpc::ServiceDispatcher>());
      servers.push_back(std::make_unique<naming::NamingServer>());
      servers.back()->add_zone(zones[static_cast<std::size_t>(i)]);
      servers.back()->register_with(*dispatchers.back());
      net.bind(endpoints[static_cast<std::size_t>(i)], dispatchers.back()->handler());
    }
    std::string name = std::string("doc") +
                       (zone_names.back().empty() ? "" : "." + zone_names.back());
    zones.back()->add_oid(name, util::Bytes(20, 0x55), util::seconds(1u << 30));

    auto flow = net.open_quiescent_flow(client_host);
    naming::SecureResolver resolver(*flow, endpoints[0], keys[0].pub);
    resolver.set_cache_enabled(true);

    util::SimTime start = flow->now();
    auto oid = resolver.resolve(name);
    if (!oid.is_ok()) {
      std::fprintf(stderr, "resolve failed: %s\n", oid.status().to_string().c_str());
      return 1;
    }
    double resolve_ms = util::to_millis(flow->now() - start);
    double verify_ms =
        util::to_millis(static_cast<std::uint64_t>(resolver.signatures_verified()) *
                        net::CpuModel{}.rsa_verify);

    util::SimTime cached_start = flow->now();
    (void)resolver.resolve(name);
    double cached_ms = util::to_millis(flow->now() - cached_start);

    char a[32], b[32], c[32], d[32];
    std::snprintf(a, sizeof a, "%.1f", resolve_ms);
    std::snprintf(b, sizeof b, "%.1f", verify_ms);
    std::snprintf(c, sizeof c, "%.0f%%", 100.0 * verify_ms / resolve_ms);
    std::snprintf(d, sizeof d, "%.2f", cached_ms);
    print_row({std::to_string(depth), a, b, c, d});
  }

  std::printf(
      "\nShape check: resolution cost is dominated by per-level round trips,\n"
      "not signature verification (the paper's argument that DNSsec-style\n"
      "naming is affordable); cached answers are free until their TTL.\n");
  return 0;
}
