// Ablation A6 — binding reuse: per-access full binding (name resolution,
// location lookup, key + certificate verification) vs a cached verified
// binding amortized over a session.
//
// The paper's proxy binds to an object once and then serves page elements;
// this ablation quantifies how much of GlobeDoc's cost is the one-time
// secure binding and how quickly it amortizes — the reason Figures 5-7
// show GlobeDoc competitive with plain HTTP despite its security checks.
#include <cstdio>
#include <vector>

#include "bench/paper_world.hpp"

using namespace globe;
using namespace globe::bench;

int main() {
  PaperWorld world;
  std::vector<globedoc::PageElement> elements;
  for (int i = 0; i < 32; ++i) {
    elements.push_back(globedoc::PageElement{
        "el" + std::to_string(i) + ".html", "text/html",
        synthetic_content(4 * 1024, static_cast<std::uint64_t>(i))});
  }
  world.add_object("session.vu.nl", std::move(elements));

  std::printf("Ablation A6: per-access binding vs cached binding (Paris client)\n\n");
  print_row({"elements", "rebind_ms", "cached_ms", "speedup", "ms/elem cached"});

  for (int count : {1, 2, 4, 8, 16, 32}) {
    auto run = [&](bool cache) {
      auto flow = world.topo.net.open_quiescent_flow(world.topo.paris);
      util::SimTime start = flow->now();
      auto config = world.proxy_config_for(world.topo.paris);
      config.cache_bindings = cache;
      globedoc::GlobeDocProxy proxy(*flow, config);
      for (int i = 0; i < count; ++i) {
        auto r = proxy.fetch("session.vu.nl", "el" + std::to_string(i) + ".html");
        if (!r.is_ok()) std::abort();
      }
      return util::to_millis(flow->now() - start);
    };
    double rebind = run(false);
    double cached = run(true);

    char a[32], b[32], c[32], d[32];
    std::snprintf(a, sizeof a, "%.1f", rebind);
    std::snprintf(b, sizeof b, "%.1f", cached);
    std::snprintf(c, sizeof c, "%.2fx", rebind / cached);
    std::snprintf(d, sizeof d, "%.1f", cached / count);
    print_row({std::to_string(count), a, b, c, d});
  }

  std::printf(
      "\nShape check: the speedup grows with session length and the cached\n"
      "per-element cost approaches a bare element fetch — the security\n"
      "machinery is a per-binding cost, not a per-element one.\n");
  return 0;
}
