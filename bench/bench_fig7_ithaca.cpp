// Figure 7 — Performance comparison, Ithaca client (transatlantic path).
#include "bench/perf_compare.hpp"

int main() {
  globe::bench::PaperWorld world;
  globe::bench::add_perf_objects(world);
  return globe::bench::run_perf_comparison(
      world, world.topo.ithaca, "Figure 7: Performance comparison - Ithaca client");
}
