// Figure 7 — Performance comparison, Ithaca client (transatlantic path).
#include "bench/perf_compare.hpp"

int main(int argc, char** argv) {
  globe::bench::PaperWorld world;
  globe::bench::add_perf_objects(world);
  return globe::bench::run_perf_comparison(
      world, world.topo.ithaca, "Figure 7: Performance comparison - Ithaca client",
      argc > 1 ? argv[1] : "");
}
