#include "bench/perf_compare.hpp"

#include <cstdio>

#include "http/client.hpp"
#include "http/secure_channel.hpp"
#include "obs/export.hpp"

namespace globe::bench {

namespace {

struct ObjectSpec {
  const char* label;
  const char* name;
  std::size_t image_kb;
};

constexpr ObjectSpec kObjects[] = {
    {"15KB", "perf-small.vu.nl", 1},
    {"105KB", "perf-medium.vu.nl", 10},
    {"1005KB", "perf-large.vu.nl", 100},
};

std::vector<std::string> element_names() {
  std::vector<std::string> names = {"index.txt"};
  for (int i = 0; i < 10; ++i) names.push_back("img" + std::to_string(i) + ".jpg");
  return names;
}

}  // namespace

void add_perf_objects(PaperWorld& world) {
  for (const auto& spec : kObjects) {
    std::vector<globedoc::PageElement> elements;
    elements.push_back(globedoc::PageElement{
        "index.txt", "text/plain", synthetic_content(5 * 1024, 1)});
    for (int i = 0; i < 10; ++i) {
      elements.push_back(globedoc::PageElement{
          "img" + std::to_string(i) + ".jpg", "image/jpeg",
          synthetic_content(spec.image_kb * 1024,
                            static_cast<std::uint64_t>(100 + i))});
    }
    world.add_object(spec.name, std::move(elements));
  }
}

int run_perf_comparison(PaperWorld& world, net::HostId client,
                        const std::string& figure_label,
                        const std::string& json_path) {
  std::printf("%s: total time to fetch all 11 page elements (ms)\n\n",
              figure_label.c_str());
  print_row({"object", "GlobeDoc", "HTTP", "HTTPS", "GD/HTTP", "HTTPS/HTTP"});

  auto& registry = obs::global_registry();
  const std::string client_label = world.topo.client_label(client);

  const auto names = element_names();
  for (const auto& spec : kObjects) {
    // --- GlobeDoc: the proxy binds once, then streams the elements.
    double globedoc_ms;
    {
      auto flow = world.topo.net.open_quiescent_flow(client);
      util::SimTime start = flow->now();
      auto config = world.proxy_config_for(client);
      config.cache_bindings = true;
      globedoc::GlobeDocProxy proxy(*flow, config);
      for (const auto& element : names) {
        auto result = proxy.fetch(spec.name, element);
        if (!result.is_ok()) {
          std::fprintf(stderr, "GlobeDoc fetch failed: %s\n",
                       result.status().to_string().c_str());
          return 1;
        }
      }
      globedoc_ms = util::to_millis(flow->now() - start);
    }

    // --- Plain HTTP: wget-style, a fresh connection per file.
    double http_ms;
    {
      auto flow = world.topo.net.open_quiescent_flow(client);
      util::SimTime start = flow->now();
      http::HttpClient wget(*flow);
      for (const auto& element : names) {
        auto resp = wget.get(world.apache_ep,
                             "/" + std::string(spec.name) + "/" + element);
        if (!resp.is_ok() || resp->status != 200) {
          std::fprintf(stderr, "HTTP fetch failed\n");
          return 1;
        }
        flow->reset_connections();
      }
      http_ms = util::to_millis(flow->now() - start);
    }

    // --- HTTPS: a full SSL handshake per file (era wget behaviour).
    double https_ms;
    {
      auto flow = world.topo.net.open_quiescent_flow(client);
      util::SimTime start = flow->now();
      http::SecureHttpClient wget(*flow, PaperWorld::kSslName,
                                  client.value + 1000);
      for (const auto& element : names) {
        auto resp = wget.get(world.ssl_ep,
                             "/" + std::string(spec.name) + "/" + element);
        if (!resp.is_ok() || resp->status != 200) {
          std::fprintf(stderr, "HTTPS fetch failed: %s\n",
                       resp.status().to_string().c_str());
          return 1;
        }
        wget.reset_sessions();
        flow->reset_connections();
      }
      https_ms = util::to_millis(flow->now() - start);
    }

    char gd[32], ht[32], hs[32], r1[32], r2[32];
    std::snprintf(gd, sizeof gd, "%.1f", globedoc_ms);
    std::snprintf(ht, sizeof ht, "%.1f", http_ms);
    std::snprintf(hs, sizeof hs, "%.1f", https_ms);
    std::snprintf(r1, sizeof r1, "%.2fx", globedoc_ms / http_ms);
    std::snprintf(r2, sizeof r2, "%.2fx", https_ms / http_ms);
    print_row({spec.label, gd, ht, hs, r1, r2});

    for (auto [protocol, ms] : {std::pair<const char*, double>{"globedoc", globedoc_ms},
                                {"http", http_ms},
                                {"https", https_ms}}) {
      registry
          .gauge("perf.fetch_ms", {{"client", client_label},
                                   {"object", spec.label},
                                   {"protocol", protocol}})
          .set(ms);
    }
  }

  if (!json_path.empty()) {
    auto status = obs::write_bench_json(json_path, figure_label,
                                        registry.snapshot());
    if (!status.is_ok()) {
      std::fprintf(stderr, "write_bench_json: %s\n", status.to_string().c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  std::printf(
      "\nPaper shape check: GlobeDoc is comparable to plain Apache and\n"
      "competitive with Apache+SSL (the paper's Java prototype sometimes lost\n"
      "to SSL due to JVM memory behaviour, which this C++ reproduction does\n"
      "not exhibit — see EXPERIMENTS.md).\n");
  return 0;
}

}  // namespace globe::bench
