// Figure 4 — Security overhead (%).
//
// Reproduces the paper's first experiment: six single-element GlobeDoc
// objects (1 KB .. 1 MB images) hosted on the Amsterdam primary object
// server; each is fetched through the secure proxy from the Amsterdam
// secondary (LAN), Paris, and Ithaca hosts.  The reported value is the
// fraction of total fetch time spent in security-specific operations
// (public-key retrieval + OID check, certificate retrieval + signature
// verification, element hashing + the three checks) — exactly the timer
// placement described in §4.
//
// The security time is no longer a single opaque field: the proxy records
// a span tree per fetch (obs/trace.hpp) and security_time is derived as
// the sum of the key_check + identity + integrity_verify + element_verify
// spans.  This bench records the full per-stage decomposition into the
// global metrics registry and, given an output path as argv[1], writes it
// as a BENCH_*.json artifact via the obs exporter.
//
// With distributed trace propagation (DESIGN.md §10) each stage further
// splits into SERVER time (spans recorded on the far side of the RPCs the
// stage issued, stitched back by the trace collector) and NET+CLIENT time
// (the remainder): fig4.stage_server_ns / fig4.stage_net_ns.
#include <cstdio>
#include <map>
#include <vector>

#include "bench/paper_world.hpp"
#include "obs/collector.hpp"
#include "obs/export.hpp"
#include "obs/profile.hpp"

int main(int argc, char** argv) {
  using namespace globe;
  using namespace globe::bench;

  const std::vector<std::size_t> kSizesKb = {1, 10, 100, 300, 600, 1000};
  const char* kStages[] = {
      globedoc::FetchStage::kResolve,         globedoc::FetchStage::kLocate,
      globedoc::FetchStage::kKeyCheck,        globedoc::FetchStage::kIdentity,
      globedoc::FetchStage::kIntegrityVerify, globedoc::FetchStage::kElementVerify,
  };

  PaperWorld world;
  for (std::size_t kb : kSizesKb) {
    world.add_object("img" + std::to_string(kb) + ".vu.nl",
                     {globedoc::PageElement{
                         "image.jpg", "image/jpeg",
                         synthetic_content(kb * 1024, 4000 + kb)}});
  }

  // Setup traffic (publication, registration) is not part of the figure:
  // measure only the fetches below.
  auto& registry = obs::global_registry();
  registry.reset();

  // Keep every trace: the figure wants the exact decomposition of each
  // fetch, not a tail sample.
  auto& collector = obs::global_trace_collector();
  collector.set_policy({/*keep_slower_than=*/0, /*keep_one_in=*/1});
  collector.clear();

  struct Measured {
    globedoc::FetchMetrics metrics;
    double rsa_verify_ns = 0, sha1_ns = 0, merkle_ns = 0;
  };
  std::map<std::pair<std::size_t, net::HostId>, Measured> results;

  // Per-cell cost attribution (DESIGN.md §15): a private ProfileRegistry,
  // reset before each fetch, captures real measured CPU ns per crypto
  // primitive — the sim charges virtual time, but the probes time the host
  // CPU actually burned in rsa/sha1/merkle code.
  obs::ProfileRegistry profile;
  auto leaf_stat = [&](const obs::ProfileSnapshot& snap, std::string_view leaf) {
    obs::ProbeStat total;
    for (const auto& sample : snap.samples) {
      if (sample.leaf != leaf) continue;
      total.calls += sample.stat.calls;
      total.cpu_ns += sample.stat.cpu_ns;
      total.wall_ns += sample.stat.wall_ns;
    }
    return total;
  };

  for (std::size_t kb : kSizesKb) {
    for (net::HostId client : world.topo.clients()) {
      auto flow = world.topo.net.open_quiescent_flow(client);
      globedoc::GlobeDocProxy proxy(*flow, world.proxy_config_for(client));
      profile.reset();
      util::Result<globedoc::FetchResult> result = [&] {
        obs::ProfileRegistryScope profile_scope(&profile);
        return proxy.fetch("img" + std::to_string(kb) + ".vu.nl", "image.jpg");
      }();
      if (!result.is_ok()) {
        std::fprintf(stderr, "fetch failed: %s\n", result.status().to_string().c_str());
        return 1;
      }

      const auto& m = result->metrics;
      // The derived security_time must equal the sum of its four stage
      // spans (within 1% — on deterministic SimNet it is exact).
      util::SimDuration span_sum =
          obs::span_total(m.trace, globedoc::FetchStage::kKeyCheck) +
          obs::span_total(m.trace, globedoc::FetchStage::kIdentity) +
          obs::span_total(m.trace, globedoc::FetchStage::kIntegrityVerify) +
          obs::span_total(m.trace, globedoc::FetchStage::kElementVerify);
      double diff = span_sum > m.security_time
                        ? static_cast<double>(span_sum - m.security_time)
                        : static_cast<double>(m.security_time - span_sum);
      if (m.security_time == 0 || diff / static_cast<double>(m.security_time) > 0.01) {
        std::fprintf(stderr, "span sum %llu != security_time %llu for %zu KB\n",
                     static_cast<unsigned long long>(span_sum),
                     static_cast<unsigned long long>(m.security_time),
                     kb);
        return 1;
      }

      std::string label = world.topo.client_label(client);
      std::string size = std::to_string(kb);
      obs::Labels cell{{"client", label}, {"size_kb", size}};
      registry.gauge("fig4.total_ns", cell)
          .set(static_cast<double>(m.total_time));
      registry.gauge("fig4.security_ns", cell)
          .set(static_cast<double>(m.security_time));
      registry.gauge("fig4.overhead_pct", cell)
          .set(100.0 * static_cast<double>(m.security_time) /
               static_cast<double>(m.total_time));
      for (const char* stage : kStages) {
        registry
            .gauge("fig4.stage_ns",
                   {{"client", label}, {"size_kb", size}, {"stage", stage}})
            .set(static_cast<double>(obs::span_total(m.trace, stage)));
      }

      // The local span tree stops at the proxy; the stitched trace from the
      // collector also holds the spans recorded ON the naming server, the
      // location node and the object server (propagated over RPC framing).
      // Each fetch must have produced exactly one complete stitched trace.
      auto stitched = collector.find(m.trace_hi, m.trace_lo);
      if (!stitched || !stitched->complete || stitched->fragments < 2) {
        std::fprintf(stderr,
                     "no complete stitched trace for %zu KB from %s "
                     "(found=%d)\n",
                     kb, label.c_str(), stitched ? 1 : 0);
        return 1;
      }
      registry.gauge("fig4.server_ns", cell)
          .set(static_cast<double>(obs::remote_span_total(stitched->root)));
      for (const char* stage : kStages) {
        util::SimDuration stage_total = 0, stage_server = 0;
        for (const auto* span : obs::find_all_spans(stitched->root, stage)) {
          stage_total += span->duration;
          stage_server += obs::remote_span_total(*span);
        }
        obs::Labels stage_cell{
            {"client", label}, {"size_kb", size}, {"stage", stage}};
        registry.gauge("fig4.stage_server_ns", stage_cell)
            .set(static_cast<double>(stage_server));
        registry.gauge("fig4.stage_net_ns", stage_cell)
            .set(static_cast<double>(stage_total - stage_server));
      }

      // Per-primitive crypto attribution for this cell.  These are REAL
      // host-CPU nanoseconds from the cost probes (machine-dependent, so
      // the perf gate skips them); the call counts are deterministic.
      obs::ProfileSnapshot psnap = profile.snapshot();
      obs::ProbeStat rsa_verify = leaf_stat(psnap, "rsa_verify");
      obs::ProbeStat sha1 = leaf_stat(psnap, "sha1");
      obs::ProbeStat merkle;
      for (std::string_view leaf :
           {"merkle_build", "merkle_prove", "merkle_verify"}) {
        obs::ProbeStat part = leaf_stat(psnap, leaf);
        merkle.calls += part.calls;
        merkle.cpu_ns += part.cpu_ns;
        merkle.wall_ns += part.wall_ns;
      }
      if (rsa_verify.calls == 0 || sha1.calls == 0) {
        std::fprintf(stderr,
                     "no crypto probes recorded for %zu KB from %s "
                     "(rsa_verify=%llu sha1=%llu)\n",
                     kb, label.c_str(),
                     static_cast<unsigned long long>(rsa_verify.calls),
                     static_cast<unsigned long long>(sha1.calls));
        return 1;
      }
      registry.gauge("fig4.rsa_verify_ns", cell)
          .set(static_cast<double>(rsa_verify.cpu_ns));
      registry.gauge("fig4.sha1_ns", cell)
          .set(static_cast<double>(sha1.cpu_ns));
      registry.gauge("fig4.merkle_ns", cell)
          .set(static_cast<double>(merkle.cpu_ns));
      registry
          .gauge("fig4.crypto_calls", {{"client", label},
                                       {"size_kb", size},
                                       {"probe", "rsa_verify"}})
          .set(static_cast<double>(rsa_verify.calls));
      registry
          .gauge("fig4.crypto_calls",
                 {{"client", label}, {"size_kb", size}, {"probe", "sha1"}})
          .set(static_cast<double>(sha1.calls));
      registry
          .gauge("fig4.crypto_calls",
                 {{"client", label}, {"size_kb", size}, {"probe", "merkle"}})
          .set(static_cast<double>(merkle.calls));

      Measured measured{result->metrics,
                        static_cast<double>(rsa_verify.cpu_ns),
                        static_cast<double>(sha1.cpu_ns),
                        static_cast<double>(merkle.cpu_ns)};
      results[{kb, client}] = measured;
    }
  }

  std::printf("Figure 4: Security overhead (percentage of total fetch time)\n\n");
  print_row({"size_kb", "Amsterdam", "Paris", "Ithaca"});
  for (std::size_t kb : kSizesKb) {
    std::vector<std::string> cells = {std::to_string(kb)};
    for (net::HostId client : world.topo.clients()) {
      const auto& m = results[{kb, client}].metrics;
      double overhead = 100.0 * static_cast<double>(m.security_time) /
                        static_cast<double>(m.total_time);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.1f%%", overhead);
      cells.push_back(buf);
    }
    print_row(cells);
  }

  std::printf("\nAbsolute fetch / security times (ms):\n");
  print_row({"size_kb", "Ams total", "Ams sec", "Par total", "Par sec", "Ith total",
             "Ith sec"});
  for (std::size_t kb : kSizesKb) {
    std::vector<std::string> cells = {std::to_string(kb)};
    for (net::HostId client : world.topo.clients()) {
      const auto& m = results[{kb, client}].metrics;
      char total[32], sec[32];
      std::snprintf(total, sizeof total, "%.1f", util::to_millis(m.total_time));
      std::snprintf(sec, sizeof sec, "%.1f", util::to_millis(m.security_time));
      cells.push_back(total);
      cells.push_back(sec);
    }
    print_row(cells);
  }
  std::printf("\nMeasured host-CPU cost per crypto primitive (us, Amsterdam):\n");
  print_row({"size_kb", "rsa_verify", "sha1", "merkle"});
  for (std::size_t kb : kSizesKb) {
    const Measured& m = results[{kb, world.topo.clients().front()}];
    std::vector<std::string> cells = {std::to_string(kb)};
    for (double ns : {m.rsa_verify_ns, m.sha1_ns, m.merkle_ns}) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.1f", ns / 1000.0);
      cells.push_back(buf);
    }
    print_row(cells);
  }
  std::printf(
      "Expect rsa_verify to dominate sha1+merkle for small elements and\n"
      "hashing to catch up as size grows (Fig. 4's crossover, measured on\n"
      "the host CPU rather than inferred from the sim's cost model).\n");

  std::printf(
      "\nPaper shape check: ~25%% overhead for small elements, decreasing with\n"
      "size; for large transfers the LAN client (Amsterdam) shows the WORST\n"
      "overhead because hashing dominates when transfer time is negligible.\n");

  if (argc > 1) {
    auto status = obs::write_bench_json(argv[1], "fig4_security_overhead",
                                        registry.snapshot());
    if (!status.is_ok()) {
      std::fprintf(stderr, "write_bench_json: %s\n", status.to_string().c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", argv[1]);
  }
  return 0;
}
