// Figure 4 — Security overhead (%).
//
// Reproduces the paper's first experiment: six single-element GlobeDoc
// objects (1 KB .. 1 MB images) hosted on the Amsterdam primary object
// server; each is fetched through the secure proxy from the Amsterdam
// secondary (LAN), Paris, and Ithaca hosts.  The reported value is the
// fraction of total fetch time spent in security-specific operations
// (public-key retrieval + OID check, certificate retrieval + signature
// verification, element hashing + the three checks) — exactly the timer
// placement described in §4.
#include <cstdio>
#include <vector>

#include "bench/paper_world.hpp"

int main() {
  using namespace globe;
  using namespace globe::bench;

  const std::vector<std::size_t> kSizesKb = {1, 10, 100, 300, 600, 1000};

  PaperWorld world;
  for (std::size_t kb : kSizesKb) {
    world.add_object("img" + std::to_string(kb) + ".vu.nl",
                     {globedoc::PageElement{
                         "image.jpg", "image/jpeg",
                         synthetic_content(kb * 1024, 4000 + kb)}});
  }

  std::printf("Figure 4: Security overhead (percentage of total fetch time)\n\n");
  print_row({"size_kb", "Amsterdam", "Paris", "Ithaca"});

  for (std::size_t kb : kSizesKb) {
    std::vector<std::string> cells = {std::to_string(kb)};
    for (net::HostId client : world.topo.clients()) {
      auto flow = world.topo.net.open_quiescent_flow(client);
      globedoc::GlobeDocProxy proxy(*flow, world.proxy_config_for(client));
      auto result = proxy.fetch("img" + std::to_string(kb) + ".vu.nl", "image.jpg");
      if (!result.is_ok()) {
        std::fprintf(stderr, "fetch failed: %s\n", result.status().to_string().c_str());
        return 1;
      }
      double overhead = 100.0 * static_cast<double>(result->metrics.security_time) /
                        static_cast<double>(result->metrics.total_time);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.1f%%", overhead);
      cells.push_back(buf);
    }
    print_row(cells);
  }

  std::printf("\nAbsolute fetch / security times (ms):\n");
  print_row({"size_kb", "Ams total", "Ams sec", "Par total", "Par sec", "Ith total",
             "Ith sec"});
  for (std::size_t kb : kSizesKb) {
    std::vector<std::string> cells = {std::to_string(kb)};
    for (net::HostId client : world.topo.clients()) {
      auto flow = world.topo.net.open_quiescent_flow(client);
      globedoc::GlobeDocProxy proxy(*flow, world.proxy_config_for(client));
      auto result = proxy.fetch("img" + std::to_string(kb) + ".vu.nl", "image.jpg");
      char total[32], sec[32];
      std::snprintf(total, sizeof total, "%.1f",
                    util::to_millis(result->metrics.total_time));
      std::snprintf(sec, sizeof sec, "%.1f",
                    util::to_millis(result->metrics.security_time));
      cells.push_back(total);
      cells.push_back(sec);
    }
    print_row(cells);
  }
  std::printf(
      "\nPaper shape check: ~25%% overhead for small elements, decreasing with\n"
      "size; for large transfers the LAN client (Amsterdam) shows the WORST\n"
      "overhead because hashing dominates when transfer time is negligible.\n");
  return 0;
}
