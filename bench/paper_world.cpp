#include "bench/paper_world.hpp"

#include <cstdio>

#include "crypto/drbg.hpp"
#include "util/rng.hpp"

namespace globe::bench {

using globedoc::ObjectOwner;
using globedoc::PageElement;

namespace {

crypto::RsaKeyPair bench_key(std::uint64_t seed, std::size_t bits = 1024) {
  auto rng = crypto::HmacDrbg::from_seed(seed);
  return crypto::rsa_generate(bits, rng);
}

}  // namespace

PaperWorld::PaperWorld() : owner_credentials_(bench_key(70'001)) {
  // --- Secure naming: root zone on the Amsterdam primary.
  auto zone_keys = bench_key(70'002);
  naming_anchor = zone_keys.pub;
  root_zone_ = std::make_shared<naming::ZoneAuthority>("", std::move(zone_keys));
  naming_ep = net::Endpoint{topo.amsterdam_primary, 53};
  naming_server_.add_zone(root_zone_);
  naming_server_.register_with(naming_dispatcher_);
  topo.net.bind(naming_ep, naming_dispatcher_.handler());

  // --- Location tree: root at the primary, one site per host.
  tree = std::make_unique<location::LocationTree>(
      topo.net, std::vector<location::DomainSpec>{
                    {"root", "", topo.amsterdam_primary, 100, false},
                    {"site-ams-primary", "root", topo.amsterdam_primary, 101, true},
                    {"site-ams", "root", topo.amsterdam_secondary, 101, true},
                    {"site-paris", "root", topo.paris, 101, true},
                    {"site-ithaca", "root", topo.ithaca, 101, true},
                });

  // --- GlobeDoc object server on the primary host.
  object_server_ = std::make_unique<globedoc::ObjectServer>("ginger", 70'003);
  object_server_->authorize(owner_credentials_.pub);
  object_server_->register_with(object_dispatcher_);
  object_server_ep = net::Endpoint{topo.amsterdam_primary, 8000};
  topo.net.bind(object_server_ep, object_dispatcher_.handler());

  // --- Apache baseline (same host) and its SSL front.
  apache_ep = net::Endpoint{topo.amsterdam_primary, 80};
  topo.net.bind(apache_ep, apache_.handler());
  ssl_ = std::make_unique<http::SecureServer>(bench_key(70'004), kSslName,
                                              apache_.handler(), 70'005);
  ssl_ep = net::Endpoint{topo.amsterdam_primary, 443};
  topo.net.bind(ssl_ep, ssl_->handler());
}

void PaperWorld::add_object(const std::string& name,
                            std::vector<PageElement> elements) {
  globedoc::GlobeDocObject object(bench_key(next_key_seed_++));
  for (auto& element : elements) {
    apache_.put_file("/" + name + "/" + element.name, element.content);
    object.put_element(std::move(element));
  }
  auto owner = std::make_unique<ObjectOwner>(std::move(object), owner_credentials_);
  owner->register_name(*root_zone_, name, util::seconds(1u << 30));

  auto flow = topo.net.open_flow(topo.amsterdam_primary);
  auto state = owner->sign_and_snapshot(0, util::seconds(1u << 30));
  auto published = owner->publish_replica(*flow, object_server_ep,
                                          tree->endpoint("site-ams-primary"), state);
  if (!published.is_ok()) {
    throw std::runtime_error("publish failed: " + published.to_string());
  }
  owners_.emplace(name, std::move(owner));
}

ObjectOwner& PaperWorld::owner(const std::string& name) {
  return *owners_.at(name);
}

globedoc::ProxyConfig PaperWorld::proxy_config_for(net::HostId host) const {
  globedoc::ProxyConfig config;
  config.naming_root = naming_ep;
  config.naming_anchor = naming_anchor;
  if (host == topo.amsterdam_primary) {
    config.location_site = tree->endpoint("site-ams-primary");
  } else if (host == topo.amsterdam_secondary) {
    config.location_site = tree->endpoint("site-ams");
  } else if (host == topo.paris) {
    config.location_site = tree->endpoint("site-paris");
  } else {
    config.location_site = tree->endpoint("site-ithaca");
  }
  return config;
}

util::Bytes synthetic_content(std::size_t bytes, std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  util::Bytes out(bytes);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

void print_row(const std::vector<std::string>& cells, int width) {
  for (const auto& cell : cells) {
    std::printf("%*s", width, cell.c_str());
  }
  std::printf("\n");
}

}  // namespace globe::bench
