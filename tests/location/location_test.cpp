#include <gtest/gtest.h>

#include "location/builder.hpp"
#include "location/tree.hpp"
#include "net/simnet.hpp"
#include "util/serial.hpp"

namespace globe::location {
namespace {

using util::Bytes;
using util::ErrorCode;

Bytes oid(std::uint8_t fill) { return Bytes(20, fill); }

TEST(LookupReplyTest, RoundTrip) {
  LookupReply reply;
  reply.found = true;
  reply.addresses = {net::Endpoint{net::HostId{1}, 80}, net::Endpoint{net::HostId{2}, 81}};
  reply.has_parent = true;
  reply.parent = net::Endpoint{net::HostId{9}, 99};
  auto parsed = LookupReply::parse(reply.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(parsed->found);
  EXPECT_EQ(parsed->addresses, reply.addresses);
  EXPECT_EQ(parsed->parent, reply.parent);
}

TEST(LookupReplyTest, GarbageRejected) {
  EXPECT_FALSE(LookupReply::parse(util::to_bytes("xx")).is_ok());
}

// World: root -> {region-eu -> {site-ams, site-paris}, region-us -> {site-ithaca}}.
struct TreeFixture : ::testing::Test {
  void SetUp() override {
    for (int i = 0; i < 6; ++i) {
      hosts.push_back(net.add_host({"h" + std::to_string(i), net::CpuModel{}}));
    }
    net.set_default_link({util::millis(5), 1e6});
    tree = std::make_unique<LocationTree>(
        net, std::vector<DomainSpec>{
                 {"root", "", hosts[0], 100, false},
                 {"region-eu", "root", hosts[1], 100, false},
                 {"region-us", "root", hosts[2], 100, false},
                 {"site-ams", "region-eu", hosts[3], 100, true},
                 {"site-paris", "region-eu", hosts[4], 100, true},
                 {"site-ithaca", "region-us", hosts[5], 100, true},
             });
    flow = net.open_flow(hosts[3]);
  }

  net::Endpoint replica(std::uint32_t host, std::uint16_t port) {
    return net::Endpoint{net::HostId{host}, port};
  }

  net::SimNet net;
  std::vector<net::HostId> hosts;
  std::unique_ptr<LocationTree> tree;
  std::unique_ptr<net::SimFlow> flow;
};

TEST_F(TreeFixture, InsertAndLookupAtSameSite) {
  LocationClient client(*flow, tree->endpoint("site-ams"));
  ASSERT_TRUE(client.insert(tree->endpoint("site-ams"), oid(1), replica(3, 8000)).is_ok());
  auto r = client.lookup(oid(1));
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0], replica(3, 8000));
  EXPECT_EQ(client.last_rings(), 1u);
}

TEST_F(TreeFixture, ExpandingRingFindsRemoteReplica) {
  LocationClient writer(*flow, tree->endpoint("site-ithaca"));
  ASSERT_TRUE(
      writer.insert(tree->endpoint("site-ithaca"), oid(2), replica(5, 8000)).is_ok());

  // Lookup from Amsterdam: site-ams (miss) -> region-eu (miss) -> root
  // (pointer via region-us) -> resolves down to the Ithaca address.
  LocationClient client(*flow, tree->endpoint("site-ams"));
  auto r = client.lookup(oid(2));
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0], replica(5, 8000));
  EXPECT_EQ(client.last_rings(), 3u);
}

TEST_F(TreeFixture, RegionAnswersWithoutReachingRoot) {
  LocationClient writer(*flow, tree->endpoint("site-paris"));
  ASSERT_TRUE(
      writer.insert(tree->endpoint("site-paris"), oid(3), replica(4, 8000)).is_ok());

  LocationClient client(*flow, tree->endpoint("site-ams"));
  auto r = client.lookup(oid(3));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(client.last_rings(), 2u);  // site miss, region hit
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0], replica(4, 8000));
}

TEST_F(TreeFixture, MultipleReplicasAllReturned) {
  LocationClient client(*flow, tree->endpoint("site-ams"));
  ASSERT_TRUE(client.insert(tree->endpoint("site-ams"), oid(4), replica(3, 8000)).is_ok());
  ASSERT_TRUE(client.insert(tree->endpoint("site-ams"), oid(4), replica(3, 8001)).is_ok());
  ASSERT_TRUE(
      client.insert(tree->endpoint("site-paris"), oid(4), replica(4, 8000)).is_ok());

  // From Ithaca everything resolves through the root.
  LocationClient remote(*flow, tree->endpoint("site-ithaca"));
  auto r = remote.lookup(oid(4));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->size(), 3u);
}

TEST_F(TreeFixture, UnknownOidNotFound) {
  LocationClient client(*flow, tree->endpoint("site-ams"));
  auto r = client.lookup(oid(9));
  EXPECT_EQ(r.code(), ErrorCode::kNotFound);
  EXPECT_EQ(client.last_rings(), 3u);  // climbed to the root
}

TEST_F(TreeFixture, RemoveLastAddressCleansPointers) {
  LocationClient client(*flow, tree->endpoint("site-ams"));
  ASSERT_TRUE(client.insert(tree->endpoint("site-ams"), oid(5), replica(3, 8000)).is_ok());
  EXPECT_EQ(tree->node("root").records_stored(), 1u);
  ASSERT_TRUE(client.remove(tree->endpoint("site-ams"), oid(5), replica(3, 8000)).is_ok());
  EXPECT_EQ(tree->node("site-ams").records_stored(), 0u);
  EXPECT_EQ(tree->node("region-eu").records_stored(), 0u);
  EXPECT_EQ(tree->node("root").records_stored(), 0u);
  EXPECT_EQ(client.lookup(oid(5)).code(), ErrorCode::kNotFound);
}

TEST_F(TreeFixture, RemoveOneOfTwoKeepsPointer) {
  LocationClient client(*flow, tree->endpoint("site-ams"));
  ASSERT_TRUE(client.insert(tree->endpoint("site-ams"), oid(6), replica(3, 8000)).is_ok());
  ASSERT_TRUE(client.insert(tree->endpoint("site-ams"), oid(6), replica(3, 8001)).is_ok());
  ASSERT_TRUE(client.remove(tree->endpoint("site-ams"), oid(6), replica(3, 8000)).is_ok());
  auto r = client.lookup(oid(6));
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0], replica(3, 8001));
}

TEST_F(TreeFixture, RemoveUnknownAddressFails) {
  LocationClient client(*flow, tree->endpoint("site-ams"));
  EXPECT_EQ(client.remove(tree->endpoint("site-ams"), oid(7), replica(3, 1)).code(),
            ErrorCode::kNotFound);
}

TEST_F(TreeFixture, InsertAtInteriorNodeRejected) {
  LocationClient client(*flow, tree->endpoint("site-ams"));
  EXPECT_EQ(client.insert(tree->endpoint("region-eu"), oid(8), replica(1, 1)).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(TreeFixture, LocalLookupCheaperThanGlobal) {
  LocationClient setup(*flow, tree->endpoint("site-ams"));
  ASSERT_TRUE(setup.insert(tree->endpoint("site-ams"), oid(10), replica(3, 1)).is_ok());
  ASSERT_TRUE(
      setup.insert(tree->endpoint("site-ithaca"), oid(11), replica(5, 1)).is_ok());

  auto local_flow = net.open_flow(hosts[3]);
  LocationClient local(*local_flow, tree->endpoint("site-ams"));
  ASSERT_TRUE(local.lookup(oid(10)).is_ok());

  auto global_flow = net.open_flow(hosts[3]);
  LocationClient global(*global_flow, tree->endpoint("site-ams"));
  ASSERT_TRUE(global.lookup(oid(11)).is_ok());

  EXPECT_LT(local_flow->now(), global_flow->now());
}

TEST_F(TreeFixture, LookupCountersAdvance) {
  LocationClient client(*flow, tree->endpoint("site-ams"));
  (void)client.lookup(oid(12));
  EXPECT_EQ(tree->node("site-ams").lookups_served(), 1u);
  EXPECT_EQ(tree->node("region-eu").lookups_served(), 1u);
  EXPECT_EQ(tree->node("root").lookups_served(), 1u);
}

TEST(LocationBuilderTest, RejectsBadSpecs) {
  net::SimNet net;
  auto h = net.add_host({"h", net::CpuModel{}});
  EXPECT_THROW(LocationTree(net, {{"a", "missing-parent", h, 1, true}}),
               std::invalid_argument);
  EXPECT_THROW(LocationTree(net, {{"a", "", h, 1, false}, {"a", "", h, 2, false}}),
               std::invalid_argument);
}


TEST(LocationAdversarialTest, ParentLoopIsBounded) {
  // A malicious node that always reports itself as its own parent must not
  // trap the expanding-ring client in an infinite climb.
  net::SimNet net;
  auto h = net.add_host({"evil", net::CpuModel{}});
  net::Endpoint evil{h, 100};
  net.bind(evil, [evil](net::ServerContext&,
                        util::BytesView) -> util::Result<util::Bytes> {
    LookupReply reply;
    reply.found = false;
    reply.has_parent = true;
    reply.parent = evil;  // the loop
    return reply.serialize();
  });
  auto flow = net.open_flow(h);
  LocationClient client(*flow, evil);
  auto r = client.lookup(oid(1));
  EXPECT_EQ(r.code(), ErrorCode::kProtocol);
  EXPECT_EQ(client.last_rings(), 16u);  // guard fired
}

TEST(LocationAdversarialTest, GarbageReplyRejected) {
  net::SimNet net;
  auto h = net.add_host({"evil", net::CpuModel{}});
  net::Endpoint evil{h, 100};
  net.bind(evil, [](net::ServerContext&,
                    util::BytesView) -> util::Result<util::Bytes> {
    return util::to_bytes("not a lookup reply");
  });
  auto flow = net.open_flow(h);
  LocationClient client(*flow, evil);
  EXPECT_EQ(client.lookup(oid(2)).code(), ErrorCode::kProtocol);
}


TEST(LookupReplyTest, RejectsForgedAddressCount) {
  // Four bytes of header claiming 2^32-1 addresses must die at the protocol
  // ceiling, not in addresses.reserve().
  util::Writer w;
  w.u8(1);             // found
  w.u32(0xFFFFFFFFu);  // forged address count
  auto reply = LookupReply::parse(w.take());
  EXPECT_FALSE(reply.is_ok());
  EXPECT_EQ(reply.code(), ErrorCode::kProtocol);
}

TEST_F(TreeFixture, InsertCapMatchesReplyCeiling) {
  // A site node stops registering addresses at kMaxLookupAddresses: past
  // that, its lookup replies would exceed the ceiling every compliant
  // client enforces at parse time.
  LocationClient client(*flow, tree->endpoint("site-ams"));
  for (std::size_t i = 0; i < kMaxLookupAddresses; ++i) {
    ASSERT_TRUE(client
                    .insert(tree->endpoint("site-ams"), oid(42),
                            replica(3, static_cast<std::uint16_t>(8000 + i)))
                    .is_ok());
  }
  auto over = client.insert(tree->endpoint("site-ams"), oid(42),
                            replica(3, 9999));
  EXPECT_FALSE(over.is_ok());
  EXPECT_EQ(over.code(), ErrorCode::kInvalidArgument);
  // Re-registering an address that is already present is still fine.
  EXPECT_TRUE(client.insert(tree->endpoint("site-ams"), oid(42),
                            replica(3, 8000))
                  .is_ok());
  auto r = client.lookup(oid(42));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->size(), kMaxLookupAddresses);
}
}  // namespace
}  // namespace globe::location
