// ElementCache: bounded verified store — LRU displacement, expiry eviction,
// byte accounting, listener reasons.
#include "cache/element_cache.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/bytes.hpp"

namespace globe::cache {
namespace {

globedoc::PageElement make_element(const std::string& name, std::size_t bytes) {
  return {name, "text/plain", util::Bytes(bytes, 0x41)};
}

CacheKey make_key(const std::string& name, std::uint8_t salt = 0) {
  CacheKey key;
  key.element = name;
  key.content_sha1 = util::Bytes(20, salt);
  return key;
}

TEST(ElementCacheTest, InsertThenLookupServesUntilExpiry) {
  ElementCache cache({.max_entries = 8, .max_bytes = 1 << 20});
  cache.insert(make_key("index.html"), make_element("index.html", 100), 1000);

  auto hit = cache.lookup(make_key("index.html"), 500);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->element.content.size(), 100u);
  EXPECT_EQ(hit->expires, 1000u);

  // At the expiry instant the entry is evicted, not served.
  EXPECT_FALSE(cache.lookup(make_key("index.html"), 1000).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ElementCacheTest, DistinctContentHashesAreDistinctEntries) {
  ElementCache cache({.max_entries = 8, .max_bytes = 1 << 20});
  cache.insert(make_key("a", 1), make_element("a", 10), 1000);
  cache.insert(make_key("a", 2), make_element("a", 20), 1000);
  EXPECT_EQ(cache.size(), 2u);  // a republish never aliases old content
}

TEST(ElementCacheTest, ReinsertSameContentOnlyWidensWindow) {
  ElementCache cache({.max_entries = 8, .max_bytes = 1 << 20});
  cache.insert(make_key("a"), make_element("a", 10), 1000);
  cache.insert(make_key("a"), make_element("a", 10), 2000);  // refreshed cert
  cache.insert(make_key("a"), make_element("a", 10), 500);   // older cert
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.lookup(make_key("a"), 1500);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->expires, 2000u);
}

TEST(ElementCacheTest, LruEvictsLeastRecentlyUsedAtEntryBound) {
  ElementCache cache({.max_entries = 2, .max_bytes = 1 << 20});
  cache.insert(make_key("a"), make_element("a", 10), 1000);
  cache.insert(make_key("b"), make_element("b", 10), 1000);
  ASSERT_TRUE(cache.lookup(make_key("a"), 0).has_value());  // a is now MRU
  cache.insert(make_key("c"), make_element("c", 10), 1000);

  EXPECT_TRUE(cache.contains(make_key("a")));
  EXPECT_FALSE(cache.contains(make_key("b")));
  EXPECT_TRUE(cache.contains(make_key("c")));
}

TEST(ElementCacheTest, ByteBoundEvictsUntilItFits) {
  // Each entry costs content + name + MIME type = 100 + 1 + 10 = 111 bytes.
  ElementCache cache({.max_entries = 100, .max_bytes = 250});
  cache.insert(make_key("a"), make_element("a", 100), 1000);
  cache.insert(make_key("b"), make_element("b", 100), 1000);
  EXPECT_EQ(cache.size(), 2u);
  cache.insert(make_key("c"), make_element("c", 100), 1000);
  // Admitting "c" (333 total) displaces the LRU "a"; "b" + "c" fit.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.contains(make_key("a")));
  EXPECT_TRUE(cache.contains(make_key("b")));
  EXPECT_TRUE(cache.contains(make_key("c")));
  EXPECT_LE(cache.bytes(), 250u);
}

TEST(ElementCacheTest, OversizedElementIsNotAdmitted) {
  ElementCache cache({.max_entries = 8, .max_bytes = 100});
  cache.insert(make_key("a"), make_element("a", 50), 1000);
  cache.insert(make_key("big"), make_element("big", 4096), 1000);
  // The oversized element must not evict the whole cache on a futile admit.
  EXPECT_FALSE(cache.contains(make_key("big")));
  EXPECT_TRUE(cache.contains(make_key("a")));
}

TEST(ElementCacheTest, ListenerReportsReasons) {
  ElementCache cache({.max_entries = 1, .max_bytes = 1 << 20});
  std::vector<std::pair<std::string, EvictReason>> events;
  cache.set_eviction_listener([&](const CacheKey& key, EvictReason reason) {
    events.emplace_back(key.element, reason);
  });

  cache.insert(make_key("a"), make_element("a", 10), 1000);
  cache.insert(make_key("b"), make_element("b", 10), 1000);  // displaces a
  EXPECT_FALSE(cache.lookup(make_key("b"), 5000).has_value());  // expired
  cache.insert(make_key("c"), make_element("c", 10), 1000);
  cache.erase(make_key("c"));

  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], (std::pair<std::string, EvictReason>{"a", EvictReason::kCapacity}));
  EXPECT_EQ(events[1], (std::pair<std::string, EvictReason>{"b", EvictReason::kExpired}));
  EXPECT_EQ(events[2], (std::pair<std::string, EvictReason>{"c", EvictReason::kExplicit}));
}

TEST(ElementCacheTest, ClearEmptiesAndReportsExplicit) {
  ElementCache cache({.max_entries = 8, .max_bytes = 1 << 20});
  int evictions = 0;
  cache.set_eviction_listener(
      [&](const CacheKey&, EvictReason reason) {
        EXPECT_EQ(reason, EvictReason::kExplicit);
        ++evictions;
      });
  cache.insert(make_key("a"), make_element("a", 10), 1000);
  cache.insert(make_key("b"), make_element("b", 10), 1000);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(evictions, 2);
}

}  // namespace
}  // namespace globe::cache
