// EdgeCacheTier end-to-end: verified-once-serve-many, thundering-herd
// coalescing, delayed replication, adversarial fills, and the proxy
// integration (cert-verify memo, decorated-URL coalescing).
#include "cache/tier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "globedoc/adversary.hpp"
#include "globedoc/proxy.hpp"
#include "obs/profile.hpp"
#include "tests/globedoc/world_fixture.hpp"

namespace globe::cache {
namespace {

using globe::globedoc::testing::WorldFixture;
using globedoc::GlobeDocProxy;
using globedoc::ProxyConfig;
using util::ErrorCode;

struct TierFixture : WorldFixture {
  TierConfig tier_config() {
    TierConfig config;
    config.registry = &registry;
    return config;
  }

  /// The certificate the published replica is currently serving under.
  globedoc::IntegrityCertificate current_cert() {
    return owner->object().snapshot().certificate;
  }

  globedoc::Oid oid() { return owner->object().oid(); }

  obs::MetricsRegistry registry;
};

TEST_F(TierFixture, MissFillsThenHitServesWithoutOrigin) {
  EdgeCacheTier tier(tier_config());
  auto cert = current_cert();

  auto first = tier.fetch_through(*client_flow, server_ep, oid(), cert,
                                  "index.html");
  ASSERT_TRUE(first.is_ok());
  EXPECT_FALSE(first->cache_hit);
  const std::size_t served_after_fill = object_server->elements_served();

  auto second = tier.fetch_through(*client_flow, server_ep, oid(), cert,
                                   "index.html");
  ASSERT_TRUE(second.is_ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->element.content, first->element.content);
  // The hit never touched the origin.
  EXPECT_EQ(object_server->elements_served(), served_after_fill);
  EXPECT_EQ(registry.counter("cache.hits").value(), 1u);
  EXPECT_EQ(registry.counter("cache.misses").value(), 1u);
}

TEST_F(TierFixture, SharedTierCollapsesManyClientsToOneOriginFetch) {
  EdgeCacheTier tier(tier_config());
  auto cert = current_cert();

  // Two independent proxies (two "clients") share the node's tier.
  ProxyConfig pc = proxy_config();
  pc.edge_cache = &tier;
  GlobeDocProxy proxy_a(*client_flow, pc);
  auto flow_b = net.open_flow(client_host);
  GlobeDocProxy proxy_b(*flow_b, pc);

  const std::size_t before = object_server->elements_served();
  auto a = proxy_a.fetch(object_name, "logo.gif");
  auto b = proxy_b.fetch(object_name, "logo.gif");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_FALSE(a->metrics.served_from_edge_cache);
  EXPECT_TRUE(b->metrics.served_from_edge_cache);
  // One origin element fetch for two clients.
  EXPECT_EQ(object_server->elements_served(), before + 1);
}

TEST_F(TierFixture, DelayedReplicationPullsSiblingsInBackground) {
  EdgeCacheTier tier(tier_config());
  auto cert = current_cert();

  ASSERT_TRUE(tier.fetch_through(*client_flow, server_ep, oid(), cert,
                                 "index.html")
                  .is_ok());
  EXPECT_EQ(tier.replicator().pending(), 1u);

  auto stats = tier.run_delayed_pulls(*client_flow);
  EXPECT_EQ(stats.elements_pulled, 2u);  // logo.gif + story.txt
  EXPECT_EQ(stats.elements_failed, 0u);
  EXPECT_EQ(tier.replicator().pending(), 0u);
  EXPECT_EQ(registry.counter("cache.delayed_pulls").value(), 2u);

  // Siblings now serve from cache with zero origin traffic.
  const std::size_t served = object_server->elements_served();
  auto logo =
      tier.fetch_through(*client_flow, server_ep, oid(), cert, "logo.gif");
  auto story =
      tier.fetch_through(*client_flow, server_ep, oid(), cert, "story.txt");
  ASSERT_TRUE(logo.is_ok());
  ASSERT_TRUE(story.is_ok());
  EXPECT_TRUE(logo->cache_hit);
  EXPECT_TRUE(story->cache_hit);
  EXPECT_EQ(object_server->elements_served(), served);
}

TEST_F(TierFixture, EvictionCancelsPendingDelayedPulls) {
  EdgeCacheTier tier(tier_config());
  auto cert = current_cert();

  ASSERT_TRUE(tier.fetch_through(*client_flow, server_ep, oid(), cert,
                                 "index.html")
                  .is_ok());
  ASSERT_EQ(tier.replicator().pending(), 1u);

  // Evicting the document's entry cancels its queued background pulls
  // (listener runs under the cache lock; cache → replicator lock order).
  tier.element_cache().clear();
  EXPECT_EQ(tier.replicator().pending(), 0u);
  auto stats = tier.run_delayed_pulls(*client_flow);
  EXPECT_EQ(stats.elements_pulled, 0u);
}

TEST_F(TierFixture, TamperedFillFailsEveryCallerAndPoisonsNothing) {
  EdgeCacheTier tier(tier_config());
  auto cert = current_cert();

  // A man-in-the-middle position serving defaced elements.
  net::Endpoint evil{server_host, 6666};
  net.bind(evil,
           globedoc::tampering_element_attack(server_dispatcher.handler()));

  // A coalesced group of clients racing the same element via the tampered
  // position: EVERY caller must see the verification failure — whether it
  // led the fill or waited on it — and the cache must stay clean.
  constexpr int kClients = 4;
  std::vector<std::unique_ptr<net::SimFlow>> flows;
  for (int i = 0; i < kClients; ++i) flows.push_back(net.open_flow(client_host));
  std::atomic<int> hash_mismatches{0};
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      auto result =
          tier.fetch_through(*flows[i], evil, oid(), cert, "index.html");
      if (!result.is_ok() &&
          result.status().code() == ErrorCode::kHashMismatch) {
        hash_mismatches.fetch_add(1);
      } else if (result.is_ok()) {
        successes.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(successes.load(), 0);
  EXPECT_EQ(hash_mismatches.load(), kClients);
  EXPECT_EQ(tier.element_cache().size(), 0u);  // failure admitted nothing

  // The failed flight is not sticky: the honest replica fills fine.
  auto good = tier.fetch_through(*client_flow, server_ep, oid(), cert,
                                 "index.html");
  ASSERT_TRUE(good.is_ok());
  EXPECT_FALSE(good->cache_hit);
}

TEST_F(TierFixture, ExpiredEntryIsRefetchedNotServed) {
  EdgeCacheTier tier(tier_config());
  auto cert = current_cert();
  ASSERT_TRUE(tier.fetch_through(*client_flow, server_ep, oid(), cert,
                                 "index.html")
                  .is_ok());

  // Past the validity window the cached copy is dead; with only the stale
  // certificate in hand the tier refuses outright (kExpired, no network).
  client_flow->advance(util::seconds(4000));
  auto stale = tier.fetch_through(*client_flow, server_ep, oid(), cert,
                                  "index.html");
  ASSERT_FALSE(stale.is_ok());
  EXPECT_EQ(stale.status().code(), ErrorCode::kExpired);

  // The owner refreshes the replica; under the NEW certificate the tier
  // refetches from the origin — the expired entry is never served.
  publish_flow->set_time(client_flow->now());
  ASSERT_TRUE(owner
                  ->refresh_replicas(*publish_flow, client_flow->now(),
                                     util::seconds(3600))
                  .is_ok());
  auto fresh_cert = current_cert();
  const std::size_t served = object_server->elements_served();
  auto again = tier.fetch_through(*client_flow, server_ep, oid(), fresh_cert,
                                  "index.html");
  ASSERT_TRUE(again.is_ok());
  EXPECT_FALSE(again->cache_hit);                         // refetched...
  EXPECT_EQ(object_server->elements_served(), served + 1);  // ...from origin
  EXPECT_GE(registry.counter("cache.evictions", {{"reason", "expired"}}).value(),
            1u);
}

TEST_F(TierFixture, ConcurrentFillAndEvictionIsRaceFree) {
  // Tiny cache so fills constantly displace each other while explicit
  // evictions run alongside — the TSan lane turns any lock slip into a
  // failure.
  TierConfig config = tier_config();
  config.cache.max_entries = 2;
  config.delayed_replication = false;
  EdgeCacheTier tier(config);
  auto cert = current_cert();

  const std::vector<std::string> names = {"index.html", "logo.gif",
                                          "story.txt"};
  constexpr int kThreads = 4;
  constexpr int kIters = 25;
  std::vector<std::unique_ptr<net::SimFlow>> flows;
  for (int i = 0; i < kThreads; ++i) flows.push_back(net.open_flow(client_host));
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int it = 0; it < kIters; ++it) {
        const auto& name = names[(i + it) % names.size()];
        auto result =
            tier.fetch_through(*flows[i], server_ep, oid(), cert, name);
        if (!result.is_ok()) errors.fetch_add(1);
      }
    });
  }
  std::thread evictor([&] {
    for (int it = 0; it < kIters; ++it) {
      tier.element_cache().erase(
          CacheKey{oid(), names[it % names.size()],
                   cert.find(names[it % names.size()])->sha1});
      std::this_thread::yield();
    }
  });
  for (auto& t : threads) t.join();
  evictor.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_LE(tier.element_cache().size(), 2u);
}

TEST_F(TierFixture, EvictionListenerReentersReplicatorDuringDelayedInsert) {
  // A one-entry cache makes every pump-driven insert displace the previous
  // entry, so the eviction listener (running under the CACHE lock) calls
  // DelayedReplicator::cancel (taking the REPLICATOR lock) while that same
  // replicator is mid-pump.  This is the cache → replicator order of
  // tools/lock_hierarchy.txt exercised from inside the replicator's own
  // insert path: if pump ever held its mutex across cache_->insert, the
  // reentrant cancel would self-deadlock right here.
  TierConfig config = tier_config();
  config.cache.max_entries = 1;
  EdgeCacheTier tier(config);
  auto cert = current_cert();

  ASSERT_TRUE(tier.fetch_through(*client_flow, server_ep, oid(), cert,
                                 "index.html")
                  .is_ok());
  ASSERT_EQ(tier.replicator().pending(), 1u);
  ASSERT_EQ(tier.element_cache().size(), 1u);

  auto stats = tier.run_delayed_pulls(*client_flow);
  // Both siblings were pulled; each insert displaced the previous entry and
  // fired the listener with the cache lock held.
  EXPECT_EQ(stats.elements_pulled, 2u);
  EXPECT_EQ(stats.elements_failed, 0u);
  EXPECT_EQ(tier.replicator().pending(), 0u);
  EXPECT_EQ(tier.element_cache().size(), 1u);
  EXPECT_EQ(
      registry.counter("cache.evictions", {{"reason", "capacity"}}).value(),
      2u);
}

TEST_F(TierFixture, ConcurrentPumpAndEvictionKeepsLockOrder) {
  // TSan-exercised variant: pumps (replicator inserting into the cache),
  // fills (cache inserting + scheduling) and explicit evictions (listener
  // cancelling into the replicator) race on a one-entry cache.  Any lock
  // nesting that disagrees with cache → replicator shows up as a TSan
  // deadlock/race report or a hang under the tsan lane.
  TierConfig config = tier_config();
  config.cache.max_entries = 1;
  EdgeCacheTier tier(config);
  auto cert = current_cert();

  const std::vector<std::string> names = {"index.html", "logo.gif",
                                          "story.txt"};
  constexpr int kIters = 25;
  auto puller_flow = net.open_flow(client_host);
  auto filler_flow = net.open_flow(client_host);
  std::atomic<int> errors{0};

  std::thread filler([&] {
    for (int it = 0; it < kIters; ++it) {
      auto result = tier.fetch_through(*filler_flow, server_ep, oid(), cert,
                                       names[it % names.size()]);
      if (!result.is_ok()) errors.fetch_add(1);
    }
  });
  std::thread puller([&] {
    for (int it = 0; it < kIters; ++it) {
      tier.run_delayed_pulls(*puller_flow);
      std::this_thread::yield();
    }
  });
  std::thread evictor([&] {
    for (int it = 0; it < kIters; ++it) {
      const auto& name = names[it % names.size()];
      tier.element_cache().erase(CacheKey{oid(), name, cert.find(name)->sha1});
      std::this_thread::yield();
    }
  });
  filler.join();
  puller.join();
  evictor.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_LE(tier.element_cache().size(), 1u);
}

// --- Proxy integration ------------------------------------------------------

TEST_F(TierFixture, CertificateVerifiedOncePerDocumentNotPerElement) {
  // Without binding caching, every element fetch re-binds the replica — but
  // the integrity certificate's RSA verification must happen once per
  // (document, certificate), with the memo answering the rest.
  ProxyConfig pc = proxy_config(/*identity=*/false);
  pc.registry = &registry;
  GlobeDocProxy proxy(*client_flow, pc);

  ASSERT_TRUE(proxy.fetch(object_name, "index.html").is_ok());
  ASSERT_TRUE(proxy.fetch(object_name, "logo.gif").is_ok());
  ASSERT_TRUE(proxy.fetch(object_name, "story.txt").is_ok());

  EXPECT_EQ(registry.counter("proxy.cert_verifies").value(), 1u);
  EXPECT_EQ(registry.counter("proxy.cert_verify_memo_hits").value(), 2u);
}

TEST_F(TierFixture, CertVerifyProbeShowsMemoHitsCostOnlyProbeOverhead) {
  // The cert_verify probe wraps hit and miss alike, so the cost profile —
  // not just the counters — proves the memo works: only the first bind
  // descends into rsa_verify, and the two memo hits charge nothing beyond
  // the fixed probe bookkeeping.  A step clock (every read advances 100 ns)
  // makes the arithmetic exact.
  obs::ProfileRegistry profile;
  std::uint64_t clock_ns = 0;
  profile.set_clocks([&clock_ns] { return clock_ns += 100; },
                     [&clock_ns] { return clock_ns += 100; });
  ProxyConfig pc = proxy_config(/*identity=*/false);
  pc.registry = &registry;
  pc.profile = &profile;
  GlobeDocProxy proxy(*client_flow, pc);

  ASSERT_TRUE(proxy.fetch(object_name, "index.html").is_ok());
  ASSERT_TRUE(proxy.fetch(object_name, "logo.gif").is_ok());
  ASSERT_TRUE(proxy.fetch(object_name, "story.txt").is_ok());

  obs::ProbeStat cert, cert_rsa;
  for (const obs::ProfileSample& s : profile.snapshot().samples) {
    if (s.leaf == "cert_verify") cert = s.stat;
    if (s.leaf == "rsa_verify" &&
        s.stack.find(";cert_verify;") != std::string::npos) {
      cert_rsa = s.stat;
    }
  }
  // Every bind passed through the probe; only the first paid the RSA.
  EXPECT_EQ(cert.calls, 3u);
  EXPECT_EQ(cert_rsa.calls, 1u);
  // Self time is pure probe overhead.  A childless probe spans 2 clock
  // reads (exit wall + exit cpu): each memo hit costs 200 ns.  The miss
  // additionally brackets its rsa_verify child's 2 entry reads plus its
  // own 2 exit reads — 400 ns of self time.  400 + 2 * 200 = 800: the
  // memo hits sit at the floor, all real crypto lives in the child.
  EXPECT_EQ(cert.self_cpu_ns, 800u);
  EXPECT_GT(cert_rsa.cpu_ns, 0u);
}

TEST_F(TierFixture, MemoMissesWhenCertificateBytesChange) {
  ProxyConfig pc = proxy_config(/*identity=*/false);
  pc.registry = &registry;
  GlobeDocProxy proxy(*client_flow, pc);
  ASSERT_TRUE(proxy.fetch(object_name, "index.html").is_ok());

  // A refreshed certificate has different bytes: full verification again.
  publish_flow->set_time(client_flow->now());
  ASSERT_TRUE(owner
                  ->refresh_replicas(*publish_flow, client_flow->now(),
                                     util::seconds(3600))
                  .is_ok());
  ASSERT_TRUE(proxy.fetch(object_name, "index.html").is_ok());
  EXPECT_EQ(registry.counter("proxy.cert_verifies").value(), 2u);
}

TEST_F(TierFixture, DecoratedUrlDuplicatesShareOneCacheEntry) {
  EdgeCacheTier tier(tier_config());
  ProxyConfig pc = proxy_config();
  pc.edge_cache = &tier;
  GlobeDocProxy proxy(*client_flow, pc);

  const std::size_t before = object_server->elements_served();
  auto v1 = proxy.fetch_url("http://globe/news.vu.nl/logo.gif?v=1");
  auto v2 = proxy.fetch_url("http://globe/news.vu.nl/logo.gif?v=2&cb=99");
  auto frag = proxy.fetch_url("globe://news.vu.nl/logo.gif#top");
  ASSERT_TRUE(v1.is_ok());
  ASSERT_TRUE(v2.is_ok());
  ASSERT_TRUE(frag.is_ok());
  // Decoration canonicalized away: one upstream fetch, the rest are hits.
  EXPECT_TRUE(v2->metrics.served_from_edge_cache);
  EXPECT_TRUE(frag->metrics.served_from_edge_cache);
  EXPECT_EQ(object_server->elements_served(), before + 1);
}

TEST_F(TierFixture, ProxyFallsBackToDirectPathWithoutTier) {
  ProxyConfig pc = proxy_config();
  GlobeDocProxy proxy(*client_flow, pc);  // edge_cache == nullptr
  auto result = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(result.is_ok());
  EXPECT_FALSE(result->metrics.served_from_edge_cache);
}

}  // namespace
}  // namespace globe::cache
