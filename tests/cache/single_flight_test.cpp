// SingleFlight: N concurrent misses → one computation; result OR error is
// shared by every waiter of that flight; errors are never sticky.
#include "cache/single_flight.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "util/mutex.hpp"

namespace globe::cache {
namespace {

using util::ErrorCode;
using util::Result;

TEST(SingleFlightTest, SingleCallerIsLeader) {
  SingleFlight<int, std::string> sf;
  auto outcome = sf.run(1, [] { return Result<std::string>("value"); });
  EXPECT_TRUE(outcome.leader);
  ASSERT_TRUE(outcome.result.is_ok());
  EXPECT_EQ(*outcome.result, "value");
  EXPECT_EQ(sf.coalesced_waiters(), 0u);
  EXPECT_EQ(sf.in_flight(), 0u);
}

TEST(SingleFlightTest, ConcurrentCallersCoalesceIntoOneComputation) {
  SingleFlight<int, int> sf;
  std::atomic<int> computations{0};
  util::Mutex gate;
  util::CondVar gate_cv;
  bool leader_inside = false;
  bool release = false;

  constexpr int kThreads = 8;
  std::atomic<int> leaders{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      auto outcome = sf.run(7, [&]() -> Result<int> {
        {
          util::UniqueLock lock(gate);
          leader_inside = true;
          gate_cv.notify_all();
          // Hold the flight open until every other thread has had time to
          // pile on, so coalescing is exercised deterministically.
          while (!release) gate_cv.wait(lock);
        }
        return computations.fetch_add(1) + 100;
      });
      if (outcome.leader) leaders.fetch_add(1);
      ASSERT_TRUE(outcome.result.is_ok());
      EXPECT_EQ(*outcome.result, 100);
    });
  }
  {
    util::UniqueLock lock(gate);
    while (!leader_inside) gate_cv.wait(lock);
  }
  // Give the other threads a chance to reach the wait queue, then release.
  while (sf.coalesced_waiters() < kThreads - 1) {
    std::this_thread::yield();
  }
  {
    util::UniqueLock lock(gate);
    release = true;
    gate_cv.notify_all();
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(computations.load(), 1);
  EXPECT_EQ(leaders.load(), 1);
  EXPECT_EQ(sf.coalesced_waiters(), kThreads - 1);
}

TEST(SingleFlightTest, ErrorFeedsAllWaitersAndIsNotSticky) {
  SingleFlight<int, int> sf;
  util::Mutex gate;
  util::CondVar gate_cv;
  bool leader_inside = false;
  bool release = false;

  constexpr int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      auto outcome = sf.run(9, [&]() -> Result<int> {
        {
          util::UniqueLock lock(gate);
          leader_inside = true;
          gate_cv.notify_all();
          while (!release) gate_cv.wait(lock);
        }
        return Result<int>(ErrorCode::kHashMismatch, "tampered");
      });
      if (!outcome.result.is_ok()) {
        EXPECT_EQ(outcome.result.status().code(), ErrorCode::kHashMismatch);
        failures.fetch_add(1);
      }
    });
  }
  {
    util::UniqueLock lock(gate);
    while (!leader_inside) gate_cv.wait(lock);
  }
  while (sf.coalesced_waiters() < kThreads - 1) std::this_thread::yield();
  {
    util::UniqueLock lock(gate);
    release = true;
    gate_cv.notify_all();
  }
  for (auto& t : threads) t.join();

  // EVERY caller of the poisoned flight saw the error...
  EXPECT_EQ(failures.load(), kThreads);
  // ...but the error is not remembered: a fresh call retries and succeeds.
  auto retry = sf.run(9, [] { return Result<int>(42); });
  EXPECT_TRUE(retry.leader);
  ASSERT_TRUE(retry.result.is_ok());
  EXPECT_EQ(*retry.result, 42);
}

TEST(SingleFlightTest, ThrownStatusErrorDoesNotStrandWaiters) {
  SingleFlight<int, int> sf;
  auto outcome = sf.run(3, []() -> Result<int> {
    throw util::StatusError(
        util::Status(ErrorCode::kUnavailable, "link died"));
  });
  ASSERT_FALSE(outcome.result.is_ok());
  EXPECT_EQ(outcome.result.status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(sf.in_flight(), 0u);
}

TEST(SingleFlightTest, DistinctKeysRunIndependently) {
  SingleFlight<std::string, int> sf;
  auto a = sf.run("a", [] { return Result<int>(1); });
  auto b = sf.run("b", [] { return Result<int>(2); });
  EXPECT_TRUE(a.leader);
  EXPECT_TRUE(b.leader);
  EXPECT_EQ(*a.result, 1);
  EXPECT_EQ(*b.result, 2);
}

}  // namespace
}  // namespace globe::cache
