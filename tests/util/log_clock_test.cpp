#include <gtest/gtest.h>

#include "util/clock.hpp"
#include "util/log.hpp"

namespace globe::util {
namespace {

TEST(LogTest, LevelRoundTrip) {
  LogLevel original = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(original);
}

TEST(LogTest, FormattingDoesNotThrow) {
  LogLevel original = log_level();
  set_log_level(LogLevel::kOff);  // discard output
  logf(LogLevel::kInfo, "test", "mixed ", 42, " and ", 3.5, " values");
  GLOBE_LOG_DEBUG("test", "macro path ", 1);
  GLOBE_LOG_ERROR("test", "error path");
  set_log_level(original);
}

TEST(ClockTest, DurationHelpers) {
  EXPECT_EQ(millis(3), 3'000'000u);
  EXPECT_EQ(micros(7), 7'000u);
  EXPECT_EQ(seconds(2), 2'000'000'000u);
  EXPECT_DOUBLE_EQ(to_millis(millis(250)), 250.0);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
}

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.now(), 100u);
  clock.advance(millis(5));
  EXPECT_EQ(clock.now(), 100u + millis(5));
  clock.set(seconds(1));
  EXPECT_EQ(clock.now(), seconds(1));
}

TEST(ClockTest, RealClockMonotonicEnough) {
  RealClock clock;
  SimTime a = clock.now();
  SimTime b = clock.now();
  EXPECT_GE(b, a);
  // Plausibly a modern date (after 2020-01-01 in Unix nanoseconds).
  EXPECT_GT(a, 1'577'836'800ull * kSecond);
}

}  // namespace
}  // namespace globe::util
