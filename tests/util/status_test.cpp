#include "util/status.hpp"

#include <gtest/gtest.h>

#include <string>

namespace globe::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s(ErrorCode::kHashMismatch, "element body differs");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kHashMismatch);
  EXPECT_EQ(s.to_string(), "HASH_MISMATCH: element body differs");
}

TEST(StatusTest, AllSecurityCodesHaveDistinctNames) {
  const ErrorCode codes[] = {
      ErrorCode::kBadSignature, ErrorCode::kHashMismatch, ErrorCode::kExpired,
      ErrorCode::kWrongElement, ErrorCode::kOidMismatch, ErrorCode::kUntrustedIssuer};
  for (std::size_t i = 0; i < std::size(codes); ++i) {
    for (std::size_t j = i + 1; j < std::size(codes); ++j) {
      EXPECT_STRNE(error_code_name(codes[i]), error_code_name(codes[j]));
    }
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.code(), ErrorCode::kOk);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(ErrorCode::kNotFound, "no such replica");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOnErrorThrowsStatusError) {
  Result<std::string> r(ErrorCode::kExpired, "stale certificate");
  try {
    (void)r.value();
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), ErrorCode::kExpired);
    EXPECT_NE(std::string(e.what()).find("EXPIRED"), std::string::npos);
  }
}

TEST(ResultTest, OkStatusWithoutValueIsLogicError) {
  EXPECT_THROW(Result<int>(Status::ok()), std::logic_error);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("abc"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "abc");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abcd"));
  EXPECT_EQ(r->size(), 4u);
}

}  // namespace
}  // namespace globe::util
