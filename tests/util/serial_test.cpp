#include "util/serial.hpp"

#include <gtest/gtest.h>

namespace globe::util {
namespace {

TEST(SerialTest, IntegerRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.at_end());
}

TEST(SerialTest, BigEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  EXPECT_EQ(w.buffer(), (Bytes{0x01, 0x02, 0x03, 0x04}));
}

TEST(SerialTest, BytesAndStringRoundTrip) {
  Writer w;
  w.bytes(Bytes{9, 8, 7});
  w.str("globedoc");
  w.str("");
  Reader r(w.buffer());
  EXPECT_EQ(r.bytes(), (Bytes{9, 8, 7}));
  EXPECT_EQ(r.str(), "globedoc");
  EXPECT_EQ(r.str(), "");
  r.expect_end();
}

TEST(SerialTest, RawHasNoLengthPrefix) {
  Writer w;
  w.raw(Bytes{1, 2, 3});
  EXPECT_EQ(w.buffer().size(), 3u);
  Reader r(w.buffer());
  EXPECT_EQ(r.raw(3), (Bytes{1, 2, 3}));
}

TEST(SerialTest, TruncatedIntegerThrows) {
  Bytes b{0x01, 0x02};
  Reader r(b);
  EXPECT_THROW(r.u32(), SerialError);
}

TEST(SerialTest, OversizedLengthPrefixThrows) {
  Writer w;
  w.u32(1000);  // claims 1000 bytes follow
  w.u8(1);
  Reader r(w.buffer());
  EXPECT_THROW(r.bytes(), SerialError);
}

TEST(SerialTest, TrailingGarbageDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.buffer());
  r.u8();
  EXPECT_THROW(r.expect_end(), SerialError);
  r.u8();
  EXPECT_NO_THROW(r.expect_end());
}

TEST(SerialTest, EmptyReaderAtEnd) {
  Reader r(BytesView{});
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_THROW(r.u8(), SerialError);
}

TEST(SerialTest, TakeMovesBuffer) {
  Writer w;
  w.u8(7);
  Bytes b = w.take();
  EXPECT_EQ(b, Bytes{7});
}

TEST(SerialTest, NestedMessageRoundTrip) {
  Writer inner;
  inner.str("payload");
  Writer outer;
  outer.bytes(inner.buffer());
  outer.u32(42);

  Reader r(outer.buffer());
  Bytes inner_bytes = r.bytes();
  EXPECT_EQ(r.u32(), 42u);
  Reader ri(inner_bytes);
  EXPECT_EQ(ri.str(), "payload");
}

}  // namespace
}  // namespace globe::util
