#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace globe::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilDone) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto f = pool.submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<int> data(10000);
  std::iota(data.begin(), data.end(), 1);
  std::vector<std::future<long>> futures;
  const std::size_t chunk = 1000;
  for (std::size_t start = 0; start < data.size(); start += chunk) {
    futures.push_back(pool.submit([&data, start, chunk] {
      long sum = 0;
      for (std::size_t i = start; i < start + chunk; ++i) sum += data[i];
      return sum;
    }));
  }
  long total = 0;
  for (auto& f : futures) total += f.get();
  EXPECT_EQ(total, 10000L * 10001 / 2);
}

}  // namespace
}  // namespace globe::util
