// Runtime behavior of the annotated capability types (util/mutex.hpp).
// The *static* side — that -Werror=thread-safety rejects unlocked access to
// a GLOBE_GUARDED_BY field — is covered by the compile-should-fail fixture
// in tests/threading/ (GLOBE_THREAD_SAFETY builds only).
#include "util/mutex.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace globe::util {
namespace {

class GuardedCounter {
 public:
  void add(int n) {
    LockGuard lock(mutex_);
    value_ += n;
  }

  int value() const {
    LockGuard lock(mutex_);
    return value_;
  }

  void wait_for_at_least(int target) {
    UniqueLock lock(mutex_);
    while (value_ < target) cv_.wait(lock);
  }

  void add_and_notify(int n) {
    {
      LockGuard lock(mutex_);
      value_ += n;
    }
    cv_.notify_all();
  }

 private:
  mutable Mutex mutex_;
  CondVar cv_;
  int value_ GLOBE_GUARDED_BY(mutex_) = 0;
};

TEST(MutexTest, LockGuardSerializesConcurrentIncrements) {
  GuardedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(MutexTest, CondVarWakesWaiterWhenPredicateHolds) {
  GuardedCounter counter;
  std::thread waiter([&counter] { counter.wait_for_at_least(3); });
  for (int i = 0; i < 3; ++i) counter.add_and_notify(1);
  waiter.join();
  EXPECT_GE(counter.value(), 3);
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex m;
  ASSERT_TRUE(m.try_lock());
  std::thread other([&m] { EXPECT_FALSE(m.try_lock()); });
  other.join();
  m.unlock();
}

TEST(MutexTest, RecursiveMutexAllowsReentrantAcquisition) {
  RecursiveMutex m;
  RecursiveLockGuard outer(m);
  {
    RecursiveLockGuard inner(m);  // must not deadlock
  }
}

}  // namespace
}  // namespace globe::util
