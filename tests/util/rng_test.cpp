#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <map>

namespace globe::util {
namespace {

TEST(SplitMix64Test, DeterministicForSeed) {
  SplitMix64 a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64Test, KnownFirstOutput) {
  // Reference value for splitmix64 with seed 0 (state incremented first).
  SplitMix64 rng(0);
  EXPECT_EQ(rng.next(), 0xE220A8397B1DCDAFULL);
}

TEST(SplitMix64Test, BelowStaysInRange) {
  SplitMix64 rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(SplitMix64Test, BelowZeroThrows) {
  SplitMix64 rng(7);
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(SplitMix64Test, NextDoubleInUnitInterval) {
  SplitMix64 rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix64Test, BelowRoughlyUniform) {
  SplitMix64 rng(42);
  std::map<std::uint64_t, int> counts;
  const int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(4)];
  for (std::uint64_t v = 0; v < 4; ++v) {
    EXPECT_GT(counts[v], kDraws / 4 - 500);
    EXPECT_LT(counts[v], kDraws / 4 + 500);
  }
}

TEST(ZipfSamplerTest, RankZeroMostPopular) {
  ZipfSampler zipf(100, 1.0, 7);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample()];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
}

TEST(ZipfSamplerTest, SamplesWithinSupport) {
  ZipfSampler zipf(10, 0.8, 3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.sample(), 10u);
}

TEST(ZipfSamplerTest, EmptySupportThrows) {
  EXPECT_THROW(ZipfSampler(0, 1.0, 1), std::invalid_argument);
}

TEST(ZipfSamplerTest, ExponentZeroIsUniformish) {
  ZipfSampler zipf(4, 0.0, 11);
  std::map<std::size_t, int> counts;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.sample()];
  for (std::size_t v = 0; v < 4; ++v) {
    EXPECT_GT(counts[v], kDraws / 4 - 700);
    EXPECT_LT(counts[v], kDraws / 4 + 700);
  }
}

}  // namespace
}  // namespace globe::util
