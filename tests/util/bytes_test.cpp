#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace globe::util {
namespace {

TEST(BytesTest, RoundTripStringConversion) {
  std::string s = "hello \x01\x02 world";
  Bytes b = to_bytes(s);
  EXPECT_EQ(to_string(b), s);
}

TEST(BytesTest, EmptyStringConversions) {
  EXPECT_TRUE(to_bytes("").empty());
  EXPECT_EQ(to_string(Bytes{}), "");
}

TEST(HexTest, EncodeKnownValues) {
  EXPECT_EQ(hex_encode(Bytes{}), "");
  EXPECT_EQ(hex_encode(Bytes{0x00}), "00");
  EXPECT_EQ(hex_encode(Bytes{0xde, 0xad, 0xbe, 0xef}), "deadbeef");
  EXPECT_EQ(hex_encode(Bytes{0x0f, 0xf0}), "0ff0");
}

TEST(HexTest, DecodeKnownValues) {
  EXPECT_EQ(hex_decode(""), Bytes{});
  EXPECT_EQ(hex_decode("deadbeef"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
  EXPECT_EQ(hex_decode("DEADBEEF"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(HexTest, DecodeRejectsOddLength) {
  EXPECT_THROW(hex_decode("abc"), std::invalid_argument);
}

TEST(HexTest, DecodeRejectsNonHex) {
  EXPECT_THROW(hex_decode("zz"), std::invalid_argument);
  EXPECT_THROW(hex_decode("0g"), std::invalid_argument);
}

TEST(HexTest, RoundTripAllByteValues) {
  Bytes all(256);
  for (int i = 0; i < 256; ++i) all[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(hex_decode(hex_encode(all)), all);
}

TEST(Base64Test, EncodeKnownVectors) {
  // RFC 4648 test vectors.
  EXPECT_EQ(base64_encode(to_bytes("")), "");
  EXPECT_EQ(base64_encode(to_bytes("f")), "Zg==");
  EXPECT_EQ(base64_encode(to_bytes("fo")), "Zm8=");
  EXPECT_EQ(base64_encode(to_bytes("foo")), "Zm9v");
  EXPECT_EQ(base64_encode(to_bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(base64_encode(to_bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(base64_encode(to_bytes("foobar")), "Zm9vYmFy");
}

TEST(Base64Test, DecodeKnownVectors) {
  EXPECT_EQ(to_string(base64_decode("Zm9vYmFy")), "foobar");
  EXPECT_EQ(to_string(base64_decode("Zg==")), "f");
  EXPECT_EQ(to_string(base64_decode("Zg")), "f");  // missing padding tolerated
}

TEST(Base64Test, DecodeRejectsBadAlphabet) {
  EXPECT_THROW(base64_decode("a!b"), std::invalid_argument);
}

TEST(Base64Test, RoundTripVariousLengths) {
  for (std::size_t len = 0; len < 64; ++len) {
    Bytes b(len);
    for (std::size_t i = 0; i < len; ++i) b[i] = static_cast<std::uint8_t>(i * 37 + len);
    EXPECT_EQ(base64_decode(base64_encode(b)), b) << "len=" << len;
  }
}

TEST(CtEqualTest, EqualAndUnequal) {
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
  EXPECT_TRUE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 3}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 4}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2}));
  EXPECT_FALSE(ct_equal(Bytes{0x80}, Bytes{0x00}));
}

TEST(ConcatTest, ConcatAndAppend) {
  Bytes a{1, 2};
  Bytes b{3};
  Bytes c;
  EXPECT_EQ(concat({a, b, c}), (Bytes{1, 2, 3}));
  append(a, b);
  EXPECT_EQ(a, (Bytes{1, 2, 3}));
}

}  // namespace
}  // namespace globe::util
