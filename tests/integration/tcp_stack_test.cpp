// Integration: the complete GlobeDoc stack — naming, location, object
// server, owner tooling, verifying proxy — over real TCP sockets on
// localhost.  Identical protocol code to the simulated tests; only the
// Transport differs.
#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "globedoc/owner.hpp"
#include "globedoc/proxy.hpp"
#include "globedoc/proxy_http.hpp"
#include "http/client.hpp"
#include "globedoc/server.hpp"
#include "location/tree.hpp"
#include "naming/service.hpp"
#include "net/tcp.hpp"

namespace globe::globedoc {
namespace {

using util::Bytes;
using util::ErrorCode;
using util::to_bytes;

net::Endpoint port_ep(std::uint16_t port) {
  return net::Endpoint{net::HostId{0}, port};
}

crypto::RsaKeyPair tcp_key(std::uint64_t seed) {
  auto rng = crypto::HmacDrbg::from_seed(seed);
  return crypto::rsa_generate(512, rng);
}

struct TcpStackFixture : ::testing::Test {
  void SetUp() override {
    zone_keys = tcp_key(61);
    root_zone = std::make_shared<naming::ZoneAuthority>("", zone_keys);
    naming_server.add_zone(root_zone);
    naming_server.register_with(naming_dispatcher);
    naming_tcp = std::make_unique<net::TcpServer>(0, naming_dispatcher.handler());

    root_node = std::make_unique<location::LocationNode>("root", false);
    site_node = std::make_unique<location::LocationNode>("site", true);
    root_node->register_with(root_dispatcher);
    site_node->register_with(site_dispatcher);
    root_tcp = std::make_unique<net::TcpServer>(0, root_dispatcher.handler());
    site_tcp = std::make_unique<net::TcpServer>(0, site_dispatcher.handler());
    root_node->add_child("site", port_ep(site_tcp->port()));
    site_node->set_parent(port_ep(root_tcp->port()));

    credentials = tcp_key(62);
    object_server = std::make_unique<ObjectServer>("tcp-srv", 63);
    object_server->authorize(credentials.pub);
    object_server->register_with(object_dispatcher);
    object_tcp = std::make_unique<net::TcpServer>(0, object_dispatcher.handler());

    GlobeDocObject object(tcp_key(64));
    object.put_element({"index.html", "text/html", to_bytes("<html>tcp</html>")});
    object.put_element({"big.bin", "application/octet-stream", Bytes(50000, 0xAB)});
    owner = std::make_unique<ObjectOwner>(std::move(object), credentials);

    util::SimTime now = util::RealClock().now();
    owner->register_name(*root_zone, "tcp.vu.nl", now + util::seconds(600));
    auto state = owner->sign_and_snapshot(now, util::seconds(600));
    ASSERT_TRUE(owner
                    ->publish_replica(owner_transport, port_ep(object_tcp->port()),
                                      port_ep(site_tcp->port()), state)
                    .is_ok());
  }

  ProxyConfig proxy_config() {
    ProxyConfig config;
    config.naming_root = port_ep(naming_tcp->port());
    config.naming_anchor = zone_keys.pub;
    config.location_site = port_ep(site_tcp->port());
    return config;
  }

  crypto::RsaKeyPair zone_keys, credentials;
  std::shared_ptr<naming::ZoneAuthority> root_zone;
  naming::NamingServer naming_server;
  rpc::ServiceDispatcher naming_dispatcher, root_dispatcher, site_dispatcher,
      object_dispatcher;
  std::unique_ptr<net::TcpServer> naming_tcp, root_tcp, site_tcp, object_tcp;
  std::unique_ptr<location::LocationNode> root_node, site_node;
  std::unique_ptr<ObjectServer> object_server;
  std::unique_ptr<ObjectOwner> owner;
  net::TcpTransport owner_transport;
};

TEST_F(TcpStackFixture, SecureFetchOverRealSockets) {
  net::TcpTransport transport;
  GlobeDocProxy proxy(transport, proxy_config());
  auto result = proxy.fetch("tcp.vu.nl", "index.html");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(util::to_string(result->element.content), "<html>tcp</html>");
}

TEST_F(TcpStackFixture, LargeElementOverRealSockets) {
  net::TcpTransport transport;
  GlobeDocProxy proxy(transport, proxy_config());
  auto result = proxy.fetch("tcp.vu.nl", "big.bin");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->element.content.size(), 50000u);
}

TEST_F(TcpStackFixture, UnknownNameFailsCleanly) {
  net::TcpTransport transport;
  GlobeDocProxy proxy(transport, proxy_config());
  EXPECT_EQ(proxy.fetch("ghost.vu.nl", "index.html").code(), ErrorCode::kNotFound);
}

TEST_F(TcpStackFixture, UpdatePropagatesOverRealSockets) {
  owner->object().put_element({"index.html", "text/html", to_bytes("<html>v2</html>")});
  ASSERT_TRUE(owner
                  ->refresh_replicas(owner_transport, util::RealClock().now(),
                                     util::seconds(600))
                  .is_ok());
  net::TcpTransport transport;
  GlobeDocProxy proxy(transport, proxy_config());
  auto result = proxy.fetch("tcp.vu.nl", "index.html");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(util::to_string(result->element.content), "<html>v2</html>");
}

TEST_F(TcpStackFixture, ConcurrentClientsVerifyIndependently) {
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([this, &ok] {
      net::TcpTransport transport;
      GlobeDocProxy proxy(transport, proxy_config());
      for (int i = 0; i < 5; ++i) {
        auto result = proxy.fetch("tcp.vu.nl", "index.html");
        if (result.is_ok()) ok.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), 20);
}

TEST_F(TcpStackFixture, UnpublishOverRealSockets) {
  ASSERT_TRUE(owner
                  ->unpublish_replica(owner_transport, port_ep(object_tcp->port()),
                                      port_ep(site_tcp->port()))
                  .is_ok());
  net::TcpTransport transport;
  GlobeDocProxy proxy(transport, proxy_config());
  EXPECT_EQ(proxy.fetch("tcp.vu.nl", "index.html").code(), ErrorCode::kNotFound);
}


TEST_F(TcpStackFixture, BrowserThroughProxyOverRealSockets) {
  // The complete Fig. 3 wire path on real sockets: browser -> (HTTP/TCP) ->
  // user proxy -> (RPC/TCP) -> naming/location/replica.
  auto proxy_transport = std::make_unique<net::TcpTransport>();
  auto& transport_ref = *proxy_transport;
  auto proxy = std::make_unique<GlobeDocProxy>(transport_ref, proxy_config());
  // Keep the transport alive alongside the proxy front end.
  ProxyHttpServer front(std::move(proxy));
  net::TcpServer proxy_tcp(0, front.handler(), /*workers=*/1);

  net::TcpTransport browser_transport;
  http::HttpClient browser(browser_transport);
  auto resp = browser.get(port_ep(proxy_tcp.port()), "/globe/tcp.vu.nl/index.html");
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(util::to_string(resp->body), "<html>tcp</html>");
  EXPECT_EQ(resp->headers.get("Via"), "1.1 globedoc-proxy");

  auto missing = browser.get(port_ep(proxy_tcp.port()), "/globe/tcp.vu.nl/ghost");
  ASSERT_TRUE(missing.is_ok());
  EXPECT_EQ(missing->status, 404);
}

}  // namespace
}  // namespace globe::globedoc
