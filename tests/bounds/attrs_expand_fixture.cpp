// Compile-SHOULD-FAIL fixture (under Clang): proves GLOBE_LENGTH_GUARD and
// GLOBE_BOUNDED really expand to [[clang::annotate(...)]] attributes rather
// than silently to nothing.  An attribute is ill-formed in expression
// position, so if either macro expands this TU does not compile — which is
// what the bounds lane asserts.  If it ever compiles under Clang, the
// macros have gone vacuous and every annotation in src/ is dead:
// bounds_check's clang frontend would see no guards and no declared bounds.
//
// Under non-Clang compilers the macros are empty by design and this TU
// compiles; the check is only meaningful (and only wired up) for Clang.
#include "util/bounds_annotations.hpp"

int guard_probe = GLOBE_LENGTH_GUARD 1;
int bounded_probe = GLOBE_BOUNDED 2;
