// The size passes a GLOBE_LENGTH_GUARD clamp first; the guarded value is a
// validated size and the allocation is clean.
// BOUNDS-EXPECT: clean
#include "_prelude.h"

GLOBE_LENGTH_GUARD unsigned clamp_count(unsigned n, unsigned max_n);

void handle_frame(GLOBE_UNTRUSTED unsigned n) {
  unsigned m = clamp_count(n, 1024);
  std::vector<int> frame;
  frame.resize(m);
}
