// A decoded length field off a tainted wire buffer reaches reserve().
// BOUNDS-EXPECT: flag kind=alloc detail=alloc:reserve
#include "_prelude.h"

GLOBE_UNTRUSTED Bytes recv_payload();

void decode() {
  Bytes wire = recv_payload();
  std::vector<int> items;
  items.reserve(wire.u32());
}
