// The callee clamps its size parameter before allocating, so passing it an
// untrusted size is fine: the guard summary marks the parameter validated.
// BOUNDS-EXPECT: clean
#include "_prelude.h"

GLOBE_LENGTH_GUARD unsigned clamp_count(unsigned n, unsigned max_n);

void fill(std::vector<int>& out, unsigned n) {
  unsigned m = clamp_count(n, 4096);
  out.resize(m);
}

void handle(GLOBE_UNTRUSTED unsigned n) {
  std::vector<int> items;
  fill(items, n);
}
