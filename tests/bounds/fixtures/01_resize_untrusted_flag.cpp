// Untrusted entry parameter flows straight into a resize: the canonical
// untrusted-size allocation.
// BOUNDS-EXPECT: flag kind=alloc detail=alloc:resize
#include "_prelude.h"

void handle_frame(GLOBE_UNTRUSTED unsigned n) {
  std::vector<int> frame;
  frame.resize(n);
}
