// Count-constructing a buffer with an attacker-decoded length.
// BOUNDS-EXPECT: flag kind=alloc detail=alloc:Bytes-ctor
#include "_prelude.h"

GLOBE_UNTRUSTED Bytes recv_payload();

void decode() {
  Bytes wire = recv_payload();
  Bytes out(wire.u32(), 0);
}
