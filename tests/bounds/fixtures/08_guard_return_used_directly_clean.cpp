// The guard's return value feeds the allocation with no intermediate
// variable; a guard's result is a validated size by contract.
// BOUNDS-EXPECT: clean
#include "_prelude.h"

GLOBE_LENGTH_GUARD unsigned clamp_count(unsigned n, unsigned max_n);

void handle(GLOBE_UNTRUSTED unsigned n) {
  std::vector<int> items;
  items.resize(clamp_count(n, 256));
}
