// Reserving by the *received* buffer's size() is input-bounded: the bytes
// already arrived, so the allocation cannot exceed what the transport
// delivered.  size() and friends are metadata filters, not decoded sizes.
// BOUNDS-EXPECT: clean
#include "_prelude.h"

GLOBE_UNTRUSTED Bytes recv_payload();

void decode() {
  Bytes wire = recv_payload();
  std::vector<int> items;
  items.reserve(wire.size());
}
