// Capacity 0 in the registry: the member grows only during trusted
// configuration (handler registration at startup), so no runtime eviction
// is demanded.
// BOUNDS-EXPECT: clean
// BOUNDS-CAPACITY: 0 test.RouteRegistry.routes_
#include "_prelude.h"

class RouteRegistry {
 public:
  void bind(const std::string& route) { routes_.push_back(route); }

 private:
  std::vector<std::string> routes_ GLOBE_BOUNDED;
};
