// Guarded once, then overwritten from the wire again: the second decode
// re-taints the variable and the allocation must flag.
// BOUNDS-EXPECT: flag kind=alloc detail=alloc:resize
#include "_prelude.h"

GLOBE_UNTRUSTED Bytes recv_payload();
GLOBE_LENGTH_GUARD unsigned clamp_count(unsigned n, unsigned max_n);

void decode() {
  Bytes wire = recv_payload();
  unsigned n = clamp_count(wire.u32(), 64);
  n = wire.u32();
  std::vector<int> items;
  items.resize(n);
}
