// Keyed accumulation (emplace into a member map) in a long-lived registry
// class grows one entry per distinct key forever.
// BOUNDS-EXPECT: flag kind=growth detail=PeerRegistry.peers_
#include "_prelude.h"

class PeerRegistry {
 public:
  void observe(const std::string& peer, const Bytes& state) {
    peers_.emplace(peer, state);
  }

 private:
  std::map<std::string, Bytes> peers_;
};
