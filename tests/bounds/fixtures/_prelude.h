// Shared fixture prelude: stand-ins for src/util/bounds_annotations.hpp,
// src/util/taint_annotations.hpp and the std containers, so each fixture is
// a self-contained TU under the clang frontend.  The lite frontend never
// parses this header — it analyzes each fixture file in isolation, which
// keeps every declared-but-bodiless function opaque, exactly like a real
// out-of-TU callee.
#pragma once
#if defined(__clang__)
#define GLOBE_UNTRUSTED [[clang::annotate("globe::untrusted")]]
#define GLOBE_LENGTH_GUARD [[clang::annotate("globe::length_guard")]]
#define GLOBE_BOUNDED [[clang::annotate("globe::bounded")]]
#else
#define GLOBE_UNTRUSTED
#define GLOBE_LENGTH_GUARD
#define GLOBE_BOUNDED
#endif

using size_t = decltype(sizeof(0));

// Wire-buffer stand-in: size() is input-bounded metadata (SIZE_FILTER), any
// other method on a tainted receiver carries the taint (a Reader-style
// decoded value).
struct Bytes {
  Bytes();
  Bytes(size_t n, int fill);  // count constructor: an allocation-sized call
  size_t size() const;
  unsigned u32() const;  // decoded length field — attacker-controlled
};

namespace std {

template <typename T>
class vector {
 public:
  vector();
  vector(size_t n, const T& fill);
  void resize(size_t n);
  void reserve(size_t n);
  void push_back(const T& v);
  void pop_back();
  void clear();
  size_t size() const;
  bool empty() const;
};

template <typename T>
class deque {
 public:
  void push_back(const T& v);
  void pop_front();
  size_t size() const;
};

template <typename K, typename V>
class map {
 public:
  void emplace(const K& k, const V& v);
  void erase(const K& k);
  size_t size() const;
};

class string {
 public:
  string();
  string(const char* s);
  string& operator+=(const string& other);
  size_t size() const;
};

template <typename T>
struct unique_ptr {};

template <typename T>
unique_ptr<T> make_unique(size_t n);

}  // namespace std
