// A long-lived cache class accumulates into a member container with no
// GLOBE_BOUNDED declaration and no registry entry.
// BOUNDS-EXPECT: flag kind=growth detail=FrameCache.frames_
#include "_prelude.h"

class FrameCache {
 public:
  void add(const Bytes& frame) { frames_.push_back(frame); }

 private:
  std::vector<Bytes> frames_;
};
