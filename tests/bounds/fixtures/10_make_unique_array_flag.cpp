// make_unique<T[]> with an untrusted element count is an allocation-sized
// call; the array form is what distinguishes it from single-object news.
// BOUNDS-EXPECT: flag kind=alloc detail=alloc:make_unique
#include "_prelude.h"

void handle(GLOBE_UNTRUSTED unsigned n) {
  auto buf = std::make_unique<char[]>(n);
  (void)buf;
}
