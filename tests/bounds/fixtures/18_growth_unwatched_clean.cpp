// A value type whose name matches no long-lived pattern, in a non-core
// subsystem: request-scoped accumulation is not unbounded state.
// BOUNDS-EXPECT: clean
#include "_prelude.h"

class PathBuilder {
 public:
  void push(const std::string& seg) { segments_.push_back(seg); }

 private:
  std::vector<std::string> segments_;
};
