// Declared bound + visible eviction: the ring pops its oldest entry past
// capacity, so the GLOBE_BOUNDED promise is enforced.
// BOUNDS-EXPECT: clean
// BOUNDS-CAPACITY: 128 test.EventRing.ring_
#include "_prelude.h"

class EventRing {
 public:
  void add(const Bytes& frame) {
    ring_.push_back(frame);
    while (ring_.size() > 128) ring_.pop_front();
  }

 private:
  std::deque<Bytes> ring_ GLOBE_BOUNDED;
};
