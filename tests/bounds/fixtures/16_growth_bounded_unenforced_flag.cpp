// GLOBE_BOUNDED with a non-zero registry capacity but no shrink or size
// check anywhere in the class: the declared bound is a fiction.
// BOUNDS-EXPECT: flag kind=growth-unenforced detail=SessionPool.live_
// BOUNDS-CAPACITY: 64 test.SessionPool.live_
#include "_prelude.h"

class SessionPool {
 public:
  void open(const Bytes& session) { live_.push_back(session); }

 private:
  std::vector<Bytes> live_ GLOBE_BOUNDED;
};
