// The untrusted size is laundered through a plain helper's return value;
// the fixpoint carries the source across the call.
// BOUNDS-EXPECT: flag kind=alloc detail=alloc:resize
#include "_prelude.h"

GLOBE_UNTRUSTED Bytes recv_payload();

unsigned frame_count() {
  Bytes wire = recv_payload();
  return wire.u32();
}

void decode() {
  std::vector<int> frames;
  frames.resize(frame_count());
}
