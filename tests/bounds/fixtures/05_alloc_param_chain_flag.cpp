// The allocation happens two hops below the taint: caller -> grow -> fill.
// The alloc-param summary propagates the sink up the call chain.
// BOUNDS-EXPECT: flag kind=alloc detail=alloc:resize
#include "_prelude.h"

void fill(std::vector<int>& out, unsigned n) {
  out.resize(n);
}

void grow(std::vector<int>& out, unsigned n) {
  fill(out, n);
}

void handle(GLOBE_UNTRUSTED unsigned n) {
  std::vector<int> items;
  grow(items, n);
}
