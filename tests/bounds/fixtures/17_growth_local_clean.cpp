// Growth into a function-local container is request-scoped, not long-lived
// state; only member containers are watched.
// BOUNDS-EXPECT: clean
#include "_prelude.h"

class ReplyServer {
 public:
  void handle(const Bytes& frame) {
    std::vector<Bytes> scratch;
    scratch.push_back(frame);
  }
};
