// Single-object make_unique forwards the value to a constructor; it does
// not size an allocation, however tainted the argument.
// BOUNDS-EXPECT: clean
#include "_prelude.h"

struct Widget {};

void handle(GLOBE_UNTRUSTED unsigned n) {
  auto w = std::make_unique<Widget>(n);
  (void)w;
}
