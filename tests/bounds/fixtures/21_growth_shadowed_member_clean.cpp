// The pushed-to name shadows a member: the local parameter, not the field,
// receives the growth.
// BOUNDS-EXPECT: clean
#include "_prelude.h"

class BatchServer {
 public:
  void handle(std::vector<Bytes> frames, const Bytes& extra) {
    frames.push_back(extra);
  }

 private:
  std::vector<Bytes> frames_;
};
