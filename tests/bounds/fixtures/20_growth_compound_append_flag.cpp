// `member += chunk` is growth too: compound append onto a string member of
// a long-lived framer-style class.
// BOUNDS-EXPECT: flag kind=growth detail=StreamCollector.buffer_
#include "_prelude.h"

class StreamCollector {
 public:
  void feed(const std::string& chunk) { buffer_ += chunk; }

 private:
  std::string buffer_;
};
