#include "rpc/rpc.hpp"

#include <gtest/gtest.h>

#include "net/simnet.hpp"
#include "obs/collector.hpp"

namespace globe::rpc {
namespace {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Result;

struct RpcFixture : ::testing::Test {
  void SetUp() override {
    host = net.add_host({"server", net::CpuModel{}});
    client_host = net.add_host({"client", net::CpuModel{}});
    dispatcher.register_method(kNamingService, 1,
                               [](net::ServerContext&, BytesView req) -> Result<Bytes> {
                                 Bytes out(req.begin(), req.end());
                                 out.push_back('A');
                                 return out;
                               });
    dispatcher.register_method(kNamingService, 2,
                               [](net::ServerContext&, BytesView) -> Result<Bytes> {
                                 return Result<Bytes>(ErrorCode::kNotFound, "nope");
                               });
    dispatcher.register_method(kLocationService, 1,
                               [](net::ServerContext&, BytesView req) -> Result<Bytes> {
                                 Bytes out(req.begin(), req.end());
                                 out.push_back('B');
                                 return out;
                               });
    ep = net::Endpoint{host, 42};
    net.bind(ep, dispatcher.handler());
    flow = net.open_flow(client_host);
  }

  net::SimNet net;
  net::HostId host, client_host;
  ServiceDispatcher dispatcher;
  net::Endpoint ep;
  std::unique_ptr<net::SimFlow> flow;
};

TEST_F(RpcFixture, RoutesByServiceAndMethod) {
  RpcClient client(*flow, ep);
  auto r1 = client.call(kNamingService, 1, util::to_bytes("x"));
  ASSERT_TRUE(r1.is_ok());
  EXPECT_EQ(util::to_string(*r1), "xA");
  auto r2 = client.call(kLocationService, 1, util::to_bytes("x"));
  ASSERT_TRUE(r2.is_ok());
  EXPECT_EQ(util::to_string(*r2), "xB");
}

TEST_F(RpcFixture, ErrorResultPropagates) {
  RpcClient client(*flow, ep);
  auto r = client.call(kNamingService, 2, Bytes{});
  EXPECT_EQ(r.code(), ErrorCode::kNotFound);
}

TEST_F(RpcFixture, UnknownMethodReturnsNotFound) {
  RpcClient client(*flow, ep);
  EXPECT_EQ(client.call(kNamingService, 99, Bytes{}).code(), ErrorCode::kNotFound);
  EXPECT_EQ(client.call(kGlobeDocAdmin, 1, Bytes{}).code(), ErrorCode::kNotFound);
}

TEST_F(RpcFixture, DuplicateRegistrationThrows) {
  EXPECT_THROW(dispatcher.register_method(
                   kNamingService, 1,
                   [](net::ServerContext&, BytesView) -> Result<Bytes> {
                     return Bytes{};
                   }),
               std::logic_error);
}

TEST_F(RpcFixture, TruncatedHeaderRejected) {
  // Raw 3-byte request cannot contain the 4-byte RPC header.
  auto r = flow->call(ep, Bytes{1, 2, 3});
  EXPECT_EQ(r.code(), ErrorCode::kProtocol);
}

TEST_F(RpcFixture, EmptyPayloadAllowed) {
  RpcClient client(*flow, ep);
  auto r = client.call(kNamingService, 1, Bytes{});
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(util::to_string(*r), "A");
}

// --- Distributed trace propagation over the request framing ----------------

struct TracedRpcFixture : RpcFixture {
  void SetUp() override {
    RpcFixture::SetUp();
    collector.set_policy({/*keep_slower_than=*/0, /*keep_one_in=*/1});
    dispatcher.set_trace_sink(&collector);
    dispatcher.set_trace_host("srv");
    // A method that captures the trace context in force on the server side.
    dispatcher.register_method(
        kGlobeDocAccess, 7,
        [this](net::ServerContext&, BytesView) -> Result<Bytes> {
          server_ctx = obs::current_trace_context();
          return Bytes{};
        });
  }

  obs::TraceCollector collector{16};
  obs::TraceContext server_ctx;
};

TEST_F(TracedRpcFixture, CallerContextPropagatesAndStitchesAsChild) {
  obs::Tracer tracer([this] { return flow->now(); });
  tracer.set_sink(&collector);
  tracer.set_host("client");

  RpcClient client(*flow, ep);
  std::uint64_t fetch_parent;
  {
    auto fetch = tracer.span("fetch");
    fetch_parent = obs::current_trace_context().parent_span;
    auto r = client.call(kGlobeDocAccess, 7, util::to_bytes("x"));
    ASSERT_TRUE(r.is_ok());
    // After the inline server span closed, the client's own context must be
    // back in force.
    EXPECT_EQ(obs::current_trace_context().parent_span, fetch_parent);
  }

  // The server-side handler ran INSIDE the caller's trace: same trace id,
  // but under the dispatcher's server span, not directly under "fetch".
  EXPECT_EQ(server_ctx.trace_hi, tracer.trace_hi());
  EXPECT_EQ(server_ctx.trace_lo, tracer.trace_lo());
  EXPECT_NE(server_ctx.parent_span, 0u);
  EXPECT_NE(server_ctx.parent_span, fetch_parent);

  // Stitched: one trace, the server fragment a child of the fetch root.
  EXPECT_EQ(collector.traces_seen(), 1u);
  auto trace = collector.find(tracer.trace_hi(), tracer.trace_lo());
  ASSERT_TRUE(trace.has_value());
  EXPECT_TRUE(trace->complete);
  EXPECT_EQ(trace->fragments, 2u);
  EXPECT_EQ(trace->root.name, "fetch");
  EXPECT_EQ(trace->root.host, "client");
  ASSERT_EQ(trace->root.children.size(), 1u);
  EXPECT_EQ(trace->root.children[0].name, "rpc:gd.access/7");
  EXPECT_EQ(trace->root.children[0].host, "srv");
  EXPECT_EQ(trace->root.children[0].span_id, server_ctx.parent_span);
}

TEST_F(TracedRpcFixture, UntracedCallsRecordNoServerSpans) {
  RpcClient client(*flow, ep);
  ASSERT_TRUE(client.call(kGlobeDocAccess, 7, Bytes{}).is_ok());
  EXPECT_FALSE(server_ctx.valid());
  EXPECT_EQ(collector.traces_seen(), 0u);
  EXPECT_EQ(collector.pending_fragments(), 0u);
}

TEST_F(TracedRpcFixture, UnsampledContextIsNotInjected) {
  obs::TraceContext unsampled;
  unsampled.trace_hi = 1;
  unsampled.trace_lo = 2;
  unsampled.parent_span = 3;
  unsampled.sampled = false;

  obs::Tracer tracer([this] { return flow->now(); });
  tracer.adopt(unsampled);
  auto span = tracer.span("fetch");
  std::uint64_t fetch_span = obs::current_trace_context().parent_span;
  RpcClient client(*flow, ep);
  ASSERT_TRUE(client.call(kGlobeDocAccess, 7, Bytes{}).is_ok());
  // SimNet runs the handler inline on the caller's thread, so it observes
  // the caller's own (unsampled) context — but the dispatcher must not have
  // opened a server child span, and nothing may reach the collector.
  EXPECT_FALSE(server_ctx.sampled);
  EXPECT_EQ(server_ctx.parent_span, fetch_span);
  span.end();
  EXPECT_EQ(collector.traces_seen(), 0u);
  EXPECT_EQ(collector.pending_fragments(), 0u);
}

TEST_F(TracedRpcFixture, UntaggedLegacyFramingStillDispatches) {
  // A peer that predates the trace header: plain u16 service, u16 method.
  util::Writer w;
  w.u16(kNamingService);
  w.u16(1);
  w.raw(util::to_bytes("y"));
  auto r = flow->call(ep, w.buffer());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(util::to_string(*r), "yA");
  EXPECT_EQ(collector.traces_seen(), 0u);
}

TEST_F(TracedRpcFixture, UnknownTraceHeaderVersionRejectedAsProtocolError) {
  // Marker present but a future version: the context length is defined per
  // version, so the dispatcher cannot know where the header ends and must
  // reject rather than mis-frame service/method out of the context bytes.
  obs::TraceContext ctx;
  ctx.trace_hi = 5;
  ctx.trace_lo = 6;
  ctx.parent_span = 7;
  util::Writer w;
  w.u16(kTraceMarker);
  w.u8(kTraceVersion + 1);
  ctx.encode(w);
  w.u16(kNamingService);
  w.u16(1);
  w.raw(util::to_bytes("z"));
  auto r = flow->call(ep, w.buffer());
  EXPECT_EQ(r.code(), util::ErrorCode::kProtocol);
  EXPECT_EQ(collector.traces_seen(), 0u);
  EXPECT_EQ(collector.pending_fragments(), 0u);
}

TEST_F(TracedRpcFixture, ShortLegacyFrameRejectedAsProtocolError) {
  // 2 bytes: a service id with no method.  Must come back as kProtocol from
  // the Reader's bounds check, never reach subspan() past the buffer end.
  util::Writer w;
  w.u16(kNamingService);
  auto r = flow->call(ep, w.buffer());
  EXPECT_EQ(r.code(), util::ErrorCode::kProtocol);
}

TEST_F(TracedRpcFixture, TraceHeaderWithoutMethodRejectedAsProtocolError) {
  // Full trace header + service id, but the method u16 is missing.
  obs::TraceContext ctx;
  ctx.trace_hi = 5;
  ctx.trace_lo = 6;
  ctx.parent_span = 7;
  ctx.sampled = true;
  util::Writer w;
  w.u16(kTraceMarker);
  w.u8(kTraceVersion);
  ctx.encode(w);
  w.u16(kNamingService);
  auto r = flow->call(ep, w.buffer());
  EXPECT_EQ(r.code(), util::ErrorCode::kProtocol);
}

TEST_F(TracedRpcFixture, TruncatedTraceHeaderRejectedAsProtocolError) {
  util::Writer w;
  w.u16(kTraceMarker);
  w.u8(kTraceVersion);
  // Header promises a TraceContext but delivers only 4 bytes of it.
  w.u32(0xdeadbeef);
  auto r = flow->call(ep, w.buffer());
  EXPECT_EQ(r.code(), util::ErrorCode::kProtocol);
}

}  // namespace
}  // namespace globe::rpc
