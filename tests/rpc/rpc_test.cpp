#include "rpc/rpc.hpp"

#include <gtest/gtest.h>

#include "net/simnet.hpp"

namespace globe::rpc {
namespace {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Result;

struct RpcFixture : ::testing::Test {
  void SetUp() override {
    host = net.add_host({"server", net::CpuModel{}});
    client_host = net.add_host({"client", net::CpuModel{}});
    dispatcher.register_method(kNamingService, 1,
                               [](net::ServerContext&, BytesView req) -> Result<Bytes> {
                                 Bytes out(req.begin(), req.end());
                                 out.push_back('A');
                                 return out;
                               });
    dispatcher.register_method(kNamingService, 2,
                               [](net::ServerContext&, BytesView) -> Result<Bytes> {
                                 return Result<Bytes>(ErrorCode::kNotFound, "nope");
                               });
    dispatcher.register_method(kLocationService, 1,
                               [](net::ServerContext&, BytesView req) -> Result<Bytes> {
                                 Bytes out(req.begin(), req.end());
                                 out.push_back('B');
                                 return out;
                               });
    ep = net::Endpoint{host, 42};
    net.bind(ep, dispatcher.handler());
    flow = net.open_flow(client_host);
  }

  net::SimNet net;
  net::HostId host, client_host;
  ServiceDispatcher dispatcher;
  net::Endpoint ep;
  std::unique_ptr<net::SimFlow> flow;
};

TEST_F(RpcFixture, RoutesByServiceAndMethod) {
  RpcClient client(*flow, ep);
  auto r1 = client.call(kNamingService, 1, util::to_bytes("x"));
  ASSERT_TRUE(r1.is_ok());
  EXPECT_EQ(util::to_string(*r1), "xA");
  auto r2 = client.call(kLocationService, 1, util::to_bytes("x"));
  ASSERT_TRUE(r2.is_ok());
  EXPECT_EQ(util::to_string(*r2), "xB");
}

TEST_F(RpcFixture, ErrorResultPropagates) {
  RpcClient client(*flow, ep);
  auto r = client.call(kNamingService, 2, Bytes{});
  EXPECT_EQ(r.code(), ErrorCode::kNotFound);
}

TEST_F(RpcFixture, UnknownMethodReturnsNotFound) {
  RpcClient client(*flow, ep);
  EXPECT_EQ(client.call(kNamingService, 99, Bytes{}).code(), ErrorCode::kNotFound);
  EXPECT_EQ(client.call(kGlobeDocAdmin, 1, Bytes{}).code(), ErrorCode::kNotFound);
}

TEST_F(RpcFixture, DuplicateRegistrationThrows) {
  EXPECT_THROW(dispatcher.register_method(
                   kNamingService, 1,
                   [](net::ServerContext&, BytesView) -> Result<Bytes> {
                     return Bytes{};
                   }),
               std::logic_error);
}

TEST_F(RpcFixture, TruncatedHeaderRejected) {
  // Raw 3-byte request cannot contain the 4-byte RPC header.
  auto r = flow->call(ep, Bytes{1, 2, 3});
  EXPECT_EQ(r.code(), ErrorCode::kProtocol);
}

TEST_F(RpcFixture, EmptyPayloadAllowed) {
  RpcClient client(*flow, ep);
  auto r = client.call(kNamingService, 1, Bytes{});
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(util::to_string(*r), "A");
}

}  // namespace
}  // namespace globe::rpc
