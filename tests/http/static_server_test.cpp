#include "http/static_server.hpp"

#include <gtest/gtest.h>

#include "http/client.hpp"
#include "net/simnet.hpp"

namespace globe::http {
namespace {

using util::Bytes;
using util::to_bytes;

HttpRequest get_req(const std::string& path) {
  HttpRequest req;
  req.method = "GET";
  req.target = path;
  return req;
}

TEST(StaticServerTest, ServesStoredFile) {
  StaticHttpServer server;
  server.put_file("/index.html", to_bytes("<html>hi</html>"));
  auto resp = server.handle(get_req("/index.html"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(util::to_string(resp.body), "<html>hi</html>");
  EXPECT_EQ(resp.headers.get("Content-Type"), "text/html");
  EXPECT_TRUE(resp.headers.has("ETag"));
  EXPECT_TRUE(resp.headers.has("Server"));
}

TEST(StaticServerTest, MissingFileIs404) {
  StaticHttpServer server;
  EXPECT_EQ(server.handle(get_req("/nope")).status, 404);
}

TEST(StaticServerTest, NonGetRejected405) {
  StaticHttpServer server;
  server.put_file("/x", to_bytes("data"));
  HttpRequest post = get_req("/x");
  post.method = "POST";
  auto resp = server.handle(post);
  EXPECT_EQ(resp.status, 405);
  EXPECT_EQ(resp.headers.get("Allow"), "GET, HEAD");
}

TEST(StaticServerTest, HeadOmitsBody) {
  StaticHttpServer server;
  server.put_file("/big.txt", Bytes(1000, 'x'));
  HttpRequest head = get_req("/big.txt");
  head.method = "HEAD";
  auto resp = server.handle(head);
  EXPECT_EQ(resp.status, 200);
  EXPECT_TRUE(resp.body.empty());
  EXPECT_EQ(resp.headers.get("Content-Length"), "1000");
}

TEST(StaticServerTest, QueryStringStripped) {
  StaticHttpServer server;
  server.put_file("/page.html", to_bytes("content"));
  EXPECT_EQ(server.handle(get_req("/page.html?v=2")).status, 200);
}

TEST(StaticServerTest, EtagConditionalGet304) {
  StaticHttpServer server;
  server.put_file("/a.txt", to_bytes("cacheable"));
  auto first = server.handle(get_req("/a.txt"));
  std::string etag = *first.headers.get("ETag");

  HttpRequest conditional = get_req("/a.txt");
  conditional.headers.set("If-None-Match", etag);
  auto second = server.handle(conditional);
  EXPECT_EQ(second.status, 304);
  EXPECT_TRUE(second.body.empty());

  // Changed content invalidates the tag.
  server.put_file("/a.txt", to_bytes("new content"));
  auto third = server.handle(conditional);
  EXPECT_EQ(third.status, 200);
}

TEST(StaticServerTest, PutRemoveLifecycle) {
  StaticHttpServer server;
  EXPECT_EQ(server.file_count(), 0u);
  server.put_file("/f1", to_bytes("a"));
  server.put_file("/f2", to_bytes("b"));
  EXPECT_EQ(server.file_count(), 2u);
  EXPECT_TRUE(server.has_file("/f1"));
  server.remove_file("/f1");
  EXPECT_FALSE(server.has_file("/f1"));
  EXPECT_EQ(server.handle(get_req("/f1")).status, 404);
  EXPECT_THROW(server.put_file("no-slash", to_bytes("x")), std::invalid_argument);
}

TEST(StaticServerTest, EndToEndOverSimNet) {
  net::SimNet net;
  auto server_host = net.add_host({"server", net::CpuModel{}});
  auto client_host = net.add_host({"client", net::CpuModel{}});
  net.set_link(server_host, client_host, {util::millis(5), 1e6});

  StaticHttpServer server;
  server.put_file("/story/photo.jpg", Bytes(10000, 0x7f));
  net::Endpoint ep{server_host, 80};
  net.bind(ep, server.handler());

  auto flow = net.open_flow(client_host);
  HttpClient client(*flow);
  auto resp = client.get(ep, "/story/photo.jpg");
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body.size(), 10000u);
  EXPECT_EQ(resp->headers.get("Content-Type"), "image/jpeg");
  EXPECT_GT(flow->now(), util::millis(20));  // connection + request + 10KB transfer
}

TEST(StaticServerTest, MalformedRequestGets400OverWire) {
  net::SimNet net;
  auto host = net.add_host({"server", net::CpuModel{}});
  StaticHttpServer server;
  net::Endpoint ep{host, 80};
  net.bind(ep, server.handler());

  auto flow = net.open_flow(host);
  auto raw = flow->call(ep, to_bytes("NONSENSE"));
  ASSERT_TRUE(raw.is_ok());
  auto resp = parse_response(*raw);
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp->status, 400);
}

}  // namespace
}  // namespace globe::http
