#include "http/secure_channel.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "http/client.hpp"
#include "http/static_server.hpp"
#include "net/simnet.hpp"
#include "util/serial.hpp"

namespace globe::http {
namespace {

using util::Bytes;
using util::ErrorCode;
using util::to_bytes;

const crypto::RsaKeyPair& server_identity() {
  static const crypto::RsaKeyPair kp = [] {
    auto rng = crypto::HmacDrbg::from_seed(777);
    return crypto::rsa_generate(1024, rng);
  }();
  return kp;
}

struct SecureFixture : ::testing::Test {
  void SetUp() override {
    server_host = net.add_host({"server", net::CpuModel{}});
    client_host = net.add_host({"client", net::CpuModel{}});
    net.set_link(server_host, client_host, {util::millis(5), 1e6});

    files.put_file("/secret.html", to_bytes("<html>classified</html>"));
    secure = std::make_unique<SecureServer>(server_identity(), "www.example.org",
                                            files.handler(), 99);
    ep = net::Endpoint{server_host, 443};
    net.bind(ep, secure->handler());
    flow = net.open_flow(client_host);
  }

  net::SimNet net;
  net::HostId server_host, client_host;
  StaticHttpServer files;
  std::unique_ptr<SecureServer> secure;
  net::Endpoint ep;
  std::unique_ptr<net::SimFlow> flow;
};

TEST_F(SecureFixture, HandshakeAndGet) {
  SecureHttpClient client(*flow, "www.example.org", 1);
  auto resp = client.get(ep, "/secret.html");
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(util::to_string(resp->body), "<html>classified</html>");
  EXPECT_EQ(client.handshakes_performed(), 1u);
  EXPECT_EQ(secure->handshakes(), 1u);
}

TEST_F(SecureFixture, SessionReusedAcrossRequests) {
  SecureHttpClient client(*flow, "www.example.org", 2);
  for (int i = 0; i < 5; ++i) {
    auto resp = client.get(ep, "/secret.html");
    ASSERT_TRUE(resp.is_ok());
  }
  EXPECT_EQ(client.handshakes_performed(), 1u);
}

TEST_F(SecureFixture, ResetSessionsForcesRehandshake) {
  SecureHttpClient client(*flow, "www.example.org", 3);
  ASSERT_TRUE(client.get(ep, "/secret.html").is_ok());
  client.reset_sessions();
  ASSERT_TRUE(client.get(ep, "/secret.html").is_ok());
  EXPECT_EQ(client.handshakes_performed(), 2u);
  EXPECT_EQ(secure->handshakes(), 2u);
}

TEST_F(SecureFixture, WrongExpectedNameRejected) {
  SecureHttpClient client(*flow, "www.evil.example", 4);
  auto resp = client.get(ep, "/secret.html");
  EXPECT_FALSE(resp.is_ok());
  EXPECT_EQ(resp.code(), ErrorCode::kUntrustedIssuer);
}

TEST_F(SecureFixture, MissingFileStill200Path404Body) {
  SecureHttpClient client(*flow, "www.example.org", 5);
  auto resp = client.get(ep, "/nope.html");
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp->status, 404);
}

TEST_F(SecureFixture, HttpsSlowerThanHttpForSameContent) {
  // Same file served plain on another port.
  net::Endpoint plain_ep{server_host, 80};
  net.bind(plain_ep, files.handler());

  auto plain_flow = net.open_flow(client_host);
  HttpClient plain(*plain_flow);
  ASSERT_TRUE(plain.get(plain_ep, "/secret.html").is_ok());

  auto tls_flow = net.open_flow(client_host);
  SecureHttpClient tls(*tls_flow, "www.example.org", 6);
  ASSERT_TRUE(tls.get(ep, "/secret.html").is_ok());

  // HTTPS pays 2 extra round trips + RSA ops (server private-key decrypt).
  EXPECT_GT(tls_flow->now(), plain_flow->now() + net::CpuModel{}.rsa_decrypt);
}

TEST_F(SecureFixture, GarbageRecordRejected) {
  auto r = flow->call(ep, to_bytes("\x09garbage"));
  EXPECT_FALSE(r.is_ok());
}

TEST_F(SecureFixture, DataOnUnknownSessionRejected) {
  util::Writer w;
  w.u8(3);  // data record
  w.u64(424242);
  w.bytes(Bytes(12, 0));
  w.bytes(Bytes(16, 0));
  w.bytes(Bytes(20, 0));
  auto r = flow->call(ep, w.buffer());
  EXPECT_EQ(r.code(), ErrorCode::kNotFound);
}

TEST(CertificateTest, MakeAndVerifyRoundTrip) {
  Bytes cert = make_certificate("host.test", server_identity());
  auto pub = verify_certificate(cert, "host.test");
  ASSERT_TRUE(pub.is_ok());
  EXPECT_EQ(*pub, server_identity().pub);
}

TEST(CertificateTest, NameMismatchRejected) {
  Bytes cert = make_certificate("host.test", server_identity());
  EXPECT_EQ(verify_certificate(cert, "other.test").code(),
            ErrorCode::kUntrustedIssuer);
}

TEST(CertificateTest, TamperedCertificateRejected) {
  Bytes cert = make_certificate("host.test", server_identity());
  // Flip a bit inside the signed body.
  cert[10] ^= 0x01;
  auto r = verify_certificate(cert, "host.test");
  EXPECT_FALSE(r.is_ok());
}

TEST(CertificateTest, GarbageRejected) {
  EXPECT_FALSE(verify_certificate(to_bytes("junk"), "x").is_ok());
  EXPECT_FALSE(verify_certificate(Bytes{}, "x").is_ok());
}

}  // namespace
}  // namespace globe::http
