#include "http/message.hpp"

#include <gtest/gtest.h>

namespace globe::http {
namespace {

TEST(HeadersTest, CaseInsensitiveLookup) {
  Headers h;
  h.set("Content-Type", "text/html");
  EXPECT_EQ(h.get("content-type"), "text/html");
  EXPECT_EQ(h.get("CONTENT-TYPE"), "text/html");
  EXPECT_FALSE(h.get("Content-Length").has_value());
}

TEST(HeadersTest, SetOverwritesAddAppends) {
  Headers h;
  h.set("X-A", "1");
  h.set("x-a", "2");
  EXPECT_EQ(h.all().size(), 1u);
  EXPECT_EQ(h.get("X-A"), "2");
  h.add("X-A", "3");
  EXPECT_EQ(h.all().size(), 2u);
  EXPECT_EQ(h.get("X-A"), "2");  // first match wins
}

TEST(RequestTest, SerializeBasicGet) {
  HttpRequest req;
  req.method = "GET";
  req.target = "/index.html";
  req.headers.set("Host", "example.org");
  std::string wire = util::to_string(req.serialize());
  EXPECT_EQ(wire.substr(0, wire.find("\r\n")), "GET /index.html HTTP/1.1");
  EXPECT_NE(wire.find("Host: example.org\r\n"), std::string::npos);
  EXPECT_TRUE(wire.ends_with("\r\n\r\n"));
}

TEST(RequestTest, SerializeAddsContentLengthForBody) {
  HttpRequest req;
  req.method = "POST";
  req.body = util::to_bytes("hello");
  std::string wire = util::to_string(req.serialize());
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_TRUE(wire.ends_with("\r\n\r\nhello"));
}

TEST(ResponseTest, MakeSetsHeaders) {
  auto resp = HttpResponse::make(404, "Not Found", util::to_bytes("gone"),
                                 "text/plain");
  EXPECT_EQ(resp.status, 404);
  EXPECT_EQ(resp.headers.get("Content-Length"), "4");
  EXPECT_EQ(resp.headers.get("Content-Type"), "text/plain");
  std::string wire = util::to_string(resp.serialize());
  EXPECT_EQ(wire.substr(0, wire.find("\r\n")), "HTTP/1.1 404 Not Found");
}

TEST(ReasonTest, KnownAndUnknownCodes) {
  EXPECT_EQ(reason_for_status(200), "OK");
  EXPECT_EQ(reason_for_status(404), "Not Found");
  EXPECT_EQ(reason_for_status(304), "Not Modified");
  EXPECT_EQ(reason_for_status(299), "Unknown");
}

TEST(ContentTypeTest, CommonSuffixes) {
  EXPECT_EQ(guess_content_type("/a/b/index.html"), "text/html");
  EXPECT_EQ(guess_content_type("/story.txt"), "text/plain");
  EXPECT_EQ(guess_content_type("/img/logo.gif"), "image/gif");
  EXPECT_EQ(guess_content_type("/photo.jpeg"), "image/jpeg");
  EXPECT_EQ(guess_content_type("/applet.class"), "application/java");
  EXPECT_EQ(guess_content_type("/mystery.bin"), "application/octet-stream");
  EXPECT_EQ(guess_content_type("noext"), "application/octet-stream");
}

}  // namespace
}  // namespace globe::http
