#include "http/parser.hpp"

#include <gtest/gtest.h>

namespace globe::http {
namespace {

using util::Bytes;
using util::ErrorCode;
using util::to_bytes;

TEST(ParseRequestTest, BasicGet) {
  auto r = parse_request(to_bytes("GET /doc/a.html HTTP/1.1\r\nHost: x\r\n\r\n"));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->method, "GET");
  EXPECT_EQ(r->target, "/doc/a.html");
  EXPECT_EQ(r->version, "HTTP/1.1");
  EXPECT_EQ(r->headers.get("Host"), "x");
  EXPECT_TRUE(r->body.empty());
}

TEST(ParseRequestTest, BodyWithContentLength) {
  auto r = parse_request(
      to_bytes("POST /u HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloEXTRA"));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(util::to_string(r->body), "hello");  // extra bytes ignored
}

TEST(ParseRequestTest, RoundTripThroughSerialize) {
  HttpRequest req;
  req.method = "PUT";
  req.target = "/x/y?q=1";
  req.headers.set("X-Custom", "value with spaces");
  req.body = to_bytes("payload");
  auto parsed = parse_request(req.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->method, "PUT");
  EXPECT_EQ(parsed->target, "/x/y?q=1");
  EXPECT_EQ(parsed->headers.get("X-Custom"), "value with spaces");
  EXPECT_EQ(parsed->body, req.body);
}

TEST(ParseRequestTest, HeaderValueTrimmed) {
  auto r = parse_request(to_bytes("GET / HTTP/1.1\r\nH:   padded value  \r\n\r\n"));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->headers.get("H"), "padded value");
}

TEST(ParseRequestTest, MalformedInputsRejected) {
  for (const char* bad : {
           "",                                     // empty
           "GET / HTTP/1.1",                       // no terminator
           "GET / HTTP/1.1\r\n\r",                 // partial terminator
           "GET/HTTP/1.1\r\n\r\n",                 // no spaces
           "GET / FTP/1.0\r\n\r\n",                // not HTTP
           "GE T / HTTP/1.1\r\n\r\n",              // bad method chars? (extra sp)
           "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",  // bad header
           "GET / HTTP/1.1\r\n: novalue\r\n\r\n",  // empty header name
           "GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n",  // bad CL
           "GET / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort",  // truncated
       }) {
    EXPECT_FALSE(parse_request(to_bytes(bad)).is_ok()) << bad;
  }
}

TEST(ParseResponseTest, Basic) {
  auto r = parse_response(
      to_bytes("HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nabc"));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->status, 200);
  EXPECT_EQ(r->reason, "OK");
  EXPECT_EQ(util::to_string(r->body), "abc");
}

TEST(ParseResponseTest, MultiWordReason) {
  auto r = parse_response(to_bytes("HTTP/1.1 404 Not Found\r\n\r\n"));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->status, 404);
  EXPECT_EQ(r->reason, "Not Found");
}

TEST(ParseResponseTest, BadStatusRejected) {
  EXPECT_FALSE(parse_response(to_bytes("HTTP/1.1 abc OK\r\n\r\n")).is_ok());
  EXPECT_FALSE(parse_response(to_bytes("HTTP/1.1 42 Tiny\r\n\r\n")).is_ok());
  EXPECT_FALSE(parse_response(to_bytes("ICY 200 OK\r\n\r\n")).is_ok());
}

TEST(ParseResponseTest, ChunkedBodyDecoded) {
  auto r = parse_response(to_bytes(
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n"));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(util::to_string(r->body), "hello world");
}

TEST(ParseResponseTest, ChunkedWithExtensionAndBadChunksRejected) {
  auto ok = parse_response(to_bytes(
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5;ext=1\r\nhello\r\n0\r\n\r\n"));
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(util::to_string(ok->body), "hello");

  EXPECT_FALSE(parse_response(to_bytes(
                   "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
                   "ZZ\r\nhello\r\n0\r\n\r\n"))
                   .is_ok());
  EXPECT_FALSE(parse_response(to_bytes(
                   "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
                   "5\r\nhel"))
                   .is_ok());
}

TEST(FramerTest, SingleMessageInOneFeed) {
  MessageFramer f;
  ASSERT_TRUE(f.feed(to_bytes("GET / HTTP/1.1\r\n\r\n")).is_ok());
  ASSERT_TRUE(f.has_message());
  EXPECT_EQ(util::to_string(f.take_message()), "GET / HTTP/1.1\r\n\r\n");
  EXPECT_FALSE(f.has_message());
}

TEST(FramerTest, ByteAtATime) {
  std::string msg = "HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nbody";
  MessageFramer f;
  for (char c : msg) {
    Bytes one{static_cast<std::uint8_t>(c)};
    ASSERT_TRUE(f.feed(one).is_ok());
  }
  ASSERT_TRUE(f.has_message());
  EXPECT_EQ(util::to_string(f.take_message()), msg);
}

TEST(FramerTest, PipelinedMessagesSplitCorrectly) {
  std::string m1 = "GET /a HTTP/1.1\r\n\r\n";
  std::string m2 = "POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
  MessageFramer f;
  ASSERT_TRUE(f.feed(to_bytes(m1 + m2)).is_ok());
  ASSERT_TRUE(f.has_message());
  EXPECT_EQ(util::to_string(f.take_message()), m1);
  ASSERT_TRUE(f.has_message());
  EXPECT_EQ(util::to_string(f.take_message()), m2);
}

TEST(FramerTest, ChunkedMessageFramed) {
  std::string msg =
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\n0\r\n\r\n";
  MessageFramer f;
  ASSERT_TRUE(f.feed(to_bytes(msg.substr(0, 50))).is_ok());
  EXPECT_FALSE(f.has_message());
  ASSERT_TRUE(f.feed(to_bytes(msg.substr(50))).is_ok());
  ASSERT_TRUE(f.has_message());
  EXPECT_EQ(util::to_string(f.take_message()), msg);
}

TEST(FramerTest, OversizedMessageRejected) {
  MessageFramer f;
  f.set_max_message(100);
  EXPECT_FALSE(f.feed(Bytes(101, 'x')).is_ok());
}

TEST(FramerTest, OversizedDeclaredBodyRejected) {
  MessageFramer f;
  f.set_max_message(100);
  auto s = f.feed(to_bytes("GET / HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n"));
  EXPECT_FALSE(s.is_ok());
}

TEST(FramerTest, TakeWithoutMessageThrows) {
  MessageFramer f;
  EXPECT_THROW(f.take_message(), std::logic_error);
}


TEST(ParseResponseTest, HugeChunkSizeOverflowRejected) {
  // A chunk size near SIZE_MAX must not wrap the bounds arithmetic into an
  // out-of-range read (code-review regression).
  auto r = parse_response(to_bytes(
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "fffffffffffffff0\r\nhello\r\n0\r\n\r\n"));
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), ErrorCode::kProtocol);
}

TEST(FramerTest, HugeChunkSizeTerminates) {
  // The framer must reject (not spin on) a wrapped chunk position.
  MessageFramer f;
  auto s = f.feed(to_bytes(
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "ffffffffffffff00\r\njunk"));
  EXPECT_FALSE(s.is_ok());
}

TEST(FramerTest, ChunkBeyondLimitRejected) {
  MessageFramer f;
  f.set_max_message(1024);
  auto s = f.feed(to_bytes(
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "10000\r\n"));  // 64 KiB chunk vs 1 KiB limit
  EXPECT_FALSE(s.is_ok());
}

}  // namespace
}  // namespace globe::http
