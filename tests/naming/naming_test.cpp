#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "naming/records.hpp"
#include "naming/resolver.hpp"
#include "naming/service.hpp"
#include "net/simnet.hpp"

namespace globe::naming {
namespace {

using util::Bytes;
using util::ErrorCode;
using util::to_bytes;

crypto::RsaKeyPair make_key(std::uint64_t seed) {
  auto rng = crypto::HmacDrbg::from_seed(seed);
  return crypto::rsa_generate(512, rng);
}

Bytes fake_oid(std::uint8_t fill) { return Bytes(kOidSize, fill); }

TEST(NameInZoneTest, Matching) {
  EXPECT_TRUE(name_in_zone("news.vu.nl", ""));
  EXPECT_TRUE(name_in_zone("news.vu.nl", "nl"));
  EXPECT_TRUE(name_in_zone("news.vu.nl", "vu.nl"));
  EXPECT_TRUE(name_in_zone("vu.nl", "vu.nl"));
  EXPECT_FALSE(name_in_zone("news.vu.nl", "u.nl"));  // partial label
  EXPECT_FALSE(name_in_zone("news.vu.nl", "org"));
  EXPECT_FALSE(name_in_zone("nl", "vu.nl"));
}

TEST(RecordsTest, OidRecordRoundTrip) {
  OidRecord rec;
  rec.name = "doc.vu.nl";
  rec.oid = fake_oid(7);
  rec.expires = util::seconds(3600);
  auto parsed = OidRecord::parse(rec.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->name, rec.name);
  EXPECT_EQ(parsed->oid, rec.oid);
  EXPECT_EQ(parsed->expires, rec.expires);
}

TEST(RecordsTest, OidRecordRejectsBadOidSize) {
  OidRecord rec;
  rec.name = "x";
  rec.oid = Bytes(19, 0);
  EXPECT_FALSE(OidRecord::parse(rec.serialize()).is_ok());
}

TEST(RecordsTest, DelegationRoundTrip) {
  DelegationRecord rec;
  rec.zone = "vu.nl";
  rec.child_public_key = to_bytes("keybytes");
  rec.name_server = net::Endpoint{net::HostId{3}, 53};
  rec.expires = 12345;
  auto parsed = DelegationRecord::parse(rec.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->zone, "vu.nl");
  EXPECT_EQ(parsed->name_server, rec.name_server);
}

TEST(RecordsTest, CrossTypeParseRejected) {
  OidRecord oid_rec;
  oid_rec.name = "a";
  oid_rec.oid = fake_oid(1);
  EXPECT_FALSE(DelegationRecord::parse(oid_rec.serialize()).is_ok());
  EXPECT_FALSE(OidRecord::parse(to_bytes("junk")).is_ok());
}

TEST(ZoneAuthorityTest, AddAndLookup) {
  ZoneAuthority zone("vu.nl", make_key(1));
  zone.add_oid("doc.vu.nl", fake_oid(1), 1000);
  auto reply = zone.lookup("doc.vu.nl");
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(reply->kind, NamingReply::Kind::kAnswer);
  // The signature must verify under the zone key.
  EXPECT_TRUE(crypto::rsa_verify_sha256(zone.public_key(), reply->blob.record,
                                        reply->blob.signature));
}

TEST(ZoneAuthorityTest, RejectsNamesOutsideZone) {
  ZoneAuthority zone("vu.nl", make_key(2));
  EXPECT_THROW(zone.add_oid("other.org", fake_oid(1), 1000), std::invalid_argument);
  EXPECT_THROW(zone.add_oid("x", Bytes(5, 0), 1000), std::invalid_argument);
}

TEST(ZoneAuthorityTest, UnknownNameNotFound) {
  ZoneAuthority zone("vu.nl", make_key(3));
  EXPECT_EQ(zone.lookup("nope.vu.nl").code(), ErrorCode::kNotFound);
  EXPECT_EQ(zone.lookup("outside.org").code(), ErrorCode::kNotFound);
}

TEST(ZoneAuthorityTest, RemoveName) {
  ZoneAuthority zone("vu.nl", make_key(4));
  zone.add_oid("doc.vu.nl", fake_oid(1), 1000);
  zone.remove_name("doc.vu.nl");
  EXPECT_EQ(zone.lookup("doc.vu.nl").code(), ErrorCode::kNotFound);
}

TEST(ZoneAuthorityTest, ReferralForDelegatedSuffix) {
  ZoneAuthority root("", make_key(5));
  auto child_key = make_key(6);
  root.delegate("vu.nl", child_key.pub, net::Endpoint{net::HostId{1}, 53}, 1000);
  auto reply = root.lookup("doc.vu.nl");
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(reply->kind, NamingReply::Kind::kReferral);
  auto del = DelegationRecord::parse(reply->blob.record);
  ASSERT_TRUE(del.is_ok());
  EXPECT_EQ(del->zone, "vu.nl");
}

TEST(ZoneAuthorityTest, LongestDelegationWins) {
  ZoneAuthority root("", make_key(7));
  root.delegate("nl", make_key(8).pub, net::Endpoint{net::HostId{1}, 53}, 1000);
  root.delegate("vu.nl", make_key(9).pub, net::Endpoint{net::HostId{2}, 53}, 1000);
  auto reply = root.lookup("doc.vu.nl");
  ASSERT_TRUE(reply.is_ok());
  auto del = DelegationRecord::parse(reply->blob.record);
  ASSERT_TRUE(del.is_ok());
  EXPECT_EQ(del->zone, "vu.nl");
}

TEST(ZoneAuthorityTest, SelfDelegationRejected) {
  ZoneAuthority zone("vu.nl", make_key(10));
  EXPECT_THROW(
      zone.delegate("vu.nl", make_key(11).pub, net::Endpoint{net::HostId{0}, 1}, 1),
      std::invalid_argument);
}

// --- End-to-end resolution over the simulated network -----------------

struct ResolverFixture : ::testing::Test {
  void SetUp() override {
    ns_host = net.add_host({"nameserver", net::CpuModel{}});
    client_host = net.add_host({"client", net::CpuModel{}});
    net.set_link(ns_host, client_host, {util::millis(2), 1e6});

    root_key = make_key(100);
    nl_key = make_key(101);
    vu_key = make_key(102);

    root = std::make_shared<ZoneAuthority>("", root_key);
    nl = std::make_shared<ZoneAuthority>("nl", nl_key);
    vu = std::make_shared<ZoneAuthority>("vu.nl", vu_key);

    root_ep = net::Endpoint{ns_host, 53};
    nl_ep = net::Endpoint{ns_host, 54};
    vu_ep = net::Endpoint{ns_host, 55};

    root->delegate("nl", nl_key.pub, nl_ep, util::seconds(1000));
    nl->delegate("vu.nl", vu_key.pub, vu_ep, util::seconds(1000));
    vu->add_oid("doc.vu.nl", fake_oid(0xAB), util::seconds(1000));

    bind_zone(root, root_ep, root_dispatcher, root_server);
    bind_zone(nl, nl_ep, nl_dispatcher, nl_server);
    bind_zone(vu, vu_ep, vu_dispatcher, vu_server);

    flow = net.open_flow(client_host);
  }

  void bind_zone(std::shared_ptr<ZoneAuthority> zone, net::Endpoint ep,
                 rpc::ServiceDispatcher& dispatcher, NamingServer& server) {
    server.add_zone(std::move(zone));
    server.register_with(dispatcher);
    net.bind(ep, dispatcher.handler());
  }

  net::SimNet net;
  net::HostId ns_host, client_host;
  crypto::RsaKeyPair root_key, nl_key, vu_key;
  std::shared_ptr<ZoneAuthority> root, nl, vu;
  net::Endpoint root_ep, nl_ep, vu_ep;
  rpc::ServiceDispatcher root_dispatcher, nl_dispatcher, vu_dispatcher;
  NamingServer root_server, nl_server, vu_server;
  std::unique_ptr<net::SimFlow> flow;
};

TEST_F(ResolverFixture, ResolvesThroughDelegationChain) {
  SecureResolver resolver(*flow, root_ep, root_key.pub);
  auto oid = resolver.resolve("doc.vu.nl");
  ASSERT_TRUE(oid.is_ok()) << oid.status().to_string();
  EXPECT_EQ(*oid, fake_oid(0xAB));
  EXPECT_EQ(resolver.signatures_verified(), 3u);  // root, nl, vu.nl
}

TEST_F(ResolverFixture, DirectAnswerFromRootZone) {
  root->add_oid("tld-doc", fake_oid(0x11), util::seconds(1000));
  SecureResolver resolver(*flow, root_ep, root_key.pub);
  auto oid = resolver.resolve("tld-doc");
  ASSERT_TRUE(oid.is_ok());
  EXPECT_EQ(*oid, fake_oid(0x11));
  EXPECT_EQ(resolver.signatures_verified(), 1u);
}

TEST_F(ResolverFixture, UnknownNameNotFound) {
  SecureResolver resolver(*flow, root_ep, root_key.pub);
  EXPECT_EQ(resolver.resolve("ghost.vu.nl").code(), ErrorCode::kNotFound);
  EXPECT_EQ(resolver.resolve("unknown.org").code(), ErrorCode::kNotFound);
}

TEST_F(ResolverFixture, WrongTrustAnchorRejectsEverything) {
  SecureResolver resolver(*flow, root_ep, make_key(999).pub);
  EXPECT_EQ(resolver.resolve("doc.vu.nl").code(), ErrorCode::kBadSignature);
}

TEST_F(ResolverFixture, ExpiredRecordRejected) {
  vu->add_oid("stale.vu.nl", fake_oid(0x22), util::millis(1));
  flow->advance(util::seconds(10));  // well past the record's expiry
  SecureResolver resolver(*flow, root_ep, root_key.pub);
  EXPECT_EQ(resolver.resolve("stale.vu.nl").code(), ErrorCode::kExpired);
}

TEST_F(ResolverFixture, TamperedRecordDetected) {
  // A man in the middle who flips one bit of the (signed) answer.
  net::Endpoint evil_ep{ns_host, 66};
  auto inner = root_dispatcher.handler();
  net.bind(evil_ep, [inner](net::ServerContext& ctx,
                            util::BytesView req) -> util::Result<Bytes> {
    auto resp = inner(ctx, req);
    if (resp.is_ok() && !resp->empty()) {
      (*resp)[resp->size() / 2] ^= 0x01;
    }
    return resp;
  });
  SecureResolver resolver(*flow, evil_ep, root_key.pub);
  auto r = resolver.resolve("doc.vu.nl");
  EXPECT_FALSE(r.is_ok());
  // Depending on which byte flips, parsing or verification fails; either
  // way it must not produce a wrong OID silently.
}

TEST_F(ResolverFixture, SubstitutedAnswerDetectedAsWrongName) {
  // A malicious server replays a *correctly signed* record for a different
  // name (consistency attack).
  vu->add_oid("other.vu.nl", fake_oid(0xCC), util::seconds(1000));
  net::Endpoint evil_ep{ns_host, 67};
  auto& vu_zone = *vu;
  net.bind(evil_ep, [&vu_zone](net::ServerContext&,
                               util::BytesView) -> util::Result<Bytes> {
    auto reply = vu_zone.lookup("other.vu.nl");
    return reply->serialize();
  });

  SecureResolver resolver(*flow, evil_ep, vu_key.pub);
  EXPECT_EQ(resolver.resolve("doc.vu.nl").code(), ErrorCode::kWrongElement);
}

TEST_F(ResolverFixture, CachingSkipsNetworkUntilExpiry) {
  SecureResolver resolver(*flow, root_ep, root_key.pub);
  resolver.set_cache_enabled(true);
  ASSERT_TRUE(resolver.resolve("doc.vu.nl").is_ok());
  EXPECT_EQ(resolver.cache_size(), 1u);
  util::SimTime t1 = flow->now();
  ASSERT_TRUE(resolver.resolve("doc.vu.nl").is_ok());
  EXPECT_EQ(flow->now(), t1);  // served from cache, zero time
  EXPECT_EQ(resolver.signatures_verified(), 3u);

  // After expiry the resolver must go back to the network.
  flow->advance(util::seconds(2000));
  EXPECT_EQ(resolver.resolve("doc.vu.nl").code(), ErrorCode::kExpired);
}

}  // namespace
}  // namespace globe::naming
