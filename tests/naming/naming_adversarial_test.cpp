// Adversarial naming: malicious servers trying to trap or mislead the
// validating resolver.
#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "naming/resolver.hpp"
#include "naming/service.hpp"
#include "net/simnet.hpp"

namespace globe::naming {
namespace {

using util::Bytes;
using util::ErrorCode;

crypto::RsaKeyPair adv_key(std::uint64_t seed) {
  auto rng = crypto::HmacDrbg::from_seed(seed);
  return crypto::rsa_generate(512, rng);
}

struct AdversarialNamingFixture : ::testing::Test {
  void SetUp() override {
    host = net.add_host({"ns", net::CpuModel{}});
    root_key = adv_key(301);
    root = std::make_shared<ZoneAuthority>("", root_key);
    server.add_zone(root);
    server.register_with(dispatcher);
    root_ep = net::Endpoint{host, 53};
    net.bind(root_ep, dispatcher.handler());
    flow = net.open_flow(host);
  }

  net::SimNet net;
  net::HostId host;
  crypto::RsaKeyPair root_key;
  std::shared_ptr<ZoneAuthority> root;
  NamingServer server;
  rpc::ServiceDispatcher dispatcher;
  net::Endpoint root_ep;
  std::unique_ptr<net::SimFlow> flow;
};

TEST_F(AdversarialNamingFixture, ReferralLoopIsBounded) {
  // A compromised zone key could sign a delegation chain that never
  // terminates: a.x -> b.a.x -> c.b.a.x ... The resolver must cut it off
  // rather than spin forever.  We simulate with a server that answers every
  // lookup with a correctly-signed referral one label deeper.
  net::Endpoint evil_ep{host, 66};
  auto evil_key = root_key;  // "compromised" root key signs everything
  int depth_counter = 0;
  net.bind(evil_ep, [&, this](net::ServerContext&,
                              util::BytesView) -> util::Result<Bytes> {
    // Build a signed referral to a one-deeper zone served at the same place.
    DelegationRecord rec;
    std::string suffix = "deep.vu.nl";
    for (int i = 0; i < depth_counter; ++i) suffix = "x." + suffix;
    ++depth_counter;
    rec.zone = suffix;
    rec.child_public_key = evil_key.pub.serialize();
    rec.name_server = evil_ep;
    rec.expires = util::seconds(1u << 30);
    SignedBlob blob;
    blob.record = rec.serialize();
    blob.signature = crypto::rsa_sign_sha256(evil_key.priv, blob.record);
    NamingReply reply;
    reply.kind = NamingReply::Kind::kReferral;
    reply.blob = std::move(blob);
    return reply.serialize();
  });

  SecureResolver resolver(*flow, evil_ep, root_key.pub);
  auto result = resolver.resolve("a.x.x.x.x.x.x.x.x.x.x.x.x.x.x.x.x.x.deep.vu.nl");
  EXPECT_FALSE(result.is_ok());
  EXPECT_LE(depth_counter, 17);  // the kMaxReferrals guard fired
}

TEST_F(AdversarialNamingFixture, SidewaysReferralRejected) {
  // A referral must descend: a delegation whose zone does not extend the
  // current zone (or doesn't cover the queried name) is refused even when
  // correctly signed.
  net::Endpoint evil_ep{host, 67};
  net.bind(evil_ep, [this](net::ServerContext&,
                           util::BytesView) -> util::Result<Bytes> {
    DelegationRecord rec;
    rec.zone = "unrelated.org";  // does not cover the query below
    rec.child_public_key = root_key.pub.serialize();
    rec.name_server = net::Endpoint{host, 68};
    rec.expires = util::seconds(1u << 30);
    SignedBlob blob;
    blob.record = rec.serialize();
    blob.signature = crypto::rsa_sign_sha256(root_key.priv, blob.record);
    NamingReply reply;
    reply.kind = NamingReply::Kind::kReferral;
    reply.blob = std::move(blob);
    return reply.serialize();
  });

  SecureResolver resolver(*flow, evil_ep, root_key.pub);
  EXPECT_EQ(resolver.resolve("doc.vu.nl").code(), ErrorCode::kWrongElement);
}

TEST_F(AdversarialNamingFixture, SelfReferralRejected) {
  // A delegation for the zone itself (no descent) must be refused — the
  // other classic way to trap a resolver.
  root->add_oid("legit.vu.nl", Bytes(20, 1), util::seconds(1u << 30));
  net::Endpoint evil_ep{host, 69};
  net.bind(evil_ep, [this, evil_ep](net::ServerContext&,
                                    util::BytesView) -> util::Result<Bytes> {
    DelegationRecord rec;
    rec.zone = "";  // same zone as the root: zero progress
    rec.child_public_key = root_key.pub.serialize();
    rec.name_server = evil_ep;
    rec.expires = util::seconds(1u << 30);
    SignedBlob blob;
    blob.record = rec.serialize();
    blob.signature = crypto::rsa_sign_sha256(root_key.priv, blob.record);
    NamingReply reply;
    reply.kind = NamingReply::Kind::kReferral;
    reply.blob = std::move(blob);
    return reply.serialize();
  });
  SecureResolver resolver(*flow, evil_ep, root_key.pub);
  EXPECT_EQ(resolver.resolve("legit.vu.nl").code(), ErrorCode::kWrongElement);
}

TEST_F(AdversarialNamingFixture, AnswerWhereReferralExpectedStillVerified) {
  // A server returning an ANSWER signed by the wrong key is caught by the
  // signature check even if the record contents look plausible.
  auto imposter = adv_key(302);
  net::Endpoint evil_ep{host, 70};
  net.bind(evil_ep, [&](net::ServerContext&, util::BytesView) -> util::Result<Bytes> {
    OidRecord rec;
    rec.name = "doc.vu.nl";
    rec.oid = Bytes(20, 0x66);  // attacker's OID
    rec.expires = util::seconds(1u << 30);
    SignedBlob blob;
    blob.record = rec.serialize();
    blob.signature = crypto::rsa_sign_sha256(imposter.priv, blob.record);
    NamingReply reply;
    reply.kind = NamingReply::Kind::kAnswer;
    reply.blob = std::move(blob);
    return reply.serialize();
  });
  SecureResolver resolver(*flow, evil_ep, root_key.pub);
  EXPECT_EQ(resolver.resolve("doc.vu.nl").code(), ErrorCode::kBadSignature);
}

}  // namespace
}  // namespace globe::naming
