// A sanitizer's RESULT is trusted even when computed from tainted inputs
// (e.g. the verified OID extracted from a signed record chain).
// TAINT-EXPECT: clean
#include "_prelude.h"
namespace fix {

struct Oid {};

GLOBE_UNTRUSTED Bytes recv_record();
GLOBE_SANITIZER Oid resolve_verified(const Bytes& record);
void dial_for(GLOBE_TRUSTED_SINK Oid target);

void resolve_and_dial() {
  Bytes record = recv_record();
  Oid oid = resolve_verified(record);
  dial_for(oid);
}

}  // namespace fix
