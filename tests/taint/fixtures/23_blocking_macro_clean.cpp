// conc_check's GLOBE_BLOCKING marker shares declarations with the taint
// annotations (e.g. Transport::call is GLOBE_BLOCKING GLOBE_UNTRUSTED).
// The taint scan must read through it: it is not a source, not a sink, and
// must not hide the annotation standing next to it.
// TAINT-EXPECT: flag source=recv_reply sink=install_state
#include "_prelude.h"
namespace fix {

GLOBE_BLOCKING GLOBE_UNTRUSTED Bytes recv_reply();
GLOBE_BLOCKING void push_upstream(const Bytes& out);
void install_state(GLOBE_TRUSTED_SINK Bytes state);

void pull() {
  Bytes raw = recv_reply();   // still recognized as a source next to BLOCKING
  push_upstream(raw);         // GLOBE_BLOCKING alone must NOT make a sink
  install_state(raw);         // the one real finding
}

}  // namespace fix
