// Derived sanitization: admit() forwards its parameter to an annotated
// sanitizer, so callers of admit() get the same guarantee interprocedurally.
// TAINT-EXPECT: clean
#include "_prelude.h"
namespace fix {

GLOBE_UNTRUSTED Bytes recv_reply();
GLOBE_SANITIZER Status verify_state(const Bytes& state);
void install_state(GLOBE_TRUSTED_SINK Bytes state);

Status admit(const Bytes& candidate) {
  return verify_state(candidate);
}

void pull() {
  Bytes raw = recv_reply();
  Status ok = admit(raw);
  if (!ok.is_ok()) return;
  install_state(raw);
}

}  // namespace fix
