// Function-level sink guards the RETURN value (the response handed to the
// client): returning unverified bytes must flag.
// TAINT-EXPECT: flag source=http_get sink=handle_request
#include "_prelude.h"
namespace fix {

GLOBE_UNTRUSTED Bytes http_get();

GLOBE_TRUSTED_SINK Bytes handle_request() {
  Bytes body = http_get();
  return body;
}

}  // namespace fix
