// Parameter-position sink: only the annotated argument slot is guarded,
// and a tainted value in that slot must flag.
// TAINT-EXPECT: flag source=read_record sink=dial
#include "_prelude.h"
namespace fix {

struct Endpoint {};

GLOBE_UNTRUSTED Endpoint read_record();
void dial(int service, GLOBE_TRUSTED_SINK Endpoint where);

void contact() {
  Endpoint addr = read_record();
  dial(7, addr);
}

}  // namespace fix
