// Taint acquired inside a conditional block survives past the block
// (path-insensitive join).
// TAINT-EXPECT: flag source=recv_reply sink=install_state
#include "_prelude.h"
namespace fix {

GLOBE_UNTRUSTED Bytes recv_reply();
void install_state(GLOBE_TRUSTED_SINK Bytes state);

void pull(bool refresh) {
  Bytes state;
  if (refresh) {
    state = recv_reply();
  }
  install_state(state);
}

}  // namespace fix
