// GLOBE_UNTRUSTED in parameter position: a server handler's wire payload
// is tainted from entry.
// TAINT-EXPECT: flag source=handle_create sink=install_state
#include "_prelude.h"
namespace fix {

void install_state(GLOBE_TRUSTED_SINK Bytes state);

Status handle_create(GLOBE_UNTRUSTED Bytes payload) {
  Bytes state = payload;
  install_state(state);
  return Status{};
}

}  // namespace fix
