// Return-position sink with verification before the return: must pass.
// TAINT-EXPECT: clean
#include "_prelude.h"
namespace fix {

GLOBE_UNTRUSTED Bytes http_get();
GLOBE_SANITIZER Status check_element(const Bytes& body);

GLOBE_TRUSTED_SINK Bytes handle_request() {
  Bytes body = http_get();
  Status ok = check_element(body);
  if (!ok.is_ok()) return Bytes{};
  return body;
}

}  // namespace fix
