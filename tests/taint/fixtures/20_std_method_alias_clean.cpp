// A std-container method call on an untyped local (`em.insert(...)`) must
// NOT resolve by name onto an unrelated class whose `insert` has a trusted
// sink parameter.  Regression for the bytes.cpp/LocationClient aliasing bug.
// TAINT-EXPECT: clean
#include "_prelude.h"
namespace fix {

struct Endpoint {};

struct Registry {
  // Sink in parameter 0: untrusted data must never pick the dial target.
  Status insert(GLOBE_TRUSTED_SINK const Endpoint& site, const Bytes& oid,
                const Bytes& extra);
};

GLOBE_UNTRUSTED Bytes recv_reply();

Buffer encode() {
  Bytes raw = recv_reply();
  auto em = make_buffer();
  // std::vector-style insert: three arguments, tainted payload among them.
  // With name-only fallback (the lite frontend cannot type `em`) this would
  // alias onto Registry::insert and report raw -> sink; the analyzer must
  // treat it as an external container call instead.
  em.insert(em.end(), raw, raw);
  return em;
}

}  // namespace fix
