// A container lookup keyed by untrusted data returns the container's value,
// which carries the CONTAINER's taint, not the key's: selecting a trusted,
// pre-configured endpoint out of a routing map by an attacker-chosen name
// yields a trusted endpoint.
// TAINT-EXPECT: clean
#include "_prelude.h"
namespace fix {

struct Dialer {
  // Dialing is the sink: the remote address must come from trusted config.
  Dialer(GLOBE_TRUSTED_SINK const Bytes& remote);
};

GLOBE_UNTRUSTED Bytes recv_request();
Bytes parse_child_name(const Bytes& payload);

void route(const Table& children) {
  Bytes payload = recv_request();
  Bytes child_name = parse_child_name(payload);
  // `children` is trusted configuration; the untrusted key only selects
  // which trusted entry comes back.
  auto entry = children.find(child_name);
  Dialer dial(entry);
}

}  // namespace fix
