// Tainted data in a NON-sink parameter slot of the same call is allowed:
// the request id is untrusted but only `where` is the guarded slot.
// TAINT-EXPECT: clean
#include "_prelude.h"
namespace fix {

struct Endpoint {};

GLOBE_UNTRUSTED int read_id();
Endpoint local_endpoint();
void dial(int service, GLOBE_TRUSTED_SINK Endpoint where);

void contact() {
  int id = read_id();
  Endpoint addr = local_endpoint();
  dial(id, addr);
}

}  // namespace fix
