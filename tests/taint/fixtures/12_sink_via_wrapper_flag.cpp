// The sink is reached through an unannotated wrapper: the finding must
// carry the two-hop call chain pull -> store -> install_state.
// TAINT-EXPECT: flag source=recv_reply sink=install_state
#include "_prelude.h"
namespace fix {

GLOBE_UNTRUSTED Bytes recv_reply();
void install_state(GLOBE_TRUSTED_SINK Bytes state);

void store(Bytes blob) {
  install_state(blob);
}

void pull() {
  Bytes raw = recv_reply();
  store(raw);
}

}  // namespace fix
