// Sanitizer invoked as a method of the tainted object (state.verify())
// clears the receiver's taint.
// TAINT-EXPECT: clean
#include "_prelude.h"
namespace fix {

struct State {
  GLOBE_SANITIZER Status verify() const;
};

GLOBE_UNTRUSTED State parse_reply();
void install_state(GLOBE_TRUSTED_SINK State state);

void pull() {
  State state = parse_reply();
  Status ok = state.verify();
  if (!ok.is_ok()) return;
  install_state(state);
}

}  // namespace fix
