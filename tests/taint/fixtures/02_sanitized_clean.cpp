// The same flow with a sanitizer between source and sink: must pass.
// TAINT-EXPECT: clean
#include "_prelude.h"
namespace fix {

GLOBE_UNTRUSTED Bytes recv_reply();
GLOBE_SANITIZER Status verify_state(const Bytes& state);
void install_state(GLOBE_TRUSTED_SINK Bytes state);

void pull() {
  Bytes raw = recv_reply();
  Status ok = verify_state(raw);
  if (!ok.is_ok()) return;
  install_state(raw);
}

}  // namespace fix
