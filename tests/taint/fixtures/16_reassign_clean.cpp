// Strong update: overwriting a tainted variable with a trusted value
// clears its taint.
// TAINT-EXPECT: clean
#include "_prelude.h"
namespace fix {

GLOBE_UNTRUSTED Bytes recv_reply();
Bytes local_default();
void install_state(GLOBE_TRUSTED_SINK Bytes state);

void pull() {
  Bytes state = recv_reply();
  state = local_default();
  install_state(state);
}

}  // namespace fix
