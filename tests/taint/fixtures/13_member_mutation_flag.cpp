// Mutating an aggregate with tainted data (push_back-style) taints the
// aggregate itself.
// TAINT-EXPECT: flag source=recv_cert sink=install_state
#include "_prelude.h"
namespace fix {

struct State {
  void add_cert(Bytes cert);
};

GLOBE_UNTRUSTED Bytes recv_cert();
void install_state(GLOBE_TRUSTED_SINK State state);

void pull() {
  State state;
  Bytes cert = recv_cert();
  state.add_cert(cert);
  install_state(state);
}

}  // namespace fix
