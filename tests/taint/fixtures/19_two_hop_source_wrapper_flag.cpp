// Source wrapped behind a class method and consumed via a member call
// chain: RpcClient-style shape.
// TAINT-EXPECT: flag source=Client::call sink=put_element
#include "_prelude.h"
namespace fix {

struct Client {
  GLOBE_UNTRUSTED Bytes call(int method);
};

void put_element(GLOBE_TRUSTED_SINK Bytes element);

struct Importer {
  Client client;
  void import_one() {
    Bytes body = client.call(3);
    put_element(body);
  }
};

}  // namespace fix
