// Taint must survive two unannotated call hops: fetch() wraps the source,
// repackage() forwards its argument, and only then does it hit the sink.
// TAINT-EXPECT: flag source=recv_reply sink=install_state
#include "_prelude.h"
namespace fix {

GLOBE_UNTRUSTED Bytes recv_reply();
void install_state(GLOBE_TRUSTED_SINK Bytes state);

Bytes fetch() {
  Bytes raw = recv_reply();
  return raw;
}

Bytes repackage(Bytes blob) {
  Bytes copy = blob;
  return copy;
}

void pull() {
  Bytes staged = repackage(fetch());
  install_state(staged);
}

}  // namespace fix
