// Range-for over a tainted container taints the loop variable.
// TAINT-EXPECT: flag source=recv_list sink=dial
#include "_prelude.h"
namespace fix {

struct Endpoint {};
struct EndpointList {};

GLOBE_UNTRUSTED EndpointList recv_list();
void dial(GLOBE_TRUSTED_SINK Endpoint where);

void contact_all() {
  EndpointList candidates = recv_list();
  for (const Endpoint& address : candidates) {
    dial(address);
  }
}

}  // namespace fix
