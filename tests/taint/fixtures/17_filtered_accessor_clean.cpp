// Metadata accessors (.size(), .is_ok(), .status()) of a tainted value do
// not propagate content taint.
// TAINT-EXPECT: clean
#include "_prelude.h"
namespace fix {

GLOBE_UNTRUSTED Bytes recv_reply();
void record_metric(GLOBE_TRUSTED_SINK int value);

void pull() {
  Bytes raw = recv_reply();
  int n = raw.size();
  record_metric(n);
}

}  // namespace fix
