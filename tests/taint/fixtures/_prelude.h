// Shared fixture prelude: a stand-in for src/util/taint_annotations.hpp so
// each fixture is a self-contained TU under both frontends.
#pragma once
#if defined(__clang__)
#define GLOBE_UNTRUSTED [[clang::annotate("globe::untrusted")]]
#define GLOBE_BLOCKING [[clang::annotate("globe::blocking")]]
#define GLOBE_SANITIZER [[clang::annotate("globe::sanitizer")]]
#define GLOBE_TRUSTED_SINK [[clang::annotate("globe::trusted_sink")]]
#else
#define GLOBE_UNTRUSTED
#define GLOBE_BLOCKING
#define GLOBE_SANITIZER
#define GLOBE_TRUSTED_SINK
#endif

struct Bytes {
  int size() const { return 0; }
};
struct Status {
  bool is_ok() const { return true; }
};
// std::vector-like stand-in.  Lives in the prelude (which the lite frontend
// never parses — it analyzes each fixture TU in isolation) so that a
// `buf.insert(...)` call in a fixture is exactly what the real bug looked
// like: an untyped receiver with a container method name.
struct Buffer {
  int end() { return 0; }
  void insert(int where, const Bytes& a, const Bytes& b) {}
};
inline Buffer make_buffer() { return Buffer{}; }
// std::map-like stand-in, same trick: its lookup stays a bodyless external
// method under both frontends.
struct Table {
  const Bytes& find(const Bytes& key) const;
};
