// Untrusted bytes passed straight into a trusted sink: must flag.
// TAINT-EXPECT: flag source=recv_reply sink=install_state
#include "_prelude.h"
namespace fix {

GLOBE_UNTRUSTED Bytes recv_reply();
void install_state(GLOBE_TRUSTED_SINK Bytes state);

void pull() {
  Bytes raw = recv_reply();
  install_state(raw);
}

}  // namespace fix
