// Receiver-type inference through the factory idiom: `auto s = T::parse(x)`
// types `s` as T, so `s->verify(...)` resolves to T::verify even when an
// unrelated class also declares an (unannotated) `verify` — the ambiguity
// that would otherwise leave the sanitizer call unresolved.
// TAINT-EXPECT: clean
#include "_prelude.h"
namespace fix {

struct State {
  static State parse(const Bytes& wire);
  GLOBE_SANITIZER Status verify(int now) const;
};

struct Checksum {
  // Same name, different effect signature: blocks name-only merging.
  bool verify(const Bytes& a, const Bytes& b, int mode) const;
};

GLOBE_UNTRUSTED Bytes recv_state();
void install(GLOBE_TRUSTED_SINK const State& state);

void admin_push(int now) {
  Bytes wire = recv_state();
  auto state = State::parse(wire);
  Status ok = state.verify(now);
  if (!ok.is_ok()) return;
  install(state);
}

}  // namespace fix
