// Sanitize-then-retaint: verification followed by a fresh untrusted
// assignment must not stay clean (statements are walked in textual order).
// TAINT-EXPECT: flag source=recv_reply sink=install_state
#include "_prelude.h"
namespace fix {

GLOBE_UNTRUSTED Bytes recv_reply();
GLOBE_SANITIZER Status verify_state(const Bytes& state);
void install_state(GLOBE_TRUSTED_SINK Bytes state);

void pull() {
  Bytes raw = recv_reply();
  Status ok = verify_state(raw);
  if (!ok.is_ok()) return;
  raw = recv_reply();  // fetched again after the check
  install_state(raw);
}

}  // namespace fix
