#include "crypto/prime.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"

namespace globe::crypto {
namespace {

TEST(PrimeTest, SmallPrimesRecognized) {
  auto rng = HmacDrbg::from_seed(1);
  for (std::uint64_t p : {2u, 3u, 5u, 7u, 11u, 13u, 251u, 257u, 65537u}) {
    EXPECT_TRUE(is_probable_prime(BigInt(p), rng)) << p;
  }
}

TEST(PrimeTest, SmallCompositesRejected) {
  auto rng = HmacDrbg::from_seed(2);
  for (std::uint64_t c : {0u, 1u, 4u, 6u, 9u, 15u, 255u, 256u, 1001u}) {
    EXPECT_FALSE(is_probable_prime(BigInt(c), rng)) << c;
  }
}

TEST(PrimeTest, CarmichaelNumbersRejected) {
  // Fermat pseudoprimes that fool a^(n-1) tests; Miller-Rabin must reject.
  auto rng = HmacDrbg::from_seed(3);
  for (std::uint64_t c : {561u, 1105u, 1729u, 2465u, 2821u, 41041u, 825265u}) {
    EXPECT_FALSE(is_probable_prime(BigInt(c), rng)) << c;
  }
}

TEST(PrimeTest, LargeKnownPrimeAccepted) {
  auto rng = HmacDrbg::from_seed(4);
  // 2^127 - 1 (Mersenne prime).
  BigInt m127 = (BigInt(1) << 127) - BigInt(1);
  EXPECT_TRUE(is_probable_prime(m127, rng));
  // 2^128 - 1 is composite.
  BigInt m128 = (BigInt(1) << 128) - BigInt(1);
  EXPECT_FALSE(is_probable_prime(m128, rng));
}

TEST(PrimeTest, GeneratedPrimeHasExactBits) {
  auto rng = HmacDrbg::from_seed(5);
  for (std::size_t bits : {16u, 64u, 128u}) {
    BigInt p = generate_prime(bits, rng);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(p.is_odd());
    EXPECT_TRUE(is_probable_prime(p, rng));
  }
}

TEST(PrimeTest, GenerationIsDeterministicPerSeed) {
  auto a = HmacDrbg::from_seed(77);
  auto b = HmacDrbg::from_seed(77);
  EXPECT_EQ(generate_prime(64, a), generate_prime(64, b));
}

TEST(PrimeTest, TinyBitWidthRejected) {
  auto rng = HmacDrbg::from_seed(6);
  EXPECT_THROW(generate_prime(4, rng), std::invalid_argument);
}

}  // namespace
}  // namespace globe::crypto
