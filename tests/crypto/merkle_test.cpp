#include "crypto/merkle.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/serial.hpp"

namespace globe::crypto {
namespace {

using util::Bytes;
using util::to_bytes;

std::vector<Bytes> make_leaves(std::size_t n) {
  std::vector<Bytes> leaves;
  leaves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    leaves.push_back(to_bytes("page-element-" + std::to_string(i)));
  }
  return leaves;
}

TEST(MerkleTest, SingleLeafRootIsLeafHash) {
  auto leaves = make_leaves(1);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), MerkleTree::hash_leaf(leaves[0]));
  EXPECT_EQ(tree.leaf_count(), 1u);
}

TEST(MerkleTest, EmptyLeavesRejected) {
  EXPECT_THROW(MerkleTree(std::vector<Bytes>{}), std::invalid_argument);
}

TEST(MerkleTest, TwoLeafRootStructure) {
  auto leaves = make_leaves(2);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(),
            MerkleTree::hash_interior(MerkleTree::hash_leaf(leaves[0]),
                                      MerkleTree::hash_leaf(leaves[1])));
}

TEST(MerkleTest, DomainSeparationLeafVsInterior) {
  Bytes d = to_bytes("x");
  EXPECT_NE(MerkleTree::hash_leaf(d), Sha1::digest_bytes(d));
}

class MerkleProofProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofProperty, AllLeavesVerify) {
  std::size_t n = GetParam();
  auto leaves = make_leaves(n);
  MerkleTree tree(leaves);
  for (std::size_t i = 0; i < n; ++i) {
    MerkleProof proof = tree.prove(i);
    EXPECT_TRUE(MerkleTree::verify(leaves[i], proof, tree.root()))
        << "leaf " << i << " of " << n;
  }
}

TEST_P(MerkleProofProperty, WrongLeafDataFailsVerification) {
  std::size_t n = GetParam();
  auto leaves = make_leaves(n);
  MerkleTree tree(leaves);
  MerkleProof proof = tree.prove(0);
  EXPECT_FALSE(MerkleTree::verify(to_bytes("tampered"), proof, tree.root()));
}

// Odd counts exercise the promoted-node path.
INSTANTIATE_TEST_SUITE_P(LeafCounts, MerkleProofProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 11, 16, 33, 100));

TEST(MerkleTest, ProofForWrongLeafIndexFails) {
  auto leaves = make_leaves(8);
  MerkleTree tree(leaves);
  MerkleProof proof = tree.prove(3);
  // Proof for leaf 3 must not validate leaf 4's data.
  EXPECT_FALSE(MerkleTree::verify(leaves[4], proof, tree.root()));
}

TEST(MerkleTest, OutOfRangeProveThrows) {
  MerkleTree tree(make_leaves(4));
  EXPECT_THROW(tree.prove(4), std::out_of_range);
}

TEST(MerkleTest, RootChangesWhenAnyLeafChanges) {
  auto leaves = make_leaves(9);
  MerkleTree original(leaves);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto mutated = leaves;
    mutated[i].push_back(0xff);
    MerkleTree changed(mutated);
    EXPECT_NE(changed.root(), original.root()) << "leaf " << i;
  }
}

TEST(MerkleTest, ProofSerializationRoundTrip) {
  MerkleTree tree(make_leaves(13));
  MerkleProof proof = tree.prove(7);
  Bytes wire = proof.serialize();
  MerkleProof parsed = MerkleProof::parse(wire);
  EXPECT_EQ(parsed.leaf_index, proof.leaf_index);
  ASSERT_EQ(parsed.steps.size(), proof.steps.size());
  for (std::size_t i = 0; i < proof.steps.size(); ++i) {
    EXPECT_EQ(parsed.steps[i].sibling, proof.steps[i].sibling);
    EXPECT_EQ(parsed.steps[i].sibling_is_left, proof.steps[i].sibling_is_left);
  }
  EXPECT_TRUE(MerkleTree::verify(to_bytes("page-element-7"), parsed, tree.root()));
}

TEST(MerkleTest, ProofParseRejectsTruncation) {
  MerkleTree tree(make_leaves(5));
  Bytes wire = tree.prove(2).serialize();
  wire.pop_back();
  EXPECT_THROW(MerkleProof::parse(wire), util::SerialError);
}

TEST(MerkleTest, ProofLengthIsLogarithmic) {
  MerkleTree tree(make_leaves(128));
  EXPECT_EQ(tree.prove(0).steps.size(), 7u);  // log2(128)
}

TEST(MerkleTest, TamperedProofStepFails) {
  auto leaves = make_leaves(16);
  MerkleTree tree(leaves);
  MerkleProof proof = tree.prove(5);
  proof.steps[2].sibling[0] ^= 1;
  EXPECT_FALSE(MerkleTree::verify(leaves[5], proof, tree.root()));
}


TEST(MerkleTest, ForgedProofStepCountRejected) {
  // Eight bytes claiming 2^32-1 proof steps: a 64-step proof already covers
  // 2^64 leaves, so anything above the ceiling is rejected before
  // steps.reserve() allocates.
  util::Writer w;
  w.u32(0);            // leaf index
  w.u32(0xFFFFFFFFu);  // forged step count
  EXPECT_THROW(MerkleProof::parse(w.take()), util::SerialError);
}
}  // namespace
}  // namespace globe::crypto
