#include "crypto/sha1.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace globe::crypto {
namespace {

using util::Bytes;
using util::hex_encode;
using util::to_bytes;

std::string sha1_hex(std::string_view msg) {
  return hex_encode(Sha1::digest_bytes(to_bytes(msg)));
}

TEST(Sha1Test, FipsVectorEmpty) {
  EXPECT_EQ(sha1_hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, FipsVectorAbc) {
  EXPECT_EQ(sha1_hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, FipsVectorTwoBlocks) {
  EXPECT_EQ(sha1_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, FipsVectorMillionA) {
  Sha1 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  auto d = h.finish();
  EXPECT_EQ(hex_encode(util::Bytes(d.begin(), d.end())),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  Bytes msg = to_bytes("The quick brown fox jumps over the lazy dog");
  auto one_shot = Sha1::digest(msg);
  // Feed in irregular chunk sizes to exercise buffering.
  for (std::size_t chunk : {1u, 3u, 7u, 13u, 64u}) {
    Sha1 h;
    for (std::size_t i = 0; i < msg.size(); i += chunk) {
      std::size_t n = std::min(chunk, msg.size() - i);
      h.update(util::BytesView(msg.data() + i, n));
    }
    EXPECT_EQ(h.finish(), one_shot) << "chunk=" << chunk;
  }
}

TEST(Sha1Test, ExactBlockBoundaryLengths) {
  // Lengths around the 64-byte block / 56-byte padding boundaries.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    Bytes msg(len, 'x');
    Sha1 whole;
    whole.update(msg);
    Sha1 split;
    split.update(util::BytesView(msg.data(), len / 2));
    split.update(util::BytesView(msg.data() + len / 2, len - len / 2));
    EXPECT_EQ(whole.finish(), split.finish()) << "len=" << len;
  }
}

TEST(Sha1Test, ResetAllowsReuse) {
  Sha1 h;
  h.update(to_bytes("garbage"));
  (void)h.finish();
  h.reset();
  h.update(to_bytes("abc"));
  auto d = h.finish();
  EXPECT_EQ(hex_encode(util::Bytes(d.begin(), d.end())),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha1::digest(to_bytes("a")), Sha1::digest(to_bytes("b")));
  EXPECT_NE(Sha1::digest(to_bytes("")), Sha1::digest(Bytes{0x00}));
}

}  // namespace
}  // namespace globe::crypto
