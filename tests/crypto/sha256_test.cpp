#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace globe::crypto {
namespace {

using util::Bytes;
using util::hex_encode;
using util::to_bytes;

std::string sha256_hex(std::string_view msg) {
  return hex_encode(Sha256::digest_bytes(to_bytes(msg)));
}

TEST(Sha256Test, FipsVectorEmpty) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, FipsVectorAbc) {
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, FipsVectorTwoBlocks) {
  EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, FipsVectorMillionA) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  auto d = h.finish();
  EXPECT_EQ(hex_encode(util::Bytes(d.begin(), d.end())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Bytes msg = to_bytes("GlobeDoc integrity certificate payload, somewhat long");
  auto one_shot = Sha256::digest(msg);
  for (std::size_t chunk : {1u, 5u, 31u, 64u, 100u}) {
    Sha256 h;
    for (std::size_t i = 0; i < msg.size(); i += chunk) {
      std::size_t n = std::min(chunk, msg.size() - i);
      h.update(util::BytesView(msg.data() + i, n));
    }
    EXPECT_EQ(h.finish(), one_shot) << "chunk=" << chunk;
  }
}

TEST(Sha256Test, BlockBoundaryLengths) {
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u}) {
    Bytes a(len, 0x42);
    Bytes b(len, 0x42);
    EXPECT_EQ(Sha256::digest(a), Sha256::digest(b));
    b[len - 1] ^= 1;
    EXPECT_NE(Sha256::digest(a), Sha256::digest(b)) << "len=" << len;
  }
}

}  // namespace
}  // namespace globe::crypto
