#include "crypto/drbg.hpp"

#include <gtest/gtest.h>

#include <map>

namespace globe::crypto {
namespace {

using util::Bytes;

TEST(HmacDrbgTest, DeterministicForSeed) {
  auto a = HmacDrbg::from_seed(42);
  auto b = HmacDrbg::from_seed(42);
  EXPECT_EQ(a.bytes(64), b.bytes(64));
}

TEST(HmacDrbgTest, DifferentSeedsDiffer) {
  auto a = HmacDrbg::from_seed(1);
  auto b = HmacDrbg::from_seed(2);
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(HmacDrbgTest, SuccessiveDrawsDiffer) {
  auto d = HmacDrbg::from_seed(7);
  EXPECT_NE(d.bytes(32), d.bytes(32));
}

TEST(HmacDrbgTest, ArbitraryLengths) {
  auto d = HmacDrbg::from_seed(9);
  for (std::size_t n : {0u, 1u, 31u, 32u, 33u, 100u}) {
    EXPECT_EQ(d.bytes(n).size(), n);
  }
}

TEST(HmacDrbgTest, ReseedChangesStream) {
  auto a = HmacDrbg::from_seed(5);
  auto b = HmacDrbg::from_seed(5);
  b.reseed(util::to_bytes("extra entropy"));
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(HmacDrbgTest, OutputLooksUniform) {
  auto d = HmacDrbg::from_seed(1234);
  Bytes sample = d.bytes(4096);
  std::map<int, int> nibbles;
  for (std::uint8_t b : sample) {
    ++nibbles[b >> 4];
    ++nibbles[b & 0xf];
  }
  // 8192 nibbles over 16 bins: expect ~512 each; allow wide tolerance.
  for (int v = 0; v < 16; ++v) {
    EXPECT_GT(nibbles[v], 350) << "nibble " << v;
    EXPECT_LT(nibbles[v], 700) << "nibble " << v;
  }
}

TEST(HmacDrbgTest, U64HelperCoversRange) {
  auto d = HmacDrbg::from_seed(77);
  bool high_bit_seen = false;
  for (int i = 0; i < 64 && !high_bit_seen; ++i) {
    if (d.u64() >> 63) high_bit_seen = true;
  }
  EXPECT_TRUE(high_bit_seen);
}

TEST(SystemRandomTest, ProducesRequestedLength) {
  SystemRandom sr;
  EXPECT_EQ(sr.bytes(16).size(), 16u);
  EXPECT_NE(sr.bytes(16), sr.bytes(16));
}

}  // namespace
}  // namespace globe::crypto
