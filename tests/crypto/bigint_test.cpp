#include "crypto/bigint.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "util/bytes.hpp"

namespace globe::crypto {
namespace {

using util::Bytes;

TEST(BigIntTest, ZeroProperties) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_TRUE(z.is_even());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_hex(), "0");
  EXPECT_EQ(z.to_dec(), "0");
  EXPECT_TRUE(z.to_bytes().empty());
}

TEST(BigIntTest, U64Construction) {
  BigInt v(0x0123456789abcdefULL);
  EXPECT_EQ(v.low_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(v.bit_length(), 57u);
  EXPECT_EQ(v.to_hex(), "123456789abcdef");
}

TEST(BigIntTest, BytesRoundTrip) {
  Bytes be{0x01, 0x02, 0x03, 0x04, 0x05};
  BigInt v = BigInt::from_bytes(be);
  EXPECT_EQ(v.to_bytes(), be);
  EXPECT_EQ(v.low_u64(), 0x0102030405ULL);
}

TEST(BigIntTest, LeadingZerosIgnoredOnParse) {
  Bytes with_zeros{0x00, 0x00, 0xff, 0x01};
  BigInt v = BigInt::from_bytes(with_zeros);
  EXPECT_EQ(v.to_bytes(), (Bytes{0xff, 0x01}));
}

TEST(BigIntTest, PaddedToBytes) {
  BigInt v(0xabcd);
  EXPECT_EQ(v.to_bytes(4), (Bytes{0x00, 0x00, 0xab, 0xcd}));
  EXPECT_THROW(v.to_bytes(1), std::invalid_argument);
  EXPECT_EQ(BigInt().to_bytes(2), (Bytes{0x00, 0x00}));
}

TEST(BigIntTest, HexRoundTrip) {
  BigInt v = BigInt::from_hex("deadbeefcafebabe1234567890");
  EXPECT_EQ(v.to_hex(), "deadbeefcafebabe1234567890");
  EXPECT_EQ(BigInt::from_hex("0"), BigInt(0));
  EXPECT_EQ(BigInt::from_hex("f"), BigInt(15));
}

TEST(BigIntTest, DecRoundTrip) {
  BigInt v = BigInt::from_dec("123456789012345678901234567890");
  EXPECT_EQ(v.to_dec(), "123456789012345678901234567890");
  EXPECT_THROW(BigInt::from_dec("12a"), std::invalid_argument);
}

TEST(BigIntTest, ComparisonOrdering) {
  BigInt a(100), b(200);
  BigInt big = BigInt::from_hex("ffffffffffffffffffffffffffffffff");
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_LE(a, a);
  EXPECT_LT(b, big);
  EXPECT_NE(a, b);
}

TEST(BigIntTest, AdditionCarryPropagation) {
  BigInt max32 = BigInt::from_hex("ffffffff");
  EXPECT_EQ((max32 + BigInt(1)).to_hex(), "100000000");
  BigInt max96 = BigInt::from_hex("ffffffffffffffffffffffff");
  EXPECT_EQ((max96 + BigInt(1)).to_hex(), "1000000000000000000000000");
}

TEST(BigIntTest, SubtractionBorrowPropagation) {
  BigInt v = BigInt(1) << 96;
  EXPECT_EQ((v - BigInt(1)).to_hex(), "ffffffffffffffffffffffff");
  EXPECT_THROW(BigInt(1) - BigInt(2), std::underflow_error);
  EXPECT_EQ((v - v).to_hex(), "0");
}

TEST(BigIntTest, MultiplicationKnownValue) {
  BigInt a = BigInt::from_dec("123456789123456789");
  BigInt b = BigInt::from_dec("987654321987654321");
  EXPECT_EQ((a * b).to_dec(), "121932631356500531347203169112635269");
}

TEST(BigIntTest, MultiplyByZeroAndOne) {
  BigInt a = BigInt::from_hex("deadbeef");
  EXPECT_TRUE((a * BigInt()).is_zero());
  EXPECT_EQ(a * BigInt(1), a);
}

TEST(BigIntTest, ShiftsInverse) {
  BigInt a = BigInt::from_hex("123456789abcdef0123456789");
  for (std::size_t s : {1u, 7u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ((a << s) >> s, a) << "shift=" << s;
  }
  EXPECT_EQ((BigInt(1) << 128).to_hex(), "100000000000000000000000000000000");
  EXPECT_TRUE((a >> 200).is_zero());
}

TEST(BigIntTest, DivisionKnownValues) {
  BigInt a = BigInt::from_dec("1000000000000000000000000000007");
  BigInt b = BigInt::from_dec("1000003");
  BigInt q, r;
  BigInt::divmod(a, b, q, r);
  EXPECT_EQ(q * b + r, a);
  EXPECT_LT(r, b);
  EXPECT_THROW(a / BigInt(), std::domain_error);
}

TEST(BigIntTest, DivisionBySingleLimb) {
  BigInt a = BigInt::from_dec("123456789012345678901234567890");
  EXPECT_EQ((a / BigInt(10)).to_dec(), "12345678901234567890123456789");
  EXPECT_EQ((a % BigInt(10)).to_dec(), "0");
  BigInt q, r;
  BigInt::divmod(a, BigInt(7), q, r);
  EXPECT_EQ(q * BigInt(7) + r, a);
  EXPECT_LT(r, BigInt(7));
}

// Property sweep: q*b + r == a and r < b over deterministic random inputs of
// assorted sizes, including the Knuth "add back" stress region.
class BigIntDivisionProperty : public ::testing::TestWithParam<int> {};

TEST_P(BigIntDivisionProperty, QuotientRemainderIdentity) {
  auto rng = HmacDrbg::from_seed(static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 25; ++iter) {
    std::size_t abits = 16 + static_cast<std::size_t>(rng.u64() % 512);
    std::size_t bbits = 8 + static_cast<std::size_t>(rng.u64() % 256);
    BigInt a = BigInt::random_bits(abits, rng);
    BigInt b = BigInt::random_bits(bbits, rng);
    BigInt q, r;
    BigInt::divmod(a, b, q, r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntDivisionProperty, ::testing::Range(0, 8));

// Property sweep: 64-bit arithmetic matches native __int128 results.
class BigIntNativeCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(BigIntNativeCrossCheck, MatchesNativeArithmetic) {
  auto rng = HmacDrbg::from_seed(1000 + static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 50; ++iter) {
    std::uint64_t x = rng.u64();
    std::uint64_t y = rng.u64();
    BigInt bx(x), by(y);
    unsigned __int128 sum = static_cast<unsigned __int128>(x) + y;
    unsigned __int128 prod = static_cast<unsigned __int128>(x) * y;
    EXPECT_EQ((bx + by).low_u64(), static_cast<std::uint64_t>(sum));
    BigInt p = bx * by;
    EXPECT_EQ(p.low_u64(), static_cast<std::uint64_t>(prod));
    EXPECT_EQ((p >> 64).low_u64(), static_cast<std::uint64_t>(prod >> 64));
    if (y != 0) {
      EXPECT_EQ((bx / by).low_u64(), x / y);
      EXPECT_EQ((bx % by).low_u64(), x % y);
    }
    if (x >= y) {
      EXPECT_EQ((bx - by).low_u64(), x - y);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntNativeCrossCheck, ::testing::Range(0, 8));

TEST(BigIntTest, ModPowKnownValues) {
  // 2^10 mod 1000 = 24
  EXPECT_EQ(BigInt::mod_pow(BigInt(2), BigInt(10), BigInt(1000)).low_u64(), 24u);
  // Fermat: a^(p-1) mod p == 1 for prime p.
  BigInt p = BigInt::from_dec("1000000007");
  EXPECT_EQ(BigInt::mod_pow(BigInt(12345), p - BigInt(1), p), BigInt(1));
  // Exponent zero.
  EXPECT_EQ(BigInt::mod_pow(BigInt(99), BigInt(), BigInt(7)), BigInt(1));
  // Modulus one.
  EXPECT_TRUE(BigInt::mod_pow(BigInt(99), BigInt(3), BigInt(1)).is_zero());
}

TEST(BigIntTest, ModPowEvenModulusAgrees) {
  // Even modulus falls back to the division path; cross-check vs native.
  auto rng = HmacDrbg::from_seed(55);
  for (int i = 0; i < 20; ++i) {
    std::uint64_t b = rng.u64() % 1000 + 2;
    std::uint64_t e = rng.u64() % 20;
    std::uint64_t m = (rng.u64() % 1000 + 2) & ~1ULL;  // even
    std::uint64_t expected = 1;
    for (std::uint64_t k = 0; k < e; ++k) expected = expected * b % m;
    EXPECT_EQ(BigInt::mod_pow(BigInt(b), BigInt(e), BigInt(m)).low_u64(), expected);
  }
}

// Property: Montgomery path agrees with naive square-and-multiply for odd
// moduli across many random cases.
class BigIntModPowProperty : public ::testing::TestWithParam<int> {};

TEST_P(BigIntModPowProperty, MontgomeryMatchesNaive) {
  auto rng = HmacDrbg::from_seed(2000 + static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 5; ++iter) {
    BigInt m = BigInt::random_bits(128, rng);
    if (m.is_even()) m = m + BigInt(1);
    BigInt base = BigInt::random_bits(100, rng);
    BigInt exp = BigInt::random_bits(24, rng);
    // Naive reference.
    BigInt expected(1);
    BigInt b = base % m;
    for (std::size_t i = exp.bit_length(); i-- > 0;) {
      expected = (expected * expected) % m;
      if (exp.bit(i)) expected = (expected * b) % m;
    }
    EXPECT_EQ(BigInt::mod_pow(base, exp, m), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntModPowProperty, ::testing::Range(0, 8));

TEST(BigIntTest, ModInverseKnownValues) {
  // 3 * 4 = 12 = 1 mod 11.
  EXPECT_EQ(BigInt::mod_inverse(BigInt(3), BigInt(11)), BigInt(4));
  EXPECT_THROW(BigInt::mod_inverse(BigInt(6), BigInt(9)), std::domain_error);
}

TEST(BigIntTest, ModInverseProperty) {
  auto rng = HmacDrbg::from_seed(31);
  BigInt m = BigInt::from_dec("1000000000000000003");  // prime
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::random_below(m - BigInt(2), rng) + BigInt(1);
    BigInt inv = BigInt::mod_inverse(a, m);
    EXPECT_EQ((a * inv) % m, BigInt(1));
  }
}

TEST(BigIntTest, GcdKnownValues) {
  EXPECT_EQ(BigInt::gcd(BigInt(48), BigInt(36)), BigInt(12));
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)), BigInt(1));
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)), BigInt(5));
}

TEST(BigIntTest, RandomBelowInRange) {
  auto rng = HmacDrbg::from_seed(8);
  BigInt bound = BigInt::from_hex("10000000000000000000001");
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(BigInt::random_below(bound, rng), bound);
  }
  EXPECT_THROW(BigInt::random_below(BigInt(), rng), std::domain_error);
}

TEST(BigIntTest, RandomBitsExactWidth) {
  auto rng = HmacDrbg::from_seed(9);
  for (std::size_t bits : {8u, 9u, 31u, 32u, 33u, 512u, 1024u}) {
    BigInt v = BigInt::random_bits(bits, rng);
    EXPECT_EQ(v.bit_length(), bits) << "bits=" << bits;
  }
}

TEST(BigIntTest, BitAccess) {
  BigInt v = BigInt::from_hex("8000000000000001");
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(1));
  EXPECT_FALSE(v.bit(64));
  EXPECT_FALSE(v.bit(1000));
}


// Property: Karatsuba (large operands) agrees with schoolbook results via
// algebraic identities across sizes straddling the threshold.
class BigIntKaratsubaProperty : public ::testing::TestWithParam<int> {};

TEST_P(BigIntKaratsubaProperty, LargeMultiplicationConsistency) {
  auto rng = HmacDrbg::from_seed(3000 + static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 4; ++iter) {
    // Sizes chosen to straddle the Karatsuba threshold (24 limbs = 768 bits).
    std::size_t abits = 512 + static_cast<std::size_t>(rng.u64() % 2048);
    std::size_t bbits = 512 + static_cast<std::size_t>(rng.u64() % 2048);
    BigInt a = BigInt::random_bits(abits, rng);
    BigInt b = BigInt::random_bits(bbits, rng);
    BigInt c = BigInt::random_bits(256, rng);

    // Commutativity.
    EXPECT_EQ(a * b, b * a);
    // Distributivity: a*(b+c) == a*b + a*c.
    EXPECT_EQ(a * (b + c), a * b + a * c);
    // Associativity with a small factor: (a*c)*b == a*(c*b).
    EXPECT_EQ((a * c) * b, a * (c * b));
    // Division inverts multiplication exactly.
    EXPECT_EQ((a * b) / b, a);
    EXPECT_TRUE(((a * b) % b).is_zero());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntKaratsubaProperty, ::testing::Range(0, 6));

TEST(BigIntTest, KaratsubaKnownLargeProduct) {
  // (2^1024 - 1)^2 = 2^2048 - 2^1025 + 1.
  BigInt m = (BigInt(1) << 1024) - BigInt(1);
  BigInt expected = (BigInt(1) << 2048) - (BigInt(1) << 1025) + BigInt(1);
  EXPECT_EQ(m * m, expected);
}

TEST(BigIntTest, HighlyAsymmetricOperands) {
  auto rng = HmacDrbg::from_seed(77);
  BigInt big = BigInt::random_bits(4096, rng);
  BigInt small(12345);
  BigInt product = big * small;
  EXPECT_EQ(product / small, big);
  EXPECT_EQ(product, small * big);
}

}  // namespace
}  // namespace globe::crypto
