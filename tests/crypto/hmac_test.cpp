#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace globe::crypto {
namespace {

using util::Bytes;
using util::hex_decode;
using util::hex_encode;
using util::to_bytes;

template <typename Hash>
std::string hmac_hex(util::BytesView key, util::BytesView data) {
  auto d = hmac<Hash>(key, data);
  return hex_encode(Bytes(d.begin(), d.end()));
}

TEST(HmacSha1Test, Rfc2202Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(hmac_hex<Sha1>(key, to_bytes("Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1Test, Rfc2202Case2) {
  EXPECT_EQ(hmac_hex<Sha1>(to_bytes("Jefe"), to_bytes("what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacSha1Test, Rfc2202Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(hmac_hex<Sha1>(key, data), "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(HmacSha1Test, LongKeyIsHashedFirst) {
  // RFC 2202 case 6: 80-byte key (> block size).
  Bytes key(80, 0xaa);
  EXPECT_EQ(hmac_hex<Sha1>(key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First")),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(HmacSha256Test, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(hmac_hex<Sha256>(key, to_bytes("Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, Rfc4231Case2) {
  EXPECT_EQ(hmac_hex<Sha256>(to_bytes("Jefe"), to_bytes("what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256Test, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(hmac_hex<Sha256>(key, data),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, KeySensitivity) {
  Bytes data = to_bytes("same data");
  EXPECT_NE(hmac_hex<Sha256>(to_bytes("key1"), data),
            hmac_hex<Sha256>(to_bytes("key2"), data));
}

TEST(HkdfTest, DeterministicAndLengthExact) {
  Bytes prk = to_bytes("pseudo-random-key-material-32byt");
  Bytes a = hkdf_expand_sha256(prk, to_bytes("client write"), 16);
  Bytes b = hkdf_expand_sha256(prk, to_bytes("client write"), 16);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 16u);
}

TEST(HkdfTest, InfoSeparatesKeys) {
  Bytes prk = to_bytes("pseudo-random-key-material-32byt");
  EXPECT_NE(hkdf_expand_sha256(prk, to_bytes("client write"), 16),
            hkdf_expand_sha256(prk, to_bytes("server write"), 16));
}

TEST(HkdfTest, LongOutputSpansBlocks) {
  Bytes prk = to_bytes("k");
  Bytes out = hkdf_expand_sha256(prk, to_bytes("info"), 100);
  EXPECT_EQ(out.size(), 100u);
  // Prefix property: shorter request is a prefix of a longer one.
  Bytes shorter = hkdf_expand_sha256(prk, to_bytes("info"), 33);
  EXPECT_TRUE(std::equal(shorter.begin(), shorter.end(), out.begin()));
}

TEST(HkdfTest, OversizedRequestThrows) {
  EXPECT_THROW(hkdf_expand_sha256(to_bytes("k"), to_bytes("i"), 255 * 32 + 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace globe::crypto
