#include "crypto/rsa.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "crypto/sha1.hpp"
#include "util/bytes.hpp"
#include "util/serial.hpp"

namespace globe::crypto {
namespace {

using util::Bytes;
using util::to_bytes;

// Key generation dominates test time; share one deterministic key.
const RsaKeyPair& test_key() {
  static const RsaKeyPair kp = [] {
    auto rng = HmacDrbg::from_seed(4242);
    return rsa_generate(1024, rng);
  }();
  return kp;
}

TEST(RsaTest, KeyInternalConsistency) {
  const auto& kp = test_key();
  EXPECT_EQ(kp.priv.p * kp.priv.q, kp.priv.n);
  EXPECT_EQ(kp.priv.n.bit_length(), 1024u);
  BigInt phi = (kp.priv.p - BigInt(1)) * (kp.priv.q - BigInt(1));
  EXPECT_EQ((kp.priv.d * kp.priv.e) % phi, BigInt(1));
  EXPECT_EQ((kp.priv.qinv * kp.priv.q) % kp.priv.p, BigInt(1));
  EXPECT_EQ(kp.pub.n, kp.priv.n);
}

TEST(RsaTest, SignVerifySha1RoundTrip) {
  const auto& kp = test_key();
  Bytes msg = to_bytes("GlobeDoc integrity certificate body");
  Bytes sig = rsa_sign_sha1(kp.priv, msg);
  EXPECT_EQ(sig.size(), kp.pub.modulus_bytes());
  EXPECT_TRUE(rsa_verify_sha1(kp.pub, msg, sig));
}

TEST(RsaTest, SignVerifySha256RoundTrip) {
  const auto& kp = test_key();
  Bytes msg = to_bytes("identity certificate body");
  Bytes sig = rsa_sign_sha256(kp.priv, msg);
  EXPECT_TRUE(rsa_verify_sha256(kp.pub, msg, sig));
  // Cross-algorithm confusion must fail.
  EXPECT_FALSE(rsa_verify_sha1(kp.pub, msg, sig));
}

TEST(RsaTest, TamperedMessageRejected) {
  const auto& kp = test_key();
  Bytes msg = to_bytes("original content");
  Bytes sig = rsa_sign_sha1(kp.priv, msg);
  Bytes tampered = to_bytes("original Content");
  EXPECT_FALSE(rsa_verify_sha1(kp.pub, tampered, sig));
}

TEST(RsaTest, TamperedSignatureRejected) {
  const auto& kp = test_key();
  Bytes msg = to_bytes("some message");
  Bytes sig = rsa_sign_sha1(kp.priv, msg);
  for (std::size_t pos : {std::size_t{0}, sig.size() / 2, sig.size() - 1}) {
    Bytes bad = sig;
    bad[pos] ^= 0x01;
    EXPECT_FALSE(rsa_verify_sha1(kp.pub, msg, bad)) << "pos=" << pos;
  }
}

TEST(RsaTest, WrongKeyRejected) {
  const auto& kp = test_key();
  auto rng = HmacDrbg::from_seed(999);
  RsaKeyPair other = rsa_generate(1024, rng);
  Bytes msg = to_bytes("message");
  Bytes sig = rsa_sign_sha1(kp.priv, msg);
  EXPECT_FALSE(rsa_verify_sha1(other.pub, msg, sig));
}

TEST(RsaTest, WrongSizeSignatureRejected) {
  const auto& kp = test_key();
  Bytes msg = to_bytes("message");
  Bytes sig = rsa_sign_sha1(kp.priv, msg);
  Bytes truncated(sig.begin(), sig.end() - 1);
  EXPECT_FALSE(rsa_verify_sha1(kp.pub, msg, truncated));
  Bytes extended = sig;
  extended.push_back(0);
  EXPECT_FALSE(rsa_verify_sha1(kp.pub, msg, extended));
}

TEST(RsaTest, EncryptDecryptRoundTrip) {
  const auto& kp = test_key();
  auto rng = HmacDrbg::from_seed(7);
  Bytes msg = to_bytes("pre-master secret 0123456789abcdef");
  auto ct = rsa_encrypt(kp.pub, msg, rng);
  ASSERT_TRUE(ct.is_ok());
  EXPECT_EQ(ct->size(), kp.pub.modulus_bytes());
  auto pt = rsa_decrypt(kp.priv, *ct);
  ASSERT_TRUE(pt.is_ok());
  EXPECT_EQ(*pt, msg);
}

TEST(RsaTest, EncryptionIsRandomized) {
  const auto& kp = test_key();
  auto rng = HmacDrbg::from_seed(8);
  Bytes msg = to_bytes("same message");
  auto a = rsa_encrypt(kp.pub, msg, rng);
  auto b = rsa_encrypt(kp.pub, msg, rng);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_NE(*a, *b);
}

TEST(RsaTest, OversizedPlaintextRejected) {
  const auto& kp = test_key();
  auto rng = HmacDrbg::from_seed(9);
  Bytes too_big(kp.pub.modulus_bytes() - 10, 0x41);
  auto r = rsa_encrypt(kp.pub, too_big, rng);
  EXPECT_EQ(r.code(), util::ErrorCode::kInvalidArgument);
}

TEST(RsaTest, CorruptCiphertextRejectedGracefully) {
  const auto& kp = test_key();
  auto rng = HmacDrbg::from_seed(10);
  auto ct = rsa_encrypt(kp.pub, to_bytes("secret"), rng);
  ASSERT_TRUE(ct.is_ok());
  Bytes bad = *ct;
  bad[5] ^= 0xff;
  auto pt = rsa_decrypt(kp.priv, bad);
  if (pt.is_ok()) {
    // Padding survived by chance (possible but wildly unlikely); payload
    // must still differ.
    EXPECT_NE(*pt, to_bytes("secret"));
  } else {
    EXPECT_EQ(pt.code(), util::ErrorCode::kProtocol);
  }
}

TEST(RsaTest, DecryptRejectsWrongLength) {
  const auto& kp = test_key();
  Bytes short_ct(kp.pub.modulus_bytes() - 1, 1);
  EXPECT_EQ(rsa_decrypt(kp.priv, short_ct).code(), util::ErrorCode::kInvalidArgument);
}

TEST(RsaTest, PublicKeySerializationRoundTrip) {
  const auto& kp = test_key();
  Bytes wire = kp.pub.serialize();
  auto parsed = RsaPublicKey::parse(wire);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(*parsed, kp.pub);
}

TEST(RsaTest, PublicKeyParseRejectsGarbage) {
  EXPECT_FALSE(RsaPublicKey::parse(to_bytes("not a key")).is_ok());
  EXPECT_FALSE(RsaPublicKey::parse(Bytes{}).is_ok());
  // Trailing garbage after a valid key.
  Bytes wire = test_key().pub.serialize();
  wire.push_back(0);
  EXPECT_FALSE(RsaPublicKey::parse(wire).is_ok());
}

TEST(RsaTest, PrivateKeySerializationRoundTrip) {
  const auto& kp = test_key();
  Bytes wire = kp.priv.serialize();
  auto parsed = RsaPrivateKey::parse(wire);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->n, kp.priv.n);
  EXPECT_EQ(parsed->d, kp.priv.d);
  // The parsed key must still sign correctly.
  Bytes msg = to_bytes("check");
  EXPECT_TRUE(rsa_verify_sha1(kp.pub, msg, rsa_sign_sha1(*parsed, msg)));
}

TEST(RsaTest, DeterministicKeygenFromSeed) {
  auto r1 = HmacDrbg::from_seed(31337);
  auto r2 = HmacDrbg::from_seed(31337);
  RsaKeyPair a = rsa_generate(512, r1);
  RsaKeyPair b = rsa_generate(512, r2);
  EXPECT_EQ(a.pub, b.pub);
}

TEST(RsaTest, SmallKeySignVerify) {
  auto rng = HmacDrbg::from_seed(606);
  RsaKeyPair kp = rsa_generate(512, rng);
  Bytes msg = to_bytes("small key message");
  EXPECT_TRUE(rsa_verify_sha1(kp.pub, msg, rsa_sign_sha1(kp.priv, msg)));
  EXPECT_TRUE(rsa_verify_sha256(kp.pub, msg, rsa_sign_sha256(kp.priv, msg)));
}

TEST(RsaTest, RejectsTooSmallModulusRequest) {
  auto rng = HmacDrbg::from_seed(1);
  EXPECT_THROW(rsa_generate(128, rng), std::invalid_argument);
}


TEST(RsaParseTest, RejectsOversizedModulus) {
  // A wire key claiming a modulus beyond kMaxRsaModulusBytes (8192 bits)
  // is a protocol error before BigInt::from_bytes materializes it; every
  // downstream modulus_bytes()-sized buffer stays capped by construction.
  util::Writer w;
  w.bytes(Bytes(kMaxRsaModulusBytes + 1, 0xFF));  // n
  w.bytes(Bytes{0x01, 0x00, 0x01});               // e
  auto key = RsaPublicKey::parse(w.take());
  EXPECT_FALSE(key.is_ok());
  EXPECT_EQ(key.code(), util::ErrorCode::kProtocol);
}
}  // namespace
}  // namespace globe::crypto
