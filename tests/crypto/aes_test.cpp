#include "crypto/aes.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "util/bytes.hpp"

namespace globe::crypto {
namespace {

using util::Bytes;
using util::hex_decode;
using util::hex_encode;

Aes::Block to_block(const Bytes& b) {
  Aes::Block blk{};
  std::copy(b.begin(), b.end(), blk.begin());
  return blk;
}

std::string encrypt_hex(const std::string& key_hex, const std::string& pt_hex) {
  Aes aes(hex_decode(key_hex));
  Aes::Block out;
  aes.encrypt_block(to_block(hex_decode(pt_hex)), out);
  return hex_encode(util::BytesView(out.data(), out.size()));
}

// FIPS-197 Appendix C known-answer vectors.
TEST(AesTest, Fips197Aes128) {
  EXPECT_EQ(encrypt_hex("000102030405060708090a0b0c0d0e0f",
                        "00112233445566778899aabbccddeeff"),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(AesTest, Fips197Aes192) {
  EXPECT_EQ(encrypt_hex("000102030405060708090a0b0c0d0e0f1011121314151617",
                        "00112233445566778899aabbccddeeff"),
            "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(AesTest, Fips197Aes256) {
  EXPECT_EQ(encrypt_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
                        "00112233445566778899aabbccddeeff"),
            "8ea2b7ca516745bfeafc49904b496089");
}

// NIST SP 800-38A ECB vector.
TEST(AesTest, Sp800_38aEcbAes128) {
  EXPECT_EQ(encrypt_hex("2b7e151628aed2a6abf7158809cf4f3c",
                        "6bc1bee22e409f96e93d7e117393172a"),
            "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(AesTest, DecryptInvertsEncrypt) {
  for (std::size_t key_size : {16u, 24u, 32u}) {
    auto rng = HmacDrbg::from_seed(key_size);
    Aes aes(rng.bytes(key_size));
    Aes::Block pt = to_block(rng.bytes(16));
    Aes::Block ct, back;
    aes.encrypt_block(pt, ct);
    aes.decrypt_block(ct, back);
    EXPECT_EQ(back, pt) << "key_size=" << key_size;
    EXPECT_NE(ct, pt);
  }
}

TEST(AesTest, RejectsBadKeySize) {
  EXPECT_THROW(Aes(Bytes(15)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(0)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(33)), std::invalid_argument);
}

TEST(AesCtrTest, FirstBlockMatchesManualConstruction) {
  auto rng = HmacDrbg::from_seed(11);
  Bytes key = rng.bytes(16);
  Bytes nonce = rng.bytes(12);

  // Expected keystream block 0 = AES(key, nonce || be32(0)).
  Aes aes(key);
  Aes::Block counter{};
  std::copy(nonce.begin(), nonce.end(), counter.begin());
  Aes::Block ks;
  aes.encrypt_block(counter, ks);

  Bytes pt(16, 0);
  AesCtr ctr(key, nonce);
  Bytes ct = ctr.process_copy(pt);
  EXPECT_EQ(ct, Bytes(ks.begin(), ks.end()));
}

TEST(AesCtrTest, EncryptDecryptRoundTrip) {
  auto rng = HmacDrbg::from_seed(12);
  Bytes key = rng.bytes(32);
  Bytes nonce = rng.bytes(12);
  Bytes msg = rng.bytes(1000);

  AesCtr enc(key, nonce);
  Bytes ct = enc.process_copy(msg);
  EXPECT_NE(ct, msg);

  AesCtr dec(key, nonce);
  EXPECT_EQ(dec.process_copy(ct), msg);
}

TEST(AesCtrTest, StreamingMatchesOneShot) {
  auto rng = HmacDrbg::from_seed(13);
  Bytes key = rng.bytes(16);
  Bytes nonce = rng.bytes(12);
  Bytes msg = rng.bytes(100);

  AesCtr one(key, nonce);
  Bytes expected = one.process_copy(msg);

  AesCtr chunked(key, nonce);
  Bytes out;
  for (std::size_t i = 0; i < msg.size(); i += 7) {
    std::size_t n = std::min<std::size_t>(7, msg.size() - i);
    Bytes piece(msg.begin() + static_cast<std::ptrdiff_t>(i),
                msg.begin() + static_cast<std::ptrdiff_t>(i + n));
    chunked.process(piece);
    util::append(out, piece);
  }
  EXPECT_EQ(out, expected);
}

TEST(AesCtrTest, CounterAdvancesAcrossBlocks) {
  auto rng = HmacDrbg::from_seed(14);
  Bytes key = rng.bytes(16);
  Bytes nonce = rng.bytes(12);
  Bytes zeros(64, 0);
  AesCtr ctr(key, nonce);
  Bytes ks = ctr.process_copy(zeros);
  // Keystream blocks must be pairwise distinct.
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      EXPECT_FALSE(std::equal(ks.begin() + 16 * i, ks.begin() + 16 * (i + 1),
                              ks.begin() + 16 * j));
    }
  }
}

TEST(AesCtrTest, RejectsBadNonceSize) {
  Bytes key(16, 1);
  EXPECT_THROW(AesCtr(key, Bytes(11)), std::invalid_argument);
  EXPECT_THROW(AesCtr(key, Bytes(16)), std::invalid_argument);
}

}  // namespace
}  // namespace globe::crypto
