// Parser robustness: every wire format that can arrive from an untrusted
// peer is fed (a) pure random bytes and (b) bit-flipped / truncated /
// extended mutations of valid encodings.  Parsers must fail gracefully
// (error Result or documented SerialError) — never crash, never read out
// of bounds (pair with ASAN for the latter).
#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "crypto/merkle.hpp"
#include "crypto/rsa.hpp"
#include "globedoc/dynamic.hpp"
#include "globedoc/identity.hpp"
#include "globedoc/integrity.hpp"
#include "globedoc/object.hpp"
#include "globedoc/server.hpp"
#include "http/parser.hpp"
#include "http/secure_channel.hpp"
#include "location/tree.hpp"
#include "naming/records.hpp"
#include "naming/service.hpp"

namespace globe {
namespace {

using util::Bytes;
using util::BytesView;

/// Invokes every parser on `data`; throws/aborts only on a bug.
void feed_all_parsers(BytesView data) {
  (void)globedoc::PageElement::parse(data);
  (void)globedoc::ReplicaState::parse(data);
  (void)globedoc::IntegrityCertificate::parse(data);
  (void)globedoc::IdentityCertificate::parse(data);
  (void)globedoc::DynamicReceipt::parse(data);
  (void)globedoc::HostingGrant::parse(data);
  (void)globedoc::Oid::from_bytes(data);
  (void)naming::OidRecord::parse(data);
  (void)naming::DelegationRecord::parse(data);
  (void)naming::SignedBlob::parse(data);
  (void)naming::NamingReply::parse(data);
  (void)location::LookupReply::parse(data);
  (void)crypto::RsaPublicKey::parse(data);
  (void)crypto::RsaPrivateKey::parse(data);
  (void)http::parse_request(data);
  (void)http::parse_response(data);
  (void)http::verify_certificate(data, "any.name");
  try {
    (void)crypto::MerkleProof::parse(data);  // documented: throws SerialError
  } catch (const util::SerialError&) {
  }
  http::MessageFramer framer;
  framer.set_max_message(1 << 20);
  if (framer.feed(data).is_ok() && framer.has_message()) {
    (void)framer.take_message();
  }
}

class RandomBytesFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RandomBytesFuzz, ParsersSurviveRandomInput) {
  auto rng = crypto::HmacDrbg::from_seed(static_cast<std::uint64_t>(GetParam()));
  for (std::size_t len : {0u, 1u, 2u, 3u, 4u, 7u, 8u, 16u, 20u, 64u, 257u, 4096u}) {
    Bytes data = rng.bytes(len);
    feed_all_parsers(data);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBytesFuzz, ::testing::Range(0, 16));

/// Collects one valid encoding of every wire format.
std::vector<Bytes> valid_encodings() {
  auto rng = crypto::HmacDrbg::from_seed(4040);
  auto keys = crypto::rsa_generate(512, rng);
  auto oid = globedoc::Oid::from_public_key(keys.pub);

  std::vector<Bytes> out;

  globedoc::PageElement element{"index.html", "text/html",
                                util::to_bytes("<html>content</html>")};
  out.push_back(element.serialize());

  globedoc::GlobeDocObject object(keys);
  object.put_element(element);
  object.sign_state(0, util::seconds(60));
  out.push_back(object.snapshot().serialize());
  out.push_back(object.snapshot().certificate.serialize());

  globedoc::CertificateAuthority ca("CA", keys);
  out.push_back(ca.issue("Subject Org", oid, util::seconds(99)).serialize());

  globedoc::DynamicReceipt receipt;
  receipt.oid = oid;
  receipt.template_name = "t";
  receipt.query = "q";
  receipt.response_sha1 = crypto::Sha1::digest_bytes(util::to_bytes("x"));
  receipt.server_name = "s";
  receipt.signature = crypto::rsa_sign_sha256(keys.priv, receipt.signed_body());
  out.push_back(receipt.serialize());

  globedoc::HostingGrant grant;
  grant.accepted = true;
  grant.lease = 12345;
  out.push_back(grant.serialize());

  naming::OidRecord oid_record;
  oid_record.name = "doc.vu.nl";
  oid_record.oid = oid.to_bytes();
  oid_record.expires = 777;
  out.push_back(oid_record.serialize());

  naming::DelegationRecord delegation;
  delegation.zone = "vu.nl";
  delegation.child_public_key = keys.pub.serialize();
  delegation.name_server = net::Endpoint{net::HostId{1}, 53};
  out.push_back(delegation.serialize());

  naming::NamingReply reply;
  reply.kind = naming::NamingReply::Kind::kAnswer;
  reply.blob.record = oid_record.serialize();
  reply.blob.signature = crypto::rsa_sign_sha256(keys.priv, reply.blob.record);
  out.push_back(reply.serialize());

  location::LookupReply lookup;
  lookup.found = true;
  lookup.addresses = {net::Endpoint{net::HostId{2}, 8000}};
  lookup.has_parent = true;
  lookup.parent = net::Endpoint{net::HostId{0}, 100};
  out.push_back(lookup.serialize());

  out.push_back(keys.pub.serialize());
  out.push_back(keys.priv.serialize());

  http::HttpRequest request;
  request.method = "GET";
  request.target = "/a/b.html";
  request.headers.set("Host", "example.org");
  request.body = util::to_bytes("body");
  out.push_back(request.serialize());

  out.push_back(http::make_certificate("host.name", keys));

  crypto::MerkleTree tree({util::to_bytes("a"), util::to_bytes("b"),
                           util::to_bytes("c")});
  out.push_back(tree.prove(1).serialize());

  return out;
}

class MutationFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MutationFuzz, ParsersSurviveMutatedValidInput) {
  static const std::vector<Bytes> kValid = valid_encodings();
  util::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);

  for (const Bytes& original : kValid) {
    // Bit flips at random positions.
    for (int flip = 0; flip < 16; ++flip) {
      Bytes mutated = original;
      if (mutated.empty()) continue;
      std::size_t pos = rng.below(mutated.size());
      mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.below(8));
      feed_all_parsers(mutated);
    }
    // Truncations.
    for (int cut = 0; cut < 8; ++cut) {
      if (original.empty()) continue;
      Bytes truncated(original.begin(),
                      original.begin() +
                          static_cast<std::ptrdiff_t>(rng.below(original.size())));
      feed_all_parsers(truncated);
    }
    // Extensions with trailing garbage.
    Bytes extended = original;
    for (int i = 0; i < 9; ++i) extended.push_back(static_cast<std::uint8_t>(rng.next()));
    feed_all_parsers(extended);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz, ::testing::Range(0, 8));

TEST(FuzzSanity, ValidEncodingsActuallyParse) {
  // Guards the corpus itself: each valid encoding must parse by at least
  // its own parser (otherwise the mutation fuzz would be vacuous).
  auto corpus = valid_encodings();
  EXPECT_GE(corpus.size(), 14u);
  EXPECT_TRUE(globedoc::PageElement::parse(corpus[0]).is_ok());
  EXPECT_TRUE(globedoc::ReplicaState::parse(corpus[1]).is_ok());
  EXPECT_TRUE(globedoc::IntegrityCertificate::parse(corpus[2]).is_ok());
  EXPECT_TRUE(globedoc::IdentityCertificate::parse(corpus[3]).is_ok());
  EXPECT_TRUE(globedoc::DynamicReceipt::parse(corpus[4]).is_ok());
  EXPECT_TRUE(globedoc::HostingGrant::parse(corpus[5]).is_ok());
}

}  // namespace
}  // namespace globe
