// libFuzzer harness for the fetch_many wire codecs (DESIGN.md §12).  Both
// directions decode bytes from the other side of a trust boundary: requests
// arrive at object servers from arbitrary clients, responses arrive at
// caches and importers from untrusted replicas.
//
// The input's first byte selects the direction; the rest is the payload.
//
// Properties checked beyond "does not crash / no ASan report":
//   * accepted inputs round-trip: parse(serialize(parse(x))) succeeds and
//     preserves the decoded view;
//   * decoded batches respect the kFetchManyMaxElements bound (a hostile
//     peer cannot smuggle an oversized batch past the parser);
//   * absent items carry no payload bytes.
//
// Build with -DGLOBE_FUZZ=ON under Clang for the real fuzzer; otherwise a
// replay main() turns the seed corpus into a ctest regression.
#include <cstdint>

#include "globedoc/fetch_many.hpp"
#include "tests/fuzz/fuzz_corpus_main.hpp"
#include "util/bytes.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using globe::globedoc::FetchManyRequest;
  using globe::globedoc::FetchManyResponse;
  using globe::globedoc::kFetchManyMaxElements;
  if (size == 0) return 0;
  globe::util::BytesView payload(data + 1, size - 1);

  if ((data[0] & 1) == 0) {
    auto req = FetchManyRequest::parse(payload);
    if (!req.is_ok()) return 0;
    if (req->names.empty() || req->names.size() > kFetchManyMaxElements) {
      __builtin_trap();  // parser admitted an out-of-bounds batch
    }
    auto again = FetchManyRequest::parse(req->serialize());
    if (!again.is_ok()) __builtin_trap();  // accepted but not re-parseable
    if (again->oid != req->oid || again->include_cert != req->include_cert ||
        again->names != req->names) {
      __builtin_trap();  // round-trip changed the decoded view
    }
  } else {
    auto resp = FetchManyResponse::parse(payload);
    if (!resp.is_ok()) return 0;
    if (resp->items.empty() || resp->items.size() > kFetchManyMaxElements) {
      __builtin_trap();
    }
    auto again = FetchManyResponse::parse(resp->serialize());
    if (!again.is_ok()) __builtin_trap();
    if (again->certificate != resp->certificate ||
        again->items.size() != resp->items.size()) {
      __builtin_trap();
    }
    for (std::size_t i = 0; i < resp->items.size(); ++i) {
      if (again->items[i].found != resp->items[i].found ||
          again->items[i].element != resp->items[i].element) {
        __builtin_trap();
      }
      if (!resp->items[i].found && !resp->items[i].element.empty()) {
        __builtin_trap();  // absent item smuggled payload bytes
      }
    }
  }
  return 0;
}

GLOBE_FUZZ_REPLAY_MAIN(GLOBE_FUZZ_CORPUS_DIR)
