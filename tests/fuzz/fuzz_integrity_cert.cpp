// libFuzzer harness for the integrity-certificate wire parser — the most
// security-critical untrusted input in the system: every byte comes from a
// potentially hostile replica, and everything a client trusts hangs off
// this certificate (paper §3.2.2).
//
// Properties checked beyond "does not crash / no ASan report":
//   * accepted inputs round-trip: parse(serialize(parse(x))) succeeds and
//     preserves the decoded view;
//   * decoded entries are internally consistent (digest size).
//
// Build with -DGLOBE_FUZZ=ON under Clang for the real fuzzer; otherwise a
// replay main() turns the seed corpus into a ctest regression.
#include <cstdint>

#include "globedoc/integrity.hpp"
#include "tests/fuzz/fuzz_corpus_main.hpp"
#include "util/bytes.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using globe::globedoc::IntegrityCertificate;
  globe::util::BytesView view(data, size);
  auto cert = IntegrityCertificate::parse(view);
  if (!cert.is_ok()) return 0;  // graceful rejection is the common case

  auto again = IntegrityCertificate::parse(cert->serialize());
  if (!again.is_ok()) __builtin_trap();  // accepted but not re-parseable
  if (again->oid() != cert->oid() || again->version() != cert->version() ||
      again->entries().size() != cert->entries().size()) {
    __builtin_trap();  // round-trip changed the decoded view
  }
  for (const auto& entry : cert->entries()) {
    if (entry.sha1.size() != 20) __builtin_trap();  // malformed digest kept
  }
  return 0;
}

GLOBE_FUZZ_REPLAY_MAIN(GLOBE_FUZZ_CORPUS_DIR)
