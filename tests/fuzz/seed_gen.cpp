// Regenerates the checked-in fuzz seed corpora (tests/fuzz/corpus/) from
// real serialized values, so the seeds track the wire formats.  Usage:
//
//   cmake --build build --target fuzz_seed_gen
//   ./build/tests/fuzz_seed_gen tests/fuzz/corpus
//
// Deterministic: fixed DRBG seeds, virtual timestamps.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "crypto/drbg.hpp"
#include "crypto/rsa.hpp"
#include "globedoc/fetch_many.hpp"
#include "globedoc/integrity.hpp"
#include "globedoc/object.hpp"
#include "naming/records.hpp"
#include "util/serial.hpp"

namespace fs = std::filesystem;
using globe::util::Bytes;

static void write_file(const fs::path& path, const Bytes& data) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  std::printf("wrote %s (%zu bytes)\n", path.string().c_str(), data.size());
}

int main(int argc, char** argv) {
  fs::path root = argc > 1 ? argv[1] : "tests/fuzz/corpus";
  fs::create_directories(root / "integrity_cert");
  fs::create_directories(root / "naming_record");

  auto rng = globe::crypto::HmacDrbg::from_seed(20260806);
  auto keys = globe::crypto::rsa_generate(512, rng);

  // --- integrity_cert seeds ------------------------------------------------
  {
    using globe::globedoc::GlobeDocObject;
    using globe::globedoc::IntegrityCertificate;
    GlobeDocObject object(keys);
    object.put_element({"index.html", "text/html",
                        globe::util::to_bytes("<html>seed</html>")});
    object.put_element({"logo.gif", "image/gif", Bytes(64, 0x42)});
    const IntegrityCertificate& two =
        object.sign_state(1000, globe::util::seconds(3600));
    write_file(root / "integrity_cert" / "valid_two_entries.bin",
               two.serialize());

    object.remove_element("logo.gif");
    const IntegrityCertificate& one =
        object.sign_state(2000, globe::util::seconds(60));
    Bytes wire = one.serialize();
    write_file(root / "integrity_cert" / "valid_one_entry.bin", wire);

    Bytes truncated(wire.begin(), wire.begin() + wire.size() / 2);
    write_file(root / "integrity_cert" / "truncated.bin", truncated);
    write_file(root / "integrity_cert" / "empty.bin", Bytes{});

    // A certificate body claiming 2^32-1 entries in a ~35-byte frame: the
    // entry count must die at the protocol ceiling before reserve().
    {
      globe::util::Writer body;
      body.raw(Bytes(globe::globedoc::Oid::kSize, 0x7));
      body.u64(1);            // version
      body.u32(0xFFFFFFFFu);  // forged entry count
      globe::util::Writer w;
      w.bytes(body.take());
      w.bytes(globe::util::to_bytes("sig"));
      write_file(root / "integrity_cert" / "forged_entry_count.bin",
                 w.take());
    }
  }

  // --- fetch_many seeds ----------------------------------------------------
  // The harness reads a direction byte first: 0x00 = request, 0x01 = response.
  {
    using globe::globedoc::FetchManyRequest;
    using globe::globedoc::FetchManyResponse;
    using globe::globedoc::Oid;
    fs::create_directories(root / "fetch_many");
    auto tag = [](std::uint8_t direction, const Bytes& wire) {
      Bytes out;
      out.reserve(wire.size() + 1);
      out.push_back(direction);
      out.insert(out.end(), wire.begin(), wire.end());
      return out;
    };

    FetchManyRequest request;
    request.oid = Oid::from_bytes(Bytes(Oid::kSize, 0xA5)).value();
    request.include_cert = true;
    request.names = {"index.html", "logo.gif"};
    Bytes req_wire = request.serialize();
    write_file(root / "fetch_many" / "request_two_names.bin",
               tag(0x00, req_wire));
    write_file(root / "fetch_many" / "request_truncated.bin",
               tag(0x00, Bytes(req_wire.begin(),
                               req_wire.begin() + req_wire.size() / 2)));

    // Out-of-bounds batch sizes the parser must reject, as seeds so the
    // fuzzer explores the boundary.
    request.names.clear();
    write_file(root / "fetch_many" / "request_empty_batch.bin",
               tag(0x00, request.serialize()));
    for (std::size_t i = 0; i <= globe::globedoc::kFetchManyMaxElements; ++i) {
      request.names.push_back("el" + std::to_string(i));
    }
    write_file(root / "fetch_many" / "request_oversized_batch.bin",
               tag(0x00, request.serialize()));

    FetchManyResponse response;
    response.certificate = globe::util::to_bytes("opaque-certificate-blob");
    response.items.push_back({true, globe::util::to_bytes("element-bytes")});
    response.items.push_back({false, {}});
    Bytes resp_wire = response.serialize();
    write_file(root / "fetch_many" / "response_cert_two_items.bin",
               tag(0x01, resp_wire));
    write_file(root / "fetch_many" / "response_truncated.bin",
               tag(0x01, Bytes(resp_wire.begin(),
                               resp_wire.begin() + resp_wire.size() / 2)));
    write_file(root / "fetch_many" / "empty.bin", Bytes{});

    // Forged count headers: a few bytes claiming 2^32-1 elements.  The
    // parser must hit the protocol ceiling (util::checked_count) before
    // reserving — seeding the boundary keeps the fuzzer exploring it.
    {
      globe::util::Writer w;
      w.raw(Bytes(Oid::kSize, 0xA5));
      w.u8(0);             // include_cert = false
      w.u32(0xFFFFFFFFu);  // forged element count
      write_file(root / "fetch_many" / "request_forged_count.bin",
                 tag(0x00, w.take()));
      globe::util::Writer rw;
      rw.u8(0);             // no certificate
      rw.u32(0xFFFFFFFFu);  // forged item count
      write_file(root / "fetch_many" / "response_forged_count.bin",
                 tag(0x01, rw.take()));
    }
  }

  // --- naming_record seeds -------------------------------------------------
  {
    using namespace globe::naming;
    OidRecord oid_rec;
    oid_rec.name = "news.vu.nl";
    oid_rec.oid = Bytes(kOidSize, 0xA5);
    oid_rec.expires = 5000;
    write_file(root / "naming_record" / "oid_record.bin", oid_rec.serialize());

    DelegationRecord del;
    del.zone = "vu.nl";
    del.child_public_key = keys.pub.serialize();
    del.name_server = globe::net::Endpoint{globe::net::HostId{7}, 53};
    del.expires = 5000;
    Bytes del_wire = del.serialize();
    write_file(root / "naming_record" / "delegation_record.bin", del_wire);

    SignedBlob blob;
    blob.record = oid_rec.serialize();
    blob.signature = Bytes(64, 0x5A);
    write_file(root / "naming_record" / "signed_blob.bin", blob.serialize());

    Bytes truncated(del_wire.begin(), del_wire.begin() + del_wire.size() / 3);
    write_file(root / "naming_record" / "truncated.bin", truncated);
    write_file(root / "naming_record" / "empty.bin", Bytes{});
  }
  return 0;
}
