// Hybrid URL fuzzing: the URL parser sees attacker-chosen request targets
// (any browser can point at the proxy), so it must never crash and must
// uphold its round-trip contract on every input it accepts.
#include <gtest/gtest.h>

#include <string>

#include "crypto/drbg.hpp"
#include "globedoc/hybrid_url.hpp"

namespace globe::globedoc {
namespace {

using util::Bytes;

/// Whatever parse accepts must round-trip through to_string -> parse.
void check_round_trip(std::string_view input) {
  auto parsed = parse_hybrid_url(input);
  if (!parsed.is_ok()) return;
  // Accepted URLs always have a non-empty object and element.
  EXPECT_FALSE(parsed->object_name.empty()) << input;
  EXPECT_FALSE(parsed->element_name.empty()) << input;

  auto again = parse_hybrid_url(parsed->to_string());
  ASSERT_TRUE(again.is_ok()) << input;
  EXPECT_EQ(again->object_name, parsed->object_name) << input;
  EXPECT_EQ(again->element_name, parsed->element_name) << input;
}

TEST(HybridUrlFuzz, EdgeCases) {
  const char* cases[] = {
      "",
      "/",
      "//",
      "http://globe/",
      "http://globe//",
      "http://globe///",
      "globe://",
      "globe:///x",
      "/globe/",
      "/globe//",
      "http://globe/name",        // no element
      "http://globe/name/",       // empty element name
      "http://globe//element",    // empty object name
      "globe:///element",         // empty object name (scheme form)
      "/globe/a/",                // empty element (target form)
      "http://globe/a/b",         // minimal valid
      "HTTP://GLOBE/a/b",         // prefixes are case-sensitive
      "http://globe/a/b/c/d/e",   // deep element path
      "http://globe/a//b",        // empty path segment inside element
      "http://glob/a/b",          // near-miss prefix
      "http://globex/a/b",
      " http://globe/a/b",        // leading whitespace not stripped
      "http://globe /a/b",
  };
  for (const char* c : cases) {
    SCOPED_TRACE(c);
    (void)is_hybrid_url(c);
    check_round_trip(c);
  }

  // Empty element name is malformed, not an empty fetch.
  EXPECT_FALSE(parse_hybrid_url("http://globe/name/").is_ok());
  EXPECT_FALSE(parse_hybrid_url("globe://name/").is_ok());
  // Empty object name is malformed.
  EXPECT_FALSE(parse_hybrid_url("http://globe//element").is_ok());
}

TEST(HybridUrlFuzz, PercentEncodingPassesThroughVerbatim) {
  // The parser does not percent-decode: the element name is matched against
  // the integrity certificate exactly as published, so "%2e%2e" must stay
  // "%2e%2e" (no decode-then-traverse confusion).
  auto url = parse_hybrid_url("http://globe/news.vu.nl/img%2Flogo.gif");
  ASSERT_TRUE(url.is_ok());
  EXPECT_EQ(url->object_name, "news.vu.nl");
  EXPECT_EQ(url->element_name, "img%2Flogo.gif");

  auto dotdot = parse_hybrid_url("http://globe/news.vu.nl/%2e%2e/secret");
  ASSERT_TRUE(dotdot.is_ok());
  EXPECT_EQ(dotdot->element_name, "%2e%2e/secret");
  check_round_trip("http://globe/a%20b/c%00d");
}

TEST(HybridUrlFuzz, OversizedNames) {
  // OID-sized and far-oversized hex names parse without truncation: length
  // limits are the verifier's job (a bogus name simply fails to resolve).
  std::string oid_hex(40, 'a');        // SHA-1 OID as hex
  std::string oversized(100'000, 'b');  // pathological
  for (const std::string& object : {oid_hex, oversized}) {
    auto url = parse_hybrid_url("http://globe/" + object + "/e");
    ASSERT_TRUE(url.is_ok());
    EXPECT_EQ(url->object_name.size(), object.size());
    EXPECT_EQ(url->element_name, "e");
  }
  auto url = parse_hybrid_url("globe://o/" + oversized);
  ASSERT_TRUE(url.is_ok());
  EXPECT_EQ(url->element_name.size(), oversized.size());
}

class HybridUrlRandomFuzz : public ::testing::TestWithParam<int> {};

TEST_P(HybridUrlRandomFuzz, ParserSurvivesRandomInput) {
  auto rng = crypto::HmacDrbg::from_seed(static_cast<std::uint64_t>(GetParam()));
  const std::string prefixes[] = {"", "http://globe/", "globe://", "/globe/",
                                  "http://globe", "globe:/"};
  for (std::size_t len : {0u, 1u, 2u, 5u, 16u, 64u, 255u, 1024u}) {
    Bytes raw = rng.bytes(len);
    std::string tail(raw.begin(), raw.end());
    for (const std::string& prefix : prefixes) {
      std::string input = prefix + tail;
      (void)is_hybrid_url(input);
      check_round_trip(input);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridUrlRandomFuzz, ::testing::Range(0, 16));

TEST(HybridUrlFuzz, MutatedValidUrls) {
  auto rng = crypto::HmacDrbg::from_seed(777);
  const std::string valid = "http://globe/news.vu.nl/img/logo.gif";
  for (int round = 0; round < 200; ++round) {
    std::string mutated = valid;
    Bytes r = rng.bytes(3);
    std::size_t pos = r[0] % mutated.size();
    switch (r[1] % 3) {
      case 0: mutated[pos] = static_cast<char>(r[2]); break;           // flip
      case 1: mutated.erase(pos, 1 + r[2] % 4); break;                 // cut
      case 2: mutated.insert(pos, 1, static_cast<char>(r[2])); break;  // grow
    }
    (void)is_hybrid_url(mutated);
    check_round_trip(mutated);
  }
}

}  // namespace
}  // namespace globe::globedoc
