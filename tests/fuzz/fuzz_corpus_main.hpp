// Replay driver for the libFuzzer harnesses when the toolchain has no
// -fsanitize=fuzzer (GCC, or Clang without GLOBE_FUZZ): runs
// LLVMFuzzerTestOneInput over every file of a seed-corpus directory, so the
// checked-in corpus doubles as a plain ctest regression.  Under
// GLOBE_FUZZ_LIBFUZZER the real libFuzzer driver provides main().
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

#ifndef GLOBE_FUZZ_LIBFUZZER
inline int globe_replay_corpus(int argc, char** argv,
                               const char* default_dir) {
  namespace fs = std::filesystem;
  std::vector<fs::path> inputs;
  auto add = [&inputs](const fs::path& p) {
    if (fs::is_directory(p)) {
      for (const auto& e : fs::directory_iterator(p)) {
        if (e.is_regular_file()) inputs.push_back(e.path());
      }
    } else if (fs::exists(p)) {
      inputs.push_back(p);
    }
  };
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) add(argv[i]);
  } else {
    add(default_dir);
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "no corpus inputs found (default: %s)\n",
                 default_dir);
    return 2;  // an empty replay would be a vacuous green
  }
  std::size_t ran = 0;
  for (const auto& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> buf((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(buf.data()),
                           buf.size());
    ++ran;
  }
  std::printf("replayed %zu corpus input(s), no crash\n", ran);
  return 0;
}

#define GLOBE_FUZZ_REPLAY_MAIN(default_dir)              \
  int main(int argc, char** argv) {                      \
    return globe_replay_corpus(argc, argv, default_dir); \
  }
#else
#define GLOBE_FUZZ_REPLAY_MAIN(default_dir)
#endif
