// libFuzzer harness for the secure-naming wire parsers: OidRecord,
// DelegationRecord and the SignedBlob envelope — the formats a resolver
// accepts from (possibly compromised) name servers before any signature
// has been checked (paper §3.1.1).
//
// Properties beyond "no crash": accepted records round-trip through
// serialize/parse with the decoded fields preserved.
#include <cstdint>

#include "naming/records.hpp"
#include "tests/fuzz/fuzz_corpus_main.hpp"
#include "util/bytes.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace globe::naming;
  globe::util::BytesView view(data, size);

  if (auto rec = OidRecord::parse(view); rec.is_ok()) {
    auto again = OidRecord::parse(rec->serialize());
    if (!again.is_ok()) __builtin_trap();
    if (again->name != rec->name || again->oid != rec->oid ||
        again->expires != rec->expires) {
      __builtin_trap();
    }
  }
  if (auto rec = DelegationRecord::parse(view); rec.is_ok()) {
    auto again = DelegationRecord::parse(rec->serialize());
    if (!again.is_ok()) __builtin_trap();
    if (again->zone != rec->zone ||
        again->child_public_key != rec->child_public_key) {
      __builtin_trap();
    }
  }
  if (auto blob = SignedBlob::parse(view); blob.is_ok()) {
    auto again = SignedBlob::parse(blob->serialize());
    if (!again.is_ok()) __builtin_trap();
    if (again->record != blob->record ||
        again->signature != blob->signature) {
      __builtin_trap();
    }
  }
  return 0;
}

GLOBE_FUZZ_REPLAY_MAIN(GLOBE_FUZZ_CORPUS_DIR)
