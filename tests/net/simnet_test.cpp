#include "net/simnet.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace globe::net {
namespace {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Result;

MessageHandler echo_handler() {
  return [](ServerContext&, BytesView req) -> Result<Bytes> {
    return Bytes(req.begin(), req.end());
  };
}

struct TwoHostFixture : ::testing::Test {
  void SetUp() override {
    a = net.add_host({"a", CpuModel{}});
    b = net.add_host({"b", CpuModel{}});
    // 10ms one-way, 1 MB/s.
    net.set_link(a, b, {util::millis(10), 1e6});
    server = Endpoint{b, 80};
  }
  SimNet net;
  HostId a, b;
  Endpoint server;
};

TEST_F(TwoHostFixture, EchoRoundTrip) {
  net.bind(server, echo_handler());
  auto flow = net.open_flow(a);
  auto r = flow->call(server, util::to_bytes("ping"));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(util::to_string(*r), "ping");
}

TEST_F(TwoHostFixture, TimeAdvancesByLinkAndCpu) {
  net.bind(server, echo_handler());
  auto flow = net.open_flow(a);
  Bytes req(1000, 'x');
  auto r = flow->call(server, req);
  ASSERT_TRUE(r.is_ok());
  // Connection setup 2*10ms, two one-way trips at 10ms each with ~1ms
  // serialization each way, plus 3ms server request overhead.
  util::SimTime t = flow->now();
  EXPECT_GT(t, util::millis(40));
  EXPECT_LT(t, util::millis(60));
}

TEST_F(TwoHostFixture, SecondCallSkipsConnectionSetup) {
  net.bind(server, echo_handler());
  auto flow = net.open_flow(a);
  (void)flow->call(server, util::to_bytes("x"));
  util::SimTime t1 = flow->now();
  (void)flow->call(server, util::to_bytes("x"));
  util::SimTime t2 = flow->now();
  // Second call is one connection round trip (20ms) cheaper.
  EXPECT_LT(t2 - t1, t1 - util::millis(15));
}

TEST_F(TwoHostFixture, ResetConnectionsRestoresSetupCost) {
  net.bind(server, echo_handler());
  auto flow = net.open_flow(a);
  (void)flow->call(server, util::to_bytes("x"));
  util::SimTime t1 = flow->now();
  flow->reset_connections();
  (void)flow->call(server, util::to_bytes("x"));
  util::SimTime second_duration = flow->now() - t1;
  EXPECT_GT(second_duration, util::millis(40));
}

TEST_F(TwoHostFixture, LargerPayloadTakesLonger) {
  net.bind(server, echo_handler());
  auto f1 = net.open_flow(a);
  (void)f1->call(server, Bytes(1000, 'x'));
  auto f2 = net.open_flow(a);
  (void)f2->call(server, Bytes(1000000, 'x'));
  // 1 MB at 1 MB/s adds ~1s each way (echo returns it too).
  EXPECT_GT(f2->now() - f1->now(), util::seconds(1));
}

TEST_F(TwoHostFixture, UnboundEndpointUnavailable) {
  auto flow = net.open_flow(a);
  auto r = flow->call(Endpoint{b, 9999}, util::to_bytes("x"));
  EXPECT_EQ(r.code(), ErrorCode::kUnavailable);
  EXPECT_GT(flow->now(), 0u);  // the refused connection still costs a round trip
}

TEST_F(TwoHostFixture, DownLinkUnavailable) {
  net.bind(server, echo_handler());
  net.set_link_down(a, b, true);
  auto flow = net.open_flow(a);
  EXPECT_EQ(flow->call(server, util::to_bytes("x")).code(), ErrorCode::kUnavailable);
  net.set_link_down(a, b, false);
  EXPECT_TRUE(flow->call(server, util::to_bytes("x")).is_ok());
}

TEST_F(TwoHostFixture, HandlerChargesAdvanceTime) {
  // Two identical topologies so the flows don't queue behind each other.
  util::SimTime elapsed[2];
  for (int variant = 0; variant < 2; ++variant) {
    SimNet n;
    HostId ca = n.add_host({"a", CpuModel{}});
    HostId cb = n.add_host({"b", CpuModel{}});
    n.set_link(ca, cb, {util::millis(10), 1e6});
    Endpoint ep{cb, 80};
    n.bind(ep, [variant](ServerContext& ctx, BytesView req) -> Result<Bytes> {
      if (variant == 1) ctx.charge(CpuOp::kRsaSign, 1);
      return Bytes(req.begin(), req.end());
    });
    auto f = n.open_flow(ca);
    (void)f->call(ep, util::to_bytes("x"));
    elapsed[variant] = f->now();
  }
  EXPECT_NEAR(static_cast<double>(elapsed[1] - elapsed[0]),
              static_cast<double>(CpuModel{}.rsa_sign),
              static_cast<double>(util::millis(1)));
}

TEST_F(TwoHostFixture, ClientChargeUsesLocalCpuModel) {
  auto flow = net.open_flow(a);
  CpuModel model;  // hosts use the default model in this fixture
  flow->charge(CpuOp::kSha1, static_cast<std::uint64_t>(model.sha1_mb_s * 1e6));
  EXPECT_NEAR(static_cast<double>(flow->now()), static_cast<double>(util::seconds(1)),
              static_cast<double>(util::millis(20)));
  EXPECT_EQ(flow->client_cpu(), flow->now());
}

TEST_F(TwoHostFixture, HandlerExceptionBecomesInternalError) {
  net.bind(server, [](ServerContext&, BytesView) -> Result<Bytes> {
    throw std::runtime_error("boom");
  });
  auto flow = net.open_flow(a);
  auto r = flow->call(server, util::to_bytes("x"));
  EXPECT_EQ(r.code(), ErrorCode::kInternal);
}

TEST_F(TwoHostFixture, ErrorStatusPropagates) {
  net.bind(server, [](ServerContext&, BytesView) -> Result<Bytes> {
    return Result<Bytes>(ErrorCode::kNotFound, "no such element");
  });
  auto flow = net.open_flow(a);
  auto r = flow->call(server, util::to_bytes("x"));
  EXPECT_EQ(r.code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.status().message(), "no such element");
}

TEST_F(TwoHostFixture, QueueingDelaysSecondFlow) {
  // Handler that burns 100ms of CPU.
  net.bind(server, [](ServerContext& ctx, BytesView) -> Result<Bytes> {
    ctx.charge(CpuOp::kRsaSign, 1);
    ctx.charge(CpuOp::kRsaSign, 1);
    return Bytes{};
  });
  // Two flows arriving at the same virtual time: the second queues.
  auto f1 = net.open_flow(a);
  (void)f1->call(server, util::to_bytes("x"));
  util::SimTime alone = f1->now();

  SimNet net2;
  HostId a2 = net2.add_host({"a", CpuModel{}});
  HostId b2 = net2.add_host({"b", CpuModel{}});
  net2.set_link(a2, b2, {util::millis(10), 1e6});
  Endpoint srv2{b2, 80};
  net2.bind(srv2, [](ServerContext& ctx, BytesView) -> Result<Bytes> {
    ctx.charge(CpuOp::kRsaSign, 1);
    ctx.charge(CpuOp::kRsaSign, 1);
    return Bytes{};
  });
  auto g1 = net2.open_flow(a2);
  auto g2 = net2.open_flow(a2);
  (void)g1->call(srv2, util::to_bytes("x"));
  (void)g2->call(srv2, util::to_bytes("x"));  // queues behind g1's 80ms service
  // g2 queues behind g1's two-signature service time.
  EXPECT_GT(g2->now(), alone + 2 * CpuModel{}.rsa_sign - util::millis(2));
}

TEST_F(TwoHostFixture, NestedCallFromHandler) {
  HostId c = net.add_host({"c", CpuModel{}});
  net.set_link(b, c, {util::millis(5), 1e6});
  net.set_link(a, c, {util::millis(5), 1e6});
  Endpoint backend{c, 90};
  net.bind(backend, echo_handler());
  net.bind(server, [backend](ServerContext& ctx, BytesView req) -> Result<Bytes> {
    auto r = ctx.transport().call(backend, req);
    if (!r.is_ok()) return r;
    Bytes out = *r;
    out.push_back('!');
    return out;
  });
  auto flow = net.open_flow(a);
  auto r = flow->call(server, util::to_bytes("hi"));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(util::to_string(*r), "hi!");
  // Time covers both hops: > 2 RTTs of 10ms + 2 RTTs of 5ms.
  EXPECT_GT(flow->now(), util::millis(30));
}

TEST_F(TwoHostFixture, DeterministicAcrossRuns) {
  // A fresh network per run yields bit-identical virtual timings.
  util::SimTime results[2];
  for (int run = 0; run < 2; ++run) {
    SimNet n;
    HostId ca = n.add_host({"a", CpuModel{}});
    HostId cb = n.add_host({"b", CpuModel{}});
    n.set_link(ca, cb, {util::millis(10), 1e6});
    Endpoint ep{cb, 80};
    n.bind(ep, echo_handler());
    auto flow = n.open_flow(ca);
    for (int i = 0; i < 5; ++i) (void)flow->call(ep, Bytes(100, 'x'));
    results[run] = flow->now();
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST_F(TwoHostFixture, ParallelFlowsComplete) {
  net.bind(server, [](ServerContext& ctx, BytesView req) -> Result<Bytes> {
    ctx.charge(CpuOp::kSha1, req.size());
    return Bytes(req.begin(), req.end());
  });
  util::ThreadPool pool(4);
  std::atomic<int> ok{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([this, &ok] {
      auto flow = net.open_flow(a);
      auto r = flow->call(server, Bytes(500, 'q'));
      if (r.is_ok() && r->size() == 500) ok.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(ok.load(), 32);
}

TEST(SimNetTest, LoopbackIsFast) {
  SimNet net;
  HostId h = net.add_host({"solo", CpuModel{}});
  net.bind(Endpoint{h, 80}, echo_handler());
  auto flow = net.open_flow(h);
  (void)flow->call(Endpoint{h, 80}, util::to_bytes("x"));
  EXPECT_LT(flow->now(), util::millis(10));
}

TEST(SimNetTest, UnknownHostErrors) {
  SimNet net;
  HostId h = net.add_host({"solo", CpuModel{}});
  auto flow = net.open_flow(h);
  EXPECT_EQ(flow->call(Endpoint{HostId{99}, 1}, util::to_bytes("x")).code(),
            ErrorCode::kUnavailable);
  EXPECT_THROW(net.host(HostId{99}), std::out_of_range);
  EXPECT_THROW(net.open_flow(HostId{99}), std::out_of_range);
}

TEST(SimNetTest, DuplicateBindThrows) {
  SimNet net;
  HostId h = net.add_host({"solo", CpuModel{}});
  net.bind(Endpoint{h, 80}, echo_handler());
  EXPECT_THROW(net.bind(Endpoint{h, 80}, echo_handler()), std::logic_error);
  net.unbind(Endpoint{h, 80});
  EXPECT_NO_THROW(net.bind(Endpoint{h, 80}, echo_handler()));
}

TEST(SimNetTest, FlowStartTime) {
  SimNet net;
  HostId h = net.add_host({"solo", CpuModel{}});
  auto flow = net.open_flow(h, util::seconds(100));
  EXPECT_EQ(flow->now(), util::seconds(100));
  flow->advance(util::millis(5));
  EXPECT_EQ(flow->now(), util::seconds(100) + util::millis(5));
}


TEST(SimNetSchedulingTest, HorizonTracksLatestWork) {
  SimNet net;
  HostId a = net.add_host({"a", CpuModel{}});
  HostId b = net.add_host({"b", CpuModel{}});
  net.set_link(a, b, {util::millis(10), 1e6});
  EXPECT_EQ(net.horizon(), 0u);
  Endpoint ep{b, 80};
  net.bind(ep, echo_handler());
  auto flow = net.open_flow(a);
  (void)flow->call(ep, util::to_bytes("x"));
  EXPECT_GT(net.horizon(), 0u);
  EXPECT_LE(net.horizon(), flow->now());  // server finished before the reply landed

  auto quiet = net.open_quiescent_flow(a);
  EXPECT_GE(quiet->now(), net.horizon());
}

TEST(SimNetSchedulingTest, LaterExecutedEarlierArrivalSlotsIntoGap) {
  // Flow A books server CPU at a LATE virtual time; flow B, executed
  // afterwards but arriving EARLIER, must be served in the gap before A's
  // reservation instead of queueing behind it (interval reservations, not
  // a single busy watermark).
  SimNet net;
  HostId client = net.add_host({"c", CpuModel{}});
  HostId server = net.add_host({"s", CpuModel{}});
  net.set_link(client, server, {util::millis(10), 1e6});
  Endpoint ep{server, 80};
  net.bind(ep, echo_handler());

  auto late = net.open_flow(client, util::seconds(100));
  (void)late->call(ep, util::to_bytes("late"));

  auto early = net.open_flow(client, util::seconds(1));
  (void)early->call(ep, util::to_bytes("early"));
  // The early flow must complete around t=1s, nowhere near t=100s.
  EXPECT_LT(early->now(), util::seconds(2));
}

TEST(SimNetSchedulingTest, SimultaneousArrivalsSerialize) {
  SimNet net;
  HostId client = net.add_host({"c", CpuModel{}});
  HostId server = net.add_host({"s", CpuModel{}});
  net.set_link(client, server, {util::millis(10), 1e6});
  Endpoint ep{server, 80};
  net.bind(ep, [](ServerContext& ctx, BytesView) -> Result<Bytes> {
    ctx.charge(CpuOp::kRsaSign, 1);  // 12ms service
    return Bytes{};
  });
  auto f1 = net.open_flow(client);
  auto f2 = net.open_flow(client);
  (void)f1->call(ep, util::to_bytes("x"));
  (void)f2->call(ep, util::to_bytes("x"));
  // Same arrival time: the second serves strictly after the first.
  EXPECT_GE(f2->now(), f1->now() + CpuModel{}.rsa_sign);
}

}  // namespace
}  // namespace globe::net
