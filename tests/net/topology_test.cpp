#include "net/topology.hpp"

#include <gtest/gtest.h>

namespace globe::net {
namespace {

TEST(TopologyTest, FourHostsPresent) {
  PaperTopology t;
  EXPECT_EQ(t.net.host_count(), 4u);
  EXPECT_NE(t.net.host(t.amsterdam_primary).name.find("ginger"), std::string::npos);
  EXPECT_NE(t.net.host(t.ithaca).name.find("cornell"), std::string::npos);
}

TEST(TopologyTest, IthacaIsSlowest) {
  PaperTopology t;
  EXPECT_GT(t.net.host(t.ithaca).cpu.scale, t.net.host(t.paris).cpu.scale);
}

TEST(TopologyTest, LinkOrderingLanFastestIthacaSlowest) {
  PaperTopology t;
  const auto& lan = t.net.link(t.amsterdam_primary, t.amsterdam_secondary);
  const auto& par = t.net.link(t.amsterdam_primary, t.paris);
  const auto& ith = t.net.link(t.amsterdam_primary, t.ithaca);
  EXPECT_LT(lan.latency, par.latency);
  EXPECT_LT(par.latency, ith.latency);
  EXPECT_GT(lan.bandwidth_bytes_per_s, par.bandwidth_bytes_per_s);
  EXPECT_GT(par.bandwidth_bytes_per_s, ith.bandwidth_bytes_per_s);
}

TEST(TopologyTest, ClientListMatchesPaperOrder) {
  PaperTopology t;
  auto clients = t.clients();
  ASSERT_EQ(clients.size(), 3u);
  EXPECT_EQ(t.client_label(clients[0]), "Amsterdam");
  EXPECT_EQ(t.client_label(clients[1]), "Paris");
  EXPECT_EQ(t.client_label(clients[2]), "Ithaca");
}

TEST(TopologyTest, RoundTripTimesRealistic) {
  PaperTopology t;
  // Trans-European RTT ~20 ms; transatlantic ~90 ms.
  EXPECT_EQ(2 * t.net.link(t.amsterdam_primary, t.paris).latency, util::millis(20));
  EXPECT_EQ(2 * t.net.link(t.amsterdam_primary, t.ithaca).latency, util::millis(90));
}

}  // namespace
}  // namespace globe::net
