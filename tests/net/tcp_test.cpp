#include "net/tcp.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace globe::net {
namespace {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Result;

TEST(TcpTest, EchoRoundTrip) {
  TcpServer server(0, [](ServerContext&, BytesView req) -> Result<Bytes> {
    return Bytes(req.begin(), req.end());
  });
  TcpTransport client;
  auto r = client.call(Endpoint{HostId{0}, server.port()}, util::to_bytes("hello tcp"));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(util::to_string(*r), "hello tcp");
}

TEST(TcpTest, ErrorStatusPropagates) {
  TcpServer server(0, [](ServerContext&, BytesView) -> Result<Bytes> {
    return Result<Bytes>(ErrorCode::kPermissionDenied, "keystore rejects you");
  });
  TcpTransport client;
  auto r = client.call(Endpoint{HostId{0}, server.port()}, util::to_bytes("x"));
  EXPECT_EQ(r.code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(r.status().message(), "keystore rejects you");
}

TEST(TcpTest, HandlerExceptionBecomesInternal) {
  TcpServer server(0, [](ServerContext&, BytesView) -> Result<Bytes> {
    throw std::runtime_error("kaboom");
  });
  TcpTransport client;
  auto r = client.call(Endpoint{HostId{0}, server.port()}, util::to_bytes("x"));
  EXPECT_EQ(r.code(), ErrorCode::kInternal);
}

TEST(TcpTest, LargePayloadRoundTrip) {
  TcpServer server(0, [](ServerContext&, BytesView req) -> Result<Bytes> {
    return Bytes(req.begin(), req.end());
  });
  TcpTransport client;
  Bytes big(2 * 1024 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i);
  auto r = client.call(Endpoint{HostId{0}, server.port()}, big);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r, big);
}

TEST(TcpTest, MultipleSequentialRequestsReuseConnection) {
  TcpServer server(0, [](ServerContext&, BytesView req) -> Result<Bytes> {
    Bytes out(req.begin(), req.end());
    out.push_back('!');
    return out;
  });
  TcpTransport client;
  Endpoint ep{HostId{0}, server.port()};
  for (int i = 0; i < 20; ++i) {
    auto r = client.call(ep, util::to_bytes("msg" + std::to_string(i)));
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(util::to_string(*r), "msg" + std::to_string(i) + "!");
  }
}

TEST(TcpTest, ConcurrentClients) {
  TcpServer server(0, [](ServerContext&, BytesView req) -> Result<Bytes> {
    return Bytes(req.begin(), req.end());
  });
  std::uint16_t port = server.port();
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([port, t, &ok] {
      TcpTransport client;
      for (int i = 0; i < 10; ++i) {
        Bytes msg = util::to_bytes("t" + std::to_string(t) + "i" + std::to_string(i));
        auto r = client.call(Endpoint{HostId{0}, port}, msg);
        if (r.is_ok() && *r == msg) ok.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), 80);
}

TEST(TcpTest, ConnectToClosedPortFails) {
  std::uint16_t dead_port;
  {
    TcpServer server(0, [](ServerContext&, BytesView) -> Result<Bytes> {
      return Bytes{};
    });
    dead_port = server.port();
  }  // server destroyed
  TcpTransport client;
  auto r = client.call(Endpoint{HostId{0}, dead_port}, util::to_bytes("x"));
  EXPECT_EQ(r.code(), ErrorCode::kUnavailable);
}

TEST(TcpTest, EmptyRequestAndResponse) {
  TcpServer server(0, [](ServerContext&, BytesView req) -> Result<Bytes> {
    EXPECT_EQ(req.size(), 0u);
    return Bytes{};
  });
  TcpTransport client;
  auto r = client.call(Endpoint{HostId{0}, server.port()}, Bytes{});
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->empty());
}

TEST(TcpTest, StopIsIdempotent) {
  TcpServer server(0, [](ServerContext&, BytesView) -> Result<Bytes> {
    return Bytes{};
  });
  server.stop();
  server.stop();
}

}  // namespace
}  // namespace globe::net
