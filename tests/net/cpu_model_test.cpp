#include "net/cpu_model.hpp"

#include <gtest/gtest.h>

namespace globe::net {
namespace {

TEST(CpuModelTest, HashCostProportionalToBytes) {
  CpuModel m;
  auto c1 = m.cost(CpuOp::kSha1, 1000);
  auto c2 = m.cost(CpuOp::kSha1, 2000);
  EXPECT_NEAR(static_cast<double>(c2), 2.0 * static_cast<double>(c1),
              static_cast<double>(c1) * 0.01);
}

TEST(CpuModelTest, ReferenceSha1Throughput) {
  CpuModel m;
  // Hashing sha1_mb_s megabytes should take ~1 second at reference scale.
  auto c = m.cost(CpuOp::kSha1, static_cast<std::uint64_t>(m.sha1_mb_s * 1e6));
  EXPECT_NEAR(static_cast<double>(c), static_cast<double>(util::kSecond),
              static_cast<double>(util::kSecond) * 0.01);
}

TEST(CpuModelTest, ScaleMultipliesAllCosts) {
  CpuModel fast;
  CpuModel slow = fast;
  slow.scale = 2.2;
  for (auto op : {CpuOp::kSha1, CpuOp::kSymCipher, CpuOp::kRsaVerify,
                  CpuOp::kRsaSign, CpuOp::kRequest}) {
    EXPECT_NEAR(static_cast<double>(slow.cost(op, 100)),
                2.2 * static_cast<double>(fast.cost(op, 100)),
                static_cast<double>(fast.cost(op, 100)) * 0.01 + 1)
        << static_cast<int>(op);
  }
}

TEST(CpuModelTest, RsaSignSlowerThanVerify) {
  CpuModel m;
  EXPECT_GT(m.cost(CpuOp::kRsaSign, 1), m.cost(CpuOp::kRsaVerify, 1));
  EXPECT_GT(m.cost(CpuOp::kRsaDecrypt, 1), m.cost(CpuOp::kRsaEncrypt, 1));
}

TEST(CpuModelTest, ZeroAmountZeroCost) {
  CpuModel m;
  EXPECT_EQ(m.cost(CpuOp::kSha1, 0), 0u);
  EXPECT_EQ(m.cost(CpuOp::kRsaVerify, 0), 0u);
}

TEST(CpuModelTest, FixedOpsScaleWithCount) {
  CpuModel m;
  EXPECT_EQ(m.cost(CpuOp::kRsaVerify, 3), 3 * m.cost(CpuOp::kRsaVerify, 1));
}

}  // namespace
}  // namespace globe::net
