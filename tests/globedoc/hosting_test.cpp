// Resource-managed hosting (paper §6 extension): keystore + quotas +
// leases on the object server's admin interface.
#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "globedoc/server.hpp"
#include "net/simnet.hpp"
#include "rpc/rpc.hpp"

namespace globe::globedoc {
namespace {

using util::Bytes;
using util::ErrorCode;
using util::to_bytes;

crypto::RsaKeyPair host_key(std::uint64_t seed) {
  auto rng = crypto::HmacDrbg::from_seed(seed);
  return crypto::rsa_generate(512, rng);
}

ReplicaState make_state(std::uint64_t seed, std::size_t content_bytes,
                        Oid* oid_out = nullptr) {
  GlobeDocObject object(host_key(seed));
  object.put_element({"data.bin", "application/octet-stream",
                      Bytes(content_bytes, 0x11)});
  object.sign_state(0, util::seconds(1u << 30));
  if (oid_out != nullptr) *oid_out = object.oid();
  return object.snapshot();
}

struct HostingFixture : ::testing::Test {
  void SetUp() override {
    host = net.add_host({"server", net::CpuModel{}});
    owner_key = host_key(71);
    server = std::make_unique<ObjectServer>("srv", 72);
    server->authorize(owner_key.pub);
    server->register_with(dispatcher);
    ep = net::Endpoint{host, 8000};
    net.bind(ep, dispatcher.handler());
    flow = net.open_flow(host);
  }

  AdminClient admin() { return AdminClient(*flow, ep, owner_key); }

  net::SimNet net;
  net::HostId host;
  crypto::RsaKeyPair owner_key;
  std::unique_ptr<ObjectServer> server;
  rpc::ServiceDispatcher dispatcher;
  net::Endpoint ep;
  std::unique_ptr<net::SimFlow> flow;
};

TEST_F(HostingFixture, UnlimitedByDefault) {
  auto client = admin();
  auto grant = client.negotiate(50'000'000, 0);
  ASSERT_TRUE(grant.is_ok());
  EXPECT_TRUE(grant->accepted);
  EXPECT_EQ(grant->lease, 0u);  // indefinite
}

TEST_F(HostingFixture, NegotiationReflectsByteLimit) {
  ResourceLimits limits;
  limits.max_total_bytes = 10'000;
  server->set_resource_limits(limits);
  auto client = admin();

  auto small = client.negotiate(5'000, 0);
  ASSERT_TRUE(small.is_ok());
  EXPECT_TRUE(small->accepted);

  auto big = client.negotiate(20'000, 0);
  ASSERT_TRUE(big.is_ok());
  EXPECT_FALSE(big->accepted);
  EXPECT_NE(big->reason.find("capacity"), std::string::npos);
}

TEST_F(HostingFixture, NegotiationClampsLease) {
  ResourceLimits limits;
  limits.max_lease = util::seconds(100);
  server->set_resource_limits(limits);
  auto client = admin();

  auto shorter = client.negotiate(100, util::seconds(50));
  ASSERT_TRUE(shorter.is_ok());
  EXPECT_EQ(shorter->lease, util::seconds(50));

  auto longer = client.negotiate(100, util::seconds(500));
  ASSERT_TRUE(longer.is_ok());
  EXPECT_EQ(longer->lease, util::seconds(100));

  auto indefinite = client.negotiate(100, 0);
  ASSERT_TRUE(indefinite.is_ok());
  EXPECT_EQ(indefinite->lease, util::seconds(100));
}

TEST_F(HostingFixture, CreateRefusedBeyondTotalBytes) {
  ResourceLimits limits;
  limits.max_total_bytes = 10'000;
  server->set_resource_limits(limits);
  auto client = admin();

  EXPECT_TRUE(client.create_replica(make_state(100, 6'000)).is_ok());
  auto refused = client.create_replica(make_state(101, 6'000));
  EXPECT_EQ(refused.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(server->replica_count(), 1u);
  EXPECT_LE(server->hosted_bytes(), 10'000u);
}

TEST_F(HostingFixture, CreateRefusedBeyondReplicaSlots) {
  ResourceLimits limits;
  limits.max_replicas = 2;
  server->set_resource_limits(limits);
  auto client = admin();
  EXPECT_TRUE(client.create_replica(make_state(110, 100)).is_ok());
  EXPECT_TRUE(client.create_replica(make_state(111, 100)).is_ok());
  EXPECT_EQ(client.create_replica(make_state(112, 100)).code(),
            ErrorCode::kUnavailable);
}

TEST_F(HostingFixture, PerReplicaByteLimit) {
  ResourceLimits limits;
  limits.max_replica_bytes = 1'000;
  server->set_resource_limits(limits);
  auto client = admin();
  EXPECT_TRUE(client.create_replica(make_state(120, 900)).is_ok());
  EXPECT_EQ(client.create_replica(make_state(121, 1'100)).code(),
            ErrorCode::kUnavailable);
}

TEST_F(HostingFixture, UpdateDoesNotDoubleCountOwnUsage) {
  ResourceLimits limits;
  limits.max_total_bytes = 10'000;
  server->set_resource_limits(limits);
  auto client = admin();

  Oid oid;
  GlobeDocObject object(host_key(130));
  object.put_element({"data.bin", "application/octet-stream", Bytes(8'000, 1)});
  object.sign_state(0, util::seconds(1u << 30));
  oid = object.oid();
  EXPECT_TRUE(client.create_replica(object.snapshot()).is_ok());

  // Updating the same replica to 9 KB fits (its old 8 KB are released).
  object.put_element({"data.bin", "application/octet-stream", Bytes(9'000, 2)});
  object.sign_state(0, util::seconds(1u << 30));
  EXPECT_TRUE(client.update_replica(object.snapshot()).is_ok());

  // But 11 KB does not.
  object.put_element({"data.bin", "application/octet-stream", Bytes(11'000, 3)});
  object.sign_state(0, util::seconds(1u << 30));
  EXPECT_EQ(client.update_replica(object.snapshot()).code(),
            ErrorCode::kUnavailable);
}

TEST_F(HostingFixture, LeaseExpiryStopsServingAndEvicts) {
  ResourceLimits limits;
  limits.max_lease = util::seconds(100);
  server->set_resource_limits(limits);
  auto client = admin();

  Oid oid;
  ReplicaState state = make_state(140, 500, &oid);
  ASSERT_TRUE(client.create_replica(state).is_ok());
  EXPECT_TRUE(server->hosts(oid));

  // Within the lease, the replica serves.
  rpc::RpcClient reader(*flow, ep);
  util::Writer req;
  req.raw(oid.to_bytes());
  req.str("data.bin");
  EXPECT_TRUE(reader.call(rpc::kGlobeDocAccess, kGetElement, req.buffer()).is_ok());

  // Past the lease, access fails lazily...
  flow->advance(util::seconds(200));
  EXPECT_EQ(reader.call(rpc::kGlobeDocAccess, kGetElement, req.buffer()).code(),
            ErrorCode::kNotFound);
  // ...and explicit expiry evicts the state.
  EXPECT_EQ(server->expire_leases(flow->now()), 1u);
  EXPECT_FALSE(server->hosts(oid));
  EXPECT_EQ(server->hosted_bytes(), 0u);
}

TEST_F(HostingFixture, RefusedCreateCanBeRetriedElsewhere) {
  // After a refusal the creator slot must not be poisoned: a later create
  // within limits succeeds.
  ResourceLimits limits;
  limits.max_replica_bytes = 1'000;
  server->set_resource_limits(limits);
  auto client = admin();
  Oid oid;
  GlobeDocObject object(host_key(150));
  object.put_element({"big", "application/octet-stream", Bytes(2'000, 1)});
  object.sign_state(0, util::seconds(1u << 30));
  oid = object.oid();
  EXPECT_EQ(client.create_replica(object.snapshot()).code(), ErrorCode::kUnavailable);

  object.put_element({"big", "application/octet-stream", Bytes(500, 1)});
  object.sign_state(0, util::seconds(1u << 30));
  EXPECT_TRUE(client.create_replica(object.snapshot()).is_ok());
  EXPECT_TRUE(server->hosts(oid));
}

TEST_F(HostingFixture, NegotiateMalformedRejected) {
  rpc::RpcClient client(*flow, ep);
  EXPECT_EQ(client.call(rpc::kGlobeDocAdmin, kNegotiate, to_bytes("xx")).code(),
            ErrorCode::kProtocol);
}

TEST(HostingGrantTest, SerializationRoundTrip) {
  HostingGrant grant;
  grant.accepted = true;
  grant.lease = util::seconds(42);
  grant.reason = "";
  auto parsed = HostingGrant::parse(grant.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(parsed->accepted);
  EXPECT_EQ(parsed->lease, util::seconds(42));
  EXPECT_FALSE(HostingGrant::parse(to_bytes("zz")).is_ok());
}

}  // namespace
}  // namespace globe::globedoc
