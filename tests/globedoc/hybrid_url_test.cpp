#include "globedoc/hybrid_url.hpp"

#include <gtest/gtest.h>

namespace globe::globedoc {
namespace {

TEST(HybridUrlTest, HttpPrefixForm) {
  auto url = parse_hybrid_url("http://globe/news.vu.nl/index.html");
  ASSERT_TRUE(url.is_ok());
  EXPECT_EQ(url->object_name, "news.vu.nl");
  EXPECT_EQ(url->element_name, "index.html");
}

TEST(HybridUrlTest, SchemeForm) {
  auto url = parse_hybrid_url("globe://news.vu.nl/story.txt");
  ASSERT_TRUE(url.is_ok());
  EXPECT_EQ(url->object_name, "news.vu.nl");
  EXPECT_EQ(url->element_name, "story.txt");
}

TEST(HybridUrlTest, ProxyTargetForm) {
  auto url = parse_hybrid_url("/globe/news.vu.nl/img/logo.gif");
  ASSERT_TRUE(url.is_ok());
  EXPECT_EQ(url->object_name, "news.vu.nl");
  EXPECT_EQ(url->element_name, "img/logo.gif");  // slashes allowed in element
}

TEST(HybridUrlTest, IsHybridDetection) {
  EXPECT_TRUE(is_hybrid_url("http://globe/a/b"));
  EXPECT_TRUE(is_hybrid_url("globe://a/b"));
  EXPECT_TRUE(is_hybrid_url("/globe/a/b"));
  EXPECT_FALSE(is_hybrid_url("http://example.org/a/b"));
  EXPECT_FALSE(is_hybrid_url("/index.html"));
  EXPECT_FALSE(is_hybrid_url(""));
}

TEST(HybridUrlTest, MalformedRejected) {
  EXPECT_FALSE(parse_hybrid_url("http://example.org/x").is_ok());
  EXPECT_FALSE(parse_hybrid_url("http://globe/only-object").is_ok());
  EXPECT_FALSE(parse_hybrid_url("http://globe//element").is_ok());
  EXPECT_FALSE(parse_hybrid_url("http://globe/object/").is_ok());
  EXPECT_FALSE(parse_hybrid_url("").is_ok());
}

TEST(HybridUrlTest, QueryAndFragmentDecorationCanonicalized) {
  // Elements are addressed by (object, element) alone: cache-busting query
  // strings and fragments must not manufacture distinct upstream fetches.
  for (const char* url : {"http://globe/news.vu.nl/logo.gif?v=2",
                          "http://globe/news.vu.nl/logo.gif?a=1&b=2",
                          "http://globe/news.vu.nl/logo.gif#top",
                          "http://globe/news.vu.nl/logo.gif?v=2#top",
                          "globe://news.vu.nl/logo.gif?cb=12345"}) {
    auto parsed = parse_hybrid_url(url);
    ASSERT_TRUE(parsed.is_ok()) << url;
    EXPECT_EQ(parsed->object_name, "news.vu.nl") << url;
    EXPECT_EQ(parsed->element_name, "logo.gif") << url;
  }
}

TEST(HybridUrlTest, DecorationOnlyUrlsStayMalformed) {
  // Stripping decoration must not make previously-invalid URLs valid.
  EXPECT_FALSE(parse_hybrid_url("http://globe/object?query").is_ok());
  EXPECT_FALSE(parse_hybrid_url("http://globe/object/?query").is_ok());
  EXPECT_FALSE(parse_hybrid_url("http://globe/?/element").is_ok());
}

TEST(HybridUrlTest, RoundTripToString) {
  HybridUrl url{"news.vu.nl", "img/logo.gif"};
  auto parsed = parse_hybrid_url(url.to_string());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->object_name, url.object_name);
  EXPECT_EQ(parsed->element_name, url.element_name);
}

}  // namespace
}  // namespace globe::globedoc
