#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "crypto/sha1.hpp"
#include "globedoc/element.hpp"
#include "globedoc/oid.hpp"

namespace globe::globedoc {
namespace {

using util::Bytes;
using util::to_bytes;

const crypto::RsaKeyPair& key_a() {
  static const crypto::RsaKeyPair kp = [] {
    auto rng = crypto::HmacDrbg::from_seed(1);
    return crypto::rsa_generate(512, rng);
  }();
  return kp;
}

const crypto::RsaKeyPair& key_b() {
  static const crypto::RsaKeyPair kp = [] {
    auto rng = crypto::HmacDrbg::from_seed(2);
    return crypto::rsa_generate(512, rng);
  }();
  return kp;
}

TEST(OidTest, DerivationIsSha1OfSerializedKey) {
  Oid oid = Oid::from_public_key(key_a().pub);
  EXPECT_EQ(oid.to_bytes(), crypto::Sha1::digest_bytes(key_a().pub.serialize()));
}

TEST(OidTest, SelfCertifyingCheck) {
  Oid oid = Oid::from_public_key(key_a().pub);
  EXPECT_TRUE(oid.matches_key(key_a().pub));
  EXPECT_FALSE(oid.matches_key(key_b().pub));
}

TEST(OidTest, DistinctKeysDistinctOids) {
  EXPECT_NE(Oid::from_public_key(key_a().pub), Oid::from_public_key(key_b().pub));
}

TEST(OidTest, BytesRoundTrip) {
  Oid oid = Oid::from_public_key(key_a().pub);
  auto back = Oid::from_bytes(oid.to_bytes());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, oid);
}

TEST(OidTest, HexRoundTrip) {
  Oid oid = Oid::from_public_key(key_a().pub);
  EXPECT_EQ(oid.to_hex().size(), 40u);
  auto back = Oid::from_hex(oid.to_hex());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, oid);
}

TEST(OidTest, WrongSizeRejected) {
  EXPECT_FALSE(Oid::from_bytes(Bytes(19, 0)).is_ok());
  EXPECT_FALSE(Oid::from_bytes(Bytes(21, 0)).is_ok());
  EXPECT_FALSE(Oid::from_hex("abcd").is_ok());
  EXPECT_FALSE(Oid::from_hex("zz").is_ok());
}

TEST(OidTest, DefaultIsZero) {
  Oid oid;
  EXPECT_EQ(oid.to_hex(), std::string(40, '0'));
}

TEST(ElementTest, SerializeParseRoundTrip) {
  PageElement el{"img/logo.gif", "image/gif", Bytes{1, 2, 3, 4}};
  auto parsed = PageElement::parse(el.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(*parsed, el);
}

TEST(ElementTest, EmptyNameRejectedOnParse) {
  PageElement el{"", "text/plain", Bytes{}};
  EXPECT_FALSE(PageElement::parse(el.serialize()).is_ok());
}

TEST(ElementTest, GarbageRejected) {
  EXPECT_FALSE(PageElement::parse(to_bytes("garbage")).is_ok());
}

TEST(ElementTest, DigestCoversNameTypeAndContent) {
  PageElement base{"a.html", "text/html", to_bytes("body")};
  PageElement renamed{"b.html", "text/html", to_bytes("body")};
  PageElement retyped{"a.html", "text/plain", to_bytes("body")};
  PageElement edited{"a.html", "text/html", to_bytes("Body")};
  EXPECT_NE(base.digest(), renamed.digest());
  EXPECT_NE(base.digest(), retyped.digest());
  EXPECT_NE(base.digest(), edited.digest());
  PageElement copy{"a.html", "text/html", to_bytes("body")};
  EXPECT_EQ(base.digest(), copy.digest());
}

}  // namespace
}  // namespace globe::globedoc
