// Failure injection: crashes, partitions and concurrency around the proxy.
#include <gtest/gtest.h>

#include "globedoc/proxy.hpp"
#include "tests/globedoc/world_fixture.hpp"
#include "util/thread_pool.hpp"

namespace globe::globedoc {
namespace {

using globe::globedoc::testing::WorldFixture;
using util::ErrorCode;

struct FailoverFixture : WorldFixture {
  /// Publishes a second replica on the infra host.
  void add_second_replica() {
    second_server = std::make_unique<ObjectServer>("srv-2", 99);
    second_server->authorize(owner->credential_key());
    second_server->register_with(second_dispatcher);
    second_ep = net::Endpoint{infra_host, 8000};
    net.bind(second_ep, second_dispatcher.handler());
    auto state = owner->sign_and_snapshot(publish_flow->now(), util::seconds(3600));
    ASSERT_TRUE(owner
                    ->publish_replica(*publish_flow, second_ep,
                                      tree->endpoint("site-client"), state)
                    .is_ok());
  }

  std::unique_ptr<ObjectServer> second_server;
  rpc::ServiceDispatcher second_dispatcher;
  net::Endpoint second_ep;
};

TEST_F(FailoverFixture, ReplicaCrashFallsBackToSurvivor) {
  add_second_replica();
  net.unbind(server_ep);  // the original replica host "crashes"
  GlobeDocProxy proxy(*client_flow, proxy_config());
  auto result = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_GE(result->metrics.replicas_tried, 1u);
}

TEST_F(FailoverFixture, PartitionedReplicaFallsBackToSurvivor) {
  add_second_replica();
  net.set_link_down(client_host, server_host, true);
  GlobeDocProxy proxy(*client_flow, proxy_config());
  auto result = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
}

TEST_F(FailoverFixture, TotalOutageIsCleanUnavailable) {
  net.unbind(server_ep);
  GlobeDocProxy proxy(*client_flow, proxy_config());
  auto result = proxy.fetch(object_name, "index.html");
  EXPECT_EQ(result.code(), ErrorCode::kUnavailable);
}

TEST_F(FailoverFixture, CachedBindingSurvivesAndRecoversFromCrash) {
  add_second_replica();
  ProxyConfig config = proxy_config();
  config.cache_bindings = true;
  GlobeDocProxy proxy(*client_flow, config);
  auto first = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(first.is_ok());

  // Whichever replica the binding points at, kill it.
  net.unbind(server_ep);
  net.unbind(second_ep);
  // Rebind one survivor (the second) and retry: the cached binding fails,
  // the proxy re-runs the pipeline and finds the survivor.
  net.bind(second_ep, second_dispatcher.handler());
  auto second = proxy.fetch(object_name, "story.txt");
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();
}

TEST_F(FailoverFixture, NamingOutageFailsClosed) {
  net.unbind(naming_ep);
  GlobeDocProxy proxy(*client_flow, proxy_config());
  EXPECT_EQ(proxy.fetch(object_name, "index.html").code(), ErrorCode::kUnavailable);
}

TEST_F(FailoverFixture, LocationOutageFailsClosed) {
  net.unbind(tree->endpoint("site-client"));
  GlobeDocProxy proxy(*client_flow, proxy_config());
  EXPECT_EQ(proxy.fetch(object_name, "index.html").code(), ErrorCode::kUnavailable);
}

TEST_F(FailoverFixture, ConcurrentClientsOverSharedWorld) {
  // Many independent client flows fetch in parallel threads; every fetch
  // must verify (thread-safety of servers + per-host serialization).
  util::ThreadPool pool(4);
  std::atomic<int> ok{0};
  for (int i = 0; i < 24; ++i) {
    pool.submit([this, &ok] {
      auto flow = net.open_flow(client_host);
      GlobeDocProxy proxy(*flow, proxy_config());
      auto result = proxy.fetch(object_name, "index.html");
      if (result.is_ok() &&
          util::to_string(result->element.content) ==
              "<html><body>news story</body></html>") {
        ok.fetch_add(1);
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(ok.load(), 24);
}

}  // namespace
}  // namespace globe::globedoc
