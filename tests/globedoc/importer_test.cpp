// Importing an existing static site into a GlobeDoc object, then serving
// it securely — the adoption path end to end.
#include "globedoc/importer.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "crypto/sha1.hpp"
#include "globedoc/proxy.hpp"
#include "http/static_server.hpp"
#include "net/simnet.hpp"
#include "tests/globedoc/world_fixture.hpp"

namespace globe::globedoc {
namespace {

using globe::globedoc::testing::fixture_key;
using util::Bytes;
using util::ErrorCode;
using util::to_bytes;

struct ImporterFixture : ::testing::Test {
  void SetUp() override {
    host = net.add_host({"origin", net::CpuModel{}});
    legacy.put_file("/index.html", to_bytes("<html>legacy site</html>"));
    legacy.put_file("/img/logo.gif", Bytes(300, 0x47));
    legacy.put_file("/about.txt", to_bytes("about us"));
    origin_ep = net::Endpoint{host, 80};
    net.bind(origin_ep, legacy.handler());
    flow = net.open_flow(host);
  }

  net::SimNet net;
  net::HostId host;
  http::StaticHttpServer legacy;
  net::Endpoint origin_ep;
  std::unique_ptr<net::SimFlow> flow;
};

TEST_F(ImporterFixture, ImportsAllPaths) {
  GlobeDocObject object(fixture_key(2001));
  auto report = import_from_http(object, *flow, origin_ep,
                                 {"/index.html", "/img/logo.gif", "/about.txt"});
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report->imported, 3u);
  EXPECT_TRUE(report->failed.empty());
  EXPECT_EQ(object.element_count(), 3u);

  const PageElement* logo = object.element("img/logo.gif");
  ASSERT_NE(logo, nullptr);
  EXPECT_EQ(logo->content_type, "image/gif");
  EXPECT_EQ(logo->content.size(), 300u);
  EXPECT_EQ(object.element("index.html")->content_type, "text/html");
}

// Verify-before-use regression: with a manifest, a body the origin serves
// that does not hash to the expected digest must never enter the object —
// whatever lands there gets signed by the owner's key and served as
// authentic forever after.

TEST_F(ImporterFixture, ManifestMismatchKeepsElementOut) {
  GlobeDocObject object(fixture_key(2005));
  ImportManifest manifest;
  manifest["/index.html"] =
      crypto::Sha1::digest_bytes(to_bytes("<html>legacy site</html>"));
  // The origin serves different bytes for the logo than the manifest says.
  manifest["/img/logo.gif"] = crypto::Sha1::digest_bytes(to_bytes("expected"));
  auto report = import_from_http(object, *flow, origin_ep,
                                 {"/index.html", "/img/logo.gif"}, manifest);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->imported, 1u);
  ASSERT_EQ(report->failed.size(), 1u);
  EXPECT_EQ(report->failed[0], "/img/logo.gif");
  EXPECT_EQ(object.element_count(), 1u);
  EXPECT_EQ(object.element("img/logo.gif"), nullptr);  // never stored
  EXPECT_NE(object.element("index.html"), nullptr);
}

TEST_F(ImporterFixture, ManifestMissingEntryKeepsElementOut) {
  GlobeDocObject object(fixture_key(2006));
  ImportManifest manifest;
  manifest["/index.html"] =
      crypto::Sha1::digest_bytes(to_bytes("<html>legacy site</html>"));
  // "/about.txt" is fetched but absent from the manifest: rejected.
  auto report = import_from_http(object, *flow, origin_ep,
                                 {"/index.html", "/about.txt"}, manifest);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->imported, 1u);
  ASSERT_EQ(report->failed.size(), 1u);
  EXPECT_EQ(report->failed[0], "/about.txt");
  EXPECT_EQ(object.element("about.txt"), nullptr);
}

TEST_F(ImporterFixture, PartialFailureReported) {
  GlobeDocObject object(fixture_key(2002));
  auto report = import_from_http(object, *flow, origin_ep,
                                 {"/index.html", "/missing.html", "bad-path"});
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->imported, 1u);
  ASSERT_EQ(report->failed.size(), 2u);
  EXPECT_EQ(report->failed[0], "/missing.html");
  EXPECT_EQ(report->failed[1], "bad-path");
}

TEST_F(ImporterFixture, TotalFailureIsError) {
  GlobeDocObject object(fixture_key(2003));
  EXPECT_EQ(import_from_http(object, *flow, origin_ep, {"/nope"}).code(),
            ErrorCode::kUnavailable);
  EXPECT_EQ(import_from_http(object, *flow, origin_ep, {}).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(object.element_count(), 0u);
}

TEST_F(ImporterFixture, DeadOriginReportsFailures) {
  GlobeDocObject object(fixture_key(2004));
  net::Endpoint dead{host, 9999};
  EXPECT_EQ(import_from_http(object, *flow, dead, {"/index.html"}).code(),
            ErrorCode::kUnavailable);
}

// End-to-end: import from the legacy origin into the shared world's object
// and serve it through the secure pipeline.
struct ImportWorldFixture : globe::globedoc::testing::WorldFixture {};

TEST_F(ImportWorldFixture, ImportedSiteServesSecurely) {
  http::StaticHttpServer legacy;
  legacy.put_file("/migrated.html", to_bytes("<html>was plain http</html>"));
  net::Endpoint legacy_ep{infra_host, 8088};
  net.bind(legacy_ep, legacy.handler());

  auto report = import_from_http(owner->object(), *publish_flow, legacy_ep,
                                 {"/migrated.html"});
  ASSERT_TRUE(report.is_ok());
  ASSERT_TRUE(owner
                  ->refresh_replicas(*publish_flow, publish_flow->now(),
                                     util::seconds(3600))
                  .is_ok());

  GlobeDocProxy proxy(*client_flow, proxy_config());
  auto result = proxy.fetch(object_name, "migrated.html");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(util::to_string(result->element.content), "<html>was plain http</html>");
}

}  // namespace
}  // namespace globe::globedoc
