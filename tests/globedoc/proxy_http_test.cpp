// Browser -> proxy over HTTP: the full Fig. 3 wire path.
#include "globedoc/proxy_http.hpp"

#include <gtest/gtest.h>

#include "http/client.hpp"
#include "http/static_server.hpp"
#include "tests/globedoc/world_fixture.hpp"

namespace globe::globedoc {
namespace {

using globe::globedoc::testing::WorldFixture;
using util::to_bytes;

struct ProxyHttpFixture : WorldFixture {
  void SetUp() override {
    WorldFixture::SetUp();
    // The user proxy runs on the client host with its own flow; the
    // "browser" talks to it over HTTP on port 3128.
    proxy_flow = net.open_flow(client_host);
    auto proxy = std::make_unique<GlobeDocProxy>(*proxy_flow, proxy_config());
    front = std::make_unique<ProxyHttpServer>(std::move(proxy));
    proxy_ep = net::Endpoint{client_host, 3128};
    net.bind(proxy_ep, front->handler());
    browser_flow = net.open_flow(client_host);
  }

  std::unique_ptr<net::SimFlow> proxy_flow, browser_flow;
  std::unique_ptr<ProxyHttpServer> front;
  net::Endpoint proxy_ep;
};

TEST_F(ProxyHttpFixture, BrowserFetchesHybridUrlThroughProxy) {
  http::HttpClient browser(*browser_flow);
  auto resp = browser.get(proxy_ep, "/globe/news.vu.nl/index.html");
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(util::to_string(resp->body), "<html><body>news story</body></html>");
  EXPECT_EQ(resp->headers.get("X-GlobeDoc-Certified-As"), "Vrije Universiteit");
  EXPECT_EQ(resp->headers.get("Via"), "1.1 globedoc-proxy");
  EXPECT_EQ(front->requests_served(), 1u);
}

TEST_F(ProxyHttpFixture, SecurityFailureRendersErrorPage) {
  browser_flow->advance(util::seconds(4000));  // certificate now expired
  proxy_flow->advance(util::seconds(4000));
  http::HttpClient browser(*browser_flow);
  auto resp = browser.get(proxy_ep, "/globe/news.vu.nl/index.html");
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp->status, 403);
  EXPECT_NE(util::to_string(resp->body).find("Security Check Failed"),
            std::string::npos);
}

TEST_F(ProxyHttpFixture, ErrorPageEscapesReflectedText) {
  // The failure page echoes the error description, which can embed
  // attacker-chosen text (here the requested element name, reflected by the
  // server's "no element '...'"); it must come out HTML-escaped so the
  // paper's "Security Check Failed" document can never become script
  // injection at the browser.
  http::HttpClient browser(*browser_flow);
  auto resp =
      browser.get(proxy_ep, "/globe/news.vu.nl/<script>alert(1)</script>");
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp->status, 404);
  std::string body = util::to_string(resp->body);
  EXPECT_EQ(body.find("<script"), std::string::npos) << body;
  EXPECT_NE(body.find("&lt;script"), std::string::npos) << body;
}

TEST_F(ProxyHttpFixture, PlainUrlsPassThroughToOrigin) {
  http::StaticHttpServer origin;
  origin.put_file("/legacy.html", to_bytes("<html>old web</html>"));
  net::Endpoint origin_ep{infra_host, 8080};
  net.bind(origin_ep, origin.handler());
  front->proxy().set_origin_fallback(origin_ep);

  http::HttpClient browser(*browser_flow);
  auto resp = browser.get(proxy_ep, "/legacy.html");
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(util::to_string(resp->body), "<html>old web</html>");
}

TEST_F(ProxyHttpFixture, MalformedBrowserRequestGets400) {
  auto raw = browser_flow->call(proxy_ep, to_bytes("NOT HTTP AT ALL"));
  ASSERT_TRUE(raw.is_ok());
  auto resp = http::parse_response(*raw);
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp->status, 400);
  EXPECT_EQ(front->requests_served(), 0u);  // rejected before the proxy ran
}

TEST_F(ProxyHttpFixture, WholePageLoadThroughProxy) {
  // A "browser" loading the document and its subresources.
  http::HttpClient browser(*browser_flow);
  for (const char* path : {"/globe/news.vu.nl/index.html",
                           "/globe/news.vu.nl/logo.gif",
                           "/globe/news.vu.nl/story.txt"}) {
    auto resp = browser.get(proxy_ep, path);
    ASSERT_TRUE(resp.is_ok()) << path;
    EXPECT_EQ(resp->status, 200) << path;
  }
  EXPECT_EQ(front->requests_served(), 3u);
}

}  // namespace
}  // namespace globe::globedoc
