// Batched element retrieval (kFetchMany): codec round trips, server
// handler behaviour, and hostile-input rejection.
#include "globedoc/fetch_many.hpp"

#include <gtest/gtest.h>

#include "globedoc/element.hpp"
#include "globedoc/integrity.hpp"
#include "tests/globedoc/world_fixture.hpp"
#include "util/serial.hpp"

namespace globe::globedoc {
namespace {

using globe::globedoc::testing::WorldFixture;
using util::ErrorCode;

TEST(FetchManyCodecTest, RequestRoundTrips) {
  FetchManyRequest request;
  request.oid = Oid::from_bytes(util::Bytes(Oid::kSize, 0x7)).value();
  request.include_cert = true;
  request.names = {"index.html", "logo.gif"};

  auto parsed = FetchManyRequest::parse(request.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->oid, request.oid);
  EXPECT_TRUE(parsed->include_cert);
  EXPECT_EQ(parsed->names, request.names);
}

TEST(FetchManyCodecTest, ResponseRoundTrips) {
  FetchManyResponse response;
  response.certificate = util::to_bytes("not-really-a-cert");
  response.items.push_back({true, util::to_bytes("element-bytes")});
  response.items.push_back({false, {}});

  auto parsed = FetchManyResponse::parse(response.serialize());
  ASSERT_TRUE(parsed.is_ok());
  ASSERT_TRUE(parsed->certificate.has_value());
  EXPECT_EQ(*parsed->certificate, *response.certificate);
  ASSERT_EQ(parsed->items.size(), 2u);
  EXPECT_TRUE(parsed->items[0].found);
  EXPECT_EQ(parsed->items[0].element, response.items[0].element);
  EXPECT_FALSE(parsed->items[1].found);
}

TEST(FetchManyCodecTest, RejectsEmptyAndOversizedBatches) {
  FetchManyRequest request;
  request.oid = Oid::from_bytes(util::Bytes(Oid::kSize, 0x7)).value();

  // Zero names: nothing to fetch, protocol error on the wire.
  auto empty = FetchManyRequest::parse(request.serialize());
  EXPECT_FALSE(empty.is_ok());
  EXPECT_EQ(empty.code(), ErrorCode::kProtocol);

  // One past the batch cap: a hostile client cannot demand unbounded work.
  for (std::size_t i = 0; i <= kFetchManyMaxElements; ++i) {
    request.names.push_back("el" + std::to_string(i));
  }
  auto oversized = FetchManyRequest::parse(request.serialize());
  EXPECT_FALSE(oversized.is_ok());
  EXPECT_EQ(oversized.code(), ErrorCode::kProtocol);
}

TEST(FetchManyCodecTest, RejectsTruncatedPayloads) {
  FetchManyRequest request;
  request.oid = Oid::from_bytes(util::Bytes(Oid::kSize, 0x7)).value();
  request.names = {"index.html"};
  util::Bytes wire = request.serialize();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    auto parsed = FetchManyRequest::parse(
        util::BytesView(wire.data(), cut));
    EXPECT_FALSE(parsed.is_ok()) << "accepted a " << cut << "-byte prefix";
  }

  FetchManyResponse response;
  response.items.push_back({true, util::to_bytes("x")});
  util::Bytes resp_wire = response.serialize();
  for (std::size_t cut = 0; cut < resp_wire.size(); ++cut) {
    auto parsed = FetchManyResponse::parse(
        util::BytesView(resp_wire.data(), cut));
    EXPECT_FALSE(parsed.is_ok()) << "accepted a " << cut << "-byte prefix";
  }
}

struct FetchManyServerTest : WorldFixture {};

TEST_F(FetchManyServerTest, BatchReturnsElementsAndCertificate) {
  FetchManyRequest request;
  request.oid = owner->object().oid();
  request.include_cert = true;
  request.names = {"index.html", "story.txt", "no-such-element"};

  auto response = fetch_many(*client_flow, server_ep, request);
  ASSERT_TRUE(response.is_ok());
  ASSERT_TRUE(response->certificate.has_value());
  ASSERT_EQ(response->items.size(), 3u);
  EXPECT_TRUE(response->items[0].found);
  EXPECT_TRUE(response->items[1].found);
  EXPECT_FALSE(response->items[2].found);

  // The batch carries verifiable content: certificate parses, verifies
  // under the object key, and each element passes its entry check.
  auto certificate = IntegrityCertificate::parse(*response->certificate);
  ASSERT_TRUE(certificate.is_ok());
  auto snapshot = owner->object().snapshot();
  auto object_key = crypto::RsaPublicKey::parse(snapshot.public_key);
  ASSERT_TRUE(object_key.is_ok());
  EXPECT_TRUE(certificate->verify_signature(*object_key));
  auto element = PageElement::parse(response->items[1].element);
  ASSERT_TRUE(element.is_ok());
  EXPECT_TRUE(certificate
                  ->check_element("story.txt", *element, client_flow->now())
                  .is_ok());
  EXPECT_EQ(util::to_string(element->content), "full text");
}

TEST_F(FetchManyServerTest, OneRoundTripNotOnePerElement) {
  // The whole point: latency of a 3-element batch ≈ latency of one element
  // (one request/response over the 5ms link, not three).
  FetchManyRequest one;
  one.oid = owner->object().oid();
  one.names = {"index.html"};
  util::SimTime t0 = client_flow->now();
  ASSERT_TRUE(fetch_many(*client_flow, server_ep, one).is_ok());
  const util::SimDuration single = client_flow->now() - t0;

  FetchManyRequest three;
  three.oid = owner->object().oid();
  three.names = {"index.html", "logo.gif", "story.txt"};
  t0 = client_flow->now();
  ASSERT_TRUE(fetch_many(*client_flow, server_ep, three).is_ok());
  const util::SimDuration batch = client_flow->now() - t0;

  // Allow for the bigger payload's transfer time, but not 3 round trips.
  EXPECT_LT(batch, 2 * single);
}

TEST_F(FetchManyServerTest, ClientRejectsOutOfRangeBatchSizes) {
  FetchManyRequest request;
  request.oid = owner->object().oid();
  auto empty = fetch_many(*client_flow, server_ep, request);
  EXPECT_FALSE(empty.is_ok());
  EXPECT_EQ(empty.code(), ErrorCode::kInvalidArgument);

  for (std::size_t i = 0; i <= kFetchManyMaxElements; ++i) {
    request.names.push_back("el" + std::to_string(i));
  }
  auto oversized = fetch_many(*client_flow, server_ep, request);
  EXPECT_FALSE(oversized.is_ok());
  EXPECT_EQ(oversized.code(), ErrorCode::kInvalidArgument);
}

TEST_F(FetchManyServerTest, UnknownObjectIsNotFound) {
  FetchManyRequest request;
  request.oid = Oid::from_bytes(util::Bytes(Oid::kSize, 0x55)).value();
  request.names = {"index.html"};
  auto response = fetch_many(*client_flow, server_ep, request);
  EXPECT_FALSE(response.is_ok());
}


TEST(FetchManyCodecTest, RejectsForgedCountHeaderWithoutAllocating) {
  // A ~30-byte frame claiming 2^32-1 elements: the count must be rejected
  // against the protocol ceiling before reserve() ever sees it — a hostile
  // peer spends a handful of bytes, not our memory.
  util::Writer w;
  w.raw(util::Bytes(Oid::kSize, 0x7));
  w.u8(0);             // include_cert = false
  w.u32(0xFFFFFFFFu);  // forged element count
  auto request = FetchManyRequest::parse(w.take());
  EXPECT_FALSE(request.is_ok());
  EXPECT_EQ(request.code(), ErrorCode::kProtocol);

  util::Writer rw;
  rw.u8(0);             // no certificate
  rw.u32(0xFFFFFFFFu);  // forged item count
  auto response = FetchManyResponse::parse(rw.take());
  EXPECT_FALSE(response.is_ok());
  EXPECT_EQ(response.code(), ErrorCode::kProtocol);
}
}  // namespace
}  // namespace globe::globedoc
