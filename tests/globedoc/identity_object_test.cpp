#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "globedoc/identity.hpp"
#include "globedoc/object.hpp"

namespace globe::globedoc {
namespace {

using util::Bytes;
using util::ErrorCode;
using util::to_bytes;

crypto::RsaKeyPair make_key(std::uint64_t seed) {
  auto rng = crypto::HmacDrbg::from_seed(seed);
  return crypto::rsa_generate(512, rng);
}

struct IdentityFixture : ::testing::Test {
  IdentityFixture()
      : ca("VeriTrust Root CA", make_key(21)),
        other_ca("Shady CA", make_key(22)),
        object_key(make_key(23)),
        oid(Oid::from_public_key(object_key.pub)) {
    trust.trust(ca.name(), ca.public_key());
  }

  CertificateAuthority ca;
  CertificateAuthority other_ca;
  crypto::RsaKeyPair object_key;
  Oid oid;
  TrustStore trust;
};

TEST_F(IdentityFixture, IssueAndVerify) {
  auto cert = ca.issue("Vrije Universiteit Amsterdam", oid, util::seconds(100));
  EXPECT_TRUE(trust.verify(cert, oid, util::seconds(50)).is_ok());
}

TEST_F(IdentityFixture, UntrustedIssuerRejected) {
  auto cert = other_ca.issue("Evil Corp", oid, util::seconds(100));
  EXPECT_EQ(trust.verify(cert, oid, 0).code(), ErrorCode::kUntrustedIssuer);
}

TEST_F(IdentityFixture, ForgedSignatureRejected) {
  auto cert = ca.issue("Vrije Universiteit", oid, util::seconds(100));
  cert.signature[5] ^= 1;
  EXPECT_EQ(trust.verify(cert, oid, 0).code(), ErrorCode::kBadSignature);
}

TEST_F(IdentityFixture, SubjectTamperRejected) {
  auto cert = ca.issue("Vrije Universiteit", oid, util::seconds(100));
  cert.subject = "Evil Universiteit";
  EXPECT_EQ(trust.verify(cert, oid, 0).code(), ErrorCode::kBadSignature);
}

TEST_F(IdentityFixture, WrongObjectRejected) {
  Oid other_oid = Oid::from_public_key(make_key(24).pub);
  auto cert = ca.issue("Vrije Universiteit", other_oid, util::seconds(100));
  EXPECT_EQ(trust.verify(cert, oid, 0).code(), ErrorCode::kWrongElement);
}

TEST_F(IdentityFixture, ExpiredRejected) {
  auto cert = ca.issue("Vrije Universiteit", oid, util::seconds(100));
  EXPECT_EQ(trust.verify(cert, oid, util::seconds(100)).code(), ErrorCode::kExpired);
}

TEST_F(IdentityFixture, SerializationRoundTrip) {
  auto cert = ca.issue("Vrije Universiteit", oid, util::seconds(100));
  auto parsed = IdentityCertificate::parse(cert.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->subject, cert.subject);
  EXPECT_EQ(parsed->issuer, cert.issuer);
  EXPECT_TRUE(trust.verify(*parsed, oid, 0).is_ok());
  EXPECT_FALSE(IdentityCertificate::parse(to_bytes("junk")).is_ok());
}

TEST_F(IdentityFixture, FirstTrustedSubjectScansList) {
  std::vector<IdentityCertificate> certs;
  certs.push_back(other_ca.issue("Evil Corp", oid, util::seconds(100)));
  certs.push_back(ca.issue("Vrije Universiteit", oid, util::seconds(100)));
  certs.push_back(ca.issue("Second Identity", oid, util::seconds(100)));
  auto subject = trust.first_trusted_subject(certs, oid, 0);
  ASSERT_TRUE(subject.has_value());
  EXPECT_EQ(*subject, "Vrije Universiteit");  // first match wins (paper §3.1.2)
  EXPECT_FALSE(trust.first_trusted_subject({certs[0]}, oid, 0).has_value());
  EXPECT_FALSE(trust.first_trusted_subject({}, oid, 0).has_value());
}

TEST_F(IdentityFixture, TrustStoreManagement) {
  TrustStore ts;
  EXPECT_EQ(ts.size(), 0u);
  EXPECT_FALSE(ts.trusts("VeriTrust Root CA"));
  ts.trust("VeriTrust Root CA", ca.public_key());
  EXPECT_TRUE(ts.trusts("VeriTrust Root CA"));
  EXPECT_EQ(ts.size(), 1u);
}

// --- GlobeDocObject ----------------------------------------------------

TEST(ObjectTest, CreateDerivesOidFromFreshKey) {
  auto rng = crypto::HmacDrbg::from_seed(30);
  auto object = GlobeDocObject::create(rng, 512);
  EXPECT_EQ(object.oid(), Oid::from_public_key(object.public_key()));
  EXPECT_TRUE(object.dirty());
  EXPECT_EQ(object.version(), 0u);
}

TEST(ObjectTest, ElementLifecycle) {
  GlobeDocObject object(make_key(31));
  object.put_element({"a.html", "text/html", to_bytes("A")});
  object.put_element({"b.gif", "image/gif", to_bytes("B")});
  EXPECT_EQ(object.element_count(), 2u);
  ASSERT_NE(object.element("a.html"), nullptr);
  EXPECT_EQ(object.element("a.html")->content, to_bytes("A"));
  EXPECT_EQ(object.element("ghost"), nullptr);

  object.put_element({"a.html", "text/html", to_bytes("A2")});  // replace
  EXPECT_EQ(object.element_count(), 2u);
  EXPECT_EQ(object.element("a.html")->content, to_bytes("A2"));

  object.remove_element("b.gif");
  EXPECT_EQ(object.element_count(), 1u);
  EXPECT_THROW(object.put_element({"", "x", {}}), std::invalid_argument);
}

TEST(ObjectTest, SignStateClearsDirtyAndBumpsVersion) {
  GlobeDocObject object(make_key(32));
  object.put_element({"x", "text/plain", to_bytes("x")});
  EXPECT_TRUE(object.dirty());
  object.sign_state(0, util::seconds(60));
  EXPECT_FALSE(object.dirty());
  EXPECT_EQ(object.version(), 1u);

  object.put_element({"y", "text/plain", to_bytes("y")});
  EXPECT_TRUE(object.dirty());
  object.sign_state(0, util::seconds(60));
  EXPECT_EQ(object.version(), 2u);
}

TEST(ObjectTest, SnapshotRequiresSignedState) {
  GlobeDocObject object(make_key(33));
  object.put_element({"x", "text/plain", to_bytes("x")});
  EXPECT_THROW(object.snapshot(), std::logic_error);
  object.sign_state(util::seconds(5), util::seconds(60));
  ReplicaState state = object.snapshot();
  EXPECT_EQ(state.elements.size(), 1u);
  EXPECT_EQ(state.certificate.version(), 1u);
  // The snapshot's certificate must verify under the snapshot's key.
  auto key = crypto::RsaPublicKey::parse(state.public_key);
  ASSERT_TRUE(key.is_ok());
  EXPECT_TRUE(state.certificate.verify_signature(*key));
  EXPECT_TRUE(state.certificate
                  .check_element("x", state.elements[0], util::seconds(6))
                  .is_ok());
}

TEST(ObjectTest, ReplicaStateSerializationRoundTrip) {
  GlobeDocObject object(make_key(34));
  object.put_element({"index.html", "text/html", to_bytes("<html/>")});
  object.put_element({"logo.gif", "image/gif", Bytes(50, 9)});
  CertificateAuthority ca("CA", make_key(35));
  object.add_identity_certificate(ca.issue("ACME", object.oid(), util::seconds(99)));
  object.sign_state(0, util::seconds(60));

  ReplicaState state = object.snapshot();
  auto parsed = ReplicaState::parse(state.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->elements.size(), 2u);
  EXPECT_EQ(parsed->identity_certs.size(), 1u);
  EXPECT_EQ(parsed->public_key, state.public_key);
  EXPECT_EQ(parsed->certificate.version(), state.certificate.version());
  EXPECT_EQ(parsed->content_bytes(), state.content_bytes());
  ASSERT_NE(parsed->find("logo.gif"), nullptr);
  EXPECT_EQ(parsed->find("ghost"), nullptr);
  EXPECT_FALSE(ReplicaState::parse(to_bytes("junk")).is_ok());
}

}  // namespace
}  // namespace globe::globedoc
