#include "globedoc/server.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "net/simnet.hpp"
#include "util/serial.hpp"

namespace globe::globedoc {
namespace {

using util::Bytes;
using util::ErrorCode;
using util::to_bytes;

crypto::RsaKeyPair make_key(std::uint64_t seed) {
  auto rng = crypto::HmacDrbg::from_seed(seed);
  return crypto::rsa_generate(512, rng);
}

struct ServerFixture : ::testing::Test {
  void SetUp() override {
    host = net.add_host({"server", net::CpuModel{}});
    client_host = net.add_host({"client", net::CpuModel{}});
    net.set_default_link({util::millis(2), 1e6});

    owner_key = make_key(51);
    intruder_key = make_key(52);
    server = std::make_unique<ObjectServer>("srv", 7);
    server->authorize(owner_key.pub);
    server->register_with(dispatcher);
    ep = net::Endpoint{host, 8000};
    net.bind(ep, dispatcher.handler());

    GlobeDocObject object(make_key(53));
    object.put_element({"index.html", "text/html", to_bytes("<html/>")});
    object.put_element({"data.bin", "application/octet-stream", Bytes(64, 1)});
    object.sign_state(0, util::seconds(3600));
    oid = object.oid();
    state_v1 = object.snapshot();

    object.put_element({"extra.txt", "text/plain", to_bytes("more")});
    object.sign_state(0, util::seconds(3600));
    state_v2 = object.snapshot();

    flow = net.open_flow(client_host);
  }

  net::SimNet net;
  net::HostId host, client_host;
  crypto::RsaKeyPair owner_key, intruder_key;
  std::unique_ptr<ObjectServer> server;
  rpc::ServiceDispatcher dispatcher;
  net::Endpoint ep;
  Oid oid;
  ReplicaState state_v1, state_v2;
  std::unique_ptr<net::SimFlow> flow;
};

TEST_F(ServerFixture, AuthorizedCreateUpdateDelete) {
  AdminClient admin(*flow, ep, owner_key);
  EXPECT_TRUE(admin.create_replica(state_v1).is_ok());
  EXPECT_TRUE(server->hosts(oid));
  EXPECT_EQ(server->replica_count(), 1u);

  EXPECT_TRUE(admin.update_replica(state_v2).is_ok());
  auto list = admin.list_replicas();
  ASSERT_TRUE(list.is_ok());
  ASSERT_EQ(list->size(), 1u);
  EXPECT_EQ((*list)[0], oid);

  EXPECT_TRUE(admin.delete_replica(oid).is_ok());
  EXPECT_FALSE(server->hosts(oid));
}

TEST_F(ServerFixture, UnauthorizedKeyRejected) {
  AdminClient intruder(*flow, ep, intruder_key);
  EXPECT_EQ(intruder.create_replica(state_v1).code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(server->replica_count(), 0u);
}

TEST_F(ServerFixture, RevokedKeyRejected) {
  AdminClient admin(*flow, ep, owner_key);
  EXPECT_TRUE(admin.create_replica(state_v1).is_ok());
  server->revoke(owner_key.pub);
  EXPECT_FALSE(server->is_authorized(owner_key.pub));
  EXPECT_EQ(admin.update_replica(state_v2).code(), ErrorCode::kPermissionDenied);
}

TEST_F(ServerFixture, OnlyCreatorMayManageReplica) {
  crypto::RsaKeyPair second_owner = make_key(54);
  server->authorize(second_owner.pub);

  AdminClient creator(*flow, ep, owner_key);
  EXPECT_TRUE(creator.create_replica(state_v1).is_ok());

  AdminClient other(*flow, ep, second_owner);
  EXPECT_EQ(other.update_replica(state_v2).code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(other.delete_replica(oid).code(), ErrorCode::kPermissionDenied);
  EXPECT_TRUE(server->hosts(oid));
}

TEST_F(ServerFixture, DuplicateCreateRejected) {
  AdminClient admin(*flow, ep, owner_key);
  EXPECT_TRUE(admin.create_replica(state_v1).is_ok());
  EXPECT_EQ(admin.create_replica(state_v1).code(), ErrorCode::kAlreadyExists);
}

TEST_F(ServerFixture, UpdateNonexistentRejected) {
  AdminClient admin(*flow, ep, owner_key);
  EXPECT_EQ(admin.update_replica(state_v1).code(), ErrorCode::kNotFound);
  EXPECT_EQ(admin.delete_replica(oid).code(), ErrorCode::kNotFound);
}

TEST_F(ServerFixture, VersionRollbackRefused) {
  AdminClient admin(*flow, ep, owner_key);
  EXPECT_TRUE(admin.create_replica(state_v2).is_ok());  // version 2
  EXPECT_EQ(admin.update_replica(state_v1).code(), ErrorCode::kInvalidArgument);
}

TEST_F(ServerFixture, NonceReplayRejected) {
  AdminClient admin(*flow, ep, owner_key);
  EXPECT_TRUE(admin.create_replica(state_v1).is_ok());

  // Hand-roll a request reusing a consumed nonce.
  rpc::RpcClient rpc_client(*flow, ep);
  auto nonce_raw = rpc_client.call(rpc::kGlobeDocAdmin, kChallenge, Bytes{});
  ASSERT_TRUE(nonce_raw.is_ok());
  util::Reader r(*nonce_raw);
  Bytes nonce = r.bytes();

  util::Writer payload;
  payload.bytes(state_v2.serialize());
  util::Writer signed_data;
  signed_data.str("update");
  signed_data.bytes(nonce);
  signed_data.raw(payload.buffer());
  Bytes sig = crypto::rsa_sign_sha256(owner_key.priv, signed_data.buffer());

  util::Writer req;
  req.bytes(nonce);
  req.bytes(owner_key.pub.serialize());
  req.bytes(sig);
  req.raw(payload.buffer());

  // First use succeeds, replay fails.
  EXPECT_TRUE(rpc_client.call(rpc::kGlobeDocAdmin, kUpdateReplica, req.buffer()).is_ok());
  EXPECT_EQ(rpc_client.call(rpc::kGlobeDocAdmin, kUpdateReplica, req.buffer()).code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(ServerFixture, BadSignatureRejected) {
  rpc::RpcClient rpc_client(*flow, ep);
  auto nonce_raw = rpc_client.call(rpc::kGlobeDocAdmin, kChallenge, Bytes{});
  ASSERT_TRUE(nonce_raw.is_ok());
  util::Reader r(*nonce_raw);
  Bytes nonce = r.bytes();

  util::Writer payload;
  payload.bytes(state_v1.serialize());
  Bytes bogus_sig(64, 0xAA);

  util::Writer req;
  req.bytes(nonce);
  req.bytes(owner_key.pub.serialize());
  req.bytes(bogus_sig);
  req.raw(payload.buffer());
  EXPECT_EQ(rpc_client.call(rpc::kGlobeDocAdmin, kCreateReplica, req.buffer()).code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(ServerFixture, AccessInterfaceServesElements) {
  server->install_replica_unchecked(state_v1);
  rpc::RpcClient client(*flow, ep);

  util::Writer req;
  req.raw(oid.to_bytes());
  req.str("index.html");
  auto raw = client.call(rpc::kGlobeDocAccess, kGetElement, req.buffer());
  ASSERT_TRUE(raw.is_ok());
  auto el = PageElement::parse(*raw);
  ASSERT_TRUE(el.is_ok());
  EXPECT_EQ(el->name, "index.html");
  EXPECT_EQ(server->elements_served(), 1u);
  EXPECT_GT(server->content_bytes_served(), 0u);
}

TEST_F(ServerFixture, AccessUnknownElementOrObject) {
  server->install_replica_unchecked(state_v1);
  rpc::RpcClient client(*flow, ep);

  util::Writer missing_el;
  missing_el.raw(oid.to_bytes());
  missing_el.str("ghost.html");
  EXPECT_EQ(client.call(rpc::kGlobeDocAccess, kGetElement, missing_el.buffer()).code(),
            ErrorCode::kNotFound);

  util::Writer missing_obj;
  missing_obj.raw(Bytes(Oid::kSize, 0xEE));
  missing_obj.str("index.html");
  EXPECT_EQ(client.call(rpc::kGlobeDocAccess, kGetElement, missing_obj.buffer()).code(),
            ErrorCode::kNotFound);
}

TEST_F(ServerFixture, ListElements) {
  server->install_replica_unchecked(state_v2);
  rpc::RpcClient client(*flow, ep);
  util::Writer req;
  req.raw(oid.to_bytes());
  auto raw = client.call(rpc::kGlobeDocAccess, kListElements, req.buffer());
  ASSERT_TRUE(raw.is_ok());
  util::Reader r(*raw);
  EXPECT_EQ(r.u32(), 3u);
}

TEST_F(ServerFixture, SecurityInterfaceServesKeyAndCerts) {
  server->install_replica_unchecked(state_v1);
  rpc::RpcClient client(*flow, ep);
  util::Writer req;
  req.raw(oid.to_bytes());

  auto key_raw = client.call(rpc::kGlobeDocSecurity, kGetPublicKey, req.buffer());
  ASSERT_TRUE(key_raw.is_ok());
  auto key = crypto::RsaPublicKey::parse(*key_raw);
  ASSERT_TRUE(key.is_ok());
  EXPECT_TRUE(oid.matches_key(*key));

  auto cert_raw = client.call(rpc::kGlobeDocSecurity, kGetIntegrityCert, req.buffer());
  ASSERT_TRUE(cert_raw.is_ok());
  auto cert = IntegrityCertificate::parse(*cert_raw);
  ASSERT_TRUE(cert.is_ok());
  EXPECT_TRUE(cert->verify_signature(*key));

  auto ids_raw = client.call(rpc::kGlobeDocSecurity, kGetIdentityCerts, req.buffer());
  ASSERT_TRUE(ids_raw.is_ok());
  util::Reader r(*ids_raw);
  EXPECT_EQ(r.u32(), 0u);  // no identity certs in this fixture object
}

// Verify-before-use regressions (paper §3.2.2): admin auth proves WHO
// pushed a state, not that the state is internally authentic.  The server
// must run ReplicaState::verify() before anything reaches the hosted set.

TEST_F(ServerFixture, TamperedStatePushRejected) {
  AdminClient admin(*flow, ep, owner_key);
  ReplicaState tampered = state_v1;
  ASSERT_FALSE(tampered.elements.empty());
  tampered.elements[0].content.push_back(0xEE);  // flipped after signing
  EXPECT_FALSE(admin.create_replica(tampered).is_ok());
  EXPECT_FALSE(server->hosts(oid));
  EXPECT_EQ(server->replica_count(), 0u);
}

TEST_F(ServerFixture, WrongKeyStatePushRejected) {
  // public_key swapped out: SHA-1(key) no longer matches the certificate's
  // OID, so the self-certifying check must fail even though the pusher is
  // fully authorized.
  AdminClient admin(*flow, ep, owner_key);
  ReplicaState forged = state_v1;
  forged.public_key = intruder_key.pub.serialize();
  EXPECT_FALSE(admin.create_replica(forged).is_ok());
  EXPECT_FALSE(server->hosts(oid));
}

TEST_F(ServerFixture, TamperedUpdateKeepsPriorState) {
  AdminClient admin(*flow, ep, owner_key);
  ASSERT_TRUE(admin.create_replica(state_v1).is_ok());
  ReplicaState tampered = state_v2;
  ASSERT_FALSE(tampered.elements.empty());
  tampered.elements[0].content.clear();
  EXPECT_FALSE(admin.update_replica(tampered).is_ok());
  // The verified v1 replica must still be hosted, untouched.
  EXPECT_TRUE(server->hosts(oid));
  EXPECT_EQ(server->replica_count(), 1u);
}

TEST_F(ServerFixture, MalformedPayloadsRejected) {
  rpc::RpcClient client(*flow, ep);
  EXPECT_EQ(client.call(rpc::kGlobeDocAccess, kGetElement, to_bytes("xx")).code(),
            ErrorCode::kProtocol);
  EXPECT_EQ(client.call(rpc::kGlobeDocAdmin, kChallenge, to_bytes("payload")).code(),
            ErrorCode::kProtocol);
  EXPECT_EQ(client.call(rpc::kGlobeDocAdmin, kListReplicas, to_bytes("p")).code(),
            ErrorCode::kProtocol);
}

}  // namespace
}  // namespace globe::globedoc
