// The proxy's per-fetch span tree: structure matches the Fig. 3 pipeline
// and the security-stage spans sum to the reported security_time (they ARE
// the Fig. 4 numerator — derived, not separately accumulated).
#include <gtest/gtest.h>

#include "globedoc/proxy.hpp"
#include "obs/trace.hpp"
#include "tests/globedoc/world_fixture.hpp"

namespace globe::globedoc {
namespace {

using globe::globedoc::testing::WorldFixture;

struct ProxySpanFixture : WorldFixture {};

TEST_F(ProxySpanFixture, TraceHasOneSpanPerPipelineStage) {
  GlobeDocProxy proxy(*client_flow, proxy_config());
  auto result = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();

  const obs::SpanRecord& trace = result->metrics.trace;
  EXPECT_EQ(trace.name, FetchStage::kFetch);
  for (const char* stage :
       {FetchStage::kResolve, FetchStage::kLocate, FetchStage::kKeyCheck,
        FetchStage::kIdentity, FetchStage::kIntegrityVerify,
        FetchStage::kElementVerify}) {
    const obs::SpanRecord* span = obs::find_span(trace, stage);
    ASSERT_NE(span, nullptr) << "missing span: " << stage;
    EXPECT_GT(span->duration, 0u) << stage;
  }
}

TEST_F(ProxySpanFixture, SecurityStagesSumToReportedSecurityTime) {
  GlobeDocProxy proxy(*client_flow, proxy_config());
  auto result = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();

  const auto& m = result->metrics;
  util::SimDuration sum = obs::span_total(m.trace, FetchStage::kKeyCheck) +
                          obs::span_total(m.trace, FetchStage::kIdentity) +
                          obs::span_total(m.trace, FetchStage::kIntegrityVerify) +
                          obs::span_total(m.trace, FetchStage::kElementVerify);
  EXPECT_EQ(sum, m.security_time);
  EXPECT_GT(m.security_time, 0u);
  EXPECT_LT(m.security_time, m.total_time);
}

TEST_F(ProxySpanFixture, WithoutIdentityChecksIdentitySpanIsAbsent) {
  GlobeDocProxy proxy(*client_flow, proxy_config(/*identity=*/false));
  auto result = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();

  const obs::SpanRecord& trace = result->metrics.trace;
  EXPECT_EQ(obs::find_span(trace, FetchStage::kIdentity), nullptr);
  util::SimDuration sum = obs::span_total(trace, FetchStage::kKeyCheck) +
                          obs::span_total(trace, FetchStage::kIntegrityVerify) +
                          obs::span_total(trace, FetchStage::kElementVerify);
  EXPECT_EQ(sum, result->metrics.security_time);
}

TEST_F(ProxySpanFixture, RootSpanCoversTotalTime) {
  GlobeDocProxy proxy(*client_flow, proxy_config());
  auto result = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();

  const auto& m = result->metrics;
  EXPECT_EQ(m.trace.duration, m.total_time);
  // Children are contained in the root's half-open interval.
  for (const auto& child : m.trace.children) {
    EXPECT_GE(child.start, m.trace.start);
    EXPECT_LE(child.start + child.duration, m.trace.start + m.trace.duration);
  }
}

TEST_F(ProxySpanFixture, CachedRefetchSkipsResolveAndLocate) {
  auto config = proxy_config();
  config.cache_bindings = true;
  GlobeDocProxy proxy(*client_flow, config);
  ASSERT_TRUE(proxy.fetch(object_name, "index.html").is_ok());

  auto result = proxy.fetch(object_name, "story.txt");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const obs::SpanRecord& trace = result->metrics.trace;
  // The binding is cached: no resolve / locate / key-check work this time,
  // but the element itself is still verified.
  EXPECT_EQ(obs::find_span(trace, FetchStage::kResolve), nullptr);
  EXPECT_EQ(obs::find_span(trace, FetchStage::kLocate), nullptr);
  EXPECT_EQ(obs::find_span(trace, FetchStage::kKeyCheck), nullptr);
  ASSERT_NE(obs::find_span(trace, FetchStage::kElementVerify), nullptr);
  EXPECT_EQ(obs::span_total(trace, FetchStage::kElementVerify),
            result->metrics.security_time);
}

TEST_F(ProxySpanFixture, FetchCountersTrackOutcomes) {
  auto& registry = obs::global_registry();
  GlobeDocProxy proxy(*client_flow, proxy_config());
  std::uint64_t ok_before =
      registry.counter("proxy.fetches", {{"outcome", "ok"}}).value();
  std::uint64_t err_before =
      registry.counter("proxy.fetches", {{"outcome", "error"}}).value();

  ASSERT_TRUE(proxy.fetch(object_name, "index.html").is_ok());
  ASSERT_FALSE(proxy.fetch(object_name, "no-such-element").is_ok());

  EXPECT_EQ(registry.counter("proxy.fetches", {{"outcome", "ok"}}).value(),
            ok_before + 1);
  EXPECT_EQ(registry.counter("proxy.fetches", {{"outcome", "error"}}).value(),
            err_before + 1);
}

}  // namespace
}  // namespace globe::globedoc
