// Audited dynamic content (paper §6 extension, Gemini-style accountability).
#include "globedoc/dynamic.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "crypto/sha1.hpp"
#include "net/simnet.hpp"

namespace globe::globedoc {
namespace {

using util::Bytes;
using util::ErrorCode;
using util::to_bytes;

crypto::RsaKeyPair dyn_key(std::uint64_t seed) {
  auto rng = crypto::HmacDrbg::from_seed(seed);
  return crypto::rsa_generate(512, rng);
}

Generator stock_quotes() {
  return [](const std::string& query) {
    // Deterministic "dynamic" content keyed by the query.
    return to_bytes("<html>quote for " + query + ": " +
                    std::to_string(std::hash<std::string>{}(query) % 1000) +
                    "</html>");
  };
}

struct DynamicFixture : ::testing::Test {
  void SetUp() override {
    host = net.add_host({"host", net::CpuModel{}});
    net.set_default_link({util::millis(2), 1e6});

    object_keys = dyn_key(81);
    oid = Oid::from_public_key(object_keys.pub);

    replica_keys = dyn_key(82);
    replica = std::make_unique<DynamicReplicaServer>("paris-cache", replica_keys);
    replica->host(oid, "quotes", stock_quotes());
    replica->register_with(replica_dispatcher);
    replica_ep = net::Endpoint{host, 9100};
    net.bind(replica_ep, replica_dispatcher.handler());

    origin_keys = dyn_key(83);
    origin = std::make_unique<DynamicReplicaServer>("origin", origin_keys);
    origin->host(oid, "quotes", stock_quotes());
    origin->register_with(origin_dispatcher);
    origin_ep = net::Endpoint{host, 9101};
    net.bind(origin_ep, origin_dispatcher.handler());

    flow = net.open_flow(host);
  }

  DynamicAuditor::Config auditor_config(double p, std::uint64_t seed = 5) {
    DynamicAuditor::Config config;
    config.replica = replica_ep;
    config.origin = origin_ep;
    config.replica_server_key = replica_keys.pub;
    config.audit_probability = p;
    config.seed = seed;
    return config;
  }

  net::SimNet net;
  net::HostId host;
  crypto::RsaKeyPair object_keys, replica_keys, origin_keys;
  Oid oid;
  std::unique_ptr<DynamicReplicaServer> replica, origin;
  rpc::ServiceDispatcher replica_dispatcher, origin_dispatcher;
  net::Endpoint replica_ep, origin_ep;
  std::unique_ptr<net::SimFlow> flow;
};

TEST_F(DynamicFixture, HonestServerServesWithValidReceipt) {
  DynamicAuditor auditor(*flow, auditor_config(0.0));
  auto response = auditor.query(oid, "quotes", "ACME");
  ASSERT_TRUE(response.is_ok()) << response.status().to_string();
  EXPECT_NE(util::to_string(*response).find("quote for ACME"), std::string::npos);
  EXPECT_TRUE(auditor.proofs().empty());
}

TEST_F(DynamicFixture, HonestServerNeverIncriminated) {
  DynamicAuditor auditor(*flow, auditor_config(1.0));  // audit every query
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(auditor.query(oid, "quotes", "sym" + std::to_string(i)).is_ok());
  }
  EXPECT_EQ(auditor.audits_performed(), 20u);
  EXPECT_TRUE(auditor.proofs().empty());
}

TEST_F(DynamicFixture, CheatingServerCaughtByAudit) {
  replica->set_cheat([](Bytes response) {
    response.push_back('!');  // subtle manipulation of the quote
    return response;
  });
  DynamicAuditor auditor(*flow, auditor_config(1.0));
  auto response = auditor.query(oid, "quotes", "ACME");
  // The lie is served (detection is after the fact)...
  ASSERT_TRUE(response.is_ok());
  // ...but the audit produced a verifiable proof of misbehaviour.
  ASSERT_EQ(auditor.proofs().size(), 1u);
  EXPECT_TRUE(auditor.proofs()[0].verify(replica_keys.pub));
}

TEST_F(DynamicFixture, DetectionRateTracksAuditProbability) {
  replica->set_cheat([](Bytes response) {
    response[0] ^= 1;
    return response;
  });
  DynamicAuditor auditor(*flow, auditor_config(0.3, 99));
  const int kQueries = 200;
  for (int i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(auditor.query(oid, "quotes", "q" + std::to_string(i)).is_ok());
  }
  // ~30% of lies audited; every audit of a lie yields a proof.
  EXPECT_EQ(auditor.proofs().size(), auditor.audits_performed());
  EXPECT_GT(auditor.audits_performed(), kQueries * 3 / 20);  // > 15%
  EXPECT_LT(auditor.audits_performed(), kQueries * 9 / 20);  // < 45%
}

TEST_F(DynamicFixture, ForgedReceiptRejectedImmediately) {
  // An attacker without the server key cannot even get its lie accepted:
  // route through a wrapper that mangles the receipt signature.
  net::Endpoint evil_ep{host, 9102};
  auto inner = replica_dispatcher.handler();
  net.bind(evil_ep, [inner](net::ServerContext& ctx,
                            util::BytesView req) -> util::Result<Bytes> {
    auto resp = inner(ctx, req);
    if (resp.is_ok() && !resp->empty()) (*resp)[resp->size() - 1] ^= 1;
    return resp;
  });
  auto config = auditor_config(0.0);
  config.replica = evil_ep;
  DynamicAuditor auditor(*flow, config);
  EXPECT_EQ(auditor.query(oid, "quotes", "ACME").code(), ErrorCode::kBadSignature);
}

TEST_F(DynamicFixture, ReceiptForDifferentQueryRejected) {
  // A replay attack: the server answers query A with a (signed) answer to
  // query B.  The receipt binds the query, so this is caught immediately.
  net::Endpoint evil_ep{host, 9103};
  auto inner = replica_dispatcher.handler();
  net.bind(evil_ep, [inner, this](net::ServerContext& ctx,
                                  util::BytesView) -> util::Result<Bytes> {
    util::Writer w;
    w.u16(rpc::kGlobeDocDynamic);
    w.u16(kDynQuery);
    w.raw(oid.to_bytes());
    w.str("quotes");
    w.str("OTHER");
    return inner(ctx, w.buffer());
  });
  auto config = auditor_config(0.0);
  config.replica = evil_ep;
  DynamicAuditor auditor(*flow, config);
  EXPECT_EQ(auditor.query(oid, "quotes", "ACME").code(), ErrorCode::kWrongElement);
}

TEST_F(DynamicFixture, UnknownTemplateNotFound) {
  DynamicAuditor auditor(*flow, auditor_config(0.0));
  EXPECT_EQ(auditor.query(oid, "nonexistent", "q").code(), ErrorCode::kNotFound);
}

TEST_F(DynamicFixture, ProofDoesNotVerifyAgainstHonestContent) {
  // A malicious CLIENT cannot frame an honest server: a "proof" built from
  // a genuine receipt and the matching origin content does not verify.
  DynamicAuditor auditor(*flow, auditor_config(0.0));
  ASSERT_TRUE(auditor.query(oid, "quotes", "ACME").is_ok());

  // Hand-build a bogus proof from a genuine exchange.
  util::Writer req;
  req.raw(oid.to_bytes());
  req.str("quotes");
  req.str("ACME");
  rpc::RpcClient client(*flow, replica_ep);
  auto raw = client.call(rpc::kGlobeDocDynamic, kDynQuery, req.buffer());
  ASSERT_TRUE(raw.is_ok());
  util::Reader r(*raw);
  Bytes response = r.bytes();
  auto receipt = DynamicReceipt::parse(r.bytes());
  ASSERT_TRUE(receipt.is_ok());

  MisbehaviorProof framing{*receipt, response};  // content actually matches
  EXPECT_FALSE(framing.verify(replica_keys.pub));

  // Nor can the client forge the receipt to frame the server.
  MisbehaviorProof forged{*receipt, to_bytes("fabricated origin content")};
  forged.receipt.response_sha1[0] ^= 1;  // breaks the signature
  EXPECT_FALSE(forged.verify(replica_keys.pub));
}

TEST_F(DynamicFixture, ReceiptSerializationRoundTrip) {
  DynamicReceipt receipt;
  receipt.oid = oid;
  receipt.template_name = "quotes";
  receipt.query = "ACME";
  receipt.response_sha1 = crypto::Sha1::digest_bytes(to_bytes("content"));
  receipt.served_at = util::seconds(9);
  receipt.server_name = "paris-cache";
  receipt.signature = crypto::rsa_sign_sha256(replica_keys.priv, receipt.signed_body());

  auto parsed = DynamicReceipt::parse(receipt.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->query, "ACME");
  EXPECT_TRUE(parsed->verify(replica_keys.pub, to_bytes("content")));
  EXPECT_FALSE(parsed->verify(replica_keys.pub, to_bytes("other content")));
  EXPECT_FALSE(DynamicReceipt::parse(to_bytes("junk")).is_ok());
}

}  // namespace
}  // namespace globe::globedoc
