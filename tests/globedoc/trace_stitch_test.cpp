// End-to-end distributed tracing: one proxy fetch must yield ONE stitched
// trace whose server-side spans (naming, location, object server) sit under
// the proxy's pipeline stages — and the admin surface must serve it.
#include <gtest/gtest.h>

#include "globedoc/proxy.hpp"
#include "http/parser.hpp"
#include "obs/admin.hpp"
#include "obs/collector.hpp"
#include "obs/log.hpp"
#include "tests/globedoc/world_fixture.hpp"

namespace globe::globedoc {
namespace {

using testing::WorldFixture;

struct TraceStitchFixture : WorldFixture {
  void SetUp() override {
    WorldFixture::SetUp();
    // The proxy and every dispatcher default to the process-wide collector;
    // keep everything so the assertions below are deterministic.
    collector = &obs::global_trace_collector();
    collector->set_policy({/*keep_slower_than=*/0, /*keep_one_in=*/1});
    collector->clear();
  }

  obs::TraceCollector* collector = nullptr;
};

// Spans named "rpc:*" anywhere under `root`, depth-first.
std::vector<const obs::SpanRecord*> rpc_spans(const obs::SpanRecord& root) {
  std::vector<const obs::SpanRecord*> out;
  std::vector<const obs::SpanRecord*> stack{&root};
  while (!stack.empty()) {
    const obs::SpanRecord* node = stack.back();
    stack.pop_back();
    if (node->name.rfind("rpc:", 0) == 0) out.push_back(node);
    for (const auto& child : node->children) stack.push_back(&child);
  }
  return out;
}

TEST_F(TraceStitchFixture, OneFetchYieldsOneStitchedCrossHostTrace) {
  GlobeDocProxy proxy(*client_flow, proxy_config());
  auto result = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();

  const FetchMetrics& m = result->metrics;
  ASSERT_TRUE(m.trace_hi != 0 || m.trace_lo != 0);

  // ONE trace: the server-side fragments joined the proxy's, they did not
  // start traces of their own.
  EXPECT_EQ(collector->traces_seen(), 1u);
  auto trace = collector->find(m.trace_hi, m.trace_lo);
  ASSERT_TRUE(trace.has_value());
  EXPECT_TRUE(trace->complete);
  EXPECT_EQ(trace->root.name, FetchStage::kFetch);
  EXPECT_EQ(trace->root.host, "proxy");

  // Every hop of the pipeline produced a server-side fragment: at least the
  // naming resolve, the location lookup and the object-server calls.
  auto rpcs = rpc_spans(trace->root);
  EXPECT_GE(trace->fragments, 4u);
  EXPECT_EQ(rpcs.size(), trace->fragments - 1);
  for (const auto* span : rpcs) {
    EXPECT_NE(span->span_id, 0u);
    EXPECT_FALSE(span->host.empty());
  }

  // The stages contain their own remote work: resolve → naming server,
  // locate → location node, key_check → the object server's security
  // service, element_verify → the access service.
  const obs::SpanRecord* resolve = find_span(trace->root, FetchStage::kResolve);
  ASSERT_NE(resolve, nullptr);
  EXPECT_FALSE(find_all_spans(*resolve, "rpc:naming/1").empty());

  const obs::SpanRecord* locate = find_span(trace->root, FetchStage::kLocate);
  ASSERT_NE(locate, nullptr);
  EXPECT_GT(obs::remote_span_total(*locate), 0u);

  const obs::SpanRecord* key_check =
      find_span(trace->root, FetchStage::kKeyCheck);
  ASSERT_NE(key_check, nullptr);
  EXPECT_EQ(rpc_spans(*key_check).size(), 1u);
  EXPECT_EQ(rpc_spans(*key_check)[0]->name.rfind("rpc:gd.security/", 0), 0u);

  // The element transfer itself runs between stages (the verify span times
  // only the hashing + checks), so the access-service span is a direct
  // child of the fetch root.
  ASSERT_NE(find_span(trace->root, FetchStage::kElementVerify), nullptr);
  EXPECT_FALSE(find_all_spans(trace->root, "rpc:gd.access/1").empty());

  // The §4 decomposition: remote (server) time is a strict, nonzero part of
  // the total, and each stage's server time fits inside the stage.
  util::SimDuration server = obs::remote_span_total(trace->root);
  EXPECT_GT(server, 0u);
  EXPECT_LT(server, trace->root.duration);
  for (const char* stage :
       {FetchStage::kResolve, FetchStage::kLocate, FetchStage::kKeyCheck,
        FetchStage::kIdentity, FetchStage::kIntegrityVerify,
        FetchStage::kElementVerify}) {
    for (const auto* span : find_all_spans(trace->root, stage)) {
      EXPECT_LE(obs::remote_span_total(*span), span->duration) << stage;
    }
  }
}

TEST_F(TraceStitchFixture, SequentialFetchesKeepDistinctTraces) {
  GlobeDocProxy proxy(*client_flow, proxy_config());
  auto first = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(first.is_ok());
  auto second = proxy.fetch(object_name, "logo.gif");
  ASSERT_TRUE(second.is_ok());

  EXPECT_EQ(collector->traces_seen(), 2u);
  EXPECT_TRUE(first->metrics.trace_hi != second->metrics.trace_hi ||
              first->metrics.trace_lo != second->metrics.trace_lo);
  EXPECT_TRUE(collector->find(first->metrics.trace_hi, first->metrics.trace_lo)
                  .has_value());
  EXPECT_TRUE(
      collector->find(second->metrics.trace_hi, second->metrics.trace_lo)
          .has_value());
}

TEST_F(TraceStitchFixture, DedicatedCollectorReceivesTheProxyRoot) {
  // A proxy handed its own collector records roots there; the server-side
  // fragments still go to the global collector (their dispatchers were not
  // re-pointed), so the dedicated trace is the proxy-local view.
  obs::TraceCollector dedicated(8);
  dedicated.set_policy({/*keep_slower_than=*/0, /*keep_one_in=*/1});
  ProxyConfig config = proxy_config();
  config.trace_collector = &dedicated;
  GlobeDocProxy proxy(*client_flow, config);
  auto result = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(result.is_ok());

  EXPECT_EQ(dedicated.traces_seen(), 1u);
  auto trace =
      dedicated.find(result->metrics.trace_hi, result->metrics.trace_lo);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->root.name, FetchStage::kFetch);
}

TEST_F(TraceStitchFixture, AdminSurfaceServesTheStitchedTrace) {
  GlobeDocProxy proxy(*client_flow, proxy_config());
  auto result = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(result.is_ok());

  obs::AdminConfig config;
  config.service = "proxy";
  obs::AdminHttpServer admin(config);
  proxy.register_health_checks(admin);
  net::Endpoint admin_ep{client_host, 9901};
  net.bind(admin_ep, admin.handler());

  auto flow = net.open_flow(infra_host);
  http::HttpRequest req;
  req.target = "/tracez";
  auto raw = flow->call(admin_ep, req.serialize());
  ASSERT_TRUE(raw.is_ok());
  auto resp = http::parse_response(*raw);
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp->status, 200);
  std::string body = util::to_string(resp->body);
  std::string trace_id =
      obs::TraceContext{result->metrics.trace_hi, result->metrics.trace_lo, 0,
                        true}
          .trace_id();
  EXPECT_NE(body.find(trace_id), std::string::npos);
  EXPECT_NE(body.find("\"fetch\""), std::string::npos);
  EXPECT_NE(body.find("rpc:gd.access/1"), std::string::npos);
}

TEST_F(TraceStitchFixture, ProxyHealthzFlipsOnReplicaLinkFailure) {
  GlobeDocProxy proxy(*client_flow, proxy_config());
  ASSERT_TRUE(proxy.fetch(object_name, "index.html").is_ok());

  obs::AdminConfig config;
  config.service = "proxy";
  obs::AdminHttpServer admin(config);
  proxy.register_health_checks(admin);
  net::Endpoint admin_ep{client_host, 9902};
  net.bind(admin_ep, admin.handler());
  auto flow = net.open_flow(infra_host);

  auto healthz = [&]() {
    http::HttpRequest req;
    req.target = "/healthz";
    auto raw = flow->call(admin_ep, req.serialize());
    EXPECT_TRUE(raw.is_ok());
    auto resp = http::parse_response(*raw);
    EXPECT_TRUE(resp.is_ok());
    return *resp;
  };

  EXPECT_EQ(healthz().status, 200);

  // Cut the client's path to the object server: the "replica" probe (the
  // last endpoint a fetch was served from) must now fail.
  net.set_link_down(client_host, server_host, true);
  http::HttpResponse down = healthz();
  EXPECT_EQ(down.status, 503);
  EXPECT_NE(util::to_string(down.body).find("\"name\":\"replica\",\"ok\":false"),
            std::string::npos);

  net.set_link_down(client_host, server_host, false);
  EXPECT_EQ(healthz().status, 200);
}

TEST_F(TraceStitchFixture, VerificationFailureEventsJoinTheFetchTrace) {
  // Tamper with the served replica AFTER binding material is published:
  // overwrite one element so element verification fails, and check the
  // emitted warn event carries the fetch's trace id.
  obs::global_event_log().clear();
  ReplicaState state = owner->sign_and_snapshot(0, util::seconds(3600));
  state.elements[0].content = util::to_bytes("tampered!");
  object_server->install_replica_unchecked(state);

  GlobeDocProxy proxy(*client_flow, proxy_config());
  auto result = proxy.fetch(object_name, "index.html");
  ASSERT_FALSE(result.is_ok());

  bool found = false;
  for (const auto& record : obs::global_event_log().recent(64)) {
    if (record.event != "element_rejected") continue;
    found = true;
    EXPECT_TRUE(record.trace_hi != 0 || record.trace_lo != 0);
    ASSERT_FALSE(
        obs::global_event_log().for_trace(record.trace_hi, record.trace_lo)
            .empty());
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace globe::globedoc
