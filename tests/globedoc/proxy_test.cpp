#include "globedoc/proxy.hpp"

#include <gtest/gtest.h>

#include "globedoc/adversary.hpp"
#include "http/static_server.hpp"
#include "tests/globedoc/world_fixture.hpp"

namespace globe::globedoc {
namespace {

using globe::globedoc::testing::WorldFixture;
using globe::globedoc::testing::fixture_key;
using util::Bytes;
using util::ErrorCode;
using util::to_bytes;

struct ProxyFixture : WorldFixture {};

TEST_F(ProxyFixture, SecureFetchSucceeds) {
  GlobeDocProxy proxy(*client_flow, proxy_config());
  auto result = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(util::to_string(result->element.content),
            "<html><body>news story</body></html>");
  EXPECT_EQ(result->element.content_type, "text/html");
  ASSERT_TRUE(result->certified_as.has_value());
  EXPECT_EQ(*result->certified_as, "Vrije Universiteit");
  EXPECT_EQ(result->metrics.replicas_tried, 1u);
  EXPECT_GT(result->metrics.total_time, 0u);
  EXPECT_GT(result->metrics.security_time, 0u);
  EXPECT_LT(result->metrics.security_time, result->metrics.total_time);
  EXPECT_EQ(result->metrics.content_bytes, result->element.content.size());
}

TEST_F(ProxyFixture, FetchViaHybridUrl) {
  GlobeDocProxy proxy(*client_flow, proxy_config());
  auto result = proxy.fetch_url("http://globe/news.vu.nl/story.txt");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(util::to_string(result->element.content), "full text");
}

TEST_F(ProxyFixture, AllElementsFetchable) {
  GlobeDocProxy proxy(*client_flow, proxy_config());
  for (const char* name : {"index.html", "logo.gif", "story.txt"}) {
    EXPECT_TRUE(proxy.fetch(object_name, name).is_ok()) << name;
  }
}

TEST_F(ProxyFixture, UnknownObjectNameNotFound) {
  GlobeDocProxy proxy(*client_flow, proxy_config());
  EXPECT_EQ(proxy.fetch("ghost.vu.nl", "index.html").code(), ErrorCode::kNotFound);
}

TEST_F(ProxyFixture, UnknownElementNotFound) {
  GlobeDocProxy proxy(*client_flow, proxy_config());
  EXPECT_EQ(proxy.fetch(object_name, "missing.html").code(), ErrorCode::kNotFound);
}

TEST_F(ProxyFixture, NoIdentityRequestedMeansNoCertifiedAs) {
  GlobeDocProxy proxy(*client_flow, proxy_config(/*identity=*/false));
  auto result = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(result.is_ok());
  EXPECT_FALSE(result->certified_as.has_value());
}

TEST_F(ProxyFixture, RequireIdentityFailsWithoutTrustedCa) {
  ProxyConfig config = proxy_config(/*identity=*/false);
  config.request_identity = true;
  config.require_identity = true;  // trust store is empty
  GlobeDocProxy proxy(*client_flow, config);
  EXPECT_EQ(proxy.fetch(object_name, "index.html").code(),
            ErrorCode::kUntrustedIssuer);
}

// --- Adversarial replicas ----------------------------------------------

struct AdversaryFixture : ProxyFixture {
  /// Replaces the (only) registered contact address with an attacker
  /// endpoint wrapping the honest server.
  void route_through(net::MessageHandler attack_handler, std::uint16_t port) {
    attack_ep = net::Endpoint{server_host, port};
    net.bind(attack_ep, std::move(attack_handler));
    location::LocationClient locator(*publish_flow, tree->endpoint("site-server"));
    ASSERT_TRUE(locator
                    .remove(tree->endpoint("site-server"),
                            owner->object().oid().view(), server_ep)
                    .is_ok());
    ASSERT_TRUE(locator
                    .insert(tree->endpoint("site-server"),
                            owner->object().oid().view(), attack_ep)
                    .is_ok());
  }

  net::Endpoint attack_ep;
};

TEST_F(AdversaryFixture, TamperedElementDetected) {
  route_through(tampering_element_attack(server_dispatcher.handler()), 6000);
  GlobeDocProxy proxy(*client_flow, proxy_config());
  EXPECT_EQ(proxy.fetch(object_name, "index.html").code(), ErrorCode::kHashMismatch);
}

TEST_F(AdversaryFixture, SwappedElementDetected) {
  route_through(element_swap_attack(server_dispatcher.handler(), "story.txt"), 6001);
  GlobeDocProxy proxy(*client_flow, proxy_config());
  EXPECT_EQ(proxy.fetch(object_name, "index.html").code(), ErrorCode::kWrongElement);
}

TEST_F(AdversaryFixture, ForgedCertificateDetected) {
  route_through(certificate_forgery_attack(server_dispatcher.handler()), 6002);
  GlobeDocProxy proxy(*client_flow, proxy_config());
  EXPECT_EQ(proxy.fetch(object_name, "index.html").code(), ErrorCode::kBadSignature);
}

TEST_F(AdversaryFixture, SubstitutedKeyDetected) {
  auto attacker_key = fixture_key(666);
  route_through(
      key_substitution_attack(server_dispatcher.handler(),
                              attacker_key.pub.serialize()),
      6003);
  GlobeDocProxy proxy(*client_flow, proxy_config());
  EXPECT_EQ(proxy.fetch(object_name, "index.html").code(), ErrorCode::kOidMismatch);
}

TEST_F(AdversaryFixture, FallbackToHonestReplica) {
  // Attacker address sorts before the honest one, so it is tried first.
  net::Endpoint evil{server_host, 6004};
  net.bind(evil, tampering_element_attack(server_dispatcher.handler()));
  location::LocationClient locator(*publish_flow, tree->endpoint("site-server"));
  ASSERT_TRUE(locator
                  .insert(tree->endpoint("site-server"),
                          owner->object().oid().view(), evil)
                  .is_ok());

  GlobeDocProxy proxy(*client_flow, proxy_config());
  auto result = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result->metrics.replicas_tried, 2u);
  EXPECT_EQ(util::to_string(result->element.content),
            "<html><body>news story</body></html>");
}

TEST_F(AdversaryFixture, MisdirectingLocationServiceCausesOnlyDenialOfService) {
  // The client's local site lies: it points at an endpoint where nothing
  // (or an attacker who cannot forge) lives.
  net::Endpoint nowhere{server_host, 6005};
  net.unbind(tree->endpoint("site-client"));
  net.bind(tree->endpoint("site-client"),
           misdirecting_location_node({nowhere}));

  GlobeDocProxy proxy(*client_flow, proxy_config());
  auto result = proxy.fetch(object_name, "index.html");
  EXPECT_FALSE(result.is_ok());
  // Denial of service, not content corruption.
  EXPECT_EQ(result.code(), ErrorCode::kUnavailable);
}

// --- Freshness and update propagation ----------------------------------

TEST_F(ProxyFixture, ExpiredReplicaStateRejected) {
  client_flow->advance(util::seconds(4000));  // past the 3600s validity
  GlobeDocProxy proxy(*client_flow, proxy_config());
  EXPECT_EQ(proxy.fetch(object_name, "index.html").code(), ErrorCode::kExpired);
}

TEST_F(ProxyFixture, OwnerRefreshRestoresFreshness) {
  client_flow->advance(util::seconds(4000));
  publish_flow->set_time(client_flow->now());
  ASSERT_TRUE(owner
                  ->refresh_replicas(*publish_flow, client_flow->now(),
                                     util::seconds(3600))
                  .is_ok());
  GlobeDocProxy proxy(*client_flow, proxy_config());
  EXPECT_TRUE(proxy.fetch(object_name, "index.html").is_ok());
}

TEST_F(ProxyFixture, ContentUpdatePropagates) {
  owner->object().put_element(
      {"index.html", "text/html", to_bytes("<html>v2</html>")});
  ASSERT_TRUE(owner->refresh_replicas(*publish_flow, client_flow->now(),
                                      util::seconds(3600))
                  .is_ok());
  GlobeDocProxy proxy(*client_flow, proxy_config());
  auto result = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(util::to_string(result->element.content), "<html>v2</html>");
}

// --- Binding cache -------------------------------------------------------

TEST_F(ProxyFixture, BindingCacheSpeedsUpSecondFetch) {
  ProxyConfig config = proxy_config();
  config.cache_bindings = true;
  GlobeDocProxy proxy(*client_flow, config);

  util::SimTime t0 = client_flow->now();
  auto first = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(first.is_ok());
  EXPECT_FALSE(first->metrics.used_cached_binding);
  util::SimDuration first_duration = client_flow->now() - t0;

  util::SimTime t1 = client_flow->now();
  auto second = proxy.fetch(object_name, "story.txt");
  ASSERT_TRUE(second.is_ok());
  EXPECT_TRUE(second->metrics.used_cached_binding);
  EXPECT_LT(client_flow->now() - t1, first_duration / 2);
  EXPECT_EQ(proxy.binding_count(), 1u);
}

TEST_F(ProxyFixture, StaleCachedBindingRecovers) {
  ProxyConfig config = proxy_config();
  config.cache_bindings = true;
  GlobeDocProxy proxy(*client_flow, config);
  ASSERT_TRUE(proxy.fetch(object_name, "index.html").is_ok());

  // Owner replaces the content; the cached certificate no longer matches.
  owner->object().put_element(
      {"index.html", "text/html", to_bytes("<html>new</html>")});
  ASSERT_TRUE(owner->refresh_replicas(*publish_flow, client_flow->now(),
                                      util::seconds(3600))
                  .is_ok());

  auto result = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_FALSE(result->metrics.used_cached_binding);  // cache was invalidated
  EXPECT_EQ(util::to_string(result->element.content), "<html>new</html>");
}

// --- Browser-facing behaviour --------------------------------------------

TEST_F(ProxyFixture, BrowserRequestForHybridUrl) {
  GlobeDocProxy proxy(*client_flow, proxy_config());
  http::HttpRequest req;
  req.target = "/globe/news.vu.nl/index.html";
  auto resp = proxy.handle_browser_request(req);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.headers.get("Content-Type"), "text/html");
  EXPECT_EQ(resp.headers.get("X-GlobeDoc-Certified-As"), "Vrije Universiteit");
}

TEST_F(ProxyFixture, BrowserSeesSecurityCheckFailedPage) {
  client_flow->advance(util::seconds(4000));  // force EXPIRED
  GlobeDocProxy proxy(*client_flow, proxy_config());
  http::HttpRequest req;
  req.target = "/globe/news.vu.nl/index.html";
  auto resp = proxy.handle_browser_request(req);
  EXPECT_EQ(resp.status, 403);
  EXPECT_NE(util::to_string(resp.body).find("Security Check Failed"),
            std::string::npos);
  EXPECT_NE(util::to_string(resp.body).find("EXPIRED"), std::string::npos);
}

TEST_F(ProxyFixture, BrowserPlainHttpPassthrough) {
  http::StaticHttpServer origin;
  origin.put_file("/plain.html", to_bytes("<html>plain old web</html>"));
  net::Endpoint origin_ep{infra_host, 8080};
  net.bind(origin_ep, origin.handler());

  GlobeDocProxy proxy(*client_flow, proxy_config());
  proxy.set_origin_fallback(origin_ep);

  http::HttpRequest req;
  req.target = "/plain.html";
  auto resp = proxy.handle_browser_request(req);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(util::to_string(resp.body), "<html>plain old web</html>");
}

TEST_F(ProxyFixture, BrowserPassthroughWithoutOriginIs502) {
  GlobeDocProxy proxy(*client_flow, proxy_config());
  http::HttpRequest req;
  req.target = "/plain.html";
  EXPECT_EQ(proxy.handle_browser_request(req).status, 502);
}

// --- Owner workflows -----------------------------------------------------

TEST_F(ProxyFixture, UnpublishRemovesReplica) {
  ASSERT_TRUE(owner
                  ->unpublish_replica(*publish_flow, server_ep,
                                      tree->endpoint("site-server"))
                  .is_ok());
  EXPECT_FALSE(object_server->hosts(owner->object().oid()));
  GlobeDocProxy proxy(*client_flow, proxy_config());
  EXPECT_EQ(proxy.fetch(object_name, "index.html").code(), ErrorCode::kNotFound);
}

TEST_F(ProxyFixture, PublishRollsBackWhenLocationRegistrationFails) {
  // Second replica on a new server, but pointed at a dead location site.
  ObjectServer second("srv-2", 43);
  second.authorize(owner->credential_key());
  rpc::ServiceDispatcher d2;
  second.register_with(d2);
  net::Endpoint second_ep{infra_host, 9000};
  net.bind(second_ep, d2.handler());

  net::Endpoint dead_site{infra_host, 9999};  // nothing bound
  ReplicaState state = owner->sign_and_snapshot(publish_flow->now(),
                                                util::seconds(3600));
  auto status =
      owner->publish_replica(*publish_flow, second_ep, dead_site, state);
  EXPECT_FALSE(status.is_ok());
  EXPECT_FALSE(second.hosts(owner->object().oid()));  // rolled back
  EXPECT_EQ(owner->replicas().size(), 1u);
}

TEST_F(ProxyFixture, SecondReplicaServesClients) {
  // Publish a second replica at the client's own site: lookups now find it
  // in the first ring.
  ObjectServer second("srv-2", 44);
  second.authorize(owner->credential_key());
  rpc::ServiceDispatcher d2;
  second.register_with(d2);
  net::Endpoint second_ep{client_host, 9000};
  net.bind(second_ep, d2.handler());

  ReplicaState state = owner->sign_and_snapshot(publish_flow->now(),
                                                util::seconds(3600));
  ASSERT_TRUE(owner
                  ->publish_replica(*publish_flow, second_ep,
                                    tree->endpoint("site-client"), state)
                  .is_ok());
  EXPECT_EQ(owner->replicas().size(), 2u);

  GlobeDocProxy proxy(*client_flow, proxy_config());
  auto result = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(result.is_ok());
  // Served locally: the whole fetch is fast (no 5ms WAN hops for content).
  EXPECT_TRUE(second.elements_served() == 1 ||
              object_server->elements_served() == 1);
}

}  // namespace
}  // namespace globe::globedoc
