// Adversarial trust-boundary test (DESIGN.md §9): a malicious replica that
// serves correctly-signed certificates but tampered element bytes.  The
// tampered bytes are untrusted input that must never cross the two client
// trusted sinks — the proxy's element cache and the browser-bound response
// body.  This is the runtime counterpart of the static taint invariant
// checked by tools/taint_check.py.
#include <gtest/gtest.h>

#include "globedoc/proxy.hpp"
#include "globedoc/proxy_http.hpp"
#include "http/client.hpp"
#include "location/tree.hpp"
#include "tests/globedoc/world_fixture.hpp"

namespace globe::globedoc {
namespace {

using globe::globedoc::testing::WorldFixture;
using util::ErrorCode;
using util::to_bytes;

constexpr const char* kEvilBody = "<html><body>EVIL PAYLOAD</body></html>";

struct TaintBoundaryFixture : WorldFixture {
  /// Brings up a replica whose hosted state was tampered AFTER signing:
  /// the certificate chain is authentic, the index.html bytes are not —
  /// exactly what a compromised object server can do (paper §3.2.2), and
  /// registers its contact address at `site`.
  void add_malicious_replica(const net::Endpoint& site) {
    evil_server = std::make_unique<ObjectServer>("evil", 666);
    evil_server->register_with(evil_dispatcher);
    evil_ep = net::Endpoint{infra_host, 9000};
    net.bind(evil_ep, evil_dispatcher.handler());

    ReplicaState state =
        owner->sign_and_snapshot(publish_flow->now(), util::seconds(3600));
    bool tampered = false;
    for (auto& el : state.elements) {
      if (el.name == "index.html") {
        el.content = to_bytes(kEvilBody);
        tampered = true;
      }
    }
    ASSERT_TRUE(tampered);
    // install_replica_unchecked models the server's own storage, which sits
    // inside the server's trust domain — nothing verifies it again on the
    // way out; only clients do.
    evil_server->install_replica_unchecked(state);

    location::LocationClient loc(*publish_flow, site);
    ASSERT_TRUE(loc.insert(site, owner->object().oid().to_bytes(), evil_ep)
                    .is_ok());
  }

  std::unique_ptr<ObjectServer> evil_server;
  rpc::ServiceDispatcher evil_dispatcher;
  net::Endpoint evil_ep;
};

TEST_F(TaintBoundaryFixture, TamperedElementNeverEntersElementCache) {
  net.unbind(server_ep);  // only the malicious replica is reachable
  add_malicious_replica(tree->endpoint("site-client"));

  ProxyConfig config = proxy_config();
  config.cache_elements = true;
  GlobeDocProxy proxy(*client_flow, config);
  auto result = proxy.fetch(object_name, "index.html");
  ASSERT_FALSE(result.is_ok());
  // Nothing unverified may have been cached: a poisoned entry would be
  // served without re-verification until its (forged) expiry.
  EXPECT_EQ(proxy.element_cache_size(), 0u);

  // And retrying must re-fail, not "recover" from some hidden copy.
  EXPECT_FALSE(proxy.fetch(object_name, "index.html").is_ok());
  EXPECT_EQ(proxy.element_cache_size(), 0u);
}

TEST_F(TaintBoundaryFixture, TamperedBytesNeverReachBrowserBody) {
  net.unbind(server_ep);
  add_malicious_replica(tree->endpoint("site-client"));

  auto proxy_flow = net.open_flow(client_host);
  ProxyHttpServer front(
      std::make_unique<GlobeDocProxy>(*proxy_flow, proxy_config()));
  net::Endpoint proxy_ep{client_host, 3128};
  net.bind(proxy_ep, front.handler());

  auto browser_flow = net.open_flow(client_host);
  http::HttpClient browser(*browser_flow);
  auto resp = browser.get(proxy_ep, "/globe/news.vu.nl/index.html");
  ASSERT_TRUE(resp.is_ok());
  EXPECT_NE(resp->status, 200);
  std::string body = util::to_string(resp->body);
  // Not one tampered byte may appear in what the browser renders.
  EXPECT_EQ(body.find("EVIL"), std::string::npos) << body;
}

TEST_F(TaintBoundaryFixture, FailoverPastMaliciousReplicaServesVerified) {
  // Malicious and honest replicas registered at the same site: whichever
  // the proxy tries first, the result must be the authentic content, and
  // only verified bytes may enter the cache.
  add_malicious_replica(tree->endpoint("site-server"));

  ProxyConfig config = proxy_config();
  config.cache_elements = true;
  GlobeDocProxy proxy(*client_flow, config);
  auto result = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(util::to_string(result->element.content),
            "<html><body>news story</body></html>");
  EXPECT_EQ(proxy.element_cache_size(), 1u);

  // A cache hit must serve the same verified bytes.
  auto cached = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(cached.is_ok());
  EXPECT_TRUE(cached->metrics.used_cached_element);
  EXPECT_EQ(util::to_string(cached->element.content),
            "<html><body>news story</body></html>");
}

}  // namespace
}  // namespace globe::globedoc
