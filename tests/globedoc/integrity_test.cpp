#include "globedoc/integrity.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "util/serial.hpp"
#include "globedoc/object.hpp"

namespace globe::globedoc {
namespace {

using util::Bytes;
using util::ErrorCode;
using util::to_bytes;

struct IntegrityFixture : ::testing::Test {
  void SetUp() override {
    auto rng = crypto::HmacDrbg::from_seed(11);
    keys = crypto::rsa_generate(512, rng);
    oid = Oid::from_public_key(keys.pub);
    elements = {
        PageElement{"index.html", "text/html", to_bytes("<html>news</html>")},
        PageElement{"logo.gif", "image/gif", Bytes(100, 0x47)},
        PageElement{"story.txt", "text/plain", to_bytes("once upon a time")},
    };
    cert = IntegrityCertificate::build(oid, 1, elements, t0, ttl, keys.priv);
  }

  crypto::RsaKeyPair keys;
  Oid oid;
  std::vector<PageElement> elements;
  util::SimTime t0 = util::seconds(100);
  util::SimDuration ttl = util::seconds(60);
  IntegrityCertificate cert;
};

TEST_F(IntegrityFixture, SignatureVerifiesUnderObjectKey) {
  EXPECT_TRUE(cert.verify_signature(keys.pub));
  EXPECT_EQ(cert.oid(), oid);
  EXPECT_EQ(cert.version(), 1u);
  EXPECT_EQ(cert.entries().size(), 3u);
}

TEST_F(IntegrityFixture, SignatureFailsUnderOtherKey) {
  auto rng = crypto::HmacDrbg::from_seed(12);
  auto other = crypto::rsa_generate(512, rng);
  EXPECT_FALSE(cert.verify_signature(other.pub));
}

TEST_F(IntegrityFixture, AllElementsPassChecks) {
  for (const auto& el : elements) {
    EXPECT_TRUE(cert.check_element(el.name, el, t0 + util::seconds(1)).is_ok())
        << el.name;
  }
}

TEST_F(IntegrityFixture, TamperedContentIsHashMismatch) {
  PageElement bad = elements[0];
  bad.content[3] ^= 0x01;
  EXPECT_EQ(cert.check_element("index.html", bad, t0).code(),
            ErrorCode::kHashMismatch);
}

TEST_F(IntegrityFixture, SwappedElementIsWrongElement) {
  // Server returns logo.gif when index.html was requested.
  EXPECT_EQ(cert.check_element("index.html", elements[1], t0).code(),
            ErrorCode::kWrongElement);
}

TEST_F(IntegrityFixture, ElementRenamedToMatchRequestIsHashMismatch) {
  // Attacker relabels a genuine decoy element with the requested name: the
  // digest (which covers the name) must not match the entry.
  PageElement relabeled = elements[1];
  relabeled.name = "index.html";
  EXPECT_EQ(cert.check_element("index.html", relabeled, t0).code(),
            ErrorCode::kHashMismatch);
}

TEST_F(IntegrityFixture, ExpiredEntryIsExpired) {
  EXPECT_EQ(cert.check_element("index.html", elements[0], t0 + ttl).code(),
            ErrorCode::kExpired);
  // One tick before the deadline is still fresh.
  EXPECT_TRUE(cert.check_element("index.html", elements[0], t0 + ttl - 1).is_ok());
}

TEST_F(IntegrityFixture, UnknownElementIsNotFound) {
  EXPECT_EQ(cert.check_element("ghost.html", elements[0], t0).code(),
            ErrorCode::kNotFound);
}

TEST_F(IntegrityFixture, SerializationRoundTrip) {
  auto parsed = IntegrityCertificate::parse(cert.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->oid(), oid);
  EXPECT_EQ(parsed->version(), 1u);
  EXPECT_TRUE(parsed->verify_signature(keys.pub));
  EXPECT_TRUE(parsed->check_element("story.txt", elements[2], t0).is_ok());
}

TEST_F(IntegrityFixture, TamperedWireSignatureFails) {
  Bytes wire = cert.serialize();
  wire[wire.size() - 1] ^= 0x01;
  auto parsed = IntegrityCertificate::parse(wire);
  ASSERT_TRUE(parsed.is_ok());  // parse succeeds...
  EXPECT_FALSE(parsed->verify_signature(keys.pub));  // ...verification fails
}

TEST_F(IntegrityFixture, TamperedWireBodyFailsVerification) {
  Bytes wire = cert.serialize();
  wire[30] ^= 0x01;  // inside the signed body
  auto parsed = IntegrityCertificate::parse(wire);
  if (parsed.is_ok()) {
    EXPECT_FALSE(parsed->verify_signature(keys.pub));
  }
}

TEST_F(IntegrityFixture, GarbageRejected) {
  EXPECT_FALSE(IntegrityCertificate::parse(to_bytes("nonsense")).is_ok());
  EXPECT_FALSE(IntegrityCertificate::parse(Bytes{}).is_ok());
}

TEST_F(IntegrityFixture, FindReturnsEntries) {
  EXPECT_NE(cert.find("logo.gif"), nullptr);
  EXPECT_EQ(cert.find("absent"), nullptr);
  EXPECT_EQ(cert.find("logo.gif")->expires, t0 + ttl);
}

TEST_F(IntegrityFixture, WireSizeReportsRealisticOverhead) {
  // Key + certificate is the "~2KB extra" the paper cites for its 1024-bit
  // deployment; with 512-bit test keys it is smaller but must be non-trivial.
  EXPECT_GT(cert.wire_size(), 100u);
  EXPECT_EQ(cert.serialize().size(), cert.wire_size());
}

TEST(IntegrityCertTest, EmptyObjectCertificate) {
  auto rng = crypto::HmacDrbg::from_seed(13);
  auto keys = crypto::rsa_generate(512, rng);
  Oid oid = Oid::from_public_key(keys.pub);
  auto cert = IntegrityCertificate::build(oid, 1, {}, 0, 100, keys.priv);
  EXPECT_TRUE(cert.verify_signature(keys.pub));
  EXPECT_TRUE(cert.entries().empty());
}


TEST(IntegrityHostileInputTest, RejectsForgedEntryCount) {
  // A certificate body claiming 2^32-1 entries must be rejected at the
  // protocol ceiling before entries_.reserve() sees the forged count.
  util::Writer body;
  body.raw(Bytes(Oid::kSize, 0x7));
  body.u64(1);         // version
  body.u32(0xFFFFFFFFu);  // forged entry count
  util::Writer w;
  w.bytes(body.take());
  w.bytes(to_bytes("sig"));
  auto cert = IntegrityCertificate::parse(w.take());
  EXPECT_FALSE(cert.is_ok());
  EXPECT_EQ(cert.code(), ErrorCode::kProtocol);
}

TEST(IntegrityHostileInputTest, ReplicaStateRejectsForgedCounts) {
  // Same ceiling discipline one layer up: ReplicaState's identity-cert and
  // element counts are clamped before either vector reserves.
  util::Writer valid_cert_body;
  valid_cert_body.raw(Bytes(Oid::kSize, 0x7));
  valid_cert_body.u64(1);
  valid_cert_body.u32(0);
  util::Writer cert;
  cert.bytes(valid_cert_body.take());
  cert.bytes(to_bytes("sig"));

  util::Writer w;
  w.bytes(to_bytes("pubkey"));
  w.bytes(cert.take());
  w.u32(0xFFFFFFFFu);  // forged identity-cert count
  auto forged_ids = ReplicaState::parse(w.take());
  EXPECT_FALSE(forged_ids.is_ok());
  EXPECT_EQ(forged_ids.code(), ErrorCode::kProtocol);

  util::Writer cert2_body;
  cert2_body.raw(Bytes(Oid::kSize, 0x7));
  cert2_body.u64(1);
  cert2_body.u32(0);
  util::Writer cert2;
  cert2.bytes(cert2_body.take());
  cert2.bytes(to_bytes("sig"));
  util::Writer w2;
  w2.bytes(to_bytes("pubkey"));
  w2.bytes(cert2.take());
  w2.u32(0);           // no identity certs
  w2.u32(0xFFFFFFFFu);  // forged element count
  auto forged_els = ReplicaState::parse(w2.take());
  EXPECT_FALSE(forged_els.is_ok());
  EXPECT_EQ(forged_els.code(), ErrorCode::kProtocol);
}
}  // namespace
}  // namespace globe::globedoc
