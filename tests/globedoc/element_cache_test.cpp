// Verified client-side element caching: the certificate entry's validity
// interval doubles as a sound cache TTL ([13]'s "Verif" client strategy).
#include <gtest/gtest.h>

#include "globedoc/proxy.hpp"
#include "tests/globedoc/world_fixture.hpp"

namespace globe::globedoc {
namespace {

using globe::globedoc::testing::WorldFixture;
using util::to_bytes;

struct ElementCacheFixture : WorldFixture {
  GlobeDocProxy make_proxy() {
    ProxyConfig config = proxy_config();
    config.cache_bindings = true;
    config.cache_elements = true;
    return GlobeDocProxy(*client_flow, config);
  }
};

TEST_F(ElementCacheFixture, SecondFetchServedLocally) {
  auto proxy = make_proxy();
  auto first = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(first.is_ok());
  EXPECT_FALSE(first->metrics.used_cached_element);
  EXPECT_EQ(proxy.element_cache_size(), 1u);

  util::SimTime t = client_flow->now();
  auto second = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(second.is_ok());
  EXPECT_TRUE(second->metrics.used_cached_element);
  EXPECT_EQ(client_flow->now(), t);  // zero network, zero virtual time
  EXPECT_EQ(second->element.content, first->element.content);
  EXPECT_EQ(second->certified_as, first->certified_as);
}

TEST_F(ElementCacheFixture, CacheExpiresWithCertificateEntry) {
  auto proxy = make_proxy();
  ASSERT_TRUE(proxy.fetch(object_name, "index.html").is_ok());

  // Advance past the 3600s validity window: the cached copy would now be
  // stale, so the proxy must go back to the network — where it discovers
  // the replica's state is expired too.
  client_flow->advance(util::seconds(4000));
  auto result = proxy.fetch(object_name, "index.html");
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.code(), util::ErrorCode::kExpired);
  EXPECT_EQ(proxy.element_cache_size(), 0u);  // stale entry evicted

  // A refreshed replica repopulates the cache.
  publish_flow->set_time(client_flow->now());
  ASSERT_TRUE(owner
                  ->refresh_replicas(*publish_flow, client_flow->now(),
                                     util::seconds(3600))
                  .is_ok());
  auto again = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(again.is_ok());
  EXPECT_FALSE(again->metrics.used_cached_element);
  EXPECT_EQ(proxy.element_cache_size(), 1u);
}

TEST_F(ElementCacheFixture, DistinctElementsCachedSeparately) {
  auto proxy = make_proxy();
  ASSERT_TRUE(proxy.fetch(object_name, "index.html").is_ok());
  ASSERT_TRUE(proxy.fetch(object_name, "story.txt").is_ok());
  EXPECT_EQ(proxy.element_cache_size(), 2u);
  auto cached = proxy.fetch(object_name, "story.txt");
  ASSERT_TRUE(cached.is_ok());
  EXPECT_TRUE(cached->metrics.used_cached_element);
  EXPECT_EQ(util::to_string(cached->element.content), "full text");
}

TEST_F(ElementCacheFixture, ClearCacheForcesRefetch) {
  auto proxy = make_proxy();
  ASSERT_TRUE(proxy.fetch(object_name, "index.html").is_ok());
  proxy.clear_element_cache();
  EXPECT_EQ(proxy.element_cache_size(), 0u);
  auto result = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(result.is_ok());
  EXPECT_FALSE(result->metrics.used_cached_element);
}

TEST_F(ElementCacheFixture, DisabledByDefault) {
  ProxyConfig config = proxy_config();
  GlobeDocProxy proxy(*client_flow, config);
  ASSERT_TRUE(proxy.fetch(object_name, "index.html").is_ok());
  auto second = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(second.is_ok());
  EXPECT_FALSE(second->metrics.used_cached_element);
  EXPECT_EQ(proxy.element_cache_size(), 0u);
}

TEST_F(ElementCacheFixture, StaleCacheCannotHideAnUpdateBeyondItsWindow) {
  // Within the validity window a cached (older) copy may legitimately be
  // served — that is precisely the freshness contract of §3.2.2.  Past the
  // window, the new content must appear.
  auto proxy = make_proxy();
  auto v1 = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(v1.is_ok());

  // Mid-window, the owner publishes v2 with a fresh validity interval.
  client_flow->advance(util::seconds(2000));
  publish_flow->set_time(client_flow->now());
  owner->object().put_element({"index.html", "text/html", to_bytes("<html>v2</html>")});
  ASSERT_TRUE(owner
                  ->refresh_replicas(*publish_flow, client_flow->now(),
                                     util::seconds(3600))
                  .is_ok());

  // Still inside the old entry's window: cache may answer with v1.
  auto inside = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(inside.is_ok());
  EXPECT_TRUE(inside->metrics.used_cached_element);

  // Past the old window (but inside v2's): the proxy refetches, sees v2.
  client_flow->advance(util::seconds(1700));
  auto outside = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(outside.is_ok());
  EXPECT_FALSE(outside->metrics.used_cached_element);
  EXPECT_EQ(util::to_string(outside->element.content), "<html>v2</html>");
}

}  // namespace
}  // namespace globe::globedoc
