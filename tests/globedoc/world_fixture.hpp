// Shared end-to-end fixture: a small world with a naming service, a
// location tree, an object server, a CA, and one published GlobeDoc object.
#pragma once

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "globedoc/owner.hpp"
#include "globedoc/proxy.hpp"
#include "globedoc/server.hpp"
#include "location/builder.hpp"
#include "naming/resolver.hpp"
#include "naming/service.hpp"
#include "net/simnet.hpp"

namespace globe::globedoc::testing {

inline crypto::RsaKeyPair fixture_key(std::uint64_t seed) {
  auto rng = crypto::HmacDrbg::from_seed(seed);
  return crypto::rsa_generate(512, rng);
}

struct WorldFixture : ::testing::Test {
  void SetUp() override {
    infra_host = net.add_host({"infra", net::CpuModel{}});
    server_host = net.add_host({"server", net::CpuModel{}});
    client_host = net.add_host({"client", net::CpuModel{}});
    net.set_default_link({util::millis(5), 1e6});

    // --- Naming: a single root zone on the infra host.
    root_zone_key = fixture_key(1001);
    root_zone = std::make_shared<naming::ZoneAuthority>("", root_zone_key);
    naming_ep = net::Endpoint{infra_host, 53};
    naming_server.add_zone(root_zone);
    naming_server.register_with(naming_dispatcher);
    net.bind(naming_ep, naming_dispatcher.handler());

    // --- Location: root on infra, one site at the server, one near the client.
    tree = std::make_unique<location::LocationTree>(
        net, std::vector<location::DomainSpec>{
                 {"root", "", infra_host, 100, false},
                 {"site-server", "root", server_host, 100, true},
                 {"site-client", "root", client_host, 100, true},
             });

    // --- CA trusted by the user.
    ca = std::make_unique<CertificateAuthority>("TestRoot CA", fixture_key(1002));

    // --- Object server with the owner's credentials authorized.
    owner_credentials = fixture_key(1003);
    object_server = std::make_unique<ObjectServer>("srv-1", 42);
    object_server->authorize(owner_credentials.pub);
    object_server->register_with(server_dispatcher);
    server_ep = net::Endpoint{server_host, 8000};
    net.bind(server_ep, server_dispatcher.handler());

    // --- The object: 3 elements, identity cert, name, one replica.
    GlobeDocObject object(fixture_key(1004));
    object.put_element({"index.html", "text/html",
                        util::to_bytes("<html><body>news story</body></html>")});
    object.put_element({"logo.gif", "image/gif", util::Bytes(500, 0x42)});
    object.put_element({"story.txt", "text/plain", util::to_bytes("full text")});
    object.add_identity_certificate(
        ca->issue("Vrije Universiteit", object.oid(), util::seconds(5000)));
    owner = std::make_unique<ObjectOwner>(std::move(object), owner_credentials);

    owner->register_name(*root_zone, object_name, util::seconds(5000));

    publish_flow = net.open_flow(infra_host);
    ReplicaState state = owner->sign_and_snapshot(0, util::seconds(3600));
    ASSERT_TRUE(owner
                    ->publish_replica(*publish_flow, server_ep,
                                      tree->endpoint("site-server"), state)
                    .is_ok());

    client_flow = net.open_flow(client_host);
  }

  ProxyConfig proxy_config(bool identity = true) {
    ProxyConfig config;
    config.naming_root = naming_ep;
    config.naming_anchor = root_zone_key.pub;
    config.location_site = tree->endpoint("site-client");
    if (identity) {
      config.trust.trust(ca->name(), ca->public_key());
      config.request_identity = true;
    }
    return config;
  }

  net::SimNet net;
  net::HostId infra_host, server_host, client_host;

  crypto::RsaKeyPair root_zone_key;
  std::shared_ptr<naming::ZoneAuthority> root_zone;
  naming::NamingServer naming_server;
  rpc::ServiceDispatcher naming_dispatcher;
  net::Endpoint naming_ep;

  std::unique_ptr<location::LocationTree> tree;
  std::unique_ptr<CertificateAuthority> ca;

  crypto::RsaKeyPair owner_credentials;
  std::unique_ptr<ObjectServer> object_server;
  rpc::ServiceDispatcher server_dispatcher;
  net::Endpoint server_ep;

  std::unique_ptr<ObjectOwner> owner;
  std::string object_name = "news.vu.nl";

  std::unique_ptr<net::SimFlow> publish_flow;
  std::unique_ptr<net::SimFlow> client_flow;
};

}  // namespace globe::globedoc::testing
