// Deliberately racy sample proving the TSan lane actually detects races.
//
// Two threads increment a plain (non-atomic, unlocked) counter.  Under
// `cmake -DGLOBE_TSAN=ON` the ctest entry `tsan.racy_sample_detected` runs
// this binary and asserts a NON-zero exit (WILL_FAIL): ThreadSanitizer must
// report the race and exit with its error code.  If the lane's environment
// (suppressions file, TSAN_OPTIONS) ever starts masking real races, this
// canary test fails the build.
//
// Only the GLOBE_TSAN branch of tests/CMakeLists.txt builds this target.
#include <cstdio>
#include <thread>

namespace {
int g_counter = 0;  // intentionally unsynchronized

void hammer() {
  for (int i = 0; i < 100'000; ++i) ++g_counter;
}
}  // namespace

int main() {
  std::thread a(hammer);
  std::thread b(hammer);
  a.join();
  b.join();
  std::printf("counter=%d\n", g_counter);
  return 0;
}
