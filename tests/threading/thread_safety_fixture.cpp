// Compile-SHOULD-FAIL fixture for the Clang Thread Safety lane.
//
// This translation unit touches a GLOBE_GUARDED_BY field without holding its
// mutex.  Under `cmake -DGLOBE_THREAD_SAFETY=ON` (clang, -Werror=
// thread-safety) it MUST NOT compile; the ctest entry `thread_safety.negative_
// fixture_rejected` builds it and asserts failure (WILL_FAIL).  If this file
// ever compiles in that configuration, the analysis is off and the whole
// lock-discipline lane is vacuous.
//
// It is never part of a normal build: only the GLOBE_THREAD_SAFETY branch of
// tests/CMakeLists.txt references it, as a build-only target excluded from ALL.
#include "util/mutex.hpp"

namespace {

class Account {
 public:
  void deposit(int amount) {
    globe::util::LockGuard lock(mutex_);
    balance_ += amount;  // correctly locked
  }

  int racy_balance() const {
    return balance_;  // BUG (intentional): guarded read without the lock
  }

 private:
  mutable globe::util::Mutex mutex_;
  int balance_ GLOBE_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  return account.racy_balance();
}
