// Trace spans: nesting, RAII end, timing against a manually-driven clock.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include "util/clock.hpp"

namespace globe::obs {
namespace {

using util::ManualClock;
using util::millis;

TEST(Tracer, SingleSpanMeasuresClockAdvance) {
  ManualClock clock(millis(100));
  Tracer tracer(clock);
  {
    auto span = tracer.span("work");
    clock.advance(millis(25));
  }
  auto finished = tracer.take_finished();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_EQ(finished[0].name, "work");
  EXPECT_EQ(finished[0].start, millis(100));
  EXPECT_EQ(finished[0].duration, millis(25));
  EXPECT_TRUE(finished[0].children.empty());
}

TEST(Tracer, SpansNestStrictly) {
  ManualClock clock;
  Tracer tracer(clock);
  {
    auto fetch = tracer.span("fetch");
    clock.advance(millis(1));
    {
      auto resolve = tracer.span("resolve");
      clock.advance(millis(2));
    }
    {
      auto locate = tracer.span("locate");
      clock.advance(millis(3));
      {
        auto hop = tracer.span("hop");
        clock.advance(millis(4));
      }
    }
    clock.advance(millis(5));
  }

  auto finished = tracer.take_finished();
  ASSERT_EQ(finished.size(), 1u);
  const SpanRecord& fetch = finished[0];
  EXPECT_EQ(fetch.name, "fetch");
  EXPECT_EQ(fetch.duration, millis(1 + 2 + 3 + 4 + 5));
  ASSERT_EQ(fetch.children.size(), 2u);
  EXPECT_EQ(fetch.children[0].name, "resolve");
  EXPECT_EQ(fetch.children[0].duration, millis(2));
  EXPECT_EQ(fetch.children[1].name, "locate");
  EXPECT_EQ(fetch.children[1].duration, millis(3 + 4));
  ASSERT_EQ(fetch.children[1].children.size(), 1u);
  EXPECT_EQ(fetch.children[1].children[0].name, "hop");
  EXPECT_EQ(fetch.children[1].children[0].duration, millis(4));
}

TEST(Tracer, ExplicitEndStopsTheClockEarly) {
  ManualClock clock;
  Tracer tracer(clock);
  auto span = tracer.span("early");
  clock.advance(millis(10));
  span.end();
  clock.advance(millis(99));  // after end: not counted
  auto finished = tracer.take_finished();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_EQ(finished[0].duration, millis(10));
}

TEST(Tracer, EndingParentClosesOpenChildren) {
  ManualClock clock;
  Tracer tracer(clock);
  auto parent = tracer.span("parent");
  auto child = tracer.span("child");
  clock.advance(millis(7));
  parent.end();  // child is still open: closed at the same instant
  EXPECT_EQ(tracer.open_spans(), 0u);

  auto finished = tracer.take_finished();
  ASSERT_EQ(finished.size(), 1u);
  ASSERT_EQ(finished[0].children.size(), 1u);
  EXPECT_EQ(finished[0].children[0].duration, millis(7));
  // The child handle's later destruction must be a harmless no-op.
}

TEST(Tracer, SequentialRootsAccumulate) {
  ManualClock clock;
  Tracer tracer(clock);
  for (int i = 1; i <= 3; ++i) {
    auto span = tracer.span("op");
    clock.advance(millis(static_cast<std::uint64_t>(i)));
  }
  auto finished = tracer.take_finished();
  ASSERT_EQ(finished.size(), 3u);
  EXPECT_EQ(finished[2].duration, millis(3));
  EXPECT_TRUE(tracer.take_finished().empty());  // cleared
}

TEST(Tracer, OpenRootIsNotReturned) {
  ManualClock clock;
  Tracer tracer(clock);
  auto span = tracer.span("open");
  EXPECT_TRUE(tracer.take_finished().empty());
  EXPECT_EQ(tracer.open_spans(), 1u);
}

TEST(Tracer, MoveTransfersOwnership) {
  ManualClock clock;
  Tracer tracer(clock);
  {
    auto a = tracer.span("moved");
    Tracer::Span b = std::move(a);
    clock.advance(millis(4));
    // Only b's destruction ends the span.
  }
  auto finished = tracer.take_finished();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_EQ(finished[0].duration, millis(4));
}

TEST(SpanHelpers, TotalSumsEveryMatchingSpan) {
  ManualClock clock;
  Tracer tracer(clock);
  {
    auto fetch = tracer.span("fetch");
    for (int i = 0; i < 3; ++i) {
      auto attempt = tracer.span("key_check");
      clock.advance(millis(5));
    }
  }
  auto finished = tracer.take_finished();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_EQ(span_total(finished[0], "key_check"), millis(15));
  EXPECT_EQ(span_total(finished[0], "fetch"), millis(15));
  EXPECT_EQ(span_total(finished[0], "missing"), 0u);
}

TEST(SpanHelpers, FindLocatesFirstDepthFirst) {
  ManualClock clock;
  Tracer tracer(clock);
  {
    auto root = tracer.span("root");
    {
      auto a = tracer.span("a");
      auto needle = tracer.span("needle");
      clock.advance(millis(1));
    }
    {
      auto needle2 = tracer.span("needle");
      clock.advance(millis(2));
    }
  }
  auto finished = tracer.take_finished();
  const SpanRecord* found = find_span(finished[0], "needle");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->duration, millis(1));  // depth-first: the nested one
  EXPECT_EQ(find_span(finished[0], "absent"), nullptr);
}

}  // namespace
}  // namespace globe::obs
