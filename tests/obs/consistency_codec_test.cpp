// Consistency-report wire codec: exact round-trips, and the decode gate
// rejecting every malformed shape a hostile replica could ship.
#include "obs/consistency.hpp"

#include <gtest/gtest.h>

#include "util/serial.hpp"

namespace globe::obs {
namespace {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Writer;

DocConsistency make_doc(std::uint8_t seed, std::uint64_t epoch,
                        util::SimTime expiry) {
  DocConsistency d;
  d.oid = Bytes(20, seed);
  d.epoch = epoch;
  d.digest = Bytes(kConsistencyDigestSize, static_cast<std::uint8_t>(seed + 1));
  d.earliest_expiry = expiry;
  return d;
}

TEST(ConsistencyCodec, RoundTripsEveryField) {
  ConsistencyReport report;
  report.docs.push_back(make_doc(0x11, 7, util::seconds(3600)));
  report.docs.push_back(make_doc(0x22, 12345678901234ull, 0));

  Writer w;
  encode_consistency(w, report);
  auto decoded = decode_consistency(w.buffer());
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  ASSERT_EQ(decoded->docs.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(decoded->docs[i].oid, report.docs[i].oid);
    EXPECT_EQ(decoded->docs[i].epoch, report.docs[i].epoch);
    EXPECT_EQ(decoded->docs[i].digest, report.docs[i].digest);
    EXPECT_EQ(decoded->docs[i].earliest_expiry, report.docs[i].earliest_expiry);
  }
}

TEST(ConsistencyCodec, EmptyReportRoundTrips) {
  Writer w;
  encode_consistency(w, ConsistencyReport{});
  auto decoded = decode_consistency(w.buffer());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded->docs.empty());
}

TEST(ConsistencyCodec, RejectsUnknownVersion) {
  Writer w;
  w.u8(kConsistencyVersion + 1);
  w.u32(0);
  auto decoded = decode_consistency(w.buffer());
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kProtocol);
}

TEST(ConsistencyCodec, RejectsDocCountBeyondTheCap) {
  // A header claiming more docs than kMaxReportDocs is rejected before any
  // allocation for the claimed count.
  Writer w;
  w.u8(kConsistencyVersion);
  w.u32(static_cast<std::uint32_t>(kMaxReportDocs + 1));
  auto decoded = decode_consistency(w.buffer());
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kProtocol);
}

TEST(ConsistencyCodec, RejectsTruncatedDoc) {
  ConsistencyReport report;
  report.docs.push_back(make_doc(0x33, 3, util::seconds(10)));
  Writer w;
  encode_consistency(w, report);
  Bytes wire = w.take();
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    auto decoded = decode_consistency(BytesView(wire).subspan(0, cut));
    EXPECT_FALSE(decoded.is_ok()) << "accepted a " << cut << "-byte prefix";
  }
}

TEST(ConsistencyCodec, RejectsTrailingGarbage) {
  ConsistencyReport report;
  report.docs.push_back(make_doc(0x44, 1, util::seconds(10)));
  Writer w;
  encode_consistency(w, report);
  w.u8(0xFF);
  auto decoded = decode_consistency(w.buffer());
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kProtocol);
}

TEST(ConsistencyCodec, StateNamesAreStable) {
  // /replicaz grep targets and the audit.checks state= label values.
  EXPECT_STREQ(replica_consistency_name(ReplicaConsistency::kFresh), "fresh");
  EXPECT_STREQ(replica_consistency_name(ReplicaConsistency::kStale), "stale");
  EXPECT_STREQ(replica_consistency_name(ReplicaConsistency::kDiverged),
               "diverged");
  EXPECT_STREQ(replica_consistency_name(ReplicaConsistency::kExpired),
               "expired");
  EXPECT_STREQ(replica_consistency_name(ReplicaConsistency::kMissing),
               "missing");
  EXPECT_STREQ(replica_consistency_name(ReplicaConsistency::kUnreachable),
               "unreachable");
}

}  // namespace
}  // namespace globe::obs
