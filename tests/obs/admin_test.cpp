// Admin telemetry endpoints over SimNet: /metrics, /healthz, /tracez.
#include "obs/admin.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "http/parser.hpp"
#include "net/simnet.hpp"
#include "obs/export.hpp"

namespace globe::obs {
namespace {

using http::HttpRequest;
using http::HttpResponse;
using util::millis;

struct AdminFixture : ::testing::Test {
  void SetUp() override {
    admin_host = net.add_host({"admin", net::CpuModel{}});
    peer_host = net.add_host({"peer", net::CpuModel{}});
    client_host = net.add_host({"client", net::CpuModel{}});

    collector.set_policy({/*keep_slower_than=*/0, /*keep_one_in=*/1});
    AdminConfig config;
    config.service = "test-service";
    config.registry = &registry;
    config.collector = &collector;
    config.events = &events;
    config.profile = &profile;
    // Deterministic probe clocks: every read advances 100 ns, so probe
    // costs in /profilez are exact and runs are byte-identical.
    profile.set_clocks([this] { return clock_ns += 100; },
                       [this] { return clock_ns += 100; });
    admin = std::make_unique<AdminHttpServer>(config);

    admin_ep = net::Endpoint{admin_host, 9900};
    net.bind(admin_ep, admin->handler());

    // A live peer for reachability probes: any bound handler proves the
    // endpoint reachable, even one that only returns errors.
    peer_ep = net::Endpoint{peer_host, 42};
    net.bind(peer_ep, [](net::ServerContext&, util::BytesView) {
      return util::Result<util::Bytes>(util::ErrorCode::kNotFound, "no-op");
    });

    flow = net.open_flow(client_host);
  }

  HttpResponse get(const std::string& target, const std::string& method = "GET") {
    HttpRequest req;
    req.method = method;
    req.target = target;
    auto raw = flow->call(admin_ep, req.serialize());
    EXPECT_TRUE(raw.is_ok()) << raw.status().to_string();
    auto resp = http::parse_response(*raw);
    EXPECT_TRUE(resp.is_ok()) << resp.status().to_string();
    return *resp;
  }

  static std::string trace_id_of(std::uint64_t id) {
    return TraceContext{id, id, 0, true}.trace_id();
  }

  void record_trace(std::uint64_t id, util::SimDuration duration) {
    TraceFragment f;
    f.trace_hi = id;
    f.trace_lo = id;
    f.span.name = "fetch";
    f.span.span_id = 100 + id;
    f.span.duration = duration;
    collector.record(f);
  }

  net::SimNet net;
  net::HostId admin_host, peer_host, client_host;
  MetricsRegistry registry;
  TraceCollector collector{16};
  EventLog events{64};
  ProfileRegistry profile;
  std::uint64_t clock_ns = 0;
  std::unique_ptr<AdminHttpServer> admin;
  net::Endpoint admin_ep, peer_ep;
  std::unique_ptr<net::SimFlow> flow;
};

TEST_F(AdminFixture, MetricsServesTheRegistrySnapshot) {
  registry.counter("proxy.fetches", {{"outcome", "ok"}}).inc(3);
  registry.gauge("replication.dynamic_replicas").set(2);

  HttpResponse resp = get("/metrics");
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.headers.get("Content-Type").value_or(""), "text/plain");
  // The body IS the exporter's rendering of the live registry.
  EXPECT_EQ(util::to_string(resp.body), to_text(registry.snapshot()));
  EXPECT_NE(util::to_string(resp.body).find("proxy.fetches"), std::string::npos);
}

TEST_F(AdminFixture, HealthzReportsEveryCheckAndOverallStatus) {
  bool degraded = false;
  admin->add_health_check("always_ok", [](net::ServerContext&) {
    return util::Status::ok();
  });
  admin->add_health_check("toggle", [&degraded](net::ServerContext&) {
    return degraded ? util::Status(util::ErrorCode::kUnavailable, "injected")
                    : util::Status::ok();
  });

  HttpResponse healthy = get("/healthz");
  EXPECT_EQ(healthy.status, 200);
  std::string body = util::to_string(healthy.body);
  EXPECT_NE(body.find("\"service\":\"test-service\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"always_ok\",\"ok\":true"), std::string::npos);
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);

  degraded = true;
  HttpResponse sick = get("/healthz");
  EXPECT_EQ(sick.status, 503);
  body = util::to_string(sick.body);
  EXPECT_NE(body.find("\"name\":\"toggle\",\"ok\":false"), std::string::npos);
  EXPECT_NE(body.find("injected"), std::string::npos);
  EXPECT_NE(body.find("\"status\":\"degraded\""), std::string::npos);
}

TEST_F(AdminFixture, HealthzFlipsWhenAProbedLinkGoesDown) {
  admin->add_health_check("peer", [this](net::ServerContext& ctx) {
    return reachability_probe(ctx, peer_ep);
  });

  // The peer answers kNotFound to the probe frame — in-protocol errors
  // still prove reachability.
  EXPECT_EQ(get("/healthz").status, 200);

  net.set_link_down(admin_host, peer_host, true);
  HttpResponse down = get("/healthz");
  EXPECT_EQ(down.status, 503);
  EXPECT_NE(util::to_string(down.body).find("\"name\":\"peer\",\"ok\":false"),
            std::string::npos);

  net.set_link_down(admin_host, peer_host, false);
  EXPECT_EQ(get("/healthz").status, 200);
}

TEST_F(AdminFixture, TracezHonorsMinMs) {
  record_trace(1, millis(10));
  record_trace(2, millis(300));
  record_trace(3, millis(40));

  HttpResponse all = get("/tracez");
  EXPECT_EQ(all.status, 200);
  EXPECT_EQ(all.headers.get("Content-Type").value_or(""), "application/json");
  std::string body = util::to_string(all.body);
  EXPECT_NE(body.find("\"min_ms\":0"), std::string::npos);
  EXPECT_NE(body.find("\"seen\":3"), std::string::npos);
  EXPECT_NE(body.find("\"kept\":3"), std::string::npos);
  EXPECT_NE(body.find(trace_id_of(1)), std::string::npos);
  EXPECT_NE(body.find(trace_id_of(2)), std::string::npos);

  HttpResponse slow = get("/tracez?min_ms=100");
  std::string slow_body = util::to_string(slow.body);
  EXPECT_NE(slow_body.find("\"min_ms\":100"), std::string::npos);
  EXPECT_NE(slow_body.find(trace_id_of(2)), std::string::npos);
  EXPECT_EQ(slow_body.find(trace_id_of(1)), std::string::npos);
  EXPECT_EQ(slow_body.find(trace_id_of(3)), std::string::npos);
}

TEST_F(AdminFixture, MalformedQueriesGet400WithoutReflection) {
  const std::string evil = "<script>alert(1)</script>";
  const std::vector<std::string> targets = {
      "/tracez?min_ms=abc",  "/tracez?min_ms=",     "/tracez?min_ms=12345678901",
      "/tracez?min_ms=1;x",  "/tracez?depth=3",     "/tracez?min_ms=" + evil,
      "/metrics?x=1",        "/healthz?verbose=1"};
  for (const std::string& target : targets) {
    HttpResponse resp = get(target);
    EXPECT_EQ(resp.status, 400) << target;
    std::string body = util::to_string(resp.body);
    // Static body only: nothing the peer sent may be echoed back.
    EXPECT_EQ(body.find("script"), std::string::npos) << target;
    EXPECT_EQ(body.find("abc"), std::string::npos) << target;
    EXPECT_EQ(body.find("depth"), std::string::npos) << target;
  }
}

TEST_F(AdminFixture, BoundaryMinMsValuesAccepted) {
  EXPECT_EQ(get("/tracez?min_ms=0").status, 200);
  EXPECT_EQ(get("/tracez?min_ms=1000000000").status, 200);
  EXPECT_EQ(get("/tracez?min_ms=1000000001").status, 400);
}

TEST_F(AdminFixture, ProfilezServesTableAndFoldedStacks) {
  {
    CostProbe outer("proxy.fetch", &profile);
    CostProbe inner("rsa_verify", &profile);
  }
  HttpResponse table = get("/profilez");
  EXPECT_EQ(table.status, 200);
  EXPECT_EQ(table.headers.get("Content-Type").value_or(""), "text/plain");
  std::string body = util::to_string(table.body);
  EXPECT_NE(body.find("# profile: top 2 of 2 stacks by cpu_ns"),
            std::string::npos) << body;
  EXPECT_NE(body.find("proxy.fetch;rsa_verify"), std::string::npos);

  HttpResponse folded = get("/profilez?fmt=folded");
  EXPECT_EQ(folded.status, 200);
  // One shared step clock feeds both wall and cpu; the 8 reads (wall+cpu
  // at each probe entry/exit) advance it 100 ns each, so inner inclusive
  // cpu = 200 ns and outer self cpu = 600 - 200 = 400 ns.  Folded output
  // is the self times, byte-exact under the deterministic clock.
  std::string folded_body = util::to_string(folded.body);
  EXPECT_EQ(folded_body, "proxy.fetch 400\nproxy.fetch;rsa_verify 200\n");

  // n= truncates the table to the heaviest stacks.
  HttpResponse top1 = get("/profilez?n=1");
  EXPECT_EQ(top1.status, 200);
  EXPECT_NE(util::to_string(top1.body).find("top 1 of 2"), std::string::npos);
  EXPECT_EQ(get("/profilez?fmt=folded&n=3").status, 200);
}

TEST_F(AdminFixture, ProfilezMalformedQueriesGet400WithoutReflection) {
  const std::string evil = "<script>alert(1)</script>";
  const std::vector<std::string> targets = {
      "/profilez?fmt=html",       "/profilez?fmt=folded&",
      "/profilez?n=",             "/profilez?n=0",
      "/profilez?n=10001",        "/profilez?n=1x",
      "/profilez?n=1&fmt=folded", /* fixed parameter order, like /tracez */
      "/profilez?depth=3",        "/profilez?fmt=" + evil};
  for (const std::string& target : targets) {
    HttpResponse resp = get(target);
    EXPECT_EQ(resp.status, 400) << target;
    std::string body = util::to_string(resp.body);
    EXPECT_EQ(body.find("script"), std::string::npos) << target;
    EXPECT_EQ(body.find("html"), std::string::npos) << target;
    EXPECT_EQ(body.find("depth"), std::string::npos) << target;
  }
  EXPECT_EQ(get("/profilez?n=10000").status, 200);
}

TEST_F(AdminFixture, MetricsScrapePublishesProfileCounters) {
  {
    CostProbe probe("rsa_verify", &profile);
  }
  HttpResponse resp = get("/metrics");
  EXPECT_EQ(resp.status, 200);
  std::string body = util::to_string(resp.body);
  // The scrape folded the profile into the registry before rendering.
  EXPECT_NE(body.find("profile.calls{probe=rsa_verify} 1"),
            std::string::npos) << body;
  EXPECT_NE(body.find("profile.cpu_ns{probe=rsa_verify}"),
            std::string::npos);
}

TEST_F(AdminFixture, NonGetAndUnknownPathsRejected) {
  HttpResponse post = get("/metrics", "POST");
  EXPECT_EQ(post.status, 405);
  EXPECT_EQ(post.headers.get("Allow").value_or(""), "GET");
  EXPECT_EQ(get("/notathing").status, 404);
}

TEST_F(AdminFixture, UnparsableRequestGets400) {
  auto raw = flow->call(admin_ep, util::to_bytes("not http at all"));
  ASSERT_TRUE(raw.is_ok());
  auto resp = http::parse_response(*raw);
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp->status, 400);
}

}  // namespace
}  // namespace globe::obs
