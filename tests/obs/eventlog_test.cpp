// Structured event log: trace stamping, level filtering, bounded ring.
#include "obs/log.hpp"

#include <gtest/gtest.h>

#include "util/clock.hpp"

namespace globe::obs {
namespace {

using util::ManualClock;
using util::millis;

TEST(EventLog, RecordsAndReturnsNewestFirst) {
  EventLog log(16);
  log.emit(EventLevel::kInfo, "proxy", "first", "", millis(1));
  log.emit(EventLevel::kWarn, "proxy", "second", "detail", millis(2));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.emitted(), 2u);

  auto recent = log.recent(8);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].event, "second");
  EXPECT_EQ(recent[0].level, EventLevel::kWarn);
  EXPECT_EQ(recent[0].detail, "detail");
  EXPECT_EQ(recent[0].time, millis(2));
  EXPECT_EQ(recent[1].event, "first");
}

TEST(EventLog, MinLevelFiltersCheaply) {
  EventLog log(16);
  log.set_min_level(EventLevel::kWarn);
  log.emit(EventLevel::kDebug, "proxy", "noise");
  log.emit(EventLevel::kInfo, "proxy", "chatter");
  log.emit(EventLevel::kError, "proxy", "boom");
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.recent(8)[0].event, "boom");
}

TEST(EventLog, RingBoundsMemory) {
  EventLog log(4);
  for (int i = 0; i < 100; ++i) {
    log.emit(EventLevel::kInfo, "proxy", "e" + std::to_string(i));
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.capacity(), 4u);
  EXPECT_EQ(log.emitted(), 100u);
  EXPECT_EQ(log.recent(8)[0].event, "e99");
  EXPECT_EQ(log.recent(8)[3].event, "e96");
}

TEST(EventLog, StampsTheEmittingThreadsTraceContext) {
  EventLog log(16);
  ManualClock clock;
  Tracer tracer(clock);

  log.emit(EventLevel::kInfo, "proxy", "outside");
  std::uint64_t hi, lo, stage_span;
  {
    auto fetch = tracer.span("fetch");
    hi = tracer.trace_hi();
    lo = tracer.trace_lo();
    {
      auto stage = tracer.span("element_verify");
      stage_span = current_trace_context().parent_span;
      log.emit(EventLevel::kWarn, "proxy", "element_rejected", "logo.gif");
    }
  }

  auto recent = log.recent(8);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].trace_hi, hi);
  EXPECT_EQ(recent[0].trace_lo, lo);
  EXPECT_EQ(recent[0].span_id, stage_span);
  EXPECT_EQ(recent[1].trace_hi, 0u);  // "outside" was not in a trace
  EXPECT_EQ(recent[1].span_id, 0u);

  // Join: every record of one trace, oldest first.
  auto joined = log.for_trace(hi, lo);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0].event, "element_rejected");
  EXPECT_TRUE(log.for_trace(hi + 1, lo).empty());
}

TEST(EventRecord, JsonCarriesTraceIdOnlyInsideATrace) {
  EventRecord record;
  record.level = EventLevel::kWarn;
  record.time = 42;
  record.component = "replication";
  record.event = "pull_rejected";
  record.detail = "bad \"signature\"";
  std::string plain = record.to_json();
  EXPECT_EQ(plain,
            "{\"t\":42,\"level\":\"warn\",\"component\":\"replication\","
            "\"event\":\"pull_rejected\",\"detail\":\"bad \\\"signature\\\"\"}");

  record.trace_hi = 0xff;
  record.trace_lo = 1;
  record.span_id = 7;
  std::string traced = record.to_json();
  EXPECT_NE(traced.find("\"trace_id\":\"00000000000000ff0000000000000001\""),
            std::string::npos);
  EXPECT_NE(traced.find("\"span_id\":7"), std::string::npos);
}

TEST(EventLog, ClearResets) {
  EventLog log(8);
  log.emit(EventLevel::kInfo, "proxy", "x");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.emitted(), 0u);
}

}  // namespace
}  // namespace globe::obs
