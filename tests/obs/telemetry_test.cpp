// Cluster telemetry plane: snapshot codec, histogram merge properties,
// fleet scraping over SimNet, windowed queries and failure paths.
#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include "net/simnet.hpp"
#include "obs/collector.hpp"
#include "rpc/rpc.hpp"

namespace globe::obs {
namespace {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Reader;
using util::Writer;
using util::seconds;

Snapshot roundtrip(const Snapshot& in) {
  Writer w;
  encode_snapshot(w, in);
  Bytes wire = w.take();
  auto out = decode_snapshot(wire);
  EXPECT_TRUE(out.is_ok()) << out.status().to_string();
  return out.is_ok() ? *out : Snapshot{};
}

// --- Wire codec --------------------------------------------------------------

TEST(SnapshotCodec, RoundTripsAllKinds) {
  MetricsRegistry reg;
  reg.set_default_labels({{"node", "n1"}, {"role", "proxy"}});
  reg.counter("c", {{"outcome", "ok"}}).inc(7);
  reg.gauge("g").set(-2.5);
  auto& h = reg.histogram("h", {1, 10, 100});
  h.observe(0.5);
  h.observe(50);
  h.observe(5000);

  Snapshot in = reg.snapshot();
  Snapshot out = roundtrip(in);
  ASSERT_EQ(out.samples.size(), in.samples.size());
  for (std::size_t i = 0; i < in.samples.size(); ++i) {
    const MetricSample& a = in.samples[i];
    const MetricSample& b = out.samples[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_DOUBLE_EQ(a.value, b.value);
    EXPECT_EQ(a.bounds, b.bounds);
    EXPECT_EQ(a.bucket_counts, b.bucket_counts);
    EXPECT_EQ(a.count, b.count);
  }
}

TEST(SnapshotCodec, RoundTripsExemplars) {
  Snapshot in;
  MetricSample s;
  s.name = "h";
  s.kind = MetricSample::Kind::kHistogram;
  s.bounds = {1, 2};
  s.bucket_counts = {3, 0, 1};
  s.count = 4;
  s.value = 12.0;
  s.exemplars.resize(3);
  s.exemplars[0] = {0xAB, 0xCD};
  in.samples.push_back(s);

  Snapshot out = roundtrip(in);
  ASSERT_EQ(out.samples.size(), 1u);
  ASSERT_EQ(out.samples[0].exemplars.size(), 3u);
  EXPECT_EQ(out.samples[0].exemplars[0].trace_hi, 0xABu);
  EXPECT_EQ(out.samples[0].exemplars[0].trace_lo, 0xCDu);
  EXPECT_FALSE(out.samples[0].exemplars[1].valid());
}

TEST(SnapshotCodec, CountIsDerivedFromBucketsNotTrusted) {
  // The wire format carries no count field at all — a lying node cannot
  // ship count != sum(buckets).  Decode must re-derive it.
  Snapshot in;
  MetricSample s;
  s.name = "h";
  s.kind = MetricSample::Kind::kHistogram;
  s.bounds = {10};
  s.bucket_counts = {4, 2};
  s.count = 999;  // lie locally; never encoded
  s.value = 1.0;
  in.samples.push_back(s);

  Snapshot out = roundtrip(in);
  ASSERT_EQ(out.samples.size(), 1u);
  EXPECT_EQ(out.samples[0].count, 6u);
}

TEST(SnapshotCodec, RejectsBadVersion) {
  Writer w;
  w.u8(kSnapshotVersion + 1);
  w.u32(0);
  EXPECT_EQ(decode_snapshot(w.take()).code(), ErrorCode::kProtocol);
}

TEST(SnapshotCodec, RejectsOversizedSeriesCount) {
  Writer w;
  w.u8(kSnapshotVersion);
  w.u32(static_cast<std::uint32_t>(kMaxSeries + 1));
  EXPECT_EQ(decode_snapshot(w.take()).code(), ErrorCode::kProtocol);
}

TEST(SnapshotCodec, RejectsEmptyMetricName) {
  Writer w;
  w.u8(kSnapshotVersion);
  w.u32(1);
  w.u8(0);  // counter
  w.str("");
  EXPECT_EQ(decode_snapshot(w.take()).code(), ErrorCode::kProtocol);
}

TEST(SnapshotCodec, RejectsUnknownKind) {
  Writer w;
  w.u8(kSnapshotVersion);
  w.u32(1);
  w.u8(9);
  w.str("c");
  EXPECT_EQ(decode_snapshot(w.take()).code(), ErrorCode::kProtocol);
}

TEST(SnapshotCodec, RejectsOversizedLabelCount) {
  Writer w;
  w.u8(kSnapshotVersion);
  w.u32(1);
  w.u8(0);
  w.str("c");
  w.u8(static_cast<std::uint8_t>(kMaxLabels + 1));
  EXPECT_EQ(decode_snapshot(w.take()).code(), ErrorCode::kProtocol);
}

TEST(SnapshotCodec, RejectsNonFiniteValue) {
  Writer w;
  w.u8(kSnapshotVersion);
  w.u32(1);
  w.u8(1);  // gauge
  w.str("g");
  w.u8(0);
  w.u64(0x7FF0000000000000ULL);  // +inf
  EXPECT_EQ(decode_snapshot(w.take()).code(), ErrorCode::kProtocol);
}

TEST(SnapshotCodec, RejectsNonIncreasingBounds) {
  Snapshot in;
  MetricSample s;
  s.name = "h";
  s.kind = MetricSample::Kind::kHistogram;
  s.bounds = {10, 20};
  s.bucket_counts = {0, 0, 0};
  in.samples.push_back(s);
  Writer w;
  encode_snapshot(w, in);
  Bytes wire = w.take();
  // Locate the second bound (20.0) and lower it below the first.
  // Layout: version(1) count(4) kind(1) len(4)+"h"(1) labels(1) value(8)
  // nbounds(1) bound0(8) bound1(8)...
  std::size_t bound1_off = 1 + 4 + 1 + 4 + 1 + 1 + 8 + 1 + 8;
  ASSERT_LE(bound1_off + 8, wire.size());
  Writer patch;
  patch.u64(std::bit_cast<std::uint64_t>(5.0));
  Bytes p = patch.take();
  std::copy(p.begin(), p.end(), wire.begin() + static_cast<long>(bound1_off));
  EXPECT_EQ(decode_snapshot(wire).code(), ErrorCode::kProtocol);
}

TEST(SnapshotCodec, RejectsTruncationAndTrailingBytes) {
  MetricsRegistry reg;
  reg.counter("c").inc();
  Writer w;
  encode_snapshot(w, reg.snapshot());
  Bytes wire = w.take();

  Bytes truncated(wire.begin(), wire.end() - 1);
  EXPECT_EQ(decode_snapshot(truncated).code(), ErrorCode::kProtocol);

  Bytes padded = wire;
  padded.push_back(0);
  EXPECT_EQ(decode_snapshot(padded).code(), ErrorCode::kProtocol);
}

// --- Histogram merge properties (satellite: property test) ------------------

MetricSample histogram_sample(MetricsRegistry& reg, const std::string& name) {
  for (MetricSample& s : reg.snapshot().samples) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "no sample " << name;
  return MetricSample{};
}

TEST(HistogramMerge, PreservesCountSumBucketsAndBracketsQuantiles) {
  std::mt19937 rng(20260806);
  // The PR 9 latency layout: sub-ms buckets below the 1…100 ms decades, so
  // cache-hit populations (tens of microseconds) land in real buckets and
  // the property holds across the full range, not just whole milliseconds.
  const std::vector<double> bounds = {0.05, 0.1, 0.2, 0.5,
                                      1,    2,   5,   10, 20, 50, 100};
  for (int iter = 0; iter < 50; ++iter) {
    MetricsRegistry ra, rb;
    auto& ha = ra.histogram("h", bounds);
    auto& hb = rb.histogram("h", bounds);
    std::uniform_int_distribution<int> n_obs(1, 200);
    std::uniform_real_distribution<double> value(0.0, 150.0);
    // Bimodal population, like a cache in front of a WAN: most
    // observations are sub-ms hits, the rest spread across the decades.
    std::uniform_real_distribution<double> hit(0.0, 0.8);
    std::bernoulli_distribution is_hit(0.6);
    auto observe = [&](auto& h) {
      h.observe(is_hit(rng) ? hit(rng) : value(rng));
    };
    int na = n_obs(rng), nb = n_obs(rng);
    for (int i = 0; i < na; ++i) observe(ha);
    for (int i = 0; i < nb; ++i) observe(hb);

    MetricSample a = histogram_sample(ra, "h");
    MetricSample b = histogram_sample(rb, "h");
    MetricSample merged = a;
    ASSERT_TRUE(merge_histogram_sample(merged, b));

    // Count and sum are exactly additive.
    EXPECT_EQ(merged.count, a.count + b.count);
    EXPECT_NEAR(merged.value, a.value + b.value, 1e-9);
    ASSERT_EQ(merged.bucket_counts.size(), a.bucket_counts.size());
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < merged.bucket_counts.size(); ++i) {
      EXPECT_EQ(merged.bucket_counts[i],
                a.bucket_counts[i] + b.bucket_counts[i]);
      total += merged.bucket_counts[i];
    }
    EXPECT_EQ(total, merged.count);

    // A merged quantile lies within [min, max] of the inputs' quantiles,
    // at bucket granularity: blending two populations cannot move a
    // quantile outside either input's range.  The comparison widens each
    // input estimate to its bucket's edges because the estimator
    // interpolates linearly INSIDE the chosen bucket — exact bucket,
    // approximate position — so point estimates can differ by sub-bucket
    // amounts even for the true bracketing order.
    auto bucket_edges = [&](double v) {
      double lo = 0, hi = bounds.back();
      for (double bound : bounds) {
        if (v <= bound) {
          hi = bound;
          break;
        }
        lo = bound;
      }
      return std::pair<double, double>{lo, hi};
    };
    struct Q {
      double MetricSample::*field;
      double q;
    };
    const Q qs[] = {{&MetricSample::p50, 0.50},
                    {&MetricSample::p90, 0.90},
                    {&MetricSample::p99, 0.99}};
    for (const Q& q : qs) {
      double qa = a.*(q.field), qb = b.*(q.field), qm = merged.*(q.field);
      EXPECT_GE(qm, bucket_edges(std::min(qa, qb)).first - 1e-9) << "q=" << q.q;
      EXPECT_LE(qm, bucket_edges(std::max(qa, qb)).second + 1e-9)
          << "q=" << q.q;
    }
  }
}

TEST(HistogramMerge, RefusesMismatchedBucketLayouts) {
  MetricsRegistry ra, rb;
  ra.histogram("h", {1, 2}).observe(1.5);
  rb.histogram("h", {1, 3}).observe(1.5);
  MetricSample a = histogram_sample(ra, "h");
  MetricSample b = histogram_sample(rb, "h");
  MetricSample before = a;
  EXPECT_FALSE(merge_histogram_sample(a, b));
  EXPECT_EQ(a.bucket_counts, before.bucket_counts);
  EXPECT_EQ(a.count, before.count);

  MetricSample counter;
  counter.kind = MetricSample::Kind::kCounter;
  EXPECT_FALSE(merge_histogram_sample(a, counter));
}

// --- Fleet scraping over SimNet ---------------------------------------------

struct FleetFixture : ::testing::Test {
  struct Node {
    MetricsRegistry registry;
    std::unique_ptr<TelemetryNode> telemetry;
    rpc::ServiceDispatcher dispatcher;
    net::HostId host;
    net::Endpoint endpoint;
  };

  void add_node(Node& node, const std::string& name, const std::string& role) {
    node.host = net.add_host({name, net::CpuModel{}});
    node.telemetry = std::make_unique<TelemetryNode>(node.registry, name, role);
    node.telemetry->register_with(node.dispatcher);
    node.endpoint = net::Endpoint{node.host, 9100};
    net.bind(node.endpoint, node.dispatcher.handler());
    agg.add_target({name, role, node.endpoint});
  }

  void SetUp() override {
    agg_host = net.add_host({"agg", net::CpuModel{}});
    add_node(a, "os-1", "object-server");
    add_node(b, "os-2", "object-server");
    flow = net.open_flow(agg_host);
  }

  const MetricSample* find(const Snapshot& snap, const std::string& name,
                           const Labels& labels) {
    for (const MetricSample& s : snap.samples) {
      if (s.name == name && s.labels == labels) return &s;
    }
    return nullptr;
  }

  net::SimNet net;
  net::HostId agg_host;
  Node a, b;
  TelemetryAggregator agg;
  std::unique_ptr<net::SimFlow> flow;
};

TEST_F(FleetFixture, MergedViewCarriesPerNodeAndClusterSeries) {
  a.registry.counter("object_server.requests").inc(3);
  b.registry.counter("object_server.requests").inc(5);
  a.registry.histogram("serve_ms", {1, 10, 100}).observe(4);
  b.registry.histogram("serve_ms", {1, 10, 100}).observe(40);
  b.registry.histogram("serve_ms", {1, 10, 100}).observe(400);

  agg.scrape_round(*flow);
  Snapshot merged = agg.merged();

  // Per-node series with aggregator-enforced node/role labels.
  const MetricSample* ca = find(merged, "object_server.requests",
                                {{"node", "os-1"}, {"role", "object-server"}});
  const MetricSample* cb = find(merged, "object_server.requests",
                                {{"node", "os-2"}, {"role", "object-server"}});
  ASSERT_NE(ca, nullptr);
  ASSERT_NE(cb, nullptr);
  EXPECT_DOUBLE_EQ(ca->value, 3);
  EXPECT_DOUBLE_EQ(cb->value, 5);

  // Cluster aggregate: labels stripped, counter summed.
  const MetricSample* cluster = find(merged, "object_server.requests", {});
  ASSERT_NE(cluster, nullptr);
  EXPECT_DOUBLE_EQ(cluster->value, 8);

  // Cluster histogram: bucket-wise merge; count equals per-node total.
  const MetricSample* h = find(merged, "serve_ms", {});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3u);
  EXPECT_DOUBLE_EQ(h->value, 444);

  // The aggregator's own health series ride along.
  bool saw_rounds = false;
  for (const MetricSample& s : merged.samples) {
    if (s.name == "telemetry.scrape_rounds") saw_rounds = true;
  }
  EXPECT_TRUE(saw_rounds);

  for (const NodeStatus& n : agg.nodes()) {
    EXPECT_FALSE(n.stale) << n.node;
    EXPECT_EQ(n.scrapes_ok, 1u);
  }
}

TEST_F(FleetFixture, MergedLabelSetsMatchFleet) {
  a.registry.counter("x").inc();
  b.registry.counter("x").inc();
  agg.scrape_round(*flow);

  for (const MetricSample& s : agg.merged().samples) {
    std::string node;
    for (const auto& [k, v] : s.labels) {
      if (k == "node") node = v;
    }
    // Every labeled series names a real fleet member (or the aggregator);
    // unlabeled series are cluster aggregates.
    if (!node.empty()) {
      EXPECT_TRUE(node == "os-1" || node == "os-2" || node == "aggregator")
          << s.name << " claims node=" << node;
    }
  }
}

TEST_F(FleetFixture, WindowedRateSumAndQuantiles) {
  const Labels la = {{"node", "os-1"}, {"role", "object-server"}};
  auto& ok = a.registry.counter("req", {{"outcome", "ok"}});
  auto& err = a.registry.counter("req", {{"outcome", "error"}});
  auto& h = a.registry.histogram("lat_ms", {1, 10, 100});

  // Rounds 10 s apart; each adds 40 ok, 10 error, 50 fast observations.
  for (int round = 0; round < 6; ++round) {
    ok.inc(40);
    err.inc(10);
    for (int i = 0; i < 50; ++i) h.observe(5);
    flow->set_time(util::seconds(10) * static_cast<std::uint64_t>(round + 1));
    agg.scrape_round(*flow);
  }

  // rate: exact-label counter delta / elapsed.  5 deltas of 40 over 50 s.
  Labels ok_labels = la;
  ok_labels.emplace_back("outcome", "ok");
  std::sort(ok_labels.begin(), ok_labels.end());
  auto r = agg.rate("req", ok_labels, seconds(60));
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 200.0 / 50.0, 1e-9);

  // windowed_delta_sum: subset filter sums both outcomes.
  auto sum = agg.windowed_delta_sum("req", la, seconds(60));
  ASSERT_TRUE(sum.has_value());
  EXPECT_NEAR(sum->delta, 250.0, 1e-9);
  EXPECT_NEAR(sum->seconds, 50.0, 1e-9);

  // windowed_histogram: only in-window observations count.
  Labels hl = la;
  auto wh = agg.windowed_histogram("lat_ms", hl, seconds(30));
  ASSERT_TRUE(wh.has_value());
  // Window edge lands on the round at t=30; delta to t=60 is 3 rounds of 50.
  EXPECT_EQ(wh->count, 150u);
  EXPECT_LE(wh->p99, 10.0);

  // Too little history: a 5 s window has no earlier round inside it.
  EXPECT_FALSE(agg.rate("req", ok_labels, seconds(5)).has_value());
  // Unknown series.
  EXPECT_FALSE(agg.rate("nope", ok_labels, seconds(60)).has_value());
}

TEST_F(FleetFixture, CounterResetYieldsNoRate) {
  auto& c = a.registry.counter("req");
  const Labels la = {{"node", "os-1"}, {"role", "object-server"}};
  c.inc(100);
  flow->set_time(util::seconds(10));
  agg.scrape_round(*flow);
  a.registry.reset();  // counter drops to 0: a restart
  flow->set_time(util::seconds(20));
  agg.scrape_round(*flow);
  EXPECT_FALSE(agg.rate("req", la, seconds(60)).has_value());
  EXPECT_FALSE(agg.windowed_delta_sum("req", la, seconds(60)).has_value());
}

TEST_F(FleetFixture, RingIsBounded) {
  TelemetryAggregator::Config config;
  config.max_rounds = 4;
  TelemetryAggregator small(std::move(config));
  small.add_target({"os-1", "object-server", a.endpoint});
  for (int i = 0; i < 10; ++i) {
    flow->advance(util::seconds(1));
    small.scrape_round(*flow);
  }
  EXPECT_EQ(small.rounds(), 10u);
  EXPECT_GT(small.last_round_time(), util::seconds(5));
  // A series that never existed stays absent regardless of window size.
  EXPECT_FALSE(small
                   .windowed_delta_sum("telemetry_noop", {{"node", "os-1"}},
                                       seconds(3600))
                   .has_value());
}

// --- Failure paths: a bad node can deny its own data, never poison -----------

TEST_F(FleetFixture, DeadTargetGoesStaleWithoutPoisoningMergedView) {
  net::HostId ghost = net.add_host({"ghost", net::CpuModel{}});
  agg.add_target({"ghost-1", "object-server", net::Endpoint{ghost, 9100}});
  a.registry.counter("x").inc(2);
  b.registry.counter("x").inc(3);

  agg.scrape_round(*flow);

  const MetricSample* cluster = find(agg.merged(), "x", {});
  ASSERT_NE(cluster, nullptr);
  EXPECT_DOUBLE_EQ(cluster->value, 5);  // healthy nodes only

  bool saw_ghost = false;
  for (const NodeStatus& n : agg.nodes()) {
    if (n.node != "ghost-1") {
      EXPECT_FALSE(n.stale);
      continue;
    }
    saw_ghost = true;
    EXPECT_TRUE(n.stale);
    EXPECT_EQ(n.scrapes_failed, 1u);
    EXPECT_FALSE(n.last_error.empty());
  }
  EXPECT_TRUE(saw_ghost);

  // telemetry.scrape_errors names the failing node.
  const MetricSample* errors =
      find(agg.merged(), "telemetry.scrape_errors",
           {{"node", "ghost-1"}, {"role", "aggregator"}});
  ASSERT_NE(errors, nullptr);
  EXPECT_DOUBLE_EQ(errors->value, 1);
}

TEST_F(FleetFixture, MalformedSnapshotGoesStale) {
  net::HostId evil = net.add_host({"evil", net::CpuModel{}});
  net::Endpoint ep{evil, 9100};
  rpc::ServiceDispatcher dispatcher;
  dispatcher.register_method(
      rpc::kTelemetryService, kScrape,
      [](net::ServerContext&, BytesView) -> util::Result<Bytes> {
        return Bytes{1, 2, 3};  // not even a framed node string
      });
  net.bind(ep, dispatcher.handler());
  agg.add_target({"evil-1", "object-server", ep});
  a.registry.counter("x").inc();

  agg.scrape_round(*flow);

  for (const NodeStatus& n : agg.nodes()) {
    if (n.node == "evil-1") {
      EXPECT_TRUE(n.stale);
      EXPECT_FALSE(n.last_error.empty());
    }
  }
  // Healthy data still merged.
  EXPECT_NE(find(agg.merged(), "x",
                 {{"node", "os-1"}, {"role", "object-server"}}),
            nullptr);
}

TEST_F(FleetFixture, OversizedSnapshotIsRejectedAtDecode) {
  net::HostId evil = net.add_host({"evil", net::CpuModel{}});
  net::Endpoint ep{evil, 9100};
  rpc::ServiceDispatcher dispatcher;
  dispatcher.register_method(
      rpc::kTelemetryService, kScrape,
      [](net::ServerContext&, BytesView) -> util::Result<Bytes> {
        Writer w;
        w.str("evil-1");
        w.str("object-server");
        w.u8(kSnapshotVersion);
        w.u32(1u << 30);  // claims a billion series
        return w.take();
      });
  net.bind(ep, dispatcher.handler());
  agg.add_target({"evil-1", "object-server", ep});

  agg.scrape_round(*flow);

  for (const NodeStatus& n : agg.nodes()) {
    if (n.node == "evil-1") {
      EXPECT_TRUE(n.stale);
      // util::checked_count rejects the forged series count at the ceiling.
      EXPECT_NE(n.last_error.find("ceiling"), std::string::npos) << n.last_error;
    }
  }
}

TEST_F(FleetFixture, IdentityMismatchIsRejected) {
  // A node registered under one name answering with another is filed as a
  // failure, not under either name.
  net::HostId mallory = net.add_host({"mallory", net::CpuModel{}});
  net::Endpoint ep{mallory, 9100};
  MetricsRegistry reg;
  reg.counter("stolen").inc(42);
  TelemetryNode node(reg, "os-1", "object-server");  // claims os-1's identity
  rpc::ServiceDispatcher dispatcher;
  node.register_with(dispatcher);
  net.bind(ep, dispatcher.handler());
  agg.add_target({"mallory-1", "object-server", ep});

  agg.scrape_round(*flow);

  for (const NodeStatus& n : agg.nodes()) {
    if (n.node == "mallory-1") {
      EXPECT_TRUE(n.stale);
      EXPECT_NE(n.last_error.find("identity mismatch"), std::string::npos)
          << n.last_error;
    }
  }
  EXPECT_EQ(find(agg.merged(), "stolen",
                 {{"node", "mallory-1"}, {"role", "object-server"}}),
            nullptr);
}

TEST_F(FleetFixture, LinkDownMarksStaleThenRecovers) {
  a.registry.counter("x").inc();

  agg.scrape_round(*flow);
  for (const NodeStatus& n : agg.nodes()) EXPECT_FALSE(n.stale);

  net.set_link_down(agg_host, a.host, true);
  flow->advance(util::seconds(10));
  agg.scrape_round(*flow);
  for (const NodeStatus& n : agg.nodes()) {
    if (n.node == "os-1") {
      EXPECT_TRUE(n.stale);
      EXPECT_EQ(n.scrapes_failed, 1u);
    } else {
      EXPECT_FALSE(n.stale);
    }
  }

  net.set_link_down(agg_host, a.host, false);
  flow->advance(util::seconds(10));
  agg.scrape_round(*flow);
  for (const NodeStatus& n : agg.nodes()) {
    EXPECT_FALSE(n.stale) << n.node;
    if (n.node == "os-1") EXPECT_EQ(n.scrapes_ok, 2u);
  }
}

TEST_F(FleetFixture, ScrapeRoundsAreTraced) {
  TraceCollector collector(16);
  collector.set_policy({/*keep_slower_than=*/0, /*keep_one_in=*/1});
  TelemetryAggregator::Config config;
  config.trace_sink = &collector;
  TelemetryAggregator traced(std::move(config));
  traced.add_target({"os-1", "object-server", a.endpoint});
  a.dispatcher.set_trace_sink(&collector);

  traced.scrape_round(*flow);

  auto traces = collector.recent();
  ASSERT_FALSE(traces.empty());
  const StitchedTrace& t = traces.front();
  EXPECT_EQ(t.root.name, "telemetry.scrape_round");
  EXPECT_NE(find_span(t.root, "scrape:os-1"), nullptr);
  // The server-side rpc:telemetry span stitched in as a remote fragment.
  EXPECT_GE(t.fragments, 2u);
  EXPECT_NE(find_span(t.root, "rpc:telemetry/1"), nullptr);
}

TEST(TelemetryAggregatorEdge, EmptyAggregatorAnswersCleanly) {
  TelemetryAggregator agg;
  EXPECT_EQ(agg.target_count(), 0u);
  EXPECT_TRUE(agg.merged().samples.empty());
  EXPECT_TRUE(agg.nodes().empty());
  EXPECT_FALSE(agg.rate("x", {}, seconds(60)).has_value());
  EXPECT_FALSE(agg.windowed_histogram("x", {}, seconds(60)).has_value());
  EXPECT_TRUE(agg.series_labels("x").empty());
  EXPECT_EQ(agg.rounds(), 0u);
}


TEST(SnapshotCodec, RejectsOversizedBucketCount) {
  // Histogram bounds count is capped at kMaxBuckets - 1; a sample claiming
  // the full u8 range is rejected before bounds.reserve().
  Writer w;
  w.u8(kSnapshotVersion);
  w.u32(1);
  w.u8(2);  // histogram
  w.str("h");
  w.u8(0);  // labels
  w.u64(0x4000000000000000ULL);  // value 2.0
  w.u8(static_cast<std::uint8_t>(kMaxBuckets));  // one past the bounds cap
  EXPECT_EQ(decode_snapshot(w.take()).code(), ErrorCode::kProtocol);
}
}  // namespace
}  // namespace globe::obs
