// SLO burn-rate evaluation over the telemetry aggregator: availability and
// latency specs, the pending/firing/resolved state machine, and alert JSON.
#include "obs/slo.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "net/simnet.hpp"
#include "obs/telemetry.hpp"
#include "rpc/rpc.hpp"

namespace globe::obs {
namespace {

using util::seconds;

struct SloFixture : ::testing::Test {
  void SetUp() override {
    agg_host = net.add_host({"agg", net::CpuModel{}});
    node_host = net.add_host({"proxy-1", net::CpuModel{}});
    telemetry = std::make_unique<TelemetryNode>(registry, "proxy-1", "proxy");
    telemetry->register_with(dispatcher);
    endpoint = net::Endpoint{node_host, 9100};
    net.bind(endpoint, dispatcher.handler());
    agg.add_target({"proxy-1", "proxy", endpoint});
    flow = net.open_flow(agg_host);
  }

  /// One scrape round at `round_index` * 10 s (1-based).
  void round(int round_index) {
    flow->set_time(util::seconds(10) * static_cast<std::uint64_t>(round_index));
    agg.scrape_round(*flow);
  }

  static AlertStateKind state_of(const std::vector<AlertState>& alerts,
                                 const std::string& slo) {
    for (const AlertState& a : alerts) {
      if (a.slo == slo) return a.state;
    }
    ADD_FAILURE() << "no alert instance for " << slo;
    return AlertStateKind::kResolved;
  }

  net::SimNet net;
  net::HostId agg_host, node_host;
  MetricsRegistry registry;
  std::unique_ptr<TelemetryNode> telemetry;
  rpc::ServiceDispatcher dispatcher;
  net::Endpoint endpoint;
  TelemetryAggregator agg;
  std::unique_ptr<net::SimFlow> flow;
};

TEST_F(SloFixture, SpecValidationRejectsNonsense) {
  SloEvaluator slo(agg);
  SloSpec bad;
  bad.name = "bad";
  bad.metric = "proxy.fetches";
  bad.objective = 1.0;
  EXPECT_THROW(slo.add_spec(bad), std::invalid_argument);
  bad.objective = 0;
  EXPECT_THROW(slo.add_spec(bad), std::invalid_argument);
  bad.objective = 0.99;
  bad.short_window = seconds(120);
  bad.long_window = seconds(60);
  EXPECT_THROW(slo.add_spec(bad), std::invalid_argument);
  bad.short_window = seconds(60);
  bad.long_window = seconds(300);
  slo.add_spec(bad);
  EXPECT_EQ(slo.spec_count(), 1u);
}

TEST_F(SloFixture, AvailabilityIncidentFiresAndResolves) {
  auto& ok = registry.counter("proxy.fetches", {{"outcome", "ok"}});
  auto& err = registry.counter("proxy.fetches", {{"outcome", "error"}});

  SloEvaluator slo(agg);
  SloSpec spec;
  spec.name = "proxy-availability";
  spec.type = SloSpec::Type::kAvailability;
  spec.metric = "proxy.fetches";
  spec.good_labels = {{"outcome", "ok"}};
  spec.objective = 0.99;  // burn > 2 means bad fraction > 2%
  spec.short_window = seconds(60);
  spec.long_window = seconds(300);
  spec.burn_threshold = 2.0;
  slo.add_spec(spec);

  // Healthy warmup: a clean series never creates an alert instance.
  int t = 0;
  for (int i = 0; i < 7; ++i) {
    ok.inc(100);
    round(++t);
  }
  slo.evaluate(flow->now());
  EXPECT_TRUE(slo.alerts().empty());

  // Outage: half the fetches fail.  Both windows go hot -> firing.
  for (int i = 0; i < 3; ++i) {
    ok.inc(50);
    err.inc(50);
    round(++t);
  }
  slo.evaluate(flow->now());
  auto alerts = slo.alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].state, AlertStateKind::kFiring);
  EXPECT_GT(alerts[0].burn_short, 2.0);
  EXPECT_GT(alerts[0].burn_long, 2.0);
  // The instance names the offending node.
  bool named = false;
  for (const auto& [k, v] : alerts[0].labels) {
    if (k == "node" && v == "proxy-1") named = true;
  }
  EXPECT_TRUE(named);

  // Recovery: clean rounds.  The short window drains first (pending), then
  // the long window, and the instance persists as resolved history.
  bool saw_pending = false, saw_resolved = false;
  AlertStateKind last = AlertStateKind::kFiring;
  for (int i = 0; i < 40 && !saw_resolved; ++i) {
    ok.inc(100);
    round(++t);
    slo.evaluate(flow->now());
    last = state_of(slo.alerts(), "proxy-availability");
    if (last == AlertStateKind::kPending) saw_pending = true;
    if (last == AlertStateKind::kResolved) saw_resolved = true;
    // Never back to firing during a clean recovery.
    if (saw_pending) EXPECT_NE(last, AlertStateKind::kFiring);
  }
  EXPECT_TRUE(saw_pending);
  EXPECT_TRUE(saw_resolved);
  ASSERT_EQ(slo.alerts().size(), 1u);  // history retained, not deleted
}

TEST_F(SloFixture, LatencyIncidentNamesTheSlowSeries) {
  auto& fast = registry.histogram("proxy.fetch_ms", {10, 100, 1000},
                                  {{"replica", "r-fast"}});
  auto& slow = registry.histogram("proxy.fetch_ms", {10, 100, 1000},
                                  {{"replica", "r-slow"}});

  SloEvaluator slo(agg);
  SloSpec spec;
  spec.name = "fetch-latency";
  spec.type = SloSpec::Type::kLatency;
  spec.metric = "proxy.fetch_ms";
  spec.threshold_ms = 100;  // on a bucket boundary
  spec.objective = 0.9;     // burn > 2 means > 20% of fetches over threshold
  spec.short_window = seconds(60);
  spec.long_window = seconds(300);
  spec.burn_threshold = 2.0;
  slo.add_spec(spec);

  int t = 0;
  for (int i = 0; i < 7; ++i) {
    for (int j = 0; j < 20; ++j) {
      fast.observe(5);
      slow.observe(5);
    }
    round(++t);
  }
  slo.evaluate(flow->now());
  EXPECT_TRUE(slo.alerts().empty());

  // One replica turns slow; the other stays fast.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 20; ++j) {
      fast.observe(5);
      slow.observe(500);
    }
    round(++t);
  }
  slo.evaluate(flow->now());
  auto alerts = slo.alerts();
  ASSERT_EQ(alerts.size(), 1u);  // only the slow replica's series alerts
  EXPECT_EQ(alerts[0].state, AlertStateKind::kFiring);
  bool slow_named = false, fast_named = false;
  for (const auto& [k, v] : alerts[0].labels) {
    if (k == "replica" && v == "r-slow") slow_named = true;
    if (k == "replica" && v == "r-fast") fast_named = true;
  }
  EXPECT_TRUE(slow_named);
  EXPECT_FALSE(fast_named);

  // Recovery resolves it.
  AlertStateKind last = AlertStateKind::kFiring;
  for (int i = 0; i < 40 && last != AlertStateKind::kResolved; ++i) {
    for (int j = 0; j < 20; ++j) {
      fast.observe(5);
      slow.observe(5);
    }
    round(++t);
    slo.evaluate(flow->now());
    last = state_of(slo.alerts(), "fetch-latency");
  }
  EXPECT_EQ(last, AlertStateKind::kResolved);
}

TEST_F(SloFixture, LatencyThresholdBetweenBoundsRoundsUp) {
  auto& h = registry.histogram("proxy.fetch_ms", {100, 200},
                               {{"replica", "r1"}});

  SloEvaluator slo(agg);
  SloSpec spec;
  spec.name = "rounded";
  spec.type = SloSpec::Type::kLatency;
  spec.metric = "proxy.fetch_ms";
  spec.threshold_ms = 150;  // strictly between bounds: straddling bucket
  spec.objective = 0.9;     // counts as good
  spec.short_window = seconds(60);
  spec.long_window = seconds(300);
  slo.add_spec(spec);

  // All observations land in the (100, 200] bucket — over 150 in truth, but
  // the histogram cannot tell, so the evaluator must not guess them bad.
  int t = 0;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 20; ++j) h.observe(180);
    round(++t);
  }
  slo.evaluate(flow->now());
  EXPECT_TRUE(slo.alerts().empty());
}

TEST_F(SloFixture, NoTrafficIsNotAnOutage) {
  registry.counter("proxy.fetches", {{"outcome", "ok"}});  // exists, never incs

  SloEvaluator slo(agg);
  SloSpec spec;
  spec.name = "quiet";
  spec.type = SloSpec::Type::kAvailability;
  spec.metric = "proxy.fetches";
  spec.good_labels = {{"outcome", "ok"}};
  slo.add_spec(spec);

  for (int t = 1; t <= 5; ++t) round(t);
  slo.evaluate(flow->now());
  EXPECT_TRUE(slo.alerts().empty());
}

TEST_F(SloFixture, EvaluatorExportsItsOwnSeries) {
  SloEvaluator slo(agg);  // self-registry defaults to the aggregator's
  slo.evaluate(flow->now());
  bool saw = false;
  for (const MetricSample& s : agg.self_registry().snapshot().samples) {
    if (s.name == "slo.evaluations") {
      saw = true;
      EXPECT_DOUBLE_EQ(s.value, 1);
    }
  }
  EXPECT_TRUE(saw);
}

TEST_F(SloFixture, JsonListsAlertsWithStateAndLabels) {
  auto& ok = registry.counter("proxy.fetches", {{"outcome", "ok"}});
  auto& err = registry.counter("proxy.fetches", {{"outcome", "error"}});

  SloEvaluator slo(agg);
  SloSpec spec;
  spec.name = "proxy-availability";
  spec.type = SloSpec::Type::kAvailability;
  spec.metric = "proxy.fetches";
  spec.good_labels = {{"outcome", "ok"}};
  slo.add_spec(spec);

  int t = 0;
  for (int i = 0; i < 6; ++i) {
    ok.inc(10);
    err.inc(90);
    round(++t);
  }
  slo.evaluate(flow->now());

  std::string json = slo.to_json();
  EXPECT_NE(json.find("\"alerts\":["), std::string::npos);
  EXPECT_NE(json.find("\"slo\":\"proxy-availability\""), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"firing\""), std::string::npos);
  EXPECT_NE(json.find("\"node\":\"proxy-1\""), std::string::npos);
  EXPECT_NE(json.find("\"burn_short\":"), std::string::npos);

  EXPECT_EQ(slo.to_json().find("\n"), std::string::npos);  // single line
}

}  // namespace
}  // namespace globe::obs
