// TraceCollector: cross-host stitching, tail sampling, bounded memory.
#include "obs/collector.hpp"

#include <gtest/gtest.h>

namespace globe::obs {
namespace {

using util::millis;

// Hand-built fragments: a client root with one child span, plus server
// fragments that should stitch under specific client spans.
SpanRecord make_span(std::string name, std::uint64_t span_id,
                     util::SimTime start, util::SimDuration duration) {
  SpanRecord span;
  span.name = std::move(name);
  span.span_id = span_id;
  span.start = start;
  span.duration = duration;
  return span;
}

TraceFragment fragment(std::uint64_t hi, std::uint64_t lo,
                       std::uint64_t parent, SpanRecord span) {
  TraceFragment f;
  f.trace_hi = hi;
  f.trace_lo = lo;
  f.parent_span = parent;
  f.span = std::move(span);
  return f;
}

TailSamplingPolicy keep_everything() {
  TailSamplingPolicy policy;
  policy.keep_slower_than = 0;
  policy.keep_one_in = 1;
  return policy;
}

TEST(TraceCollector, StitchesServerFragmentsUnderTheirParentSpans) {
  TraceCollector collector(8);
  collector.set_policy(keep_everything());

  SpanRecord root = make_span("fetch", 100, 0, millis(50));
  root.children.push_back(make_span("resolve", 101, 0, millis(10)));
  root.children.push_back(make_span("key_check", 102, millis(10), millis(20)));

  // Server fragments arrive BEFORE the root (servers finish first).
  collector.record(
      fragment(1, 2, 101, make_span("rpc:naming/1", 201, millis(1), millis(8))));
  collector.record(fragment(
      1, 2, 102, make_span("rpc:gd.security/1", 202, millis(11), millis(15))));
  EXPECT_EQ(collector.pending_fragments(), 2u);
  EXPECT_EQ(collector.size(), 0u);

  collector.record(fragment(1, 2, 0, root));
  EXPECT_EQ(collector.pending_fragments(), 0u);
  ASSERT_EQ(collector.size(), 1u);

  auto trace = collector.find(1, 2);
  ASSERT_TRUE(trace.has_value());
  EXPECT_TRUE(trace->complete);
  EXPECT_EQ(trace->fragments, 3u);
  ASSERT_EQ(trace->root.children.size(), 2u);
  // The naming span landed under resolve, the security span under key_check.
  ASSERT_EQ(trace->root.children[0].children.size(), 1u);
  EXPECT_EQ(trace->root.children[0].children[0].name, "rpc:naming/1");
  ASSERT_EQ(trace->root.children[1].children.size(), 1u);
  EXPECT_EQ(trace->root.children[1].children[0].name, "rpc:gd.security/1");
  EXPECT_EQ(remote_span_total(trace->root), millis(8 + 15));
}

TEST(TraceCollector, ChainedFragmentsAttachTransitively) {
  // Server A's fragment parents on the client; server B's fragment parents
  // on a span INSIDE server A's fragment (A called B while traced).
  TraceCollector collector(8);
  collector.set_policy(keep_everything());

  SpanRecord a = make_span("rpc:location/2", 300, 0, millis(12));
  a.children.push_back(make_span("forward", 301, millis(1), millis(9)));

  // B arrives first, then A, then the root: attachment needs the fixpoint
  // pass, not one linear sweep.
  collector.record(
      fragment(9, 9, 301, make_span("rpc:location/2", 400, millis(2), millis(7))));
  collector.record(fragment(9, 9, 100, a));
  SpanRecord root = make_span("fetch", 100, 0, millis(20));
  collector.record(fragment(9, 9, 0, root));

  auto trace = collector.find(9, 9);
  ASSERT_TRUE(trace.has_value());
  EXPECT_TRUE(trace->complete);
  EXPECT_EQ(trace->fragments, 3u);
  ASSERT_EQ(trace->root.children.size(), 1u);
  const SpanRecord& stitched_a = trace->root.children[0];
  ASSERT_EQ(stitched_a.children.size(), 1u);
  ASSERT_EQ(stitched_a.children[0].children.size(), 1u);
  EXPECT_EQ(stitched_a.children[0].children[0].span_id, 400u);
  // remote_span_total stops at the MAXIMAL rpc: span — nested remote time
  // is not double counted.
  EXPECT_EQ(remote_span_total(trace->root), millis(12));
}

TEST(TraceCollector, OrphanFragmentsAttachToRootAndMarkIncomplete) {
  TraceCollector collector(8);
  collector.set_policy(keep_everything());
  collector.record(fragment(
      3, 3, 77777, make_span("rpc:gd.access/1", 500, millis(5), millis(3))));
  collector.record(fragment(3, 3, 0, make_span("fetch", 100, 0, millis(30))));

  auto trace = collector.find(3, 3);
  ASSERT_TRUE(trace.has_value());
  EXPECT_FALSE(trace->complete);
  EXPECT_EQ(trace->fragments, 2u);
  ASSERT_EQ(trace->root.children.size(), 1u);
  EXPECT_EQ(trace->root.children[0].span_id, 500u);
}

TEST(TraceCollector, UnsampledFragmentsAreDropped) {
  TraceCollector collector(8);
  collector.set_policy(keep_everything());
  TraceFragment f = fragment(4, 4, 0, make_span("fetch", 100, 0, millis(1)));
  f.sampled = false;
  collector.record(f);
  EXPECT_EQ(collector.size(), 0u);
  EXPECT_EQ(collector.traces_seen(), 0u);
}

TEST(TraceCollector, TailSamplerKeepsEverySlowTrace) {
  TraceCollector collector(64);
  TailSamplingPolicy policy;
  policy.keep_slower_than = millis(100);
  policy.keep_one_in = 0;  // slow traces only
  collector.set_policy(policy);

  for (std::uint64_t i = 1; i <= 20; ++i) {
    // Every third trace is slow.
    util::SimDuration d = (i % 3 == 0) ? millis(150) : millis(10);
    collector.record(fragment(i, i, 0, make_span("fetch", 100, 0, d)));
  }
  EXPECT_EQ(collector.traces_seen(), 20u);
  EXPECT_EQ(collector.traces_kept(), 6u);  // 3, 6, ..., 18
  for (const auto& trace : collector.recent(64)) {
    EXPECT_GE(trace.duration(), millis(100));
  }
}

TEST(TraceCollector, TailSamplerKeepsOneInNOfTheFastTraces) {
  TraceCollector collector(64);
  TailSamplingPolicy policy;
  policy.keep_slower_than = millis(100);
  policy.keep_one_in = 4;
  collector.set_policy(policy);

  for (std::uint64_t i = 1; i <= 16; ++i) {
    collector.record(fragment(i, i, 0, make_span("fetch", 100, 0, millis(1))));
  }
  EXPECT_EQ(collector.traces_seen(), 16u);
  EXPECT_EQ(collector.traces_kept(), 4u);
}

TEST(TraceCollector, RingEvictsOldestBeyondCapacity) {
  TraceCollector collector(4);
  collector.set_policy(keep_everything());
  for (std::uint64_t i = 1; i <= 10; ++i) {
    collector.record(fragment(i, i, 0, make_span("fetch", 100, 0, millis(i))));
  }
  EXPECT_EQ(collector.size(), 4u);
  EXPECT_EQ(collector.capacity(), 4u);
  EXPECT_FALSE(collector.find(1, 1).has_value());  // evicted
  EXPECT_TRUE(collector.find(10, 10).has_value());

  // recent() is newest first.
  auto recent = collector.recent(64);
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_EQ(recent[0].trace_hi, 10u);
  EXPECT_EQ(recent[3].trace_hi, 7u);
}

TEST(TraceCollector, RecentFiltersByMinDuration) {
  TraceCollector collector(16);
  collector.set_policy(keep_everything());
  for (std::uint64_t i = 1; i <= 8; ++i) {
    collector.record(
        fragment(i, i, 0, make_span("fetch", 100, 0, millis(10 * i))));
  }
  auto slow = collector.recent(64, millis(50));
  ASSERT_EQ(slow.size(), 4u);  // 50, 60, 70, 80 ms
  for (const auto& trace : slow) EXPECT_GE(trace.duration(), millis(50));
}

TEST(TraceCollector, PendingPoolIsBounded) {
  TraceCollector collector(4);
  collector.set_policy(keep_everything());
  // 5000 rootless fragments across 5000 traces: the pool must stay bounded
  // (whole oldest traces evicted), not grow without limit.
  for (std::uint64_t i = 1; i <= 5000; ++i) {
    collector.record(
        fragment(i, i, 42, make_span("rpc:naming/1", 200 + i, 0, millis(1))));
  }
  EXPECT_LE(collector.pending_fragments(), 4096u);

  // A late root for an evicted trace still assembles (as incomplete only if
  // its fragments were evicted — here they were, so no children).
  collector.record(fragment(1, 1, 0, make_span("fetch", 42, 0, millis(9))));
  auto trace = collector.find(1, 1);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->fragments, 1u);
  EXPECT_TRUE(trace->root.children.empty());
}

TEST(TraceCollector, ClearResetsEverything) {
  TraceCollector collector(8);
  collector.set_policy(keep_everything());
  collector.record(
      fragment(1, 1, 5, make_span("rpc:naming/1", 201, 0, millis(1))));
  collector.record(fragment(2, 2, 0, make_span("fetch", 100, 0, millis(1))));
  collector.clear();
  EXPECT_EQ(collector.size(), 0u);
  EXPECT_EQ(collector.pending_fragments(), 0u);
  EXPECT_EQ(collector.traces_seen(), 0u);
  EXPECT_EQ(collector.traces_kept(), 0u);
}

}  // namespace
}  // namespace globe::obs
