// Cost-profile registry (DESIGN.md §15): probe stack folding, self vs
// inclusive accounting, pluggable deterministic clocks, registry scoping,
// bounded cardinality, monotone publication, and thread safety (nested
// probes from many threads racing a snapshotter — run under TSan).
#include "obs/profile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace globe::obs {
namespace {

/// Deterministic step clocks: every read advances by a fixed amount, so a
/// probe's wall delta is exactly (reads in between + 1) * step, and two
/// identical runs produce byte-identical folded output.  Atomic so the
/// concurrency tests can share one clock across threads without the test
/// itself being the data race.
struct StepClock {
  std::atomic<std::uint64_t> now{0};
  std::uint64_t step;
  explicit StepClock(std::uint64_t s) : step(s) {}
  std::uint64_t operator()() { return now.fetch_add(step) + step; }
};

void install_step_clocks(ProfileRegistry& reg, std::uint64_t wall_step,
                         std::uint64_t cpu_step) {
  auto wall = std::make_shared<StepClock>(wall_step);
  auto cpu = std::make_shared<StepClock>(cpu_step);
  reg.set_clocks([wall] { return (*wall)(); }, [cpu] { return (*cpu)(); });
}

const ProfileSample* find_stack(const ProfileSnapshot& snap,
                                std::string_view stack) {
  for (const ProfileSample& s : snap.samples) {
    if (s.stack == stack) return &s;
  }
  return nullptr;
}

TEST(CostProbe, FoldsNestedProbesIntoStacks) {
  ProfileRegistry reg;
  install_step_clocks(reg, 10, 1);
  {
    CostProbe outer("proxy.fetch", &reg);
    {
      CostProbe inner("rsa_verify", &reg);
    }
  }
  ProfileSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 2u);
  const ProfileSample* outer = find_stack(snap, "proxy.fetch");
  const ProfileSample* inner = find_stack(snap, "proxy.fetch;rsa_verify");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->leaf, "proxy.fetch");
  EXPECT_EQ(inner->leaf, "rsa_verify");
  EXPECT_EQ(outer->stat.calls, 1u);
  EXPECT_EQ(inner->stat.calls, 1u);
}

TEST(CostProbe, SelfTimeExcludesChildren) {
  ProfileRegistry reg;
  // Wall advances 100 per read; reads are (outer start, inner start, inner
  // end, outer end), so inner inclusive = 100 and outer inclusive = 300.
  install_step_clocks(reg, 100, 100);
  {
    CostProbe outer("a", &reg);
    {
      CostProbe inner("b", &reg);
    }
  }
  ProfileSnapshot snap = reg.snapshot();
  const ProfileSample* outer = find_stack(snap, "a");
  const ProfileSample* inner = find_stack(snap, "a;b");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->stat.wall_ns, 100u);
  EXPECT_EQ(inner->stat.self_wall_ns, 100u);  // leaf: self == inclusive
  EXPECT_EQ(outer->stat.wall_ns, 300u);
  // Outer self subtracts the child's inclusive time.
  EXPECT_EQ(outer->stat.self_wall_ns, 200u);
  // Inclusive >= self always; the invariant to_folded depends on.
  for (const ProfileSample& s : snap.samples) {
    EXPECT_GE(s.stat.wall_ns, s.stat.self_wall_ns) << s.stack;
    EXPECT_GE(s.stat.cpu_ns, s.stat.self_cpu_ns) << s.stack;
  }
}

TEST(CostProbe, MacroCompilesAndRecords) {
  ProfileRegistry reg;
  install_step_clocks(reg, 1, 1);
  {
    ProfileRegistryScope scope(&reg);
    GLOBE_PROFILE_SCOPE("rsa_verify");
    GLOBE_PROFILE_SCOPE("sha1");  // same scope, distinct lines, nests
  }
  ProfileSnapshot snap = reg.snapshot();
  EXPECT_NE(find_stack(snap, "rsa_verify"), nullptr);
  EXPECT_NE(find_stack(snap, "rsa_verify;sha1"), nullptr);
}

TEST(CostProbe, DeterministicClocksGiveIdenticalFoldedOutput) {
  // The determinism contract: with virtual clocks installed, two identical
  // probe sequences produce byte-identical folded stacks — the sim can
  // assert on /profilez output exactly like it asserts on sim time.
  auto run = [] {
    ProfileRegistry reg;
    install_step_clocks(reg, 7, 3);
    for (int i = 0; i < 5; ++i) {
      CostProbe fetch("proxy.fetch", &reg);
      {
        CostProbe bind("bind", &reg);
        CostProbe verify("rsa_verify", &reg);
      }
      CostProbe element("element_verify", &reg);
    }
    return to_folded(reg.snapshot());
  };
  std::string first = run();
  std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // Folded lines are "stack <self_cpu_ns>"; the deepest stack is present.
  EXPECT_NE(first.find("proxy.fetch;bind;rsa_verify "), std::string::npos);
}

TEST(CostProbe, ExplicitRegistryBeatsScopeBeatsGlobal) {
  ProfileRegistry scoped, explicit_reg;
  install_step_clocks(scoped, 1, 1);
  install_step_clocks(explicit_reg, 1, 1);
  {
    ProfileRegistryScope scope(&scoped);
    EXPECT_EQ(&ProfileRegistryScope::current(), &scoped);
    { CostProbe probe("to_scope"); }
    { CostProbe probe("to_explicit", &explicit_reg); }
    {
      // A nullptr scope is "no opinion": the outer scope stays ambient.
      ProfileRegistryScope noop(nullptr);
      EXPECT_EQ(&ProfileRegistryScope::current(), &scoped);
      { CostProbe probe("under_noop"); }
    }
  }
  EXPECT_EQ(&ProfileRegistryScope::current(), &global_profile_registry());
  ProfileSnapshot scoped_snap = scoped.snapshot();
  EXPECT_NE(find_stack(scoped_snap, "to_scope"), nullptr);
  EXPECT_NE(find_stack(scoped_snap, "under_noop"), nullptr);
  EXPECT_EQ(find_stack(scoped_snap, "to_explicit"), nullptr);
  EXPECT_NE(find_stack(explicit_reg.snapshot(), "to_explicit"), nullptr);
}

TEST(CostProbe, DepthOverflowIsInertNotCorrupt) {
  ProfileRegistry reg;
  install_step_clocks(reg, 1, 1);
  // Recursion gives the LIFO unwind RAII scoping guarantees; the probes
  // past kMaxDepth are inert and must not disturb the frames below them.
  std::function<void(std::size_t)> descend = [&](std::size_t depth) {
    if (depth == 0) return;
    CostProbe probe("deep", &reg);
    descend(depth - 1);
  };
  descend(CostProbe::kMaxDepth + 8);
  ProfileSnapshot snap = reg.snapshot();
  // Exactly kMaxDepth frames recorded; the deepest stack has that many.
  std::size_t max_frames = 0;
  for (const ProfileSample& s : snap.samples) {
    max_frames = std::max(
        max_frames,
        static_cast<std::size_t>(
            1 + std::count(s.stack.begin(), s.stack.end(), ';')));
  }
  EXPECT_EQ(max_frames, CostProbe::kMaxDepth);
  // And a fresh probe still records normally afterwards.
  { CostProbe after("after", &reg); }
  EXPECT_NE(find_stack(reg.snapshot(), "after"), nullptr);
}

TEST(ProfileRegistry, StackCardinalityIsBoundedAndCounted) {
  ProfileRegistry reg;
  install_step_clocks(reg, 1, 1);
  // Far more distinct stacks than the shards can hold; record() directly
  // (a probe label is a literal in real code — this simulates the backstop
  // against accidental interpolation).
  const std::size_t total =
      ProfileRegistry::kShards * ProfileRegistry::kMaxStacksPerShard * 2;
  ProbeStat one;
  one.calls = 1;
  for (std::size_t i = 0; i < total; ++i) {
    reg.record("stack_" + std::to_string(i), one);
  }
  EXPECT_GT(reg.dropped(), 0u);
  EXPECT_LE(reg.snapshot().samples.size(),
            ProfileRegistry::kShards * ProfileRegistry::kMaxStacksPerShard);
  EXPECT_EQ(reg.snapshot().samples.size() + reg.dropped(), total);
}

TEST(ProfileRegistry, ResetClearsStacks) {
  ProfileRegistry reg;
  install_step_clocks(reg, 1, 1);
  { CostProbe probe("gone", &reg); }
  EXPECT_EQ(reg.snapshot().samples.size(), 1u);
  reg.reset();
  EXPECT_TRUE(reg.snapshot().samples.empty());
}

TEST(ProfileRegistry, PublishesMonotoneDeltasPerLeaf) {
  ProfileRegistry reg;
  install_step_clocks(reg, 10, 10);
  MetricsRegistry metrics;
  {
    CostProbe outer("proxy.fetch", &reg);
    CostProbe inner("rsa_verify", &reg);
  }
  reg.publish_to(metrics);
  Counter& calls = metrics.counter("profile.calls", {{"probe", "rsa_verify"}});
  Counter& cpu = metrics.counter("profile.cpu_ns", {{"probe", "rsa_verify"}});
  EXPECT_EQ(calls.value(), 1u);
  std::uint64_t cpu_after_one = cpu.value();
  EXPECT_GT(cpu_after_one, 0u);

  // Publishing again with no new probes adds nothing (delta, not total).
  reg.publish_to(metrics);
  EXPECT_EQ(calls.value(), 1u);
  EXPECT_EQ(cpu.value(), cpu_after_one);

  // More work moves the counters forward by the increment only.
  {
    CostProbe outer("proxy.fetch", &reg);
    CostProbe inner("rsa_verify", &reg);
  }
  reg.publish_to(metrics);
  EXPECT_EQ(calls.value(), 2u);
  EXPECT_GT(cpu.value(), cpu_after_one);

  // A registry reset() must not make published counters go backwards.
  std::uint64_t cpu_before_reset = cpu.value();
  reg.reset();
  reg.publish_to(metrics);
  EXPECT_EQ(calls.value(), 2u);
  EXPECT_EQ(cpu.value(), cpu_before_reset);
}

TEST(ProfileRegistry, PublishAggregatesLeafAcrossStacks) {
  ProfileRegistry reg;
  install_step_clocks(reg, 1, 1);
  MetricsRegistry metrics;
  // The same leaf under two different parents sums into one probe= series.
  {
    CostProbe a("bind", &reg);
    CostProbe leaf("sha1", &reg);
  }
  {
    CostProbe b("element_verify", &reg);
    CostProbe leaf("sha1", &reg);
  }
  reg.publish_to(metrics);
  EXPECT_EQ(metrics.counter("profile.calls", {{"probe", "sha1"}}).value(), 2u);
}

TEST(ProfileRegistry, ConcurrentNestedProbesRaceSnapshots) {
  // N threads run nested probes while a snapshotter loops; under TSan this
  // is the data-race check, everywhere else a totals check: every recorded
  // call survives, none double-counted.
  ProfileRegistry reg;
  install_step_clocks(reg, 1, 1);  // one atomic clock shared by all threads
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::atomic<bool> done{false};
  std::thread snapshotter([&] {
    while (!done.load(std::memory_order_acquire)) {
      ProfileSnapshot snap = reg.snapshot();
      for (const ProfileSample& s : snap.samples) {
        EXPECT_GE(s.stat.wall_ns, s.stat.self_wall_ns) << s.stack;
      }
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        CostProbe outer("proxy.fetch", &reg);
        {
          CostProbe bind("bind", &reg);
          CostProbe verify("rsa_verify", &reg);
        }
        CostProbe element("element_verify", &reg);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  done.store(true, std::memory_order_release);
  snapshotter.join();

  ProfileSnapshot snap = reg.snapshot();
  const std::uint64_t expect = std::uint64_t{kThreads} * kIters;
  for (const char* stack :
       {"proxy.fetch", "proxy.fetch;bind", "proxy.fetch;bind;rsa_verify",
        "proxy.fetch;element_verify"}) {
    const ProfileSample* s = find_stack(snap, stack);
    ASSERT_NE(s, nullptr) << stack;
    EXPECT_EQ(s->stat.calls, expect) << stack;
  }
  EXPECT_EQ(reg.dropped(), 0u);
}

TEST(ProfileRegistry, ConcurrentPublishersKeepCountersMonotone) {
  ProfileRegistry reg;
  install_step_clocks(reg, 1, 1);
  MetricsRegistry metrics;
  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    while (!stop.load(std::memory_order_acquire)) reg.publish_to(metrics);
  });
  for (int i = 0; i < 2000; ++i) {
    CostProbe probe("rsa_verify", &reg);
  }
  stop.store(true, std::memory_order_release);
  publisher.join();
  reg.publish_to(metrics);
  EXPECT_EQ(metrics.counter("profile.calls", {{"probe", "rsa_verify"}}).value(),
            2000u);
}

TEST(ProfileRender, FoldedUsesSelfTimeAndTableRanksInclusive) {
  ProfileRegistry reg;
  install_step_clocks(reg, 100, 100);
  {
    CostProbe outer("a", &reg);
    CostProbe inner("b", &reg);
  }
  ProfileSnapshot snap = reg.snapshot();
  std::string folded = to_folded(snap);
  // Folded emits SELF cpu so frames never double-count: "a" shows 200 (its
  // 300 inclusive minus the child's 100), "a;b" shows 100.
  EXPECT_NE(folded.find("a 200\n"), std::string::npos) << folded;
  EXPECT_NE(folded.find("a;b 100\n"), std::string::npos) << folded;

  std::string table = to_table(snap, 10);
  // Table ranks by INCLUSIVE cpu: "a" (300) above "a;b" (100).
  EXPECT_NE(table.find("# profile: top 2 of 2 stacks"), std::string::npos);
  EXPECT_LT(table.find("  a\n"), table.find("  a;b\n")) << table;

  // top_n truncation keeps the heaviest stack.
  std::string top1 = to_table(snap, 1);
  EXPECT_NE(top1.find("top 1 of 2"), std::string::npos);
  EXPECT_NE(top1.find("  a\n"), std::string::npos);
  EXPECT_EQ(top1.find("  a;b\n"), std::string::npos);
}

}  // namespace
}  // namespace globe::obs
