// Metrics registry: counters, gauges, histogram bucket/quantile math,
// label normalization, and thread-safety of concurrent increments.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include "util/thread_pool.hpp"

namespace globe::obs {
namespace {

TEST(Counter, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set(0);
  EXPECT_DOUBLE_EQ(g.value(), 0);
}

TEST(Histogram, BucketSelection) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (bounds are inclusive)
  h.observe(5.0);    // bucket 1
  h.observe(100.0);  // bucket 2
  h.observe(1e6);    // overflow

  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
  auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(Histogram, QuantileInterpolation) {
  Histogram h({10.0, 20.0, 30.0});
  // 10 observations spread evenly inside (10, 20]: ranks 1..10 are all in
  // bucket 1, so quantiles interpolate linearly between 10 and 20.
  for (int i = 0; i < 10; ++i) h.observe(15.0);

  // rank(0.5) = 5 of 10 seen in a bucket covering [10, 20).
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0 + 10.0 * (5.0 / 10.0));
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
  EXPECT_GT(h.quantile(0.9), h.quantile(0.1));
}

TEST(Histogram, QuantileEdgeCases) {
  Histogram h({10.0, 20.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  h.observe(1e9);                          // overflow only
  // The histogram cannot see past its last finite bound.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 20.0);
}

TEST(Histogram, ResetKeepsLayout) {
  Histogram h({1.0, 2.0});
  h.observe(1.5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  ASSERT_EQ(h.bounds().size(), 2u);
  h.observe(1.5);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
}

TEST(Registry, LabelOrderIsNormalized) {
  MetricsRegistry registry;
  Counter& a = registry.counter("requests", {{"b", "2"}, {"a", "1"}});
  Counter& b = registry.counter("requests", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);  // same series regardless of label order
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(Registry, DistinctLabelsDistinctSeries) {
  MetricsRegistry registry;
  Counter& ok = registry.counter("fetches", {{"outcome", "ok"}});
  Counter& err = registry.counter("fetches", {{"outcome", "error"}});
  EXPECT_NE(&ok, &err);
  ok.inc(3);
  err.inc(1);

  auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.samples.size(), 2u);
  // Sorted by (name, labels): "error" < "ok".
  EXPECT_EQ(snapshot.samples[0].labels[0].second, "error");
  EXPECT_DOUBLE_EQ(snapshot.samples[0].value, 1.0);
  EXPECT_EQ(snapshot.samples[1].labels[0].second, "ok");
  EXPECT_DOUBLE_EQ(snapshot.samples[1].value, 3.0);
}

TEST(Registry, HandlesStayValidAcrossReset) {
  MetricsRegistry registry;
  Counter& c = registry.counter("c");
  Gauge& g = registry.gauge("g");
  Histogram& h = registry.histogram("h", {1.0, 2.0});
  c.inc(7);
  g.set(7);
  h.observe(1.5);

  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  // The same references keep working.
  c.inc();
  EXPECT_EQ(registry.counter("c").value(), 1u);
}

TEST(Registry, SnapshotContainsHistogramSummary) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat", {10.0, 20.0, 40.0});
  for (int i = 0; i < 100; ++i) h.observe(15.0);

  auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.samples.size(), 1u);
  const MetricSample& s = snapshot.samples[0];
  EXPECT_EQ(s.kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.value, 1500.0);
  ASSERT_EQ(s.bucket_counts.size(), 4u);
  EXPECT_EQ(s.bucket_counts[1], 100u);
  EXPECT_GT(s.p50, 10.0);
  EXPECT_LE(s.p99, 20.0);
}

TEST(Registry, ConcurrentIncrementsFromThreadPool) {
  MetricsRegistry registry;
  Counter& c = registry.counter("hits", {{"worker", "any"}});
  Histogram& h = registry.histogram("work", {10.0, 100.0, 1000.0});

  constexpr int kTasks = 64;
  constexpr int kIncsPerTask = 1000;
  util::ThreadPool pool(8);
  for (int t = 0; t < kTasks; ++t) {
    pool.submit([&c, &h, t] {
      for (int i = 0; i < kIncsPerTask; ++i) {
        c.inc();
        h.observe(static_cast<double>(t));
      }
    });
  }
  pool.wait_idle();

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kTasks) * kIncsPerTask);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kTasks) * kIncsPerTask);
}

TEST(Registry, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  util::ThreadPool pool(8);
  for (int t = 0; t < 32; ++t) {
    pool.submit([&registry, t] {
      // Half the tasks hit the same series, half create distinct ones.
      registry.counter("shared").inc();
      registry.counter("per_task", {{"t", std::to_string(t)}}).inc();
    });
  }
  pool.wait_idle();
  EXPECT_EQ(registry.counter("shared").value(), 32u);
  EXPECT_EQ(registry.snapshot().samples.size(), 33u);
}

TEST(GlobalRegistry, IsASingleton) {
  EXPECT_EQ(&global_registry(), &global_registry());
}

}  // namespace
}  // namespace globe::obs
