// Exporters: text/JSON rendering of snapshots and span trees.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace globe::obs {
namespace {

TEST(Export, TextFormat) {
  MetricsRegistry registry;
  registry.counter("requests", {{"outcome", "ok"}}).inc(3);
  registry.gauge("depth").set(1.5);

  std::string text = to_text(registry.snapshot());
  EXPECT_NE(text.find("requests{outcome=ok} 3\n"), std::string::npos);
  EXPECT_NE(text.find("depth 1.5\n"), std::string::npos);
}

TEST(Export, JsonCounterAndGauge) {
  MetricsRegistry registry;
  registry.counter("hits", {{"a", "1"}}).inc(2);

  std::string json = to_json(registry.snapshot());
  EXPECT_NE(json.find("{\"name\":\"hits\",\"labels\":{\"a\":\"1\"},"
                      "\"kind\":\"counter\",\"value\":2}"),
            std::string::npos);
}

TEST(Export, JsonHistogramBuckets) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat", {1.0, 10.0});
  h.observe(0.5);
  h.observe(100.0);  // overflow

  std::string json = to_json(registry.snapshot());
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("{\"le\":1,\"count\":1}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\":\"inf\",\"count\":1}"), std::string::npos);
}

TEST(Export, JsonEscaping) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Export, SpanTreeJson) {
  SpanRecord root;
  root.name = "fetch";
  root.start = 10;
  root.duration = 100;
  SpanRecord child;
  child.name = "resolve";
  child.start = 12;
  child.duration = 30;
  root.children.push_back(child);

  EXPECT_EQ(to_json(root),
            "{\"name\":\"fetch\",\"start_ns\":10,\"duration_ns\":100,"
            "\"children\":[{\"name\":\"resolve\",\"start_ns\":12,"
            "\"duration_ns\":30,\"children\":[]}]}");
}

TEST(Export, DeterministicOrdering) {
  MetricsRegistry registry;
  registry.counter("b").inc();
  registry.counter("a", {{"x", "2"}}).inc();
  registry.counter("a", {{"x", "1"}}).inc();

  std::string json = to_json(registry.snapshot());
  std::size_t a1 = json.find("\"x\":\"1\"");
  std::size_t a2 = json.find("\"x\":\"2\"");
  std::size_t b = json.find("\"name\":\"b\"");
  EXPECT_LT(a1, a2);
  EXPECT_LT(a2, b);
}

TEST(Export, WriteBenchJsonRoundTrip) {
  MetricsRegistry registry;
  registry.counter("n").inc(7);

  std::string path = testing::TempDir() + "obs_export_test.json";
  auto status = write_bench_json(path, "unit_test", registry.snapshot());
  ASSERT_TRUE(status.is_ok()) << status.to_string();

  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"bench\":\"unit_test\""), std::string::npos);
  EXPECT_NE(content.find("\"name\":\"n\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Export, WriteBenchJsonBadPath) {
  MetricsRegistry registry;
  auto status = write_bench_json("/nonexistent-dir/x/y.json", "b",
                                 registry.snapshot());
  EXPECT_FALSE(status.is_ok());
}

}  // namespace
}  // namespace globe::obs
