// TraceContext wire form and thread-local propagation (DESIGN.md §10).
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/clock.hpp"

namespace globe::obs {
namespace {

using util::ManualClock;
using util::millis;

TEST(TraceContext, InvalidUntilItNamesATrace) {
  TraceContext ctx;
  EXPECT_FALSE(ctx.valid());
  ctx.trace_lo = 1;
  EXPECT_TRUE(ctx.valid());
  ctx = TraceContext{};
  ctx.trace_hi = 1;
  EXPECT_TRUE(ctx.valid());
}

TEST(TraceContext, EncodeDecodeRoundTrip) {
  TraceContext ctx;
  ctx.trace_hi = 0x0123456789abcdefULL;
  ctx.trace_lo = 0xfedcba9876543210ULL;
  ctx.parent_span = 0xdeadbeefcafef00dULL;
  ctx.sampled = false;

  util::Writer w;
  ctx.encode(w);
  EXPECT_EQ(w.buffer().size(), TraceContext::kWireSize);

  util::Reader r(w.buffer());
  TraceContext back = TraceContext::decode(r);
  EXPECT_EQ(back.trace_hi, ctx.trace_hi);
  EXPECT_EQ(back.trace_lo, ctx.trace_lo);
  EXPECT_EQ(back.parent_span, ctx.parent_span);
  EXPECT_FALSE(back.sampled);

  ctx.sampled = true;
  util::Writer w2;
  ctx.encode(w2);
  util::Reader r2(w2.buffer());
  EXPECT_TRUE(TraceContext::decode(r2).sampled);
}

TEST(TraceContext, DecodeThrowsOnTruncation) {
  util::Bytes short_buf(TraceContext::kWireSize - 1, 0);
  util::Reader r(short_buf);
  EXPECT_THROW(TraceContext::decode(r), util::SerialError);
}

TEST(TraceContext, TraceIdIs32LowercaseHexChars) {
  TraceContext ctx;
  ctx.trace_hi = 0x0123456789abcdefULL;
  ctx.trace_lo = 0x00000000000000ffULL;
  std::string id = ctx.trace_id();
  EXPECT_EQ(id, "0123456789abcdef00000000000000ff");
}

TEST(NextSpanId, NonZeroAndUnique) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t id = next_span_id();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second);
  }
}

TEST(CurrentTraceContext, PublishedWhileSpansAreOpenOnly) {
  EXPECT_FALSE(current_trace_context().valid());
  ManualClock clock;
  Tracer tracer(clock);
  {
    auto root = tracer.span("fetch");
    TraceContext at_root = current_trace_context();
    EXPECT_TRUE(at_root.valid());
    EXPECT_EQ(at_root.trace_hi, tracer.trace_hi());
    EXPECT_EQ(at_root.trace_lo, tracer.trace_lo());
    EXPECT_NE(at_root.parent_span, 0u);
    {
      auto child = tracer.span("resolve");
      TraceContext at_child = current_trace_context();
      EXPECT_EQ(at_child.trace_hi, at_root.trace_hi);
      EXPECT_EQ(at_child.trace_lo, at_root.trace_lo);
      // The innermost open span is now the propagated parent.
      EXPECT_NE(at_child.parent_span, at_root.parent_span);
    }
    EXPECT_EQ(current_trace_context().parent_span, at_root.parent_span);
  }
  EXPECT_FALSE(current_trace_context().valid());
}

TEST(CurrentTraceContext, FreshRootsGetDistinctTraceIds) {
  ManualClock clock;
  Tracer tracer(clock);
  std::uint64_t first_hi, first_lo;
  {
    auto span = tracer.span("a");
    first_hi = tracer.trace_hi();
    first_lo = tracer.trace_lo();
  }
  {
    auto span = tracer.span("b");
    EXPECT_TRUE(tracer.trace_hi() != first_hi || tracer.trace_lo() != first_lo);
  }
}

TEST(Tracer, AdoptJoinsTheCallersTrace) {
  ManualClock clock;
  TraceContext caller;
  caller.trace_hi = 7;
  caller.trace_lo = 9;
  caller.parent_span = 1234;

  Tracer tracer(clock);
  tracer.adopt(caller);
  {
    auto span = tracer.span("rpc:naming/1");
    EXPECT_EQ(tracer.trace_hi(), 7u);
    EXPECT_EQ(tracer.trace_lo(), 9u);
    TraceContext inner = current_trace_context();
    EXPECT_EQ(inner.trace_hi, 7u);
    EXPECT_EQ(inner.trace_lo, 9u);
    // The published parent is the server-side span, not the caller's.
    EXPECT_NE(inner.parent_span, 1234u);
  }
}

TEST(Tracer, AdoptedRootRestoresTheEnclosingContext) {
  // SimNet runs handlers inline: a server-side tracer opens its root while
  // the client's span is the thread's current context, and must restore it.
  ManualClock clock;
  Tracer client(clock);
  auto fetch = client.span("fetch");
  TraceContext client_ctx = current_trace_context();

  {
    Tracer server(clock);
    server.adopt(client_ctx);
    auto rpc = server.span("rpc:location/2");
    EXPECT_NE(current_trace_context().parent_span, client_ctx.parent_span);
  }
  TraceContext restored = current_trace_context();
  EXPECT_EQ(restored.trace_hi, client_ctx.trace_hi);
  EXPECT_EQ(restored.parent_span, client_ctx.parent_span);
  fetch.end();
  EXPECT_FALSE(current_trace_context().valid());
}

struct CapturingSink final : TraceSink {
  std::vector<TraceFragment> fragments;
  void record(TraceFragment fragment) override {
    fragments.push_back(std::move(fragment));
  }
};

TEST(Tracer, CompletedRootsReachTheSinkAsFragments) {
  ManualClock clock;
  CapturingSink sink;
  Tracer tracer(clock);
  tracer.set_sink(&sink);
  tracer.set_host("proxy");
  {
    auto span = tracer.span("fetch");
    clock.advance(millis(3));
  }
  ASSERT_EQ(sink.fragments.size(), 1u);
  const TraceFragment& f = sink.fragments[0];
  EXPECT_EQ(f.trace_hi, tracer.trace_hi());
  EXPECT_EQ(f.trace_lo, tracer.trace_lo());
  EXPECT_EQ(f.parent_span, 0u);  // a fresh root, not an adopted one
  EXPECT_TRUE(f.sampled);
  EXPECT_EQ(f.span.name, "fetch");
  EXPECT_EQ(f.span.host, "proxy");
  EXPECT_EQ(f.span.duration, millis(3));
  EXPECT_NE(f.span.span_id, 0u);
}

TEST(Tracer, AdoptedFragmentCarriesTheRemoteParent) {
  ManualClock clock;
  CapturingSink sink;
  TraceContext caller;
  caller.trace_hi = 11;
  caller.trace_lo = 22;
  caller.parent_span = 33;

  Tracer tracer(clock);
  tracer.set_sink(&sink);
  tracer.adopt(caller);
  { auto span = tracer.span("rpc:gd.access/1"); }
  ASSERT_EQ(sink.fragments.size(), 1u);
  EXPECT_EQ(sink.fragments[0].trace_hi, 11u);
  EXPECT_EQ(sink.fragments[0].trace_lo, 22u);
  EXPECT_EQ(sink.fragments[0].parent_span, 33u);
}

TEST(Tracer, UnsampledContextRecordsNothingDownstream) {
  ManualClock clock;
  CapturingSink sink;
  TraceContext caller;
  caller.trace_hi = 5;
  caller.trace_lo = 6;
  caller.parent_span = 7;
  caller.sampled = false;

  Tracer tracer(clock);
  tracer.set_sink(&sink);
  tracer.adopt(caller);
  { auto span = tracer.span("rpc:naming/1"); }
  EXPECT_TRUE(sink.fragments.empty());
}

}  // namespace
}  // namespace globe::obs
