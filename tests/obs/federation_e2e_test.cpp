// End-to-end telemetry-plane acceptance: a multi-node SimNet fleet scraped
// by a central aggregator, surfaced through /federate and /alertz, with a
// slow replica tripping the latency burn-rate alert and scrape RPCs
// visible in /tracez.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "http/parser.hpp"
#include "net/simnet.hpp"
#include "obs/admin.hpp"
#include "obs/collector.hpp"
#include "obs/slo.hpp"
#include "obs/telemetry.hpp"
#include "rpc/rpc.hpp"

namespace globe::obs {
namespace {

using http::HttpRequest;
using http::HttpResponse;
using util::seconds;

struct FederationFixture : ::testing::Test {
  struct FleetNode {
    std::string name;
    std::string role;
    MetricsRegistry registry;
    std::unique_ptr<TelemetryNode> telemetry;
    rpc::ServiceDispatcher dispatcher;
    net::HostId host;
    net::Endpoint endpoint;
  };

  FleetNode& add_node(const std::string& name, const std::string& role) {
    auto node = std::make_unique<FleetNode>();
    node->name = name;
    node->role = role;
    node->host = net.add_host({name, net::CpuModel{}});
    node->telemetry =
        std::make_unique<TelemetryNode>(node->registry, name, role);
    node->telemetry->register_with(node->dispatcher);
    node->dispatcher.set_trace_sink(&collector);
    node->endpoint = net::Endpoint{node->host, 9100};
    net.bind(node->endpoint, node->dispatcher.handler());
    agg->add_target({name, role, node->endpoint});
    fleet.push_back(std::move(node));
    return *fleet.back();
  }

  void SetUp() override {
    collector.set_policy({/*keep_slower_than=*/0, /*keep_one_in=*/1});
    TelemetryAggregator::Config config;
    config.trace_sink = &collector;
    agg = std::make_unique<TelemetryAggregator>(std::move(config));

    admin_host = net.add_host({"admin", net::CpuModel{}});
    client_host = net.add_host({"client", net::CpuModel{}});

    proxy = &add_node("proxy-1", "proxy");
    os1 = &add_node("os-1", "object-server");
    os2 = &add_node("os-2", "object-server");

    slo = std::make_unique<SloEvaluator>(*agg);
    SloSpec spec;
    spec.name = "fetch-latency";
    spec.type = SloSpec::Type::kLatency;
    spec.metric = "proxy.fetch_ms";
    spec.threshold_ms = 100;
    spec.objective = 0.9;
    spec.short_window = seconds(60);
    spec.long_window = seconds(300);
    spec.burn_threshold = 2.0;
    slo->add_spec(spec);

    AdminConfig admin_config;
    admin_config.service = "aggregator";
    admin_config.registry = &agg->self_registry();
    admin_config.collector = &collector;
    admin_config.aggregator = agg.get();
    admin_config.slo = slo.get();
    admin = std::make_unique<AdminHttpServer>(admin_config);
    admin_ep = net::Endpoint{admin_host, 9900};
    net.bind(admin_ep, admin->handler());

    flow = net.open_flow(admin_host);
    client = net.open_flow(client_host);
  }

  /// Simulated workload for one 10 s interval, then a scrape round.
  /// `slow_ms` is os-2's serving latency as observed by the proxy.
  void tick(double slow_ms) {
    for (int i = 0; i < 20; ++i) {
      proxy->registry.counter("proxy.fetches", {{"outcome", "ok"}}).inc();
      proxy->registry
          .histogram("proxy.fetch_ms", {10, 100, 1000}, {{"replica", "os-1"}})
          .observe(5);
      proxy->registry
          .histogram("proxy.fetch_ms", {10, 100, 1000}, {{"replica", "os-2"}})
          .observe(slow_ms);
      os1->registry.counter("object_server.requests").inc();
      os2->registry.counter("object_server.requests").inc();
    }
    ++ticks;
    flow->set_time(util::seconds(10) * ticks);
    agg->scrape_round(*flow);
  }

  HttpResponse get(const std::string& target) {
    HttpRequest req;
    req.method = "GET";
    req.target = target;
    client->set_time(flow->now());
    auto raw = client->call(admin_ep, req.serialize());
    EXPECT_TRUE(raw.is_ok()) << raw.status().to_string();
    auto resp = http::parse_response(*raw);
    EXPECT_TRUE(resp.is_ok()) << resp.status().to_string();
    return *resp;
  }

  static std::string body_of(const HttpResponse& resp) {
    return std::string(resp.body.begin(), resp.body.end());
  }

  net::SimNet net;
  TraceCollector collector{64};
  std::unique_ptr<TelemetryAggregator> agg;
  std::unique_ptr<SloEvaluator> slo;
  std::unique_ptr<AdminHttpServer> admin;
  std::vector<std::unique_ptr<FleetNode>> fleet;
  FleetNode* proxy = nullptr;
  FleetNode* os1 = nullptr;
  FleetNode* os2 = nullptr;
  net::HostId admin_host, client_host;
  net::Endpoint admin_ep;
  std::unique_ptr<net::SimFlow> flow, client;
  std::uint64_t ticks = 0;
};

TEST_F(FederationFixture, FederateServesMergedFleetView) {
  for (int i = 0; i < 3; ++i) tick(/*slow_ms=*/5);

  HttpResponse resp = get("/federate");
  EXPECT_EQ(resp.status, 200);
  std::string body = body_of(resp);

  // Node-health header: every target fresh.
  EXPECT_NE(body.find("# node os-1 role=object-server fresh"),
            std::string::npos);
  EXPECT_NE(body.find("# node os-2 role=object-server fresh"),
            std::string::npos);
  EXPECT_NE(body.find("# node proxy-1 role=proxy fresh"), std::string::npos);

  // Per-node series carry aggregator-stamped labels; the cluster aggregate
  // is the unlabeled sum (3 ticks x 20 requests x 2 servers).
  EXPECT_NE(body.find(
                "object_server.requests{node=os-1,role=object-server} 60"),
            std::string::npos);
  EXPECT_NE(body.find(
                "object_server.requests{node=os-2,role=object-server} 60"),
            std::string::npos);
  EXPECT_NE(body.find("object_server.requests 120"), std::string::npos);

  // Aggregator self-telemetry rides along.
  EXPECT_NE(body.find("telemetry.scrape_rounds"), std::string::npos);
  EXPECT_NE(body.find("telemetry.nodes_fresh"), std::string::npos);

  // Derived windowed series appear once the ring spans the window.
  EXPECT_NE(body.find("object_server.requests:rate1m"), std::string::npos);

  // Merged histogram totals equal the per-node sums.
  Snapshot merged = agg->merged();
  std::uint64_t per_replica = 0, cluster = 0;
  for (const MetricSample& s : merged.samples) {
    if (s.name != "proxy.fetch_ms") continue;
    bool has_node = false;
    for (const auto& [k, v] : s.labels) has_node |= k == "node";
    if (has_node) {
      per_replica += s.count;
    } else {
      cluster += s.count;
    }
  }
  EXPECT_EQ(per_replica, 120u);  // 3 ticks x 20 x 2 replica series
  EXPECT_EQ(cluster, 120u);      // replica label kept, node/role stripped
}

TEST_F(FederationFixture, MergedLabelSetsNameOnlyFleetMembers) {
  for (int i = 0; i < 2; ++i) tick(/*slow_ms=*/5);
  for (const MetricSample& s : agg->merged().samples) {
    for (const auto& [k, v] : s.labels) {
      if (k != "node") continue;
      EXPECT_TRUE(v == "proxy-1" || v == "os-1" || v == "os-2" ||
                  v == "aggregator")
          << s.name << " names unknown node " << v;
    }
  }
}

TEST_F(FederationFixture, SlowReplicaTripsLatencyAlertThenResolves) {
  // Healthy baseline.
  for (int i = 0; i < 7; ++i) tick(/*slow_ms=*/5);
  std::string body = body_of(get("/alertz"));
  EXPECT_EQ(body.find("firing"), std::string::npos);

  // os-2 turns slow: its replica-labeled series burns through the budget.
  for (int i = 0; i < 4; ++i) tick(/*slow_ms=*/500);
  body = body_of(get("/alertz"));
  EXPECT_NE(body.find("\"state\":\"firing\""), std::string::npos);
  EXPECT_NE(body.find("\"slo\":\"fetch-latency\""), std::string::npos);
  EXPECT_NE(body.find("\"replica\":\"os-2\""), std::string::npos);
  EXPECT_EQ(body.find("\"replica\":\"os-1\""), std::string::npos);

  // Recovery: the alert drains through pending to resolved, and the
  // incident stays listed as history.
  bool resolved = false;
  for (int i = 0; i < 45 && !resolved; ++i) {
    tick(/*slow_ms=*/5);
    body = body_of(get("/alertz"));
    resolved = body.find("\"state\":\"resolved\"") != std::string::npos &&
               body.find("\"state\":\"firing\"") == std::string::npos &&
               body.find("\"state\":\"pending\"") == std::string::npos;
  }
  EXPECT_TRUE(resolved) << body;
  EXPECT_NE(body.find("\"replica\":\"os-2\""), std::string::npos);
}

TEST_F(FederationFixture, ScrapeRpcsAreVisibleInTracez) {
  for (int i = 0; i < 2; ++i) tick(/*slow_ms=*/5);

  HttpResponse resp = get("/tracez");
  EXPECT_EQ(resp.status, 200);
  std::string body = body_of(resp);
  EXPECT_NE(body.find("telemetry.scrape_round"), std::string::npos);
  EXPECT_NE(body.find("scrape:os-1"), std::string::npos);
  // Server-side spans stitched under the aggregator's scrape spans.
  EXPECT_NE(body.find("rpc:telemetry/1"), std::string::npos);
}

TEST_F(FederationFixture, FederateReportsStaleNodeAfterLinkLoss) {
  tick(/*slow_ms=*/5);
  net.set_link_down(admin_host, os2->host, true);
  tick(/*slow_ms=*/5);

  std::string body = body_of(get("/federate"));
  EXPECT_NE(body.find("# node os-2 role=object-server stale"),
            std::string::npos);
  EXPECT_NE(body.find("failed=1"), std::string::npos);
  // The stale node's series are gone from the merged view; the healthy
  // object server's remain.
  EXPECT_EQ(body.find("object_server.requests{node=os-2"), std::string::npos);
  EXPECT_NE(body.find("object_server.requests{node=os-1"), std::string::npos);
  EXPECT_NE(body.find("telemetry.scrape_errors{node=os-2"), std::string::npos);

  net.set_link_down(admin_host, os2->host, false);
  tick(/*slow_ms=*/5);
  body = body_of(get("/federate"));
  EXPECT_NE(body.find("# node os-2 role=object-server fresh"),
            std::string::npos);
}

}  // namespace
}  // namespace globe::obs
