#include <gtest/gtest.h>

#include "replication/policy.hpp"
#include "replication/trace.hpp"

namespace globe::replication {
namespace {

TEST(TraceTest, RateAndDurationRespected) {
  TraceConfig config;
  config.documents = 5;
  config.regions = 3;
  config.duration = util::seconds(1000);
  config.accesses_per_second = 2.0;
  config.seed = 7;
  auto trace = generate_trace(config);
  // Poisson with rate 2/s over 1000s: ~2000 accesses.
  EXPECT_GT(trace.size(), 1700u);
  EXPECT_LT(trace.size(), 2300u);
  for (const auto& a : trace) {
    EXPECT_LT(a.time, config.duration);
    EXPECT_LT(a.document, config.documents);
    EXPECT_LT(a.region, config.regions);
  }
}

TEST(TraceTest, DeterministicForSeed) {
  TraceConfig config;
  config.seed = 42;
  config.duration = util::seconds(100);
  config.accesses_per_second = 5.0;
  auto a = generate_trace(config);
  auto b = generate_trace(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].document, b[i].document);
  }
}

TEST(TraceTest, ZipfMakesDocumentZeroHottest) {
  TraceConfig config;
  config.documents = 20;
  config.duration = util::seconds(2000);
  config.accesses_per_second = 5.0;
  config.doc_zipf_exponent = 1.0;
  auto trace = generate_trace(config);
  std::size_t doc0 = filter_document(trace, 0).size();
  std::size_t doc10 = filter_document(trace, 10).size();
  EXPECT_GT(doc0, doc10 * 2);
}

TEST(TraceTest, RegionWeightsBiasSampling) {
  TraceConfig config;
  config.regions = 2;
  config.region_weights = {9.0, 1.0};
  config.duration = util::seconds(1000);
  config.accesses_per_second = 3.0;
  auto trace = generate_trace(config);
  std::size_t r0 = 0;
  for (const auto& a : trace) {
    if (a.region == 0) ++r0;
  }
  double frac = static_cast<double>(r0) / static_cast<double>(trace.size());
  EXPECT_GT(frac, 0.85);
  EXPECT_LT(frac, 0.95);
}

TEST(TraceTest, BadConfigRejected) {
  TraceConfig config;
  config.documents = 0;
  EXPECT_THROW(generate_trace(config), std::invalid_argument);
  TraceConfig bad_weights;
  bad_weights.regions = 3;
  bad_weights.region_weights = {1.0};
  EXPECT_THROW(generate_trace(bad_weights), std::invalid_argument);
}

TEST(TraceTest, FlashCrowdSpikesHotDocumentInHotRegion) {
  TraceConfig base;
  base.documents = 4;
  base.regions = 3;
  base.duration = util::seconds(3000);
  base.accesses_per_second = 1.0;
  base.seed = 11;
  FlashCrowdConfig crowd;
  crowd.document = 2;
  crowd.hot_region = 1;
  crowd.start = util::seconds(1000);
  crowd.peak_multiplier = 40.0;

  auto quiet = generate_trace(base);
  auto flash = generate_flash_crowd(base, crowd);
  EXPECT_GT(flash.size(), quiet.size() + 1000);

  // The extra traffic lands on (doc 2, region 1) inside the crowd window.
  std::size_t hot_in_window = 0;
  for (const auto& a : flash) {
    if (a.document == 2 && a.region == 1 && a.time >= crowd.start &&
        a.time <= crowd.start + util::seconds(900)) {
      ++hot_in_window;
    }
  }
  EXPECT_GT(hot_in_window, 1000u);

  // Sorted by time.
  for (std::size_t i = 1; i < flash.size(); ++i) {
    EXPECT_LE(flash[i - 1].time, flash[i].time);
  }
}

TEST(TraceTest, UpdateSchedule) {
  auto updates = update_schedule(util::seconds(100), util::seconds(30));
  ASSERT_EQ(updates.size(), 3u);
  EXPECT_EQ(updates[0], util::seconds(30));
  EXPECT_EQ(updates[2], util::seconds(90));
  EXPECT_THROW(update_schedule(util::seconds(10), 0), std::invalid_argument);
}

// --- Policy evaluator ----------------------------------------------------

DocumentProfile uniform_profile(std::size_t n_accesses, std::size_t size,
                                std::uint32_t regions = 3) {
  DocumentProfile doc;
  doc.size_bytes = size;
  for (std::size_t i = 0; i < n_accesses; ++i) {
    doc.accesses.push_back(Access{util::seconds(i * 10),
                                  static_cast<std::uint32_t>(i % regions), 0});
  }
  return doc;
}

TEST(PolicyTest, NoReplicationAllWan) {
  auto doc = uniform_profile(100, 10'000);
  auto cost = evaluate_policy(PolicyKind::kNoReplication, doc, RegionModel{},
                              EvaluatorConfig{});
  EXPECT_EQ(cost.accesses, 100u);
  EXPECT_DOUBLE_EQ(cost.wan_bytes, 100.0 * 10'000);
  EXPECT_EQ(cost.stale_accesses, 0u);
  EXPECT_GT(cost.mean_latency_ms, 90.0);
}

TEST(PolicyTest, FullReplicationLocalLatencyButPushCost) {
  auto doc = uniform_profile(100, 10'000);
  doc.updates = update_schedule(util::seconds(1000), util::seconds(100));  // 9 updates
  EvaluatorConfig config;
  auto cost =
      evaluate_policy(PolicyKind::kFullReplication, doc, RegionModel{}, config);
  EXPECT_LT(cost.mean_latency_ms, 5.0);
  EXPECT_DOUBLE_EQ(cost.wan_bytes, 10.0 * 3 * 10'000);  // (9 updates + 1) × 3 regions
}

TEST(PolicyTest, TtlCacheBetweenExtremes) {
  auto doc = uniform_profile(300, 10'000);
  EvaluatorConfig config;
  config.cache_ttl = util::seconds(120);
  RegionModel region;
  auto none = evaluate_policy(PolicyKind::kNoReplication, doc, region, config);
  auto ttl = evaluate_policy(PolicyKind::kTtlCache, doc, region, config);
  EXPECT_LT(ttl.mean_latency_ms, none.mean_latency_ms);
  EXPECT_LT(ttl.wan_bytes, none.wan_bytes);
  EXPECT_GT(ttl.wan_bytes, 0.0);
}

TEST(PolicyTest, TtlCacheCountsStaleServes) {
  DocumentProfile doc;
  doc.size_bytes = 1000;
  // Access at t=0 fills the cache; update at t=10; accesses at t=20,30
  // served from the stale cache (TTL 100s).
  doc.accesses = {Access{0, 0, 0}, Access{util::seconds(20), 0, 0},
                  Access{util::seconds(30), 0, 0}};
  doc.updates = {util::seconds(10)};
  EvaluatorConfig config;
  config.cache_ttl = util::seconds(100);
  auto cost = evaluate_policy(PolicyKind::kTtlCache, doc, RegionModel{}, config);
  EXPECT_EQ(cost.stale_accesses, 2u);

  // Full replication (push on update) never serves stale.
  auto push = evaluate_policy(PolicyKind::kFullReplication, doc, RegionModel{}, config);
  EXPECT_EQ(push.stale_accesses, 0u);
}

TEST(PolicyTest, AdaptivePicksNoReplicationForColdVolatileDocs) {
  // Two accesses hours apart (every cache access misses) on a frequently
  // updated document (pushing replicas on every update is wasteful).
  DocumentProfile doc;
  doc.size_bytes = 1'000'000;
  doc.accesses = {Access{util::seconds(100), 0, 0},
                  Access{util::seconds(7200), 1, 0}};
  doc.updates = update_schedule(util::seconds(8000), util::seconds(100));
  auto best = select_best_policy(doc, RegionModel{}, EvaluatorConfig{},
                                 SelectionWeights{});
  EXPECT_EQ(best.kind, PolicyKind::kNoReplication);
}

TEST(PolicyTest, AdaptivePicksReplicationForHotStableDocs) {
  auto doc = uniform_profile(10'000, 50'000);  // hot, never updated
  auto best = select_best_policy(doc, RegionModel{}, EvaluatorConfig{},
                                 SelectionWeights{});
  EXPECT_EQ(best.kind, PolicyKind::kFullReplication);
}

TEST(PolicyTest, AdaptiveNeverWorseThanAnyFixedPolicy) {
  TraceConfig config;
  config.documents = 10;
  config.duration = util::seconds(2000);
  config.accesses_per_second = 3.0;
  config.seed = 99;
  auto trace = generate_trace(config);
  SelectionWeights weights;
  EvaluatorConfig evaluator;
  RegionModel region;

  for (std::uint32_t d = 0; d < config.documents; ++d) {
    DocumentProfile doc;
    doc.size_bytes = 5000 * (d + 1);
    doc.accesses = filter_document(trace, d);
    if (d % 2 == 0) {
      doc.updates = update_schedule(config.duration, util::seconds(200));
    }
    double best = select_best_policy(doc, region, evaluator, weights)
                      .weighted(weights.latency, weights.bandwidth, weights.staleness);
    for (auto kind : {PolicyKind::kNoReplication, PolicyKind::kTtlCache,
                      PolicyKind::kFullReplication}) {
      double fixed = evaluate_policy(kind, doc, region, evaluator)
                         .weighted(weights.latency, weights.bandwidth,
                                   weights.staleness);
      EXPECT_LE(best, fixed + 1e-9) << "doc " << d << " vs " << policy_name(kind);
    }
  }
}

TEST(PolicyTest, PolicyNamesDistinct) {
  EXPECT_STRNE(policy_name(PolicyKind::kNoReplication),
               policy_name(PolicyKind::kTtlCache));
  EXPECT_STRNE(policy_name(PolicyKind::kFullReplication),
               policy_name(PolicyKind::kAdaptive));
}

}  // namespace
}  // namespace globe::replication
