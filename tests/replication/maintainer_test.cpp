// Replica freshness maintenance: servers keep themselves current by
// pulling verified state before the certificate window closes.
#include "replication/maintainer.hpp"

#include <gtest/gtest.h>

#include "globedoc/proxy.hpp"
#include "tests/globedoc/world_fixture.hpp"

namespace globe::replication {
namespace {

using globe::globedoc::testing::WorldFixture;
using globedoc::ObjectServer;
using util::ErrorCode;

struct MaintainerFixture : WorldFixture {
  void SetUp() override {
    WorldFixture::SetUp();
    mirror = std::make_unique<ObjectServer>("mirror", 93);
    mirror->register_with(mirror_dispatcher);
    mirror_ep = net::Endpoint{client_host, 8800};
    net.bind(mirror_ep, mirror_dispatcher.handler());
    tick_flow = net.open_flow(client_host);

    // Seed the mirror by pulling the origin once.
    auto seeded = pull_replica(*tick_flow, server_ep, owner->object().oid(),
                               *mirror, 0);
    ASSERT_TRUE(seeded.is_ok());
    seed = *seeded;
  }

  globedoc::Oid oid() { return owner->object().oid(); }

  std::unique_ptr<ObjectServer> mirror;
  rpc::ServiceDispatcher mirror_dispatcher;
  net::Endpoint mirror_ep;
  std::unique_ptr<net::SimFlow> tick_flow;
  PullResult seed;
};

TEST_F(MaintainerFixture, NoRefreshWhileWindowIsWide) {
  ReplicaMaintainer maintainer(*mirror, *tick_flow);
  maintainer.track(oid(), {server_ep}, seed.version, seed.earliest_expiry);
  auto report = maintainer.tick(tick_flow->now());  // 3600s window, 300s margin
  EXPECT_EQ(report.checked, 1u);
  EXPECT_EQ(report.refreshed, 0u);
  EXPECT_EQ(report.failed, 0u);
}

TEST_F(MaintainerFixture, RefreshesNearExpiryAfterOwnerResign) {
  ReplicaMaintainer maintainer(*mirror, *tick_flow);
  maintainer.track(oid(), {server_ep}, seed.version, seed.earliest_expiry);

  // Move to 200s before the window closes; the owner has re-signed the
  // origin in the meantime.
  util::SimTime near_expiry = seed.earliest_expiry - util::seconds(200);
  publish_flow->set_time(near_expiry);
  ASSERT_TRUE(owner
                  ->refresh_replicas(*publish_flow, near_expiry,
                                     util::seconds(3600))
                  .is_ok());
  tick_flow->set_time(near_expiry);

  auto report = maintainer.tick(near_expiry);
  EXPECT_EQ(report.refreshed, 1u);
  EXPECT_EQ(report.failed, 0u);

  // The mirror now serves past the original expiry.
  util::SimTime past_old_window = seed.earliest_expiry + util::seconds(100);
  location::LocationClient locator(*tick_flow, tree->endpoint("site-client"));
  ASSERT_TRUE(locator.insert(tree->endpoint("site-client"), oid().view(), mirror_ep)
                  .is_ok());
  auto client = net.open_flow(client_host, past_old_window);
  globedoc::GlobeDocProxy proxy(*client, proxy_config());
  auto result = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
}

TEST_F(MaintainerFixture, FallsBackAcrossSources) {
  ReplicaMaintainer maintainer(*mirror, *tick_flow);
  net::Endpoint dead{infra_host, 9998};
  maintainer.track(oid(), {dead, server_ep}, seed.version, seed.earliest_expiry);

  util::SimTime near_expiry = seed.earliest_expiry - util::seconds(100);
  publish_flow->set_time(near_expiry);
  ASSERT_TRUE(owner
                  ->refresh_replicas(*publish_flow, near_expiry,
                                     util::seconds(3600))
                  .is_ok());
  tick_flow->set_time(near_expiry);
  auto report = maintainer.tick(near_expiry);
  EXPECT_EQ(report.refreshed, 1u);  // second source saved it
}

TEST_F(MaintainerFixture, AllSourcesDeadIsFailedNotFatal) {
  ReplicaMaintainer maintainer(*mirror, *tick_flow);
  net::Endpoint dead{infra_host, 9998};
  maintainer.track(oid(), {dead}, seed.version, seed.earliest_expiry);
  tick_flow->set_time(seed.earliest_expiry - util::seconds(10));
  auto report = maintainer.tick(tick_flow->now());
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(maintainer.tracked(), 1u);  // retried next tick, not dropped
}

TEST_F(MaintainerFixture, UntrackStopsMaintenance) {
  ReplicaMaintainer maintainer(*mirror, *tick_flow);
  maintainer.track(oid(), {server_ep}, seed.version, seed.earliest_expiry);
  maintainer.untrack(oid());
  EXPECT_EQ(maintainer.tracked(), 0u);
  EXPECT_EQ(maintainer.tick(tick_flow->now()).checked, 0u);
}

}  // namespace
}  // namespace globe::replication
