// Fleet consistency observatory end-to-end (DESIGN.md §16): epochs flow
// from signed state to replica reports, the auditor classifies fresh /
// stale / diverged per (replica, OID), forged or malformed reports die at
// the decode gate, and /replicaz renders the sanitized table.
#include "obs/consistency.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "http/parser.hpp"
#include "obs/admin.hpp"
#include "obs/log.hpp"
#include "obs/telemetry.hpp"
#include "replication/maintainer.hpp"
#include "replication/refresher.hpp"
#include "tests/globedoc/world_fixture.hpp"

namespace globe::replication {
namespace {

using globe::globedoc::testing::WorldFixture;
using globedoc::ObjectServer;
using globedoc::ReplicaState;
using obs::ConsistencyAuditor;
using obs::ReplicaConsistency;
using obs::ReplicaRow;
using util::ErrorCode;

struct AuditFixture : WorldFixture {
  void SetUp() override {
    WorldFixture::SetUp();

    // The master (WorldFixture's object server) reports consistency on its
    // existing service endpoint.
    master_telemetry = std::make_unique<obs::TelemetryNode>(
        master_registry, "master", "object-server");
    master_telemetry->set_consistency_source(
        [this] { return object_server->consistency_report(); });
    master_telemetry->register_with(server_dispatcher);

    // One honest replica on the client host, seeded by a verified pull.
    mirror = std::make_unique<ObjectServer>("mirror", 93, &mirror_registry);
    mirror->register_with(mirror_dispatcher);
    mirror_telemetry = std::make_unique<obs::TelemetryNode>(
        mirror_registry, "replica-1", "object-server");
    mirror_telemetry->set_consistency_source(
        [this] { return mirror->consistency_report(); });
    mirror_telemetry->register_with(mirror_dispatcher);
    mirror_ep = net::Endpoint{client_host, 8800};
    net.bind(mirror_ep, mirror_dispatcher.handler());

    tick_flow = net.open_flow(client_host);
    auto seeded = pull_replica(*tick_flow, server_ep, oid(), *mirror, 0);
    ASSERT_TRUE(seeded.is_ok()) << seeded.status().to_string();
    seed = *seeded;

    auditor = std::make_unique<ConsistencyAuditor>();
    auditor->set_master({"master", server_ep});
    auditor->add_replica({"replica-1", mirror_ep});
    audit_flow = net.open_flow(client_host);
  }

  globedoc::Oid oid() { return owner->object().oid(); }

  ReplicaRow row_for(const std::string& replica) {
    for (const ReplicaRow& row : auditor->rows()) {
      if (row.replica == replica) return row;
    }
    ADD_FAILURE() << "no row for " << replica;
    return {};
  }

  double checks(const std::string& replica, const char* state) {
    return auditor->self_registry()
        .counter("replication.audit.checks",
                 {{"replica", replica}, {"state", state}})
        .value();
  }

  obs::MetricsRegistry master_registry, mirror_registry;
  std::unique_ptr<obs::TelemetryNode> master_telemetry, mirror_telemetry;
  std::unique_ptr<ObjectServer> mirror;
  rpc::ServiceDispatcher mirror_dispatcher;
  net::Endpoint mirror_ep;
  std::unique_ptr<net::SimFlow> tick_flow, audit_flow;
  PullResult seed;
  std::unique_ptr<ConsistencyAuditor> auditor;
};

TEST_F(AuditFixture, SeededReplicaAuditsFresh) {
  auditor->audit_round(*audit_flow);
  ReplicaRow row = row_for("replica-1");
  EXPECT_EQ(row.state, ReplicaConsistency::kFresh);
  EXPECT_EQ(row.epoch, seed.version);
  EXPECT_EQ(row.master_epoch, seed.version);
  EXPECT_EQ(row.oid_hex, oid().to_hex());
  EXPECT_GT(row.expiry_horizon_s, 0);
  EXPECT_TRUE(auditor->converged());
  EXPECT_EQ(checks("replica-1", "fresh"), 1.0);
  EXPECT_EQ(auditor->self_registry()
                .gauge("replication.stale_replicas")
                .value(),
            0.0);
}

TEST_F(AuditFixture, LinkDownReplicaClassifiesStaleNotDivergedAndRecovers) {
  // The replica's upstream is dead: its maintainer cannot pull, the master
  // re-signs, and the replica falls behind — but its certificate window is
  // still open, so the auditor must call it STALE, never diverged.
  obs::MetricsRegistry maintainer_registry;
  ReplicaMaintainer::Config config;
  config.refresh_margin = util::seconds(10000);  // refresh on every tick
  config.registry = &maintainer_registry;
  ReplicaMaintainer maintainer(*mirror, *tick_flow, config);
  net::Endpoint dead{infra_host, 9998};
  maintainer.track(oid(), {dead}, seed.version, seed.earliest_expiry);

  util::SimTime bump = util::seconds(100);
  publish_flow->set_time(bump);
  ASSERT_TRUE(
      owner->refresh_replicas(*publish_flow, bump, util::seconds(3600)).is_ok());
  tick_flow->set_time(bump);
  auto report = maintainer.tick(tick_flow->now());
  EXPECT_EQ(report.failed, 1u);
  // Satellite: the failure is split by reason and leaves a traceable event.
  EXPECT_EQ(maintainer_registry
                .counter("replication.maintainer.failed",
                         {{"reason", "transport"}})
                .value(),
            1.0);
  bool logged = false;
  for (const obs::EventRecord& record : obs::global_event_log().recent(64)) {
    logged |= record.event == "refresh_failed" &&
              record.component == "replication";
  }
  EXPECT_TRUE(logged);

  audit_flow->set_time(bump);
  auditor->audit_round(*audit_flow);
  ReplicaRow stale = row_for("replica-1");
  EXPECT_EQ(stale.state, ReplicaConsistency::kStale);
  EXPECT_LT(stale.epoch, stale.master_epoch);
  EXPECT_FALSE(auditor->converged());
  EXPECT_EQ(auditor->self_registry()
                .gauge("replication.stale_replicas")
                .value(),
            1.0);

  // A later round measures how long the master has been ahead.
  audit_flow->set_time(bump + util::seconds(30));
  auditor->audit_round(*audit_flow);
  // ~30s minus one scrape round-trip of simulated link latency.
  EXPECT_GE(row_for("replica-1").staleness_ms, 29000.0);

  // Link restored: the next tick pulls the re-signed state and the fleet
  // converges back to fresh.
  maintainer.track(oid(), {server_ep}, seed.version, seed.earliest_expiry);
  tick_flow->set_time(bump + util::seconds(60));
  EXPECT_EQ(maintainer.tick(tick_flow->now()).refreshed, 1u);
  audit_flow->set_time(bump + util::seconds(60));
  auditor->audit_round(*audit_flow);
  EXPECT_EQ(row_for("replica-1").state, ReplicaConsistency::kFresh);
  EXPECT_TRUE(auditor->converged());
}

TEST_F(AuditFixture, MalformedReportRejectedAtDecodeGate) {
  // A hostile replica answers the consistency scrape with a claimed doc
  // count far past the cap.  The decode gate rejects it, the sender is
  // marked unreachable, scrape_errors increments, and the honest replica's
  // classification is untouched.
  rpc::ServiceDispatcher evil_dispatcher;
  evil_dispatcher.register_method(
      rpc::kTelemetryService, obs::kConsistency,
      [](net::ServerContext&, util::BytesView) {
        util::Writer w;
        w.str("evil");
        w.u8(obs::kConsistencyVersion);
        w.u32(1u << 20);  // 1M docs claimed, nothing attached
        return util::Result<util::Bytes>(w.take());
      });
  net::Endpoint evil_ep{infra_host, 6666};
  net.bind(evil_ep, evil_dispatcher.handler());
  auditor->add_replica({"evil", evil_ep});

  auditor->audit_round(*audit_flow);
  EXPECT_EQ(row_for("evil").state, ReplicaConsistency::kUnreachable);
  EXPECT_EQ(row_for("replica-1").state, ReplicaConsistency::kFresh);
  EXPECT_EQ(auditor->self_registry()
                .counter("telemetry.scrape_errors", {{"node", "evil"}})
                .value(),
            1.0);
  EXPECT_EQ(checks("evil", "unreachable"), 1.0);
}

TEST_F(AuditFixture, ForgedEpochCountedAndQuarantinedAsDiverged) {
  // A well-formed lie: valid wire shape, epoch far ahead of the signing
  // authority's.  It cannot be rejected structurally, so the auditor counts
  // it as forged and classifies the doc diverged — the lie never makes the
  // fleet look "ahead" or poisons the master's view.
  util::Bytes lied_oid = oid().to_bytes();
  rpc::ServiceDispatcher liar_dispatcher;
  liar_dispatcher.register_method(
      rpc::kTelemetryService, obs::kConsistency,
      [lied_oid](net::ServerContext&, util::BytesView) {
        obs::ConsistencyReport report;
        obs::DocConsistency d;
        d.oid = lied_oid;
        d.epoch = 1000;
        d.digest = util::Bytes(obs::kConsistencyDigestSize, 0xAB);
        d.earliest_expiry = util::seconds(100000);
        report.docs.push_back(std::move(d));
        util::Writer w;
        w.str("liar");
        obs::encode_consistency(w, report);
        return util::Result<util::Bytes>(w.take());
      });
  net::Endpoint liar_ep{infra_host, 6667};
  net.bind(liar_ep, liar_dispatcher.handler());
  auditor->add_replica({"liar", liar_ep});

  std::uint64_t master_before = 0;
  auditor->audit_round(*audit_flow);
  master_before = auditor->master_epoch_sum();
  ReplicaRow row = row_for("liar");
  EXPECT_EQ(row.state, ReplicaConsistency::kDiverged);
  EXPECT_GT(row.epoch, row.master_epoch);
  EXPECT_EQ(auditor->self_registry()
                .counter("replication.audit.forged", {{"replica", "liar"}})
                .value(),
            1.0);
  EXPECT_EQ(auditor->master_epoch_sum(), master_before);
  EXPECT_EQ(auditor->self_registry()
                .gauge("replication.diverged_replicas")
                .value(),
            1.0);
}

TEST_F(AuditFixture, TamperedElementSurfacesAsDivergedInReplicaz) {
  // Tamper with the mirror's stored bytes AFTER a verified install (the
  // paper's malicious-replica model): same certificate, same epoch, flipped
  // content.  The report digest is recomputed from stored state, so the
  // auditor sees a digest mismatch at an equal epoch — diverged.
  ReplicaState fresh_state = owner->sign_and_snapshot(0, util::seconds(3600));
  ReplicaState tampered = fresh_state;  // same certificate, same epoch
  ASSERT_FALSE(tampered.elements.empty());
  tampered.elements[0].content = util::to_bytes("tampered bytes");
  mirror->install_replica_unchecked(tampered);
  object_server->install_replica_unchecked(fresh_state);

  auditor->audit_round(*audit_flow);
  ReplicaRow row = row_for("replica-1");
  EXPECT_EQ(row.state, ReplicaConsistency::kDiverged);

  // And it surfaces on /replicaz, filterable to the diverged rows.
  obs::AdminConfig admin_config;
  admin_config.service = "auditor";
  admin_config.registry = &auditor->self_registry();
  admin_config.auditor = auditor.get();
  obs::AdminHttpServer admin(admin_config);
  net::Endpoint admin_ep{infra_host, 9900};
  net.bind(admin_ep, admin.handler());

  http::HttpRequest req;
  req.method = "GET";
  req.target = "/replicaz?state=diverged";
  auto raw = audit_flow->call(admin_ep, req.serialize());
  ASSERT_TRUE(raw.is_ok());
  auto resp = http::parse_response(*raw);
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp->status, 200);
  std::string body = util::to_string(resp->body);
  EXPECT_NE(body.find("replica-1"), std::string::npos);
  EXPECT_NE(body.find("state=diverged"), std::string::npos);
  EXPECT_NE(body.find(oid().to_hex()), std::string::npos);

  // Bad query: static 400, nothing reflected.
  req.target = "/replicaz?state=<script>alert(1)</script>";
  raw = audit_flow->call(admin_ep, req.serialize());
  ASSERT_TRUE(raw.is_ok());
  resp = http::parse_response(*raw);
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp->status, 400);
  EXPECT_EQ(util::to_string(resp->body).find("script"), std::string::npos);
}

TEST_F(AuditFixture, FreshnessProbeFlipsWhenInstallsStopArriving) {
  obs::AdminConfig admin_config;
  admin_config.service = "object-server";
  obs::AdminHttpServer admin(admin_config);
  object_server->register_freshness_probe(admin, util::seconds(300));
  net::Endpoint admin_ep{server_host, 9901};
  net.bind(admin_ep, admin.handler());

  http::HttpRequest req;
  req.method = "GET";
  req.target = "/healthz";
  auto probe = net.open_flow(client_host, util::seconds(60));
  auto raw = probe->call(admin_ep, req.serialize());
  ASSERT_TRUE(raw.is_ok());
  auto resp = http::parse_response(*raw);
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp->status, 200);

  // No refresh for far longer than the budget: the probe must flip.
  probe->set_time(util::seconds(5000));
  raw = probe->call(admin_ep, req.serialize());
  ASSERT_TRUE(raw.is_ok());
  resp = http::parse_response(*raw);
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp->status, 503);
  std::string body = util::to_string(resp->body);
  EXPECT_NE(body.find("replication-freshness"), std::string::npos);
  EXPECT_NE(body.find("replication stale"), std::string::npos);

  // A fresh install (a pull) resets the horizon.
  auto pull_flow = net.open_flow(server_host, util::seconds(5100));
  // Re-sign so the master itself absorbs a newer state.
  publish_flow->set_time(util::seconds(5100));
  ASSERT_TRUE(owner
                  ->refresh_replicas(*publish_flow, util::seconds(5100),
                                     util::seconds(3600))
                  .is_ok());
  (void)pull_flow;
  probe->set_time(util::seconds(5200));
  raw = probe->call(admin_ep, req.serialize());
  ASSERT_TRUE(raw.is_ok());
  resp = http::parse_response(*raw);
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp->status, 200);
}

}  // namespace
}  // namespace globe::replication
