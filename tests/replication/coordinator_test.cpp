#include "replication/coordinator.hpp"

#include <gtest/gtest.h>

#include "globedoc/proxy.hpp"
#include "tests/globedoc/world_fixture.hpp"

namespace globe::replication {
namespace {

using globe::globedoc::testing::WorldFixture;
using util::ErrorCode;

// Extends the shared world with a second object server near the client that
// the replicator can populate on demand.
struct ReplicatorFixture : WorldFixture {
  void SetUp() override {
    WorldFixture::SetUp();
    client_server = std::make_unique<globedoc::ObjectServer>("srv-client", 77);
    client_server->authorize(owner->credential_key());
    client_server->register_with(client_server_dispatcher);
    client_server_ep = net::Endpoint{client_host, 8000};
    net.bind(client_server_ep, client_server_dispatcher.handler());

    DynamicReplicator::Config config;
    config.replicate_above_rps = 5.0;
    config.retire_below_rps = 0.5;
    config.window = util::seconds(60);
    replicator = std::make_unique<DynamicReplicator>(
        *owner, *publish_flow,
        std::vector<DynamicReplicator::Region>{
            {"client-region", client_server_ep, tree->endpoint("site-client")}},
        config);
  }

  std::unique_ptr<globedoc::ObjectServer> client_server;
  rpc::ServiceDispatcher client_server_dispatcher;
  net::Endpoint client_server_ep;
  std::unique_ptr<DynamicReplicator> replicator;
};

TEST_F(ReplicatorFixture, QuietRegionStaysUnreplicated) {
  util::SimTime now = util::seconds(100);
  replicator->record_access("client-region", now);
  ASSERT_TRUE(replicator->rebalance(now).is_ok());
  EXPECT_FALSE(replicator->has_replica("client-region"));
  EXPECT_EQ(replicator->replica_count(), 0u);
}

TEST_F(ReplicatorFixture, HotRegionGetsReplica) {
  util::SimTime now = util::seconds(100);
  // 600 accesses in the 60s window: 10 rps > 5 rps threshold.
  for (int i = 0; i < 600; ++i) {
    replicator->record_access("client-region", now + static_cast<std::uint64_t>(i) *
                                                        util::millis(100));
  }
  util::SimTime end = now + util::seconds(60);
  ASSERT_TRUE(replicator->rebalance(end).is_ok());
  EXPECT_TRUE(replicator->has_replica("client-region"));
  EXPECT_TRUE(client_server->hosts(owner->object().oid()));

  // Clients at the site now resolve the local replica.
  globedoc::GlobeDocProxy proxy(*client_flow, proxy_config());
  auto result = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(result.is_ok());
  EXPECT_GE(client_server->elements_served(), 0u);
}

TEST_F(ReplicatorFixture, ColdRegionLosesReplica) {
  util::SimTime now = util::seconds(100);
  for (int i = 0; i < 600; ++i) {
    replicator->record_access("client-region", now + static_cast<std::uint64_t>(i) *
                                                        util::millis(100));
  }
  ASSERT_TRUE(replicator->rebalance(now + util::seconds(60)).is_ok());
  ASSERT_TRUE(replicator->has_replica("client-region"));

  // Hours later with no traffic: the window is empty, the replica retires.
  ASSERT_TRUE(replicator->rebalance(now + util::seconds(7200)).is_ok());
  EXPECT_FALSE(replicator->has_replica("client-region"));
  EXPECT_FALSE(client_server->hosts(owner->object().oid()));
}

TEST_F(ReplicatorFixture, RateComputation) {
  util::SimTime now = util::seconds(1000);
  for (int i = 0; i < 120; ++i) {
    replicator->record_access("client-region",
                              now + static_cast<std::uint64_t>(i) * util::millis(500));
  }
  // 120 accesses over the last 60s window.
  EXPECT_NEAR(replicator->rate("client-region", now + util::seconds(60)), 2.0, 0.3);
  EXPECT_DOUBLE_EQ(replicator->rate("unknown", now), 0.0);
}

TEST_F(ReplicatorFixture, UnknownRegionRejected) {
  EXPECT_THROW(replicator->record_access("mars", 0), std::invalid_argument);
}

}  // namespace
}  // namespace globe::replication
