// Peer-to-peer replica synchronization: pulling self-certifying state from
// untrusted peers is safe by construction.
#include "replication/refresher.hpp"

#include <gtest/gtest.h>

#include "globedoc/adversary.hpp"
#include "globedoc/proxy.hpp"
#include "tests/globedoc/world_fixture.hpp"

namespace globe::replication {
namespace {

using globe::globedoc::testing::WorldFixture;
using globedoc::ObjectServer;
using globedoc::Oid;
using util::ErrorCode;

struct RefresherFixture : WorldFixture {
  void SetUp() override {
    WorldFixture::SetUp();
    peer_server = std::make_unique<ObjectServer>("peer", 91);
    peer_server->register_with(peer_dispatcher);
    peer_ep = net::Endpoint{client_host, 8500};
    net.bind(peer_ep, peer_dispatcher.handler());
    pull_flow = net.open_flow(client_host);
  }

  Oid oid() { return owner->object().oid(); }

  std::unique_ptr<ObjectServer> peer_server;
  rpc::ServiceDispatcher peer_dispatcher;
  net::Endpoint peer_ep;
  std::unique_ptr<net::SimFlow> pull_flow;
};

TEST_F(RefresherFixture, PullsAndInstallsVerifiedState) {
  auto result = pull_replica(*pull_flow, server_ep, oid(), *peer_server, 0);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_TRUE(result->installed);
  EXPECT_EQ(result->version, 1u);
  EXPECT_EQ(result->elements, 3u);
  EXPECT_TRUE(peer_server->hosts(oid()));

  // The pulled replica serves clients end-to-end: register it and fetch.
  location::LocationClient locator(*pull_flow, tree->endpoint("site-client"));
  ASSERT_TRUE(locator.insert(tree->endpoint("site-client"), oid().view(), peer_ep)
                  .is_ok());
  globedoc::GlobeDocProxy proxy(*client_flow, proxy_config());
  auto fetched = proxy.fetch(object_name, "index.html");
  ASSERT_TRUE(fetched.is_ok());
}

TEST_F(RefresherFixture, RefusesStaleVersion) {
  auto first = pull_replica(*pull_flow, server_ep, oid(), *peer_server, 0);
  ASSERT_TRUE(first.is_ok());
  // Pulling again with local_version == peer version is a no-op error.
  auto again = pull_replica(*pull_flow, server_ep, oid(), *peer_server,
                            first->version);
  EXPECT_EQ(again.code(), ErrorCode::kInvalidArgument);
}

TEST_F(RefresherFixture, PullsNewerVersionAfterOwnerUpdate) {
  ASSERT_TRUE(pull_replica(*pull_flow, server_ep, oid(), *peer_server, 0).is_ok());
  owner->object().put_element(
      {"index.html", "text/html", util::to_bytes("<html>v2</html>")});
  ASSERT_TRUE(owner
                  ->refresh_replicas(*publish_flow, pull_flow->now(),
                                     util::seconds(3600))
                  .is_ok());
  auto result = pull_replica(*pull_flow, server_ep, oid(), *peer_server, 1);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->version, 2u);
}

TEST_F(RefresherFixture, TamperingPeerRejected) {
  net::Endpoint evil{server_host, 8600};
  net.bind(evil, globedoc::tampering_element_attack(server_dispatcher.handler()));
  auto result = pull_replica(*pull_flow, evil, oid(), *peer_server, 0);
  EXPECT_EQ(result.code(), ErrorCode::kHashMismatch);
  EXPECT_FALSE(peer_server->hosts(oid()));  // nothing corrupted was installed
}

TEST_F(RefresherFixture, CertificateForgingPeerRejected) {
  net::Endpoint evil{server_host, 8601};
  net.bind(evil, globedoc::certificate_forgery_attack(server_dispatcher.handler()));
  EXPECT_EQ(pull_replica(*pull_flow, evil, oid(), *peer_server, 0).code(),
            ErrorCode::kBadSignature);
}

TEST_F(RefresherFixture, KeySubstitutingPeerRejected) {
  auto attacker = globe::globedoc::testing::fixture_key(4242);
  net::Endpoint evil{server_host, 8602};
  net.bind(evil, globedoc::key_substitution_attack(server_dispatcher.handler(),
                                                   attacker.pub.serialize()));
  EXPECT_EQ(pull_replica(*pull_flow, evil, oid(), *peer_server, 0).code(),
            ErrorCode::kOidMismatch);
}

TEST_F(RefresherFixture, ExpiredPeerStateRejected) {
  pull_flow->advance(util::seconds(4000));  // past the 3600s validity
  EXPECT_EQ(pull_replica(*pull_flow, server_ep, oid(), *peer_server, 0).code(),
            ErrorCode::kExpired);
}

TEST_F(RefresherFixture, DeadPeerIsUnavailable) {
  net::Endpoint nowhere{server_host, 8603};
  EXPECT_EQ(pull_replica(*pull_flow, nowhere, oid(), *peer_server, 0).code(),
            ErrorCode::kUnavailable);
}

TEST_F(RefresherFixture, ChainedPullsBuildA_P2P_Cdn) {
  // origin -> peer1 -> peer2: state propagates through untrusted hops and
  // stays verifiable at the end of the chain.
  ASSERT_TRUE(pull_replica(*pull_flow, server_ep, oid(), *peer_server, 0).is_ok());

  ObjectServer peer2("peer2", 92);
  rpc::ServiceDispatcher d2;
  peer2.register_with(d2);
  net::Endpoint peer2_ep{infra_host, 8700};
  net.bind(peer2_ep, d2.handler());

  auto result = pull_replica(*pull_flow, peer_ep, oid(), peer2, 0);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_TRUE(peer2.hosts(oid()));

  // A client served by peer2 still verifies everything successfully.
  location::LocationClient locator(*pull_flow, tree->endpoint("site-client"));
  ASSERT_TRUE(
      locator.insert(tree->endpoint("site-client"), oid().view(), peer2_ep).is_ok());
  globedoc::GlobeDocProxy proxy(*client_flow, proxy_config());
  EXPECT_TRUE(proxy.fetch(object_name, "story.txt").is_ok());
}

}  // namespace
}  // namespace globe::replication
