// A lambda routed through a std::function parameter and invoked with no
// lock held: callback binding must not invent a hazard.
// CONC-EXPECT: clean
#include "_prelude.h"

class Runner19 {
 public:
  void run_cb(const std::function<void()>& cb) { cb(); }

  void go() {
    run_cb([this] {
      util::LockGuard g(mu_);
      ++n_;
    });
  }

 private:
  util::Mutex mu_;
  int n_ = 0;
};
