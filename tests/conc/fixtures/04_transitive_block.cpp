// Two-hop blocking leak: the lock holder calls a helper that calls another
// helper that finally hits the annotated blocking primitive.
// CONC-EXPECT: flag kind=block detail=test.Store4.mu_
#include "_prelude.h"

GLOBE_BLOCKING void rpc_round_trip();

void relay() { rpc_round_trip(); }

void shuttle() { relay(); }

class Store4 {
 public:
  void refresh() {
    util::LockGuard g(mu_);
    shuttle();  // blocks two hops down, with mu_ still held
  }

 private:
  util::Mutex mu_;
};
