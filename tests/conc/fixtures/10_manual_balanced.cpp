// Manual lock()/unlock() pairs are tracked like guards: the blocking call
// happens after the explicit unlock, so nothing is held.
// CONC-EXPECT: clean
#include "_prelude.h"

GLOBE_BLOCKING void push_upstream();

class Store10 {
 public:
  void flush() {
    mu_.lock();
    ++epoch_;
    mu_.unlock();
    push_upstream();
  }

 private:
  util::Mutex mu_;
  int epoch_ = 0;
};
