// GLOBE_REQUIRES(mu_) seeds the held set: a _locked helper that blocks is a
// finding even though no guard appears in its own body.
// CONC-EXPECT: flag kind=block detail=test.Store12.mu_
#include "_prelude.h"

GLOBE_BLOCKING void fetch_from_origin();

class Store12 {
 public:
  void fill_locked() GLOBE_REQUIRES(mu_) {
    fetch_from_origin();  // caller holds mu_ by contract
  }

 private:
  util::Mutex mu_;
};
