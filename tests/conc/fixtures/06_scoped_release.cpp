// Correct narrow critical section: the guard lives in an inner block and is
// released before the blocking call runs.
// CONC-EXPECT: clean
#include "_prelude.h"

GLOBE_BLOCKING void fetch_from_origin();

class Store6 {
 public:
  void fill() {
    {
      util::LockGuard g(mu_);
      ++pending_;
    }
    fetch_from_origin();  // lock already dropped
  }

 private:
  util::Mutex mu_;
  int pending_ = 0;
};
