// Two methods nest the same pair of locks in opposite orders: the inverted
// side violates the ranks, and the acquisition graph has a cycle.
// CONC-HIERARCHY: 10 test.Left16.mu_
// CONC-HIERARCHY: 20 test.Right16.mu_
// CONC-EXPECT: flag kind=order detail=test.Left16.mu_
// CONC-EXPECT: flag kind=cycle detail=test.Left16.mu_
#include "_prelude.h"

class Left16;

class Right16 {
 public:
  void poke() {
    util::LockGuard g(mu_);
    ++n_;
  }

  void backward(Left16& l);

 private:
  util::Mutex mu_;
  int n_ = 0;
};

class Left16 {
 public:
  void forward(Right16& r) {
    util::LockGuard g(mu_);
    r.poke();  // Left -> Right: legal, 10 before 20
  }

  void poke() {
    util::LockGuard g(mu_);
    ++n_;
  }

 private:
  util::Mutex mu_;
  int n_ = 0;
};

inline void Right16::backward(Left16& l) {
  util::LockGuard g(mu_);
  l.poke();  // Right -> Left: inverts the ranks and closes the cycle
}
