// Manually locked, then blocked before the unlock: the held-set tracking
// must not assume RAII.
// CONC-EXPECT: flag kind=block detail=test.Store11.mu_
#include "_prelude.h"

GLOBE_BLOCKING void push_upstream();

class Store11 {
 public:
  void flush() {
    mu_.lock();
    push_upstream();  // still holding mu_
    mu_.unlock();
  }

 private:
  util::Mutex mu_;
};
