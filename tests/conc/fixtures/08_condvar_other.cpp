// The exemption does NOT extend to other locks: waiting on cv_/mu_ while a
// second mutex stays held parks the thread with reg_mu_ locked.
// CONC-HIERARCHY: 10 test.Queue8.reg_mu_
// CONC-HIERARCHY: 20 test.Queue8.mu_
// CONC-EXPECT: flag kind=block detail=test.Queue8.reg_mu_
#include "_prelude.h"

class Queue8 {
 public:
  void drain_registered() {
    util::LockGuard reg(reg_mu_);
    util::UniqueLock lk(mu_);
    while (busy_ > 0) cv_.wait(lk);  // reg_mu_ held across the park
  }

 private:
  util::Mutex reg_mu_;
  util::Mutex mu_;
  util::CondVar cv_;
  int busy_ = 0;
};
