// An acquisition edge that touches a mutex missing from the hierarchy file
// is its own finding — new locks cannot silently join the graph.
// CONC-HIERARCHY: 10 test.Ranked15.mu_
// CONC-EXPECT: flag kind=unranked detail=test.Stray15.mu_
#include "_prelude.h"

class Stray15 {
 public:
  void poke() {
    util::LockGuard g(mu_);
    ++n_;
  }

 private:
  util::Mutex mu_;  // deliberately absent from the declared hierarchy
  int n_ = 0;
};

class Ranked15 {
 public:
  void drive() {
    util::LockGuard g(mu_);
    stray_.poke();
  }

 private:
  util::Mutex mu_;
  Stray15 stray_;
};
