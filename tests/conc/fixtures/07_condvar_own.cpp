// The modeled exemption: a condvar wait releases its OWN lock while parked,
// so waiting under that lock alone is not a finding.
// CONC-EXPECT: clean
#include "_prelude.h"

class Queue7 {
 public:
  void drain() {
    util::UniqueLock lk(mu_);
    while (busy_ > 0) cv_.wait(lk);
  }

 private:
  util::Mutex mu_;
  util::CondVar cv_;
  int busy_ = 0;
};
