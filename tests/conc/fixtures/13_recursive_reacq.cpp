// Re-acquiring a RecursiveMutex through a nested call is legal — no
// self-deadlock finding for the recursive kind.
// CONC-EXPECT: clean
#include "_prelude.h"

class Counter13 {
 public:
  void bump() {
    util::RecursiveLockGuard g(mu_);
    bump_locked();
  }

  void bump_locked() {
    util::RecursiveLockGuard g(mu_);
    ++n_;
  }

 private:
  util::RecursiveMutex mu_;
  int n_ = 0;
};
