// The simplest hazard: an annotated blocking call made directly under a
// LockGuard.
// CONC-EXPECT: flag kind=block detail=test.Store5.mu_
#include "_prelude.h"

GLOBE_BLOCKING void fetch_from_origin();

class Store5 {
 public:
  void fill() {
    util::LockGuard g(mu_);
    fetch_from_origin();
  }

 private:
  util::Mutex mu_;
};
