// A condvar wait is exempt for its own lock but still makes the waiting
// function a blocking primitive for its CALLERS: parking under someone
// else's lock is a finding at the call site.
// CONC-HIERARCHY: 10 test.Caller18.mu_
// CONC-HIERARCHY: 20 test.Parker18.mu_
// CONC-EXPECT: flag kind=block detail=test.Caller18.mu_
#include "_prelude.h"

class Parker18 {
 public:
  void wait_done() {
    util::UniqueLock lk(mu_);
    while (busy_ > 0) cv_.wait(lk);  // clean here: own lock only
  }

 private:
  util::Mutex mu_;
  util::CondVar cv_;
  int busy_ = 0;
};

class Caller18 {
 public:
  void drain() {
    util::LockGuard g(mu_);
    parker_.wait_done();  // parks with Caller18.mu_ held
  }

 private:
  util::Mutex mu_;
  Parker18 parker_;
};
