// Same two locks, nested against the declared ranks: inner held while the
// outer lock is acquired.
// CONC-HIERARCHY: 10 test.Outer2.mu_
// CONC-HIERARCHY: 20 test.Inner2.mu_
// CONC-EXPECT: flag kind=order detail=test.Outer2.mu_
#include "_prelude.h"

class Outer2 {
 public:
  void poke() {
    util::LockGuard g(mu_);
    ++n_;
  }

 private:
  util::Mutex mu_;
  int n_ = 0;
};

class Inner2 {
 public:
  void drive() {
    util::LockGuard g(mu_);
    outer_.poke();  // acquires rank 10 while holding rank 20
  }

 private:
  util::Mutex mu_;
  Outer2 outer_;
};
