// Blocking with nothing held is the normal case, not a finding.
// CONC-EXPECT: clean
#include "_prelude.h"

GLOBE_BLOCKING void rpc_round_trip();

class Client17 {
 public:
  void roundtrip() {
    rpc_round_trip();
    util::LockGuard g(mu_);
    ++done_;
  }

 private:
  util::Mutex mu_;
  int done_ = 0;
};
