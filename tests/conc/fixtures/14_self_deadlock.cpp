// Re-acquiring a plain Mutex through a nested call self-deadlocks.
// CONC-EXPECT: flag kind=deadlock detail=test.Counter14.mu_
#include "_prelude.h"

class Counter14 {
 public:
  void bump() {
    util::LockGuard g(mu_);
    bump_again();
  }

  void bump_again() {
    util::LockGuard g(mu_);  // same non-recursive mutex, already held
    ++n_;
  }

 private:
  util::Mutex mu_;
  int n_ = 0;
};
