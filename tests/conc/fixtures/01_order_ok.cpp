// Two ranked locks acquired outer-before-inner: respects the hierarchy.
// CONC-HIERARCHY: 10 test.Outer.mu_
// CONC-HIERARCHY: 20 test.Inner.mu_
// CONC-EXPECT: clean
#include "_prelude.h"

class Inner {
 public:
  void poke() {
    util::LockGuard g(mu_);
    ++n_;
  }

 private:
  util::Mutex mu_;
  int n_ = 0;
};

class Outer {
 public:
  void drive() {
    util::LockGuard g(mu_);
    inner_.poke();
  }

 private:
  util::Mutex mu_;
  Inner inner_;
};
