// The violating acquisition happens one call away: f holds A.mu_ and calls
// into B, whose method takes B.mu_ — and the declared ranks say B is outer.
// CONC-HIERARCHY: 10 test.B3.mu_
// CONC-HIERARCHY: 20 test.A3.mu_
// CONC-EXPECT: flag kind=order detail=test.B3.mu_
#include "_prelude.h"

class B3 {
 public:
  void record() {
    util::LockGuard g(mu_);
    ++hits_;
  }

 private:
  util::Mutex mu_;
  int hits_ = 0;
};

class A3 {
 public:
  void serve() {
    util::LockGuard g(mu_);
    sink_.record();  // interprocedural: B3.mu_ acquired while A3.mu_ held
  }

 private:
  util::Mutex mu_;
  B3 sink_;
};
