// Compilable stand-ins for the util threading vocabulary, so the clang
// frontend of tools/conc_check.py can parse each fixture as a standalone TU
// without dragging in the real tree.  The lite frontend never reads this
// file — it analyzes the fixture text alone — so anything the analysis must
// see (mutex members, GLOBE_BLOCKING on fixture functions, lock sites) lives
// in the fixture itself; this header only makes those tokens parse.
#pragma once

#if defined(__clang__)
#define GLOBE_BLOCKING [[clang::annotate("globe::blocking")]]
#else
#define GLOBE_BLOCKING
#endif
#define GLOBE_REQUIRES(...)
#define GLOBE_EXCLUDES(...)
#define GLOBE_GUARDED_BY(...)
#define GLOBE_PT_GUARDED_BY(...)

namespace util {

class Mutex {
 public:
  void lock();
  void unlock();
  bool try_lock();
};

class RecursiveMutex {
 public:
  void lock();
  void unlock();
};

class LockGuard {
 public:
  explicit LockGuard(Mutex& m);
  ~LockGuard();
};

class RecursiveLockGuard {
 public:
  explicit RecursiveLockGuard(RecursiveMutex& m);
  ~RecursiveLockGuard();
};

class UniqueLock {
 public:
  explicit UniqueLock(Mutex& m);
  ~UniqueLock();
};

class CondVar {
 public:
  GLOBE_BLOCKING void wait(UniqueLock& lock);
  void notify_one();
  void notify_all();
};

void sleep_for(int ms);

}  // namespace util

namespace std {
template <class T>
class function;
template <class R, class... A>
class function<R(A...)> {
 public:
  function() = default;
  template <class F>
  function(F) {}  // NOLINT(google-explicit-constructor)
  R operator()(A... a) const;
  explicit operator bool() const;
};
}  // namespace std
