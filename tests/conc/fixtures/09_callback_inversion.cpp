// Order inversion smuggled through a callback: the listener is registered
// from Owner9, Emitter9 fires it under its own lock, and the listener then
// takes Owner9's lock — against the declared ranks.
// CONC-HIERARCHY: 10 test.Owner9.mu_
// CONC-HIERARCHY: 20 test.Emitter9.mu_
// CONC-EXPECT: flag kind=order detail=test.Owner9.mu_
#include "_prelude.h"

class Emitter9 {
 public:
  void set_listener(const std::function<void()>& cb) { cb_ = cb; }

  void fire() {
    util::LockGuard g(mu_);
    cb_();  // runs the registered listener with mu_ held
  }

 private:
  util::Mutex mu_;
  std::function<void()> cb_;
};

class Owner9 {
 public:
  void attach(Emitter9& e) {
    e.set_listener([this] {
      util::LockGuard g(mu_);  // rank 10 acquired under rank 20
      ++events_;
    });
  }

 private:
  util::Mutex mu_;
  int events_ = 0;
};
