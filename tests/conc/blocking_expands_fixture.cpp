// Compile-SHOULD-FAIL fixture (under Clang): proves GLOBE_BLOCKING really
// expands to the [[clang::annotate("globe::blocking")]] attribute rather
// than silently to nothing.  An attribute is ill-formed in expression
// position, so if the macro expands this TU does not compile — which is
// what the conc lane asserts.  If it ever compiles under Clang, the macro
// has gone vacuous and every GLOBE_BLOCKING annotation in src/ is dead:
// conc_check's clang frontend would stop seeing the blocking surface.
//
// Under non-Clang compilers the macro is empty by design and this TU
// compiles; the check is only meaningful (and only wired up) for Clang.
#include "util/thread_annotations.hpp"

int probe = GLOBE_BLOCKING 1;
