// Secure publishing over REAL sockets: the identical protocol stack that
// the benchmarks run in simulation, here served over TCP on localhost —
// naming service, location tree, object server, owner tooling and the
// verifying proxy, end to end.
#include <chrono>
#include <cstdio>

#include "crypto/drbg.hpp"
#include "globedoc/owner.hpp"
#include "globedoc/proxy.hpp"
#include "globedoc/server.hpp"
#include "location/tree.hpp"
#include "naming/service.hpp"
#include "net/tcp.hpp"

using namespace globe;

namespace {

net::Endpoint port_ep(std::uint16_t port) { return net::Endpoint{net::HostId{0}, port}; }

}  // namespace

int main() {
  std::printf("== GlobeDoc over real TCP (localhost) ==\n\n");

  // --- Naming service.
  auto zone_rng = crypto::HmacDrbg::from_seed(31);
  auto zone_keys = crypto::rsa_generate(1024, zone_rng);
  auto root_zone = std::make_shared<naming::ZoneAuthority>("", zone_keys);
  naming::NamingServer naming_server;
  naming_server.add_zone(root_zone);
  rpc::ServiceDispatcher naming_dispatcher;
  naming_server.register_with(naming_dispatcher);
  net::TcpServer naming_tcp(0, naming_dispatcher.handler());
  std::printf("[infra] naming service listening on 127.0.0.1:%u\n",
              naming_tcp.port());

  // --- Location tree: a root and one site, each on its own port.
  location::LocationNode root_node("root", /*is_site=*/false);
  location::LocationNode site_node("site", /*is_site=*/true);
  rpc::ServiceDispatcher root_dispatcher, site_dispatcher;
  root_node.register_with(root_dispatcher);
  site_node.register_with(site_dispatcher);
  net::TcpServer root_tcp(0, root_dispatcher.handler());
  net::TcpServer site_tcp(0, site_dispatcher.handler());
  root_node.add_child("site", port_ep(site_tcp.port()));
  site_node.set_parent(port_ep(root_tcp.port()));
  std::printf("[infra] location root on :%u, site on :%u\n", root_tcp.port(),
              site_tcp.port());

  // --- Object server.
  auto cred_rng = crypto::HmacDrbg::from_seed(32);
  auto credentials = crypto::rsa_generate(1024, cred_rng);
  globedoc::ObjectServer object_server("tcp-replica-host", 33);
  object_server.authorize(credentials.pub);
  rpc::ServiceDispatcher object_dispatcher;
  object_server.register_with(object_dispatcher);
  net::TcpServer object_tcp(0, object_dispatcher.handler());
  std::printf("[infra] object server listening on 127.0.0.1:%u\n\n",
              object_tcp.port());

  // --- Owner: create, sign, register, publish.
  auto object_rng = crypto::HmacDrbg::from_seed(34);
  auto object = globedoc::GlobeDocObject::create(object_rng, 1024);
  object.put_element({"index.html", "text/html",
                      util::to_bytes("<html><body>served over real TCP"
                                     "</body></html>")});
  object.put_element({"data.bin", "application/octet-stream",
                      util::Bytes(100 * 1024, 0x5a)});
  globedoc::ObjectOwner owner(std::move(object), credentials);
  owner.register_name(*root_zone, "tcp-demo.vu.nl", util::RealClock().now() +
                                                       util::seconds(3600));
  std::printf("[owner] OID = %s\n", owner.object().oid().to_hex().c_str());

  net::TcpTransport owner_transport;
  auto state = owner.sign_and_snapshot(util::RealClock().now(), util::seconds(3600));
  auto published = owner.publish_replica(owner_transport, port_ep(object_tcp.port()),
                                         port_ep(site_tcp.port()), state);
  if (!published.is_ok()) {
    std::fprintf(stderr, "publish failed: %s\n", published.to_string().c_str());
    return 1;
  }
  std::printf("[owner] replica published over the authenticated admin channel\n\n");

  // --- Client proxy over its own TCP transport.
  net::TcpTransport client_transport;
  globedoc::ProxyConfig config;
  config.naming_root = port_ep(naming_tcp.port());
  config.naming_anchor = zone_keys.pub;
  config.location_site = port_ep(site_tcp.port());
  config.cache_bindings = true;
  globedoc::GlobeDocProxy proxy(client_transport, config);

  for (const char* element : {"index.html", "data.bin", "index.html"}) {
    auto wall_start = std::chrono::steady_clock::now();
    auto result = proxy.fetch("tcp-demo.vu.nl", element);
    auto wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
    if (!result.is_ok()) {
      std::fprintf(stderr, "fetch failed: %s\n",
                   result.status().to_string().c_str());
      return 1;
    }
    std::printf("[proxy] %-10s -> %6zu bytes, verified, %.2f ms wall clock%s\n",
                element, result->element.content.size(), wall_ms,
                result->metrics.used_cached_binding ? " (cached binding)" : "");
  }

  std::printf("\nSame code, real sockets: the Transport abstraction is the only\n"
              "difference between this process and the simulated benchmarks.\n");
  return 0;
}
