// Policy advisor: the per-document replication selection of Pierre et al.
// (paper ref [13]) as a site-administration tool — feed it your site's
// access trace and it recommends a replication policy per document.
#include <cmath>
#include <cstdio>

#include "replication/policy.hpp"
#include "replication/trace.hpp"

using namespace globe;
using namespace globe::replication;

int main() {
  std::printf("== GlobeDoc replication policy advisor ==\n\n");

  // Synthesize a week of traffic for a small site: a hot landing page, a
  // news ticker, a big static archive, and a cold legal page.
  struct Doc {
    const char* name;
    std::size_t size;
    double popularity;                 // share of site traffic
    util::SimDuration update_interval; // 0 = static
  };
  const Doc site[] = {
      {"index.html", 40'000, 0.65, 0},
      {"ticker.html", 8'000, 0.25, util::seconds(60)},
      {"archive.tar", 5'000'000, 0.02, 0},
      {"legal.html", 30'000, 0.001, util::seconds(600)},
  };

  const util::SimDuration kWeek = util::seconds(7 * 24 * 3600);
  RegionModel region;
  EvaluatorConfig evaluator;
  // A bandwidth-conscious site: WAN bytes are billed, so pushing a 5 MB
  // archive to every region on every update has to pay for itself.
  SelectionWeights weights;
  weights.bandwidth = 0.01;

  std::printf("%-14s %9s %9s %9s | %-16s %s\n", "document", "accesses", "size_kb",
              "updates", "recommended", "why");
  std::printf("%s\n", std::string(86, '-').c_str());

  util::SplitMix64 rng(7);
  for (const Doc& doc : site) {
    DocumentProfile profile;
    profile.size_bytes = doc.size;
    // Poisson-ish accesses proportional to popularity (a small site doing
    // ~0.02 req/s overall).
    double rate = doc.popularity * 0.02;
    util::SimTime t = 0;
    while (true) {
      double u = rng.next_double();
      t += static_cast<util::SimTime>(-std::log(1 - u) / rate * 1e9);
      if (t >= kWeek) break;
      profile.accesses.push_back(
          Access{t, static_cast<std::uint32_t>(rng.below(3)), 0});
    }
    if (doc.update_interval != 0) {
      profile.updates = update_schedule(kWeek, doc.update_interval);
    }

    PolicyCost best = select_best_policy(profile, region, evaluator, weights);
    const char* why = "";
    switch (best.kind) {
      case PolicyKind::kFullReplication:
        why = "hot & rarely updated: push replicas everywhere";
        break;
      case PolicyKind::kTtlCache:
        why = "read-mostly with churn: regional caches suffice";
        break;
      case PolicyKind::kNoReplication:
        why = "too cold or too volatile to replicate";
        break;
      case PolicyKind::kAdaptive:
        break;
    }
    std::printf("%-14s %9zu %9zu %9zu | %-16s %s\n", doc.name,
                profile.accesses.size(), doc.size / 1000, profile.updates.size(),
                policy_name(best.kind), why);
  }

  std::printf(
      "\nGlobeDoc attaches the chosen policy to each object — no global\n"
      "one-size-fits-all decision needed (paper §2, ref [13]).\n");
  return 0;
}
