// Flash-crowd CDN: the paper's §1 motivation, live.
//
// A document served from Amsterdam becomes suddenly popular in Paris.  A
// DynamicReplicator watches per-region demand and pushes a replica onto an
// untrusted Paris object server the moment the rate crosses its threshold;
// clients keep verifying everything, so the untrusted replica adds no risk.
#include <cstdio>

#include "bench/paper_world.hpp"
#include "replication/coordinator.hpp"
#include "replication/trace.hpp"

using namespace globe;
using namespace globe::bench;

int main() {
  std::printf("== GlobeDoc flash-crowd CDN ==\n\n");

  PaperWorld world;
  world.add_object("story.vu.nl",
                   {globedoc::PageElement{"index.html", "text/html",
                                          synthetic_content(30 * 1024, 1)}});
  std::printf("[setup] story.vu.nl published on the Amsterdam origin\n");

  globedoc::ObjectServer paris_server("paris-replica-host", 21);
  paris_server.authorize(world.owner("story.vu.nl").credential_key());
  rpc::ServiceDispatcher paris_dispatcher;
  paris_server.register_with(paris_dispatcher);
  net::Endpoint paris_ep{world.topo.paris, 8000};
  world.topo.net.bind(paris_ep, paris_dispatcher.handler());
  std::printf("[setup] an (untrusted) object server stands by in Paris\n\n");

  auto owner_flow = world.topo.net.open_flow(world.topo.amsterdam_primary);
  replication::DynamicReplicator::Config config;
  config.replicate_above_rps = 2.0;
  config.retire_below_rps = 0.2;
  config.window = util::seconds(60);
  replication::DynamicReplicator replicator(
      world.owner("story.vu.nl"), *owner_flow,
      {{"paris", paris_ep, world.tree->endpoint("site-paris")}}, config);

  // Paris demand ramps up, holds, and dies down.
  replication::TraceConfig base;
  base.documents = 1;
  base.regions = 1;
  base.duration = util::seconds(900);
  base.accesses_per_second = 0.2;
  base.seed = 3;
  replication::FlashCrowdConfig crowd;
  crowd.start = util::seconds(180);
  crowd.ramp = util::seconds(60);
  crowd.hold = util::seconds(300);
  crowd.peak_multiplier = 40.0;
  auto trace = replication::generate_flash_crowd(base, crowd);

  bool had_replica = false;
  util::SimTime next_rebalance = 0;
  double window_ms = 0;
  std::size_t window_n = 0;
  util::SimTime window_start = 0;

  for (const auto& access : trace) {
    replicator.record_access("paris", access.time);
    if (access.time >= next_rebalance) {
      owner_flow->set_time(std::max(owner_flow->now(), access.time));
      if (!replicator.rebalance(access.time).is_ok()) return 1;
      next_rebalance = access.time + util::seconds(15);
      if (bool has = replicator.has_replica("paris"); has != had_replica) {
        std::printf("[t=%4.0fs] %s (paris rate %.1f req/s)\n",
                    util::to_seconds(access.time),
                    has ? ">>> replica CREATED in Paris"
                        : "<<< replica RETIRED from Paris",
                    replicator.rate("paris", access.time));
        had_replica = has;
      }
    }

    auto flow = world.topo.net.open_flow(world.topo.paris, access.time);
    globedoc::GlobeDocProxy proxy(*flow, world.proxy_config_for(world.topo.paris));
    auto result = proxy.fetch("story.vu.nl", "index.html");
    if (!result.is_ok()) {
      std::fprintf(stderr, "fetch failed: %s\n", result.status().to_string().c_str());
      return 1;
    }
    window_ms += util::to_millis(result->metrics.total_time);
    ++window_n;
    if (access.time - window_start >= util::seconds(60)) {
      std::printf("[t=%4.0fs] %5.1f req/s, mean secure-fetch latency %7.1f ms\n",
                  util::to_seconds(access.time), static_cast<double>(window_n) / 60.0,
                  window_ms / static_cast<double>(window_n));
      window_start = access.time;
      window_ms = 0;
      window_n = 0;
    }
  }

  // Let the window drain: if the replica is still up, it retires now.
  util::SimTime after = base.duration + util::seconds(120);
  owner_flow->set_time(std::max(owner_flow->now(), after));
  if (!replicator.rebalance(after).is_ok()) return 1;
  if (had_replica && !replicator.has_replica("paris")) {
    std::printf("[t=%4.0fs] <<< replica RETIRED from Paris (crowd is gone)\n",
                util::to_seconds(after));
  }

  std::printf(
      "\nEvery fetch — origin or replica — went through the full verification\n"
      "pipeline; placing a replica on an untrusted Paris host needed no trust\n"
      "decision at all, only capacity.\n");
  return 0;
}
