// Live telemetry plane: a per-node-instrumented GlobeDoc fleet (proxy,
// object server, naming server) scraped by a central TelemetryAggregator
// over SimNet RPC, watched by an SLO burn-rate evaluator and a consistency
// auditor, and surfaced on a real localhost HTTP socket (/metrics /healthz
// /tracez /federate /alertz /profilez /replicaz — see DESIGN.md §10-11,
// §15-16).
//
//   ./telemetry_demo [port]      # default 9090
//   curl -s localhost:9090/metrics        # the proxy node's local view
//   curl -s localhost:9090/federate       # merged fleet view + health
//   curl -s localhost:9090/alertz         # SLO burn-rate alerts (JSON)
//   curl -s 'localhost:9090/tracez?min_ms=1'
//   curl -s localhost:9090/profilez               # CPU cost, top stacks
//   curl -s 'localhost:9090/profilez?fmt=folded'  # flamegraph input
//   curl -s localhost:9090/replicaz               # per-OID fleet freshness
//   curl -s 'localhost:9090/replicaz?state=stale' # just the laggards
//
// The simulated world runs a short incident before the socket opens:
// seven healthy 10-second rounds of verified fetches (the owner re-signs
// each round, and two pull replicas os-2/os-3 track the master os-1), then
// the server<->client link degrades to 300 ms AND os-2's upstream goes
// dark.  Four more rounds push the per-replica proxy.fetch_ms series over
// its latency budget while os-2 falls epochs behind the master, so /alertz
// shows the fetch-latency alert firing against the slow replica AND the
// replication-staleness SLO burning, /federate shows the windowed
// :rate1m / :p99_5m series that caught it, and /replicaz shows os-2 stale
// (epochs behind, cert window still open) next to a fresh os-3.
//
// The AdminHttpServer handler is transport-agnostic (serialized request
// bytes in, serialized response bytes out), so the very same object that
// tests mount on a SimNet port here sits behind an accept loop speaking
// plain HTTP/1.1 to curl.  Serves until killed (SIGINT/SIGTERM exit 0).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "cache/tier.hpp"
#include "crypto/drbg.hpp"
#include "globedoc/owner.hpp"
#include "globedoc/proxy.hpp"
#include "globedoc/server.hpp"
#include "http/parser.hpp"
#include "location/builder.hpp"
#include "naming/service.hpp"
#include "net/simnet.hpp"
#include "obs/admin.hpp"
#include "obs/collector.hpp"
#include "obs/consistency.hpp"
#include "obs/log.hpp"
#include "obs/slo.hpp"
#include "obs/telemetry.hpp"
#include "replication/maintainer.hpp"
#include "replication/refresher.hpp"

using namespace globe;

namespace {

// Presents a SimFlow (a client-side Transport) as the ServerContext the
// admin handler needs: health probes issued while serving a live request
// travel over the simulated network like any proxy RPC would.
class DemoContext final : public net::ServerContext {
 public:
  explicit DemoContext(net::SimFlow& flow) : flow_(flow) {}
  util::SimTime now() const override { return flow_.now(); }
  void charge(net::CpuOp op, std::uint64_t amount) override {
    flow_.charge(op, amount);
  }
  net::HostId local_host() const override { return flow_.local_host(); }
  net::Transport& transport() override { return flow_; }

 private:
  net::SimFlow& flow_;
};

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

// One connection: frame request bytes off the socket, serve, reply, close.
void serve_connection(int fd, obs::AdminHttpServer& admin, DemoContext& ctx) {
  http::MessageFramer framer;
  framer.set_max_message(64 * 1024);  // admin requests are tiny
  char buf[4096];
  auto handler = admin.handler();
  while (!framer.has_message()) {
    ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) return;  // peer went away or sent garbage past the cap
    if (!framer.feed(util::BytesView(reinterpret_cast<std::uint8_t*>(buf),
                                     static_cast<std::size_t>(n)))
             .is_ok()) {
      static const char kBad[] =
          "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n";
      (void)!::write(fd, kBad, sizeof kBad - 1);
      return;
    }
  }
  auto message = framer.take_message();
  auto response = handler(ctx, message);  // parse failures become 400 inside
  if (!response.is_ok()) return;
  std::size_t off = 0;
  while (off < response->size()) {
    ssize_t n = ::write(fd, response->data() + off, response->size() - off);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 9090;
  if (argc > 1) port = static_cast<std::uint16_t>(std::atoi(argv[1]));

  // --- The simulated world: infra + client host, one published document.
  net::SimNet net;
  auto server_host = net.add_host({"server.vu.nl", net::CpuModel{}});
  auto client_host = net.add_host({"client.example", net::CpuModel{}});
  net.set_link(server_host, client_host, {util::millis(15), 1.0e6});

  // Each role owns a registry so the telemetry plane can scrape and label
  // it individually (node=, role= stamped by its TelemetryNode).  The proxy
  // additionally owns a cost-profile registry (DESIGN.md §15): every fetch
  // charges CPU probes into it, /profilez renders it, and scrapes fold it
  // into the metrics registry as profile.* counters.
  obs::MetricsRegistry naming_registry, server_registry, proxy_registry;
  obs::ProfileRegistry proxy_profile;

  auto zone_rng = crypto::HmacDrbg::from_seed(1);
  auto zone_keys = crypto::rsa_generate(1024, zone_rng);
  auto root_zone = std::make_shared<naming::ZoneAuthority>("", zone_keys);
  rpc::ServiceDispatcher naming_dispatcher;
  naming::NamingServer naming_server(&naming_registry);
  naming_server.add_zone(root_zone);
  naming_server.register_with(naming_dispatcher);
  obs::TelemetryNode naming_telemetry(naming_registry, "ns-1", "naming");
  naming_telemetry.register_with(naming_dispatcher);
  net::Endpoint naming_ep{server_host, 53};
  net.bind(naming_ep, naming_dispatcher.handler());

  location::LocationTree tree(net, {
                                       {"root", "", server_host, 100, false},
                                       {"site-server", "root", server_host, 101, true},
                                       {"site-client", "root", client_host, 101, true},
                                   });

  auto cred_rng = crypto::HmacDrbg::from_seed(2);
  auto credentials = crypto::rsa_generate(1024, cred_rng);
  globedoc::ObjectServer object_server("replica-host-1", 3, &server_registry);
  object_server.authorize(credentials.pub);
  rpc::ServiceDispatcher server_dispatcher;
  object_server.register_with(server_dispatcher);
  obs::TelemetryNode server_telemetry(server_registry, "os-1",
                                      "object-server");
  server_telemetry.set_consistency_source(
      [&object_server] { return object_server.consistency_report(); });
  server_telemetry.register_with(server_dispatcher);
  net::Endpoint server_ep{server_host, 8000};
  net.bind(server_ep, server_dispatcher.handler());

  auto object_rng = crypto::HmacDrbg::from_seed(4);
  auto object = globedoc::GlobeDocObject::create(object_rng, 1024);
  object.put_element({"index.html", "text/html",
                      util::to_bytes("<html><body>telemetry demo</body></html>")});
  object.put_element({"logo.gif", "image/gif", util::Bytes(2048, 0x47)});
  globedoc::ObjectOwner owner(std::move(object), credentials);
  owner.register_name(*root_zone, "news.vu.nl", util::seconds(86400));
  auto owner_flow = net.open_flow(server_host);
  auto state = owner.sign_and_snapshot(owner_flow->now(), util::seconds(3600));
  auto published = owner.publish_replica(*owner_flow, server_ep,
                                         tree.endpoint("site-server"), state);
  if (!published.is_ok()) {
    std::fprintf(stderr, "publish failed: %s\n", published.to_string().c_str());
    return 1;
  }

  // --- Two pull replicas tracking the master os-1 (DESIGN.md §16): os-3
  // stays healthy, os-2 loses its upstream mid-incident and goes stale.
  globedoc::Oid doc_oid = owner.object().oid();
  obs::MetricsRegistry os2_registry, os3_registry;
  globedoc::ObjectServer os2("replica-host-2", 5, &os2_registry);
  globedoc::ObjectServer os3("replica-host-3", 6, &os3_registry);
  rpc::ServiceDispatcher os2_dispatcher, os3_dispatcher;
  os2.register_with(os2_dispatcher);
  os3.register_with(os3_dispatcher);
  obs::TelemetryNode os2_telemetry(os2_registry, "os-2", "object-server");
  os2_telemetry.set_consistency_source(
      [&os2] { return os2.consistency_report(); });
  os2_telemetry.register_with(os2_dispatcher);
  obs::TelemetryNode os3_telemetry(os3_registry, "os-3", "object-server");
  os3_telemetry.set_consistency_source(
      [&os3] { return os3.consistency_report(); });
  os3_telemetry.register_with(os3_dispatcher);
  net::Endpoint os2_ep{server_host, 8001};
  net::Endpoint os3_ep{server_host, 8002};
  net.bind(os2_ep, os2_dispatcher.handler());
  net.bind(os3_ep, os3_dispatcher.handler());

  auto os2_flow = net.open_flow(server_host);
  auto os3_flow = net.open_flow(server_host);
  auto os2_seed = replication::pull_replica(*os2_flow, server_ep, doc_oid, os2, 0);
  auto os3_seed = replication::pull_replica(*os3_flow, server_ep, doc_oid, os3, 0);
  if (!os2_seed.is_ok() || !os3_seed.is_ok()) {
    std::fprintf(stderr, "replica seed pull failed\n");
    return 1;
  }
  replication::ReplicaMaintainer::Config maintainer_config;
  maintainer_config.refresh_margin = util::seconds(100000);  // re-pull each tick
  replication::ReplicaMaintainer os2_maintainer(os2, *os2_flow, maintainer_config);
  replication::ReplicaMaintainer os3_maintainer(os3, *os3_flow, maintainer_config);
  os2_maintainer.track(doc_oid, {server_ep}, os2_seed->version,
                       os2_seed->earliest_expiry);
  os3_maintainer.track(doc_oid, {server_ep}, os3_seed->version,
                       os3_seed->earliest_expiry);

  // --- The consistency auditor: cross-checks every replica's reported
  // (epoch, digest, expiry) against the master's each round; its registry
  // is a scrape target so the staleness SLO below sees the audit verdicts.
  obs::MetricsRegistry auditor_registry;
  obs::ConsistencyAuditor::Config auditor_config;
  auditor_config.self_registry = &auditor_registry;
  obs::ConsistencyAuditor auditor(auditor_config);
  auditor.set_master({"os-1", server_ep});
  auditor.add_replica({"os-2", os2_ep});
  auditor.add_replica({"os-3", os3_ep});
  auto audit_flow = net.open_flow(client_host);

  // --- The verifying proxy, itself a scrapable fleet member.
  obs::global_trace_collector().set_policy(
      {/*keep_slower_than=*/0, /*keep_one_in=*/1});
  auto client_flow = net.open_flow(client_host);
  // The node's verified edge cache (DESIGN.md §12): after the first round
  // fills it, repeat fetches serve locally and cache.{hits,misses,...} ride
  // the same registry into /metrics and the fleet-wide /federate view.
  // Fetch latency stays binding-dominated (naming + cert round trips), so
  // the degraded-link SLO story below still plays out.
  cache::TierConfig tier_config;
  tier_config.registry = &proxy_registry;
  cache::EdgeCacheTier edge_cache(tier_config);
  globedoc::ProxyConfig config;
  config.naming_root = naming_ep;
  config.naming_anchor = zone_keys.pub;
  config.location_site = tree.endpoint("site-client");
  config.registry = &proxy_registry;
  config.edge_cache = &edge_cache;
  config.profile = &proxy_profile;
  globedoc::GlobeDocProxy proxy(*client_flow, config);
  rpc::ServiceDispatcher proxy_dispatcher;
  obs::TelemetryNode proxy_telemetry(proxy_registry, "proxy-1", "proxy",
                                     &proxy_profile);
  proxy_telemetry.register_with(proxy_dispatcher);
  net::Endpoint proxy_telemetry_ep{client_host, 9101};
  net.bind(proxy_telemetry_ep, proxy_dispatcher.handler());

  // --- The cluster plane: aggregator scraping all three nodes, and an SLO
  // on the per-replica fetch latency.  500 ms sits on a proxy.fetch_ms
  // bucket boundary; healthy fetches over the 15 ms link run ~170-260 ms
  // (crypto-dominated), degraded ones blow far past it.
  obs::TelemetryAggregator aggregator;
  aggregator.add_target({"proxy-1", "proxy", proxy_telemetry_ep});
  aggregator.add_target({"os-1", "object-server", server_ep});
  aggregator.add_target({"ns-1", "naming", naming_ep});
  // The auditor's own verdict series join the fleet view (and feed the
  // replication-staleness SLO) through an ordinary scrape target.
  obs::TelemetryNode auditor_telemetry(auditor_registry, "auditor", "auditor");
  rpc::ServiceDispatcher auditor_dispatcher;
  auditor_telemetry.register_with(auditor_dispatcher);
  net::Endpoint auditor_ep{client_host, 9102};
  net.bind(auditor_ep, auditor_dispatcher.handler());
  aggregator.add_target({"auditor", "auditor", auditor_ep});

  obs::SloEvaluator slo(aggregator);
  obs::SloSpec latency;
  latency.name = "fetch-latency";
  latency.type = obs::SloSpec::Type::kLatency;
  latency.metric = "proxy.fetch_ms";
  latency.threshold_ms = 500;
  latency.objective = 0.9;
  latency.short_window = util::seconds(60);
  latency.long_window = util::seconds(300);
  latency.burn_threshold = 2.0;
  slo.add_spec(latency);

  // Staleness SLO (DESIGN.md §16): at least 95% of the auditor's per-round
  // replica checks must come back fresh.  With one of two replicas stuck,
  // the good fraction drops to ~50% and both burn windows blow past 2x.
  obs::SloSpec staleness;
  staleness.name = "replication-staleness";
  staleness.type = obs::SloSpec::Type::kAvailability;
  staleness.metric = "replication.audit.checks";
  staleness.good_labels = {{"state", "fresh"}};
  staleness.objective = 0.95;
  staleness.short_window = util::seconds(60);
  staleness.long_window = util::seconds(300);
  staleness.burn_threshold = 2.0;
  slo.add_spec(staleness);

  // One 10-second ops round: a couple of verified fetches, a scrape round,
  // an SLO evaluation.
  std::uint64_t round = 0;
  auto ops_round = [&]() -> bool {
    client_flow->set_time(util::seconds(10) * ++round);
    for (const char* element : {"index.html", "logo.gif"}) {
      auto result = proxy.fetch("news.vu.nl", element);
      if (!result.is_ok()) {
        std::fprintf(stderr, "fetch failed: %s\n",
                     result.status().to_string().c_str());
        return false;
      }
      std::printf(
          "[round %2llu] fetched %-10s -> %5zu bytes in %6.1f ms (virtual)\n",
          static_cast<unsigned long long>(round), element,
          result->element.content.size(),
          util::to_millis(result->metrics.total_time));
    }
    edge_cache.run_delayed_pulls(*client_flow);  // background sibling pulls
    // The epoch story: the owner re-signs (master moves to a new epoch),
    // the pull replicas refresh from it, then the auditor takes its round
    // — all before the scrape that carries the verdicts to the aggregator.
    util::SimTime t = client_flow->now();
    owner_flow->set_time(t);
    if (!owner.refresh_replicas(*owner_flow, t, util::seconds(3600)).is_ok()) {
      std::fprintf(stderr, "refresh_replicas failed\n");
      return false;
    }
    os2_flow->set_time(t + util::seconds(2));
    os3_flow->set_time(t + util::seconds(2));
    os2_maintainer.tick(os2_flow->now());
    os3_maintainer.tick(os3_flow->now());
    audit_flow->set_time(t + util::seconds(4));
    auditor.audit_round(*audit_flow);
    aggregator.scrape_round(*client_flow);
    slo.evaluate(client_flow->now());
    return true;
  };

  for (int i = 0; i < 7; ++i) {
    if (!ops_round()) return 1;
  }
  std::printf("[net] degrading server<->client link to 300 ms\n");
  net.set_link(server_host, client_host, {util::millis(300), 1.0e6});
  // os-2's upstream goes dark: its maintainer now pulls from a dead
  // endpoint, so the master keeps advancing epochs while os-2 stands
  // still — stale (cert window still open), never diverged.
  std::printf("[net] os-2 upstream lost: repointing its maintainer at a dead source\n");
  os2_maintainer.track(doc_oid, {net::Endpoint{server_host, 9999}}, 0, 0);
  for (int i = 0; i < 4; ++i) {
    if (!ops_round()) return 1;
  }
  for (const obs::AlertState& alert : slo.alerts()) {
    std::string labels;
    for (const auto& [k, v] : alert.labels) {
      labels += (labels.empty() ? "" : ",") + k + "=" + v;
    }
    std::printf("[slo] %s{%s} %s (burn short %.1f / long %.1f)\n",
                alert.slo.c_str(), labels.c_str(),
                obs::alert_state_name(alert.state), alert.burn_short,
                alert.burn_long);
  }

  // --- The admin surface over a real socket.  /metrics serves the proxy
  // node's local view; /federate and /alertz serve the cluster plane.
  obs::AdminConfig admin_config;
  admin_config.service = "telemetry-demo";  // collector/log: process globals
  admin_config.registry = &proxy_registry;
  admin_config.profile = &proxy_profile;
  admin_config.aggregator = &aggregator;
  admin_config.slo = &slo;
  admin_config.auditor = &auditor;
  obs::AdminHttpServer admin(admin_config);
  proxy.register_health_checks(admin);
  // Freshness probe on the master: unhealthy if no state installed within
  // the budget.  The owner re-signed 10s ago, so this reports ok.
  object_server.register_freshness_probe(admin, util::seconds(600));
  DemoContext ctx(*client_flow);

  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) { std::perror("socket"); return 1; }
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd, 16) < 0) {
    std::perror("bind/listen");
    return 1;
  }
  // sigaction without SA_RESTART: a signal must make the blocking accept()
  // fail with EINTR so the loop can notice g_stop (std::signal would
  // restart the syscall on glibc and the process would never exit).
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  std::signal(SIGPIPE, SIG_IGN);
  std::printf("[admin] serving on http://127.0.0.1:%u "
              "(/metrics /healthz /tracez /federate /alertz /profilez "
              "/replicaz)\n",
              port);
  std::fflush(stdout);

  while (!g_stop) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    serve_connection(fd, admin, ctx);
    ::close(fd);
  }
  ::close(listen_fd);
  std::printf("[admin] shut down\n");
  return 0;
}
