// Live telemetry plane: a per-node-instrumented GlobeDoc fleet (proxy,
// object server, naming server) scraped by a central TelemetryAggregator
// over SimNet RPC, watched by an SLO burn-rate evaluator, and surfaced on
// a real localhost HTTP socket (/metrics /healthz /tracez /federate
// /alertz /profilez — see DESIGN.md §10-11, §15).
//
//   ./telemetry_demo [port]      # default 9090
//   curl -s localhost:9090/metrics        # the proxy node's local view
//   curl -s localhost:9090/federate       # merged fleet view + health
//   curl -s localhost:9090/alertz         # SLO burn-rate alerts (JSON)
//   curl -s 'localhost:9090/tracez?min_ms=1'
//   curl -s localhost:9090/profilez               # CPU cost, top stacks
//   curl -s 'localhost:9090/profilez?fmt=folded'  # flamegraph input
//
// The simulated world runs a short incident before the socket opens:
// seven healthy 10-second rounds of verified fetches, then the
// server<->client link degrades to 300 ms and four more rounds push the
// per-replica proxy.fetch_ms series over its latency budget, so /alertz
// shows the fetch-latency alert firing against the slow replica and
// /federate shows the windowed :rate1m / :p99_5m series that caught it.
//
// The AdminHttpServer handler is transport-agnostic (serialized request
// bytes in, serialized response bytes out), so the very same object that
// tests mount on a SimNet port here sits behind an accept loop speaking
// plain HTTP/1.1 to curl.  Serves until killed (SIGINT/SIGTERM exit 0).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "cache/tier.hpp"
#include "crypto/drbg.hpp"
#include "globedoc/owner.hpp"
#include "globedoc/proxy.hpp"
#include "globedoc/server.hpp"
#include "http/parser.hpp"
#include "location/builder.hpp"
#include "naming/service.hpp"
#include "net/simnet.hpp"
#include "obs/admin.hpp"
#include "obs/collector.hpp"
#include "obs/log.hpp"
#include "obs/slo.hpp"
#include "obs/telemetry.hpp"

using namespace globe;

namespace {

// Presents a SimFlow (a client-side Transport) as the ServerContext the
// admin handler needs: health probes issued while serving a live request
// travel over the simulated network like any proxy RPC would.
class DemoContext final : public net::ServerContext {
 public:
  explicit DemoContext(net::SimFlow& flow) : flow_(flow) {}
  util::SimTime now() const override { return flow_.now(); }
  void charge(net::CpuOp op, std::uint64_t amount) override {
    flow_.charge(op, amount);
  }
  net::HostId local_host() const override { return flow_.local_host(); }
  net::Transport& transport() override { return flow_; }

 private:
  net::SimFlow& flow_;
};

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

// One connection: frame request bytes off the socket, serve, reply, close.
void serve_connection(int fd, obs::AdminHttpServer& admin, DemoContext& ctx) {
  http::MessageFramer framer;
  framer.set_max_message(64 * 1024);  // admin requests are tiny
  char buf[4096];
  auto handler = admin.handler();
  while (!framer.has_message()) {
    ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) return;  // peer went away or sent garbage past the cap
    if (!framer.feed(util::BytesView(reinterpret_cast<std::uint8_t*>(buf),
                                     static_cast<std::size_t>(n)))
             .is_ok()) {
      static const char kBad[] =
          "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n";
      (void)!::write(fd, kBad, sizeof kBad - 1);
      return;
    }
  }
  auto message = framer.take_message();
  auto response = handler(ctx, message);  // parse failures become 400 inside
  if (!response.is_ok()) return;
  std::size_t off = 0;
  while (off < response->size()) {
    ssize_t n = ::write(fd, response->data() + off, response->size() - off);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 9090;
  if (argc > 1) port = static_cast<std::uint16_t>(std::atoi(argv[1]));

  // --- The simulated world: infra + client host, one published document.
  net::SimNet net;
  auto server_host = net.add_host({"server.vu.nl", net::CpuModel{}});
  auto client_host = net.add_host({"client.example", net::CpuModel{}});
  net.set_link(server_host, client_host, {util::millis(15), 1.0e6});

  // Each role owns a registry so the telemetry plane can scrape and label
  // it individually (node=, role= stamped by its TelemetryNode).  The proxy
  // additionally owns a cost-profile registry (DESIGN.md §15): every fetch
  // charges CPU probes into it, /profilez renders it, and scrapes fold it
  // into the metrics registry as profile.* counters.
  obs::MetricsRegistry naming_registry, server_registry, proxy_registry;
  obs::ProfileRegistry proxy_profile;

  auto zone_rng = crypto::HmacDrbg::from_seed(1);
  auto zone_keys = crypto::rsa_generate(1024, zone_rng);
  auto root_zone = std::make_shared<naming::ZoneAuthority>("", zone_keys);
  rpc::ServiceDispatcher naming_dispatcher;
  naming::NamingServer naming_server(&naming_registry);
  naming_server.add_zone(root_zone);
  naming_server.register_with(naming_dispatcher);
  obs::TelemetryNode naming_telemetry(naming_registry, "ns-1", "naming");
  naming_telemetry.register_with(naming_dispatcher);
  net::Endpoint naming_ep{server_host, 53};
  net.bind(naming_ep, naming_dispatcher.handler());

  location::LocationTree tree(net, {
                                       {"root", "", server_host, 100, false},
                                       {"site-server", "root", server_host, 101, true},
                                       {"site-client", "root", client_host, 101, true},
                                   });

  auto cred_rng = crypto::HmacDrbg::from_seed(2);
  auto credentials = crypto::rsa_generate(1024, cred_rng);
  globedoc::ObjectServer object_server("replica-host-1", 3, &server_registry);
  object_server.authorize(credentials.pub);
  rpc::ServiceDispatcher server_dispatcher;
  object_server.register_with(server_dispatcher);
  obs::TelemetryNode server_telemetry(server_registry, "os-1",
                                      "object-server");
  server_telemetry.register_with(server_dispatcher);
  net::Endpoint server_ep{server_host, 8000};
  net.bind(server_ep, server_dispatcher.handler());

  auto object_rng = crypto::HmacDrbg::from_seed(4);
  auto object = globedoc::GlobeDocObject::create(object_rng, 1024);
  object.put_element({"index.html", "text/html",
                      util::to_bytes("<html><body>telemetry demo</body></html>")});
  object.put_element({"logo.gif", "image/gif", util::Bytes(2048, 0x47)});
  globedoc::ObjectOwner owner(std::move(object), credentials);
  owner.register_name(*root_zone, "news.vu.nl", util::seconds(86400));
  auto owner_flow = net.open_flow(server_host);
  auto state = owner.sign_and_snapshot(owner_flow->now(), util::seconds(3600));
  auto published = owner.publish_replica(*owner_flow, server_ep,
                                         tree.endpoint("site-server"), state);
  if (!published.is_ok()) {
    std::fprintf(stderr, "publish failed: %s\n", published.to_string().c_str());
    return 1;
  }

  // --- The verifying proxy, itself a scrapable fleet member.
  obs::global_trace_collector().set_policy(
      {/*keep_slower_than=*/0, /*keep_one_in=*/1});
  auto client_flow = net.open_flow(client_host);
  // The node's verified edge cache (DESIGN.md §12): after the first round
  // fills it, repeat fetches serve locally and cache.{hits,misses,...} ride
  // the same registry into /metrics and the fleet-wide /federate view.
  // Fetch latency stays binding-dominated (naming + cert round trips), so
  // the degraded-link SLO story below still plays out.
  cache::TierConfig tier_config;
  tier_config.registry = &proxy_registry;
  cache::EdgeCacheTier edge_cache(tier_config);
  globedoc::ProxyConfig config;
  config.naming_root = naming_ep;
  config.naming_anchor = zone_keys.pub;
  config.location_site = tree.endpoint("site-client");
  config.registry = &proxy_registry;
  config.edge_cache = &edge_cache;
  config.profile = &proxy_profile;
  globedoc::GlobeDocProxy proxy(*client_flow, config);
  rpc::ServiceDispatcher proxy_dispatcher;
  obs::TelemetryNode proxy_telemetry(proxy_registry, "proxy-1", "proxy",
                                     &proxy_profile);
  proxy_telemetry.register_with(proxy_dispatcher);
  net::Endpoint proxy_telemetry_ep{client_host, 9101};
  net.bind(proxy_telemetry_ep, proxy_dispatcher.handler());

  // --- The cluster plane: aggregator scraping all three nodes, and an SLO
  // on the per-replica fetch latency.  500 ms sits on a proxy.fetch_ms
  // bucket boundary; healthy fetches over the 15 ms link run ~170-260 ms
  // (crypto-dominated), degraded ones blow far past it.
  obs::TelemetryAggregator aggregator;
  aggregator.add_target({"proxy-1", "proxy", proxy_telemetry_ep});
  aggregator.add_target({"os-1", "object-server", server_ep});
  aggregator.add_target({"ns-1", "naming", naming_ep});

  obs::SloEvaluator slo(aggregator);
  obs::SloSpec latency;
  latency.name = "fetch-latency";
  latency.type = obs::SloSpec::Type::kLatency;
  latency.metric = "proxy.fetch_ms";
  latency.threshold_ms = 500;
  latency.objective = 0.9;
  latency.short_window = util::seconds(60);
  latency.long_window = util::seconds(300);
  latency.burn_threshold = 2.0;
  slo.add_spec(latency);

  // One 10-second ops round: a couple of verified fetches, a scrape round,
  // an SLO evaluation.
  std::uint64_t round = 0;
  auto ops_round = [&]() -> bool {
    client_flow->set_time(util::seconds(10) * ++round);
    for (const char* element : {"index.html", "logo.gif"}) {
      auto result = proxy.fetch("news.vu.nl", element);
      if (!result.is_ok()) {
        std::fprintf(stderr, "fetch failed: %s\n",
                     result.status().to_string().c_str());
        return false;
      }
      std::printf(
          "[round %2llu] fetched %-10s -> %5zu bytes in %6.1f ms (virtual)\n",
          static_cast<unsigned long long>(round), element,
          result->element.content.size(),
          util::to_millis(result->metrics.total_time));
    }
    edge_cache.run_delayed_pulls(*client_flow);  // background sibling pulls
    aggregator.scrape_round(*client_flow);
    slo.evaluate(client_flow->now());
    return true;
  };

  for (int i = 0; i < 7; ++i) {
    if (!ops_round()) return 1;
  }
  std::printf("[net] degrading server<->client link to 300 ms\n");
  net.set_link(server_host, client_host, {util::millis(300), 1.0e6});
  for (int i = 0; i < 4; ++i) {
    if (!ops_round()) return 1;
  }
  for (const obs::AlertState& alert : slo.alerts()) {
    std::string labels;
    for (const auto& [k, v] : alert.labels) {
      labels += (labels.empty() ? "" : ",") + k + "=" + v;
    }
    std::printf("[slo] %s{%s} %s (burn short %.1f / long %.1f)\n",
                alert.slo.c_str(), labels.c_str(),
                obs::alert_state_name(alert.state), alert.burn_short,
                alert.burn_long);
  }

  // --- The admin surface over a real socket.  /metrics serves the proxy
  // node's local view; /federate and /alertz serve the cluster plane.
  obs::AdminConfig admin_config;
  admin_config.service = "telemetry-demo";  // collector/log: process globals
  admin_config.registry = &proxy_registry;
  admin_config.profile = &proxy_profile;
  admin_config.aggregator = &aggregator;
  admin_config.slo = &slo;
  obs::AdminHttpServer admin(admin_config);
  proxy.register_health_checks(admin);
  DemoContext ctx(*client_flow);

  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) { std::perror("socket"); return 1; }
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd, 16) < 0) {
    std::perror("bind/listen");
    return 1;
  }
  // sigaction without SA_RESTART: a signal must make the blocking accept()
  // fail with EINTR so the loop can notice g_stop (std::signal would
  // restart the syscall on glibc and the process would never exit).
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  std::signal(SIGPIPE, SIG_IGN);
  std::printf("[admin] serving on http://127.0.0.1:%u "
              "(/metrics /healthz /tracez /federate /alertz /profilez)\n",
              port);
  std::fflush(stdout);

  while (!g_stop) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    serve_connection(fd, admin, ctx);
    ::close(fd);
  }
  ::close(listen_fd);
  std::printf("[admin] shut down\n");
  return 0;
}
