// Quickstart: publish a securely replicated Web document and fetch it
// through the GlobeDoc proxy, narrating every step of the paper's Fig. 3.
//
//   1. An owner creates a GlobeDoc object (key pair -> self-certifying OID),
//      fills it with page elements and signs an integrity certificate.
//   2. The name "news.vu.nl" is registered in the secure naming service.
//   3. A replica is pushed to an (untrusted) object server and its contact
//      address registered in the location service.
//   4. A client proxy resolves the name, locates the replica, verifies the
//      key against the OID, verifies the certificate, fetches the element
//      and checks authenticity / freshness / consistency.
#include <cstdio>

#include "crypto/drbg.hpp"
#include "globedoc/owner.hpp"
#include "globedoc/proxy.hpp"
#include "globedoc/server.hpp"
#include "location/builder.hpp"
#include "naming/service.hpp"
#include "net/simnet.hpp"

using namespace globe;

int main() {
  std::printf("== GlobeDoc quickstart ==\n\n");

  // --- A two-host world: an infrastructure/server host and a client host.
  net::SimNet net;
  auto server_host = net.add_host({"server.vu.nl", net::CpuModel{}});
  auto client_host = net.add_host({"client.example", net::CpuModel{}});
  net.set_link(server_host, client_host, {util::millis(15), 1.0e6});

  // --- Secure naming service (root zone) on the server host.
  auto zone_rng = crypto::HmacDrbg::from_seed(1);
  auto zone_keys = crypto::rsa_generate(1024, zone_rng);
  auto root_zone = std::make_shared<naming::ZoneAuthority>("", zone_keys);
  rpc::ServiceDispatcher naming_dispatcher;
  naming::NamingServer naming_server;
  naming_server.add_zone(root_zone);
  naming_server.register_with(naming_dispatcher);
  net::Endpoint naming_ep{server_host, 53};
  net.bind(naming_ep, naming_dispatcher.handler());
  std::printf("[infra] naming service up at %s\n", naming_ep.to_string().c_str());

  // --- Location service: root + one site per host.
  location::LocationTree tree(net, {
                                       {"root", "", server_host, 100, false},
                                       {"site-server", "root", server_host, 101, true},
                                       {"site-client", "root", client_host, 101, true},
                                   });
  std::printf("[infra] location tree up (root, site-server, site-client)\n");

  // --- An untrusted object server whose keystore authorizes our owner.
  auto cred_rng = crypto::HmacDrbg::from_seed(2);
  auto credentials = crypto::rsa_generate(1024, cred_rng);
  globedoc::ObjectServer object_server("replica-host-1", 3);
  object_server.authorize(credentials.pub);
  rpc::ServiceDispatcher server_dispatcher;
  object_server.register_with(server_dispatcher);
  net::Endpoint server_ep{server_host, 8000};
  net.bind(server_ep, server_dispatcher.handler());
  std::printf("[infra] object server up at %s (owner key authorized)\n\n",
              server_ep.to_string().c_str());

  // --- 1. The owner creates and signs the document.
  auto object_rng = crypto::HmacDrbg::from_seed(4);
  globedoc::GlobeDocObject object = globedoc::GlobeDocObject::create(object_rng, 1024);
  std::printf("[owner] created object, self-certifying OID = %s\n",
              object.oid().to_hex().c_str());
  object.put_element({"index.html", "text/html",
                      util::to_bytes("<html><body><h1>VU News</h1>"
                                     "<img src=logo.gif></body></html>")});
  object.put_element({"logo.gif", "image/gif", util::Bytes(256, 0x47)});
  globedoc::ObjectOwner owner(std::move(object), credentials);
  std::printf("[owner] added 2 page elements\n");

  // --- 2. Register the human-readable name.
  owner.register_name(*root_zone, "news.vu.nl", util::seconds(86400));
  std::printf("[owner] registered name news.vu.nl -> OID (signed by the zone)\n");

  // --- 3. Sign the state and publish a replica.
  auto owner_flow = net.open_flow(server_host);
  auto state = owner.sign_and_snapshot(owner_flow->now(), util::seconds(3600));
  auto published = owner.publish_replica(*owner_flow, server_ep,
                                         tree.endpoint("site-server"), state);
  if (!published.is_ok()) {
    std::fprintf(stderr, "publish failed: %s\n", published.to_string().c_str());
    return 1;
  }
  std::printf("[owner] replica published (integrity certificate v%llu, 1h TTL)\n\n",
              static_cast<unsigned long long>(owner.object().version()));

  // --- 4. A client fetches through the secure proxy.
  auto client_flow = net.open_flow(client_host);
  globedoc::ProxyConfig config;
  config.naming_root = naming_ep;
  config.naming_anchor = zone_keys.pub;
  config.location_site = tree.endpoint("site-client");
  globedoc::GlobeDocProxy proxy(*client_flow, config);

  auto result = proxy.fetch_url("http://globe/news.vu.nl/index.html");
  if (!result.is_ok()) {
    std::fprintf(stderr, "fetch failed: %s\n", result.status().to_string().c_str());
    return 1;
  }
  std::printf("[proxy] GET http://globe/news.vu.nl/index.html\n");
  std::printf("[proxy]   resolved name, located replica, verified key==OID,\n");
  std::printf("[proxy]   verified certificate signature, checked element hash,\n");
  std::printf("[proxy]   freshness and consistency: ALL OK\n");
  std::printf("[proxy] -> %zu bytes of %s in %.1f ms (%.1f ms security ops)\n\n",
              result->element.content.size(), result->element.content_type.c_str(),
              util::to_millis(result->metrics.total_time),
              util::to_millis(result->metrics.security_time));
  std::printf("content: %s\n", util::to_string(result->element.content).c_str());

  // Bonus: what the browser sees for a tampered fetch is exercised in
  // examples/tamper_detection.cpp.
  return 0;
}
