// Tamper detection: every attack from the paper's threat model thrown at
// the proxy, each caught by a distinct verification step of Fig. 3.
//
//   * content tampering      -> HASH_MISMATCH      (authenticity, §3.2.2)
//   * element substitution   -> WRONG_ELEMENT      (consistency)
//   * certificate forgery    -> BAD_SIGNATURE      (authenticity)
//   * key substitution       -> OID_MISMATCH       (self-certifying naming)
//   * stale state replay     -> EXPIRED            (freshness)
//   * lying location service -> denial of service only (§3.1.2)
// Finally, with an honest replica also registered, the proxy falls back and
// serves correct content despite the attacker.
#include <cstdio>

#include "crypto/drbg.hpp"
#include "globedoc/adversary.hpp"
#include "globedoc/owner.hpp"
#include "globedoc/proxy.hpp"
#include "globedoc/server.hpp"
#include "location/builder.hpp"
#include "naming/service.hpp"
#include "net/simnet.hpp"

using namespace globe;

namespace {

struct World {
  World() {
    host = net.add_host({"host", net::CpuModel{}});
    net.set_default_link({util::millis(5), 1e6});

    auto zone_rng = crypto::HmacDrbg::from_seed(11);
    zone_keys = crypto::rsa_generate(1024, zone_rng);
    root_zone = std::make_shared<naming::ZoneAuthority>("", zone_keys);
    naming_server.add_zone(root_zone);
    naming_server.register_with(naming_dispatcher);
    naming_ep = net::Endpoint{host, 53};
    net.bind(naming_ep, naming_dispatcher.handler());

    tree = std::make_unique<location::LocationTree>(
        net, std::vector<location::DomainSpec>{
                 {"root", "", host, 100, false},
                 {"site", "root", host, 101, true},
             });

    auto cred_rng = crypto::HmacDrbg::from_seed(12);
    credentials = crypto::rsa_generate(1024, cred_rng);
    server = std::make_unique<globedoc::ObjectServer>("srv", 13);
    server->authorize(credentials.pub);
    server->register_with(dispatcher);
    honest_ep = net::Endpoint{host, 8000};
    net.bind(honest_ep, dispatcher.handler());

    auto object_rng = crypto::HmacDrbg::from_seed(14);
    auto object = globedoc::GlobeDocObject::create(object_rng, 1024);
    object.put_element({"index.html", "text/html",
                        util::to_bytes("<html>genuine content</html>")});
    object.put_element({"other.html", "text/html",
                        util::to_bytes("<html>another page</html>")});
    owner = std::make_unique<globedoc::ObjectOwner>(std::move(object), credentials);
    owner->register_name(*root_zone, "doc.vu.nl", util::seconds(1u << 30));

    flow = net.open_flow(host);
    auto state = owner->sign_and_snapshot(0, util::seconds(3600));
    auto ok = owner->publish_replica(*flow, honest_ep, tree->endpoint("site"), state);
    if (!ok.is_ok()) std::abort();
  }

  globedoc::ProxyConfig proxy_config() {
    globedoc::ProxyConfig config;
    config.naming_root = naming_ep;
    config.naming_anchor = zone_keys.pub;
    config.location_site = tree->endpoint("site");
    return config;
  }

  /// Re-points the object's only contact address at `attack_ep`.
  void reroute_to(net::Endpoint attack_ep) {
    location::LocationClient locator(*flow, tree->endpoint("site"));
    (void)locator.remove(tree->endpoint("site"), owner->object().oid().view(),
                         current_ep);
    if (!locator.insert(tree->endpoint("site"), owner->object().oid().view(),
                        attack_ep)
             .is_ok()) {
      std::abort();
    }
    current_ep = attack_ep;
  }

  net::SimNet net;
  net::HostId host;
  crypto::RsaKeyPair zone_keys, credentials;
  std::shared_ptr<naming::ZoneAuthority> root_zone;
  naming::NamingServer naming_server;
  rpc::ServiceDispatcher naming_dispatcher, dispatcher;
  net::Endpoint naming_ep, honest_ep;
  net::Endpoint current_ep;  // where the location service currently points
  std::unique_ptr<location::LocationTree> tree;
  std::unique_ptr<globedoc::ObjectServer> server;
  std::unique_ptr<globedoc::ObjectOwner> owner;
  std::unique_ptr<net::SimFlow> flow;
};

void expect(World& world, const char* attack, util::ErrorCode expected) {
  auto client_flow = world.net.open_flow(world.host, world.flow->now());
  globedoc::GlobeDocProxy proxy(*client_flow, world.proxy_config());
  auto result = proxy.fetch("doc.vu.nl", "index.html");
  const char* verdict;
  if (result.is_ok()) {
    verdict = "SERVED (attack failed to corrupt anything)";
  } else if (result.code() == expected) {
    verdict = "DETECTED";
  } else {
    verdict = "unexpected error";
  }
  std::printf("%-28s -> %-16s (%s)\n", attack,
              result.is_ok() ? "200 OK" : util::error_code_name(result.code()),
              verdict);
}

}  // namespace

int main() {
  std::printf("== GlobeDoc under attack ==\n\n");

  {
    World world;
    world.current_ep = world.honest_ep;
    expect(world, "no attack (baseline)", util::ErrorCode::kOk);
  }
  {
    World world;
    world.current_ep = world.honest_ep;
    net::Endpoint evil{world.host, 6660};
    world.net.bind(evil, globedoc::tampering_element_attack(
                             world.dispatcher.handler()));
    world.reroute_to(evil);
    expect(world, "content tampering", util::ErrorCode::kHashMismatch);
  }
  {
    World world;
    world.current_ep = world.honest_ep;
    net::Endpoint evil{world.host, 6661};
    world.net.bind(evil, globedoc::element_swap_attack(world.dispatcher.handler(),
                                                       "other.html"));
    world.reroute_to(evil);
    expect(world, "element substitution", util::ErrorCode::kWrongElement);
  }
  {
    World world;
    world.current_ep = world.honest_ep;
    net::Endpoint evil{world.host, 6662};
    world.net.bind(evil, globedoc::certificate_forgery_attack(
                             world.dispatcher.handler()));
    world.reroute_to(evil);
    expect(world, "certificate forgery", util::ErrorCode::kBadSignature);
  }
  {
    World world;
    world.current_ep = world.honest_ep;
    auto attacker_rng = crypto::HmacDrbg::from_seed(666);
    auto attacker_key = crypto::rsa_generate(1024, attacker_rng);
    net::Endpoint evil{world.host, 6663};
    world.net.bind(evil, globedoc::key_substitution_attack(
                             world.dispatcher.handler(),
                             attacker_key.pub.serialize()));
    world.reroute_to(evil);
    expect(world, "key substitution", util::ErrorCode::kOidMismatch);
  }
  {
    World world;
    world.current_ep = world.honest_ep;
    // Stale replay: the fetch happens long after the certificate expired —
    // a malicious server serving yesterday's (genuinely signed) state.
    auto client_flow = world.net.open_flow(world.host, util::seconds(7200));
    globedoc::GlobeDocProxy proxy(*client_flow, world.proxy_config());
    auto result = proxy.fetch("doc.vu.nl", "index.html");
    std::printf("%-28s -> %-16s (%s)\n", "stale state replay",
                result.is_ok() ? "200 OK" : util::error_code_name(result.code()),
                result.code() == util::ErrorCode::kExpired ? "DETECTED" : "??");
  }
  {
    World world;
    world.current_ep = world.honest_ep;
    // A lying location service can only deny service.
    net::Endpoint nowhere{world.host, 7777};
    world.net.unbind(world.tree->endpoint("site"));
    world.net.bind(world.tree->endpoint("site"),
                   globedoc::misdirecting_location_node({nowhere}));
    auto client_flow = world.net.open_flow(world.host, world.flow->now());
    globedoc::GlobeDocProxy proxy(*client_flow, world.proxy_config());
    auto result = proxy.fetch("doc.vu.nl", "index.html");
    std::printf("%-28s -> %-16s (%s)\n", "lying location service",
                result.is_ok() ? "200 OK" : util::error_code_name(result.code()),
                "denial of service at worst, never bad content");
  }
  {
    World world;
    world.current_ep = world.honest_ep;
    // Attacker AND honest replica both registered: the proxy falls back.
    net::Endpoint evil{world.host, 6000};  // sorts before the honest :8000
    world.net.bind(evil, globedoc::tampering_element_attack(
                             world.dispatcher.handler()));
    location::LocationClient locator(*world.flow, world.tree->endpoint("site"));
    (void)locator.insert(world.tree->endpoint("site"),
                         world.owner->object().oid().view(), evil);
    auto client_flow = world.net.open_flow(world.host, world.flow->now());
    globedoc::GlobeDocProxy proxy(*client_flow, world.proxy_config());
    auto result = proxy.fetch("doc.vu.nl", "index.html");
    std::printf("%-28s -> %-16s (tried %zu replicas, honest one served)\n",
                "tamperer + honest replica",
                result.is_ok() ? "200 OK" : util::error_code_name(result.code()),
                result.is_ok() ? result->metrics.replicas_tried : 0);
  }

  std::printf(
      "\nEvery attack maps to a typed verification failure; the browser would\n"
      "see the paper's 'Security Check Failed' page instead of forged bytes.\n");
  return 0;
}
