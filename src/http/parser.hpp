// Strict HTTP/1.1 parsing with bounds checking — requests can arrive from
// untrusted peers, so every length and character class is validated.
// Supports Content-Length framing and chunked transfer decoding.
#pragma once

#include "http/message.hpp"
#include "util/status.hpp"
#include "util/bounds_annotations.hpp"

namespace globe::http {

/// Parses a complete request message (start line + headers + body).
util::Result<HttpRequest> parse_request(util::BytesView data);

/// Parses a complete response message.
util::Result<HttpResponse> parse_response(util::BytesView data);

/// Incremental framer for stream transports: feed() bytes until a full
/// message is buffered, then take_message() yields its raw bytes.
class MessageFramer {
 public:
  /// Appends stream data.  Returns PROTOCOL on irrecoverably bad framing.
  util::Status feed(util::BytesView data);

  /// True once at least one complete message is buffered.
  bool has_message() const { return !complete_.empty(); }

  /// Pops the earliest complete raw message.  Throws std::logic_error when
  /// none is available.
  util::Bytes take_message();

  /// Upper bound on buffered bytes (DoS guard); default 64 MiB.
  void set_max_message(std::size_t n) { max_message_ = n; }

 private:
  util::Status try_extract();

  util::Bytes buffer_;
  std::vector<util::Bytes> complete_ GLOBE_BOUNDED;
  std::size_t max_message_ = 64u * 1024 * 1024;
};

}  // namespace globe::http
