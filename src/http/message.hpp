// HTTP/1.1 message model.  Used by the Apache-style baseline server, the
// SSL-like secure channel, and the GlobeDoc proxy's browser-facing side.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/bytes.hpp"

namespace globe::http {

/// Ordered header list; lookups are case-insensitive per RFC 7230.
class Headers {
 public:
  void set(std::string name, std::string value);
  void add(std::string name, std::string value);
  std::optional<std::string> get(std::string_view name) const;
  bool has(std::string_view name) const { return get(name).has_value(); }
  const std::vector<std::pair<std::string, std::string>>& all() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  Headers headers;
  util::Bytes body;

  /// Serializes to wire form (sets Content-Length when a body is present).
  util::Bytes serialize() const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  Headers headers;
  util::Bytes body;

  util::Bytes serialize() const;

  static HttpResponse make(int status, std::string reason, util::Bytes body,
                           std::string content_type = "text/html");
};

/// Standard reason phrase for common status codes ("Not Found", ...).
std::string reason_for_status(int status);

/// Guesses a Content-Type from a path suffix (the small table Apache-era
/// servers shipped: html, txt, gif, jpg, png, class, ...).
std::string guess_content_type(std::string_view path);

}  // namespace globe::http
