// Apache-style static file server over an in-memory document root.
// This is the plain-HTTP baseline of the paper's Figures 5-7.
#pragma once

#include <map>
#include <string>

#include "http/message.hpp"
#include "http/parser.hpp"
#include "net/transport.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "util/mutex.hpp"

namespace globe::http {

class StaticHttpServer {
 public:
  /// `registry` receives the http.static.* series (labeled with the server
  /// name); nullptr means the process-wide obs::global_registry().
  explicit StaticHttpServer(std::string server_name = "SimApache/1.3",
                            obs::MetricsRegistry* registry = nullptr);

  /// Publishes `content` at `path` (must start with '/').  Content type is
  /// guessed from the suffix; the ETag is precomputed.
  void put_file(const std::string& path, util::Bytes content)
      GLOBE_EXCLUDES(mutex_);
  void remove_file(const std::string& path) GLOBE_EXCLUDES(mutex_);
  bool has_file(const std::string& path) const GLOBE_EXCLUDES(mutex_);
  std::size_t file_count() const GLOBE_EXCLUDES(mutex_);

  /// Serves one parsed request (GET/HEAD only).
  HttpResponse handle(const HttpRequest& req) const GLOBE_EXCLUDES(mutex_);

  /// MessageHandler adapter: request bytes are a serialized HTTP request,
  /// response bytes a serialized HTTP response.
  net::MessageHandler handler();

  /// Readiness probe for an admin surface ("docroot"): unhealthy while the
  /// document root is empty (nothing published yet, or torn down).  The
  /// server must outlive the returned probe.
  obs::HealthProbe docroot_health_check() const;

 private:
  struct FileEntry {
    util::Bytes content;
    std::string content_type;
    std::string etag;
  };

  std::string server_name_;
  mutable util::Mutex mutex_;
  std::map<std::string, FileEntry> files_ GLOBE_GUARDED_BY(mutex_);
  // Registry series, labeled by server name; status label added per reply.
  obs::MetricsRegistry* registry_;
  obs::Counter* requests_counter_;
  obs::Counter* bytes_counter_;
};

}  // namespace globe::http
