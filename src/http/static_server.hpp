// Apache-style static file server over an in-memory document root.
// This is the plain-HTTP baseline of the paper's Figures 5-7.
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "http/message.hpp"
#include "http/parser.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace globe::http {

class StaticHttpServer {
 public:
  explicit StaticHttpServer(std::string server_name = "SimApache/1.3");

  /// Publishes `content` at `path` (must start with '/').  Content type is
  /// guessed from the suffix; the ETag is precomputed.
  void put_file(const std::string& path, util::Bytes content);
  void remove_file(const std::string& path);
  bool has_file(const std::string& path) const;
  std::size_t file_count() const;

  /// Serves one parsed request (GET/HEAD only).
  HttpResponse handle(const HttpRequest& req) const;

  /// MessageHandler adapter: request bytes are a serialized HTTP request,
  /// response bytes a serialized HTTP response.
  net::MessageHandler handler();

 private:
  struct FileEntry {
    util::Bytes content;
    std::string content_type;
    std::string etag;
  };

  std::string server_name_;
  mutable std::mutex mutex_;
  std::map<std::string, FileEntry> files_;
  // Registry series, labeled by server name; status label added per reply.
  obs::Counter* requests_counter_;
  obs::Counter* bytes_counter_;
};

}  // namespace globe::http
