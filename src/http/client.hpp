// Plain-HTTP client over the Transport abstraction (the "wget" of the
// paper's experiments).
#pragma once

#include "http/message.hpp"
#include "net/transport.hpp"

namespace globe::http {

class HttpClient {
 public:
  explicit HttpClient(net::Transport& transport) : transport_(&transport) {}

  /// GETs `path` from the server at `ep`.
  util::Result<HttpResponse> get(const net::Endpoint& ep, const std::string& path);

  /// Sends an arbitrary request.
  util::Result<HttpResponse> request(const net::Endpoint& ep, const HttpRequest& req);

  net::Transport& transport() { return *transport_; }

 private:
  net::Transport* transport_;
};

}  // namespace globe::http
