// Plain-HTTP client over the Transport abstraction (the "wget" of the
// paper's experiments).
#pragma once

#include "http/message.hpp"
#include "net/transport.hpp"
#include "util/taint_annotations.hpp"
#include "util/thread_annotations.hpp"

namespace globe::http {

class HttpClient {
 public:
  explicit HttpClient(net::Transport& transport) : transport_(&transport) {}

  /// GETs `path` from the server at `ep`.  The response is plain HTTP:
  /// nothing about it is authenticated.
  GLOBE_BLOCKING GLOBE_UNTRUSTED util::Result<HttpResponse> get(const net::Endpoint& ep,
                                                 const std::string& path);

  /// Sends an arbitrary request.  Response is untrusted (see get()).
  GLOBE_BLOCKING GLOBE_UNTRUSTED util::Result<HttpResponse> request(const net::Endpoint& ep,
                                                     const HttpRequest& req);

  net::Transport& transport() { return *transport_; }

 private:
  net::Transport* transport_;
};

}  // namespace globe::http
