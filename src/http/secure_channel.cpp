#include "http/secure_channel.hpp"

#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "http/parser.hpp"
#include "util/serial.hpp"

namespace globe::http {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Result;

namespace {

constexpr std::uint8_t kRecordHello = 1;
constexpr std::uint8_t kRecordKeyExchange = 2;
constexpr std::uint8_t kRecordData = 3;
constexpr std::size_t kRandomSize = 32;
constexpr std::size_t kPremasterSize = 48;

struct TrafficKeys {
  Bytes client_key, server_key, client_mac, server_mac;
};

TrafficKeys derive_keys(BytesView premaster, BytesView client_random,
                        BytesView server_random) {
  auto derive = [&](std::string_view label) {
    Bytes info = util::to_bytes(label);
    util::append(info, client_random);
    util::append(info, server_random);
    return crypto::hkdf_expand_sha256(premaster, info, 16);
  };
  return TrafficKeys{derive("client key"), derive("server key"),
                     derive("client mac"), derive("server mac")};
}

Bytes record_mac(BytesView mac_key, BytesView nonce, BytesView ct) {
  Bytes data(nonce.begin(), nonce.end());
  util::append(data, ct);
  return crypto::hmac_bytes<crypto::Sha1>(mac_key, data);
}

/// Encrypts `plain` into a (nonce, ct, mac) triple written to `w`.
void seal_record(util::Writer& w, BytesView key, BytesView mac_key, BytesView plain,
                 util::RandomSource& rng) {
  Bytes nonce = rng.bytes(12);
  crypto::AesCtr ctr(key, nonce);
  Bytes ct = ctr.process_copy(plain);
  Bytes mac = record_mac(mac_key, nonce, ct);
  w.bytes(nonce);
  w.bytes(ct);
  w.bytes(mac);
}

Result<Bytes> open_record(util::Reader& r, BytesView key, BytesView mac_key) {
  Bytes nonce = r.bytes();
  Bytes ct = r.bytes();
  Bytes mac = r.bytes();
  if (nonce.size() != 12) {
    return Result<Bytes>(ErrorCode::kProtocol, "bad record nonce");
  }
  if (!util::ct_equal(mac, record_mac(mac_key, nonce, ct))) {
    return Result<Bytes>(ErrorCode::kBadSignature, "record MAC mismatch");
  }
  crypto::AesCtr ctr(key, nonce);
  return ctr.process_copy(ct);
}

}  // namespace

Bytes make_certificate(const std::string& name, const crypto::RsaKeyPair& key) {
  util::Writer body;
  body.str(name);
  body.bytes(key.pub.serialize());
  Bytes signature = crypto::rsa_sign_sha256(key.priv, body.buffer());
  util::Writer cert;
  cert.bytes(body.buffer());
  cert.bytes(signature);
  return cert.take();
}

Result<crypto::RsaPublicKey> verify_certificate(BytesView cert,
                                                const std::string& expected_name) {
  try {
    util::Reader r(cert);
    Bytes body = r.bytes();
    Bytes signature = r.bytes();
    r.expect_end();

    util::Reader rb(body);
    std::string name = rb.str();
    Bytes pub_wire = rb.bytes();
    rb.expect_end();

    auto pub = crypto::RsaPublicKey::parse(pub_wire);
    if (!pub.is_ok()) return pub.status();
    if (!crypto::rsa_verify_sha256(*pub, body, signature)) {
      return Result<crypto::RsaPublicKey>(ErrorCode::kBadSignature,
                                          "certificate signature invalid");
    }
    if (name != expected_name) {
      return Result<crypto::RsaPublicKey>(
          ErrorCode::kUntrustedIssuer,
          "certificate names '" + name + "', expected '" + expected_name + "'");
    }
    return pub;
  } catch (const util::SerialError& e) {
    return Result<crypto::RsaPublicKey>(ErrorCode::kProtocol, e.what());
  }
}

SecureServer::SecureServer(crypto::RsaKeyPair identity, std::string certificate_name,
                           net::MessageHandler inner, std::uint64_t rng_seed)
    : identity_(std::move(identity)),
      cert_name_(std::move(certificate_name)),
      inner_(std::move(inner)),
      rng_(crypto::HmacDrbg::from_seed(rng_seed)) {
  certificate_ = make_certificate(cert_name_, identity_);
}

std::size_t SecureServer::handshakes() const {
  util::LockGuard lock(mutex_);
  return handshake_count_;
}

net::MessageHandler SecureServer::handler() {
  return [this](net::ServerContext& ctx, BytesView raw) { return handle(ctx, raw); };
}

Result<Bytes> SecureServer::handle(net::ServerContext& ctx, BytesView raw) {
  try {
    util::Reader r(raw);
    std::uint8_t type = r.u8();
    switch (type) {
      case kRecordHello: {
        Bytes client_random = r.bytes();
        r.expect_end();
        if (client_random.size() != kRandomSize) {
          return Result<Bytes>(ErrorCode::kProtocol, "bad client random");
        }
        util::LockGuard lock(mutex_);
        std::uint64_t id = next_session_++;
        Session& s = sessions_[id];
        s.client_random = std::move(client_random);
        s.server_random = rng_.bytes(kRandomSize);
        util::Writer w;
        w.bytes(s.server_random);
        w.bytes(certificate_);
        w.u64(id);
        return w.take();
      }
      case kRecordKeyExchange: {
        std::uint64_t id = r.u64();
        Bytes rsa_ct = r.bytes();
        r.expect_end();
        ctx.charge(net::CpuOp::kRsaDecrypt, 1);
        auto premaster = crypto::rsa_decrypt(identity_.priv, rsa_ct);
        if (!premaster.is_ok() || premaster->size() != kPremasterSize) {
          return Result<Bytes>(ErrorCode::kProtocol, "bad premaster");
        }
        util::LockGuard lock(mutex_);
        auto it = sessions_.find(id);
        if (it == sessions_.end()) {
          return Result<Bytes>(ErrorCode::kNotFound, "unknown session");
        }
        TrafficKeys keys =
            derive_keys(*premaster, it->second.client_random, it->second.server_random);
        it->second.client_key = std::move(keys.client_key);
        it->second.server_key = std::move(keys.server_key);
        it->second.client_mac = std::move(keys.client_mac);
        it->second.server_mac = std::move(keys.server_mac);
        it->second.established = true;
        ++handshake_count_;
        util::Writer w;
        w.u8(1);  // ack
        return w.take();
      }
      case kRecordData: {
        std::uint64_t id = r.u64();
        Session session;
        {
          util::LockGuard lock(mutex_);
          auto it = sessions_.find(id);
          if (it == sessions_.end() || !it->second.established) {
            return Result<Bytes>(ErrorCode::kNotFound, "no established session");
          }
          session = it->second;
        }
        auto plain = open_record(r, session.client_key, session.client_mac);
        r.expect_end();
        if (!plain.is_ok()) return plain.status();
        ctx.charge(net::CpuOp::kSymCipher, plain->size());

        auto inner_result = inner_(ctx, *plain);
        if (!inner_result.is_ok()) return inner_result.status();

        ctx.charge(net::CpuOp::kSymCipher, inner_result->size());
        util::Writer w;
        Bytes nonce;
        {
          util::LockGuard lock(mutex_);
          nonce = rng_.bytes(12);
        }
        crypto::AesCtr ctr(session.server_key, nonce);
        Bytes ct = ctr.process_copy(*inner_result);
        Bytes mac = record_mac(session.server_mac, nonce, ct);
        w.bytes(nonce);
        w.bytes(ct);
        w.bytes(mac);
        return w.take();
      }
      default:
        return Result<Bytes>(ErrorCode::kProtocol, "unknown record type");
    }
  } catch (const util::SerialError& e) {
    return Result<Bytes>(ErrorCode::kProtocol, e.what());
  }
}

SecureHttpClient::SecureHttpClient(net::Transport& transport, std::string expected_name,
                                   std::uint64_t rng_seed)
    : transport_(&transport),
      expected_name_(std::move(expected_name)),
      rng_(crypto::HmacDrbg::from_seed(rng_seed)) {}

Result<SecureHttpClient::ClientSession*> SecureHttpClient::session_for(
    const net::Endpoint& ep) {
  auto it = sessions_.find(ep);
  if (it != sessions_.end()) return &it->second;

  // --- Handshake round 1: hello.
  Bytes client_random = rng_.bytes(kRandomSize);
  util::Writer hello;
  hello.u8(kRecordHello);
  hello.bytes(client_random);
  auto hello_resp = transport_->call(ep, hello.buffer());
  if (!hello_resp.is_ok()) return hello_resp.status();

  Bytes server_random, certificate;
  std::uint64_t session_id;
  try {
    util::Reader r(*hello_resp);
    server_random = r.bytes();
    certificate = r.bytes();
    session_id = r.u64();
    r.expect_end();
  } catch (const util::SerialError& e) {
    return Result<ClientSession*>(ErrorCode::kProtocol, e.what());
  }

  // Verify the server certificate (the CA-chain check).
  transport_->charge(net::CpuOp::kRsaVerify, 1);
  auto server_key = verify_certificate(certificate, expected_name_);
  if (!server_key.is_ok()) return server_key.status();

  // --- Handshake round 2: key exchange.
  Bytes premaster = rng_.bytes(kPremasterSize);
  transport_->charge(net::CpuOp::kRsaEncrypt, 1);
  auto rsa_ct = crypto::rsa_encrypt(*server_key, premaster, rng_);
  if (!rsa_ct.is_ok()) return rsa_ct.status();
  util::Writer kx;
  kx.u8(kRecordKeyExchange);
  kx.u64(session_id);
  kx.bytes(*rsa_ct);
  auto kx_resp = transport_->call(ep, kx.buffer());
  if (!kx_resp.is_ok()) return kx_resp.status();

  TrafficKeys keys = derive_keys(premaster, client_random, server_random);
  ClientSession session;
  session.id = session_id;
  session.client_key = std::move(keys.client_key);
  session.server_key = std::move(keys.server_key);
  session.client_mac = std::move(keys.client_mac);
  session.server_mac = std::move(keys.server_mac);
  ++handshakes_;
  auto [ins, ok] = sessions_.emplace(ep, std::move(session));
  (void)ok;
  return &ins->second;
}

Result<HttpResponse> SecureHttpClient::get(const net::Endpoint& ep,
                                           const std::string& path) {
  HttpRequest req;
  req.method = "GET";
  req.target = path;
  req.headers.set("Host", expected_name_);
  req.headers.set("User-Agent", "globedoc-wget/1.0 (ssl)");
  return request(ep, req);
}

Result<HttpResponse> SecureHttpClient::request(const net::Endpoint& ep,
                                               const HttpRequest& req) {
  auto session = session_for(ep);
  if (!session.is_ok()) return session.status();
  ClientSession* s = *session;

  Bytes plain = req.serialize();
  transport_->charge(net::CpuOp::kSymCipher, plain.size());
  util::Writer w;
  w.u8(kRecordData);
  w.u64(s->id);
  seal_record(w, s->client_key, s->client_mac, plain, rng_);

  auto resp = transport_->call(ep, w.buffer());
  if (!resp.is_ok()) return resp.status();

  try {
    util::Reader r(*resp);
    auto plain_resp = open_record(r, s->server_key, s->server_mac);
    r.expect_end();
    if (!plain_resp.is_ok()) return plain_resp.status();
    transport_->charge(net::CpuOp::kSymCipher, plain_resp->size());
    return parse_response(*plain_resp);
  } catch (const util::SerialError& e) {
    return Result<HttpResponse>(ErrorCode::kProtocol, e.what());
  }
}

}  // namespace globe::http
