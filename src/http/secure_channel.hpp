// TLS-like secure channel — the "Apache + SSL" baseline of Figures 5-7.
//
// Protocol (message-oriented; each record is one Transport round trip):
//   1. CLIENT_HELLO  {client_random}              -> {server_random,
//                                                     certificate, session_id}
//   2. KEY_EXCHANGE  {session_id, RSA(premaster)} -> {ack}
//   3. DATA          {session_id, nonce, ct, mac} -> {nonce, ct, mac}
//
// The certificate is self-signed (name + public key + RSA/SHA-256
// signature); the client verifies it against a pinned name, modeling the
// CA-chain check of a real deployment.  Traffic keys are derived with
// HKDF-SHA256 from the premaster and both randoms; records are encrypted
// with AES-128-CTR and authenticated with HMAC-SHA1 over the nonce and
// ciphertext.  This mirrors the cost structure of 2001-era SSL: two extra
// round trips, one server private-key operation per handshake, and per-byte
// symmetric crypto — which is exactly what drives the paper's HTTP vs HTTPS
// gap.  CPU costs are charged via the era model on both sides.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "crypto/drbg.hpp"
#include "crypto/rsa.hpp"
#include "http/message.hpp"
#include "net/transport.hpp"
#include "util/bounds_annotations.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace globe::http {

/// Server-side wrapper: terminates the secure channel and forwards the
/// decrypted HTTP request to an inner handler.
class SecureServer {
 public:
  SecureServer(crypto::RsaKeyPair identity, std::string certificate_name,
               net::MessageHandler inner, std::uint64_t rng_seed);

  net::MessageHandler handler();

  const crypto::RsaPublicKey& public_key() const { return identity_.pub; }
  const std::string& certificate_name() const { return cert_name_; }

  /// Number of completed handshakes (for tests/benchmarks).
  std::size_t handshakes() const GLOBE_EXCLUDES(mutex_);

 private:
  struct Session {
    util::Bytes client_random;
    util::Bytes server_random;
    util::Bytes client_key, server_key;   // AES-128
    util::Bytes client_mac, server_mac;   // HMAC keys
    bool established = false;
  };

  util::Result<util::Bytes> handle(net::ServerContext& ctx, util::BytesView raw)
      GLOBE_EXCLUDES(mutex_);

  crypto::RsaKeyPair identity_;
  std::string cert_name_;
  util::Bytes certificate_;  // serialized name+pubkey+signature
  net::MessageHandler inner_;
  mutable util::Mutex mutex_;
  crypto::HmacDrbg rng_ GLOBE_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, Session> sessions_ GLOBE_GUARDED_BY(mutex_);
  std::uint64_t next_session_ GLOBE_GUARDED_BY(mutex_) = 1;
  std::size_t handshake_count_ GLOBE_GUARDED_BY(mutex_) = 0;
};

/// Client side: performs the handshake on first contact with an endpoint and
/// sends HTTP requests over the established session.
class SecureHttpClient {
 public:
  /// `expected_name` is the identity the server certificate must carry
  /// (models hostname verification against the CA-signed name).
  SecureHttpClient(net::Transport& transport, std::string expected_name,
                   std::uint64_t rng_seed);

  GLOBE_BLOCKING util::Result<HttpResponse> get(const net::Endpoint& ep,
                                                const std::string& path);
  GLOBE_BLOCKING util::Result<HttpResponse> request(const net::Endpoint& ep,
                                                    const HttpRequest& req);

  /// Drops all sessions; next request pays a full handshake (models the
  /// per-connection handshakes of era HTTPS clients).
  void reset_sessions() { sessions_.clear(); }

  std::size_t handshakes_performed() const { return handshakes_; }

 private:
  struct ClientSession {
    std::uint64_t id = 0;
    util::Bytes client_key, server_key, client_mac, server_mac;
  };

  util::Result<ClientSession*> session_for(const net::Endpoint& ep);

  net::Transport* transport_;
  std::string expected_name_;
  crypto::HmacDrbg rng_;
  std::unordered_map<net::Endpoint, ClientSession> sessions_ GLOBE_BOUNDED;
  std::size_t handshakes_ = 0;
};

/// Serialized self-signed certificate helpers (exposed for tests).
util::Bytes make_certificate(const std::string& name, const crypto::RsaKeyPair& key);
[[nodiscard]] util::Result<crypto::RsaPublicKey> verify_certificate(
    util::BytesView cert, const std::string& expected_name);

}  // namespace globe::http
