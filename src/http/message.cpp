#include "http/message.hpp"

#include <algorithm>
#include <cctype>

namespace globe::http {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

void append_str(util::Bytes& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

util::Bytes serialize_common(std::string_view start_line, const Headers& headers,
                             const util::Bytes& body) {
  util::Bytes out;
  out.reserve(start_line.size() + 256 + body.size());
  append_str(out, start_line);
  append_str(out, "\r\n");
  bool has_content_length = headers.has("Content-Length");
  for (const auto& [name, value] : headers.all()) {
    append_str(out, name);
    append_str(out, ": ");
    append_str(out, value);
    append_str(out, "\r\n");
  }
  if (!has_content_length && !body.empty()) {
    append_str(out, "Content-Length: " + std::to_string(body.size()) + "\r\n");
  }
  append_str(out, "\r\n");
  util::append(out, body);
  return out;
}

}  // namespace

void Headers::set(std::string name, std::string value) {
  for (auto& [n, v] : entries_) {
    if (iequals(n, name)) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(std::move(name), std::move(value));
}

void Headers::add(std::string name, std::string value) {
  entries_.emplace_back(std::move(name), std::move(value));
}

std::optional<std::string> Headers::get(std::string_view name) const {
  for (const auto& [n, v] : entries_) {
    if (iequals(n, name)) return v;
  }
  return std::nullopt;
}

util::Bytes HttpRequest::serialize() const {
  return serialize_common(method + " " + target + " " + version, headers, body);
}

util::Bytes HttpResponse::serialize() const {
  return serialize_common(version + " " + std::to_string(status) + " " + reason,
                          headers, body);
}

HttpResponse HttpResponse::make(int status, std::string reason, util::Bytes body,
                                std::string content_type) {
  HttpResponse resp;
  resp.status = status;
  resp.reason = std::move(reason);
  resp.body = std::move(body);
  resp.headers.set("Content-Type", std::move(content_type));
  resp.headers.set("Content-Length", std::to_string(resp.body.size()));
  return resp;
}

std::string reason_for_status(int status) {
  switch (status) {
    case 200: return "OK";
    case 301: return "Moved Permanently";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string guess_content_type(std::string_view path) {
  auto ends_with = [&](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           path.substr(path.size() - suffix.size()) == suffix;
  };
  if (ends_with(".html") || ends_with(".htm")) return "text/html";
  if (ends_with(".txt")) return "text/plain";
  if (ends_with(".gif")) return "image/gif";
  if (ends_with(".jpg") || ends_with(".jpeg")) return "image/jpeg";
  if (ends_with(".png")) return "image/png";
  if (ends_with(".class") || ends_with(".jar")) return "application/java";
  if (ends_with(".css")) return "text/css";
  if (ends_with(".js")) return "application/javascript";
  if (ends_with(".mp3") || ends_with(".wav")) return "audio/mpeg";
  if (ends_with(".mpg") || ends_with(".avi")) return "video/mpeg";
  return "application/octet-stream";
}

}  // namespace globe::http
