#include "http/static_server.hpp"

#include <stdexcept>

#include "crypto/sha1.hpp"
#include "obs/profile.hpp"

namespace globe::http {

using util::Bytes;
using util::BytesView;
using util::Result;

StaticHttpServer::StaticHttpServer(std::string server_name,
                                   obs::MetricsRegistry* registry)
    : server_name_(std::move(server_name)),
      registry_(registry != nullptr ? registry : &obs::global_registry()) {
  obs::Labels labels{{"server", server_name_}};
  requests_counter_ = &registry_->counter("http.static.requests", labels);
  bytes_counter_ = &registry_->counter("http.static.bytes_served", labels);
}

void StaticHttpServer::put_file(const std::string& path, Bytes content) {
  if (path.empty() || path[0] != '/') {
    throw std::invalid_argument("put_file: path must start with '/'");
  }
  FileEntry entry;
  entry.content_type = guess_content_type(path);
  entry.etag = "\"" + util::hex_encode(crypto::Sha1::digest_bytes(content)).substr(0, 16) + "\"";
  entry.content = std::move(content);
  util::LockGuard lock(mutex_);
  files_[path] = std::move(entry);
}

void StaticHttpServer::remove_file(const std::string& path) {
  util::LockGuard lock(mutex_);
  files_.erase(path);
}

bool StaticHttpServer::has_file(const std::string& path) const {
  util::LockGuard lock(mutex_);
  return files_.count(path) > 0;
}

std::size_t StaticHttpServer::file_count() const {
  util::LockGuard lock(mutex_);
  return files_.size();
}

HttpResponse StaticHttpServer::handle(const HttpRequest& req) const {
  GLOBE_PROFILE_SCOPE("http.static.handle");
  HttpResponse resp;
  if (req.method != "GET" && req.method != "HEAD") {
    resp = HttpResponse::make(405, reason_for_status(405),
                              util::to_bytes("<html><body>405</body></html>"));
    resp.headers.set("Allow", "GET, HEAD");
  } else {
    // Strip any query string.
    std::string path = req.target.substr(0, req.target.find('?'));
    util::LockGuard lock(mutex_);
    auto it = files_.find(path);
    if (it == files_.end()) {
      resp = HttpResponse::make(
          404, reason_for_status(404),
          util::to_bytes("<html><body>404 Not Found: " + path + "</body></html>"));
    } else if (auto inm = req.headers.get("If-None-Match");
               inm && *inm == it->second.etag) {
      resp.status = 304;
      resp.reason = reason_for_status(304);
      resp.headers.set("ETag", it->second.etag);
    } else {
      resp = HttpResponse::make(200, "OK", it->second.content,
                                it->second.content_type);
      resp.headers.set("ETag", it->second.etag);
      if (req.method == "HEAD") resp.body.clear();
    }
  }
  resp.headers.set("Server", server_name_);
  requests_counter_->inc();
  bytes_counter_->inc(resp.body.size());
  registry_
      ->counter("http.static.responses", {{"server", server_name_},
                                          {"status", std::to_string(resp.status)}})
      .inc();
  return resp;
}

obs::HealthProbe StaticHttpServer::docroot_health_check() const {
  return [this](net::ServerContext&) {
    if (file_count() == 0) {
      return util::Status(util::ErrorCode::kUnavailable,
                          server_name_ + ": empty document root");
    }
    return util::Status::ok();
  };
}

net::MessageHandler StaticHttpServer::handler() {
  return [this](net::ServerContext&, BytesView raw) -> Result<Bytes> {
    auto req = parse_request(raw);
    if (!req.is_ok()) {
      HttpResponse bad = HttpResponse::make(
          400, reason_for_status(400),
          util::to_bytes("<html><body>400 Bad Request</body></html>"));
      bad.headers.set("Server", server_name_);
      return bad.serialize();
    }
    return handle(*req).serialize();
  };
}

}  // namespace globe::http
