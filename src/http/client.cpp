#include "http/client.hpp"

#include "http/parser.hpp"

namespace globe::http {

using util::Result;

Result<HttpResponse> HttpClient::get(const net::Endpoint& ep, const std::string& path) {
  HttpRequest req;
  req.method = "GET";
  req.target = path;
  req.headers.set("Host", ep.to_string());
  req.headers.set("User-Agent", "globedoc-wget/1.0");
  return request(ep, req);
}

Result<HttpResponse> HttpClient::request(const net::Endpoint& ep,
                                         const HttpRequest& req) {
  auto raw = transport_->call(ep, req.serialize());
  if (!raw.is_ok()) return raw.status();
  return parse_response(*raw);
}

}  // namespace globe::http
