#include "http/parser.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace globe::http {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

constexpr std::string_view kCrlf = "\r\n";

std::string_view as_view(BytesView b) {
  return std::string_view(reinterpret_cast<const char*>(b.data()), b.size());
}

bool is_token_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) ||
         std::string_view("!#$%&'*+-.^_`|~").find(c) != std::string_view::npos;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

struct ParsedHead {
  std::string start_line;
  Headers headers;
  std::size_t body_offset = 0;  // offset of body within the original data
};

Result<ParsedHead> parse_head(std::string_view text) {
  std::size_t head_end = text.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    return Result<ParsedHead>(ErrorCode::kProtocol, "missing header terminator");
  }
  ParsedHead out;
  out.body_offset = head_end + 4;

  std::string_view head = text.substr(0, head_end);
  std::size_t line_end = head.find(kCrlf);
  if (line_end == std::string_view::npos) line_end = head.size();
  out.start_line = std::string(head.substr(0, line_end));
  if (out.start_line.empty()) {
    return Result<ParsedHead>(ErrorCode::kProtocol, "empty start line");
  }

  std::size_t pos = line_end;
  while (pos < head.size()) {
    pos += 2;  // skip CRLF
    std::size_t next = head.find(kCrlf, pos);
    if (next == std::string_view::npos) next = head.size();
    std::string_view line = head.substr(pos, next - pos);
    pos = next;
    if (line.empty()) continue;
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Result<ParsedHead>(ErrorCode::kProtocol,
                                "malformed header line: " + std::string(line));
    }
    std::string_view name = line.substr(0, colon);
    for (char c : name) {
      if (!is_token_char(c)) {
        return Result<ParsedHead>(ErrorCode::kProtocol, "bad header name");
      }
    }
    out.headers.add(std::string(name), std::string(trim(line.substr(colon + 1))));
  }
  return out;
}

Result<Bytes> decode_chunked(std::string_view body) {
  Bytes out;
  std::size_t pos = 0;
  for (;;) {
    std::size_t line_end = body.find(kCrlf, pos);
    if (line_end == std::string_view::npos) {
      return Result<Bytes>(ErrorCode::kProtocol, "chunked: missing size line");
    }
    std::string_view size_str = body.substr(pos, line_end - pos);
    // Chunk extensions (";...") are permitted and ignored.
    std::size_t semi = size_str.find(';');
    if (semi != std::string_view::npos) size_str = size_str.substr(0, semi);
    std::size_t chunk_size = 0;
    auto [p, ec] = std::from_chars(size_str.data(), size_str.data() + size_str.size(),
                                   chunk_size, 16);
    if (ec != std::errc() || p != size_str.data() + size_str.size() ||
        size_str.empty()) {
      return Result<Bytes>(ErrorCode::kProtocol, "chunked: bad size");
    }
    pos = line_end + 2;
    if (chunk_size == 0) break;
    // Overflow-safe bound: attacker-controlled sizes near SIZE_MAX must not
    // wrap `pos + chunk_size` past the buffer check.
    if (chunk_size > body.size() || pos + chunk_size + 2 > body.size()) {
      return Result<Bytes>(ErrorCode::kProtocol, "chunked: truncated chunk");
    }
    out.insert(out.end(), body.begin() + static_cast<std::ptrdiff_t>(pos),
               body.begin() + static_cast<std::ptrdiff_t>(pos + chunk_size));
    if (body.substr(pos + chunk_size, 2) != kCrlf) {
      return Result<Bytes>(ErrorCode::kProtocol, "chunked: missing chunk CRLF");
    }
    pos += chunk_size + 2;
  }
  return out;
}

Result<Bytes> extract_body(const ParsedHead& head, std::string_view text) {
  std::string_view body = text.substr(head.body_offset);
  if (auto te = head.headers.get("Transfer-Encoding");
      te && iequals(trim(*te), "chunked")) {
    return decode_chunked(body);
  }
  if (auto cl = head.headers.get("Content-Length")) {
    std::size_t n = 0;
    auto [p, ec] = std::from_chars(cl->data(), cl->data() + cl->size(), n);
    if (ec != std::errc() || p != cl->data() + cl->size()) {
      return Result<Bytes>(ErrorCode::kProtocol, "bad Content-Length");
    }
    if (body.size() < n) {
      return Result<Bytes>(ErrorCode::kProtocol, "body shorter than Content-Length");
    }
    body = body.substr(0, n);
  }
  return Bytes(body.begin(), body.end());
}

}  // namespace

Result<HttpRequest> parse_request(BytesView data) {
  auto head = parse_head(as_view(data));
  if (!head.is_ok()) return head.status();

  HttpRequest req;
  std::string_view line = head->start_line;
  std::size_t sp1 = line.find(' ');
  std::size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                             : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return Result<HttpRequest>(ErrorCode::kProtocol, "bad request line");
  }
  req.method = std::string(line.substr(0, sp1));
  req.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  req.version = std::string(line.substr(sp2 + 1));
  if (req.method.empty() || req.target.empty() ||
      req.version.substr(0, 5) != "HTTP/") {
    return Result<HttpRequest>(ErrorCode::kProtocol, "bad request line");
  }
  for (char c : req.method) {
    if (!is_token_char(c)) {
      return Result<HttpRequest>(ErrorCode::kProtocol, "bad method token");
    }
  }
  req.headers = head->headers;
  auto body = extract_body(*head, as_view(data));
  if (!body.is_ok()) return body.status();
  req.body = std::move(*body);
  return req;
}

Result<HttpResponse> parse_response(BytesView data) {
  auto head = parse_head(as_view(data));
  if (!head.is_ok()) return head.status();

  HttpResponse resp;
  std::string_view line = head->start_line;
  std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || line.substr(0, 5) != "HTTP/") {
    return Result<HttpResponse>(ErrorCode::kProtocol, "bad status line");
  }
  resp.version = std::string(line.substr(0, sp1));
  std::size_t sp2 = line.find(' ', sp1 + 1);
  std::string_view code = line.substr(sp1 + 1, sp2 == std::string::npos
                                                   ? std::string::npos
                                                   : sp2 - sp1 - 1);
  int status = 0;
  auto [p, ec] = std::from_chars(code.data(), code.data() + code.size(), status);
  if (ec != std::errc() || p != code.data() + code.size() || status < 100 ||
      status > 599) {
    return Result<HttpResponse>(ErrorCode::kProtocol, "bad status code");
  }
  resp.status = status;
  resp.reason = sp2 == std::string::npos ? "" : std::string(line.substr(sp2 + 1));
  resp.headers = head->headers;
  auto body = extract_body(*head, as_view(data));
  if (!body.is_ok()) return body.status();
  resp.body = std::move(*body);
  return resp;
}

Status MessageFramer::feed(BytesView data) {
  if (buffer_.size() + data.size() > max_message_) {
    return Status(ErrorCode::kProtocol, "message exceeds size limit");
  }
  util::append(buffer_, data);
  return try_extract();
}

Status MessageFramer::try_extract() {
  for (;;) {
    std::string_view text = as_view(buffer_);
    std::size_t head_end = text.find("\r\n\r\n");
    if (head_end == std::string_view::npos) return Status::ok();

    auto head = parse_head(text);
    if (!head.is_ok()) return head.status();

    std::size_t total;
    if (auto te = head->headers.get("Transfer-Encoding");
        te && iequals(trim(*te), "chunked")) {
      // Scan chunks to find the message end.
      std::size_t pos = head->body_offset;
      bool complete = false;
      for (;;) {
        std::size_t line_end = text.find("\r\n", pos);
        if (line_end == std::string_view::npos) break;
        std::size_t chunk_size = 0;
        std::string_view size_str = text.substr(pos, line_end - pos);
        std::size_t semi = size_str.find(';');
        if (semi != std::string_view::npos) size_str = size_str.substr(0, semi);
        auto [p, ec] = std::from_chars(
            size_str.data(), size_str.data() + size_str.size(), chunk_size, 16);
        if (ec != std::errc() || size_str.empty() ||
            p != size_str.data() + size_str.size()) {
          return Status(ErrorCode::kProtocol, "chunked framing: bad size");
        }
        // Reject sizes that could wrap the position arithmetic or exceed the
        // framer's limit outright; otherwise a wrapped `pos` rescans earlier
        // buffer content and can spin forever.
        if (chunk_size > max_message_) {
          return Status(ErrorCode::kProtocol, "chunked framing: chunk too large");
        }
        pos = line_end + 2 + chunk_size + 2;
        if (chunk_size == 0) {
          // "0\r\n" is followed by the terminating "\r\n" (no chunk data).
          complete = pos <= text.size();
          break;
        }
        if (pos > text.size()) break;
      }
      if (!complete) return Status::ok();
      total = pos;
    } else if (auto cl = head->headers.get("Content-Length")) {
      std::size_t n = 0;
      auto [p, ec] = std::from_chars(cl->data(), cl->data() + cl->size(), n);
      if (ec != std::errc() || p != cl->data() + cl->size()) {
        return Status(ErrorCode::kProtocol, "bad Content-Length");
      }
      if (n > max_message_) {
        return Status(ErrorCode::kProtocol, "declared body exceeds size limit");
      }
      total = head->body_offset + n;
      if (buffer_.size() < total) return Status::ok();
    } else {
      total = head->body_offset;  // no body
    }

    complete_.emplace_back(buffer_.begin(),
                           buffer_.begin() + static_cast<std::ptrdiff_t>(total));
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(total));
  }
}

Bytes MessageFramer::take_message() {
  if (complete_.empty()) throw std::logic_error("MessageFramer: no message");
  Bytes msg = std::move(complete_.front());
  complete_.erase(complete_.begin());
  return msg;
}

}  // namespace globe::http
