// Capability-annotated mutex vocabulary for the whole project.
//
// globe::util::Mutex / RecursiveMutex wrap the standard mutexes as Clang
// thread-safety *capabilities*; LockGuard / UniqueLock are the scoped
// acquisitions; CondVar pairs with UniqueLock for condition waits.  Under
// GCC (or Clang without GLOBE_THREAD_SAFETY) everything compiles down to
// the std types with zero overhead; under -Werror=thread-safety every
// GUARDED_BY field access without the right lock is a compile error.
//
// Usage pattern:
//   class Registry {
//     mutable Mutex mutex_;
//     std::map<K, V> entries_ GLOBE_GUARDED_BY(mutex_);
//    public:
//     V get(K k) const {
//       LockGuard lock(mutex_);
//       return entries_.at(k);   // OK: lock held
//     }
//   };
//
// Condition waits use UniqueLock + an explicit predicate loop so the
// analysis can see the guarded reads happen under the lock:
//   UniqueLock lock(mutex_);
//   while (!ready_) cv_.wait(lock);
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace globe::util {

class GLOBE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GLOBE_ACQUIRE() { m_.lock(); }
  void unlock() GLOBE_RELEASE() { m_.unlock(); }
  bool try_lock() GLOBE_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class UniqueLock;
  std::mutex m_;
};

/// Reentrant capability: used only where a handler may legitimately re-enter
/// its own host's lock (SimNet per-host serialization).  Note the analysis
/// itself does not model reentrancy; recursive acquisition happens across
/// call boundaries it does not see, which is exactly the supported pattern.
class GLOBE_CAPABILITY("mutex") RecursiveMutex {
 public:
  RecursiveMutex() = default;
  RecursiveMutex(const RecursiveMutex&) = delete;
  RecursiveMutex& operator=(const RecursiveMutex&) = delete;

  void lock() GLOBE_ACQUIRE() { m_.lock(); }
  void unlock() GLOBE_RELEASE() { m_.unlock(); }

 private:
  std::recursive_mutex m_;
};

/// Scoped exclusive acquisition of a Mutex (std::lock_guard equivalent).
class GLOBE_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) GLOBE_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() GLOBE_RELEASE() { m_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

/// Scoped exclusive acquisition of a RecursiveMutex.
class GLOBE_SCOPED_CAPABILITY RecursiveLockGuard {
 public:
  explicit RecursiveLockGuard(RecursiveMutex& m) GLOBE_ACQUIRE(m) : m_(m) {
    m_.lock();
  }
  ~RecursiveLockGuard() GLOBE_RELEASE() { m_.unlock(); }

  RecursiveLockGuard(const RecursiveLockGuard&) = delete;
  RecursiveLockGuard& operator=(const RecursiveLockGuard&) = delete;

 private:
  RecursiveMutex& m_;
};

/// Scoped acquisition that a CondVar can temporarily release (the
/// std::unique_lock shape, restricted to what the analysis can follow).
class GLOBE_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) GLOBE_ACQUIRE(m) : lock_(m.m_) {}
  ~UniqueLock() GLOBE_RELEASE() = default;

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable over Mutex/UniqueLock.  Predicates are written as
/// explicit `while (!pred) cv.wait(lock);` loops at the call site so guarded
/// reads in the predicate are visibly under the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`, waits, and reacquires before returning.
  /// The caller keeps holding the capability from the analysis' point of
  /// view, which matches the predicate-loop usage pattern.
  GLOBE_BLOCKING void wait(UniqueLock& lock) { cv_.wait(lock.lock_); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace globe::util
