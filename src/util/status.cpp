#include "util/status.hpp"

namespace globe::util {

const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kProtocol: return "PROTOCOL";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kBadSignature: return "BAD_SIGNATURE";
    case ErrorCode::kHashMismatch: return "HASH_MISMATCH";
    case ErrorCode::kExpired: return "EXPIRED";
    case ErrorCode::kWrongElement: return "WRONG_ELEMENT";
    case ErrorCode::kOidMismatch: return "OID_MISMATCH";
    case ErrorCode::kUntrustedIssuer: return "UNTRUSTED_ISSUER";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out = error_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace globe::util
