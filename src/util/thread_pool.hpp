// Fixed-size worker pool used by the flash-crowd simulator and the live
// TCP object server.  Tasks are type-erased; submit() returns a future.
#pragma once

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/bounds_annotations.hpp"
#include "util/thread_annotations.hpp"

namespace globe::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a callable; the returned future yields its result (or rethrows
  /// its exception).  Throws std::runtime_error if the pool is shut down.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    enqueue([task]() { (*task)(); });
    return fut;
  }

  /// Blocks until every queued and running task completes.
  GLOBE_BLOCKING void wait_idle() GLOBE_EXCLUDES(mutex_);

  std::size_t size() const { return workers_.size(); }

 private:
  void enqueue(std::function<void()> fn) GLOBE_EXCLUDES(mutex_);
  void worker_loop() GLOBE_EXCLUDES(mutex_);

  Mutex mutex_;
  CondVar cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_ GLOBE_BOUNDED;
  std::size_t active_ GLOBE_GUARDED_BY(mutex_) = 0;
  bool stop_ GLOBE_GUARDED_BY(mutex_) = false;
};

}  // namespace globe::util
