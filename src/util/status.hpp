// Lightweight Status / Result<T> error-handling vocabulary.
//
// Protocol code (proxy, servers, naming, location) reports recoverable
// failures through Result<T> so a verification failure at one replica can be
// handled by falling back to another without exceptions crossing simulated
// "network" boundaries.  Programming errors still throw.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace globe::util {

/// Canonical error taxonomy for the whole system.  Verification-specific
/// codes mirror the checks of Fig. 3 in the paper.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kPermissionDenied,
  kUnavailable,        // transport/link failure
  kTimeout,
  kProtocol,           // malformed wire data
  kInternal,
  // --- security verification failures (paper §3.2.2 / Fig. 3) ---
  kBadSignature,       // integrity/identity certificate signature invalid
  kHashMismatch,       // element hash != certificate entry (authenticity)
  kExpired,            // outside validity interval (freshness)
  kWrongElement,       // served element name != requested (consistency)
  kOidMismatch,        // SHA-1(public key) != OID (self-certifying check)
  kUntrustedIssuer,    // identity certificate chain ends outside trust store
};

/// Human-readable name of an ErrorCode ("HASH_MISMATCH", ...).
const char* error_code_name(ErrorCode c);

/// A success-or-error value with an optional message.
class [[nodiscard]] Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "HASH_MISMATCH: element body does not match certificate".
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

/// Thrown by Result<T>::value() on error; carries the original Status.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status s)
      : std::runtime_error(s.to_string()), status_(std::move(s)) {}
  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Either a T or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {     // NOLINT(google-explicit-constructor)
    if (std::get<Status>(v_).is_ok()) {
      throw std::logic_error("Result constructed from OK status without value");
    }
  }
  Result(ErrorCode code, std::string message)
      : v_(Status(code, std::move(message))) {}

  bool is_ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return is_ok(); }

  /// Status of the result; Status::ok() when a value is present.
  Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(v_);
  }
  ErrorCode code() const {
    return is_ok() ? ErrorCode::kOk : std::get<Status>(v_).code();
  }

  /// Access the value; throws StatusError if this holds an error.
  T& value() & { check(); return std::get<T>(v_); }
  const T& value() const& { check(); return std::get<T>(v_); }
  T&& value() && { check(); return std::get<T>(std::move(v_)); }

  T value_or(T fallback) const {
    return is_ok() ? std::get<T>(v_) : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void check() const {
    if (!is_ok()) throw StatusError(std::get<Status>(v_));
  }
  std::variant<T, Status> v_;
};

}  // namespace globe::util
