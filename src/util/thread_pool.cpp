#include "util/thread_pool.hpp"

#include <stdexcept>

namespace globe::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace globe::util
