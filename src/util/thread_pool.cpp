#include "util/thread_pool.hpp"

#include <stdexcept>

namespace globe::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    LockGuard lock(mutex_);
    if (stop_) throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::wait_idle() {
  UniqueLock lock(mutex_);
  while (!(queue_.empty() && active_ == 0)) idle_cv_.wait(lock);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mutex_);
      while (!(stop_ || !queue_.empty())) cv_.wait(lock);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      LockGuard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace globe::util
