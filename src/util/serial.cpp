#include "util/serial.hpp"

namespace globe::util {

void Writer::u8(std::uint8_t v) { buf_.push_back(v); }

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void Writer::bytes(BytesView b) {
  u32(static_cast<std::uint32_t>(b.size()));
  raw(b);
}

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::raw(BytesView b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

void Reader::need(std::size_t n) const {
  if (remaining() < n) {
    throw SerialError("truncated message: need " + std::to_string(n) +
                      " bytes, have " + std::to_string(remaining()));
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(std::uint16_t{data_[pos_]} << 8 |
                                               data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = std::uint32_t{data_[pos_]} << 24 |
                    std::uint32_t{data_[pos_ + 1]} << 16 |
                    std::uint32_t{data_[pos_ + 2]} << 8 | data_[pos_ + 3];
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  std::uint64_t hi = u32();
  std::uint64_t lo = u32();
  return hi << 32 | lo;
}

Bytes Reader::bytes() {
  std::uint32_t n = u32();
  return raw(n);
}

std::string Reader::str() {
  std::uint32_t n = u32();
  need(n);
  std::string s(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return s;
}

Bytes Reader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::uint32_t checked_count(std::uint32_t n, std::uint32_t max_n) {
  if (n > max_n) {
    throw SerialError("wire count " + std::to_string(n) +
                      " exceeds protocol ceiling " + std::to_string(max_n));
  }
  return n;
}

void Reader::expect_end() const {
  if (!at_end()) {
    throw SerialError("trailing garbage: " + std::to_string(remaining()) +
                      " bytes after message end");
  }
}

}  // namespace globe::util
