#include "util/log.hpp"

#include <atomic>
#include <iostream>

#include "util/mutex.hpp"

namespace globe::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
Mutex g_mutex;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_line(LogLevel level, const std::string& component, const std::string& message) {
  LockGuard lock(g_mutex);
  std::cerr << "[" << level_name(level) << "] " << component << ": " << message << "\n";
}

}  // namespace globe::util
