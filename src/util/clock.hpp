// Time vocabulary shared by the simulator and the live transports.
//
// All protocol timestamps (certificate validity intervals, cache TTLs) are
// expressed as SimTime so the same verification code runs unchanged against
// the virtual clock in benchmarks and the wall clock in live examples.
#pragma once

#include <chrono>
#include <cstdint>

namespace globe::util {

/// Nanoseconds since an arbitrary epoch (simulation start, or Unix epoch for
/// the wall clock).  64-bit nanoseconds cover ~584 years.
using SimTime = std::uint64_t;
using SimDuration = std::uint64_t;

constexpr SimDuration kMicrosecond = 1'000;
constexpr SimDuration kMillisecond = 1'000'000;
constexpr SimDuration kSecond = 1'000'000'000;

constexpr SimDuration millis(std::uint64_t ms) { return ms * kMillisecond; }
constexpr SimDuration micros(std::uint64_t us) { return us * kMicrosecond; }
constexpr SimDuration seconds(std::uint64_t s) { return s * kSecond; }

constexpr double to_millis(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Abstract time source.  Verification code asks a Clock for "now" when
/// checking certificate freshness so tests can freeze or advance time.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual SimTime now() const = 0;
};

/// Wall clock (Unix epoch nanoseconds).
class RealClock final : public Clock {
 public:
  SimTime now() const override {
    return static_cast<SimTime>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
  }
};

/// Manually-driven clock for unit tests.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(SimTime start = 0) : now_(start) {}
  SimTime now() const override { return now_; }
  void advance(SimDuration d) { now_ += d; }
  void set(SimTime t) { now_ = t; }

 private:
  SimTime now_;
};

}  // namespace globe::util
