// Minimal thread-safe leveled logger.
//
// Logging defaults to kWarn so tests and benchmarks stay quiet; examples
// raise the level to narrate the protocol steps of Fig. 3.
#pragma once

#include <sstream>
#include <string>

namespace globe::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line ("[level] component: message") to stderr under a mutex.
void log_line(LogLevel level, const std::string& component, const std::string& message);

namespace detail {
inline void format_into(std::ostringstream&) {}
template <typename T, typename... Rest>
void format_into(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  format_into(os, rest...);
}
}  // namespace detail

template <typename... Args>
void logf(LogLevel level, const std::string& component, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log_line(level, component, os.str());
}

#define GLOBE_LOG_DEBUG(component, ...) \
  ::globe::util::logf(::globe::util::LogLevel::kDebug, component, __VA_ARGS__)
#define GLOBE_LOG_INFO(component, ...) \
  ::globe::util::logf(::globe::util::LogLevel::kInfo, component, __VA_ARGS__)
#define GLOBE_LOG_WARN(component, ...) \
  ::globe::util::logf(::globe::util::LogLevel::kWarn, component, __VA_ARGS__)
#define GLOBE_LOG_ERROR(component, ...) \
  ::globe::util::logf(::globe::util::LogLevel::kError, component, __VA_ARGS__)

}  // namespace globe::util
