// Non-cryptographic randomness for workload generation, plus an interface
// the crypto layer's HMAC-DRBG implements for key generation.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace globe::util {

/// Source of random bytes.  Cryptographic implementations live in
/// crypto/drbg.hpp; this interface keeps util free of crypto dependencies.
class RandomSource {
 public:
  virtual ~RandomSource() = default;
  virtual void fill(Bytes& out, std::size_t n) = 0;

  Bytes bytes(std::size_t n) {
    Bytes b;
    fill(b, n);
    return b;
  }
  std::uint64_t u64();
};

/// splitmix64 — fast deterministic PRNG for workload/trace generation.
/// NOT for keys or nonces.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

  /// Uniform in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform double in [0, 1).
  double next_double();

 private:
  std::uint64_t state_;
};

/// Samples ranks from a Zipf(s) distribution over {0, ..., n-1}; rank 0 is
/// the most popular item.  Used by the flash-crowd / CDN workload generators.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent, std::uint64_t seed);
  std::size_t sample();
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  SplitMix64 rng_;
};

}  // namespace globe::util
