#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace globe::util {

std::uint64_t RandomSource::u64() {
  Bytes b = bytes(8);
  std::uint64_t v = 0;
  for (std::uint8_t byte : b) v = v << 8 | byte;
  return v;
}

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t SplitMix64::below(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("SplitMix64::below(0)");
  // Rejection sampling to avoid modulo bias.
  std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return v % n;
}

double SplitMix64::next_double() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent, std::uint64_t seed)
    : rng_(seed) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: empty support");
  cdf_.resize(n);
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::size_t ZipfSampler::sample() {
  double u = rng_.next_double();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace globe::util
