// Clang Thread Safety Analysis annotation macros.
//
// These expand to the `thread_safety` attribute family under Clang (where
// `cmake -DGLOBE_THREAD_SAFETY=ON` turns the analysis into a hard error via
// -Werror=thread-safety) and to nothing under every other compiler, so the
// annotated tree builds unchanged with GCC.  Terminology follows the
// capability model of the analysis: a Mutex is a *capability*, GUARDED_BY
// declares which capability protects a field, REQUIRES declares that a
// function may only be called while holding one.
//
// See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html and the
// annotated capability types in util/mutex.hpp.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define GLOBE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef GLOBE_THREAD_ANNOTATION
#define GLOBE_THREAD_ANNOTATION(x)  // expands to nothing outside Clang
#endif

/// Declares a type to be a capability (lockable).  `x` names it in
/// diagnostics, e.g. GLOBE_CAPABILITY("mutex").
#define GLOBE_CAPABILITY(x) GLOBE_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor (LockGuard, UniqueLock).
#define GLOBE_SCOPED_CAPABILITY GLOBE_THREAD_ANNOTATION(scoped_lockable)

/// Field is protected by the given capability: all reads require at least a
/// shared hold, all writes an exclusive one.
#define GLOBE_GUARDED_BY(x) GLOBE_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is protected by the capability.
#define GLOBE_PT_GUARDED_BY(x) GLOBE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (and must not already hold it).
#define GLOBE_ACQUIRE(...) GLOBE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (and must hold it on entry).
#define GLOBE_RELEASE(...) GLOBE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability when it returns the given value.
#define GLOBE_TRY_ACQUIRE(...) \
  GLOBE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability exclusively for the duration of the call
/// ("_locked" private methods).
#define GLOBE_REQUIRES(...) GLOBE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must hold at least a shared (reader) hold on the capability.
#define GLOBE_REQUIRES_SHARED(...) \
  GLOBE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (prevents self-deadlock on
/// non-reentrant mutexes).
#define GLOBE_EXCLUDES(...) GLOBE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations, checked when both mutexes are annotated.
#define GLOBE_ACQUIRED_BEFORE(...) GLOBE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define GLOBE_ACQUIRED_AFTER(...) GLOBE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returns a reference to the named capability (accessor pattern).
#define GLOBE_RETURN_CAPABILITY(x) GLOBE_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot model (init/teardown paths,
/// conditionally-held locks).  Use sparingly and justify at the use site.
#define GLOBE_NO_THREAD_SAFETY_ANALYSIS \
  GLOBE_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Runtime-checked assertion that the capability is held (trusted by the
/// analysis from this point on).
#define GLOBE_ASSERT_CAPABILITY(x) GLOBE_THREAD_ANNOTATION(assert_capability(x))

// ---------------------------------------------------------------------------
// Blocking annotation (consumed by tools/conc_check.py, DESIGN.md §13).
//
// Marks a function that can park the calling thread for an unbounded time:
// transport sends, RPC round trips, condition-variable waits, coalesced-miss
// waits, sleeps.  conc_check.py propagates blocking-ness transitively through
// the call graph and reports any path that reaches a blocking call while a
// non-exempt mutex is held (the one modeled exemption is a condvar wait on
// its own lock).  Unlike the capability macros above, this expands under ANY
// clang — it is a plain `annotate` attribute, not a thread-safety one — so
// the taint/conc analysis lanes see it even without -DGLOBE_THREAD_SAFETY.

#if defined(__clang__)
#define GLOBE_BLOCKING [[clang::annotate("globe::blocking")]]
#else
#define GLOBE_BLOCKING
#endif
