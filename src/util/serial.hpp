// Binary wire codec used by every GlobeDoc protocol message.
//
// All integers are big-endian fixed width.  Variable-size payloads are
// length-prefixed (u32).  Reader performs strict bounds checking and throws
// SerialError on truncated or oversized input, so malformed data from an
// untrusted replica can never read out of bounds.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/bounds_annotations.hpp"
#include "util/bytes.hpp"

namespace globe::util {

class SerialError : public std::runtime_error {
 public:
  explicit SerialError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends encoded fields to an internal buffer.
class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Length-prefixed byte string (u32 length + raw bytes).
  void bytes(BytesView b);
  /// Length-prefixed UTF-8 string.
  void str(std::string_view s);
  /// Raw bytes with NO length prefix (fixed-size fields such as OIDs).
  void raw(BytesView b);

  const Bytes& buffer() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Consumes fields from a read-only view.  Does not own the data.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  /// Length-prefixed byte string; rejects lengths beyond the remainder.
  Bytes bytes();
  std::string str();
  /// Exactly n raw bytes.
  Bytes raw(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return remaining() == 0; }
  /// Throws SerialError unless the whole input has been consumed.
  void expect_end() const;

 private:
  /// Rejects any read of n bytes beyond what the input actually holds, so
  /// every Reader allocation is bounded by the input size.
  GLOBE_LENGTH_GUARD void need(std::size_t n) const;
  BytesView data_;
  std::size_t pos_ = 0;
};

/// Validates a wire-decoded element count against a protocol ceiling.
/// Throws SerialError (mapped to a protocol error by every parse path) when
/// the count exceeds max_n — the message is rejected outright, never
/// silently truncated, and nothing is allocated for it.
GLOBE_LENGTH_GUARD std::uint32_t checked_count(std::uint32_t n,
                                               std::uint32_t max_n);

}  // namespace globe::util
