// Trust-boundary taint annotations (DESIGN.md §9).
//
// The paper's security argument (§3) is a single dataflow invariant: bytes
// obtained from an untrusted replica, the Location Service, or the wire must
// pass authenticity/freshness/consistency verification before they are
// cached, served to a client, installed as replica state, or used to dial a
// contact address.  These macros mark the three roles of that invariant in
// the source so `tools/taint_check.py` can prove the path-level property
// over the whole call graph:
//
//   GLOBE_UNTRUSTED     on a function: its return value carries taint (the
//                       bytes crossed a trust boundary on the way in, e.g.
//                       an RPC reply payload).  On a parameter: the value is
//                       untrusted *input* — tainted from function entry
//                       (e.g. a server handler's wire payload).
//
//   GLOBE_SANITIZER     on a function: calling it verifies its arguments
//                       (and the object it is invoked on); afterwards those
//                       values — and the call's result — are trusted.  Every
//                       sanitizer is [[nodiscard]] or returns Status/Result
//                       (enforced by tools/lint.py), so "called but ignored"
//                       is caught by the compiler, not by the taint pass.
//
//   GLOBE_TRUSTED_SINK  on a parameter: tainted data must never be passed as
//                       that argument (the state argument of a replica-state
//                       install, the endpoint argument of a dial, the element
//                       argument of a cache insert).  On a function: the
//                       *return value* is the sink — the body must never
//                       return tainted data (e.g. the proxy's HTTP response
//                       handed to the client).
//
// Under Clang the macros expand to [[clang::annotate]] attributes, so the
// libclang frontend of tools/taint_check.py sees them in the AST; under
// other compilers they expand to nothing and the analyzer's fallback
// frontend recognizes the macro tokens directly in the source text.  Either
// way they impose zero runtime cost.
#pragma once

#if defined(__clang__)
#define GLOBE_UNTRUSTED [[clang::annotate("globe::untrusted")]]
#define GLOBE_SANITIZER [[clang::annotate("globe::sanitizer")]]
#define GLOBE_TRUSTED_SINK [[clang::annotate("globe::trusted_sink")]]
#else
#define GLOBE_UNTRUSTED
#define GLOBE_SANITIZER
#define GLOBE_TRUSTED_SINK
#endif
