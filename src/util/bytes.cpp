#include "util/bytes.hpp"

#include <array>
#include <stdexcept>

namespace globe::util {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(BytesView b) {
  return std::string(b.begin(), b.end());
}

std::string hex_encode(BytesView b) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t byte : b) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0x0f]);
  }
  return out;
}

namespace {

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Bytes hex_decode(std::string_view s) {
  if (s.size() % 2 != 0) {
    throw std::invalid_argument("hex_decode: odd-length input");
  }
  Bytes out;
  out.reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2) {
    int hi = hex_nibble(s[i]);
    int lo = hex_nibble(s[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("hex_decode: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

namespace {

constexpr char kB64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<std::int8_t, 256> make_b64_reverse() {
  std::array<std::int8_t, 256> rev{};
  rev.fill(-1);
  for (int i = 0; i < 64; ++i) {
    rev[static_cast<unsigned char>(kB64Alphabet[i])] = static_cast<std::int8_t>(i);
  }
  return rev;
}

const std::array<std::int8_t, 256> kB64Reverse = make_b64_reverse();

}  // namespace

std::string base64_encode(BytesView b) {
  std::string out;
  out.reserve((b.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= b.size(); i += 3) {
    std::uint32_t v = std::uint32_t{b[i]} << 16 | std::uint32_t{b[i + 1]} << 8 | b[i + 2];
    out.push_back(kB64Alphabet[(v >> 18) & 63]);
    out.push_back(kB64Alphabet[(v >> 12) & 63]);
    out.push_back(kB64Alphabet[(v >> 6) & 63]);
    out.push_back(kB64Alphabet[v & 63]);
  }
  std::size_t rem = b.size() - i;
  if (rem == 1) {
    std::uint32_t v = std::uint32_t{b[i]} << 16;
    out.push_back(kB64Alphabet[(v >> 18) & 63]);
    out.push_back(kB64Alphabet[(v >> 12) & 63]);
    out.push_back('=');
    out.push_back('=');
  } else if (rem == 2) {
    std::uint32_t v = std::uint32_t{b[i]} << 16 | std::uint32_t{b[i + 1]} << 8;
    out.push_back(kB64Alphabet[(v >> 18) & 63]);
    out.push_back(kB64Alphabet[(v >> 12) & 63]);
    out.push_back(kB64Alphabet[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

Bytes base64_decode(std::string_view s) {
  // Strip padding.
  while (!s.empty() && s.back() == '=') s.remove_suffix(1);
  Bytes out;
  out.reserve(s.size() * 3 / 4 + 3);
  std::uint32_t acc = 0;
  int bits = 0;
  for (char c : s) {
    std::int8_t v = kB64Reverse[static_cast<unsigned char>(c)];
    if (v < 0) {
      throw std::invalid_argument("base64_decode: invalid character");
    }
    acc = acc << 6 | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xff));
    }
  }
  return out;
}

bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

Bytes concat(std::initializer_list<BytesView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) append(out, p);
  return out;
}

}  // namespace globe::util
