// Byte-buffer primitives shared by every GlobeDoc subsystem.
//
// `Bytes` is the universal owned buffer type; views are passed as
// `std::span<const std::uint8_t>` (aliased to `BytesView`).  Hex and base64
// codecs live here because wire formats, OIDs and fingerprints all need them.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace globe::util {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Builds an owned buffer from a string's raw bytes.
Bytes to_bytes(std::string_view s);

/// Interprets a buffer as UTF-8/ASCII text (no validation).
std::string to_string(BytesView b);

/// Lower-case hex encoding ("deadbeef").
std::string hex_encode(BytesView b);

/// Decodes hex (either case). Throws std::invalid_argument on bad input
/// (odd length or non-hex character).
Bytes hex_decode(std::string_view s);

/// Standard base64 with padding (RFC 4648).
std::string base64_encode(BytesView b);

/// Decodes base64; tolerates missing padding. Throws std::invalid_argument
/// on characters outside the alphabet.
Bytes base64_decode(std::string_view s);

/// Constant-time equality: timing does not depend on where buffers differ.
/// (Length mismatch returns false immediately; lengths are public here.)
bool ct_equal(BytesView a, BytesView b);

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Concatenates any number of buffers.
Bytes concat(std::initializer_list<BytesView> parts);

}  // namespace globe::util
