// Resource-bound annotations (DESIGN.md §14).
//
// The paper treats replicas, the Location Service and the naming service as
// untrusted, so every length or count field decoded off the wire is
// attacker-controlled.  Two macros let tools/bounds_check.py prove the two
// resource invariants over the whole call graph:
//
//   GLOBE_LENGTH_GUARD  on a function: calling it validates its size/count
//                       arguments against an enforced ceiling (rejecting —
//                       not silently clamping — anything beyond it); after
//                       the call those values, and the call's result, are
//                       safe to pass to an allocation-sized call
//                       (resize/reserve/assign/count-construction).  The
//                       canonical guards are util::checked_count (explicit
//                       protocol ceiling) and util::Reader::need (bounds a
//                       length against the bytes actually present in the
//                       input).
//
//   GLOBE_BOUNDED       on a container data member of a long-lived class
//                       (servers, caches, replication and observability
//                       state): declares that every growth path
//                       (push_back/emplace/insert/append) is paired with an
//                       enforced capacity check or eviction.  Every
//                       GLOBE_BOUNDED member must be ranked with its ceiling
//                       in tools/capacity_bounds.txt (tools/lint.py enforces
//                       the registry and the annotations agree both ways).
//
// Under Clang the macros expand to [[clang::annotate]] attributes read by
// the libclang frontend of tools/bounds_check.py; under other compilers they
// expand to nothing and the analyzer's lite frontend recognizes the macro
// tokens directly in the source text.  Zero runtime cost either way.
#pragma once

#if defined(__clang__)
#define GLOBE_LENGTH_GUARD [[clang::annotate("globe::length_guard")]]
#define GLOBE_BOUNDED [[clang::annotate("globe::bounded")]]
#else
#define GLOBE_LENGTH_GUARD
#define GLOBE_BOUNDED
#endif
