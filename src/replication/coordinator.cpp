#include "replication/coordinator.hpp"

#include <stdexcept>

#include "obs/log.hpp"
#include "util/log.hpp"

namespace globe::replication {

using util::Status;

DynamicReplicator::DynamicReplicator(globedoc::ObjectOwner& owner,
                                     net::Transport& transport,
                                     std::vector<Region> regions, Config config)
    : owner_(&owner), transport_(&transport), config_(config) {
  for (auto& region : regions) {
    RegionState state;
    state.config = std::move(region);
    regions_.emplace(state.config.name, std::move(state));
  }
  auto* registry = config_.registry != nullptr ? config_.registry
                                               : &obs::global_registry();
  replicas_created_ = &registry->counter("replication.replicas_created");
  replicas_retired_ = &registry->counter("replication.replicas_retired");
  replica_gauge_ = &registry->gauge("replication.dynamic_replicas");
}

void DynamicReplicator::prune(RegionState& state, util::SimTime now) const {
  util::SimTime cutoff = now > config_.window ? now - config_.window : 0;
  auto it = state.recent.begin();
  while (it != state.recent.end() && *it < cutoff) ++it;
  state.recent.erase(state.recent.begin(), it);
}

void DynamicReplicator::record_access(const std::string& region, util::SimTime now) {
  auto it = regions_.find(region);
  if (it == regions_.end()) {
    throw std::invalid_argument("unknown region: " + region);
  }
  it->second.recent.push_back(now);
  prune(it->second, now);
}

double DynamicReplicator::rate(const std::string& region, util::SimTime now) const {
  auto it = regions_.find(region);
  if (it == regions_.end()) return 0;
  // Count accesses still inside the window (const: no pruning).
  util::SimTime cutoff = now > config_.window ? now - config_.window : 0;
  std::size_t count = 0;
  for (util::SimTime t : it->second.recent) {
    if (t >= cutoff) ++count;
  }
  return static_cast<double>(count) / util::to_seconds(config_.window);
}

bool DynamicReplicator::has_replica(const std::string& region) const {
  auto it = regions_.find(region);
  return it != regions_.end() && it->second.replicated;
}

std::size_t DynamicReplicator::replica_count() const {
  std::size_t n = 0;
  for (const auto& [name, state] : regions_) {
    if (state.replicated) ++n;
  }
  return n;
}

Status DynamicReplicator::rebalance(util::SimTime now) {
  for (auto& [name, state] : regions_) {
    prune(state, now);
    double rps = static_cast<double>(state.recent.size()) /
                 util::to_seconds(config_.window);

    if (!state.replicated && rps >= config_.replicate_above_rps) {
      globedoc::ReplicaState snapshot =
          owner_->sign_and_snapshot(now, config_.certificate_ttl);
      Status created = owner_->publish_replica(*transport_,
                                               state.config.object_server,
                                               state.config.location_site, snapshot);
      if (!created.is_ok()) return created;
      state.replicated = true;
      replicas_created_->inc();
      obs::global_event_log().emit(
          obs::EventLevel::kInfo, "replication", "replica_created",
          name + " at " + std::to_string(rps) + " rps", now);
    } else if (state.replicated && rps <= config_.retire_below_rps) {
      Status removed = owner_->unpublish_replica(
          *transport_, state.config.object_server, state.config.location_site);
      if (!removed.is_ok()) return removed;
      state.replicated = false;
      replicas_retired_->inc();
      obs::global_event_log().emit(
          obs::EventLevel::kInfo, "replication", "replica_retired",
          name + " at " + std::to_string(rps) + " rps", now);
    }
  }
  replica_gauge_->set(static_cast<double>(replica_count()));
  return Status::ok();
}

}  // namespace globe::replication
