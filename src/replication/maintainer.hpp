// Replica freshness maintenance: a hosting server keeps its replicas'
// certificates from expiring by pulling refreshed state from peer sources
// before the validity window closes — no owner involvement per replica
// (the owner only refreshes its master copy).
//
// Combines S19 (peer-to-peer pull) with the paper's freshness model: a
// replica whose certificate lapsed is useless (clients reject it), so a
// production object server re-syncs proactively.
#pragma once

#include <map>
#include <vector>

#include "globedoc/server.hpp"
#include "obs/metrics.hpp"
#include "replication/refresher.hpp"

namespace globe::replication {

class ReplicaMaintainer {
 public:
  struct Config {
    /// Refresh when the earliest certificate entry expires within this.
    util::SimDuration refresh_margin = util::seconds(300);
    /// Registry for the replication.maintainer.* series; nullptr means the
    /// process-wide obs::global_registry().
    obs::MetricsRegistry* registry = nullptr;
  };

  ReplicaMaintainer(globedoc::ObjectServer& server, net::Transport& transport,
                    Config config);
  ReplicaMaintainer(globedoc::ObjectServer& server, net::Transport& transport)
      : ReplicaMaintainer(server, transport, Config{}) {}

  /// Registers a replica to maintain: where to pull it from (tried in
  /// order) and the currently hosted state's version + earliest expiry.
  void track(const globedoc::Oid& oid, std::vector<net::Endpoint> sources,
             std::uint64_t version, util::SimTime earliest_expiry);
  void untrack(const globedoc::Oid& oid);
  std::size_t tracked() const { return entries_.size(); }

  struct TickReport {
    std::size_t checked = 0;
    std::size_t refreshed = 0;
    std::size_t failed = 0;
  };

  /// Runs one maintenance pass at time `now`: every tracked replica whose
  /// window ends within refresh_margin is re-pulled from its sources.
  /// A replica whose every source fails is counted in `failed` and retried
  /// on the next tick.
  TickReport tick(util::SimTime now);

 private:
  struct Entry {
    std::vector<net::Endpoint> sources;
    std::uint64_t version = 0;
    util::SimTime earliest_expiry = 0;
  };

  globedoc::ObjectServer* server_;
  net::Transport* transport_;
  Config config_;
  std::map<globedoc::Oid, Entry> entries_;
  obs::Counter* checked_counter_;
  obs::Counter* refreshed_counter_;
  // replication.maintainer.failed split by reason= so operators can tell a
  // partitioned source (transport/timeout) from a hostile or corrupt one
  // (verification) straight from /metrics.
  obs::Counter* failed_verification_;
  obs::Counter* failed_transport_;
  obs::Counter* failed_timeout_;
};

}  // namespace globe::replication
