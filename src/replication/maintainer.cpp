#include "replication/maintainer.hpp"

#include <algorithm>

#include "obs/log.hpp"
#include "util/log.hpp"

namespace globe::replication {

namespace {

/// Buckets a refresh failure for the reason= label: did the wire fail, did
/// it take too long, or did a reachable source serve unverifiable state?
const char* failure_reason(util::ErrorCode code) {
  switch (code) {
    case util::ErrorCode::kTimeout: return "timeout";
    case util::ErrorCode::kUnavailable: return "transport";
    default: return "verification";
  }
}

}  // namespace

ReplicaMaintainer::ReplicaMaintainer(globedoc::ObjectServer& server,
                                     net::Transport& transport, Config config)
    : server_(&server), transport_(&transport), config_(config) {
  auto* registry = config_.registry != nullptr ? config_.registry
                                               : &obs::global_registry();
  checked_counter_ = &registry->counter("replication.maintainer.checked");
  refreshed_counter_ = &registry->counter("replication.maintainer.refreshed");
  failed_verification_ = &registry->counter("replication.maintainer.failed",
                                            {{"reason", "verification"}});
  failed_transport_ = &registry->counter("replication.maintainer.failed",
                                         {{"reason", "transport"}});
  failed_timeout_ = &registry->counter("replication.maintainer.failed",
                                       {{"reason", "timeout"}});
}

void ReplicaMaintainer::track(const globedoc::Oid& oid,
                              std::vector<net::Endpoint> sources,
                              std::uint64_t version,
                              util::SimTime earliest_expiry) {
  entries_[oid] = Entry{std::move(sources), version, earliest_expiry};
}

void ReplicaMaintainer::untrack(const globedoc::Oid& oid) { entries_.erase(oid); }

ReplicaMaintainer::TickReport ReplicaMaintainer::tick(util::SimTime now) {
  TickReport report;
  for (auto& [oid, entry] : entries_) {
    ++report.checked;
    if (entry.earliest_expiry > now + config_.refresh_margin) continue;

    bool refreshed = false;
    util::Status last_failure = util::Status::ok();
    for (const auto& source : entry.sources) {
      // Pull accepts any strictly newer, fully verified state.  Passing
      // version-1 tolerates sources at the same version re-signed with a
      // fresh window — re-installing an equal version is the refresh case.
      auto result = pull_replica(*transport_, source, oid, *server_,
                                 entry.version == 0 ? 0 : entry.version - 1);
      if (result.is_ok()) {
        entry.version = result->version;
        entry.earliest_expiry = result->earliest_expiry;
        refreshed = true;
        ++report.refreshed;
        GLOBE_LOG_INFO("maintainer", "refreshed ", oid.to_hex(), " to v",
                       result->version, " from ", source.to_string());
        break;
      }
      last_failure = result.status();
      GLOBE_LOG_INFO("maintainer", "source ", source.to_string(),
                     " failed: ", result.status().to_string());
    }
    if (!refreshed) {
      ++report.failed;
      const char* reason = failure_reason(last_failure.code());
      switch (last_failure.code()) {
        case util::ErrorCode::kTimeout: failed_timeout_->inc(); break;
        case util::ErrorCode::kUnavailable: failed_transport_->inc(); break;
        default: failed_verification_->inc(); break;
      }
      // The record joins whatever trace is active on this thread (a bench
      // or demo tick span), so a failed refresh is debuggable from /tracez.
      obs::global_event_log().emit(
          obs::EventLevel::kWarn, "replication", "refresh_failed",
          oid.to_hex() + " reason=" + reason + ": " +
              last_failure.to_string(),
          now);
    }
  }
  checked_counter_->inc(report.checked);
  refreshed_counter_->inc(report.refreshed);
  return report;
}

}  // namespace globe::replication
