#include "replication/maintainer.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace globe::replication {

ReplicaMaintainer::ReplicaMaintainer(globedoc::ObjectServer& server,
                                     net::Transport& transport, Config config)
    : server_(&server), transport_(&transport), config_(config) {
  auto* registry = config_.registry != nullptr ? config_.registry
                                               : &obs::global_registry();
  checked_counter_ = &registry->counter("replication.maintainer.checked");
  refreshed_counter_ = &registry->counter("replication.maintainer.refreshed");
  failed_counter_ = &registry->counter("replication.maintainer.failed");
}

void ReplicaMaintainer::track(const globedoc::Oid& oid,
                              std::vector<net::Endpoint> sources,
                              std::uint64_t version,
                              util::SimTime earliest_expiry) {
  entries_[oid] = Entry{std::move(sources), version, earliest_expiry};
}

void ReplicaMaintainer::untrack(const globedoc::Oid& oid) { entries_.erase(oid); }

ReplicaMaintainer::TickReport ReplicaMaintainer::tick(util::SimTime now) {
  TickReport report;
  for (auto& [oid, entry] : entries_) {
    ++report.checked;
    if (entry.earliest_expiry > now + config_.refresh_margin) continue;

    bool refreshed = false;
    for (const auto& source : entry.sources) {
      // Pull accepts any strictly newer, fully verified state.  Passing
      // version-1 tolerates sources at the same version re-signed with a
      // fresh window — re-installing an equal version is the refresh case.
      auto result = pull_replica(*transport_, source, oid, *server_,
                                 entry.version == 0 ? 0 : entry.version - 1);
      if (result.is_ok()) {
        entry.version = result->version;
        entry.earliest_expiry = result->earliest_expiry;
        refreshed = true;
        ++report.refreshed;
        GLOBE_LOG_INFO("maintainer", "refreshed ", oid.to_hex(), " to v",
                       result->version, " from ", source.to_string());
        break;
      }
      GLOBE_LOG_INFO("maintainer", "source ", source.to_string(),
                     " failed: ", result.status().to_string());
    }
    if (!refreshed) ++report.failed;
  }
  checked_counter_->inc(report.checked);
  refreshed_counter_->inc(report.refreshed);
  failed_counter_->inc(report.failed);
  return report;
}

}  // namespace globe::replication
