// Workload generation: access traces for documents across regions,
// including the flash-crowd pattern that motivates the paper (§1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/clock.hpp"
#include "util/rng.hpp"

namespace globe::replication {

struct Access {
  util::SimTime time = 0;
  std::uint32_t region = 0;
  std::uint32_t document = 0;
};

struct TraceConfig {
  std::uint32_t documents = 1;
  std::uint32_t regions = 3;
  util::SimDuration duration = util::seconds(3600);
  double accesses_per_second = 1.0;   // aggregate Poisson rate
  double doc_zipf_exponent = 0.8;     // popularity skew across documents
  std::vector<double> region_weights; // defaults to uniform
  std::uint64_t seed = 1;
};

/// Poisson arrivals; document sampled Zipf, region sampled by weight.
std::vector<Access> generate_trace(const TraceConfig& config);

struct FlashCrowdConfig {
  std::uint32_t document = 0;      // the suddenly-popular document
  std::uint32_t hot_region = 0;    // where the crowd comes from
  util::SimTime start = util::seconds(600);
  util::SimDuration ramp = util::seconds(120);    // rate ramps linearly
  util::SimDuration hold = util::seconds(600);    // plateau
  double peak_multiplier = 50.0;   // peak rate vs base rate
};

/// Base trace plus a flash crowd on one document from one region.
/// The returned trace is sorted by time.
std::vector<Access> generate_flash_crowd(const TraceConfig& base,
                                         const FlashCrowdConfig& crowd);

/// Deterministic update schedule for a document (every `interval`).
std::vector<util::SimTime> update_schedule(util::SimDuration duration,
                                           util::SimDuration interval);

/// Accesses of one document only.
std::vector<Access> filter_document(const std::vector<Access>& trace,
                                    std::uint32_t document);

}  // namespace globe::replication
