// Per-document replication policies and the trace-driven evaluator used to
// select among them — the methodology of Pierre et al. (paper ref [13]),
// which GlobeDoc's per-object replication policies build on (paper §2).
//
// Each policy is evaluated against a document's access trace and update
// schedule over a region model, yielding three costs: client latency, WAN
// bandwidth, and staleness.  The adaptive selector picks, per document, the
// policy minimizing a weighted sum — reproducing [13]'s finding that
// per-document selection beats any single global policy.
#pragma once

#include <string>
#include <vector>

#include "replication/trace.hpp"

namespace globe::replication {

enum class PolicyKind : std::uint8_t {
  kNoReplication,      // all requests to the origin server
  kTtlCache,           // per-region cache with a fixed TTL
  kFullReplication,    // a replica in every region, pushed on update
  kAdaptive,           // per-document best of the above
};

const char* policy_name(PolicyKind kind);

/// Network summary per region (client's view).
struct RegionModel {
  double local_rtt_ms = 2.0;       // client -> in-region replica/cache
  double origin_rtt_ms = 90.0;     // client -> origin
  double origin_bandwidth = 1e6;   // bytes/s on the WAN path
};

struct DocumentProfile {
  std::size_t size_bytes = 10'000;
  std::vector<Access> accesses;          // this document only, time-sorted
  std::vector<util::SimTime> updates;    // times the owner changed content
};

struct PolicyCost {
  PolicyKind kind = PolicyKind::kNoReplication;
  double total_latency_ms = 0;   // sum over accesses
  double mean_latency_ms = 0;
  double wan_bytes = 0;          // origin <-> region transfers
  std::size_t stale_accesses = 0;  // served an outdated copy
  std::size_t accesses = 0;

  /// Weighted aggregate used for selection ([13] uses the same structure).
  double weighted(double w_latency, double w_bandwidth, double w_staleness) const;
};

struct EvaluatorConfig {
  util::SimDuration cache_ttl = util::seconds(300);
  std::uint32_t regions = 3;
};

/// Evaluates one concrete policy over one document's trace.
PolicyCost evaluate_policy(PolicyKind kind, const DocumentProfile& doc,
                           const RegionModel& region, const EvaluatorConfig& config);

struct SelectionWeights {
  double latency = 1.0;
  double bandwidth = 0.0001;  // per byte, roughly commensurate with ms
  double staleness = 50.0;    // per stale access
};

/// Per-document adaptive choice: evaluates the concrete policies and
/// returns the cheapest (the `kAdaptive` strategy of [13]).
PolicyCost select_best_policy(const DocumentProfile& doc, const RegionModel& region,
                              const EvaluatorConfig& config,
                              const SelectionWeights& weights);

}  // namespace globe::replication
