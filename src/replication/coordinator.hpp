// Dynamic replication coordinator: the operational piece that watches
// per-region demand and places/retires replicas on object servers through
// the authenticated admin interface (paper §2: Globe object servers accept
// replica-creation requests from other servers/owners, "in this way we can
// support dynamic replication algorithms").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "globedoc/owner.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "util/bounds_annotations.hpp"

namespace globe::replication {

class DynamicReplicator {
 public:
  struct Region {
    std::string name;
    net::Endpoint object_server;   // where a replica can be hosted
    net::Endpoint location_site;   // where its address is registered
  };

  struct Config {
    /// Replicate into a region once its rate exceeds this (accesses/s over
    /// the sliding window).
    double replicate_above_rps = 5.0;
    /// Retire a dynamic replica when the rate falls below this.
    double retire_below_rps = 0.5;
    util::SimDuration window = util::seconds(60);
    util::SimDuration certificate_ttl = util::seconds(3600);
    /// Registry for the replication.* series; nullptr means the
    /// process-wide obs::global_registry().
    obs::MetricsRegistry* registry = nullptr;
  };

  DynamicReplicator(globedoc::ObjectOwner& owner, net::Transport& transport,
                    std::vector<Region> regions, Config config);

  /// Feeds one observed access from `region` at time `now`.
  void record_access(const std::string& region, util::SimTime now);

  /// Applies the policy: creates replicas in hot regions, retires them in
  /// cold ones.  Call periodically (or after batches of record_access).
  util::Status rebalance(util::SimTime now);

  bool has_replica(const std::string& region) const;
  double rate(const std::string& region, util::SimTime now) const;
  std::size_t replica_count() const;

 private:
  struct RegionState {
    Region config;
    std::vector<util::SimTime> recent;  // access times within the window
    bool replicated = false;
  };

  void prune(RegionState& state, util::SimTime now) const;

  globedoc::ObjectOwner* owner_;
  net::Transport* transport_;
  Config config_;
  std::map<std::string, RegionState> regions_ GLOBE_BOUNDED;
  obs::Counter* replicas_created_;
  obs::Counter* replicas_retired_;
  obs::Gauge* replica_gauge_;
};

}  // namespace globe::replication
