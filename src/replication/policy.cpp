#include "replication/policy.hpp"

#include <algorithm>
#include <limits>
#include <map>

namespace globe::replication {

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNoReplication: return "NoReplication";
    case PolicyKind::kTtlCache: return "TtlCache";
    case PolicyKind::kFullReplication: return "FullReplication";
    case PolicyKind::kAdaptive: return "Adaptive";
  }
  return "?";
}

double PolicyCost::weighted(double w_latency, double w_bandwidth,
                            double w_staleness) const {
  return w_latency * total_latency_ms + w_bandwidth * wan_bytes +
         w_staleness * static_cast<double>(stale_accesses);
}

namespace {

double wan_fetch_ms(std::size_t bytes, const RegionModel& region) {
  return region.origin_rtt_ms +
         static_cast<double>(bytes) / region.origin_bandwidth * 1000.0;
}

double local_fetch_ms(std::size_t bytes, const RegionModel& region) {
  // In-region links are an order of magnitude faster than the WAN path.
  return region.local_rtt_ms +
         static_cast<double>(bytes) / (region.origin_bandwidth * 10.0) * 1000.0;
}

/// Latest update time <= t (0 when none).
util::SimTime version_at(const std::vector<util::SimTime>& updates, util::SimTime t) {
  auto it = std::upper_bound(updates.begin(), updates.end(), t);
  if (it == updates.begin()) return 0;
  return *(it - 1);
}

PolicyCost finish(PolicyCost cost) {
  cost.mean_latency_ms =
      cost.accesses == 0 ? 0 : cost.total_latency_ms / static_cast<double>(cost.accesses);
  return cost;
}

PolicyCost eval_no_replication(const DocumentProfile& doc, const RegionModel& region) {
  PolicyCost cost;
  cost.kind = PolicyKind::kNoReplication;
  cost.accesses = doc.accesses.size();
  for (std::size_t i = 0; i < doc.accesses.size(); ++i) {
    cost.total_latency_ms += wan_fetch_ms(doc.size_bytes, region);
    cost.wan_bytes += static_cast<double>(doc.size_bytes);
  }
  return finish(cost);
}

PolicyCost eval_ttl_cache(const DocumentProfile& doc, const RegionModel& region,
                          const EvaluatorConfig& config) {
  PolicyCost cost;
  cost.kind = PolicyKind::kTtlCache;
  cost.accesses = doc.accesses.size();

  struct CacheState {
    util::SimTime valid_until = 0;
    util::SimTime version = 0;  // update time of the cached copy
    bool filled = false;
  };
  std::map<std::uint32_t, CacheState> caches;

  for (const auto& access : doc.accesses) {
    CacheState& cache = caches[access.region];
    if (cache.filled && access.time < cache.valid_until) {
      cost.total_latency_ms += local_fetch_ms(doc.size_bytes, region);
      if (version_at(doc.updates, access.time) > cache.version) {
        ++cost.stale_accesses;  // TTL window hides a newer version
      }
    } else {
      cost.total_latency_ms += wan_fetch_ms(doc.size_bytes, region);
      cost.wan_bytes += static_cast<double>(doc.size_bytes);
      cache.filled = true;
      cache.valid_until = access.time + config.cache_ttl;
      cache.version = version_at(doc.updates, access.time);
    }
  }
  return finish(cost);
}

PolicyCost eval_full_replication(const DocumentProfile& doc, const RegionModel& region,
                                 const EvaluatorConfig& config) {
  PolicyCost cost;
  cost.kind = PolicyKind::kFullReplication;
  cost.accesses = doc.accesses.size();
  for (std::size_t i = 0; i < doc.accesses.size(); ++i) {
    cost.total_latency_ms += local_fetch_ms(doc.size_bytes, region);
  }
  // Initial placement plus a push of the full state on every update.
  double pushes = static_cast<double>(doc.updates.size() + 1);
  cost.wan_bytes = pushes * static_cast<double>(config.regions) *
                   static_cast<double>(doc.size_bytes);
  return finish(cost);
}

}  // namespace

PolicyCost evaluate_policy(PolicyKind kind, const DocumentProfile& doc,
                           const RegionModel& region, const EvaluatorConfig& config) {
  switch (kind) {
    case PolicyKind::kNoReplication: return eval_no_replication(doc, region);
    case PolicyKind::kTtlCache: return eval_ttl_cache(doc, region, config);
    case PolicyKind::kFullReplication:
      return eval_full_replication(doc, region, config);
    case PolicyKind::kAdaptive:
      return select_best_policy(doc, region, config, SelectionWeights{});
  }
  return PolicyCost{};
}

PolicyCost select_best_policy(const DocumentProfile& doc, const RegionModel& region,
                              const EvaluatorConfig& config,
                              const SelectionWeights& weights) {
  PolicyCost best;
  double best_score = std::numeric_limits<double>::infinity();
  for (PolicyKind kind : {PolicyKind::kNoReplication, PolicyKind::kTtlCache,
                          PolicyKind::kFullReplication}) {
    PolicyCost cost = evaluate_policy(kind, doc, region, config);
    double score = cost.weighted(weights.latency, weights.bandwidth, weights.staleness);
    if (score < best_score) {
      best_score = score;
      best = cost;
    }
  }
  return best;
}

}  // namespace globe::replication
