#include "replication/refresher.hpp"

#include <algorithm>

#include "crypto/sha1.hpp"
#include "globedoc/fetch_many.hpp"
#include "obs/log.hpp"
#include "rpc/rpc.hpp"
#include "util/serial.hpp"

namespace globe::replication {

using globedoc::IntegrityCertificate;
using globedoc::Oid;
using globedoc::PageElement;
using globedoc::ReplicaState;
using util::Bytes;
using util::ErrorCode;
using util::Result;

Result<PullResult> pull_replica(net::Transport& transport,
                                const net::Endpoint& source, const Oid& oid,
                                globedoc::ObjectServer& local,
                                std::uint64_t local_version) {
  rpc::RpcClient peer(transport, source);
  util::Writer oid_req;
  oid_req.raw(oid.to_bytes());

  // A rejected pull is security-relevant (the peer served something that
  // failed verification) — record it joinable to the enclosing trace.
  auto reject = [&](ErrorCode code, std::string message) {
    obs::global_event_log().emit(obs::EventLevel::kWarn, "replication",
                                 "pull_rejected",
                                 source.to_string() + ": " + message,
                                 transport.now());
    return Result<PullResult>(code, std::move(message));
  };

  // --- Public key: self-certifying check against the OID.
  auto key_raw =
      peer.call(rpc::kGlobeDocSecurity, globedoc::kGetPublicKey, oid_req.buffer());
  if (!key_raw.is_ok()) return key_raw.status();
  auto object_key = crypto::RsaPublicKey::parse(*key_raw);
  if (!object_key.is_ok()) return object_key.status();
  transport.charge(net::CpuOp::kSha1, key_raw->size());
  if (!oid.matches_key(*object_key)) {
    return reject(ErrorCode::kOidMismatch,
                  "peer served a key not hashing to the OID");
  }

  // --- Integrity certificate: signature, object binding, freshness, version.
  auto cert_raw = peer.call(rpc::kGlobeDocSecurity, globedoc::kGetIntegrityCert,
                            oid_req.buffer());
  if (!cert_raw.is_ok()) return cert_raw.status();
  auto certificate = IntegrityCertificate::parse(*cert_raw);
  if (!certificate.is_ok()) return certificate.status();
  transport.charge(net::CpuOp::kRsaVerify, 1);
  if (!certificate->verify_signature(*object_key)) {
    return reject(ErrorCode::kBadSignature, "peer certificate signature invalid");
  }
  if (certificate->oid() != oid) {
    return reject(ErrorCode::kWrongElement,
                  "peer certificate for a different object");
  }
  if (certificate->version() <= local_version) {
    return Result<PullResult>(ErrorCode::kInvalidArgument,
                              "peer state is not newer than local version " +
                                  std::to_string(local_version));
  }
  // Refuse to propagate already-stale state: every entry must still be live.
  for (const auto& entry : certificate->entries()) {
    if (entry.expires <= transport.now()) {
      return reject(ErrorCode::kExpired,
                    "peer state already expired: " + entry.name);
    }
  }

  // --- Elements: fetch and verify each against its certificate entry.
  ReplicaState state;
  // Store the canonical serialization of the *verified* key, not the peer's
  // raw reply: if parse() ever tolerated non-canonical encodings (trailing
  // bytes, redundant length prefixes), the raw bytes would be served onward
  // to clients while only the parsed form was checked against the OID.
  state.public_key = object_key->serialize();
  state.certificate = *certificate;
  const auto& entries = certificate->entries();
  state.elements.reserve(entries.size());
  // Batched pull: one element/fetch_many round trip per kFetchManyMaxElements
  // entries instead of one RPC per element — the wire win the edge-cache
  // tier's fill path shares (DESIGN.md §12).  Verification is unchanged:
  // every element is still checked individually against its certificate
  // entry, so a tampered item in a batch rejects the whole pull.
  for (std::size_t base = 0; base < entries.size();
       base += globedoc::kFetchManyMaxElements) {
    globedoc::FetchManyRequest batch_req;
    batch_req.oid = oid;
    batch_req.include_cert = false;  // already fetched and verified above
    const std::size_t end =
        std::min(entries.size(), base + globedoc::kFetchManyMaxElements);
    for (std::size_t i = base; i < end; ++i) {
      batch_req.names.push_back(entries[i].name);
    }
    auto batch = globedoc::fetch_many(transport, source, batch_req);
    if (!batch.is_ok()) return batch.status();
    for (std::size_t i = base; i < end; ++i) {
      const auto& item = batch->items[i - base];
      if (!item.found) {
        return reject(ErrorCode::kNotFound,
                      "peer has no element " + entries[i].name);
      }
      auto element = PageElement::parse(item.element);
      if (!element.is_ok()) return element.status();
      transport.charge(net::CpuOp::kSha1, item.element.size());
      util::Status check =
          certificate->check_element(entries[i].name, *element, transport.now());
      if (!check.is_ok()) {
        return reject(check.code(), "element " + entries[i].name + " failed: " +
                                        check.to_string());
      }
      state.elements.push_back(std::move(*element));
    }
  }

  // --- Identity certificates travel along unverified (clients check them
  // against their own trust stores; a peer cannot forge ones that matter).
  auto ids_raw = peer.call(rpc::kGlobeDocSecurity, globedoc::kGetIdentityCerts,
                           oid_req.buffer());
  if (ids_raw.is_ok()) {
    try {
      util::Reader r(*ids_raw);
      std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n && i < 64; ++i) {
        auto cert = globedoc::IdentityCertificate::parse(r.bytes());
        if (cert.is_ok()) state.identity_certs.push_back(std::move(*cert));
      }
    } catch (const util::SerialError&) {
      // Malformed identity list: drop it, the core state is already verified.
      state.identity_certs.clear();
    }
  }

  PullResult result;
  result.version = state.certificate.version();
  result.elements = state.elements.size();
  result.content_bytes = state.content_bytes();
  for (const auto& entry : state.certificate.entries()) {
    result.earliest_expiry = result.earliest_expiry == 0
                                 ? entry.expires
                                 : std::min(result.earliest_expiry, entry.expires);
  }
  result.installed = true;
  local.install_replica_unchecked(state, transport.now());
  obs::global_event_log().emit(
      obs::EventLevel::kInfo, "replication", "pull_installed",
      oid.to_hex() + " v" + std::to_string(result.version) + " from " +
          source.to_string(),
      transport.now());
  return result;
}

}  // namespace globe::replication
