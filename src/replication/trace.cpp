#include "replication/trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace globe::replication {

namespace {

/// Exponential inter-arrival sample (Poisson process) in nanoseconds.
util::SimDuration exp_interval(double rate_per_second, util::SplitMix64& rng) {
  double u = rng.next_double();
  if (u <= 0) u = 1e-12;
  double seconds = -std::log(1.0 - u) / rate_per_second;
  return static_cast<util::SimDuration>(seconds * static_cast<double>(util::kSecond));
}

std::uint32_t sample_region(const std::vector<double>& cdf, util::SplitMix64& rng) {
  double u = rng.next_double();
  auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  if (it == cdf.end()) return static_cast<std::uint32_t>(cdf.size() - 1);
  return static_cast<std::uint32_t>(it - cdf.begin());
}

std::vector<double> region_cdf(const TraceConfig& config) {
  std::vector<double> weights = config.region_weights;
  if (weights.empty()) weights.assign(config.regions, 1.0);
  if (weights.size() != config.regions) {
    throw std::invalid_argument("region_weights size mismatch");
  }
  double total = 0;
  for (double w : weights) total += w;
  std::vector<double> cdf(weights.size());
  double acc = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i] / total;
    cdf[i] = acc;
  }
  return cdf;
}

}  // namespace

std::vector<Access> generate_trace(const TraceConfig& config) {
  if (config.documents == 0 || config.regions == 0) {
    throw std::invalid_argument("trace needs documents and regions");
  }
  util::SplitMix64 rng(config.seed);
  util::ZipfSampler doc_sampler(config.documents, config.doc_zipf_exponent,
                                config.seed ^ 0x5eedULL);
  std::vector<double> cdf = region_cdf(config);

  std::vector<Access> trace;
  util::SimTime t = 0;
  for (;;) {
    t += exp_interval(config.accesses_per_second, rng);
    if (t >= config.duration) break;
    Access a;
    a.time = t;
    a.document = static_cast<std::uint32_t>(doc_sampler.sample());
    a.region = sample_region(cdf, rng);
    trace.push_back(a);
  }
  return trace;
}

std::vector<Access> generate_flash_crowd(const TraceConfig& base,
                                         const FlashCrowdConfig& crowd) {
  std::vector<Access> trace = generate_trace(base);
  util::SplitMix64 rng(base.seed ^ 0xf1a5cULL);
  // Piecewise-linear rate: ramp up over `ramp`, hold at peak, ramp down.
  double base_rate = base.accesses_per_second;
  double peak = base_rate * crowd.peak_multiplier;
  util::SimTime t = crowd.start;
  util::SimTime ramp_end = crowd.start + crowd.ramp;
  util::SimTime hold_end = ramp_end + crowd.hold;
  util::SimTime fall_end = hold_end + crowd.ramp;
  while (t < fall_end && t < base.duration) {
    double rate;
    if (t < ramp_end) {
      rate = peak * static_cast<double>(t - crowd.start) /
             static_cast<double>(crowd.ramp);
    } else if (t < hold_end) {
      rate = peak;
    } else {
      rate = peak * static_cast<double>(fall_end - t) /
             static_cast<double>(crowd.ramp);
    }
    rate = std::max(rate, base_rate * 0.1);
    t += exp_interval(rate, rng);
    if (t >= base.duration || t >= fall_end) break;
    trace.push_back(Access{t, crowd.hot_region, crowd.document});
  }
  std::sort(trace.begin(), trace.end(),
            [](const Access& a, const Access& b) { return a.time < b.time; });
  return trace;
}

std::vector<util::SimTime> update_schedule(util::SimDuration duration,
                                           util::SimDuration interval) {
  if (interval == 0) throw std::invalid_argument("zero update interval");
  std::vector<util::SimTime> updates;
  for (util::SimTime t = interval; t < duration; t += interval) {
    updates.push_back(t);
  }
  return updates;
}

std::vector<Access> filter_document(const std::vector<Access>& trace,
                                    std::uint32_t document) {
  std::vector<Access> out;
  for (const auto& a : trace) {
    if (a.document == document) out.push_back(a);
  }
  return out;
}

}  // namespace globe::replication
