// Peer-to-peer replica synchronization.
//
// The paper notes GlobeDoc is "ideally suited to the creation of
// (peer-to-peer) content delivery networks" (§2): because a replica's
// state is *self-certifying* — the public key hashes to the OID, the
// integrity certificate is signed by the object key, every element hashes
// to its certificate entry — an object server can pull state from ANY
// other replica, verify it exactly like a client would, and install it
// without trusting the source or involving the owner.  A tampering source
// simply fails verification; a stale source is refused by version; the
// worst outcome is "no update", never corruption.
#pragma once

#include "globedoc/object.hpp"
#include "globedoc/server.hpp"
#include "net/transport.hpp"
#include "util/thread_annotations.hpp"

namespace globe::replication {

struct PullResult {
  std::uint64_t version = 0;        // version of the installed state
  std::size_t elements = 0;
  std::size_t content_bytes = 0;
  /// Earliest certificate-entry expiry of the installed state (the moment
  /// the replica starts being rejected by clients); 0 for empty objects.
  util::SimTime earliest_expiry = 0;
  bool installed = false;           // false when already up to date
};

/// Fetches the complete state of `oid` from the (untrusted) replica at
/// `source`, verifies every part of it, and installs it into `local` when
/// it is newer than what `local` already hosts (pass the currently hosted
/// version in `local_version`; 0 = none).  Typed failures:
///   OID_MISMATCH   — source served a key that does not hash to the OID
///   BAD_SIGNATURE  — certificate signature invalid
///   HASH_MISMATCH  — some element does not match its certificate entry
///   EXPIRED        — the fetched certificate is already stale
///   INVALID_ARGUMENT — source state is not newer than local_version
GLOBE_BLOCKING util::Result<PullResult> pull_replica(net::Transport& transport,
                                      const net::Endpoint& source,
                                      const globedoc::Oid& oid,
                                      globedoc::ObjectServer& local,
                                      std::uint64_t local_version);

}  // namespace globe::replication
