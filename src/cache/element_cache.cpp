#include "cache/element_cache.hpp"

namespace globe::cache {

std::optional<ElementCache::Hit> ElementCache::lookup(const CacheKey& key,
                                                      util::SimTime now) {
  util::LockGuard lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  if (it->second.expires <= now) {
    evict_locked(it, EvictReason::kExpired);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return Hit{it->second.element, it->second.expires};
}

void ElementCache::insert(const CacheKey& key,
                          const globedoc::PageElement& element,
                          util::SimTime expires) {
  const std::uint64_t cost = entry_bytes(element);
  if (cost > config_.max_bytes || config_.max_entries == 0) return;

  util::LockGuard lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Same content hash ⇒ same bytes; a re-insert only widens the window
    // (a refreshed certificate re-verified the same content).
    if (expires > it->second.expires) it->second.expires = expires;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }

  while (entries_.size() >= config_.max_entries ||
         bytes_ + cost > config_.max_bytes) {
    evict_locked(entries_.find(lru_.back()), EvictReason::kCapacity);
  }

  lru_.push_front(key);
  Entry entry;
  entry.element = element;
  entry.expires = expires;
  entry.bytes = cost;
  entry.lru_pos = lru_.begin();
  entries_.emplace(key, std::move(entry));
  bytes_ += cost;
}

bool ElementCache::contains(const CacheKey& key) const {
  util::LockGuard lock(mutex_);
  return entries_.find(key) != entries_.end();
}

void ElementCache::erase(const CacheKey& key) {
  util::LockGuard lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) evict_locked(it, EvictReason::kExplicit);
}

void ElementCache::clear() {
  util::LockGuard lock(mutex_);
  while (!entries_.empty()) {
    evict_locked(entries_.begin(), EvictReason::kExplicit);
  }
}

std::size_t ElementCache::size() const {
  util::LockGuard lock(mutex_);
  return entries_.size();
}

std::uint64_t ElementCache::bytes() const {
  util::LockGuard lock(mutex_);
  return bytes_;
}

void ElementCache::evict_locked(std::map<CacheKey, Entry>::iterator it,
                                EvictReason reason) {
  const CacheKey key = it->first;
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  if (listener_) listener_(key, reason);
}

}  // namespace globe::cache
