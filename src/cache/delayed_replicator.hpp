// Pull-on-access delayed replication (DESIGN.md §12, paper §4.3).
//
// GlobeDoc replicates whole documents, but a client's first request names
// one element.  Instead of paying the full document transfer on the hot
// path, the tier serves that element and *schedules* the rest: the
// DelayedReplicator remembers (document, remaining element names,
// certificate, origin) and pulls the remainder in batched element/fetch_many
// round trips when pumped, verifying each element against the certificate
// before admitting it to the cache.  Follow-up requests for sibling
// elements then hit the cache without an upstream round trip.
//
// Bounds: the queue holds at most `max_queue` documents (new work is
// dropped, not blocked, when full — delayed replication is an optimisation,
// never a correctness requirement) and each pump issues at most
// `per_origin_batches` fetch_many calls per origin, so one hot origin
// cannot monopolise a pump round.  cancel(oid) drops pending work, e.g.
// when the document's entries are evicted; it is safe to call from the
// cache's eviction listener (lock order is cache → replicator, and the
// pump never calls into the cache while holding the replicator lock).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "cache/element_cache.hpp"
#include "globedoc/integrity.hpp"
#include "globedoc/oid.hpp"
#include "net/transport.hpp"
#include "util/bounds_annotations.hpp"
#include "util/mutex.hpp"

namespace globe::cache {

class DelayedReplicator {
 public:
  struct Config {
    std::size_t max_queue = 64;         // pending documents
    std::size_t per_origin_batches = 2;  // fetch_many calls per origin/pump
  };

  struct PumpStats {
    std::uint64_t elements_pulled = 0;   // verified and admitted
    std::uint64_t elements_failed = 0;   // fetch or verification failures
    std::uint64_t documents_done = 0;    // tasks fully drained this pump
  };

  DelayedReplicator(Config config, ElementCache& cache)
      : config_(config), cache_(&cache) {}

  /// Queues the elements of `certificate` other than `accessed_name` for
  /// background pull from `origin`.  Dedupes by OID; returns false when the
  /// work was dropped (queue full, already queued, or nothing left to pull).
  bool schedule(const globedoc::Oid& oid, const net::Endpoint& origin,
                const globedoc::IntegrityCertificate& certificate,
                const std::string& accessed_name) GLOBE_EXCLUDES(mutex_);

  /// Drops pending work for `oid`.  Safe under the cache lock.
  void cancel(const globedoc::Oid& oid) GLOBE_EXCLUDES(mutex_);

  /// Pulls queued work over `transport`, at most `per_origin_batches`
  /// fetch_many calls per origin.  Returns what was accomplished; call
  /// repeatedly to drain.
  PumpStats pump(net::Transport& transport) GLOBE_EXCLUDES(mutex_);

  std::size_t pending() const GLOBE_EXCLUDES(mutex_);

  /// Total schedule() calls dropped because the queue was full.
  std::uint64_t dropped() const GLOBE_EXCLUDES(mutex_);

 private:
  struct Task {
    globedoc::Oid oid;
    net::Endpoint origin;
    globedoc::IntegrityCertificate certificate;
    std::vector<std::string> names;  // still to pull
  };

  // Takes up to one batch of names off the task for `oid`; nullopt when the
  // task is gone (cancelled or drained).
  std::optional<Task> claim_batch_locked(const globedoc::Oid& oid)
      GLOBE_REQUIRES(mutex_);

  Config config_;
  ElementCache* cache_;
  mutable util::Mutex mutex_;
  std::deque<Task> queue_ GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);
  std::uint64_t dropped_ GLOBE_GUARDED_BY(mutex_) = 0;
};

}  // namespace globe::cache
