// Single-flight coalescing (DESIGN.md §12).
//
// N concurrent computations of the same key collapse into ONE: the first
// caller (the leader) runs the function; everyone else blocks until the
// leader finishes and receives the same Result — success or error.  An
// error therefore feeds ALL waiters of that flight (a tampered fill fails
// the whole coalesced group) and is NOT remembered: the flight is removed
// when it completes, so the next caller after completion starts a fresh
// one.  This is what collapses a thundering herd of cache misses into ~1
// upstream fetch per distinct element.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "util/mutex.hpp"
#include "util/bounds_annotations.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"

namespace globe::cache {

template <typename Key, typename Value>
class SingleFlight {
 public:
  struct Outcome {
    util::Result<Value> result;
    bool leader = false;  // this caller ran the computation itself
  };

  /// Runs `fn` for `key`, or waits for the in-flight run and shares its
  /// result.  `fn` reports failures via Result; a StatusError escaping it
  /// is converted so waiters can never be stranded.
  /// Blocking: a coalesced waiter parks on the leader's condvar, and the
  /// leader runs `fn` (typically a network fill) to completion.
  GLOBE_BLOCKING Outcome run(const Key& key,
                             const std::function<util::Result<Value>()>& fn) {
    std::shared_ptr<Flight> flight;
    {
      util::UniqueLock lock(mutex_);
      auto it = flights_.find(key);
      if (it != flights_.end()) {
        flight = it->second;
        ++coalesced_waiters_;
        while (!flight->result.has_value()) cv_.wait(lock);
        return Outcome{*flight->result, false};
      }
      flight = std::make_shared<Flight>();
      flights_.emplace(key, flight);
    }

    util::Result<Value> result = [&]() -> util::Result<Value> {
      try {
        return fn();
      } catch (const util::StatusError& e) {
        return e.status();
      }
    }();
    {
      util::LockGuard lock(mutex_);
      flight->result = result;
      flights_.erase(key);  // errors are not sticky: next caller retries
    }
    cv_.notify_all();
    return Outcome{std::move(result), true};
  }

  /// Total callers that waited on someone else's flight.
  std::uint64_t coalesced_waiters() const {
    util::LockGuard lock(mutex_);
    return coalesced_waiters_;
  }

  std::size_t in_flight() const {
    util::LockGuard lock(mutex_);
    return flights_.size();
  }

 private:
  struct Flight {
    // Guarded by the owning SingleFlight's mutex_ (per-flight state cannot
    // carry the capability annotation; every access below holds the lock).
    std::optional<util::Result<Value>> result;
  };

  mutable util::Mutex mutex_;
  util::CondVar cv_;
  std::map<Key, std::shared_ptr<Flight>> flights_ GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);
  std::uint64_t coalesced_waiters_ GLOBE_GUARDED_BY(mutex_) = 0;
};

}  // namespace globe::cache
