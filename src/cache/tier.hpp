// The verified edge-cache tier (DESIGN.md §12): glue between the proxy's
// element-fetch path and the three cache primitives.
//
//   ElementCache      — verified-once-serve-many store, bounded LRU
//   SingleFlight      — thundering-herd collapse: N misses → 1 upstream fill
//   DelayedReplicator — pull-on-access background replication of siblings
//
// fetch_through() is the single entry point the proxy calls per element:
//   1. no certificate entry → kNotFound (same as the direct path);
//   2. entry already expired → kExpired before touching cache or network;
//   3. cache hit → serve, zero upstream traffic;
//   4. miss → single-flight fill: ONE fetch_many round trip to the replica,
//      SHA-1 + check_element verification, admission, and every concurrent
//      requester of the same content shares that one result — including a
//      failure (a tampered fill fails the whole coalesced group and caches
//      nothing).
// First access to a document also schedules its remaining elements for
// delayed pull (run_delayed_pulls() drains the queue); evicting an entry
// cancels pending pulls for its document.
//
// One tier instance is meant to be SHARED by many proxies/flows on a node —
// that sharing is where coalescing and the fleet-wide hit ratio come from.
#pragma once

#include <cstdint>
#include <deque>
#include <set>

#include "cache/delayed_replicator.hpp"
#include "cache/element_cache.hpp"
#include "cache/single_flight.hpp"
#include "globedoc/cache_iface.hpp"
#include "obs/metrics.hpp"
#include "util/bounds_annotations.hpp"
#include "util/mutex.hpp"

namespace globe::cache {

struct TierConfig {
  ElementCache::Config cache;
  DelayedReplicator::Config replicator;
  bool delayed_replication = true;  // schedule sibling pulls on first access
  /// Registry for the cache.* metric family; nullptr = unmetered.
  obs::MetricsRegistry* registry = nullptr;
};

class EdgeCacheTier final : public globedoc::ElementCacheTier {
 public:
  explicit EdgeCacheTier(TierConfig config);

  util::Result<globedoc::EdgeFetch> fetch_through(
      net::Transport& transport, const net::Endpoint& replica,
      const globedoc::Oid& oid,
      const globedoc::IntegrityCertificate& certificate,
      const std::string& element_name) override;

  /// Drains the delayed-replication queue over `transport` (the caller
  /// decides when background bandwidth is cheap).  No-op when delayed
  /// replication is off.
  DelayedReplicator::PumpStats run_delayed_pulls(net::Transport& transport);

  ElementCache& element_cache() { return cache_; }
  DelayedReplicator& replicator() { return replicator_; }

 private:
  struct EdgeFill {
    globedoc::PageElement element;
    util::SimTime completed_at = 0;  // leader's clock when the fill landed
    util::SimTime expires = 0;
  };

  util::Result<EdgeFill> fill(net::Transport& transport,
                              const net::Endpoint& replica,
                              const globedoc::Oid& oid,
                              const globedoc::IntegrityCertificate& certificate,
                              const std::string& element_name,
                              const util::Bytes& digest);

  // First-access tracking for delayed replication, bounded FIFO.
  bool first_access(const globedoc::Oid& oid) GLOBE_EXCLUDES(seen_mutex_);

  TierConfig config_;
  ElementCache cache_;
  DelayedReplicator replicator_;
  SingleFlight<CacheKey, EdgeFill> flights_;

  util::Mutex seen_mutex_;
  std::set<globedoc::Oid> seen_oids_ GLOBE_BOUNDED GLOBE_GUARDED_BY(seen_mutex_);
  std::deque<globedoc::Oid> seen_order_ GLOBE_BOUNDED GLOBE_GUARDED_BY(seen_mutex_);

  // cache.* metric family (nullptr when unmetered).
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* coalesced_ = nullptr;
  obs::Counter* evictions_capacity_ = nullptr;
  obs::Counter* evictions_expired_ = nullptr;
  obs::Counter* evictions_explicit_ = nullptr;
  obs::Counter* delayed_pulls_ = nullptr;
  obs::Counter* delayed_dropped_ = nullptr;
  obs::Histogram* fill_ms_ = nullptr;
};

}  // namespace globe::cache
