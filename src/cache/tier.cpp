#include "cache/tier.hpp"

#include "globedoc/fetch_many.hpp"
#include "obs/profile.hpp"
#include "util/clock.hpp"

namespace globe::cache {
namespace {

// Same bucket layout as proxy.fetch_ms so hit-vs-fill latency lines up on
// one dashboard.  The sub-millisecond bounds exist for cache hits, which
// cost memcopy time only — with a 1 ms smallest bucket every hit quantile
// collapses to 0.
const std::vector<double>& fill_ms_bounds() {
  static const std::vector<double> kBounds = {0.05, 0.1, 0.2, 0.5,  1,
                                              2,    5,   10,  20,   50,
                                              100,  200, 500, 1000, 2000, 5000};
  return kBounds;
}

}  // namespace

EdgeCacheTier::EdgeCacheTier(TierConfig config)
    : config_(config),
      cache_(config.cache),
      replicator_(config.replicator, cache_) {
  if (config_.registry) {
    auto& reg = *config_.registry;
    hits_ = &reg.counter("cache.hits");
    misses_ = &reg.counter("cache.misses");
    coalesced_ = &reg.counter("cache.coalesced_waiters");
    evictions_capacity_ =
        &reg.counter("cache.evictions", {{"reason", "capacity"}});
    evictions_expired_ =
        &reg.counter("cache.evictions", {{"reason", "expired"}});
    evictions_explicit_ =
        &reg.counter("cache.evictions", {{"reason", "explicit"}});
    delayed_pulls_ = &reg.counter("cache.delayed_pulls");
    delayed_dropped_ = &reg.counter("cache.delayed_dropped");
    fill_ms_ = &reg.histogram("cache.fill_ms", fill_ms_bounds());
  }
  // Runs under the cache lock; replicator_.cancel takes only the replicator
  // lock, so the tier-wide lock order is cache → replicator.
  cache_.set_eviction_listener([this](const CacheKey& key, EvictReason why) {
    switch (why) {
      case EvictReason::kCapacity:
        if (evictions_capacity_) evictions_capacity_->inc();
        break;
      case EvictReason::kExpired:
        if (evictions_expired_) evictions_expired_->inc();
        break;
      case EvictReason::kExplicit:
        if (evictions_explicit_) evictions_explicit_->inc();
        break;
    }
    replicator_.cancel(key.oid);
  });
}

bool EdgeCacheTier::first_access(const globedoc::Oid& oid) {
  util::LockGuard lock(seen_mutex_);
  if (!seen_oids_.insert(oid).second) return false;
  seen_order_.push_back(oid);
  // Bound the tracking set; forgetting an old document merely means a later
  // access may schedule a (deduped) pull again.
  constexpr std::size_t kMaxSeen = 4096;
  if (seen_order_.size() > kMaxSeen) {
    seen_oids_.erase(seen_order_.front());
    seen_order_.pop_front();
  }
  return true;
}

util::Result<globedoc::EdgeFetch> EdgeCacheTier::fetch_through(
    net::Transport& transport, const net::Endpoint& replica,
    const globedoc::Oid& oid, const globedoc::IntegrityCertificate& cert,
    const std::string& element_name) {
  GLOBE_PROFILE_SCOPE("edge_cache");
  const auto* entry = cert.find(element_name);
  if (entry == nullptr) {
    return util::Status(util::ErrorCode::kNotFound,
                        "no certificate entry for element " + element_name);
  }
  if (entry->expires <= transport.now()) {
    // Refuse before touching cache or network: a stale certificate entry
    // can neither be served nor refreshed from here (the proxy must
    // re-resolve a fresh certificate first).
    return util::Status(util::ErrorCode::kExpired,
                        "certificate entry expired for " + element_name);
  }

  if (config_.delayed_replication && first_access(oid)) {
    if (!replicator_.schedule(oid, replica, cert, element_name) &&
        cert.entries().size() > 1 && delayed_dropped_) {
      delayed_dropped_->inc();
    }
  }

  const CacheKey key{oid, element_name, entry->sha1};
  if (auto hit = cache_.lookup(key, transport.now())) {
    if (hits_) hits_->inc();
    globedoc::EdgeFetch out;
    out.element = std::move(hit->element);
    // Serving a hit copies the element out of memory — charge it so hit
    // latency is small-but-nonzero and sub-ms percentiles stay honest.
    transport.charge(net::CpuOp::kMemCopy, out.element.content.size());
    out.cache_hit = true;
    return out;
  }
  if (misses_) misses_->inc();

  auto outcome = flights_.run(key, [&]() -> util::Result<EdgeFill> {
    return fill(transport, replica, oid, cert, element_name, entry->sha1);
  });
  if (!outcome.leader && coalesced_) coalesced_->inc();
  if (!outcome.result.is_ok()) return outcome.result.status();

  EdgeFill filled = std::move(outcome.result).value();
  if (!outcome.leader) {
    // A waiter's flow spent the leader's wall time blocked on the flight:
    // sync its virtual clock so coalesced latency is modelled, not free.
    transport.advance_to(filled.completed_at);
  }
  globedoc::EdgeFetch out;
  out.element = std::move(filled.element);
  out.coalesced = !outcome.leader;
  return out;
}

util::Result<EdgeCacheTier::EdgeFill> EdgeCacheTier::fill(
    net::Transport& transport, const net::Endpoint& replica,
    const globedoc::Oid& oid, const globedoc::IntegrityCertificate& cert,
    const std::string& element_name, const util::Bytes& digest) {
  GLOBE_PROFILE_SCOPE("cache.fill");
  const util::SimTime start = transport.now();

  // Leader double-check: a caller that missed the cache just before the
  // previous flight's insert landed becomes leader of a fresh flight.  Serve
  // the freshly admitted entry instead of re-fetching, so a herd costs the
  // origin one upstream fetch per element, not one per flight generation.
  const CacheKey key{oid, element_name, digest};
  if (auto hit = cache_.lookup(key, transport.now())) {
    EdgeFill cached;
    cached.element = std::move(hit->element);
    transport.charge(net::CpuOp::kMemCopy, cached.element.content.size());
    cached.completed_at = transport.now();
    cached.expires = hit->expires;
    return cached;
  }

  globedoc::FetchManyRequest request;
  request.oid = oid;
  request.include_cert = false;  // filling under an already-verified cert
  request.names.push_back(element_name);
  auto response = globedoc::fetch_many(transport, replica, request);
  if (!response.is_ok()) return response.status();

  const auto& item = response.value().items.front();
  if (!item.found) {
    return util::Status(util::ErrorCode::kNotFound,
                        "replica has no element " + element_name);
  }
  auto element = globedoc::PageElement::parse(item.element);
  if (!element.is_ok()) return element.status();

  transport.charge(net::CpuOp::kSha1, 1);
  util::Status check =
      cert.check_element(element_name, *element, transport.now());
  if (!check.is_ok()) return check;  // nothing cached: failures never admit

  const auto* entry = cert.find(element_name);
  cache_.insert(key, *element, entry->expires);
  if (fill_ms_) fill_ms_->observe(util::to_millis(transport.now() - start));

  EdgeFill filled;
  filled.element = std::move(*element);
  filled.completed_at = transport.now();
  filled.expires = entry->expires;
  return filled;
}

DelayedReplicator::PumpStats EdgeCacheTier::run_delayed_pulls(
    net::Transport& transport) {
  if (!config_.delayed_replication) return {};
  auto stats = replicator_.pump(transport);
  if (delayed_pulls_ && stats.elements_pulled > 0) {
    delayed_pulls_->inc(stats.elements_pulled);
  }
  return stats;
}

}  // namespace globe::cache
