// Content-addressed cache key (DESIGN.md §12).
//
// An entry is identified by (OID, element name, content hash): the hash is
// the certificate entry's SHA-1 of the *serialized* element, so two
// certificate generations that carry the same content share one cache
// entry, while a republish with new content gets a distinct key — the
// cache can never confuse versions, and "same bytes, refreshed window"
// does not double-store.
#pragma once

#include <string>
#include <tuple>

#include "globedoc/oid.hpp"
#include "util/bytes.hpp"

namespace globe::cache {

struct CacheKey {
  globedoc::Oid oid;
  std::string element;
  util::Bytes content_sha1;  // the certificate entry's 20-byte digest

  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    return a.oid == b.oid && a.element == b.element &&
           a.content_sha1 == b.content_sha1;
  }
  friend bool operator<(const CacheKey& a, const CacheKey& b) {
    return std::tie(a.oid, a.element, a.content_sha1) <
           std::tie(b.oid, b.element, b.content_sha1);
  }
};

}  // namespace globe::cache
