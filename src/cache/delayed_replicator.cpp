#include "cache/delayed_replicator.hpp"

#include <algorithm>
#include <map>

#include "globedoc/element.hpp"
#include "globedoc/fetch_many.hpp"

namespace globe::cache {

bool DelayedReplicator::schedule(const globedoc::Oid& oid,
                                 const net::Endpoint& origin,
                                 const globedoc::IntegrityCertificate& cert,
                                 const std::string& accessed_name) {
  std::vector<std::string> names;
  names.reserve(cert.entries().size());
  for (const auto& entry : cert.entries()) {
    if (entry.name != accessed_name) names.push_back(entry.name);
  }
  if (names.empty()) return false;

  util::LockGuard lock(mutex_);
  for (const auto& task : queue_) {
    if (task.oid == oid) return false;  // already queued
  }
  if (queue_.size() >= config_.max_queue) {
    ++dropped_;
    return false;
  }
  queue_.push_back(Task{oid, origin, cert, std::move(names)});
  return true;
}

void DelayedReplicator::cancel(const globedoc::Oid& oid) {
  util::LockGuard lock(mutex_);
  std::erase_if(queue_, [&](const Task& t) { return t.oid == oid; });
}

std::optional<DelayedReplicator::Task> DelayedReplicator::claim_batch_locked(
    const globedoc::Oid& oid) {
  auto it = std::find_if(queue_.begin(), queue_.end(),
                         [&](const Task& t) { return t.oid == oid; });
  if (it == queue_.end()) return std::nullopt;  // cancelled meanwhile

  Task batch;
  batch.oid = it->oid;
  batch.origin = it->origin;
  batch.certificate = it->certificate;
  const std::size_t take =
      std::min(it->names.size(), globedoc::kFetchManyMaxElements);
  batch.names.assign(it->names.begin(), it->names.begin() + take);
  it->names.erase(it->names.begin(), it->names.begin() + take);
  if (it->names.empty()) queue_.erase(it);
  return batch;
}

DelayedReplicator::PumpStats DelayedReplicator::pump(
    net::Transport& transport) {
  PumpStats stats;
  std::map<net::Endpoint, std::size_t> origin_batches;

  for (;;) {
    // Pick the next document whose origin still has budget this pump.
    std::optional<Task> batch;
    bool drained_doc = false;
    {
      util::LockGuard lock(mutex_);
      globedoc::Oid target;
      bool found = false;
      for (const auto& task : queue_) {
        if (origin_batches[task.origin] < config_.per_origin_batches) {
          target = task.oid;
          found = true;
          break;
        }
      }
      if (!found) break;
      batch = claim_batch_locked(target);
      if (!batch) continue;
      // claim_batch_locked erased the task when it took the last names.
      drained_doc = std::none_of(queue_.begin(), queue_.end(), [&](const Task& t) {
        return t.oid == target;
      });
    }
    ++origin_batches[batch->origin];

    // Network + verification run without the replicator lock: cancel() and
    // schedule() stay responsive, and the cache's eviction listener (which
    // runs under the cache lock and may call cancel) can never deadlock.
    globedoc::FetchManyRequest request;
    request.oid = batch->oid;
    request.include_cert = false;  // we pull under the cert we were handed
    request.names = batch->names;
    auto response = globedoc::fetch_many(transport, batch->origin, request);
    if (!response.is_ok()) {
      stats.elements_failed += batch->names.size();
      if (drained_doc) ++stats.documents_done;
      continue;
    }

    for (std::size_t i = 0; i < batch->names.size(); ++i) {
      const auto& item = response.value().items[i];
      if (!item.found) {
        ++stats.elements_failed;
        continue;
      }
      auto element = globedoc::PageElement::parse(item.element);
      if (!element.is_ok()) {
        ++stats.elements_failed;
        continue;
      }
      transport.charge(net::CpuOp::kSha1, 1);
      if (!batch->certificate
               .check_element(batch->names[i], *element, transport.now())
               .is_ok()) {
        ++stats.elements_failed;
        continue;
      }
      const auto* entry = batch->certificate.find(batch->names[i]);
      cache_->insert(CacheKey{batch->oid, batch->names[i], entry->sha1},
                     *element, entry->expires);
      ++stats.elements_pulled;
    }
    if (drained_doc) ++stats.documents_done;
  }
  return stats;
}

std::size_t DelayedReplicator::pending() const {
  util::LockGuard lock(mutex_);
  return queue_.size();
}

std::uint64_t DelayedReplicator::dropped() const {
  util::LockGuard lock(mutex_);
  return dropped_;
}

}  // namespace globe::cache
