// Verified element cache (DESIGN.md §12): bounded, content-addressed LRU.
//
// Admission discipline: insert() is a trusted sink — only elements that
// passed IntegrityCertificate::check_element may enter, and every entry
// carries the verifying certificate entry's validity end.  From then on
// the element is served without re-verification ("verified once, served
// many times") until the window closes; lookup() evicts expired entries
// instead of serving them.  Capacity is bounded both in entries and in
// bytes; the least recently used entry goes first.
//
// Thread-safe.  The eviction listener runs with the cache lock held and
// must not call back into this cache (the tier uses it to count evictions
// and cancel delayed replication — cache lock before replicator lock is
// the tier's fixed lock order).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <optional>

#include "cache/cache_key.hpp"
#include "globedoc/element.hpp"
#include "util/clock.hpp"
#include "util/bounds_annotations.hpp"
#include "util/mutex.hpp"
#include "util/taint_annotations.hpp"

namespace globe::cache {

enum class EvictReason {
  kCapacity,  // LRU displacement under entry/byte bounds
  kExpired,   // certificate-entry validity window closed
  kExplicit,  // erase()/clear()
};

class ElementCache {
 public:
  struct Config {
    std::size_t max_entries = 4096;
    std::uint64_t max_bytes = 64ull << 20;  // element content + names
  };

  struct Hit {
    globedoc::PageElement element;
    util::SimTime expires = 0;
  };

  using EvictionListener = std::function<void(const CacheKey&, EvictReason)>;

  explicit ElementCache(Config config) : config_(config) {}

  /// Setup-time only: must be installed before concurrent use.
  void set_eviction_listener(EvictionListener listener) {
    listener_ = std::move(listener);
  }

  /// Returns the entry and refreshes its recency; an entry whose validity
  /// window has closed at `now` is evicted (kExpired) and reported a miss.
  std::optional<Hit> lookup(const CacheKey& key, util::SimTime now)
      GLOBE_EXCLUDES(mutex_);

  /// Admits a VERIFIED element valid until `expires` (trusted sink: the
  /// caller must have run check_element under the certificate whose entry
  /// digest is key.content_sha1).  Oversized elements (> max_bytes alone)
  /// are not admitted; admission may displace LRU entries.
  void insert(const CacheKey& key,
              GLOBE_TRUSTED_SINK const globedoc::PageElement& element,
              util::SimTime expires) GLOBE_EXCLUDES(mutex_);

  bool contains(const CacheKey& key) const GLOBE_EXCLUDES(mutex_);
  void erase(const CacheKey& key) GLOBE_EXCLUDES(mutex_);
  void clear() GLOBE_EXCLUDES(mutex_);

  std::size_t size() const GLOBE_EXCLUDES(mutex_);
  std::uint64_t bytes() const GLOBE_EXCLUDES(mutex_);

 private:
  struct Entry {
    globedoc::PageElement element;
    util::SimTime expires = 0;
    std::uint64_t bytes = 0;
    std::list<CacheKey>::iterator lru_pos;
  };

  static std::uint64_t entry_bytes(const globedoc::PageElement& element) {
    return element.content.size() + element.name.size() +
           element.content_type.size();
  }

  void evict_locked(std::map<CacheKey, Entry>::iterator it, EvictReason reason)
      GLOBE_REQUIRES(mutex_);

  Config config_;
  EvictionListener listener_;  // set before use, then read-only
  mutable util::Mutex mutex_;
  std::map<CacheKey, Entry> entries_ GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);
  std::list<CacheKey> lru_ GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);  // front = most recent
  std::uint64_t bytes_ GLOBE_GUARDED_BY(mutex_) = 0;
};

}  // namespace globe::cache
