#include "crypto/sha1.hpp"

#include <algorithm>
#include <cstring>

#include "obs/profile.hpp"

namespace globe::crypto {

namespace {
inline std::uint32_t rotl(std::uint32_t v, unsigned n) {
  return (v << n) | (v >> (32 - n));
}
}  // namespace

void Sha1::reset() {
  h_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  buffer_len_ = 0;
  total_len_ = 0;
}

void Sha1::update(util::BytesView data) {
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    std::size_t take = std::min(kBlockSize - buffer_len_, data.size());
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == kBlockSize) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (offset + kBlockSize <= data.size()) {
    process_block(data.data() + offset);
    offset += kBlockSize;
  }
  if (offset < data.size()) {
    buffer_len_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffer_len_);
  }
}

Sha1::Digest Sha1::finish() {
  std::uint64_t bit_len = total_len_ * 8;
  std::uint8_t pad = 0x80;
  update(util::BytesView(&pad, 1));
  static constexpr std::uint8_t kZero[kBlockSize] = {};
  while (buffer_len_ != 56) {
    std::size_t fill = buffer_len_ < 56 ? 56 - buffer_len_ : kBlockSize - buffer_len_;
    update(util::BytesView(kZero, fill));
  }
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  // update() counts these padding bytes in total_len_, but bit_len was
  // captured before padding so the encoded length is correct.
  update(util::BytesView(len_be, 8));

  Digest out;
  for (int i = 0; i < 5; ++i) {
    out[static_cast<std::size_t>(4 * i)] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[static_cast<std::size_t>(4 * i + 1)] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[static_cast<std::size_t>(4 * i + 2)] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[static_cast<std::size_t>(4 * i + 3)] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = std::uint32_t{block[4 * i]} << 24 | std::uint32_t{block[4 * i + 1]} << 16 |
           std::uint32_t{block[4 * i + 2]} << 8 | block[4 * i + 3];
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

Sha1::Digest Sha1::digest(util::BytesView data) {
  GLOBE_PROFILE_SCOPE("sha1");
  Sha1 h;
  h.update(data);
  return h.finish();
}

util::Bytes Sha1::digest_bytes(util::BytesView data) {
  Digest d = digest(data);
  return util::Bytes(d.begin(), d.end());
}

}  // namespace globe::crypto
