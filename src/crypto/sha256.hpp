// SHA-256 (FIPS 180-2).  Used by HMAC-DRBG, the TLS-like secure channel's
// key derivation, and identity-certificate signatures.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace globe::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256() { reset(); }

  void reset();
  void update(util::BytesView data);
  Digest finish();

  static Digest digest(util::BytesView data);
  static util::Bytes digest_bytes(util::BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace globe::crypto
