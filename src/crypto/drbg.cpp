#include "crypto/drbg.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace globe::crypto {

HmacDrbg::HmacDrbg(util::BytesView seed)
    : key_(Sha256::kDigestSize, 0x00), v_(Sha256::kDigestSize, 0x01) {
  update(seed);
}

HmacDrbg HmacDrbg::from_seed(std::uint64_t seed) {
  util::Bytes s(8);
  for (int i = 0; i < 8; ++i) {
    s[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(seed >> (56 - 8 * i));
  }
  return HmacDrbg(s);
}

void HmacDrbg::update(util::BytesView provided) {
  util::Bytes msg = v_;
  msg.push_back(0x00);
  util::append(msg, provided);
  key_ = hmac_bytes<Sha256>(key_, msg);
  v_ = hmac_bytes<Sha256>(key_, v_);
  if (!provided.empty()) {
    msg = v_;
    msg.push_back(0x01);
    util::append(msg, provided);
    key_ = hmac_bytes<Sha256>(key_, msg);
    v_ = hmac_bytes<Sha256>(key_, v_);
  }
}

void HmacDrbg::fill(util::Bytes& out, std::size_t n) {
  out.clear();
  out.reserve(n);
  while (out.size() < n) {
    v_ = hmac_bytes<Sha256>(key_, v_);
    std::size_t take = std::min(v_.size(), n - out.size());
    out.insert(out.end(), v_.begin(), v_.begin() + static_cast<std::ptrdiff_t>(take));
  }
  update({});
}

void HmacDrbg::reseed(util::BytesView seed) { update(seed); }

void SystemRandom::fill(util::Bytes& out, std::size_t n) {
  out.assign(n, 0);
  std::FILE* f = std::fopen("/dev/urandom", "rb");
  if (f == nullptr) throw std::runtime_error("SystemRandom: cannot open /dev/urandom");
  std::size_t got = std::fread(out.data(), 1, n, f);
  std::fclose(f);
  if (got != n) throw std::runtime_error("SystemRandom: short read");
}

}  // namespace globe::crypto
