// Probabilistic primality testing and prime generation for RSA keygen.
#pragma once

#include "crypto/bigint.hpp"
#include "util/rng.hpp"

namespace globe::crypto {

/// Miller–Rabin with `rounds` random bases (plus small-prime trial
/// division).  Error probability <= 4^-rounds for composite n.
bool is_probable_prime(const BigInt& n, util::RandomSource& rng, int rounds = 32);

/// Generates a random probable prime with exactly `bits` bits (top bit set,
/// odd).  `bits` must be >= 8.
BigInt generate_prime(std::size_t bits, util::RandomSource& rng, int mr_rounds = 32);

}  // namespace globe::crypto
