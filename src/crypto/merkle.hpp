// Merkle hash tree — the r-OSFS-style integrity baseline (paper §5).
//
// r-OSFS signs only the tree root; freshness is a single per-filesystem
// interval.  GlobeDoc instead signs a per-element table.  This module lets
// the benchmarks compare both designs: build a tree over element bodies,
// sign the root once, and verify elements through inclusion proofs.
//
// Domain separation: leaf hash = SHA-1(0x00 || data), interior hash =
// SHA-1(0x01 || left || right), preventing leaf/interior confusion.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/sha1.hpp"
#include "util/bytes.hpp"

namespace globe::crypto {

/// Protocol ceiling on inclusion-proof length.  A 64-step proof covers 2^64
/// leaves; a peer claiming more is lying, and parse() rejects it outright.
inline constexpr std::size_t kMaxMerkleProofSteps = 64;

struct MerkleProofStep {
  util::Bytes sibling;   // 20-byte SHA-1 digest
  bool sibling_is_left;  // true when the sibling is the left child
};

struct MerkleProof {
  std::size_t leaf_index = 0;
  std::vector<MerkleProofStep> steps;

  util::Bytes serialize() const;
  static MerkleProof parse(util::BytesView data);  // throws SerialError
};

class MerkleTree {
 public:
  /// Builds a tree over the given leaf payloads (at least one).  With an odd
  /// node count at a level, the last node is promoted unchanged.
  explicit MerkleTree(const std::vector<util::Bytes>& leaves);

  const util::Bytes& root() const { return levels_.back()[0]; }
  std::size_t leaf_count() const { return levels_[0].size(); }

  /// Inclusion proof for leaf `index`; throws std::out_of_range.
  MerkleProof prove(std::size_t index) const;

  /// Recomputes the root implied by (leaf data, proof) and compares.
  [[nodiscard]] static bool verify(util::BytesView leaf_data,
                                   const MerkleProof& proof,
                                   util::BytesView expected_root);

  static util::Bytes hash_leaf(util::BytesView data);
  static util::Bytes hash_interior(util::BytesView left, util::BytesView right);

 private:
  // levels_[0] = leaf hashes, levels_.back() = {root}.
  std::vector<std::vector<util::Bytes>> levels_;
};

}  // namespace globe::crypto
