#include "crypto/prime.hpp"

#include <stdexcept>

namespace globe::crypto {

namespace {

constexpr std::uint32_t kSmallPrimes[] = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

}  // namespace

bool is_probable_prime(const BigInt& n, util::RandomSource& rng, int rounds) {
  if (n < BigInt(2)) return false;
  for (std::uint32_t p : kSmallPrimes) {
    BigInt bp(p);
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }
  // n - 1 = d * 2^r with d odd.
  BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  std::size_t r = 0;
  while (d.is_even()) {
    d = d >> 1;
    ++r;
  }
  BigInt two(2);
  BigInt n_minus_3 = n - BigInt(3);
  for (int round = 0; round < rounds; ++round) {
    // Base a uniform in [2, n-2].
    BigInt a = BigInt::random_below(n_minus_3, rng) + two;
    BigInt x = BigInt::mod_pow(a, d, n);
    if (x == BigInt(1) || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 1; i < r; ++i) {
      x = (x * x) % n;
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigInt generate_prime(std::size_t bits, util::RandomSource& rng, int mr_rounds) {
  if (bits < 8) throw std::invalid_argument("generate_prime: bits < 8");
  for (;;) {
    BigInt candidate = BigInt::random_bits(bits, rng);
    if (candidate.is_even()) candidate = candidate + BigInt(1);
    if (is_probable_prime(candidate, rng, mr_rounds)) return candidate;
  }
}

}  // namespace globe::crypto
