// SHA-1 (FIPS 180-1) — the hash the paper uses for self-certifying OIDs and
// integrity-certificate element digests.  Incremental (update/final) and
// one-shot APIs.
//
// SHA-1 is retained for fidelity to the paper; new protocol surfaces in this
// codebase (DRBG, identity certificates) use SHA-256 from sha256.hpp.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace globe::crypto {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha1() { reset(); }

  void reset();
  void update(util::BytesView data);
  /// Finalizes and returns the digest; the object must be reset() before reuse.
  Digest finish();

  /// One-shot convenience.
  static Digest digest(util::BytesView data);
  static util::Bytes digest_bytes(util::BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace globe::crypto
