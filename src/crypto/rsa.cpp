#include "crypto/rsa.hpp"

#include <stdexcept>

#include "crypto/prime.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "obs/profile.hpp"
#include "util/serial.hpp"

namespace globe::crypto {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Result;

namespace {

// ASN.1 DigestInfo prefixes (RFC 8017 §9.2 note 1).
constexpr std::uint8_t kSha1Prefix[] = {0x30, 0x21, 0x30, 0x09, 0x06,
                                        0x05, 0x2b, 0x0e, 0x03, 0x02,
                                        0x1a, 0x05, 0x00, 0x04, 0x14};
constexpr std::uint8_t kSha256Prefix[] = {0x30, 0x31, 0x30, 0x0d, 0x06, 0x09,
                                          0x60, 0x86, 0x48, 0x01, 0x65, 0x03,
                                          0x04, 0x02, 0x01, 0x05, 0x00, 0x04,
                                          0x20};

// EMSA-PKCS1-v1_5 encoding: 0x00 0x01 FF..FF 0x00 || DigestInfo || digest.
Bytes emsa_encode(BytesView digest_info_prefix, BytesView digest, std::size_t em_len) {
  std::size_t t_len = digest_info_prefix.size() + digest.size();
  if (em_len < t_len + 11) throw std::invalid_argument("RSA modulus too small for digest");
  Bytes em;
  em.reserve(em_len);
  em.push_back(0x00);
  em.push_back(0x01);
  em.insert(em.end(), em_len - t_len - 3, 0xff);
  em.push_back(0x00);
  util::append(em, digest_info_prefix);
  util::append(em, digest);
  return em;
}

// Raw private-key exponentiation via the CRT.
BigInt rsa_private_op(const RsaPrivateKey& key, const BigInt& c) {
  BigInt m1 = BigInt::mod_pow(c % key.p, key.dp, key.p);
  BigInt m2 = BigInt::mod_pow(c % key.q, key.dq, key.q);
  // h = qinv * (m1 - m2) mod p, guarding against m1 < m2.
  BigInt diff = (m1 + key.p - (m2 % key.p)) % key.p;
  BigInt h = (key.qinv * diff) % key.p;
  return m2 + h * key.q;
}

Bytes sign_encoded(const RsaPrivateKey& key, BytesView prefix, BytesView digest) {
  std::size_t k = (key.n.bit_length() + 7) / 8;
  Bytes em = emsa_encode(prefix, digest, k);
  BigInt m = BigInt::from_bytes(em);
  BigInt s = rsa_private_op(key, m);
  return s.to_bytes(k);
}

bool verify_encoded(const RsaPublicKey& key, BytesView prefix, BytesView digest,
                    BytesView signature) {
  std::size_t k = key.modulus_bytes();
  if (signature.size() != k) return false;
  BigInt s = BigInt::from_bytes(signature);
  if (s >= key.n) return false;
  BigInt m = BigInt::mod_pow(s, key.e, key.n);
  Bytes em = m.to_bytes(k);
  Bytes expected = emsa_encode(prefix, digest, k);
  return util::ct_equal(em, expected);
}

}  // namespace

Bytes RsaPublicKey::serialize() const {
  util::Writer w;
  w.bytes(n.to_bytes());
  w.bytes(e.to_bytes());
  return w.take();
}

Result<RsaPublicKey> RsaPublicKey::parse(BytesView data) {
  try {
    util::Reader r(data);
    RsaPublicKey key;
    Bytes n_bytes = r.bytes();
    Bytes e_bytes = r.bytes();
    r.expect_end();
    if (n_bytes.size() > kMaxRsaModulusBytes ||
        e_bytes.size() > kMaxRsaModulusBytes) {
      return Result<RsaPublicKey>(
          ErrorCode::kProtocol,
          "RSA key component exceeds " +
              std::to_string(kMaxRsaModulusBytes * 8) + " bits");
    }
    key.n = BigInt::from_bytes(n_bytes);
    key.e = BigInt::from_bytes(e_bytes);
    if (key.n.is_zero() || key.e.is_zero()) {
      return Result<RsaPublicKey>(ErrorCode::kProtocol, "RSA key with zero component");
    }
    return key;
  } catch (const util::SerialError& e) {
    return Result<RsaPublicKey>(ErrorCode::kProtocol, e.what());
  }
}

Bytes RsaPrivateKey::serialize() const {
  util::Writer w;
  for (const BigInt* v : {&n, &e, &d, &p, &q, &dp, &dq, &qinv}) {
    w.bytes(v->to_bytes());
  }
  return w.take();
}

Result<RsaPrivateKey> RsaPrivateKey::parse(BytesView data) {
  try {
    util::Reader r(data);
    RsaPrivateKey key;
    for (BigInt* v : {&key.n, &key.e, &key.d, &key.p, &key.q, &key.dp, &key.dq,
                      &key.qinv}) {
      Bytes component = r.bytes();
      if (component.size() > kMaxRsaModulusBytes) {
        return Result<RsaPrivateKey>(
            ErrorCode::kProtocol,
            "RSA key component exceeds " +
                std::to_string(kMaxRsaModulusBytes * 8) + " bits");
      }
      *v = BigInt::from_bytes(component);
    }
    r.expect_end();
    return key;
  } catch (const util::SerialError& e) {
    return Result<RsaPrivateKey>(ErrorCode::kProtocol, e.what());
  }
}

RsaKeyPair rsa_generate(std::size_t bits, util::RandomSource& rng) {
  if (bits < 256) throw std::invalid_argument("rsa_generate: modulus too small");
  const BigInt e(65537);
  for (;;) {
    BigInt p = generate_prime(bits / 2, rng);
    BigInt q = generate_prime(bits - bits / 2, rng);
    if (p == q) continue;
    if (p < q) std::swap(p, q);  // CRT convention: p > q
    BigInt n = p * q;
    if (n.bit_length() != bits) continue;
    BigInt p1 = p - BigInt(1);
    BigInt q1 = q - BigInt(1);
    BigInt phi = p1 * q1;
    if (BigInt::gcd(e, phi) != BigInt(1)) continue;
    BigInt d = BigInt::mod_inverse(e, phi);
    RsaPrivateKey priv;
    priv.n = n;
    priv.e = e;
    priv.d = d;
    priv.p = p;
    priv.q = q;
    priv.dp = d % p1;
    priv.dq = d % q1;
    priv.qinv = BigInt::mod_inverse(q, p);
    return RsaKeyPair{priv.public_key(), std::move(priv)};
  }
}

Bytes rsa_sign_sha1(const RsaPrivateKey& key, BytesView msg) {
  GLOBE_PROFILE_SCOPE("rsa_sign");
  auto digest = Sha1::digest(msg);
  return sign_encoded(key, BytesView(kSha1Prefix, sizeof(kSha1Prefix)),
                      BytesView(digest.data(), digest.size()));
}

bool rsa_verify_sha1(const RsaPublicKey& key, BytesView msg, BytesView signature) {
  GLOBE_PROFILE_SCOPE("rsa_verify");
  auto digest = Sha1::digest(msg);
  return verify_encoded(key, BytesView(kSha1Prefix, sizeof(kSha1Prefix)),
                        BytesView(digest.data(), digest.size()), signature);
}

Bytes rsa_sign_sha256(const RsaPrivateKey& key, BytesView msg) {
  GLOBE_PROFILE_SCOPE("rsa_sign");
  auto digest = Sha256::digest(msg);
  return sign_encoded(key, BytesView(kSha256Prefix, sizeof(kSha256Prefix)),
                      BytesView(digest.data(), digest.size()));
}

bool rsa_verify_sha256(const RsaPublicKey& key, BytesView msg, BytesView signature) {
  GLOBE_PROFILE_SCOPE("rsa_verify");
  auto digest = Sha256::digest(msg);
  return verify_encoded(key, BytesView(kSha256Prefix, sizeof(kSha256Prefix)),
                        BytesView(digest.data(), digest.size()), signature);
}

Result<Bytes> rsa_encrypt(const RsaPublicKey& key, BytesView msg,
                          util::RandomSource& rng) {
  GLOBE_PROFILE_SCOPE("rsa_encrypt");
  std::size_t k = key.modulus_bytes();
  if (k < 11 || msg.size() > k - 11) {
    return Result<Bytes>(ErrorCode::kInvalidArgument, "rsa_encrypt: message too long");
  }
  // EME-PKCS1-v1_5: 0x00 0x02 PS(nonzero) 0x00 M.
  Bytes em;
  em.reserve(k);
  em.push_back(0x00);
  em.push_back(0x02);
  std::size_t ps_len = k - msg.size() - 3;
  while (em.size() < 2 + ps_len) {
    Bytes r = rng.bytes(ps_len);
    for (std::uint8_t b : r) {
      if (b != 0 && em.size() < 2 + ps_len) em.push_back(b);
    }
  }
  em.push_back(0x00);
  util::append(em, msg);
  BigInt m = BigInt::from_bytes(em);
  BigInt c = BigInt::mod_pow(m, key.e, key.n);
  return c.to_bytes(k);
}

Result<Bytes> rsa_decrypt(const RsaPrivateKey& key, BytesView ct) {
  GLOBE_PROFILE_SCOPE("rsa_decrypt");
  std::size_t k = (key.n.bit_length() + 7) / 8;
  if (ct.size() != k) {
    return Result<Bytes>(ErrorCode::kInvalidArgument, "rsa_decrypt: bad ciphertext size");
  }
  BigInt c = BigInt::from_bytes(ct);
  if (c >= key.n) {
    return Result<Bytes>(ErrorCode::kInvalidArgument, "rsa_decrypt: ciphertext >= n");
  }
  BigInt m = rsa_private_op(key, c);
  Bytes em = m.to_bytes(k);
  if (em.size() < 11 || em[0] != 0x00 || em[1] != 0x02) {
    return Result<Bytes>(ErrorCode::kProtocol, "rsa_decrypt: bad padding");
  }
  std::size_t sep = 2;
  while (sep < em.size() && em[sep] != 0x00) ++sep;
  if (sep == em.size() || sep < 10) {
    return Result<Bytes>(ErrorCode::kProtocol, "rsa_decrypt: bad padding");
  }
  return Bytes(em.begin() + static_cast<std::ptrdiff_t>(sep + 1), em.end());
}

}  // namespace globe::crypto
