// AES-128/192/256 block cipher (FIPS 197) and CTR-mode keystream.
//
// Used by the TLS-like secure channel that serves as the paper's "Apache +
// SSL" baseline.  Table-based implementation; not hardened against cache
// timing (acceptable: the adversary model in the paper is a malicious
// *server*, not a local side-channel observer).
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace globe::crypto {

class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;
  using Block = std::array<std::uint8_t, kBlockSize>;

  /// Key must be 16, 24 or 32 bytes; throws std::invalid_argument otherwise.
  explicit Aes(util::BytesView key);

  void encrypt_block(const Block& in, Block& out) const;
  void decrypt_block(const Block& in, Block& out) const;

 private:
  std::array<std::uint32_t, 60> round_keys_{};
  int rounds_ = 0;
};

/// AES-CTR keystream cipher.  Encryption and decryption are the same
/// operation; the counter block is (nonce[12] || be32 counter).
class AesCtr {
 public:
  /// nonce must be 12 bytes.
  AesCtr(util::BytesView key, util::BytesView nonce);

  /// XORs the keystream into `data` in place, continuing from the current
  /// stream position.
  void process(util::Bytes& data);
  util::Bytes process_copy(util::BytesView data);

 private:
  void refill();

  Aes aes_;
  Aes::Block counter_{};
  Aes::Block keystream_{};
  std::size_t keystream_used_ = Aes::kBlockSize;
};

}  // namespace globe::crypto
