// RSA key generation, PKCS#1 v1.5 signatures (SHA-1 / SHA-256 DigestInfo)
// and PKCS#1 v1.5 encryption, built on the BigInt layer.
//
// This is the signature scheme behind GlobeDoc integrity certificates and
// identity certificates (paper §3), and the key-transport primitive of the
// TLS-like baseline channel.  Private-key operations use the CRT.
#pragma once

#include <cstdint>

#include "crypto/bigint.hpp"
#include "util/bounds_annotations.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/taint_annotations.hpp"

namespace globe::crypto {

/// Hard ceiling on an RSA modulus decoded off the wire: 8192 bits.  parse()
/// rejects anything larger as a protocol error, so a peer cannot make the
/// verifier allocate or exponentiate against an absurd modulus.
inline constexpr std::size_t kMaxRsaModulusBytes = 1024;

struct RsaPublicKey {
  BigInt n;  // modulus
  BigInt e;  // public exponent

  /// Size of the modulus in bytes (= signature/ciphertext size).  Length
  /// guard: parse() rejects moduli beyond kMaxRsaModulusBytes, so for any
  /// wire-decoded key the result is capped by construction.
  GLOBE_LENGTH_GUARD std::size_t modulus_bytes() const {
    return (n.bit_length() + 7) / 8;
  }

  /// Canonical wire encoding: len-prefixed big-endian n, then e.
  util::Bytes serialize() const;
  static util::Result<RsaPublicKey> parse(util::BytesView data);

  friend bool operator==(const RsaPublicKey& a, const RsaPublicKey& b) {
    return a.n == b.n && a.e == b.e;
  }
};

struct RsaPrivateKey {
  BigInt n, e, d;
  BigInt p, q;          // prime factors
  BigInt dp, dq, qinv;  // CRT exponents and coefficient

  RsaPublicKey public_key() const { return RsaPublicKey{n, e}; }

  util::Bytes serialize() const;
  static util::Result<RsaPrivateKey> parse(util::BytesView data);
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

/// Generates an RSA key with a modulus of `bits` bits (e = 65537).
/// `bits` must be >= 256 (512+ for anything but unit tests).
RsaKeyPair rsa_generate(std::size_t bits, util::RandomSource& rng);

/// PKCS#1 v1.5 signature over SHA-1(msg) — the paper's certificate scheme.
util::Bytes rsa_sign_sha1(const RsaPrivateKey& key, util::BytesView msg);
GLOBE_SANITIZER [[nodiscard]] bool rsa_verify_sha1(const RsaPublicKey& key,
                                                   util::BytesView msg,
                                                   util::BytesView signature);

/// PKCS#1 v1.5 signature over SHA-256(msg) — used by identity certificates
/// and signed naming records.
util::Bytes rsa_sign_sha256(const RsaPrivateKey& key, util::BytesView msg);
GLOBE_SANITIZER [[nodiscard]] bool rsa_verify_sha256(const RsaPublicKey& key,
                                                     util::BytesView msg,
                                                     util::BytesView signature);

/// PKCS#1 v1.5 type-2 encryption.  msg must be <= modulus_bytes() - 11.
util::Result<util::Bytes> rsa_encrypt(const RsaPublicKey& key, util::BytesView msg,
                                      util::RandomSource& rng);
util::Result<util::Bytes> rsa_decrypt(const RsaPrivateKey& key, util::BytesView ct);

}  // namespace globe::crypto
