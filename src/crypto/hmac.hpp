// HMAC (RFC 2104) templated over the hash classes in this directory, plus an
// HKDF-style expand used by the TLS-like secure channel's key schedule.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace globe::crypto {

/// Computes HMAC-H(key, data) for H in {Sha1, Sha256}.
template <typename Hash>
typename Hash::Digest hmac(util::BytesView key, util::BytesView data) {
  constexpr std::size_t kBlock = Hash::kBlockSize;
  util::Bytes k(key.begin(), key.end());
  if (k.size() > kBlock) {
    auto d = Hash::digest(k);
    k.assign(d.begin(), d.end());
  }
  k.resize(kBlock, 0);

  util::Bytes ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Hash inner;
  inner.update(ipad);
  inner.update(data);
  auto inner_digest = inner.finish();

  Hash outer;
  outer.update(opad);
  outer.update(util::BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

template <typename Hash>
util::Bytes hmac_bytes(util::BytesView key, util::BytesView data) {
  auto d = hmac<Hash>(key, data);
  return util::Bytes(d.begin(), d.end());
}

/// HKDF-Expand (RFC 5869, SHA-256 PRF): derives `length` bytes of key
/// material from a pseudorandom key and a context label.
util::Bytes hkdf_expand_sha256(util::BytesView prk, util::BytesView info,
                               std::size_t length);

}  // namespace globe::crypto
