#include "crypto/hmac.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/sha256.hpp"

namespace globe::crypto {

util::Bytes hkdf_expand_sha256(util::BytesView prk, util::BytesView info,
                               std::size_t length) {
  constexpr std::size_t kHashLen = Sha256::kDigestSize;
  if (length > 255 * kHashLen) {
    throw std::invalid_argument("hkdf_expand: length too large");
  }
  util::Bytes out;
  out.reserve(length);
  util::Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    util::Bytes block = t;
    util::append(block, info);
    block.push_back(counter++);
    t = hmac_bytes<Sha256>(prk, block);
    std::size_t take = std::min(kHashLen, length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

}  // namespace globe::crypto
