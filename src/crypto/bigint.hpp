// Arbitrary-precision unsigned integers for the RSA implementation.
//
// Representation: little-endian vector of 32-bit limbs, normalized so the
// most significant limb is non-zero (zero is the empty vector).  All
// arithmetic is constant-correctness-first; modular exponentiation uses
// Montgomery multiplication (CIOS) when the modulus is odd, which covers
// every RSA/prime use in this codebase.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace globe::crypto {

class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(std::uint64_t v);

  /// Parses big-endian bytes (leading zeros allowed).
  static BigInt from_bytes(util::BytesView be);
  /// Parses lower/upper-case hex; throws std::invalid_argument on bad input.
  static BigInt from_hex(std::string_view hex);
  /// Parses decimal digits; throws std::invalid_argument on bad input.
  static BigInt from_dec(std::string_view dec);

  /// Minimal big-endian encoding ("" for zero when pad == 0, otherwise
  /// left-padded with zeros to exactly `pad` bytes; throws if it won't fit).
  util::Bytes to_bytes(std::size_t pad = 0) const;
  std::string to_hex() const;
  std::string to_dec() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool is_even() const { return !is_odd(); }

  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const;
  /// Value of bit i (little-endian bit order).
  bool bit(std::size_t i) const;

  /// Least significant 64 bits.
  std::uint64_t low_u64() const;

  static int cmp(const BigInt& a, const BigInt& b);
  friend bool operator==(const BigInt& a, const BigInt& b) { return cmp(a, b) == 0; }
  friend bool operator!=(const BigInt& a, const BigInt& b) { return cmp(a, b) != 0; }
  friend bool operator<(const BigInt& a, const BigInt& b) { return cmp(a, b) < 0; }
  friend bool operator<=(const BigInt& a, const BigInt& b) { return cmp(a, b) <= 0; }
  friend bool operator>(const BigInt& a, const BigInt& b) { return cmp(a, b) > 0; }
  friend bool operator>=(const BigInt& a, const BigInt& b) { return cmp(a, b) >= 0; }

  BigInt operator+(const BigInt& rhs) const;
  /// Requires *this >= rhs; throws std::underflow_error otherwise.
  BigInt operator-(const BigInt& rhs) const;
  BigInt operator*(const BigInt& rhs) const;
  /// Quotient; throws std::domain_error on division by zero.
  BigInt operator/(const BigInt& rhs) const;
  /// Remainder; throws std::domain_error on division by zero.
  BigInt operator%(const BigInt& rhs) const;

  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  /// Quotient and remainder in one pass (Knuth Algorithm D).
  static void divmod(const BigInt& num, const BigInt& den, BigInt& quot, BigInt& rem);

  /// (base ^ exp) mod m.  m must be non-zero.  Uses Montgomery form for odd
  /// m, plain square-and-multiply with division otherwise.
  static BigInt mod_pow(const BigInt& base, const BigInt& exp, const BigInt& m);

  /// Modular inverse of a mod m; throws std::domain_error when gcd(a, m) != 1.
  static BigInt mod_inverse(const BigInt& a, const BigInt& m);

  static BigInt gcd(BigInt a, BigInt b);

  /// Uniform value in [0, bound) drawn from `rng`.  bound must be > 0.
  static BigInt random_below(const BigInt& bound, util::RandomSource& rng);
  /// Random integer with exactly `bits` bits (MSB forced to 1).
  static BigInt random_bits(std::size_t bits, util::RandomSource& rng);

  const std::vector<std::uint32_t>& limbs() const { return limbs_; }

 private:
  void trim();
  /// O(n²) base multiplication; operator* switches to Karatsuba above a
  /// limb-count threshold.
  static BigInt schoolbook_mul(const BigInt& lhs, const BigInt& rhs);
  /// Lowest `limbs` limbs / everything above them (Karatsuba split).
  BigInt split_low(std::size_t limbs) const;
  BigInt split_high(std::size_t limbs) const;

  std::vector<std::uint32_t> limbs_;
};

}  // namespace globe::crypto
