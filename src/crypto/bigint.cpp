#include "crypto/bigint.hpp"

#include <algorithm>
#include <stdexcept>

namespace globe::crypto {

namespace {

using u32 = std::uint32_t;
using u64 = std::uint64_t;

constexpr u64 kBase = u64{1} << 32;

}  // namespace

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt::BigInt(std::uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<u32>(v));
  if (v >> 32) limbs_.push_back(static_cast<u32>(v >> 32));
}

BigInt BigInt::from_bytes(util::BytesView be) {
  BigInt out;
  out.limbs_.assign((be.size() + 3) / 4, 0);
  // Bytes are big-endian; limb 0 is least significant.
  for (std::size_t i = 0; i < be.size(); ++i) {
    std::size_t byte_index = be.size() - 1 - i;  // significance of be[byte_index]
    out.limbs_[i / 4] |= u32{be[byte_index]} << (8 * (i % 4));
  }
  out.trim();
  return out;
}

BigInt BigInt::from_hex(std::string_view hex) {
  if (hex.empty()) throw std::invalid_argument("BigInt::from_hex: empty");
  std::string padded(hex);
  if (padded.size() % 2) padded.insert(padded.begin(), '0');
  return from_bytes(util::hex_decode(padded));
}

BigInt BigInt::from_dec(std::string_view dec) {
  if (dec.empty()) throw std::invalid_argument("BigInt::from_dec: empty");
  BigInt out;
  BigInt ten(10);
  for (char c : dec) {
    if (c < '0' || c > '9') throw std::invalid_argument("BigInt::from_dec: bad digit");
    out = out * ten + BigInt(static_cast<u64>(c - '0'));
  }
  return out;
}

util::Bytes BigInt::to_bytes(std::size_t pad) const {
  util::Bytes minimal;
  minimal.reserve(limbs_.size() * 4);
  // Emit little-endian then reverse; skip leading zeros afterwards.
  for (u32 limb : limbs_) {
    minimal.push_back(static_cast<std::uint8_t>(limb));
    minimal.push_back(static_cast<std::uint8_t>(limb >> 8));
    minimal.push_back(static_cast<std::uint8_t>(limb >> 16));
    minimal.push_back(static_cast<std::uint8_t>(limb >> 24));
  }
  while (!minimal.empty() && minimal.back() == 0) minimal.pop_back();
  std::reverse(minimal.begin(), minimal.end());
  if (pad == 0) return minimal;
  if (minimal.size() > pad) {
    throw std::invalid_argument("BigInt::to_bytes: value does not fit in pad");
  }
  util::Bytes out(pad - minimal.size(), 0);
  util::append(out, minimal);
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  std::string s = util::hex_encode(to_bytes());
  std::size_t nz = s.find_first_not_of('0');
  return s.substr(nz == std::string::npos ? s.size() - 1 : nz);
}

std::string BigInt::to_dec() const {
  if (is_zero()) return "0";
  std::string out;
  BigInt ten(10), q, r, cur = *this;
  while (!cur.is_zero()) {
    divmod(cur, ten, q, r);
    out.push_back(static_cast<char>('0' + r.low_u64()));
    cur = q;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  u32 top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t i) const {
  std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

std::uint64_t BigInt::low_u64() const {
  u64 v = limbs_.empty() ? 0 : limbs_[0];
  if (limbs_.size() > 1) v |= u64{limbs_[1]} << 32;
  return v;
}

int BigInt::cmp(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::operator+(const BigInt& rhs) const {
  BigInt out;
  const auto& a = limbs_;
  const auto& b = rhs.limbs_;
  std::size_t n = std::max(a.size(), b.size());
  out.limbs_.resize(n + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    u64 sum = carry;
    if (i < a.size()) sum += a[i];
    if (i < b.size()) sum += b[i];
    out.limbs_[i] = static_cast<u32>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<u32>(carry);
  out.trim();
  return out;
}

BigInt BigInt::operator-(const BigInt& rhs) const {
  if (cmp(*this, rhs) < 0) {
    throw std::underflow_error("BigInt subtraction underflow");
  }
  BigInt out;
  out.limbs_.resize(limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow -
                        (i < rhs.limbs_.size() ? static_cast<std::int64_t>(rhs.limbs_[i]) : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<u32>(diff);
  }
  out.trim();
  return out;
}

namespace {

/// Below this limb count Karatsuba's recursion overhead beats its savings.
constexpr std::size_t kKaratsubaThreshold = 24;

}  // namespace

BigInt BigInt::schoolbook_mul(const BigInt& lhs, const BigInt& rhs) {
  BigInt out;
  out.limbs_.assign(lhs.limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < lhs.limbs_.size(); ++i) {
    u64 carry = 0;
    u64 ai = lhs.limbs_[i];
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      u64 cur = out.limbs_[i + j] + ai * rhs.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<u32>(cur);
      carry = cur >> 32;
    }
    out.limbs_[i + rhs.limbs_.size()] += static_cast<u32>(carry);
  }
  out.trim();
  return out;
}

BigInt BigInt::split_low(std::size_t limbs) const {
  BigInt out;
  out.limbs_.assign(limbs_.begin(),
                    limbs_.begin() + static_cast<std::ptrdiff_t>(
                                         std::min(limbs, limbs_.size())));
  out.trim();
  return out;
}

BigInt BigInt::split_high(std::size_t limbs) const {
  BigInt out;
  if (limbs < limbs_.size()) {
    out.limbs_.assign(limbs_.begin() + static_cast<std::ptrdiff_t>(limbs),
                      limbs_.end());
  }
  return out;
}

BigInt BigInt::operator*(const BigInt& rhs) const {
  if (is_zero() || rhs.is_zero()) return BigInt();
  if (std::min(limbs_.size(), rhs.limbs_.size()) < kKaratsubaThreshold) {
    return schoolbook_mul(*this, rhs);
  }
  // Karatsuba: split both at half the larger operand.
  //   x = x1·B + x0,  y = y1·B + y0   (B = 2^(32·half))
  //   x·y = z2·B² + z1·B + z0 with z2 = x1·y1, z0 = x0·y0,
  //   z1 = (x0+x1)(y0+y1) − z2 − z0  — three multiplies instead of four.
  std::size_t half = std::max(limbs_.size(), rhs.limbs_.size()) / 2;
  BigInt x0 = split_low(half), x1 = split_high(half);
  BigInt y0 = rhs.split_low(half), y1 = rhs.split_high(half);

  BigInt z2 = x1 * y1;
  BigInt z0 = x0 * y0;
  BigInt z1 = (x0 + x1) * (y0 + y1) - z2 - z0;

  return (z2 << (64 * half)) + (z1 << (32 * half)) + z0;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    BigInt out = *this;
    return out;
  }
  std::size_t limb_shift = bits / 32;
  std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u64 v = u64{limbs_[i]} << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<u32>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<u32>(v >> 32);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator>>(std::size_t bits) const {
  std::size_t limb_shift = bits / 32;
  std::size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return BigInt();
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    u64 v = u64{limbs_[i + limb_shift]} >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      v |= u64{limbs_[i + limb_shift + 1]} << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<u32>(v);
  }
  out.trim();
  return out;
}

void BigInt::divmod(const BigInt& num, const BigInt& den, BigInt& quot, BigInt& rem) {
  if (den.is_zero()) throw std::domain_error("BigInt division by zero");
  if (cmp(num, den) < 0) {
    quot = BigInt();
    rem = num;
    return;
  }
  if (den.limbs_.size() == 1) {
    // Short division by a single limb.
    u64 d = den.limbs_[0];
    BigInt q;
    q.limbs_.assign(num.limbs_.size(), 0);
    u64 r = 0;
    for (std::size_t i = num.limbs_.size(); i-- > 0;) {
      u64 cur = r << 32 | num.limbs_[i];
      q.limbs_[i] = static_cast<u32>(cur / d);
      r = cur % d;
    }
    q.trim();
    quot = std::move(q);
    rem = BigInt(r);
    return;
  }

  // Knuth Algorithm D (TAOCP 4.3.1) with 32-bit digits.
  const std::size_t n = den.limbs_.size();
  const std::size_t m = num.limbs_.size() - n;

  // Normalize: shift so the divisor's top limb has its high bit set.
  unsigned s = 0;
  for (u32 top = den.limbs_.back(); !(top & 0x80000000u); top <<= 1) ++s;

  std::vector<u32> v(n);
  for (std::size_t i = n; i-- > 0;) {
    v[i] = den.limbs_[i] << s;
    if (s && i > 0) v[i] |= static_cast<u32>(u64{den.limbs_[i - 1]} >> (32 - s));
  }
  std::vector<u32> u(num.limbs_.size() + 1, 0);
  u[num.limbs_.size()] =
      s ? static_cast<u32>(u64{num.limbs_.back()} >> (32 - s)) : 0;
  for (std::size_t i = num.limbs_.size(); i-- > 0;) {
    u[i] = num.limbs_[i] << s;
    if (s && i > 0) u[i] |= static_cast<u32>(u64{num.limbs_[i - 1]} >> (32 - s));
  }

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    u64 num2 = u64{u[j + n]} << 32 | u[j + n - 1];
    u64 qhat = num2 / v[n - 1];
    u64 rhat = num2 % v[n - 1];
    while (qhat >= kBase ||
           qhat * v[n - 2] > (rhat << 32 | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= kBase) break;
    }
    // Multiply-and-subtract: u[j..j+n] -= qhat * v.
    std::int64_t borrow = 0;
    u64 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      u64 p = qhat * v[i] + carry;
      carry = p >> 32;
      std::int64_t t = static_cast<std::int64_t>(u[i + j]) -
                       static_cast<std::int64_t>(p & 0xffffffffu) - borrow;
      if (t < 0) {
        t += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<u32>(t);
    }
    std::int64_t t = static_cast<std::int64_t>(u[j + n]) -
                     static_cast<std::int64_t>(carry) - borrow;
    if (t < 0) {
      // qhat was one too large: add the divisor back.
      t += static_cast<std::int64_t>(kBase);
      --qhat;
      u64 carry2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        u64 sum = u64{u[i + j]} + v[i] + carry2;
        u[i + j] = static_cast<u32>(sum);
        carry2 = sum >> 32;
      }
      t += static_cast<std::int64_t>(carry2);
      t &= 0xffffffff;
    }
    u[j + n] = static_cast<u32>(t);
    q.limbs_[j] = static_cast<u32>(qhat);
  }
  q.trim();

  // Denormalize the remainder.
  BigInt r;
  r.limbs_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    r.limbs_[i] = u[i] >> s;
    if (s && i + 1 < u.size()) {
      r.limbs_[i] |= static_cast<u32>(u64{u[i + 1]} << (32 - s));
    }
  }
  r.trim();

  quot = std::move(q);
  rem = std::move(r);
}

BigInt BigInt::operator/(const BigInt& rhs) const {
  BigInt q, r;
  divmod(*this, rhs, q, r);
  return q;
}

BigInt BigInt::operator%(const BigInt& rhs) const {
  BigInt q, r;
  divmod(*this, rhs, q, r);
  return r;
}

namespace {

// Montgomery context for an odd modulus m of k limbs.
struct MontCtx {
  std::vector<u32> m;   // modulus limbs
  u32 m0inv;            // -m^{-1} mod 2^32
  std::size_t k;

  explicit MontCtx(const BigInt& modulus) : m(modulus.limbs()), k(m.size()) {
    // Newton iteration: inv = m[0]^{-1} mod 2^32.
    u32 inv = 1;
    for (int i = 0; i < 5; ++i) inv *= 2 - m[0] * inv;
    m0inv = static_cast<u32>(0u - inv);
  }

  // r = a * b * R^{-1} mod m  (CIOS).  a, b, r are k-limb vectors; a and b
  // must be < m.
  void mul(const std::vector<u32>& a, const std::vector<u32>& b,
           std::vector<u32>& r) const {
    std::vector<u32> t(k + 2, 0);
    for (std::size_t i = 0; i < k; ++i) {
      // t += a[i] * b
      u64 carry = 0;
      u64 ai = a[i];
      for (std::size_t j = 0; j < k; ++j) {
        u64 cur = t[j] + ai * b[j] + carry;
        t[j] = static_cast<u32>(cur);
        carry = cur >> 32;
      }
      u64 cur = u64{t[k]} + carry;
      t[k] = static_cast<u32>(cur);
      t[k + 1] = static_cast<u32>(u64{t[k + 1]} + (cur >> 32));

      // t = (t + mu * m) / base
      u32 mu = static_cast<u32>(t[0] * m0inv);
      cur = u64{t[0]} + u64{mu} * m[0];
      carry = cur >> 32;
      for (std::size_t j = 1; j < k; ++j) {
        cur = t[j] + u64{mu} * m[j] + carry;
        t[j - 1] = static_cast<u32>(cur);
        carry = cur >> 32;
      }
      cur = u64{t[k]} + carry;
      t[k - 1] = static_cast<u32>(cur);
      t[k] = static_cast<u32>(u64{t[k + 1]} + (cur >> 32));
      t[k + 1] = 0;
    }
    // Conditional final subtraction: t may be in [0, 2m).
    bool ge = t[k] != 0;
    if (!ge) {
      ge = true;
      for (std::size_t i = k; i-- > 0;) {
        if (t[i] != m[i]) {
          ge = t[i] > m[i];
          break;
        }
      }
    }
    r.assign(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(k));
    if (ge) {
      std::int64_t borrow = 0;
      for (std::size_t i = 0; i < k; ++i) {
        std::int64_t d = static_cast<std::int64_t>(r[i]) -
                         static_cast<std::int64_t>(m[i]) - borrow;
        if (d < 0) {
          d += static_cast<std::int64_t>(kBase);
          borrow = 1;
        } else {
          borrow = 0;
        }
        r[i] = static_cast<u32>(d);
      }
    }
  }
};

BigInt from_limbs(std::vector<u32> limbs) {
  // Round-trip through bytes to reuse normalization; cheap relative to modexp.
  util::Bytes be;
  be.reserve(limbs.size() * 4);
  for (std::size_t i = limbs.size(); i-- > 0;) {
    be.push_back(static_cast<std::uint8_t>(limbs[i] >> 24));
    be.push_back(static_cast<std::uint8_t>(limbs[i] >> 16));
    be.push_back(static_cast<std::uint8_t>(limbs[i] >> 8));
    be.push_back(static_cast<std::uint8_t>(limbs[i]));
  }
  return BigInt::from_bytes(be);
}

std::vector<u32> to_fixed_limbs(const BigInt& v, std::size_t k) {
  std::vector<u32> out(k, 0);
  const auto& l = v.limbs();
  std::copy(l.begin(), l.end(), out.begin());
  return out;
}

}  // namespace

BigInt BigInt::mod_pow(const BigInt& base, const BigInt& exp, const BigInt& m) {
  if (m.is_zero()) throw std::domain_error("mod_pow: zero modulus");
  if (m == BigInt(1)) return BigInt();
  BigInt b = base % m;
  if (exp.is_zero()) return BigInt(1);

  if (m.is_odd()) {
    MontCtx ctx(m);
    const std::size_t k = ctx.k;
    // R mod m and R^2 mod m via division (one-time cost).
    BigInt R = BigInt(1) << (32 * k);
    BigInt r_mod = R % m;
    BigInt r2_mod = (r_mod * r_mod) % m;

    std::vector<u32> x = to_fixed_limbs(r_mod, k);            // 1 in Mont form
    std::vector<u32> a = to_fixed_limbs(b, k);
    std::vector<u32> a_bar(k), tmp(k);
    ctx.mul(a, to_fixed_limbs(r2_mod, k), a_bar);             // a*R mod m

    std::size_t bits = exp.bit_length();
    for (std::size_t i = bits; i-- > 0;) {
      ctx.mul(x, x, tmp);
      x.swap(tmp);
      if (exp.bit(i)) {
        ctx.mul(x, a_bar, tmp);
        x.swap(tmp);
      }
    }
    // Convert out of Montgomery form: x * 1 * R^{-1}.
    std::vector<u32> one(k, 0);
    one[0] = 1;
    ctx.mul(x, one, tmp);
    return from_limbs(std::move(tmp));
  }

  // Even modulus: plain square-and-multiply with division-based reduction.
  BigInt result(1);
  std::size_t bits = exp.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    result = (result * result) % m;
    if (exp.bit(i)) result = (result * b) % m;
  }
  return result;
}

BigInt BigInt::mod_inverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid on (a mod m, m) tracking only the coefficient of a.
  // Signs handled by tracking magnitudes plus a boolean.
  BigInt r0 = m, r1 = a % m;
  BigInt t0, t1(1);
  bool t0_neg = false, t1_neg = false;
  while (!r1.is_zero()) {
    BigInt q = r0 / r1;
    BigInt r2 = r0 - q * r1;
    // t2 = t0 - q*t1 with sign tracking.
    BigInt qt1 = q * t1;
    BigInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      if (t0 >= qt1) {
        t2 = t0 - qt1;
        t2_neg = t0_neg;
      } else {
        t2 = qt1 - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt1;
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }
  if (r0 != BigInt(1)) throw std::domain_error("mod_inverse: not coprime");
  if (t0_neg) return m - (t0 % m);
  return t0 % m;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::random_below(const BigInt& bound, util::RandomSource& rng) {
  if (bound.is_zero()) throw std::domain_error("random_below: zero bound");
  std::size_t bits = bound.bit_length();
  std::size_t nbytes = (bits + 7) / 8;
  unsigned top_mask = bits % 8 ? (1u << (bits % 8)) - 1 : 0xffu;
  for (;;) {
    util::Bytes raw = rng.bytes(nbytes);
    raw[0] = static_cast<std::uint8_t>(raw[0] & top_mask);
    BigInt candidate = from_bytes(raw);
    if (candidate < bound) return candidate;
  }
}

BigInt BigInt::random_bits(std::size_t bits, util::RandomSource& rng) {
  if (bits == 0) return BigInt();
  std::size_t nbytes = (bits + 7) / 8;
  util::Bytes raw = rng.bytes(nbytes);
  unsigned top_bit = (bits - 1) % 8;
  unsigned top_mask = (1u << (top_bit + 1)) - 1;
  raw[0] = static_cast<std::uint8_t>((raw[0] & top_mask) | (1u << top_bit));
  return from_bytes(raw);
}

}  // namespace globe::crypto
