// HMAC-DRBG (NIST SP 800-90A) with SHA-256, plus the process-wide system
// entropy source.  The DRBG gives tests and benchmarks fully deterministic
// key generation from a seed.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace globe::crypto {

class HmacDrbg final : public util::RandomSource {
 public:
  /// Instantiates from arbitrary seed material (entropy || nonce ||
  /// personalization, pre-concatenated by the caller).
  explicit HmacDrbg(util::BytesView seed);

  /// Convenience: seed from a 64-bit value (tests, benchmarks).
  static HmacDrbg from_seed(std::uint64_t seed);

  void fill(util::Bytes& out, std::size_t n) override;

  /// Mixes additional entropy into the state.
  void reseed(util::BytesView seed);

 private:
  void update(util::BytesView provided);

  util::Bytes key_;  // K
  util::Bytes v_;    // V
};

/// OS entropy (/dev/urandom).  Throws std::runtime_error if unavailable.
class SystemRandom final : public util::RandomSource {
 public:
  void fill(util::Bytes& out, std::size_t n) override;
};

}  // namespace globe::crypto
