#include "crypto/merkle.hpp"

#include <stdexcept>

#include <algorithm>

#include "obs/profile.hpp"
#include "util/serial.hpp"

namespace globe::crypto {

using util::Bytes;
using util::BytesView;

Bytes MerkleTree::hash_leaf(BytesView data) {
  Sha1 h;
  std::uint8_t tag = 0x00;
  h.update(BytesView(&tag, 1));
  h.update(data);
  auto d = h.finish();
  return Bytes(d.begin(), d.end());
}

Bytes MerkleTree::hash_interior(BytesView left, BytesView right) {
  Sha1 h;
  std::uint8_t tag = 0x01;
  h.update(BytesView(&tag, 1));
  h.update(left);
  h.update(right);
  auto d = h.finish();
  return Bytes(d.begin(), d.end());
}

MerkleTree::MerkleTree(const std::vector<Bytes>& leaves) {
  GLOBE_PROFILE_SCOPE("merkle_build");
  if (leaves.empty()) throw std::invalid_argument("MerkleTree: no leaves");
  std::vector<Bytes> level;
  level.reserve(leaves.size());
  for (const auto& leaf : leaves) level.push_back(hash_leaf(leaf));
  levels_.push_back(std::move(level));
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Bytes> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < prev.size(); i += 2) {
      next.push_back(hash_interior(prev[i], prev[i + 1]));
    }
    if (prev.size() % 2 == 1) next.push_back(prev.back());
    levels_.push_back(std::move(next));
  }
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  GLOBE_PROFILE_SCOPE("merkle_prove");
  if (index >= levels_[0].size()) throw std::out_of_range("MerkleTree::prove");
  MerkleProof proof;
  proof.leaf_index = index;
  std::size_t pos = index;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& nodes = levels_[lvl];
    std::size_t sibling = pos ^ 1;
    if (sibling < nodes.size()) {
      proof.steps.push_back({nodes[sibling], sibling < pos});
    }
    // Promoted odd node: no sibling at this level, position carries over.
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::verify(BytesView leaf_data, const MerkleProof& proof,
                        BytesView expected_root) {
  GLOBE_PROFILE_SCOPE("merkle_verify");
  Bytes current = hash_leaf(leaf_data);
  for (const auto& step : proof.steps) {
    if (step.sibling.size() != Sha1::kDigestSize) return false;
    current = step.sibling_is_left ? hash_interior(step.sibling, current)
                                   : hash_interior(current, step.sibling);
  }
  return util::ct_equal(current, expected_root);
}

Bytes MerkleProof::serialize() const {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(leaf_index));
  w.u32(static_cast<std::uint32_t>(steps.size()));
  for (const auto& s : steps) {
    w.u8(s.sibling_is_left ? 1 : 0);
    w.bytes(s.sibling);
  }
  return w.take();
}

MerkleProof MerkleProof::parse(BytesView data) {
  util::Reader r(data);
  MerkleProof proof;
  proof.leaf_index = r.u32();
  std::uint32_t n = util::checked_count(
      r.u32(), static_cast<std::uint32_t>(kMaxMerkleProofSteps));
  proof.steps.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    MerkleProofStep step;
    step.sibling_is_left = r.u8() != 0;
    step.sibling = r.bytes();
    proof.steps.push_back(std::move(step));
  }
  r.expect_end();
  return proof;
}

}  // namespace globe::crypto
