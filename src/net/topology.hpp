// The paper's experimental setting (Table 1) as a simulated topology.
//
// Hosts: two in Amsterdam (the "primary" runs the object server and the
// Apache baseline; the "secondary" is the LAN client), one in Paris (INRIA)
// and one in Ithaca, NY (Cornell).  Link parameters are era-calibrated
// (100 Mbit LAN; ~20 ms RTT trans-European path; ~90 ms RTT transatlantic
// path); the calibration constants are recorded in EXPERIMENTS.md.
#pragma once

#include "net/simnet.hpp"

namespace globe::net {

struct PaperTopology {
  /// Constructs the Table 1 topology (hosts + links) ready for use.
  PaperTopology();

  SimNet net;
  HostId amsterdam_primary;    // ginger.cs.vu.nl   — dual PIII 1 GHz, 2 GB
  HostId amsterdam_secondary;  // sporty.cs.vu.nl   — dual PIII 1 GHz, 2 GB
  HostId paris;                // canardo.inria.fr  — PIII 1 GHz, 256 MB
  HostId ithaca;               // ensamble02.cornell.edu — UltraSPARC-IIi 450 MHz

  /// The three client hosts of the evaluation, in paper order.
  std::vector<HostId> clients() const {
    return {amsterdam_secondary, paris, ithaca};
  }
  std::string client_label(HostId h) const;
};

/// Link calibration constants, exposed for EXPERIMENTS.md and the
/// bench_table1_setup dump.
struct PaperLinks {
  static constexpr util::SimDuration kLanLatency = util::micros(200);
  static constexpr double kLanBandwidth = 11.5e6;  // ~100 Mbit effective

  static constexpr util::SimDuration kParisLatency = util::millis(10);
  static constexpr double kParisBandwidth = 2.0e6;  // ~16 Mbit effective

  static constexpr util::SimDuration kIthacaLatency = util::millis(45);
  static constexpr double kIthacaBandwidth = 0.3e6;  // ~2.4 Mbit effective
};

}  // namespace globe::net
