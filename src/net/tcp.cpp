#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "util/log.hpp"
#include "util/serial.hpp"

namespace globe::net {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Result;

namespace {

// Returns false on EOF/error.
bool read_exact(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r <= 0) return false;
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_all(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r <= 0) return false;
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

bool send_frame(int fd, BytesView payload) {
  std::uint8_t len[4] = {
      static_cast<std::uint8_t>(payload.size() >> 24),
      static_cast<std::uint8_t>(payload.size() >> 16),
      static_cast<std::uint8_t>(payload.size() >> 8),
      static_cast<std::uint8_t>(payload.size()),
  };
  return write_all(fd, len, 4) && write_all(fd, payload.data(), payload.size());
}

constexpr std::size_t kMaxFrame = 64 * 1024 * 1024;

bool recv_frame(int fd, Bytes& out) {
  std::uint8_t len[4];
  if (!read_exact(fd, len, 4)) return false;
  std::size_t n = std::size_t{len[0]} << 24 | std::size_t{len[1]} << 16 |
                  std::size_t{len[2]} << 8 | len[3];
  if (n > kMaxFrame) return false;
  out.assign(n, 0);
  return n == 0 || read_exact(fd, out.data(), n);
}

/// Wall-clock server context for live handlers.
class TcpServerContext final : public ServerContext {
 public:
  explicit TcpServerContext(Transport& nested) : nested_(nested) {}
  util::SimTime now() const override { return clock_.now(); }
  void charge(CpuOp, std::uint64_t) override {}
  HostId local_host() const override { return HostId{0}; }
  Transport& transport() override { return nested_; }

 private:
  util::RealClock clock_;
  Transport& nested_;
};

}  // namespace

TcpServer::TcpServer(std::uint16_t port, MessageHandler handler, std::size_t workers)
    : handler_(std::move(handler)), pool_(workers) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("TcpServer: socket() failed");
  int yes = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof(yes));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpServer: bind() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpServer: listen() failed");
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  pool_.wait_idle();
}

void TcpServer::accept_loop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      continue;
    }
    pool_.submit([this, fd] { serve_connection(fd); });
  }
}

void TcpServer::serve_connection(int fd) {
  int yes = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof(yes));
  Bytes request;
  while (!stopping_.load() && recv_frame(fd, request)) {
    TcpTransport nested;
    TcpServerContext ctx(nested);
    Result<Bytes> result(ErrorCode::kInternal, "handler did not run");
    try {
      result = handler_(ctx, request);
    } catch (const std::exception& e) {
      result = Result<Bytes>(ErrorCode::kInternal,
                             std::string("handler threw: ") + e.what());
    }
    util::Writer w;
    if (result.is_ok()) {
      w.u8(1);
      w.raw(*result);
    } else {
      w.u8(0);
      w.u8(static_cast<std::uint8_t>(result.status().code()));
      w.str(result.status().message());
    }
    if (!send_frame(fd, w.buffer())) break;
  }
  ::close(fd);
}

TcpTransport::~TcpTransport() { reset_connections(); }

void TcpTransport::reset_connections() {
  for (auto& [port, fd] : connections_) ::close(fd);
  connections_.clear();
}

int TcpTransport::connect_to(std::uint16_t port) {
  auto it = connections_.find(port);
  if (it != connections_.end()) return it->second;

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int yes = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof(yes));
  connections_[port] = fd;
  return fd;
}

Result<Bytes> TcpTransport::call(const Endpoint& ep, BytesView request) {
  int fd = connect_to(ep.port);
  if (fd < 0) {
    return Result<Bytes>(ErrorCode::kUnavailable,
                         "cannot connect to port " + std::to_string(ep.port));
  }
  if (!send_frame(fd, request)) {
    connections_.erase(ep.port);
    ::close(fd);
    return Result<Bytes>(ErrorCode::kUnavailable, "send failed");
  }
  Bytes frame;
  if (!recv_frame(fd, frame)) {
    connections_.erase(ep.port);
    ::close(fd);
    return Result<Bytes>(ErrorCode::kUnavailable, "connection closed by peer");
  }
  try {
    util::Reader r(frame);
    if (r.u8() == 1) {
      return r.raw(r.remaining());
    }
    auto code = static_cast<ErrorCode>(r.u8());
    return Result<Bytes>(code, r.str());
  } catch (const util::SerialError& e) {
    return Result<Bytes>(ErrorCode::kProtocol, e.what());
  }
}

}  // namespace globe::net
