// Deterministic network simulator — the substitution for the paper's
// four-host WAN testbed (DESIGN.md §2).
//
// Model:
//  * Hosts carry an era-calibrated CpuModel.
//  * Links (pairwise, symmetric) have one-way latency and bandwidth; a
//    message of S bytes takes latency + S/bandwidth to arrive.
//  * Each flow (client session) owns a virtual clock.  An RPC advances it by
//    request delay, server queueing, server CPU (request overhead plus
//    whatever the handler charges), and response delay.
//  * Hosts serve one request at a time — in VIRTUAL time: each request books
//    the earliest free CPU interval on the serving host (reserve_cpu), so
//    flash crowds saturate a host exactly as a single-CPU server would.
//    Real-time handler execution is NOT serialized; handlers synchronize
//    their own state, and the per-host lock guards only the booking table.
//  * The first call a flow makes to an endpoint pays one extra round trip
//    (TCP connection establishment); reset_connections() forgets them.
//
// Determinism: with flows driven from one thread the simulation is exact
// and repeatable.  Flows may also run concurrently on a thread pool
// (flash-crowd benchmarks); results are then approximate in arrival order
// but time accounting stays consistent.  One usage rule in concurrent
// mode: topology mutations (add_host, set_link, set_link_down) are
// setup-time operations — they are not synchronized against in-flight
// flows and must only run while no flow is executing.  Handlers may nest
// cross-host calls freely: no per-host lock is held across handler
// execution, so nested calls cannot form lock cycles.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/address.hpp"
#include "net/cpu_model.hpp"
#include "net/transport.hpp"
#include "util/clock.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace globe::net {

struct HostParams {
  std::string name;
  CpuModel cpu;
};

struct LinkParams {
  util::SimDuration latency = util::millis(1);       // one-way
  double bandwidth_bytes_per_s = 1.25e6;             // 10 Mbit/s default
};

/// Framing + TCP/IP header overhead added to every message.
constexpr std::size_t kWireOverhead = 78;

class SimFlow;

class SimNet {
 public:
  SimNet() = default;
  SimNet(const SimNet&) = delete;
  SimNet& operator=(const SimNet&) = delete;

  HostId add_host(HostParams params);
  std::size_t host_count() const { return hosts_.size(); }
  const HostParams& host(HostId id) const;

  /// Sets the symmetric link between two hosts (a == b sets loopback).
  void set_link(HostId a, HostId b, LinkParams params);
  /// Link used when no explicit pair entry exists.
  void set_default_link(LinkParams params) { default_link_ = params; }
  const LinkParams& link(HostId a, HostId b) const;

  /// Marks a link (bidirectionally) down/up; calls across it fail with
  /// UNAVAILABLE.
  void set_link_down(HostId a, HostId b, bool down);

  /// Binds a handler at an endpoint; throws std::logic_error if taken.
  void bind(const Endpoint& ep, MessageHandler handler)
      GLOBE_EXCLUDES(bind_mutex_);
  void unbind(const Endpoint& ep) GLOBE_EXCLUDES(bind_mutex_);
  bool is_bound(const Endpoint& ep) const GLOBE_EXCLUDES(bind_mutex_);

  /// Opens a client flow originating at `host`, starting at virtual time
  /// `start`.  The flow keeps a pointer to this SimNet, which must outlive it.
  std::unique_ptr<SimFlow> open_flow(HostId host, util::SimTime start = 0);

  /// Latest busy-until watermark across all hosts: a flow opened at (or
  /// after) this time observes a quiescent network.  Benchmarks use this to
  /// take independent measurements (the paper sampled at 6-minute
  /// intervals) instead of queueing behind earlier runs.
  util::SimTime horizon() const;

  /// Opens a flow at horizon() + `guard` — a fresh, unloaded measurement.
  std::unique_ptr<SimFlow> open_quiescent_flow(
      HostId host, util::SimDuration guard = util::kSecond);

 private:
  friend class SimFlow;

  struct HostState {
    HostParams params;
    // Guards the CPU booking table below.  Held only inside reserve_cpu /
    // horizon — never across handler execution, so nested cross-host calls
    // cannot build lock-order cycles.  (Heap-allocated so HostState stays
    // movable inside hosts_.)
    std::unique_ptr<util::Mutex> lock = std::make_unique<util::Mutex>();
    // Reserved CPU intervals (start -> end).  A request arriving at time t
    // is served in the earliest gap of sufficient length at or after t, so
    // independent flows interleave between each other's RPCs and a host
    // saturates exactly when the offered CPU work exceeds capacity.
    std::map<util::SimTime, util::SimTime> reservations GLOBE_GUARDED_BY(*lock);
    util::SimTime busy_until GLOBE_GUARDED_BY(*lock) = 0;  // max reservation end
  };

  /// Books `duration` of CPU on `hs` no earlier than `arrival`; returns the
  /// start time.  Caller must hold the host lock.
  static util::SimTime reserve_cpu(HostState& hs, util::SimTime arrival,
                                   util::SimDuration duration)
      GLOBE_REQUIRES(*hs.lock);

  util::Result<util::Bytes> deliver(SimFlow& flow, const Endpoint& ep,
                                    util::BytesView request)
      GLOBE_EXCLUDES(bind_mutex_);

  std::vector<HostState> hosts_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, LinkParams> links_;
  std::unordered_set<std::uint64_t> down_links_;
  LinkParams default_link_;
  mutable util::Mutex bind_mutex_;
  std::unordered_map<Endpoint, MessageHandler> handlers_
      GLOBE_GUARDED_BY(bind_mutex_);
};

/// A client session with its own virtual clock.  Implements Transport.
class SimFlow final : public Transport {
 public:
  GLOBE_BLOCKING util::Result<util::Bytes> call(const Endpoint& ep,
                                                util::BytesView request) override;
  util::SimTime now() const override { return now_; }
  void charge(CpuOp op, std::uint64_t amount) override;
  HostId local_host() const override { return host_; }

  /// Advances the clock without CPU accounting (think time between requests).
  void advance(util::SimDuration d) { now_ += d; }
  void set_time(util::SimTime t) { now_ = t; }
  void advance_to(util::SimTime t) override {
    if (t > now_) now_ = t;
  }

  /// Forgets established connections: the next call to each endpoint pays
  /// the connection-setup round trip again.
  void reset_connections() { connected_.clear(); }

  /// Total CPU time this flow has charged client-side (diagnostics).
  util::SimDuration client_cpu() const { return client_cpu_; }

 private:
  friend class SimNet;
  SimFlow(SimNet* net, HostId host, util::SimTime start)
      : net_(net), host_(host), now_(start) {}

  SimNet* net_;
  HostId host_;
  util::SimTime now_;
  util::SimDuration client_cpu_ = 0;
  std::unordered_set<Endpoint> connected_;
};

}  // namespace globe::net
