#include "net/cpu_model.hpp"

namespace globe::net {

namespace {

util::SimDuration per_byte(double mb_per_s, std::uint64_t bytes, double scale) {
  // ns per byte = 1e9 / (MB/s * 1e6) = 1000 / MB/s.
  double ns = static_cast<double>(bytes) * (1000.0 / mb_per_s) * scale;
  return static_cast<util::SimDuration>(ns);
}

util::SimDuration fixed(util::SimDuration unit, std::uint64_t count, double scale) {
  return static_cast<util::SimDuration>(static_cast<double>(unit) * scale *
                                        static_cast<double>(count));
}

}  // namespace

util::SimDuration CpuModel::cost(CpuOp op, std::uint64_t amount) const {
  switch (op) {
    case CpuOp::kSha1: return per_byte(sha1_mb_s, amount, scale);
    case CpuOp::kSha256: return per_byte(sha256_mb_s, amount, scale);
    case CpuOp::kSymCipher: return per_byte(sym_mb_s, amount, scale);
    case CpuOp::kRsaVerify: return fixed(rsa_verify, amount, scale);
    case CpuOp::kRsaSign: return fixed(rsa_sign, amount, scale);
    case CpuOp::kRsaEncrypt: return fixed(rsa_encrypt, amount, scale);
    case CpuOp::kRsaDecrypt: return fixed(rsa_decrypt, amount, scale);
    case CpuOp::kRequest: return fixed(request_overhead, amount, scale);
    case CpuOp::kMemCopy: return per_byte(memcopy_mb_s, amount, scale);
  }
  return 0;
}

}  // namespace globe::net
