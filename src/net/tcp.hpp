// Live TCP loopback transport implementing the same Transport /
// MessageHandler contract as the simulator, so examples and integration
// tests can run the identical protocol stack over real sockets.
//
// Framing: every message is a u32 (big-endian) length followed by that many
// bytes.  Responses add a one-byte OK flag; failures carry an ErrorCode byte
// plus a UTF-8 message.  Endpoints use the port only (host 127.0.0.1).
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <unordered_map>

#include "net/transport.hpp"
#include "util/thread_pool.hpp"
#include "util/thread_annotations.hpp"

namespace globe::net {

/// Serves one MessageHandler on a localhost TCP port.  Accepts connections
/// on a background thread and handles each request on a worker pool.
class TcpServer {
 public:
  /// Binds and listens on 127.0.0.1:`port` (port 0 picks a free port, see
  /// port()).  Throws std::runtime_error on socket errors.
  TcpServer(std::uint16_t port, MessageHandler handler, std::size_t workers = 4);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  std::uint16_t port() const { return port_; }
  void stop();

 private:
  void accept_loop();
  void serve_connection(int fd);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  MessageHandler handler_;
  util::ThreadPool pool_;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
};

/// Client transport over real sockets.  Connections are cached per endpoint.
/// Not thread-safe; use one instance per client thread.
class TcpTransport final : public Transport {
 public:
  TcpTransport() = default;
  ~TcpTransport() override;

  /// recv() path of the live transport: the response bytes come straight
  /// off a socket (GLOBE_UNTRUSTED inherited from Transport::call).
  GLOBE_BLOCKING GLOBE_UNTRUSTED util::Result<util::Bytes> call(
      const Endpoint& ep, util::BytesView request) override;
  util::SimTime now() const override { return clock_.now(); }
  void charge(CpuOp, std::uint64_t) override {}  // wall clock ticks by itself
  HostId local_host() const override { return HostId{0}; }

  void reset_connections();

 private:
  int connect_to(std::uint16_t port);

  util::RealClock clock_;
  std::unordered_map<std::uint16_t, int> connections_;
};

}  // namespace globe::net
