// Host and endpoint addressing for both the simulated network and the live
// TCP transport.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace globe::net {

/// Index of a host within a network (SimNet host table, or a slot in the
/// TCP transport's peer table).
struct HostId {
  std::uint32_t value = 0;
  auto operator<=>(const HostId&) const = default;
};

/// A contact point: host + port.  GlobeDoc "contact addresses" stored in the
/// Location Service serialize to this.
struct Endpoint {
  HostId host;
  std::uint16_t port = 0;
  auto operator<=>(const Endpoint&) const = default;

  std::string to_string() const {
    return "host" + std::to_string(host.value) + ":" + std::to_string(port);
  }
};

}  // namespace globe::net

template <>
struct std::hash<globe::net::Endpoint> {
  std::size_t operator()(const globe::net::Endpoint& e) const noexcept {
    return std::hash<std::uint64_t>{}(std::uint64_t{e.host.value} << 16 | e.port);
  }
};
