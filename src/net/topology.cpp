#include "net/topology.hpp"

namespace globe::net {

PaperTopology::PaperTopology() {
  PaperTopology& t = *this;

  CpuModel reference;  // 1 GHz PIII running JDK 1.3 — the model defaults.

  CpuModel ithaca_cpu = reference;
  ithaca_cpu.scale = 2.2;  // 450 MHz UltraSPARC-IIi vs the 1 GHz reference

  t.amsterdam_primary =
      t.net.add_host({"amsterdam-primary (ginger.cs.vu.nl)", reference});
  t.amsterdam_secondary =
      t.net.add_host({"amsterdam-secondary (sporty.cs.vu.nl)", reference});
  t.paris = t.net.add_host({"paris (canardo.inria.fr)", reference});
  t.ithaca = t.net.add_host({"ithaca (ensamble02.cornell.edu)", ithaca_cpu});

  t.net.set_link(t.amsterdam_primary, t.amsterdam_secondary,
                 {PaperLinks::kLanLatency, PaperLinks::kLanBandwidth});
  for (HostId ams : {t.amsterdam_primary, t.amsterdam_secondary}) {
    t.net.set_link(ams, t.paris,
                   {PaperLinks::kParisLatency, PaperLinks::kParisBandwidth});
    t.net.set_link(ams, t.ithaca,
                   {PaperLinks::kIthacaLatency, PaperLinks::kIthacaBandwidth});
  }
  // Paris <-> Ithaca is unused by the paper's experiments but keep it sane.
  t.net.set_link(t.paris, t.ithaca,
                 {PaperLinks::kIthacaLatency + PaperLinks::kParisLatency,
                  PaperLinks::kIthacaBandwidth});
}

std::string PaperTopology::client_label(HostId h) const {
  if (h == amsterdam_secondary) return "Amsterdam";
  if (h == paris) return "Paris";
  if (h == ithaca) return "Ithaca";
  if (h == amsterdam_primary) return "Amsterdam-primary";
  return "host" + std::to_string(h.value);
}

}  // namespace globe::net
