#include "net/simnet.hpp"

#include <algorithm>
#include <stdexcept>

namespace globe::net {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Result;
using util::SimDuration;
using util::SimTime;

namespace {

std::uint64_t link_key(HostId a, HostId b) {
  std::uint32_t lo = std::min(a.value, b.value);
  std::uint32_t hi = std::max(a.value, b.value);
  return std::uint64_t{hi} << 32 | lo;
}

SimDuration transfer_time(std::size_t bytes, const LinkParams& link) {
  double seconds = static_cast<double>(bytes) / link.bandwidth_bytes_per_s;
  return link.latency +
         static_cast<SimDuration>(seconds * static_cast<double>(util::kSecond));
}

const LinkParams& loopback_link() {
  static const LinkParams kLoopback{util::micros(50), 100e6};
  return kLoopback;
}

}  // namespace

HostId SimNet::add_host(HostParams params) {
  HostId id{static_cast<std::uint32_t>(hosts_.size())};
  hosts_.push_back(HostState{std::move(params),
                             std::make_unique<util::Mutex>(),
                             {},
                             0});
  return id;
}

const HostParams& SimNet::host(HostId id) const {
  if (id.value >= hosts_.size()) throw std::out_of_range("SimNet::host");
  return hosts_[id.value].params;
}

void SimNet::set_link(HostId a, HostId b, LinkParams params) {
  if (a.value >= hosts_.size() || b.value >= hosts_.size()) {
    throw std::out_of_range("SimNet::set_link: unknown host");
  }
  links_[{std::min(a.value, b.value), std::max(a.value, b.value)}] = params;
}

const LinkParams& SimNet::link(HostId a, HostId b) const {
  auto it = links_.find({std::min(a.value, b.value), std::max(a.value, b.value)});
  if (it != links_.end()) return it->second;
  if (a == b) return loopback_link();
  return default_link_;
}

void SimNet::set_link_down(HostId a, HostId b, bool down) {
  if (down) {
    down_links_.insert(link_key(a, b));
  } else {
    down_links_.erase(link_key(a, b));
  }
}

void SimNet::bind(const Endpoint& ep, MessageHandler handler) {
  util::LockGuard lock(bind_mutex_);
  if (ep.host.value >= hosts_.size()) {
    throw std::out_of_range("SimNet::bind: unknown host");
  }
  auto [it, inserted] = handlers_.emplace(ep, std::move(handler));
  (void)it;
  if (!inserted) {
    throw std::logic_error("SimNet::bind: endpoint already bound: " + ep.to_string());
  }
}

void SimNet::unbind(const Endpoint& ep) {
  util::LockGuard lock(bind_mutex_);
  handlers_.erase(ep);
}

bool SimNet::is_bound(const Endpoint& ep) const {
  util::LockGuard lock(bind_mutex_);
  return handlers_.count(ep) > 0;
}

std::unique_ptr<SimFlow> SimNet::open_flow(HostId host, SimTime start) {
  if (host.value >= hosts_.size()) {
    throw std::out_of_range("SimNet::open_flow: unknown host");
  }
  return std::unique_ptr<SimFlow>(new SimFlow(this, host, start));
}

SimTime SimNet::reserve_cpu(HostState& hs, SimTime arrival, SimDuration duration) {
  // Bound the bookkeeping: forget reservations that ended long before this
  // arrival (no later flow in a time-ordered workload can reach back).
  if (hs.reservations.size() > 10'000) {
    SimTime cutoff = arrival > util::seconds(300) ? arrival - util::seconds(300) : 0;
    auto it = hs.reservations.begin();
    while (it != hs.reservations.end() && it->second < cutoff) {
      it = hs.reservations.erase(it);
    }
  }

  SimTime candidate = arrival;
  // Start scanning from the last reservation beginning at or before the
  // candidate, since it may still overlap it.
  auto it = hs.reservations.upper_bound(candidate);
  if (it != hs.reservations.begin()) --it;
  for (; it != hs.reservations.end(); ++it) {
    if (it->second <= candidate) continue;          // ends before us: skip
    if (it->first >= candidate + duration) break;   // gap is big enough
    candidate = it->second;                         // push past this booking
  }
  hs.reservations.emplace(candidate, candidate + duration);
  hs.busy_until = std::max(hs.busy_until, candidate + duration);
  return candidate;
}

SimTime SimNet::horizon() const {
  SimTime latest = 0;
  for (const auto& host : hosts_) {
    util::LockGuard lock(*host.lock);
    latest = std::max(latest, host.busy_until);
  }
  return latest;
}

std::unique_ptr<SimFlow> SimNet::open_quiescent_flow(HostId host,
                                                     util::SimDuration guard) {
  return open_flow(host, horizon() + guard);
}

namespace {

/// ServerContext implementation: all time accounting flows through a nested
/// SimFlow anchored at the serving host.
class SimServerContext final : public ServerContext {
 public:
  explicit SimServerContext(SimFlow& server_flow) : flow_(server_flow) {}

  SimTime now() const override { return flow_.now(); }
  void charge(CpuOp op, std::uint64_t amount) override { flow_.charge(op, amount); }
  HostId local_host() const override { return flow_.local_host(); }
  Transport& transport() override { return flow_; }

 private:
  SimFlow& flow_;
};

}  // namespace

Result<Bytes> SimNet::deliver(SimFlow& flow, const Endpoint& ep, BytesView request) {
  if (ep.host.value >= hosts_.size()) {
    return Result<Bytes>(ErrorCode::kUnavailable, "no such host " + ep.to_string());
  }
  if (down_links_.count(link_key(flow.local_host(), ep.host)) > 0) {
    return Result<Bytes>(ErrorCode::kUnavailable, "link down to " + ep.to_string());
  }
  MessageHandler handler;
  {
    util::LockGuard lock(bind_mutex_);
    auto it = handlers_.find(ep);
    if (it == handlers_.end()) {
      // Model the RST coming back: one round trip wasted.
      const LinkParams& l = link(flow.local_host(), ep.host);
      flow.advance(2 * l.latency);
      return Result<Bytes>(ErrorCode::kUnavailable,
                           "nothing bound at " + ep.to_string());
    }
    handler = it->second;
  }

  const LinkParams& l = link(flow.local_host(), ep.host);

  // Connection establishment: one extra round trip on first contact.
  if (flow.connected_.insert(ep).second) {
    flow.advance(2 * l.latency);
  }

  SimTime arrival = flow.now() + transfer_time(request.size() + kWireOverhead, l);

  HostState& hs = hosts_[ep.host.value];
  Result<Bytes> result(ErrorCode::kInternal, "handler did not run");
  SimTime t_done;

  // Execute the handler as if it started at arrival to learn its service
  // duration (request overhead + charges + nested waits), then book the
  // earliest CPU gap of that length.  Timestamps observed inside the
  // handler can be earlier than the booked slot by the queueing delay;
  // that skew is negligible against certificate validity scales.
  //
  // The handler runs WITHOUT the host lock: handlers make nested cross-host
  // calls, and holding per-host locks across them builds A->B / B->A lock
  // cycles.  One-request-at-a-time serialization is modeled in virtual time
  // by reserve_cpu; handler state carries its own locks.
  SimFlow server_flow(this, ep.host, arrival);
  server_flow.charge(CpuOp::kRequest, 1);
  SimServerContext ctx(server_flow);
  try {
    result = handler(ctx, request);
  } catch (const std::exception& e) {
    result = Result<Bytes>(ErrorCode::kInternal,
                           std::string("handler threw: ") + e.what());
  }
  SimDuration service = server_flow.now() - arrival;
  {
    util::LockGuard host_lock(*hs.lock);
    SimTime start = reserve_cpu(hs, arrival, service);
    t_done = start + service;
  }

  std::size_t resp_size =
      (result.is_ok() ? result->size() : result.status().message().size()) +
      kWireOverhead;
  flow.set_time(t_done + transfer_time(resp_size, l));
  return result;
}

Result<Bytes> SimFlow::call(const Endpoint& ep, BytesView request) {
  return net_->deliver(*this, ep, request);
}

void SimFlow::charge(CpuOp op, std::uint64_t amount) {
  SimDuration cost = net_->host(host_).cpu.cost(op, amount);
  now_ += cost;
  client_cpu_ += cost;
}

}  // namespace globe::net
