// Era-calibrated CPU cost model (DESIGN.md §2).
//
// All cryptographic operations in this codebase execute for real; the
// *simulated* time they take comes from this model, calibrated to the
// paper's 2001-era testbed (Sun JDK 1.3 on 450 MHz - 1 GHz hosts) so that
// the overhead ratios of Figures 4-7 keep the published shape.  The same
// model is applied to every system compared (GlobeDoc, plain HTTP, SSL), so
// relative results are calibration-independent to first order.
#pragma once

#include <cstdint>

#include "util/clock.hpp"

namespace globe::net {

enum class CpuOp : std::uint8_t {
  kSha1,        // per byte hashed
  kSha256,      // per byte hashed
  kSymCipher,   // per byte encrypted/decrypted + MACed (record layer)
  kRsaVerify,   // per public-key verification (e = 65537)
  kRsaSign,     // per private-key signature
  kRsaEncrypt,  // per public-key encryption
  kRsaDecrypt,  // per private-key decryption
  kRequest,     // per-request server software path (dispatch, I/O)
  kMemCopy,     // per byte copied out of a local cache (hit serving cost)
};

struct CpuModel {
  // Throughputs in MB/s on the reference host (1 GHz PIII, era-native
  // compiled code; the paper's JVM slowdown is deliberately not modeled,
  // see DESIGN.md §2).
  double sha1_mb_s = 40.0;
  double sha256_mb_s = 30.0;
  double sym_mb_s = 15.0;
  // Copying bytes out of an in-memory cache is cheap but NOT free: without
  // it a cache hit takes exactly zero simulated time and every hit-latency
  // percentile collapses to 0 (the flash-crowd herd_p99 bug).
  double memcopy_mb_s = 800.0;
  // Fixed-cost operations on the reference host (RSA-1024, e = 65537).
  util::SimDuration rsa_verify = 800 * util::kMicrosecond;
  util::SimDuration rsa_sign = 12 * util::kMillisecond;
  util::SimDuration rsa_encrypt = 800 * util::kMicrosecond;
  util::SimDuration rsa_decrypt = 12 * util::kMillisecond;
  util::SimDuration request_overhead = 2 * util::kMillisecond;
  // Relative slowdown of this host vs the reference (Ithaca's 450 MHz
  // UltraSPARC ~ 2.2; compiled-C servers can use < 1).
  double scale = 1.0;

  /// Simulated duration of `op` over `amount` bytes (hashes/ciphers) or
  /// `amount` operations (RSA, request dispatch).
  util::SimDuration cost(CpuOp op, std::uint64_t amount) const;
};

}  // namespace globe::net
