// The blocking transport abstraction every GlobeDoc protocol is written
// against (DESIGN.md §6).
//
// Protocol code (proxy, object server, naming, location) calls
// Transport::call and, when it performs cryptographic work, reports it via
// charge() so the simulated clock advances by the era CPU model.  The live
// TCP transport implements the same interface with a wall clock and no-op
// charges, so identical protocol code runs in benchmarks and for real.
#pragma once

#include <functional>
#include <memory>

#include "net/address.hpp"
#include "net/cpu_model.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"
#include "util/taint_annotations.hpp"
#include "util/thread_annotations.hpp"

namespace globe::net {

/// Context available to a message handler while it serves one request.
class ServerContext {
 public:
  virtual ~ServerContext() = default;

  /// Current (virtual or wall) time at the serving host.
  virtual util::SimTime now() const = 0;

  /// Accounts CPU work performed by the handler (advances virtual time).
  virtual void charge(CpuOp op, std::uint64_t amount) = 0;

  /// Host the handler is running on.
  virtual HostId local_host() const = 0;

  /// Transport for nested outgoing calls made while handling this request.
  /// Nested calls must not form cross-host cycles (see SimNet docs).
  virtual class Transport& transport() = 0;
};

/// A bound service: receives opaque request bytes, returns response bytes.
/// Handlers must be thread-safe; concurrent flows may invoke them from
/// multiple threads (per-host serialization is provided by SimNet).
using MessageHandler =
    std::function<util::Result<util::Bytes>(ServerContext&, util::BytesView)>;

/// Client-side transport handle.  One instance per logical flow (client
/// session); not thread-safe across flows.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends `request` to `ep` and blocks for the response.  UNAVAILABLE when
  /// nothing is bound at `ep` or the link is down.  The reply crossed the
  /// wire from a host we do not control: every byte of it is untrusted
  /// until a verification entry point has vouched for it (DESIGN.md §9).
  /// Blocking: parks the calling flow until the reply arrives; must not be
  /// reached while any mutex is held (tools/conc_check.py, DESIGN.md §13).
  GLOBE_BLOCKING GLOBE_UNTRUSTED virtual util::Result<util::Bytes> call(const Endpoint& ep,
                                                         util::BytesView request) = 0;

  /// Current time of this flow.
  virtual util::SimTime now() const = 0;

  /// Accounts client-side CPU work (e.g. the proxy hashing a page element).
  virtual void charge(CpuOp op, std::uint64_t amount) = 0;

  /// Host this flow originates from.
  virtual HostId local_host() const = 0;

  /// Advances this flow's clock to at least `t` (never backwards, no CPU
  /// accounting).  Used when a request is satisfied by work another flow
  /// completed at `t` — e.g. a coalesced cache fill: the waiter paid no
  /// network or CPU of its own, but cannot observe the result before the
  /// fill that produced it finished.  No-op for wall-clock transports,
  /// where real time already covers the wait.
  virtual void advance_to(util::SimTime t) { (void)t; }
};

}  // namespace globe::net
