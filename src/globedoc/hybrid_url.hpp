// Hybrid URLs (paper §2.1): regular URLs with a distinguishing prefix that
// embed a GlobeDoc object name and a page-element name, so unmodified
// browsers can address GlobeDoc content through the proxy.
//
// Accepted forms:
//   http://globe/<object-name>/<element-name>
//   globe://<object-name>/<element-name>
// The element name may contain '/' (e.g. "img/logo.gif").
#pragma once

#include <string>

#include "util/status.hpp"

namespace globe::globedoc {

struct HybridUrl {
  std::string object_name;   // resolvable via the secure naming service
  std::string element_name;  // page element within the object

  std::string to_string() const {
    return "http://globe/" + object_name + "/" + element_name;
  }
};

/// True when `url` (or an HTTP request target) addresses GlobeDoc content.
bool is_hybrid_url(std::string_view url);

/// Parses a hybrid URL; INVALID_ARGUMENT on non-hybrid or malformed input.
util::Result<HybridUrl> parse_hybrid_url(std::string_view url);

}  // namespace globe::globedoc
