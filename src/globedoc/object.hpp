// Owner-side GlobeDoc object and the replicated state snapshot.
//
// The object owner (paper §3) creates the object, holds its private key,
// edits page elements, signs the state into an integrity certificate, and
// pushes ReplicaState snapshots to (untrusted) object servers.
#pragma once

#include <map>
#include <vector>

#include "crypto/rsa.hpp"
#include "globedoc/element.hpp"
#include "globedoc/identity.hpp"
#include "globedoc/integrity.hpp"
#include "globedoc/oid.hpp"
#include "util/rng.hpp"
#include "util/taint_annotations.hpp"

namespace globe::globedoc {

/// Protocol ceiling on identity certificates per replica state.  parse()
/// rejects states claiming more as a protocol error, never allocating for
/// the claimed count.
inline constexpr std::size_t kMaxIdentityCerts = 64;

/// Everything a replica stores (paper §3.2.2: "every server that hosts
/// GlobeDoc replicas is required to store all of the object's page elements
/// and the object's integrity certificate").
struct ReplicaState {
  util::Bytes public_key;  // serialized object RsaPublicKey
  IntegrityCertificate certificate;
  std::vector<IdentityCertificate> identity_certs;
  std::vector<PageElement> elements;

  const PageElement* find(const std::string& name) const;
  std::size_t content_bytes() const;

  util::Bytes serialize() const;
  static util::Result<ReplicaState> parse(util::BytesView data);

  /// Self-contained verification of a state received across a trust
  /// boundary (admin push, peer pull): the public key parses and hashes to
  /// the certificate's OID (self-certifying check), the certificate
  /// signature verifies under that key, every element matches its
  /// certificate entry, and no entry's validity window has already closed
  /// at `now`.  Identity certificates are NOT checked here — clients judge
  /// them against their own trust stores (paper §3.1.2).
  GLOBE_SANITIZER [[nodiscard]] util::Status verify(util::SimTime now) const;
};

class GlobeDocObject {
 public:
  explicit GlobeDocObject(crypto::RsaKeyPair keys);

  /// Generates a fresh key pair (the owner does this at object creation;
  /// the OID is born here).
  static GlobeDocObject create(util::RandomSource& rng, std::size_t key_bits = 1024);

  const Oid& oid() const { return oid_; }
  const crypto::RsaPublicKey& public_key() const { return keys_.pub; }
  const crypto::RsaPrivateKey& private_key() const { return keys_.priv; }

  /// Adds or replaces an element; the state becomes dirty until re-signed.
  /// Trusted sink: whatever lands here will be signed by the owner's key
  /// and served as authentic — unverified bytes (e.g. a raw HTTP import
  /// without a digest manifest check) must not reach it.
  void put_element(GLOBE_TRUSTED_SINK PageElement element);
  void remove_element(const std::string& name);
  const PageElement* element(const std::string& name) const;
  std::vector<std::string> element_names() const;
  std::size_t element_count() const { return elements_.size(); }

  void add_identity_certificate(IdentityCertificate cert);

  /// Signs the current state: bumps the version and produces a fresh
  /// integrity certificate with per-element validity now+ttl.
  const IntegrityCertificate& sign_state(util::SimTime now, util::SimDuration ttl);

  /// True when elements changed since the last sign_state().
  bool dirty() const { return dirty_; }
  std::uint64_t version() const { return version_; }

  /// Snapshot for replica distribution.  Throws std::logic_error while the
  /// state is dirty (unsigned changes must never reach replicas).
  ReplicaState snapshot() const;

 private:
  crypto::RsaKeyPair keys_;
  Oid oid_;
  std::map<std::string, PageElement> elements_;
  std::vector<IdentityCertificate> identity_certs_;
  IntegrityCertificate certificate_;
  std::uint64_t version_ = 0;
  bool dirty_ = true;  // no certificate yet
};

}  // namespace globe::globedoc
