// Proxy-facing surface of the verified edge-cache tier (DESIGN.md §12).
//
// The tier itself lives in src/cache/ (target globe_cache) and depends on
// globe_globedoc; declaring the interface here keeps the dependency one-way
// while letting GlobeDocProxy route element fetches through a tier handed
// to it in ProxyConfig.
//
// Contract for implementations (what makes the tier *safe* to trust):
//   * an element may only be returned if it passed
//     IntegrityCertificate::check_element under `certificate` — either just
//     now (a fill) or when it was admitted to the cache (verified once,
//     served many times from an untrusted position, paper §3.2.2);
//   * a cached copy must never outlive its certificate entry's validity
//     window (expiry evicts);
//   * a failed verification must never be cached (no negative entries, no
//     poisoned groups).
#pragma once

#include <string>

#include "globedoc/element.hpp"
#include "globedoc/integrity.hpp"
#include "globedoc/oid.hpp"
#include "net/transport.hpp"
#include "util/status.hpp"

namespace globe::globedoc {

/// Outcome of one fetch through the tier.
struct EdgeFetch {
  PageElement element;
  bool cache_hit = false;  // served from the verified cache, zero upstream
  bool coalesced = false;  // waited on another flow's in-flight fill
};

class ElementCacheTier {
 public:
  virtual ~ElementCacheTier() = default;

  /// Returns the named element, served from cache when possible, otherwise
  /// filled from `replica` over `transport` and verified against
  /// `certificate` (which the caller has already signature-checked against
  /// the object key — the tier re-checks only per-element properties).
  /// Typed verification failures propagate exactly like the direct path's.
  virtual util::Result<EdgeFetch> fetch_through(
      net::Transport& transport, const net::Endpoint& replica, const Oid& oid,
      const IntegrityCertificate& certificate,
      const std::string& element_name) = 0;
};

}  // namespace globe::globedoc
