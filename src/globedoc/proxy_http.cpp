#include "globedoc/proxy_http.hpp"

#include "http/parser.hpp"

namespace globe::globedoc {

using util::Bytes;
using util::BytesView;
using util::Result;

ProxyHttpServer::ProxyHttpServer(std::unique_ptr<GlobeDocProxy> proxy)
    : proxy_(std::move(proxy)) {}

std::size_t ProxyHttpServer::requests_served() const {
  util::LockGuard lock(mutex_);
  return requests_served_;
}

net::MessageHandler ProxyHttpServer::handler() {
  return [this](net::ServerContext&, BytesView raw) -> Result<Bytes> {
    auto request = http::parse_request(raw);
    http::HttpResponse response;
    if (!request.is_ok()) {
      response = http::HttpResponse::make(
          400, "Bad Request",
          util::to_bytes("<html><body>400 Bad Request</body></html>"));
    } else {
      util::LockGuard lock(mutex_);
      ++requests_served_;
      response = proxy_->handle_browser_request(*request);
    }
    response.headers.set("Via", "1.1 globedoc-proxy");
    return response.serialize();
  };
}

}  // namespace globe::globedoc
