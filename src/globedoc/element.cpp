#include "globedoc/element.hpp"

#include "crypto/sha1.hpp"
#include "util/serial.hpp"

namespace globe::globedoc {

using util::Bytes;
using util::ErrorCode;
using util::Result;

Bytes PageElement::serialize() const {
  util::Writer w;
  w.str(name);
  w.str(content_type);
  w.bytes(content);
  return w.take();
}

Result<PageElement> PageElement::parse(util::BytesView data) {
  try {
    util::Reader r(data);
    PageElement el;
    el.name = r.str();
    el.content_type = r.str();
    el.content = r.bytes();
    r.expect_end();
    if (el.name.empty()) {
      return Result<PageElement>(ErrorCode::kProtocol, "element with empty name");
    }
    return el;
  } catch (const util::SerialError& e) {
    return Result<PageElement>(ErrorCode::kProtocol, e.what());
  }
}

Bytes PageElement::digest() const {
  return crypto::Sha1::digest_bytes(serialize());
}

}  // namespace globe::globedoc
