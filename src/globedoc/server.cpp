#include "globedoc/server.hpp"

#include <algorithm>

#include "crypto/merkle.hpp"
#include "globedoc/fetch_many.hpp"
#include "obs/admin.hpp"
#include "obs/log.hpp"
#include "util/serial.hpp"

namespace globe::globedoc {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

Result<Oid> read_oid(util::Reader& r) {
  return Oid::from_bytes(r.raw(Oid::kSize));
}

Bytes admin_signed_payload(std::string_view tag, BytesView nonce, BytesView payload) {
  util::Writer w;
  w.str(tag);
  w.bytes(nonce);
  w.raw(payload);
  return w.take();
}

constexpr std::size_t kNonceSize = 16;
constexpr std::size_t kMaxOutstandingNonces = 4096;

}  // namespace

util::Bytes HostingGrant::serialize() const {
  util::Writer w;
  w.u8(accepted ? 1 : 0);
  w.u64(lease);
  w.str(reason);
  return w.take();
}

Result<HostingGrant> HostingGrant::parse(BytesView data) {
  try {
    util::Reader r(data);
    HostingGrant grant;
    grant.accepted = r.u8() != 0;
    grant.lease = r.u64();
    grant.reason = r.str();
    r.expect_end();
    return grant;
  } catch (const util::SerialError& e) {
    return Result<HostingGrant>(ErrorCode::kProtocol, e.what());
  }
}

ObjectServer::ObjectServer(std::string name, std::uint64_t nonce_seed,
                           obs::MetricsRegistry* registry,
                           obs::ProfileRegistry* profile)
    : name_(std::move(name)),
      nonce_rng_(crypto::HmacDrbg::from_seed(nonce_seed)),
      profile_(profile) {
  if (registry == nullptr) registry = &obs::global_registry();
  obs::Labels labels{{"server", name_}};
  requests_counter_ = &registry->counter("object_server.requests", labels);
  batch_requests_counter_ =
      &registry->counter("object_server.batch_requests", labels);
  elements_counter_ = &registry->counter("object_server.elements_served", labels);
  bytes_counter_ = &registry->counter("object_server.bytes_served", labels);
  replica_installs_ = &registry->counter("object_server.replica_installs", labels);
  replica_deletes_ = &registry->counter("object_server.replica_deletes", labels);
}

void ObjectServer::authorize(const crypto::RsaPublicKey& key) {
  util::LockGuard lock(mutex_);
  keystore_.insert(key.serialize());
}

void ObjectServer::revoke(const crypto::RsaPublicKey& key) {
  util::LockGuard lock(mutex_);
  keystore_.erase(key.serialize());
}

bool ObjectServer::is_authorized(const crypto::RsaPublicKey& key) const {
  util::LockGuard lock(mutex_);
  return keystore_.count(key.serialize()) > 0;
}

std::size_t ObjectServer::replica_count() const {
  util::LockGuard lock(mutex_);
  return replicas_.size();
}

bool ObjectServer::hosts(const Oid& oid) const {
  util::LockGuard lock(mutex_);
  return replicas_.count(oid) > 0;
}

void ObjectServer::install_replica_unchecked(const ReplicaState& state,
                                             util::SimTime now) {
  util::LockGuard lock(mutex_);
  install_locked(state.certificate.oid(), state, now);
}

void ObjectServer::install_locked(const Oid& oid, ReplicaState state,
                                  util::SimTime now) {
  replicas_[oid] = std::move(state);
  installed_at_[oid] = now;
}

void ObjectServer::set_resource_limits(const ResourceLimits& limits) {
  util::LockGuard lock(mutex_);
  limits_ = limits;
}

ResourceLimits ObjectServer::resource_limits() const {
  util::LockGuard lock(mutex_);
  return limits_;
}

std::uint64_t ObjectServer::hosted_bytes() const {
  util::LockGuard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [oid, state] : replicas_) total += state.content_bytes();
  return total;
}

bool ObjectServer::lease_expired_locked(const Oid& oid, util::SimTime now) const {
  auto it = lease_until_.find(oid);
  return it != lease_until_.end() && it->second <= now;
}

std::size_t ObjectServer::expire_leases(util::SimTime now) {
  util::LockGuard lock(mutex_);
  std::size_t evicted = 0;
  for (auto it = lease_until_.begin(); it != lease_until_.end();) {
    if (it->second <= now) {
      replicas_.erase(it->first);
      installed_at_.erase(it->first);
      creators_.erase(it->first);
      it = lease_until_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

HostingGrant ObjectServer::check_capacity_locked(std::uint64_t bytes,
                                                 const Oid* existing_oid) const {
  HostingGrant grant;
  if (limits_.max_replica_bytes != 0 && bytes > limits_.max_replica_bytes) {
    grant.reason = "replica exceeds per-replica byte limit";
    return grant;
  }
  if (existing_oid == nullptr && limits_.max_replicas != 0 &&
      replicas_.size() >= limits_.max_replicas) {
    grant.reason = "replica slots exhausted";
    return grant;
  }
  if (limits_.max_total_bytes != 0) {
    std::uint64_t in_use = 0;
    for (const auto& [oid, state] : replicas_) {
      if (existing_oid != nullptr && oid == *existing_oid) continue;
      in_use += state.content_bytes();
    }
    if (in_use + bytes > limits_.max_total_bytes) {
      grant.reason = "insufficient storage capacity";
      return grant;
    }
  }
  grant.accepted = true;
  grant.lease = limits_.max_lease;
  return grant;
}

std::size_t ObjectServer::elements_served() const {
  util::LockGuard lock(mutex_);
  return elements_served_;
}

std::uint64_t ObjectServer::content_bytes_served() const {
  util::LockGuard lock(mutex_);
  return content_bytes_served_;
}

void ObjectServer::register_health_checks(obs::AdminHttpServer& admin) {
  admin.add_health_check("store", [this](net::ServerContext&) {
    util::LockGuard lock(mutex_);
    (void)replicas_.size();  // replica table accessible
    return Status::ok();
  });
  admin.add_health_check("capacity", [this](net::ServerContext&) {
    util::LockGuard lock(mutex_);
    if (limits_.max_replicas != 0 && replicas_.size() >= limits_.max_replicas) {
      return Status(ErrorCode::kUnavailable,
                    name_ + " at replica capacity (" +
                        std::to_string(replicas_.size()) + "/" +
                        std::to_string(limits_.max_replicas) + ")");
    }
    if (limits_.max_total_bytes != 0) {
      std::uint64_t used = 0;
      for (const auto& [oid, state] : replicas_) used += state.content_bytes();
      if (used >= limits_.max_total_bytes) {
        return Status(ErrorCode::kUnavailable, name_ + " at byte capacity");
      }
    }
    return Status::ok();
  });
}

void ObjectServer::register_freshness_probe(obs::AdminHttpServer& admin,
                                            util::SimDuration budget) {
  admin.add_health_check("replication-freshness", [this, budget](
                                                      net::ServerContext& ctx) {
    util::LockGuard lock(mutex_);
    if (replicas_.empty()) return Status::ok();
    util::SimTime newest = 0;
    for (const auto& [oid, at] : installed_at_) newest = std::max(newest, at);
    util::SimTime now = ctx.now();
    if (now > newest && now - newest > budget) {
      return Status(ErrorCode::kUnavailable,
                    name_ + " replication stale: newest state installed " +
                        std::to_string((now - newest) / util::kSecond) +
                        "s ago (budget " +
                        std::to_string(budget / util::kSecond) + "s)");
    }
    return Status::ok();
  });
}

obs::ConsistencyReport ObjectServer::consistency_report() const {
  util::LockGuard lock(mutex_);
  obs::ConsistencyReport report;
  report.docs.reserve(replicas_.size());
  for (const auto& [oid, state] : replicas_) {
    obs::DocConsistency doc;
    doc.oid = oid.to_bytes();
    doc.epoch = state.certificate.version();
    // Digest the elements as STORED (certificate entries could be echoed
    // verbatim by a tamperer): leaves are per-element SHA-1 digests of the
    // serialized elements, name order, rolled up into a Merkle root.
    std::vector<const PageElement*> ordered;
    ordered.reserve(state.elements.size());
    for (const PageElement& e : state.elements) ordered.push_back(&e);
    std::sort(ordered.begin(), ordered.end(),
              [](const PageElement* a, const PageElement* b) {
                return a->name < b->name;
              });
    if (ordered.empty()) {
      doc.digest.assign(obs::kConsistencyDigestSize, 0);
    } else {
      std::vector<Bytes> leaves;
      leaves.reserve(ordered.size());
      for (const PageElement* e : ordered) leaves.push_back(e->digest());
      doc.digest = crypto::MerkleTree(leaves).root();
    }
    doc.earliest_expiry = 0;
    for (const ElementEntry& entry : state.certificate.entries()) {
      if (doc.earliest_expiry == 0 || entry.expires < doc.earliest_expiry) {
        doc.earliest_expiry = entry.expires;
      }
    }
    report.docs.push_back(std::move(doc));
  }
  return report;
}

void ObjectServer::register_with(rpc::ServiceDispatcher& dispatcher) {
  auto bindm = [&](std::uint16_t service, std::uint16_t method, auto fn) {
    dispatcher.register_method(
        service, method, [this, fn](net::ServerContext& ctx, BytesView payload) {
          // Single choke point for every bound method: attribute the whole
          // handler (crypto included) to this server's profile registry.
          obs::ProfileRegistryScope profile_scope(profile_);
          GLOBE_PROFILE_SCOPE("server.handle");
          return (this->*fn)(ctx, payload);
        });
  };
  bindm(rpc::kGlobeDocAccess, kGetElement, &ObjectServer::handle_get_element);
  bindm(rpc::kGlobeDocAccess, kListElements, &ObjectServer::handle_list_elements);
  bindm(rpc::kGlobeDocAccess, kFetchMany, &ObjectServer::handle_fetch_many);
  bindm(rpc::kGlobeDocSecurity, kGetPublicKey, &ObjectServer::handle_get_public_key);
  bindm(rpc::kGlobeDocSecurity, kGetIntegrityCert,
        &ObjectServer::handle_get_integrity_cert);
  bindm(rpc::kGlobeDocSecurity, kGetIdentityCerts,
        &ObjectServer::handle_get_identity_certs);
  bindm(rpc::kGlobeDocAdmin, kChallenge, &ObjectServer::handle_challenge);
  dispatcher.register_method(rpc::kGlobeDocAdmin, kCreateReplica,
                             [this](net::ServerContext& ctx, BytesView payload) {
                               return handle_create_or_update(ctx, payload, true);
                             });
  dispatcher.register_method(rpc::kGlobeDocAdmin, kUpdateReplica,
                             [this](net::ServerContext& ctx, BytesView payload) {
                               return handle_create_or_update(ctx, payload, false);
                             });
  bindm(rpc::kGlobeDocAdmin, kDeleteReplica, &ObjectServer::handle_delete);
  bindm(rpc::kGlobeDocAdmin, kListReplicas, &ObjectServer::handle_list_replicas);
  bindm(rpc::kGlobeDocAdmin, kNegotiate, &ObjectServer::handle_negotiate);
}

Result<Bytes> ObjectServer::handle_negotiate(net::ServerContext&, BytesView payload) {
  try {
    util::Reader r(payload);
    std::uint64_t bytes = r.u64();
    std::uint64_t requested_lease = r.u64();
    r.expect_end();

    util::LockGuard lock(mutex_);
    HostingGrant grant = check_capacity_locked(bytes, nullptr);
    if (grant.accepted) {
      if (limits_.max_lease == 0) {
        grant.lease = requested_lease;
      } else if (requested_lease != 0) {
        grant.lease = std::min<util::SimDuration>(requested_lease, limits_.max_lease);
      }
    }
    return grant.serialize();
  } catch (const util::SerialError& e) {
    return Result<Bytes>(ErrorCode::kProtocol, e.what());
  }
}

Result<Bytes> ObjectServer::handle_get_element(net::ServerContext& ctx,
                                               BytesView payload) {
  GLOBE_PROFILE_SCOPE("server.get_element");
  requests_counter_->inc();
  try {
    util::Reader r(payload);
    auto oid = read_oid(r);
    if (!oid.is_ok()) return oid.status();
    std::string name = r.str();
    r.expect_end();

    util::LockGuard lock(mutex_);
    auto it = replicas_.find(*oid);
    if (it == replicas_.end() || lease_expired_locked(*oid, ctx.now())) {
      return Result<Bytes>(ErrorCode::kNotFound, "no replica of " + oid->to_hex());
    }
    const PageElement* el = it->second.find(name);
    if (el == nullptr) {
      return Result<Bytes>(ErrorCode::kNotFound, "no element '" + name + "'");
    }
    ++elements_served_;
    content_bytes_served_ += el->content.size();
    elements_counter_->inc();
    bytes_counter_->inc(el->content.size());
    return el->serialize();
  } catch (const util::SerialError& e) {
    return Result<Bytes>(ErrorCode::kProtocol, e.what());
  }
}

Result<Bytes> ObjectServer::handle_fetch_many(net::ServerContext& ctx,
                                              BytesView payload) {
  GLOBE_PROFILE_SCOPE("server.fetch_many");
  requests_counter_->inc();
  batch_requests_counter_->inc();
  auto req = FetchManyRequest::parse(payload);
  if (!req.is_ok()) return req.status();

  util::LockGuard lock(mutex_);
  auto it = replicas_.find(req->oid);
  if (it == replicas_.end() || lease_expired_locked(req->oid, ctx.now())) {
    return Result<Bytes>(ErrorCode::kNotFound,
                         "no replica of " + req->oid.to_hex());
  }
  FetchManyResponse resp;
  if (req->include_cert) {
    resp.certificate = it->second.certificate.serialize();
  }
  resp.items.reserve(req->names.size());
  for (const auto& name : req->names) {
    FetchManyResponse::Item item;
    const PageElement* el = it->second.find(name);
    if (el != nullptr) {
      item.found = true;
      item.element = el->serialize();
      ++elements_served_;
      content_bytes_served_ += el->content.size();
      elements_counter_->inc();
      bytes_counter_->inc(el->content.size());
    }
    resp.items.push_back(std::move(item));
  }
  return resp.serialize();
}

Result<Bytes> ObjectServer::handle_list_elements(net::ServerContext& ctx,
                                                 BytesView payload) {
  requests_counter_->inc();
  try {
    util::Reader r(payload);
    auto oid = read_oid(r);
    if (!oid.is_ok()) return oid.status();
    r.expect_end();

    util::LockGuard lock(mutex_);
    auto it = replicas_.find(*oid);
    if (it == replicas_.end() || lease_expired_locked(*oid, ctx.now())) {
      return Result<Bytes>(ErrorCode::kNotFound, "no replica of " + oid->to_hex());
    }
    util::Writer w;
    w.u32(static_cast<std::uint32_t>(it->second.elements.size()));
    for (const auto& el : it->second.elements) w.str(el.name);
    return w.take();
  } catch (const util::SerialError& e) {
    return Result<Bytes>(ErrorCode::kProtocol, e.what());
  }
}

Result<Bytes> ObjectServer::handle_get_public_key(net::ServerContext& ctx,
                                                  BytesView payload) {
  GLOBE_PROFILE_SCOPE("server.get_public_key");
  requests_counter_->inc();
  try {
    util::Reader r(payload);
    auto oid = read_oid(r);
    if (!oid.is_ok()) return oid.status();
    r.expect_end();
    util::LockGuard lock(mutex_);
    auto it = replicas_.find(*oid);
    if (it == replicas_.end() || lease_expired_locked(*oid, ctx.now())) {
      return Result<Bytes>(ErrorCode::kNotFound, "no replica of " + oid->to_hex());
    }
    return it->second.public_key;
  } catch (const util::SerialError& e) {
    return Result<Bytes>(ErrorCode::kProtocol, e.what());
  }
}

Result<Bytes> ObjectServer::handle_get_integrity_cert(net::ServerContext& ctx,
                                                      BytesView payload) {
  GLOBE_PROFILE_SCOPE("server.get_integrity_cert");
  requests_counter_->inc();
  try {
    util::Reader r(payload);
    auto oid = read_oid(r);
    if (!oid.is_ok()) return oid.status();
    r.expect_end();
    util::LockGuard lock(mutex_);
    auto it = replicas_.find(*oid);
    if (it == replicas_.end() || lease_expired_locked(*oid, ctx.now())) {
      return Result<Bytes>(ErrorCode::kNotFound, "no replica of " + oid->to_hex());
    }
    return it->second.certificate.serialize();
  } catch (const util::SerialError& e) {
    return Result<Bytes>(ErrorCode::kProtocol, e.what());
  }
}

Result<Bytes> ObjectServer::handle_get_identity_certs(net::ServerContext& ctx,
                                                      BytesView payload) {
  requests_counter_->inc();
  try {
    util::Reader r(payload);
    auto oid = read_oid(r);
    if (!oid.is_ok()) return oid.status();
    r.expect_end();
    util::LockGuard lock(mutex_);
    auto it = replicas_.find(*oid);
    if (it == replicas_.end() || lease_expired_locked(*oid, ctx.now())) {
      return Result<Bytes>(ErrorCode::kNotFound, "no replica of " + oid->to_hex());
    }
    util::Writer w;
    w.u32(static_cast<std::uint32_t>(it->second.identity_certs.size()));
    for (const auto& cert : it->second.identity_certs) w.bytes(cert.serialize());
    return w.take();
  } catch (const util::SerialError& e) {
    return Result<Bytes>(ErrorCode::kProtocol, e.what());
  }
}

Result<Bytes> ObjectServer::handle_challenge(net::ServerContext&, BytesView payload) {
  if (!payload.empty()) {
    return Result<Bytes>(ErrorCode::kProtocol, "challenge takes no payload");
  }
  util::LockGuard lock(mutex_);
  // Bound against nonce flooding: evict the OLDEST outstanding challenge
  // (FIFO), so a flood cannot selectively displace a fresh one.
  // (Bounding the FIFO also drains entries whose nonce was already
  // consumed, keeping both structures at most kMaxOutstandingNonces.)
  while (nonce_order_.size() >= kMaxOutstandingNonces) {
    outstanding_nonces_.erase(nonce_order_.front());
    nonce_order_.pop_front();
  }
  Bytes nonce = nonce_rng_.bytes(kNonceSize);
  outstanding_nonces_.insert(nonce);
  nonce_order_.push_back(nonce);
  util::Writer w;
  w.bytes(nonce);
  return w.take();
}

Result<Bytes> ObjectServer::check_admin_auth(net::ServerContext& ctx,
                                             const Bytes& nonce, const Bytes& pubkey,
                                             const Bytes& signature,
                                             std::string_view tag, BytesView payload) {
  auto denied = [&](const char* why) {
    obs::global_event_log().emit(obs::EventLevel::kWarn, "server",
                                 "admin_auth_failed",
                                 name_ + ": " + why + " (" + std::string(tag) + ")",
                                 ctx.now());
    return Result<Bytes>(ErrorCode::kPermissionDenied, why);
  };
  {
    util::LockGuard lock(mutex_);
    auto it = outstanding_nonces_.find(nonce);
    if (it == outstanding_nonces_.end()) {
      return denied("unknown or replayed nonce");
    }
    outstanding_nonces_.erase(it);  // single use
    if (keystore_.count(pubkey) == 0) {
      return denied("key not in keystore");
    }
  }
  auto key = crypto::RsaPublicKey::parse(pubkey);
  if (!key.is_ok()) return key.status();
  ctx.charge(net::CpuOp::kRsaVerify, 1);
  if (!crypto::rsa_verify_sha256(*key, admin_signed_payload(tag, nonce, payload),
                                 signature)) {
    return denied("bad admin signature");
  }
  return pubkey;
}

Result<Bytes> ObjectServer::handle_create_or_update(net::ServerContext& ctx,
                                                    BytesView payload, bool create) {
  try {
    util::Reader r(payload);
    Bytes nonce = r.bytes();
    Bytes pubkey = r.bytes();
    Bytes signature = r.bytes();
    // The signature covers the raw remaining payload exactly as the client
    // serialized it.
    Bytes signed_payload = r.raw(r.remaining());

    auto auth = check_admin_auth(ctx, nonce, pubkey, signature,
                                 create ? "create" : "update", signed_payload);
    if (!auth.is_ok()) return auth.status();

    util::Reader rp(signed_payload);
    Bytes state_wire = rp.bytes();
    rp.expect_end();

    auto state = ReplicaState::parse(state_wire);
    if (!state.is_ok()) return state.status();
    // Verify before use (paper §3.2.2): admin auth only proves *who* pushed
    // the state, not that the state is internally authentic.  Hosting an
    // inconsistent state would make this server serve bytes every client
    // rejects — or worse, keep serving them if a client-side check ever
    // regressed.  Key↔OID, certificate signature, element hashes and entry
    // freshness are all checked here, before anything is installed.
    util::Status state_ok = state->verify(ctx.now());
    if (!state_ok.is_ok()) return state_ok;
    Oid oid = state->certificate.oid();

    util::LockGuard lock(mutex_);
    auto cit = creators_.find(oid);
    if (create) {
      if (cit != creators_.end()) {
        return Result<Bytes>(ErrorCode::kAlreadyExists,
                             "replica exists: " + oid.to_hex());
      }
      creators_[oid] = *auth;
    } else {
      if (cit == creators_.end()) {
        return Result<Bytes>(ErrorCode::kNotFound, "no replica of " + oid.to_hex());
      }
      if (cit->second != *auth) {
        return Result<Bytes>(ErrorCode::kPermissionDenied,
                             "only the creating entity may manage this replica");
      }
      // Refuse version rollback: a stale (but correctly signed) state must
      // not replace a newer one through the admin path.
      if (state->certificate.version() <
          replicas_[oid].certificate.version()) {
        return Result<Bytes>(ErrorCode::kInvalidArgument,
                             "state version older than the hosted replica");
      }
    }
    // Resource policy (paper §6 extension): enforce the administrator's
    // limits and start the hosting lease.
    HostingGrant grant =
        check_capacity_locked(state->content_bytes(), create ? nullptr : &oid);
    if (!grant.accepted) {
      if (create) creators_.erase(oid);
      return Result<Bytes>(ErrorCode::kUnavailable, "hosting refused: " + grant.reason);
    }
    if (grant.lease != 0) {
      lease_until_[oid] = ctx.now() + grant.lease;
    } else {
      lease_until_.erase(oid);
    }
    install_locked(oid, std::move(*state), ctx.now());
    replica_installs_->inc();
    obs::global_event_log().emit(obs::EventLevel::kInfo, "server",
                                 "replica_install",
                                 name_ + ": " + oid.to_hex() +
                                     (create ? " created" : " updated"),
                                 ctx.now());
    return Bytes{};
  } catch (const util::SerialError& e) {
    return Result<Bytes>(ErrorCode::kProtocol, e.what());
  }
}

Result<Bytes> ObjectServer::handle_delete(net::ServerContext& ctx, BytesView payload) {
  try {
    util::Reader r(payload);
    Bytes nonce = r.bytes();
    Bytes pubkey = r.bytes();
    Bytes signature = r.bytes();
    Bytes oid_bytes = r.raw(r.remaining());
    if (oid_bytes.size() != Oid::kSize) {
      return Result<Bytes>(ErrorCode::kProtocol, "delete payload must be an OID");
    }

    auto auth = check_admin_auth(ctx, nonce, pubkey, signature, "delete", oid_bytes);
    if (!auth.is_ok()) return auth.status();

    auto oid = Oid::from_bytes(oid_bytes);
    if (!oid.is_ok()) return oid.status();

    util::LockGuard lock(mutex_);
    auto cit = creators_.find(*oid);
    if (cit == creators_.end()) {
      return Result<Bytes>(ErrorCode::kNotFound, "no replica of " + oid->to_hex());
    }
    if (cit->second != *auth) {
      return Result<Bytes>(ErrorCode::kPermissionDenied,
                           "only the creating entity may manage this replica");
    }
    creators_.erase(cit);
    replicas_.erase(*oid);
    installed_at_.erase(*oid);
    lease_until_.erase(*oid);
    replica_deletes_->inc();
    obs::global_event_log().emit(obs::EventLevel::kInfo, "server",
                                 "replica_delete", name_ + ": " + oid->to_hex(),
                                 ctx.now());
    return Bytes{};
  } catch (const util::SerialError& e) {
    return Result<Bytes>(ErrorCode::kProtocol, e.what());
  }
}

Result<Bytes> ObjectServer::handle_list_replicas(net::ServerContext&,
                                                 BytesView payload) {
  if (!payload.empty()) {
    return Result<Bytes>(ErrorCode::kProtocol, "list takes no payload");
  }
  util::LockGuard lock(mutex_);
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(replicas_.size()));
  for (const auto& [oid, state] : replicas_) w.raw(oid.to_bytes());
  return w.take();
}

AdminClient::AdminClient(net::Transport& transport, net::Endpoint server,
                         crypto::RsaKeyPair credentials)
    : transport_(&transport), server_(server), credentials_(std::move(credentials)) {}

Result<Bytes> AdminClient::fresh_nonce() {
  rpc::RpcClient client(*transport_, server_);
  auto raw = client.call(rpc::kGlobeDocAdmin, kChallenge, Bytes{});
  if (!raw.is_ok()) return raw.status();
  try {
    util::Reader r(*raw);
    Bytes nonce = r.bytes();
    r.expect_end();
    return nonce;
  } catch (const util::SerialError& e) {
    return Result<Bytes>(ErrorCode::kProtocol, e.what());
  }
}

Status AdminClient::authed_call(std::uint16_t method, std::string_view tag,
                                BytesView payload) {
  auto nonce = fresh_nonce();
  if (!nonce.is_ok()) return nonce.status();

  transport_->charge(net::CpuOp::kRsaSign, 1);
  Bytes signature = crypto::rsa_sign_sha256(
      credentials_.priv, admin_signed_payload(tag, *nonce, payload));

  util::Writer w;
  w.bytes(*nonce);
  w.bytes(credentials_.pub.serialize());
  w.bytes(signature);
  w.raw(payload);
  rpc::RpcClient client(*transport_, server_);
  return client.call(rpc::kGlobeDocAdmin, method, w.buffer()).status();
}

Status AdminClient::create_replica(const ReplicaState& state) {
  util::Writer w;
  w.bytes(state.serialize());
  return authed_call(kCreateReplica, "create", w.buffer());
}

Status AdminClient::update_replica(const ReplicaState& state) {
  util::Writer w;
  w.bytes(state.serialize());
  return authed_call(kUpdateReplica, "update", w.buffer());
}

Status AdminClient::delete_replica(const Oid& oid) {
  return authed_call(kDeleteReplica, "delete", oid.to_bytes());
}

Result<HostingGrant> AdminClient::negotiate(std::uint64_t bytes,
                                            util::SimDuration lease) {
  util::Writer w;
  w.u64(bytes);
  w.u64(lease);
  rpc::RpcClient client(*transport_, server_);
  auto raw = client.call(rpc::kGlobeDocAdmin, kNegotiate, w.buffer());
  if (!raw.is_ok()) return raw.status();
  return HostingGrant::parse(*raw);
}

Result<std::vector<Oid>> AdminClient::list_replicas() {
  rpc::RpcClient client(*transport_, server_);
  auto raw = client.call(rpc::kGlobeDocAdmin, kListReplicas, Bytes{});
  if (!raw.is_ok()) return raw.status();
  try {
    util::Reader r(*raw);
    std::uint32_t n = util::checked_count(
        r.u32(), static_cast<std::uint32_t>(kMaxListReplicas));
    std::vector<Oid> oids;
    oids.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      auto oid = Oid::from_bytes(r.raw(Oid::kSize));
      if (!oid.is_ok()) return oid.status();
      oids.push_back(*oid);
    }
    r.expect_end();
    return oids;
  } catch (const util::SerialError& e) {
    return Result<std::vector<Oid>>(ErrorCode::kProtocol, e.what());
  }
}

}  // namespace globe::globedoc
