#include "globedoc/identity.hpp"

#include "util/serial.hpp"

namespace globe::globedoc {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Result;
using util::Status;

Bytes IdentityCertificate::signed_body() const {
  util::Writer w;
  w.str(subject);
  w.raw(oid.to_bytes());
  w.str(issuer);
  w.u64(expires);
  return w.take();
}

Bytes IdentityCertificate::serialize() const {
  util::Writer w;
  w.bytes(signed_body());
  w.bytes(signature);
  return w.take();
}

Result<IdentityCertificate> IdentityCertificate::parse(BytesView data) {
  try {
    util::Reader r(data);
    Bytes body = r.bytes();
    Bytes sig = r.bytes();
    r.expect_end();

    util::Reader rb(body);
    IdentityCertificate cert;
    cert.subject = rb.str();
    auto oid = Oid::from_bytes(rb.raw(Oid::kSize));
    if (!oid.is_ok()) return oid.status();
    cert.oid = *oid;
    cert.issuer = rb.str();
    cert.expires = rb.u64();
    rb.expect_end();
    cert.signature = std::move(sig);
    return cert;
  } catch (const util::SerialError& e) {
    return Result<IdentityCertificate>(ErrorCode::kProtocol, e.what());
  }
}

CertificateAuthority::CertificateAuthority(std::string name, crypto::RsaKeyPair keys)
    : name_(std::move(name)), keys_(std::move(keys)) {}

IdentityCertificate CertificateAuthority::issue(const std::string& subject,
                                                const Oid& oid,
                                                util::SimTime expires) const {
  IdentityCertificate cert;
  cert.subject = subject;
  cert.oid = oid;
  cert.issuer = name_;
  cert.expires = expires;
  cert.signature = crypto::rsa_sign_sha256(keys_.priv, cert.signed_body());
  return cert;
}

void TrustStore::trust(const std::string& ca_name, crypto::RsaPublicKey key) {
  cas_[ca_name] = std::move(key);
}

bool TrustStore::trusts(const std::string& ca_name) const {
  return cas_.count(ca_name) > 0;
}

Status TrustStore::verify(const IdentityCertificate& cert, const Oid& expected_oid,
                          util::SimTime now) const {
  auto it = cas_.find(cert.issuer);
  if (it == cas_.end()) {
    return Status(ErrorCode::kUntrustedIssuer,
                  "issuer '" + cert.issuer + "' not in trust store");
  }
  if (!crypto::rsa_verify_sha256(it->second, cert.signed_body(), cert.signature)) {
    return Status(ErrorCode::kBadSignature, "identity certificate signature invalid");
  }
  if (cert.oid != expected_oid) {
    return Status(ErrorCode::kWrongElement,
                  "identity certificate issued for a different object");
  }
  if (now >= cert.expires) {
    return Status(ErrorCode::kExpired, "identity certificate expired");
  }
  return Status::ok();
}

std::optional<std::string> TrustStore::first_trusted_subject(
    const std::vector<IdentityCertificate>& certs, const Oid& expected_oid,
    util::SimTime now) const {
  for (const auto& cert : certs) {
    if (verify(cert, expected_oid, now).is_ok()) return cert.subject;
  }
  return std::nullopt;
}

}  // namespace globe::globedoc
