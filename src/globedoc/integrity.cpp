#include "globedoc/integrity.hpp"

#include <algorithm>

#include "crypto/sha1.hpp"
#include "util/serial.hpp"

namespace globe::globedoc {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

Bytes encode_body(const Oid& oid, std::uint64_t version,
                  const std::vector<ElementEntry>& entries) {
  util::Writer w;
  w.raw(oid.to_bytes());
  w.u64(version);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    w.str(e.name);
    w.bytes(e.sha1);
    w.u64(e.expires);
  }
  return w.take();
}

}  // namespace

IntegrityCertificate IntegrityCertificate::build(
    const Oid& oid, std::uint64_t version, const std::vector<PageElement>& elements,
    util::SimTime now, util::SimDuration ttl, const crypto::RsaPrivateKey& key) {
  IntegrityCertificate cert;
  cert.oid_ = oid;
  cert.version_ = version;
  cert.entries_.reserve(elements.size());
  for (const auto& el : elements) {
    cert.entries_.push_back(ElementEntry{el.name, el.digest(), now + ttl});
  }
  cert.body_ = encode_body(cert.oid_, cert.version_, cert.entries_);
  // The paper signs certificates with the object key over SHA-1.
  cert.signature_ = crypto::rsa_sign_sha1(key, cert.body_);
  return cert;
}

const ElementEntry* IntegrityCertificate::find(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

bool IntegrityCertificate::verify_signature(const crypto::RsaPublicKey& key) const {
  return crypto::rsa_verify_sha1(key, body_, signature_);
}

Status IntegrityCertificate::check_element(const std::string& requested_name,
                                           const PageElement& served,
                                           util::SimTime now) const {
  const ElementEntry* entry = find(requested_name);
  if (entry == nullptr) {
    return Status(ErrorCode::kNotFound,
                  "certificate has no entry for '" + requested_name + "'");
  }
  // Consistency: the served element must be the one that was requested.
  if (served.name != requested_name) {
    return Status(ErrorCode::kWrongElement, "server returned '" + served.name +
                                                "' instead of '" + requested_name +
                                                "'");
  }
  // Authenticity: body matches the signed digest.
  if (!util::ct_equal(served.digest(), entry->sha1)) {
    return Status(ErrorCode::kHashMismatch,
                  "element body does not match certificate digest");
  }
  // Freshness: retrieval time inside the validity interval.
  if (now >= entry->expires) {
    return Status(ErrorCode::kExpired, "element entry expired");
  }
  return Status::ok();
}

Bytes IntegrityCertificate::serialize() const {
  util::Writer w;
  w.bytes(body_);
  w.bytes(signature_);
  return w.take();
}

Result<IntegrityCertificate> IntegrityCertificate::parse(BytesView data) {
  try {
    util::Reader r(data);
    IntegrityCertificate cert;
    cert.body_ = r.bytes();
    cert.signature_ = r.bytes();
    r.expect_end();

    util::Reader rb(cert.body_);
    auto oid = Oid::from_bytes(rb.raw(Oid::kSize));
    if (!oid.is_ok()) return oid.status();
    cert.oid_ = *oid;
    cert.version_ = rb.u64();
    std::uint32_t n = util::checked_count(
        rb.u32(), static_cast<std::uint32_t>(kMaxCertificateEntries));
    cert.entries_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      ElementEntry e;
      e.name = rb.str();
      e.sha1 = rb.bytes();
      e.expires = rb.u64();
      if (e.sha1.size() != crypto::Sha1::kDigestSize) {
        return Result<IntegrityCertificate>(ErrorCode::kProtocol,
                                            "bad digest length in certificate");
      }
      cert.entries_.push_back(std::move(e));
    }
    rb.expect_end();
    return cert;
  } catch (const util::SerialError& e) {
    return Result<IntegrityCertificate>(ErrorCode::kProtocol, e.what());
  }
}

}  // namespace globe::globedoc
