#include "globedoc/fetch_many.hpp"

#include "globedoc/server.hpp"
#include "obs/profile.hpp"
#include "rpc/rpc.hpp"
#include "util/serial.hpp"

namespace globe::globedoc {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Result;

Bytes FetchManyRequest::serialize() const {
  GLOBE_PROFILE_SCOPE("fetch_many.encode");
  util::Writer w;
  w.raw(oid.to_bytes());
  w.u8(include_cert ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(names.size()));
  for (const auto& name : names) w.str(name);
  return w.take();
}

Result<FetchManyRequest> FetchManyRequest::parse(BytesView data) {
  GLOBE_PROFILE_SCOPE("fetch_many.decode");
  try {
    util::Reader r(data);
    FetchManyRequest req;
    auto oid = Oid::from_bytes(r.raw(Oid::kSize));
    if (!oid.is_ok()) return oid.status();
    req.oid = *oid;
    req.include_cert = r.u8() != 0;
    std::uint32_t n = util::checked_count(
        r.u32(), static_cast<std::uint32_t>(kFetchManyMaxElements));
    if (n == 0) {
      return Result<FetchManyRequest>(ErrorCode::kProtocol,
                                      "fetch_many batch is empty");
    }
    req.names.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) req.names.push_back(r.str());
    r.expect_end();
    return req;
  } catch (const util::SerialError& e) {
    return Result<FetchManyRequest>(ErrorCode::kProtocol, e.what());
  }
}

Bytes FetchManyResponse::serialize() const {
  GLOBE_PROFILE_SCOPE("fetch_many.encode");
  util::Writer w;
  w.u8(certificate.has_value() ? 1 : 0);
  if (certificate.has_value()) w.bytes(*certificate);
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const auto& item : items) {
    w.u8(item.found ? 1 : 0);
    if (item.found) w.bytes(item.element);
  }
  return w.take();
}

Result<FetchManyResponse> FetchManyResponse::parse(BytesView data) {
  GLOBE_PROFILE_SCOPE("fetch_many.decode");
  try {
    util::Reader r(data);
    FetchManyResponse resp;
    if (r.u8() != 0) resp.certificate = r.bytes();
    std::uint32_t n = util::checked_count(
        r.u32(), static_cast<std::uint32_t>(kFetchManyMaxElements));
    if (n == 0) {
      return Result<FetchManyResponse>(ErrorCode::kProtocol,
                                       "fetch_many reply is empty");
    }
    resp.items.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      Item item;
      item.found = r.u8() != 0;
      if (item.found) item.element = r.bytes();
      resp.items.push_back(std::move(item));
    }
    r.expect_end();
    return resp;
  } catch (const util::SerialError& e) {
    return Result<FetchManyResponse>(ErrorCode::kProtocol, e.what());
  }
}

Result<FetchManyResponse> fetch_many(net::Transport& transport,
                                     const net::Endpoint& replica,
                                     const FetchManyRequest& request) {
  if (request.names.empty() || request.names.size() > kFetchManyMaxElements) {
    return Result<FetchManyResponse>(
        ErrorCode::kInvalidArgument,
        "fetch_many takes 1.." + std::to_string(kFetchManyMaxElements) +
            " names per round trip");
  }
  rpc::RpcClient client(transport, replica);
  auto raw = client.call(rpc::kGlobeDocAccess, kFetchMany, request.serialize());
  if (!raw.is_ok()) return raw.status();
  auto resp = FetchManyResponse::parse(*raw);
  if (!resp.is_ok()) return resp.status();
  if (resp->items.size() != request.names.size()) {
    return Result<FetchManyResponse>(
        ErrorCode::kProtocol, "fetch_many reply echoed " +
                                  std::to_string(resp->items.size()) +
                                  " items for " +
                                  std::to_string(request.names.size()) +
                                  " requested names");
  }
  if (request.include_cert && !resp->certificate.has_value()) {
    return Result<FetchManyResponse>(ErrorCode::kProtocol,
                                     "fetch_many reply omitted the requested "
                                     "integrity certificate");
  }
  return resp;
}

}  // namespace globe::globedoc
