// Site importer: owner tooling that migrates existing static Web content
// into a GlobeDoc object — the adoption path for the paper's model ("most
// of the current Web infrastructure" can be reused, §2).
//
// Fetches each path from a regular HTTP origin and stores it as a page
// element (element name = path without the leading '/'; content type from
// the origin's header).  The caller then signs and publishes as usual.
//
// Trust boundary: the origin's replies are plain HTTP — nothing about them
// is authenticated, yet whatever the importer stores will be *signed by the
// owner's key* and served as authentic forever after.  An owner importing
// over a network segment they do not fully control should therefore pass an
// ImportManifest of expected content digests; each fetched body is checked
// against it before it may enter the object.  With an empty manifest the
// importer records the owner's explicit decision to trust the origin
// (typically localhost), which check_import_digest makes auditable as the
// single sanitation point on this path (DESIGN.md §9).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "globedoc/object.hpp"
#include "http/client.hpp"
#include "util/taint_annotations.hpp"

namespace globe::globedoc {

/// path (with leading '/') -> expected SHA-1 of the element content.
using ImportManifest = std::map<std::string, util::Bytes>;

struct ImportReport {
  std::size_t imported = 0;
  std::size_t bytes = 0;
  std::vector<std::string> failed;  // paths that did not yield a verified 200
};

/// Digest gate between the untrusted origin reply and the owner's object.
/// Empty manifest: accept (owner trusts the origin end to end).  Non-empty
/// manifest: the path must be listed and the content's SHA-1 must match —
/// a missing entry or a mismatch rejects the element.
GLOBE_SANITIZER [[nodiscard]] util::Status check_import_digest(
    const std::string& path, const PageElement& element,
    const ImportManifest& manifest);

/// Imports `paths` (each starting with '/') from the origin at `source`
/// into `object`, replacing elements of the same name.  Partial failures
/// (transport errors, non-200s, digest mismatches) are recorded in the
/// report rather than aborting the import; the result is an error only if
/// the report would be empty because every path failed or the input was
/// invalid.
util::Result<ImportReport> import_from_http(GlobeDocObject& object,
                                            net::Transport& transport,
                                            const net::Endpoint& source,
                                            const std::vector<std::string>& paths,
                                            const ImportManifest& manifest);

/// Unverified convenience overload (empty manifest): the owner vouches for
/// the origin and the path to it.
util::Result<ImportReport> import_from_http(GlobeDocObject& object,
                                            net::Transport& transport,
                                            const net::Endpoint& source,
                                            const std::vector<std::string>& paths);

}  // namespace globe::globedoc
