// Site importer: owner tooling that migrates existing static Web content
// into a GlobeDoc object — the adoption path for the paper's model ("most
// of the current Web infrastructure" can be reused, §2).
//
// Fetches each path from a regular HTTP origin and stores it as a page
// element (element name = path without the leading '/'; content type from
// the origin's header).  The caller then signs and publishes as usual.
#pragma once

#include <string>
#include <vector>

#include "globedoc/object.hpp"
#include "http/client.hpp"

namespace globe::globedoc {

struct ImportReport {
  std::size_t imported = 0;
  std::size_t bytes = 0;
  std::vector<std::string> failed;  // paths that did not yield a 200
};

/// Imports `paths` (each starting with '/') from the origin at `source`
/// into `object`, replacing elements of the same name.  Partial failures
/// are recorded in the report rather than aborting the import; the result
/// is an error only if the report would be empty because every path failed
/// or the input was invalid.
util::Result<ImportReport> import_from_http(GlobeDocObject& object,
                                            net::Transport& transport,
                                            const net::Endpoint& source,
                                            const std::vector<std::string>& paths);

}  // namespace globe::globedoc
