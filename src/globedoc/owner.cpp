#include "globedoc/owner.hpp"

#include <algorithm>

namespace globe::globedoc {

using util::ErrorCode;
using util::Status;

ObjectOwner::ObjectOwner(GlobeDocObject object, crypto::RsaKeyPair admin_credentials)
    : object_(std::move(object)), credentials_(std::move(admin_credentials)) {}

ReplicaState ObjectOwner::sign_and_snapshot(util::SimTime now, util::SimDuration ttl) {
  object_.sign_state(now, ttl);
  return object_.snapshot();
}

void ObjectOwner::register_name(naming::ZoneAuthority& zone, const std::string& name,
                                util::SimTime expires) {
  zone.add_oid(name, object_.oid().to_bytes(), expires);
}

Status ObjectOwner::publish_replica(net::Transport& transport,
                                    const net::Endpoint& object_server,
                                    const net::Endpoint& location_site,
                                    const ReplicaState& state) {
  AdminClient admin(transport, object_server, credentials_);
  Status created = admin.create_replica(state);
  if (!created.is_ok()) return created;

  location::LocationClient locator(transport, location_site);
  Status registered =
      locator.insert(location_site, object_.oid().view(), object_server);
  if (!registered.is_ok()) {
    // Roll back the replica so we never leave an unregistered copy behind.
    (void)admin.delete_replica(object_.oid());
    return registered;
  }
  replicas_.push_back(PublishedReplica{object_server, location_site});
  return Status::ok();
}

Status ObjectOwner::refresh_replicas(net::Transport& transport, util::SimTime now,
                                     util::SimDuration ttl) {
  ReplicaState state = sign_and_snapshot(now, ttl);
  for (const auto& replica : replicas_) {
    AdminClient admin(transport, replica.server, credentials_);
    Status updated = admin.update_replica(state);
    if (!updated.is_ok()) return updated;
  }
  return Status::ok();
}

Status ObjectOwner::unpublish_replica(net::Transport& transport,
                                      const net::Endpoint& object_server,
                                      const net::Endpoint& location_site) {
  auto it = std::find_if(replicas_.begin(), replicas_.end(),
                         [&](const PublishedReplica& r) {
                           return r.server == object_server &&
                                  r.location_site == location_site;
                         });
  if (it == replicas_.end()) {
    return Status(ErrorCode::kNotFound, "replica not published by this owner");
  }
  AdminClient admin(transport, object_server, credentials_);
  Status deleted = admin.delete_replica(object_.oid());
  if (!deleted.is_ok()) return deleted;

  location::LocationClient locator(transport, location_site);
  Status removed = locator.remove(location_site, object_.oid().view(), object_server);
  replicas_.erase(it);
  return removed;
}

}  // namespace globe::globedoc
