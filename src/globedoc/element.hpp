// Page elements: the unit of GlobeDoc content (paper §2).
//
// A Web document is a collection of logically related page elements (HTML,
// images, applets, ...).  The integrity certificate hashes the *serialized*
// element, so the name and content type are covered by the signature along
// with the body.
#pragma once

#include <string>

#include "util/bytes.hpp"
#include "util/status.hpp"

namespace globe::globedoc {

struct PageElement {
  std::string name;          // element name within the object, e.g. "index.html"
  std::string content_type;  // MIME type
  util::Bytes content;

  util::Bytes serialize() const;
  static util::Result<PageElement> parse(util::BytesView data);

  /// SHA-1 over the serialized element — the digest stored in integrity
  /// certificates.
  util::Bytes digest() const;

  friend bool operator==(const PageElement& a, const PageElement& b) {
    return a.name == b.name && a.content_type == b.content_type &&
           a.content == b.content;
  }
};

}  // namespace globe::globedoc
