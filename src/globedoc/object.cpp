#include "globedoc/object.hpp"

#include <stdexcept>

#include <algorithm>

#include "util/serial.hpp"

namespace globe::globedoc {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Result;

const PageElement* ReplicaState::find(const std::string& name) const {
  for (const auto& el : elements) {
    if (el.name == name) return &el;
  }
  return nullptr;
}

std::size_t ReplicaState::content_bytes() const {
  std::size_t total = 0;
  for (const auto& el : elements) total += el.content.size();
  return total;
}

Bytes ReplicaState::serialize() const {
  util::Writer w;
  w.bytes(public_key);
  w.bytes(certificate.serialize());
  w.u32(static_cast<std::uint32_t>(identity_certs.size()));
  for (const auto& cert : identity_certs) w.bytes(cert.serialize());
  w.u32(static_cast<std::uint32_t>(elements.size()));
  for (const auto& el : elements) w.bytes(el.serialize());
  return w.take();
}

Result<ReplicaState> ReplicaState::parse(BytesView data) {
  try {
    util::Reader r(data);
    ReplicaState state;
    state.public_key = r.bytes();
    auto cert = IntegrityCertificate::parse(r.bytes());
    if (!cert.is_ok()) return cert.status();
    state.certificate = std::move(*cert);
    std::uint32_t n_ids = util::checked_count(
        r.u32(), static_cast<std::uint32_t>(kMaxIdentityCerts));
    state.identity_certs.reserve(n_ids);
    for (std::uint32_t i = 0; i < n_ids; ++i) {
      auto id = IdentityCertificate::parse(r.bytes());
      if (!id.is_ok()) return id.status();
      state.identity_certs.push_back(std::move(*id));
    }
    std::uint32_t n_els = util::checked_count(
        r.u32(), static_cast<std::uint32_t>(kMaxCertificateEntries));
    state.elements.reserve(n_els);
    for (std::uint32_t i = 0; i < n_els; ++i) {
      auto el = PageElement::parse(r.bytes());
      if (!el.is_ok()) return el.status();
      state.elements.push_back(std::move(*el));
    }
    r.expect_end();
    return state;
  } catch (const util::SerialError& e) {
    return Result<ReplicaState>(ErrorCode::kProtocol, e.what());
  }
}

util::Status ReplicaState::verify(util::SimTime now) const {
  auto key = crypto::RsaPublicKey::parse(public_key);
  if (!key.is_ok()) return key.status();
  if (!certificate.oid().matches_key(*key)) {
    return util::Status(ErrorCode::kOidMismatch,
                        "state public key does not hash to the certificate OID");
  }
  if (!certificate.verify_signature(*key)) {
    return util::Status(ErrorCode::kBadSignature,
                        "state certificate signature invalid");
  }
  // The paper requires a hosting server to store *all* of the object's page
  // elements (§3.2.2): every entry must be present and fresh, and no element
  // may ride along outside the signed set.
  if (elements.size() != certificate.entries().size()) {
    return util::Status(ErrorCode::kWrongElement,
                        "element set does not match the certificate entries");
  }
  for (const auto& entry : certificate.entries()) {
    const PageElement* el = find(entry.name);
    if (el == nullptr) {
      return util::Status(ErrorCode::kNotFound,
                          "certificate entry '" + entry.name + "' has no element");
    }
    util::Status check = certificate.check_element(entry.name, *el, now);
    if (!check.is_ok()) return check;
  }
  return util::Status::ok();
}

GlobeDocObject::GlobeDocObject(crypto::RsaKeyPair keys)
    : keys_(std::move(keys)), oid_(Oid::from_public_key(keys_.pub)) {}

GlobeDocObject GlobeDocObject::create(util::RandomSource& rng, std::size_t key_bits) {
  return GlobeDocObject(crypto::rsa_generate(key_bits, rng));
}

void GlobeDocObject::put_element(PageElement element) {
  if (element.name.empty()) {
    throw std::invalid_argument("put_element: empty element name");
  }
  elements_[element.name] = std::move(element);
  dirty_ = true;
}

void GlobeDocObject::remove_element(const std::string& name) {
  if (elements_.erase(name) > 0) dirty_ = true;
}

const PageElement* GlobeDocObject::element(const std::string& name) const {
  auto it = elements_.find(name);
  return it == elements_.end() ? nullptr : &it->second;
}

std::vector<std::string> GlobeDocObject::element_names() const {
  std::vector<std::string> names;
  names.reserve(elements_.size());
  for (const auto& [name, el] : elements_) names.push_back(name);
  return names;
}

void GlobeDocObject::add_identity_certificate(IdentityCertificate cert) {
  identity_certs_.push_back(std::move(cert));
  dirty_ = true;
}

const IntegrityCertificate& GlobeDocObject::sign_state(util::SimTime now,
                                                       util::SimDuration ttl) {
  std::vector<PageElement> elements;
  elements.reserve(elements_.size());
  for (const auto& [name, el] : elements_) elements.push_back(el);
  certificate_ =
      IntegrityCertificate::build(oid_, ++version_, elements, now, ttl, keys_.priv);
  dirty_ = false;
  return certificate_;
}

ReplicaState GlobeDocObject::snapshot() const {
  if (dirty_) {
    throw std::logic_error("snapshot of unsigned state: call sign_state first");
  }
  ReplicaState state;
  state.public_key = keys_.pub.serialize();
  state.certificate = certificate_;
  state.identity_certs = identity_certs_;
  state.elements.reserve(elements_.size());
  for (const auto& [name, el] : elements_) state.elements.push_back(el);
  return state;
}

}  // namespace globe::globedoc
