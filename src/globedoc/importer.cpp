#include "globedoc/importer.hpp"

namespace globe::globedoc {

using util::ErrorCode;
using util::Result;

Result<ImportReport> import_from_http(GlobeDocObject& object,
                                      net::Transport& transport,
                                      const net::Endpoint& source,
                                      const std::vector<std::string>& paths) {
  if (paths.empty()) {
    return Result<ImportReport>(ErrorCode::kInvalidArgument, "no paths to import");
  }
  http::HttpClient client(transport);
  ImportReport report;
  for (const std::string& path : paths) {
    if (path.empty() || path[0] != '/') {
      report.failed.push_back(path);
      continue;
    }
    auto response = client.get(source, path);
    if (!response.is_ok() || response->status != 200) {
      report.failed.push_back(path);
      continue;
    }
    PageElement element;
    element.name = path.substr(1);
    element.content_type = response->headers.get("Content-Type")
                               .value_or("application/octet-stream");
    element.content = std::move(response->body);
    report.bytes += element.content.size();
    object.put_element(std::move(element));
    ++report.imported;
  }
  if (report.imported == 0) {
    return Result<ImportReport>(ErrorCode::kUnavailable,
                                "every path failed to import");
  }
  return report;
}

}  // namespace globe::globedoc
