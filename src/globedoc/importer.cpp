#include "globedoc/importer.hpp"

#include "crypto/sha1.hpp"

namespace globe::globedoc {

using util::ErrorCode;
using util::Result;
using util::Status;

Status check_import_digest(const std::string& path, const PageElement& element,
                           const ImportManifest& manifest) {
  if (manifest.empty()) return Status::ok();
  auto it = manifest.find(path);
  if (it == manifest.end()) {
    return Status(ErrorCode::kNotFound, "path not in import manifest: " + path);
  }
  if (crypto::Sha1::digest_bytes(element.content) != it->second) {
    return Status(ErrorCode::kHashMismatch,
                  "imported content does not match manifest digest: " + path);
  }
  return Status::ok();
}

Result<ImportReport> import_from_http(GlobeDocObject& object,
                                      net::Transport& transport,
                                      const net::Endpoint& source,
                                      const std::vector<std::string>& paths,
                                      const ImportManifest& manifest) {
  if (paths.empty()) {
    return Result<ImportReport>(ErrorCode::kInvalidArgument, "no paths to import");
  }
  http::HttpClient client(transport);
  ImportReport report;
  for (const std::string& path : paths) {
    if (path.empty() || path[0] != '/') {
      report.failed.push_back(path);
      continue;
    }
    auto response = client.get(source, path);
    if (!response.is_ok() || response->status != 200) {
      report.failed.push_back(path);
      continue;
    }
    PageElement element;
    element.name = path.substr(1);
    element.content_type = response->headers.get("Content-Type")
                               .value_or("application/octet-stream");
    element.content = std::move(response->body);
    Status verified = check_import_digest(path, element, manifest);
    if (!verified.is_ok()) {
      report.failed.push_back(path);
      continue;
    }
    report.bytes += element.content.size();
    object.put_element(std::move(element));
    ++report.imported;
  }
  if (report.imported == 0) {
    return Result<ImportReport>(ErrorCode::kUnavailable,
                                "every path failed to import");
  }
  return report;
}

Result<ImportReport> import_from_http(GlobeDocObject& object,
                                      net::Transport& transport,
                                      const net::Endpoint& source,
                                      const std::vector<std::string>& paths) {
  return import_from_http(object, transport, source, paths, ImportManifest{});
}

}  // namespace globe::globedoc
