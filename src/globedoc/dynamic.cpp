#include "globedoc/dynamic.hpp"

#include "crypto/sha1.hpp"
#include "util/serial.hpp"

namespace globe::globedoc {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Result;

Bytes DynamicReceipt::signed_body() const {
  util::Writer w;
  w.raw(oid.to_bytes());
  w.str(template_name);
  w.str(query);
  w.bytes(response_sha1);
  w.u64(served_at);
  w.str(server_name);
  return w.take();
}

Bytes DynamicReceipt::serialize() const {
  util::Writer w;
  w.bytes(signed_body());
  w.bytes(signature);
  return w.take();
}

Result<DynamicReceipt> DynamicReceipt::parse(BytesView data) {
  try {
    util::Reader r(data);
    Bytes body = r.bytes();
    Bytes sig = r.bytes();
    r.expect_end();

    util::Reader rb(body);
    DynamicReceipt receipt;
    auto oid = Oid::from_bytes(rb.raw(Oid::kSize));
    if (!oid.is_ok()) return oid.status();
    receipt.oid = *oid;
    receipt.template_name = rb.str();
    receipt.query = rb.str();
    receipt.response_sha1 = rb.bytes();
    receipt.served_at = rb.u64();
    receipt.server_name = rb.str();
    rb.expect_end();
    receipt.signature = std::move(sig);
    if (receipt.response_sha1.size() != crypto::Sha1::kDigestSize) {
      return Result<DynamicReceipt>(ErrorCode::kProtocol, "bad digest length");
    }
    return receipt;
  } catch (const util::SerialError& e) {
    return Result<DynamicReceipt>(ErrorCode::kProtocol, e.what());
  }
}

bool DynamicReceipt::verify(const crypto::RsaPublicKey& server_key,
                            BytesView response) const {
  if (!crypto::rsa_verify_sha256(server_key, signed_body(), signature)) {
    return false;
  }
  return util::ct_equal(crypto::Sha1::digest_bytes(response), response_sha1);
}

DynamicReplicaServer::DynamicReplicaServer(std::string name,
                                           crypto::RsaKeyPair server_key)
    : name_(std::move(name)), key_(std::move(server_key)) {}

void DynamicReplicaServer::host(const Oid& oid, const std::string& template_name,
                                Generator generator) {
  util::LockGuard lock(mutex_);
  generators_[{oid, template_name}] = std::move(generator);
}

void DynamicReplicaServer::set_cheat(std::function<Bytes(Bytes)> corruptor) {
  util::LockGuard lock(mutex_);
  cheat_ = std::move(corruptor);
}

std::size_t DynamicReplicaServer::queries_served() const {
  util::LockGuard lock(mutex_);
  return queries_served_;
}

void DynamicReplicaServer::register_with(rpc::ServiceDispatcher& dispatcher) {
  dispatcher.register_method(
      rpc::kGlobeDocDynamic, kDynQuery,
      [this](net::ServerContext& ctx, BytesView payload) {
        return handle_query(ctx, payload);
      });
}

Result<Bytes> DynamicReplicaServer::handle_query(net::ServerContext& ctx,
                                                 BytesView payload) {
  try {
    util::Reader r(payload);
    auto oid = Oid::from_bytes(r.raw(Oid::kSize));
    if (!oid.is_ok()) return oid.status();
    std::string template_name = r.str();
    std::string query = r.str();
    r.expect_end();

    Generator generator;
    std::function<Bytes(Bytes)> cheat;
    {
      util::LockGuard lock(mutex_);
      auto it = generators_.find({*oid, template_name});
      if (it == generators_.end()) {
        return Result<Bytes>(ErrorCode::kNotFound,
                             "no dynamic template '" + template_name + "'");
      }
      generator = it->second;
      cheat = cheat_;
      ++queries_served_;
    }

    Bytes response = generator(query);
    if (cheat) response = cheat(std::move(response));

    // The server signs what it actually serves: that is the accountability
    // hook.  A lying server must either sign its lie (caught by audit) or
    // send an unverifiable receipt (rejected immediately by the client).
    DynamicReceipt receipt;
    receipt.oid = *oid;
    receipt.template_name = template_name;
    receipt.query = query;
    receipt.response_sha1 = crypto::Sha1::digest_bytes(response);
    receipt.served_at = ctx.now();
    receipt.server_name = name_;
    ctx.charge(net::CpuOp::kRsaSign, 1);
    receipt.signature = crypto::rsa_sign_sha256(key_.priv, receipt.signed_body());

    util::Writer w;
    w.bytes(response);
    w.bytes(receipt.serialize());
    return w.take();
  } catch (const util::SerialError& e) {
    return Result<Bytes>(ErrorCode::kProtocol, e.what());
  }
}

bool MisbehaviorProof::verify(const crypto::RsaPublicKey& server_key) const {
  // The receipt must be genuinely signed by the accused server...
  if (!crypto::rsa_verify_sha256(server_key, receipt.signed_body(),
                                 receipt.signature)) {
    return false;
  }
  // ...and attest to different content than the origin's answer.
  return !util::ct_equal(crypto::Sha1::digest_bytes(origin_response),
                         receipt.response_sha1);
}

DynamicAuditor::DynamicAuditor(net::Transport& transport, Config config)
    : transport_(&transport), config_(std::move(config)), rng_(config_.seed) {}

Result<std::pair<Bytes, DynamicReceipt>> DynamicAuditor::parse_reply(BytesView raw) {
  try {
    util::Reader r(raw);
    Bytes response = r.bytes();
    auto receipt = DynamicReceipt::parse(r.bytes());
    r.expect_end();
    if (!receipt.is_ok()) return receipt.status();
    return std::make_pair(std::move(response), std::move(*receipt));
  } catch (const util::SerialError& e) {
    return Result<std::pair<Bytes, DynamicReceipt>>(ErrorCode::kProtocol, e.what());
  }
}

Result<Bytes> DynamicAuditor::query(const Oid& oid, const std::string& template_name,
                                    const std::string& query_string) {
  ++queries_;
  util::Writer req;
  req.raw(oid.to_bytes());
  req.str(template_name);
  req.str(query_string);

  rpc::RpcClient replica(*transport_, config_.replica);
  auto raw = replica.call(rpc::kGlobeDocDynamic, kDynQuery, req.buffer());
  if (!raw.is_ok()) return raw.status();
  auto reply = parse_reply(*raw);
  if (!reply.is_ok()) return reply.status();
  auto& [response, receipt] = *reply;

  // Immediate checks: the receipt must be well-formed, signed by the
  // replica, bound to this response, and answer THIS query.
  transport_->charge(net::CpuOp::kRsaVerify, 1);
  transport_->charge(net::CpuOp::kSha1, response.size());
  if (receipt.oid != oid || receipt.template_name != template_name ||
      receipt.query != query_string) {
    return Result<Bytes>(ErrorCode::kWrongElement,
                         "receipt answers a different query");
  }
  if (!receipt.verify(config_.replica_server_key, response)) {
    return Result<Bytes>(ErrorCode::kBadSignature, "dynamic receipt invalid");
  }

  // Probabilistic audit: replay at the trusted origin and compare.
  if (rng_.next_double() < config_.audit_probability) {
    ++audits_;
    rpc::RpcClient origin(*transport_, config_.origin);
    auto origin_raw = origin.call(rpc::kGlobeDocDynamic, kDynQuery, req.buffer());
    if (origin_raw.is_ok()) {
      auto origin_reply = parse_reply(*origin_raw);
      if (origin_reply.is_ok() &&
          !util::ct_equal(crypto::Sha1::digest_bytes(origin_reply->first),
                          receipt.response_sha1)) {
        proofs_.push_back(MisbehaviorProof{receipt, origin_reply->first});
      }
    }
  }
  return std::move(response);
}

}  // namespace globe::globedoc
