#include "globedoc/adversary.hpp"

#include "globedoc/element.hpp"
#include "globedoc/fetch_many.hpp"
#include "globedoc/server.hpp"
#include "location/tree.hpp"
#include "obs/trace.hpp"
#include "rpc/rpc.hpp"
#include "util/serial.hpp"

namespace globe::globedoc {

using util::Bytes;
using util::BytesView;
using util::Result;

namespace {

struct RpcHeader {
  std::uint16_t service = 0;
  std::uint16_t method = 0;
  std::size_t prefix = 0;  // bytes before the service id (trace header)
  BytesView payload;
};

bool read_header(BytesView request, RpcHeader& out) {
  // A competent man-in-the-middle speaks the full framing: skip the
  // optional trace header (marker 0xFFFF, version, context) if present.
  std::size_t off = 0;
  if (request.size() >= 2 && request[0] == 0xff && request[1] == 0xff) {
    off = 2 + 1 + obs::TraceContext::kWireSize;
  }
  if (request.size() < off + 4) return false;
  out.prefix = off;
  out.service = static_cast<std::uint16_t>(std::uint16_t{request[off]} << 8 |
                                           request[off + 1]);
  out.method = static_cast<std::uint16_t>(std::uint16_t{request[off + 2]} << 8 |
                                          request[off + 3]);
  out.payload = request.subspan(off + 4);
  return true;
}

}  // namespace

net::MessageHandler tampering_element_attack(net::MessageHandler inner) {
  return [inner = std::move(inner)](net::ServerContext& ctx,
                                    BytesView request) -> Result<Bytes> {
    auto response = inner(ctx, request);
    RpcHeader header;
    if (!response.is_ok() || !read_header(request, header) ||
        header.service != rpc::kGlobeDocAccess ||
        (header.method != kGetElement && header.method != kFetchMany)) {
      return response;
    }
    Bytes graffiti = util::to_bytes("<!-- owned -->");
    if (header.method == kFetchMany) {
      // Batched path: deface the first element present in the batch, leave
      // the rest genuine — a partial tamper the verifier must still catch.
      auto batch = FetchManyResponse::parse(*response);
      if (!batch.is_ok()) return response;
      for (auto& item : batch->items) {
        if (!item.found) continue;
        auto element = PageElement::parse(item.element);
        if (!element.is_ok()) continue;
        if (element->content.empty()) {
          element->content = graffiti;
        } else {
          element->content[element->content.size() / 2] ^= 0xff;
        }
        item.element = element->serialize();
        break;
      }
      return batch->serialize();
    }
    auto element = PageElement::parse(*response);
    if (!element.is_ok()) return response;
    // Inject a defacement into the genuine element body.
    if (element->content.empty()) {
      element->content = graffiti;
    } else {
      element->content[element->content.size() / 2] ^= 0xff;
    }
    return element->serialize();
  };
}

net::MessageHandler element_swap_attack(net::MessageHandler inner,
                                        std::string decoy_element) {
  return [inner = std::move(inner), decoy = std::move(decoy_element)](
             net::ServerContext& ctx, BytesView request) -> Result<Bytes> {
    RpcHeader header;
    if (!read_header(request, header) || header.service != rpc::kGlobeDocAccess ||
        header.method != kGetElement) {
      return inner(ctx, request);
    }
    try {
      util::Reader r(header.payload);
      Bytes oid = r.raw(Oid::kSize);
      (void)r.str();  // discard the requested name
      r.expect_end();
      util::Writer w;
      w.raw(request.first(header.prefix));  // preserve any trace header
      w.u16(header.service);
      w.u16(header.method);
      w.raw(oid);
      w.str(decoy);
      return inner(ctx, w.buffer());
    } catch (const util::SerialError&) {
      return inner(ctx, request);
    }
  };
}

net::MessageHandler key_substitution_attack(net::MessageHandler inner,
                                            Bytes attacker_key_serialized) {
  return [inner = std::move(inner), key = std::move(attacker_key_serialized)](
             net::ServerContext& ctx, BytesView request) -> Result<Bytes> {
    auto response = inner(ctx, request);
    RpcHeader header;
    if (!response.is_ok() || !read_header(request, header) ||
        header.service != rpc::kGlobeDocSecurity || header.method != kGetPublicKey) {
      return response;
    }
    return key;
  };
}

net::MessageHandler misdirecting_location_node(
    std::vector<net::Endpoint> bogus_addresses) {
  return [addresses = std::move(bogus_addresses)](
             net::ServerContext&, BytesView request) -> Result<Bytes> {
    RpcHeader header;
    if (!read_header(request, header) || header.service != rpc::kLocationService ||
        header.method != location::kLookup) {
      return Result<Bytes>(util::ErrorCode::kNotFound, "malicious node: no method");
    }
    location::LookupReply reply;
    reply.found = true;
    reply.addresses = addresses;
    return reply.serialize();
  };
}

net::MessageHandler certificate_forgery_attack(net::MessageHandler inner) {
  return [inner = std::move(inner)](net::ServerContext& ctx,
                                    BytesView request) -> Result<Bytes> {
    auto response = inner(ctx, request);
    RpcHeader header;
    if (!response.is_ok() || !read_header(request, header) ||
        header.service != rpc::kGlobeDocSecurity ||
        header.method != kGetIntegrityCert) {
      return response;
    }
    Bytes forged = *response;
    if (!forged.empty()) forged[forged.size() - 1] ^= 0x01;  // mangle the signature
    return forged;
  };
}

}  // namespace globe::globedoc
