// Batched element retrieval (access method kFetchMany, DESIGN.md §12).
//
// One round trip returns up to kFetchManyMaxElements page elements of a
// single object, optionally together with the object's integrity
// certificate — the "multiple entries per HTTP request" idea: the
// per-element verification model means a batch needs no extra trust, every
// element is still checked individually against its certificate entry.
// Consumers: the edge-cache tier's fill path (src/cache/tier.cpp) and the
// peer-to-peer pull path (replication/refresher.cpp), which both used to
// pay one round trip per element.
//
// Wire formats (util/serial.hpp conventions):
//   request:  oid20, u8 include_cert, u32 n, n × str name
//   response: u8 has_cert, [bytes certificate], u32 n,
//             n × (u8 found, [bytes element])
// The response echoes exactly one item per requested name, in request
// order; elements and certificate travel as opaque length-prefixed blobs so
// the caller parses and VERIFIES them itself — the transport-level decode
// here proves nothing about authenticity.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "globedoc/oid.hpp"
#include "net/transport.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"
#include "util/taint_annotations.hpp"
#include "util/thread_annotations.hpp"

namespace globe::globedoc {

/// Upper bound on elements per fetch_many round trip (K).  Requests above
/// it are a protocol error; callers chunk.
inline constexpr std::size_t kFetchManyMaxElements = 64;

struct FetchManyRequest {
  Oid oid;
  bool include_cert = false;       // also return the integrity certificate
  std::vector<std::string> names;  // up to kFetchManyMaxElements

  util::Bytes serialize() const;
  /// Server-side decode of a wire payload from an arbitrary caller.
  static util::Result<FetchManyRequest> parse(GLOBE_UNTRUSTED util::BytesView data);
};

struct FetchManyResponse {
  struct Item {
    bool found = false;
    util::Bytes element;  // serialized PageElement when found, else empty
  };

  std::optional<util::Bytes> certificate;  // serialized IntegrityCertificate
  std::vector<Item> items;                 // one per requested name, in order

  util::Bytes serialize() const;
  /// Client-side decode of a reply from an untrusted replica.  Bounds and
  /// framing are checked here; authenticity is NOT — the caller must parse
  /// and verify certificate/elements before trusting a single byte.
  static util::Result<FetchManyResponse> parse(GLOBE_UNTRUSTED util::BytesView data);
};

/// One kFetchMany round trip against `replica`.  PROTOCOL when the reply
/// does not echo one item per requested name.
GLOBE_BLOCKING util::Result<FetchManyResponse> fetch_many(net::Transport& transport,
                                           const net::Endpoint& replica,
                                           const FetchManyRequest& request);

}  // namespace globe::globedoc
