// The GlobeDoc client proxy — the user-side half of the paper (Fig. 3).
//
// Installed next to the browser, it turns hybrid URLs into the secure
// browsing pipeline:
//   1.  resolve the object name to a self-certifying OID (secure naming);
//   2.  locate a nearby replica via the (untrusted) Location Service;
//   3.  fetch the object's public key and check SHA-1(key) == OID;
//   4.  optionally fetch identity certificates and match them against the
//       user's trusted CAs ("Certified as:");
//   5.  fetch the integrity certificate and verify its signature;
//   6.  fetch the requested page element and verify authenticity,
//       freshness and consistency against the certificate.
// Any verification failure is typed (BAD_SIGNATURE, HASH_MISMATCH, EXPIRED,
// WRONG_ELEMENT, OID_MISMATCH, UNTRUSTED_ISSUER); on failure the proxy
// falls back to the next contact address, so a malicious replica or a lying
// Location Service causes at most a retry — never bad content (paper
// §3.1.2).  Non-hybrid requests pass through to a regular origin server.
//
// The proxy records one obs trace-span tree per fetch ("fetch" root with
// resolve / locate / key_check / identity / integrity_verify /
// element_verify children); the sum of the last four stages is the
// security-specific time of steps 3-6 — the quantity plotted in Figure 4.
#pragma once

#include <deque>
#include <optional>
#include <set>
#include <string>

#include "globedoc/cache_iface.hpp"
#include "globedoc/hybrid_url.hpp"
#include "globedoc/identity.hpp"
#include "globedoc/integrity.hpp"
#include "globedoc/object.hpp"
#include "http/client.hpp"
#include "http/message.hpp"
#include "location/tree.hpp"
#include "naming/resolver.hpp"
#include "net/transport.hpp"
#include "obs/collector.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "util/bounds_annotations.hpp"
#include "obs/trace.hpp"
#include "util/taint_annotations.hpp"

#include <atomic>

namespace globe::obs {
class AdminHttpServer;  // obs/admin.hpp
}

namespace globe::globedoc {

struct ProxyConfig {
  net::Endpoint naming_root;             // root name server
  crypto::RsaPublicKey naming_anchor;    // root zone trust anchor
  net::Endpoint location_site;           // local Location Service site node
  TrustStore trust;                      // user's trusted CAs
  bool request_identity = false;         // run step 4 during binding
  bool require_identity = false;         // fail binding when no trusted cert
  bool cache_bindings = false;           // reuse verified bindings
  // Client-side element cache: a verified element may be served locally
  // until its certificate entry expires — the per-element validity interval
  // of §3.2.2 doubles as a sound cache TTL (the "Verif" client strategy of
  // ref [13]).
  bool cache_elements = false;
  // Shared verified edge-cache tier (src/cache/, DESIGN.md §12).  When set,
  // step 6 routes through the tier: hits serve locally, misses coalesce into
  // one batched upstream fill per distinct element.  One tier instance is
  // typically shared by every proxy/flow on a node — the sharing is what
  // collapses a thundering herd.  Must outlive the proxy; nullptr = direct
  // per-request fetches (the pre-tier behaviour).
  ElementCacheTier* edge_cache = nullptr;
  // Completed fetch traces (and, via RPC propagation, the server-side
  // fragments they caused) are stitched here; nullptr means the process-wide
  // obs::global_trace_collector().
  obs::TraceCollector* trace_collector = nullptr;
  // Registry for this proxy's metrics (proxy.*, and the per-replica
  // proxy.fetch_ms latency histogram); nullptr means the process-wide
  // obs::global_registry().  Per-node deployments hand each proxy its own
  // registry so the telemetry plane can scrape and label it individually.
  obs::MetricsRegistry* registry = nullptr;
  // Cost-profile registry (DESIGN.md §15): every probe fired while a fetch
  // runs — crypto primitives included — is attributed here; nullptr means
  // the process-wide obs::global_profile_registry().
  obs::ProfileRegistry* profile = nullptr;
};

/// Stage names of the per-fetch span tree (children of the "fetch" root).
struct FetchStage {
  static constexpr const char* kFetch = "fetch";                      // root
  static constexpr const char* kResolve = "resolve";                  // step 1
  static constexpr const char* kLocate = "locate";                    // step 2
  static constexpr const char* kKeyCheck = "key_check";               // step 3
  static constexpr const char* kIdentity = "identity";                // step 4
  static constexpr const char* kIntegrityVerify = "integrity_verify"; // step 5
  static constexpr const char* kElementVerify = "element_verify";     // step 6
  static constexpr const char* kEdgeCache = "edge_cache";  // step 6 via tier
};

struct FetchMetrics {
  util::SimDuration total_time = 0;
  /// Steps 3-6 (Fig. 4 numerator): the sum of the key_check, identity,
  /// integrity_verify and element_verify spans of `trace`, across every
  /// replica attempted.
  util::SimDuration security_time = 0;
  std::size_t content_bytes = 0;
  std::size_t replicas_tried = 0;
  bool used_cached_binding = false;
  bool used_cached_element = false;  // served from the verified local cache
  bool served_from_edge_cache = false;  // edge tier hit, zero upstream RPCs
  bool coalesced_fill = false;  // waited on another flow's in-flight fill
  /// Span tree of this fetch: a "fetch" root whose children are the
  /// pipeline stages (FetchStage names).  Timestamps come from the
  /// transport clock — virtual time under SimNet, wall time over TCP.
  obs::SpanRecord trace;
  /// 128-bit id of the distributed trace this fetch recorded; use it with
  /// TraceCollector::find() to get the stitched cross-host tree (the local
  /// `trace` above has no server-side spans).
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
};

struct FetchResult {
  PageElement element;
  std::optional<std::string> certified_as;  // subject of first trusted cert
  FetchMetrics metrics;
};

class GlobeDocProxy {
 public:
  GlobeDocProxy(net::Transport& transport, ProxyConfig config);

  /// Full pipeline for one hybrid URL.
  util::Result<FetchResult> fetch_url(const std::string& hybrid_url);
  util::Result<FetchResult> fetch(const std::string& object_name,
                                  const std::string& element_name);

  /// Browser-facing adapter: hybrid targets go through the secure pipeline
  /// (failures render the paper's "Security Check Failed" page); other
  /// targets are forwarded to the configured origin.  Trusted sink: what
  /// this returns is handed to the client's browser, so unverified replica
  /// bytes must never flow into the response (paper §3.3).
  GLOBE_TRUSTED_SINK http::HttpResponse handle_browser_request(
      const http::HttpRequest& request);
  void set_origin_fallback(const net::Endpoint& origin) { origin_ = origin; }

  /// Drops verified bindings (next fetch re-binds from scratch).
  void clear_bindings() { bindings_.clear(); }
  std::size_t binding_count() const { return bindings_.size(); }

  /// Drops cached elements; expired entries are also evicted lazily.
  void clear_element_cache() { element_cache_.clear(); }
  std::size_t element_cache_size() const { return element_cache_.size(); }

  /// Registers this proxy's readiness probes on an admin surface:
  /// "naming" (root name server reachable), "location" (local Location
  /// Service node reachable), "replica" (the channel to the last replica
  /// served from, once one exists).  The proxy must outlive `admin`.
  void register_health_checks(obs::AdminHttpServer& admin);

  net::Transport& transport() { return *transport_; }

 private:
  struct Binding {
    Oid oid;
    net::Endpoint replica;
    crypto::RsaPublicKey object_key;
    IntegrityCertificate certificate;
    std::optional<std::string> certified_as;
  };

  /// Body of fetch(); spans open on `tracer`, stats land in `metrics`.
  util::Result<FetchResult> fetch_inner(const std::string& object_name,
                                        const std::string& element_name,
                                        FetchMetrics& metrics, obs::Tracer& tracer);

  /// Steps 1-5 against one specific replica address.  Sanitizer: a binding
  /// only comes back Ok after the self-certifying key check and integrity
  /// certificate verification succeeded against `address`.
  GLOBE_SANITIZER util::Result<Binding> bind_replica(const Oid& oid,
                                                     const net::Endpoint& address,
                                                     obs::Tracer& tracer);

  /// Step 6 against an established binding.
  util::Result<PageElement> fetch_element(const Binding& binding,
                                          const std::string& element_name,
                                          FetchMetrics& metrics, obs::Tracer& tracer);

  /// Stores a verified element with its certificate-entry expiry.  Trusted
  /// sink: only elements that passed check_element() may enter the cache —
  /// a cached element is served without re-verification until expiry.
  void cache_element(const std::string& object_name,
                     const std::string& element_name,
                     GLOBE_TRUSTED_SINK const Binding& binding,
                     GLOBE_TRUSTED_SINK const PageElement& element);

  struct CachedElement {
    PageElement element;
    util::SimTime expires = 0;  // the certificate entry's validity end
    std::optional<std::string> certified_as;
  };

  net::Transport* transport_;
  ProxyConfig config_;
  // Endpoint of the replica the last successful fetch was served from,
  // packed ((1<<63) | host<<16 | port) so health probes on another thread
  // read it without a lock; 0 = none yet.
  std::atomic<std::uint64_t> last_replica_{0};
  // Registry series (handles live as long as the registry, which must
  // outlive the proxy).
  obs::MetricsRegistry* registry_;
  obs::Counter* fetches_ok_;
  obs::Counter* fetches_failed_;
  obs::Counter* binding_cache_hits_;
  obs::Counter* element_cache_hits_;
  obs::Counter* replicas_tried_;
  obs::Counter* cert_verifies_;
  obs::Counter* cert_verify_memo_hits_;
  naming::SecureResolver resolver_;
  location::LocationClient locator_;
  std::optional<net::Endpoint> origin_;
  std::map<std::string, Binding> bindings_;  // object name -> verified binding
  // (object name, element name) -> verified element, until entry expiry.
  std::map<std::pair<std::string, std::string>, CachedElement> element_cache_;
  // Integrity-certificate verification memo: one RSA verify per
  // (document key, certificate), not one per element fetched.  Keyed on the
  // EXACT raw bytes of (serialized object key, serialized certificate), so a
  // memo hit replays a verification of byte-identical inputs — no weaker
  // than re-running it.  Only successes are remembered; bounded FIFO.
  std::set<std::pair<util::Bytes, util::Bytes>> cert_verify_memo_ GLOBE_BOUNDED;
  std::deque<std::pair<util::Bytes, util::Bytes>> cert_verify_memo_order_ GLOBE_BOUNDED;
};

}  // namespace globe::globedoc
