// Object-owner toolkit (paper §3: "behind each GlobeDoc object there is a
// person or organization — the object owner — that is in charge of it").
//
// The owner creates the object and its key pair, provides permanent
// storage, updates and re-signs the state, registers the name, and places
// replicas on object servers.  The owner authenticates to object servers
// with separate admin credentials (the keys listed in server keystores).
#pragma once

#include <vector>

#include "globedoc/object.hpp"
#include "globedoc/server.hpp"
#include "location/tree.hpp"
#include "naming/service.hpp"
#include "net/transport.hpp"

namespace globe::globedoc {

class ObjectOwner {
 public:
  ObjectOwner(GlobeDocObject object, crypto::RsaKeyPair admin_credentials);

  GlobeDocObject& object() { return object_; }
  const GlobeDocObject& object() const { return object_; }
  const crypto::RsaPublicKey& credential_key() const { return credentials_.pub; }

  /// Signs the current state (fresh validity window) and snapshots it.
  ReplicaState sign_and_snapshot(util::SimTime now, util::SimDuration ttl);

  /// Registers the object's name -> OID binding in a naming zone the owner
  /// controls.
  void register_name(naming::ZoneAuthority& zone, const std::string& name,
                     util::SimTime expires);

  /// Creates a replica on `object_server` (authenticated via the keystore)
  /// and registers its contact address at `location_site`.  The pair is
  /// remembered for refresh/unpublish.
  util::Status publish_replica(net::Transport& transport,
                               const net::Endpoint& object_server,
                               const net::Endpoint& location_site,
                               const ReplicaState& state);

  /// Re-signs the state and pushes the update to every published replica
  /// (how owners renew validity intervals and propagate content changes).
  util::Status refresh_replicas(net::Transport& transport, util::SimTime now,
                                util::SimDuration ttl);

  /// Destroys one replica and deregisters its contact address.
  util::Status unpublish_replica(net::Transport& transport,
                                 const net::Endpoint& object_server,
                                 const net::Endpoint& location_site);

  struct PublishedReplica {
    net::Endpoint server;
    net::Endpoint location_site;
  };
  const std::vector<PublishedReplica>& replicas() const { return replicas_; }

 private:
  GlobeDocObject object_;
  crypto::RsaKeyPair credentials_;
  std::vector<PublishedReplica> replicas_;
};

}  // namespace globe::globedoc
