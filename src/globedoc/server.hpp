// Globe object server (paper §2.1.3, §4).
//
// Hosts GlobeDoc replicas and exposes three interfaces on one endpoint:
//   * access   — page-element retrieval (untrusted path, no authentication:
//                clients verify what they get);
//   * security — public key / integrity certificate / identity certificates
//                (paper §3.1.2's "special security interface");
//   * admin    — replica creation/update/destruction, protected by a
//                keystore ACL: the administrator lists the public keys of
//                entities allowed to create replicas (owners or other
//                object servers, enabling dynamic replication), and each
//                entity may manage only the replicas it created.  Requests
//                are authenticated by signing a fresh server nonce
//                (challenge/response), standing in for the paper's
//                client-authenticated TLS admin channel.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>

#include "crypto/drbg.hpp"
#include "globedoc/object.hpp"
#include "net/transport.hpp"
#include "obs/consistency.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "rpc/rpc.hpp"
#include "util/mutex.hpp"
#include "util/taint_annotations.hpp"
#include "util/bounds_annotations.hpp"

namespace globe::obs {
class AdminHttpServer;  // obs/admin.hpp
}

namespace globe::globedoc {

enum AccessMethod : std::uint16_t {
  kGetElement = 1,    // {oid20, str name} -> serialized PageElement
  kListElements = 2,  // {oid20} -> u32 n, n × str
  // Batched retrieval: FetchManyRequest -> FetchManyResponse (up to
  // kFetchManyMaxElements elements + the shared integrity certificate in
  // ONE round trip; see globedoc/fetch_many.hpp).
  kFetchMany = 3,
};

enum SecurityMethod : std::uint16_t {
  kGetPublicKey = 1,      // {oid20} -> serialized RsaPublicKey
  kGetIntegrityCert = 2,  // {oid20} -> serialized IntegrityCertificate
  kGetIdentityCerts = 3,  // {oid20} -> u32 n, n × bytes
};

enum AdminMethod : std::uint16_t {
  kChallenge = 1,      // {} -> bytes nonce
  kCreateReplica = 2,  // {nonce, pubkey, sig, state}
  kUpdateReplica = 3,  // {nonce, pubkey, sig, state}
  kDeleteReplica = 4,  // {nonce, pubkey, sig, oid20}
  kListReplicas = 5,   // {} -> u32 n, n × oid20
  kNegotiate = 6,      // {u64 bytes, u64 lease_ns} -> HostingGrant
};

/// Protocol ceiling on OIDs in a kListReplicas reply (~1.25 MiB of OIDs).
/// AdminClient::list_replicas rejects replies claiming more as protocol
/// errors before allocating for the claimed count.
inline constexpr std::size_t kMaxListReplicas = 65536;

/// Resource limitations a server administrator imposes on hosted replicas
/// (the hosting-negotiation extension sketched in the paper's §6).
struct ResourceLimits {
  std::size_t max_replicas = 0;        // 0 = unlimited
  std::uint64_t max_total_bytes = 0;   // 0 = unlimited (content bytes)
  std::uint64_t max_replica_bytes = 0; // 0 = unlimited (per replica)
  util::SimDuration max_lease = 0;     // 0 = unlimited hosting duration
};

/// Reply to a hosting negotiation: whether the server would accept a
/// replica of the stated size, and for how long.
struct HostingGrant {
  bool accepted = false;
  util::SimDuration lease = 0;  // granted duration (0 = unlimited)
  std::string reason;           // populated on rejection

  util::Bytes serialize() const;
  static util::Result<HostingGrant> parse(util::BytesView data);
};

class ObjectServer {
 public:
  /// `registry` receives the object_server.* series (labeled with this
  /// server's name); nullptr means the process-wide obs::global_registry().
  /// `profile` receives the cost probes fired while this server handles an
  /// RPC (DESIGN.md §15); nullptr means obs::global_profile_registry().
  ObjectServer(std::string name, std::uint64_t nonce_seed,
               obs::MetricsRegistry* registry = nullptr,
               obs::ProfileRegistry* profile = nullptr);

  /// Keystore ACL management (server administrator's side).
  void authorize(const crypto::RsaPublicKey& key) GLOBE_EXCLUDES(mutex_);
  void revoke(const crypto::RsaPublicKey& key) GLOBE_EXCLUDES(mutex_);
  [[nodiscard]] bool is_authorized(const crypto::RsaPublicKey& key) const
      GLOBE_EXCLUDES(mutex_);

  void register_with(rpc::ServiceDispatcher& dispatcher);

  std::size_t replica_count() const GLOBE_EXCLUDES(mutex_);
  bool hosts(const Oid& oid) const GLOBE_EXCLUDES(mutex_);

  /// Installs a replica bypassing admin *auth* (local bootstrap in tests
  /// and the pull path, both of which hold an already-verified state).
  /// Trusted sink: the state is hosted and served as-is, so it must have
  /// passed ReplicaState::verify() when it crossed a trust boundary.
  /// `now` stamps the install time for the freshness probe; callers off the
  /// network path (test bootstrap at t=0) may leave it defaulted.
  void install_replica_unchecked(GLOBE_TRUSTED_SINK const ReplicaState& state,
                                 util::SimTime now = 0)
      GLOBE_EXCLUDES(mutex_);

  /// Per-OID (epoch, content digest, certificate expiry horizon) for the
  /// consistency observatory (DESIGN.md §16): epoch is the hosted
  /// integrity certificate's version, the digest a Merkle root over the
  /// serialized elements THIS server actually stores (name order,
  /// recomputed per call so post-install tampering is visible), expiry the
  /// earliest certificate-entry deadline.  Wire this into a TelemetryNode
  /// via set_consistency_source().
  obs::ConsistencyReport consistency_report() const GLOBE_EXCLUDES(mutex_);

  /// Resource policy (paper §6 extension).  Limits apply to future creates
  /// and updates; existing replicas are untouched until their lease ends.
  void set_resource_limits(const ResourceLimits& limits) GLOBE_EXCLUDES(mutex_);
  ResourceLimits resource_limits() const GLOBE_EXCLUDES(mutex_);
  /// Content bytes currently hosted across all replicas.
  std::uint64_t hosted_bytes() const GLOBE_EXCLUDES(mutex_);
  /// Drops replicas whose lease expired at or before `now`; returns how
  /// many were evicted.  Also applied lazily on every access.
  std::size_t expire_leases(util::SimTime now) GLOBE_EXCLUDES(mutex_);

  /// Serving statistics.
  std::size_t elements_served() const GLOBE_EXCLUDES(mutex_);
  std::uint64_t content_bytes_served() const GLOBE_EXCLUDES(mutex_);

  /// Registers this server's readiness probes on an admin surface:
  /// "store" (replica table accessible) and "capacity" (degraded once the
  /// administrator's max_replicas limit is reached).  The server must
  /// outlive `admin`.
  void register_health_checks(obs::AdminHttpServer& admin);

  /// Registers the "replication-freshness" probe: unhealthy once the newest
  /// replica state on this server was installed more than `budget` before
  /// the probing context's now() — the operator's bound on how long an
  /// object server may serve without absorbing any refresh.  A server
  /// hosting nothing is vacuously healthy.
  void register_freshness_probe(obs::AdminHttpServer& admin,
                                util::SimDuration budget);

 private:
  // RPC handler payloads arrive straight off the wire from arbitrary callers
  // and are tainted at entry (GLOBE_UNTRUSTED in parameter position).
  util::Result<util::Bytes> handle_get_element(net::ServerContext&,
                                               GLOBE_UNTRUSTED util::BytesView);
  util::Result<util::Bytes> handle_list_elements(net::ServerContext&,
                                                 GLOBE_UNTRUSTED util::BytesView);
  util::Result<util::Bytes> handle_fetch_many(net::ServerContext&,
                                              GLOBE_UNTRUSTED util::BytesView);
  util::Result<util::Bytes> handle_get_public_key(net::ServerContext&,
                                                  GLOBE_UNTRUSTED util::BytesView);
  util::Result<util::Bytes> handle_get_integrity_cert(net::ServerContext&,
                                                      GLOBE_UNTRUSTED util::BytesView);
  util::Result<util::Bytes> handle_get_identity_certs(net::ServerContext&,
                                                      GLOBE_UNTRUSTED util::BytesView);
  util::Result<util::Bytes> handle_challenge(net::ServerContext&,
                                             GLOBE_UNTRUSTED util::BytesView);
  util::Result<util::Bytes> handle_create_or_update(net::ServerContext&,
                                                    GLOBE_UNTRUSTED util::BytesView,
                                                    bool create);
  util::Result<util::Bytes> handle_delete(net::ServerContext&,
                                          GLOBE_UNTRUSTED util::BytesView);
  util::Result<util::Bytes> handle_list_replicas(net::ServerContext&,
                                                 GLOBE_UNTRUSTED util::BytesView);
  util::Result<util::Bytes> handle_negotiate(net::ServerContext&,
                                             GLOBE_UNTRUSTED util::BytesView);

  /// Checks the resource policy for a replica of `bytes` content bytes
  /// (excluding `existing_oid`'s current usage when updating).  Returns an
  /// accepted grant or a rejection with a reason.  Caller holds mutex_.
  HostingGrant check_capacity_locked(std::uint64_t bytes,
                                     const Oid* existing_oid) const
      GLOBE_REQUIRES(mutex_);

  /// Removes a replica whose lease has passed; caller holds mutex_.
  [[nodiscard]] bool lease_expired_locked(const Oid& oid, util::SimTime now) const
      GLOBE_REQUIRES(mutex_);

  /// The one place replica state enters the hosted set.  Trusted sink:
  /// callers on a network path must have run ReplicaState::verify() first.
  void install_locked(const Oid& oid, GLOBE_TRUSTED_SINK ReplicaState state,
                      util::SimTime now)
      GLOBE_REQUIRES(mutex_);

  /// Validates (nonce, pubkey, signature) against the keystore; returns the
  /// authorized key's serialized form, or an error.  `tag` domain-separates
  /// create/update/delete signatures.
  util::Result<util::Bytes> check_admin_auth(net::ServerContext& ctx,
                                             const util::Bytes& nonce,
                                             const util::Bytes& pubkey,
                                             const util::Bytes& signature,
                                             std::string_view tag,
                                             util::BytesView payload)
      GLOBE_EXCLUDES(mutex_);

  std::string name_;
  mutable util::Mutex mutex_;
  crypto::HmacDrbg nonce_rng_ GLOBE_GUARDED_BY(mutex_);
  // authorized serialized public keys
  std::set<util::Bytes> keystore_ GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);
  std::set<util::Bytes> outstanding_nonces_ GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);
  // FIFO for bounded nonce eviction
  std::deque<util::Bytes> nonce_order_ GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);
  std::map<Oid, ReplicaState> replicas_ GLOBE_GUARDED_BY(mutex_);
  // oid -> when its current state was installed (freshness probe input)
  std::map<Oid, util::SimTime> installed_at_ GLOBE_GUARDED_BY(mutex_);
  // oid -> serialized creator key
  std::map<Oid, util::Bytes> creators_ GLOBE_GUARDED_BY(mutex_);
  // absent = unlimited
  std::map<Oid, util::SimTime> lease_until_ GLOBE_GUARDED_BY(mutex_);
  ResourceLimits limits_ GLOBE_GUARDED_BY(mutex_);
  std::size_t elements_served_ GLOBE_GUARDED_BY(mutex_) = 0;
  std::uint64_t content_bytes_served_ GLOBE_GUARDED_BY(mutex_) = 0;
  // Registry series, labeled by this server's name.
  obs::Counter* requests_counter_;
  obs::Counter* batch_requests_counter_;
  obs::Counter* elements_counter_;
  obs::Counter* bytes_counter_;
  obs::Counter* replica_installs_;
  obs::Counter* replica_deletes_;
  // Cost-probe destination for RPC handling on this server's behalf;
  // null = the process-wide global profile registry.
  obs::ProfileRegistry* profile_;
};

/// Client helper for the authenticated admin interface.
class AdminClient {
 public:
  AdminClient(net::Transport& transport, net::Endpoint server,
              crypto::RsaKeyPair credentials);

  util::Status create_replica(const ReplicaState& state);
  util::Status update_replica(const ReplicaState& state);
  util::Status delete_replica(const Oid& oid);
  util::Result<std::vector<Oid>> list_replicas();

  /// Asks the server whether it would host `bytes` of content for `lease`
  /// (0 = indefinitely) before paying for a state transfer.
  util::Result<HostingGrant> negotiate(std::uint64_t bytes, util::SimDuration lease);

 private:
  util::Result<util::Bytes> fresh_nonce();
  util::Status authed_call(std::uint16_t method, std::string_view tag,
                           util::BytesView payload);

  net::Transport* transport_;
  net::Endpoint server_;
  crypto::RsaKeyPair credentials_;
};

}  // namespace globe::globedoc
