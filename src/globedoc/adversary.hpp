// Adversary harness (DESIGN.md S13): handler wrappers that turn an honest
// server into each of the attackers the paper's security argument must
// defeat.  Used by tests, the tamper_detection example, and the
// verification benchmarks.
//
// Every attack below must be *detected* by the proxy (mapped to a typed
// verification error), never silently accepted:
//   * tampering        -> HASH_MISMATCH (or BAD_SIGNATURE when the
//                         certificate itself is forged)
//   * element swapping -> WRONG_ELEMENT (consistency)
//   * stale state      -> EXPIRED (freshness; build via an ObjectServer
//                         loaded with an outdated-but-genuine snapshot)
//   * key substitution -> OID_MISMATCH (self-certifying check)
//   * location lies    -> at most denial of service (paper §3.1.2)
#pragma once

#include "net/transport.hpp"

namespace globe::globedoc {

/// Flips bits in the *content* of every page element served through
/// `inner` (kGlobeDocAccess/kGetElement responses).  Other traffic passes
/// through untouched.
net::MessageHandler tampering_element_attack(net::MessageHandler inner);

/// Rewrites every element request to ask `inner` for `decoy_element`
/// instead — serving genuine, fresh, signed content that the client did
/// not ask for (the consistency attack of §3.2.1).
net::MessageHandler element_swap_attack(net::MessageHandler inner,
                                        std::string decoy_element);

/// Replaces the object's public key in security-interface responses with
/// `attacker_key` (and signs nothing else) — caught by the self-certifying
/// OID check.
net::MessageHandler key_substitution_attack(net::MessageHandler inner,
                                            util::Bytes attacker_key_serialized);

/// A malicious Location Service node: answers every lookup with the given
/// bogus contact addresses (paper §3.1.2's misdirection attack).
net::MessageHandler misdirecting_location_node(
    std::vector<net::Endpoint> bogus_addresses);

/// Corrupts the integrity certificate's signature bytes in transit.
net::MessageHandler certificate_forgery_attack(net::MessageHandler inner);

}  // namespace globe::globedoc
